#!/usr/bin/env python3
"""TeamNet whole-program static analyzer (deep tier; DESIGN.md §12).

Where tools/lint.py is the fast token-level tier, this tool parses every
translation unit in src/** into a structural IR (functions, lock scopes,
call sites, allocation sites), links them into a whole-program call graph,
and runs three interprocedural passes over it:

  lock-cycle        Build the acquired-while-holding digraph over every
                    MutexLock / MutexPairLock site — including locks
                    acquired transitively through calls made while a lock
                    is held — and fail on cycles. Static deadlock
                    detection, complementing the DES schedule explorer's
                    dynamic detection (DESIGN.md §11). MutexPairLock's
                    std::lock ordering intentionally contributes no edge
                    between its two locks.

  block-under-lock  Flag calls that may block — CondVar::wait/wait_until,
                    channel recv/send, ThreadPool submission/join, OS
                    sockets, stdio, sleeps — made (possibly through any
                    number of intermediate calls) while a TN_CAPABILITY
                    mutex is held. CondVar::wait(m) while holding only `m`
                    is the sanctioned wait-loop pattern and is exempt.

  hot-alloc         Functions reachable from the per-query hot path
                    (functions marked with an `// analyze:hot` comment:
                    forward/infer, Message encode/decode, the serving
                    loops) are audited for allocation: new, malloc,
                    make_unique/make_shared, growing container ops,
                    string materialization. The checked-in baseline is
                    the burn-down list for ROADMAP item 3's arena work.

  unbounded-wait    Direct calls to unbounded recv()/pop() in the protocol
                    layers (src/net/**, src/moe/** minus the channel
                    implementations) — the AST-aware successor of
                    lint.py's retired token-level `naked-recv` rule: it
                    sees through comments/strings, knows the *_timeout
                    variants, and pairs with block-under-lock's
                    interprocedural coverage of wrapper functions.

Findings are gated through tools/analyze_baseline.json: each finding has a
stable fingerprint (no line numbers, so code motion does not churn it) and
the CI gate is zero NON-BASELINED findings, not zero findings. Baselined
entries carry a justification; stale entries are reported and fail
--check-baseline.

Frontends: the default `lexical` frontend is a dependency-free C++
scope/token parser — deterministic everywhere, including containers with
no libclang — and is what CI gates on. The `clang` frontend builds the
same IR from clang.cindex over the CMake-exported compile_commands.json
when python3-clang/libclang are installed, and is run as a non-gating
cross-check.

Usage:
  tools/analyze.py                          analyze src/** against the baseline
  tools/analyze.py --format github          GitHub Actions ::error annotations
  tools/analyze.py --write-baseline         refresh the baseline (keeps
                                            justifications for existing entries)
  tools/analyze.py --check-baseline         fail if a rerun would change the
                                            baseline file (staleness + byte-
                                            stability gate)
  tools/analyze.py --json-out FILE          machine-readable findings + graph
  tools/analyze.py --self-test              prove each pass on tools/fixtures/
  tools/analyze.py --frontend clang         use the libclang frontend
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"
FIXTURES = REPO / "tools" / "fixtures"
DEFAULT_BASELINE = REPO / "tools" / "analyze_baseline.json"

# The annotated lock funnel itself (DESIGN.md §7) is the trusted base the
# analysis is defined over, not a subject of it.
EXCLUDED_FILES = {SRC / "common" / "annotations.hpp"}

HOT_MARKER = "analyze:hot"
PROTOCOL_SCOPE_MARKER = "analyze:protocol-scope"

# Lock-RAII types from common/annotations.hpp.
SCOPED_LOCK_TYPES = {"MutexLock": 1, "MutexPairLock": 2}
MUTEX_TYPE = "Mutex"

# External (unparsed) callees treated as blocking seeds, by unqualified
# name, with the blocking kind reported in the finding.
BLOCKING_EXTERNAL = {
    "wait": "condvar-wait",          # CondVar::wait (own-mutex exempt)
    "wait_until": "condvar-wait",    # CondVar::wait_until (own-mutex exempt)
    "recv": "channel-io",
    "recv_timeout": "channel-io",
    "send": "channel-io",
    # NOTE: pop/pop_timeout are deliberately absent — those names collide
    # with std::queue/std::deque members; blocking queue pops (ByteQueue,
    # DES mailboxes) are parsed functions and propagate through call-target
    # resolution instead of by name.
    "tcp_connect": "channel-io",
    "connect": "syscall",
    "accept": "syscall",
    "poll": "syscall",
    "select": "syscall",
    "sleep_for": "sleep",
    "sleep_until": "sleep",
    "fprintf": "stdio",
    "vfprintf": "stdio",
    "printf": "stdio",
    "fwrite": "stdio",
    "fputs": "stdio",
    "fflush": "stdio",
}

# Parsed functions that are blocking seeds by qualified-name suffix even
# though their bodies alone would not prove it (policy seeds from the
# issue: pool submission under a lock is a queue-pressure/lock-order
# hazard; parallel_for joins futures).
BLOCKING_QNAME_SEEDS = {
    "ThreadPool::submit": "pool-submit",
    "ThreadPool::parallel_for": "pool-join",
}

# The LOG_* macros funnel into log::detail::emit; the lexical frontend
# never expands macros, so alias the macro names onto the sink so
# lock-held logging is visible to the interprocedural pass.
CALL_ALIASES = {
    "LOG_DEBUG": "emit",
    "LOG_INFO": "emit",
    "LOG_WARN": "emit",
    "LOG_ERROR": "emit",
}

# Allocation-site classification (call-shaped sites plus new-expressions).
ALLOC_EXTERNAL = {
    "malloc": "malloc",
    "calloc": "malloc",
    "realloc": "malloc",
    "aligned_alloc": "malloc",
    "strdup": "malloc",
    "make_unique": "smart-ptr",
    "make_shared": "smart-ptr",
    "to_string": "string-alloc",
    "substr": "string-alloc",
    "str": "string-alloc",        # std::ostringstream::str()
}
ALLOC_MEMBER_GROWTH = {
    "push_back", "emplace_back", "emplace", "insert", "resize", "reserve",
    "push", "append", "assign", "emplace_front", "push_front",
}

# Unbounded blocking waits for the protocol-layer discipline pass.
UNBOUNDED_WAIT_NAMES = {"recv", "pop"}
PROTOCOL_MODULES = {"net", "moe"}
PROTOCOL_EXEMPT_STEMS = {"transport", "fault", "tcp"}

RULES = ("lock-cycle", "block-under-lock", "unbounded-wait", "hot-alloc")

# Receivers whose declared type is one of these are std-library values:
# their methods (pop, push, insert, ...) follow std semantics, are never
# project functions, and must not be name-unioned into the call graph.
EXTERNAL_RECEIVER_TYPES = {
    "queue", "deque", "vector", "map", "unordered_map", "set",
    "unordered_set", "multimap", "stack", "list", "forward_list", "array",
    "optional", "string", "string_view", "atomic", "pair", "tuple",
    "priority_queue", "bitset", "ostringstream", "istringstream",
    "stringstream", "function", "future", "promise", "thread", "ifstream",
    "ofstream", "fstream", "span", "variant", "auto", "int", "bool",
    "double", "float", "size_t", "uint8_t", "uint32_t", "uint64_t",
    "int32_t", "int64_t", "char", "void",
}
SMART_PTR_TYPES = {"shared_ptr", "unique_ptr", "weak_ptr"}

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "catch", "sizeof", "alignof",
    "alignas", "throw", "new", "delete", "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "static_assert", "decltype", "typeid",
    "case", "default", "do", "else", "goto", "break", "continue", "co_await",
    "co_return", "co_yield", "noexcept", "requires", "explicit", "operator",
}

# ---------------------------------------------------------------------------
# IR
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class AcquireSite:
    """One MutexLock/MutexPairLock declaration."""
    lock_exprs: tuple[str, ...]   # raw argument expressions, one per lock
    kind: str                     # "scoped" | "pair"
    line: int
    held: tuple[str, ...]         # raw exprs of locks held before this site
    locks: tuple[str, ...] = ()   # canonical names (resolution pass)


@dataclasses.dataclass
class CallSite:
    callee: str                   # identifier chain as written ("a::b", "f")
    receiver: str | None          # receiver identifier for x.f()/x->f()
    first_arg: str                # raw expr of first argument ("" if none)
    line: int
    held: tuple[str, ...]         # raw lock exprs held at this point
    deferred: bool                # inside a lambda body (runs later)
    is_decl_ctor: bool = False    # `Type name(args);` declaration
    held_locks: tuple[str, ...] = ()   # canonical (resolution pass)
    targets: tuple[str, ...] = ()      # resolved callee function ids


@dataclasses.dataclass
class AllocSite:
    kind: str                     # "new" | "malloc" | "smart-ptr" | ...
    what: str                     # e.g. "push_back", "new"
    line: int
    held: tuple[str, ...]
    held_locks: tuple[str, ...] = ()


@dataclasses.dataclass
class Function:
    qname: str                    # fully qualified (namespaces + class)
    name: str                     # unqualified
    file: str                     # repo-relative path
    line: int
    cls: str | None               # enclosing class qname, if a method
    calls: list[CallSite] = dataclasses.field(default_factory=list)
    acquires: list[AcquireSite] = dataclasses.field(default_factory=list)
    allocs: list[AllocSite] = dataclasses.field(default_factory=list)
    locals: dict[str, str] = dataclasses.field(default_factory=dict)
    hot: bool = False             # marked // analyze:hot


@dataclasses.dataclass
class ClassInfo:
    qname: str
    file: str
    mutex_members: set[str] = dataclasses.field(default_factory=set)
    members: dict[str, str] = dataclasses.field(default_factory=dict)
    nested: list[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class Program:
    functions: dict[str, Function] = dataclasses.field(default_factory=dict)
    classes: dict[str, ClassInfo] = dataclasses.field(default_factory=dict)
    protocol_files: set[str] = dataclasses.field(default_factory=set)

    def add_function(self, fn: Function) -> None:
        # Overloads / out-of-line + inline pairs: key by qname plus a
        # discriminator so nothing is silently dropped.
        key = fn.qname
        n = 2
        while key in self.functions:
            key = f"{fn.qname}#{n}"
            n += 1
        self.functions[key] = fn


@dataclasses.dataclass
class Finding:
    rule: str
    file: str
    line: int
    subject: str                  # stable fingerprint subject
    message: str

    @property
    def fingerprint(self) -> str:
        digest = hashlib.sha256(
            f"{self.rule}|{self.subject}".encode()).hexdigest()
        return digest[:12]

    def __str__(self) -> str:
        return (f"{self.file}:{self.line}: [{self.rule}] {self.message} "
                f"[fp {self.fingerprint}]")

    def github(self) -> str:
        msg = f"[{self.rule}] {self.message} [fp {self.fingerprint}]"
        return f"::error file={self.file},line={self.line}::" + \
            msg.replace("\n", " ")


# ---------------------------------------------------------------------------
# Tokenizer (lexical frontend)
# ---------------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"""
      (?P<comment>//[^\n]*|/\*.*?\*/)
    | (?P<rawstr>R"(?P<delim>[^()\s\\"]{0,16})\(.*?\)(?P=delim)")
    | (?P<str>"(?:[^"\\\n]|\\.)*")
    | (?P<char>'(?:[^'\\\n]|\\.)*')
    | (?P<num>\.?[0-9](?:[\w.']|[eEpP][+-])*)
    | (?P<ident>[A-Za-z_]\w*)
    | (?P<punct>::|->\*|->|\+\+|--|<<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||
        [-+*/%&|^!<>=]=|\.\.\.|[{}()\[\];:,.?~^%!&|*+<>=/-])
    """,
    re.DOTALL | re.VERBOSE)

PREPROC_RE = re.compile(r"^[ \t]*#[^\n]*(?:\\\n[^\n]*)*", re.MULTILINE)


@dataclasses.dataclass
class Tok:
    kind: str      # "ident" | "punct" | "str" | "num" | "char"
    text: str
    line: int


def tokenize(text: str) -> tuple[list[Tok], dict[int, set[str]]]:
    """Tokens plus {line: markers} for analyze:* comment markers."""
    markers: dict[int, set[str]] = {}
    # Blank preprocessor lines (keep newlines so line numbers survive).
    text = PREPROC_RE.sub(lambda m: "\n" * m.group(0).count("\n"), text)
    toks: list[Tok] = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(text):
        line += text.count("\n", pos, m.start())
        pos = m.start()
        kind = m.lastgroup
        tok_text = m.group(0)
        if kind == "comment":
            for marker in re.findall(r"analyze:[a-z-]+", tok_text):
                markers.setdefault(line, set()).add(
                    marker[len("analyze:"):])
        elif kind == "delim":
            pass
        elif kind in ("str", "rawstr", "char"):
            toks.append(Tok("str", '""', line))
        elif kind is not None:
            toks.append(Tok(kind if kind != "rawstr" else "str",
                            tok_text, line))
    return toks, markers

# ---------------------------------------------------------------------------
# Lexical frontend: scope/declaration parser producing the IR
# ---------------------------------------------------------------------------

POST_PARAM_QUALIFIERS = {"const", "noexcept", "override", "final", "mutable",
                         "volatile", "&", "&&", "throw", "try"}
TYPE_PREFIX_SKIP = {"const", "constexpr", "static", "inline", "mutable",
                    "volatile", "virtual", "explicit", "friend", "typename",
                    "register", "thread_local", "unsigned", "signed", "long",
                    "short", "extern"}


class _Parser:
    """Single-file scope parser. Appends Functions/ClassInfos to `program`.

    Deliberate over/under-approximations (documented in DESIGN.md §12):
    lambda bodies are scanned as part of the enclosing function but with the
    held-lock set cleared (the closure usually runs outside the critical
    section; calls inside still feed the call graph), and template
    arguments are skipped with a bounded type-token heuristic.
    """

    def __init__(self, program: Program, file_rel: str, toks: list[Tok],
                 markers: dict[int, set[str]]):
        self.program = program
        self.file = file_rel
        self.toks = toks
        self.markers = markers
        self.i = 0
        self.ns: list[str] = []       # namespace stack
        self.cls: list[str] = []      # class qname stack
        self.anon_count = 0

    # -- token helpers ----------------------------------------------------
    def peek(self, k: int = 0) -> Tok | None:
        j = self.i + k
        return self.toks[j] if j < len(self.toks) else None

    def next(self) -> Tok | None:
        t = self.peek()
        if t is not None:
            self.i += 1
        return t

    def skip_balanced(self, open_t: str, close_t: str) -> list[Tok]:
        """Called with position ON the opener; consumes through the match."""
        out: list[Tok] = []
        depth = 0
        while True:
            t = self.next()
            if t is None:
                return out
            out.append(t)
            if t.text == open_t:
                depth += 1
            elif t.text == close_t:
                depth -= 1
                if depth == 0:
                    return out

    def try_skip_template_args(self) -> bool:
        """Position is ON '<'. Skip balanced type-ish template args; rewind
        and return False if this looks like a comparison instead."""
        start = self.i
        depth = 0
        budget = 400
        while budget > 0:
            t = self.next()
            budget -= 1
            if t is None:
                break
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    return True
            elif t.text == ">>":
                depth -= 2
                if depth <= 0:
                    return True
            elif t.text in (";", "{", "}") or t.kind == "str":
                break
        self.i = start
        return False

    def scope_prefix(self) -> str:
        parts = [p for p in self.ns if p]
        if self.cls:
            return self.cls[-1]
        return "::".join(parts)

    def qualify(self, chain: str) -> str:
        prefix = self.scope_prefix()
        return f"{prefix}::{chain}" if prefix else chain

    # -- declaration scope ------------------------------------------------
    def parse_decl_scope(self) -> None:
        """Parse until the matching '}' of the current scope (or EOF)."""
        while True:
            t = self.peek()
            if t is None:
                return
            if t.text == "}":
                self.next()
                return
            if t.kind == "ident":
                if t.text == "namespace":
                    self.parse_namespace()
                    continue
                if t.text in ("class", "struct"):
                    if self.parse_class():
                        continue
                    # fall through: parsed as forward decl/elaborated type
                    continue
                if t.text == "enum":
                    self.skip_enum()
                    continue
                if t.text == "union":
                    self.skip_union()
                    continue
                if t.text == "template":
                    self.next()
                    if self.peek() is not None and self.peek().text == "<":
                        self.try_skip_template_args()
                    continue
                if t.text in ("using", "typedef", "static_assert", "friend"):
                    self.skip_to_semi()
                    continue
                if t.text in ("public", "private", "protected"):
                    self.next()
                    if self.peek() is not None and self.peek().text == ":":
                        self.next()
                    continue
            if t.text == ";":
                self.next()
                continue
            self.parse_declaration()

    def parse_namespace(self) -> None:
        self.next()  # 'namespace'
        name_parts: list[str] = []
        while True:
            t = self.peek()
            if t is None:
                return
            if t.kind == "ident":
                name_parts.append(t.text)
                self.next()
            elif t.text == "::":
                self.next()
            else:
                break
        t = self.peek()
        if t is not None and t.text == "{":
            self.next()
            if not name_parts:
                self.anon_count += 1
                name_parts = [f"(anon:{pathlib.PurePath(self.file).name})"]
            pushed = len(name_parts)
            self.ns.extend(name_parts)
            saved_cls = self.cls
            self.cls = []
            self.parse_decl_scope()
            self.cls = saved_cls
            del self.ns[-pushed:]
        else:
            self.skip_to_semi()

    def parse_class(self) -> bool:
        """Returns True if a class *definition* was parsed."""
        self.next()  # 'class' / 'struct'
        name = ""
        while True:
            t = self.peek()
            if t is None:
                return False
            if t.kind == "ident":
                if t.text != "final":
                    name = t.text
                self.next()
                # attribute-macro parens, e.g. TN_CAPABILITY("mutex")
                if self.peek() is not None and self.peek().text == "(":
                    self.skip_balanced("(", ")")
                    name = ""  # macro was not the class name
            elif t.text == "<":
                if not self.try_skip_template_args():
                    self.next()
            elif t.text == ":":
                # base clause: skip to the opening brace
                while self.peek() is not None and self.peek().text not in (
                        "{", ";"):
                    if self.peek().text == "<":
                        if not self.try_skip_template_args():
                            self.next()
                    else:
                        self.next()
            elif t.text == "{":
                break
            elif t.text in (";", ")", ",", ">", "&", "*"):
                return False  # forward decl or elaborated type specifier
            else:
                self.next()
        self.next()  # '{'
        if not name:
            self.anon_count += 1
            name = f"(anon-class:{self.anon_count})"
        prefix = self.scope_prefix()
        qname = f"{prefix}::{name}" if prefix else name
        if qname not in self.program.classes:
            self.program.classes[qname] = ClassInfo(qname=qname,
                                                    file=self.file)
        if self.cls:
            parent = self.program.classes.get(self.cls[-1])
            if parent is not None and qname not in parent.nested:
                parent.nested.append(qname)
        self.cls.append(qname)
        self.parse_decl_scope()
        self.cls.pop()
        self.skip_to_semi()
        return True

    def skip_enum(self) -> None:
        self.next()
        while self.peek() is not None and self.peek().text not in ("{", ";"):
            self.next()
        if self.peek() is not None and self.peek().text == "{":
            self.skip_balanced("{", "}")
        self.skip_to_semi()

    def skip_union(self) -> None:
        self.next()
        while self.peek() is not None and self.peek().text not in ("{", ";"):
            self.next()
        if self.peek() is not None and self.peek().text == "{":
            self.skip_balanced("{", "}")
        self.skip_to_semi()

    def skip_to_semi(self) -> None:
        depth = 0
        while True:
            t = self.next()
            if t is None:
                return
            if t.text in ("{", "("):
                depth += 1
            elif t.text in ("}", ")"):
                depth -= 1
                if depth < 0:
                    self.i -= 1  # scope's closer: let the caller see it
                    return
            elif t.text == ";" and depth == 0:
                return

    def parse_declaration(self) -> None:
        """One declaration at namespace/class scope: either a function
        definition (descend into the body) or a plain declaration (detect
        Mutex members, then skip)."""
        decl_toks: list[Tok] = []
        candidate: tuple[str, list[Tok], int] | None = None
        after_params = False
        while True:
            t = self.peek()
            if t is None:
                return
            if t.text == ";":
                self.next()
                self.detect_mutex_member(decl_toks)
                return
            if t.text == "}":
                return  # malformed/closer — let parse_decl_scope handle
            if t.text == "(":
                chain, chain_line = self.chain_behind(decl_toks)
                params = self.skip_balanced("(", ")")
                if chain:
                    candidate = (chain, params[1:-1], chain_line)
                    after_params = True
                decl_toks.append(t)
                continue
            if t.text == "{":
                if candidate is not None and after_params:
                    self.next()
                    self.parse_function_body(candidate, init_toks=[])
                    return
                self.skip_balanced("{", "}")
                continue
            if t.text == ":" and candidate is not None and after_params:
                # constructor member-init list: capture tokens up to the body
                self.next()
                init_toks: list[Tok] = []
                depth = 0
                while True:
                    u = self.peek()
                    if u is None:
                        return
                    if u.text == "{" and depth == 0:
                        break
                    if u.text in ("(", "["):
                        depth += 1
                    elif u.text in (")", "]"):
                        depth -= 1
                    init_toks.append(u)
                    self.next()
                self.next()  # '{'
                self.parse_function_body(candidate, init_toks=init_toks)
                return
            if t.text == "=" and after_params:
                # `= default;` / `= delete;` / `= 0;` — declaration only
                self.skip_to_semi()
                return
            if t.text == "<":
                start = self.i
                if self.try_skip_template_args():
                    # shared_ptr<T>/unique_ptr<T> members: the pointee is
                    # the type that matters for receiver resolution.
                    if decl_toks and decl_toks[-1].kind == "ident" and \
                            decl_toks[-1].text in SMART_PTR_TYPES:
                        inner = [u.text for u in self.toks[start + 1:self.i - 1]
                                 if u.kind == "ident" and u.text != "std"
                                 and u.text not in TYPE_PREFIX_SKIP]
                        if inner:
                            decl_toks[-1] = Tok("ident", inner[-1],
                                                decl_toks[-1].line)
                    continue
            self.next()
            decl_toks.append(t)

    def chain_behind(self, decl_toks: list[Tok]) -> tuple[str, int]:
        """Identifier chain immediately before a '(': 'A::B::name',
        'A::~A', 'operator=' forms."""
        j = len(decl_toks) - 1
        parts: list[str] = []
        line = self.peek().line if self.peek() else 0
        # operator with symbol: ... operator <punct> (
        if j >= 1 and decl_toks[j].kind == "punct" and \
                decl_toks[j - 1].kind == "ident" and \
                decl_toks[j - 1].text == "operator":
            sym = decl_toks[j].text
            j -= 2
            parts.append(f"operator{sym}")
            line = decl_toks[j + 1].line
        expecting_ident = not parts
        while j >= 0:
            t = decl_toks[j]
            if expecting_ident and t.kind == "ident" and \
                    t.text not in CPP_KEYWORDS:
                parts.append(t.text)
                line = t.line
                expecting_ident = False
                j -= 1
                if j >= 0 and decl_toks[j].text == "~":
                    parts[-1] = "~" + parts[-1]
                    line = decl_toks[j].line
                    j -= 1
            elif not expecting_ident and t.text == "::":
                expecting_ident = True
                j -= 1
            else:
                break
        if expecting_ident and parts:
            parts = parts[:1] if parts[0].startswith("operator") else []
        return "::".join(reversed(parts)), line

    def detect_mutex_member(self, decl_toks: list[Tok]) -> None:
        """Record data-member name → type for class-scope declarations
        (`[mutable] Type name [TN_GUARDED_BY(...)];`); Mutex members also
        land in mutex_members. Method declarations (name directly followed
        by '(') are skipped."""
        if not self.cls:
            return
        toks = decl_toks
        for j, t in enumerate(toks):
            if t.text == "=":
                toks = toks[:j]       # `Type name = init;` — drop the init
                break
            if t.text == "(":
                prev = toks[j - 1] if j else None
                if prev is not None and prev.kind == "ident" and \
                        not re.fullmatch(r"TN_[A-Z0-9_]+|[A-Z][A-Z0-9_]+",
                                         prev.text):
                    return            # method declaration, not a member
                toks = toks[:j - 1] if j else toks[:j]
                break
        idents = [t.text for t in toks if t.kind == "ident"
                  and t.text not in TYPE_PREFIX_SKIP and t.text != "std"]
        while len(idents) >= 3 and re.fullmatch(
                r"TN_[A-Z0-9_]+|[A-Z][A-Z0-9_]+", idents[-1]):
            idents.pop()
        if len(idents) >= 2:
            cls = self.program.classes[self.cls[-1]]
            name, ty = idents[-1], idents[-2]
            cls.members.setdefault(name, ty)
            if ty == MUTEX_TYPE:
                cls.mutex_members.add(name)

    # -- function bodies --------------------------------------------------
    def parse_function_body(self, candidate: tuple[str, list[Tok], int],
                            init_toks: list[Tok]) -> None:
        chain, param_toks, line = candidate
        prefix = self.scope_prefix()
        if "::" in chain:
            head, _, tail = chain.rpartition("::")
            qname = f"{prefix}::{chain}" if prefix else chain
            cls = f"{prefix}::{head}" if prefix else head
            name = tail
        else:
            qname = f"{prefix}::{chain}" if prefix else chain
            cls = self.cls[-1] if self.cls else None
            name = chain
        fn = Function(qname=qname, name=name, file=self.file, line=line,
                      cls=cls)
        for probe in range(max(1, line - 3), line + 1):
            if "hot" in self.markers.get(probe, set()):
                fn.hot = True
        self.capture_param_types(fn, param_toks)
        body = _BodyScanner(self, fn)
        if init_toks:
            body.scan_tokens(init_toks, deferred=False)
        body.scan_stream()
        self.program.add_function(fn)

    def capture_param_types(self, fn: Function, param_toks: list[Tok]) -> None:
        depth = 0
        current: list[Tok] = []
        groups: list[list[Tok]] = []
        for t in param_toks:
            if t.text in ("(", "<", "[", "{"):
                depth += 1
            elif t.text in (")", ">", "]", "}"):
                depth -= 1
            elif t.text == "," and depth == 0:
                groups.append(current)
                current = []
                continue
            current.append(t)
        if current:
            groups.append(current)
        for group in groups:
            idents = [t.text for t in group if t.kind == "ident"
                      and t.text not in TYPE_PREFIX_SKIP
                      and t.text not in CPP_KEYWORDS]
            if len(idents) >= 2:
                fn.locals[idents[-1]] = idents[-2]


class _BodyScanner:
    """Statement-level scan of one function body: lock scopes, call sites,
    allocation sites, local-variable types."""

    def __init__(self, parser: _Parser, fn: Function):
        self.p = parser
        self.fn = fn
        # Each entry: {"locks": [raw exprs], "lambda": bool}
        self.blocks: list[dict] = [{"locks": [], "lambda": False}]
        self.pending_lambda = False
        self.suppress_call = False   # just saw `new` — next Type(...) is not a call
        self.stmt_start = True
        self.pending_type: str | None = None

    def held_raw(self) -> tuple[str, ...]:
        held: list[str] = []
        for blk in self.blocks:
            if blk["lambda"]:
                held = []          # closure body: outer locks not held
            held.extend(blk["locks"])
        return tuple(held)

    def scan_stream(self) -> None:
        """Consume tokens from the parser's stream until the body's '}'."""
        while self.blocks:
            t = self.p.next()
            if t is None:
                return
            self.feed(t, from_stream=True)

    def scan_tokens(self, toks: list[Tok], deferred: bool) -> None:
        """Scan a detached token list (ctor init-list) — no lock scoping."""
        save_blocks = self.blocks
        self.blocks = [{"locks": [], "lambda": deferred}]
        i = 0
        while i < len(toks):
            i = self.feed_list(toks, i)
        self.blocks = save_blocks

    # The stream-based scanner below is the only one that descends into
    # nested braces; the init-list variant only records calls and allocs.
    def feed_list(self, toks: list[Tok], i: int) -> int:
        t = toks[i]
        if t.kind == "ident" and t.text not in CPP_KEYWORDS:
            j = i + 1
            chain = [t.text]
            while j + 1 < len(toks) and toks[j].text == "::" and \
                    toks[j + 1].kind == "ident":
                chain.append(toks[j + 1].text)
                j += 2
            if j < len(toks) and toks[j].text in ("(", "{"):
                callee = "::".join(chain)
                self.record_call(callee, None, "", t.line, decl_ctor=False)
            return j
        if t.text == "new":
            self.fn.allocs.append(AllocSite("new", "new", t.line,
                                            self.held_raw()))
        return i + 1

    def feed(self, t: Tok, from_stream: bool) -> None:
        p = self.p
        if t.text == "{":
            self.blocks.append({"locks": [], "lambda": self.pending_lambda})
            self.pending_lambda = False
            self.stmt_start = True
            return
        if t.text == "}":
            self.blocks.pop()
            self.stmt_start = True
            return
        if t.text == ";" or t.text == ":":
            self.stmt_start = True
            self.pending_type = None
            self.suppress_call = False
            return
        if t.text == "[":
            nxt = p.peek()
            if nxt is not None and nxt.text == "[":
                # [[attribute]]
                depth = 1
                while depth > 0:
                    u = p.next()
                    if u is None:
                        return
                    if u.text == "[":
                        depth += 1
                    elif u.text == "]":
                        depth -= 1
                return
            # Lambda introducer vs subscript: decided by what's inside/after.
            depth = 1
            while depth > 0:
                u = p.next()
                if u is None:
                    return
                if u.text == "[":
                    depth += 1
                elif u.text == "]":
                    depth -= 1
            if p.peek() is not None and p.peek().text == "(":
                saved = p.i
                p.skip_balanced("(", ")")
                if self.lambda_body_ahead():
                    self.pending_lambda = True
                else:
                    p.i = saved
            elif self.lambda_body_ahead():
                self.pending_lambda = True
            return
        if t.kind != "ident":
            return
        if t.text == "new":
            self.fn.allocs.append(AllocSite("new", "new", t.line,
                                            self.held_raw()))
            self.suppress_call = True
            return
        if t.text in CPP_KEYWORDS:
            self.stmt_start = False
            return
        if t.text in SCOPED_LOCK_TYPES and self.stmt_start:
            self.scan_lock_decl(t)
            return
        self.scan_ident_chain(t)

    def lambda_body_ahead(self) -> bool:
        """After a lambda's ']' (and optional params): specifiers then '{'?"""
        k = 0
        while True:
            u = self.p.peek(k)
            if u is None:
                return False
            if u.text == "{":
                return True
            if u.kind == "ident" and u.text in ("mutable", "noexcept",
                                                "constexpr"):
                k += 1
                continue
            if u.text == "->":
                k += 1
                # trailing return type tokens
                while True:
                    v = self.p.peek(k)
                    if v is None or v.text in ("{", ";", ")", ","):
                        break
                    k += 1
                continue
            return False

    def scan_lock_decl(self, t: Tok) -> None:
        """`MutexLock name(expr);` / `MutexPairLock name(a, b);`"""
        p = self.p
        kind = "scoped" if t.text == "MutexLock" else "pair"
        var = p.peek()
        if var is None or var.kind != "ident":
            return
        p.next()
        opener = p.peek()
        if opener is None or opener.text not in ("(", "{"):
            return
        close = ")" if opener.text == "(" else "}"
        arg_toks = p.skip_balanced(opener.text, close)[1:-1]
        exprs = split_args(arg_toks)
        self.fn.acquires.append(AcquireSite(
            lock_exprs=tuple(exprs), kind=kind, line=t.line,
            held=self.held_raw()))
        self.blocks[-1]["locks"].extend(exprs)
        self.stmt_start = False

    def scan_ident_chain(self, t: Tok) -> None:
        p = self.p
        chain = [t.text]
        line = t.line
        prev_idx = p.i - 2  # token before the chain start
        while True:
            nxt = p.peek()
            if nxt is not None and nxt.text == "::":
                follow = p.peek(1)
                if follow is not None and follow.kind == "ident":
                    p.next()
                    p.next()
                    chain.append(follow.text)
                    continue
            break
        nxt = p.peek()
        if nxt is not None and nxt.text == "<":
            if p.try_skip_template_args():
                nxt = p.peek()
        if nxt is not None and nxt.text == "(":
            callee = "::".join(chain)
            prev = self.prev_significant(prev_idx)
            receiver = None
            decl_ctor = False
            if prev is not None and prev.text in (".", "->"):
                recv_tok = self.p.toks[self.tok_index_before(prev_idx)] \
                    if self.tok_index_before(prev_idx) >= 0 else None
                if recv_tok is not None and recv_tok.kind == "ident":
                    receiver = recv_tok.text
            elif prev is not None and (prev.kind == "ident"
                                       or prev.text in (">", "&", "*")) \
                    and len(chain) == 1 and self.pending_type is not None:
                # `Type name(args)` — declaration with ctor args
                decl_ctor = True
                self.fn.locals[chain[0]] = self.pending_type
                callee = self.pending_type
            first_arg = self.peek_first_arg()
            self.record_call(callee, receiver, first_arg, line, decl_ctor)
            self.pending_type = None
            self.stmt_start = False
            return
        # Not a call: remember as a possible type prefix for `Type name(...)`
        # and `Type name = ...` local declarations.
        if nxt is not None and nxt.kind == "ident":
            self.pending_type = chain[-1]
        elif nxt is not None and nxt.text in ("&", "*"):
            follow = p.peek(1)
            if follow is not None and follow.kind == "ident":
                self.pending_type = chain[-1]
        elif nxt is not None and nxt.text in ("=", ";", ",", ")"):
            # `Type name = init;` — the chain here is the *name* when a type
            # came just before it.
            if self.pending_type is not None and len(chain) == 1:
                self.fn.locals[chain[0]] = self.pending_type
            self.pending_type = None
        self.stmt_start = False

    def tok_index_before(self, idx: int) -> int:
        return idx - 1

    def prev_significant(self, idx: int) -> Tok | None:
        return self.p.toks[idx] if 0 <= idx < len(self.p.toks) else None

    def peek_first_arg(self) -> str:
        """Position is ON '('. Lookahead-copy the first top-level argument
        without consuming (nested calls still get scanned normally)."""
        k = 1
        depth = 1
        out: list[str] = []
        while True:
            u = self.p.peek(k)
            if u is None:
                break
            if u.text in ("(", "[", "{"):
                depth += 1
            elif u.text in (")", "]", "}"):
                depth -= 1
                if depth == 0:
                    break
            elif u.text == "," and depth == 1:
                break
            out.append(u.text)
            k += 1
        return "".join(out)

    def record_call(self, callee: str, receiver: str | None, first_arg: str,
                    line: int, decl_ctor: bool) -> None:
        if self.suppress_call:
            self.suppress_call = False
            return
        deferred = any(blk["lambda"] for blk in self.blocks)
        held = self.held_raw()
        name = callee.rsplit("::", 1)[-1]
        self.fn.calls.append(CallSite(
            callee=callee, receiver=receiver, first_arg=first_arg, line=line,
            held=held, deferred=deferred, is_decl_ctor=decl_ctor))
        if name in ALLOC_MEMBER_GROWTH and receiver is not None:
            self.fn.allocs.append(AllocSite("container-grow", name, line,
                                            held))
        elif name in ALLOC_EXTERNAL:
            self.fn.allocs.append(AllocSite(ALLOC_EXTERNAL[name], name, line,
                                            held))


def split_args(toks: list[Tok]) -> list[str]:
    """Split a paren-group token list on top-level commas, joining exprs."""
    out: list[str] = []
    current: list[str] = []
    depth = 0
    for t in toks:
        if t.text in ("(", "[", "{", "<"):
            depth += 1
        elif t.text in (")", "]", "}", ">"):
            depth -= 1
        if t.text == "," and depth == 0:
            out.append("".join(current))
            current = []
        else:
            current.append(t.text)
    if current:
        out.append("".join(current))
    return [a for a in out if a]


def build_program_lexical(paths: list[pathlib.Path]) -> Program:
    program = Program()
    for path in paths:
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        toks, markers = tokenize(text)
        rel = rel_path(path)
        if any("protocol-scope" in ms for ms in markers.values()):
            program.protocol_files.add(rel)
        parser = _Parser(program, rel, toks, markers)
        parser.parse_decl_scope()
    return program


def rel_path(path: pathlib.Path) -> str:
    try:
        return path.resolve().relative_to(REPO).as_posix()
    except ValueError:
        return path.as_posix()

# ---------------------------------------------------------------------------
# Resolution: raw lock expressions → canonical lock names, call sites →
# target functions
# ---------------------------------------------------------------------------


def find_class_by_name(program: Program, type_name: str,
                       fn: Function) -> ClassInfo | None:
    """Resolve an unqualified type name to a parsed class, preferring the
    enclosing class's nested classes, then same-file classes, then a unique
    global match (lexicographically smallest as the deterministic tiebreak)."""
    suffix = "::" + type_name
    candidates = sorted(q for q in program.classes
                        if q == type_name or q.endswith(suffix))
    if not candidates:
        return None
    if fn.cls:
        nested = [q for q in candidates if q.startswith(fn.cls + "::")]
        if nested:
            return program.classes[nested[0]]
    same_file = [q for q in candidates
                 if program.classes[q].file == fn.file]
    if same_file:
        return program.classes[same_file[0]]
    return program.classes[candidates[0]]


def enclosing_chain(program: Program, cls: str | None) -> list[ClassInfo]:
    """The enclosing class plus any transitively nested classes — the
    scopes whose members an unqualified name inside a method can mean."""
    out: list[ClassInfo] = []
    if cls is None or cls not in program.classes:
        return out
    seen: set[str] = set()
    stack = [cls]
    while stack:
        q = stack.pop(0)
        if q in seen or q not in program.classes:
            continue
        seen.add(q)
        info = program.classes[q]
        out.append(info)
        stack.extend(sorted(info.nested))
    return out


def receiver_type(program: Program, fn: Function,
                  receiver: str) -> str | None:
    if receiver in fn.locals:
        return fn.locals[receiver]
    for info in enclosing_chain(program, fn.cls):
        if receiver in info.members:
            return info.members[receiver]
    return None


_EXPR_SPLIT_RE = re.compile(r"->|\.")


def canonical_lock(program: Program, fn: Function, raw: str) -> str:
    """Map a raw MutexLock argument expression to a stable canonical name
    (`Class::member`, `Function::local`, or a file-scoped pseudo-name)."""
    expr = raw.replace("this->", "").replace("(*this).", "")
    expr = expr.strip("&*()")
    parts = [p for p in _EXPR_SPLIT_RE.split(expr) if p]
    if not parts:
        return f"{fn.file}::<expr:{raw}>"
    member = parts[-1].strip("&* ")
    receiver = parts[0] if len(parts) > 1 else None
    if receiver is not None:
        receiver = receiver.split("(", 1)[0]  # call-result receivers
        rtype = receiver_type(program, fn, receiver)
        if rtype is not None and rtype != "auto":
            info = find_class_by_name(program, rtype, fn)
            if info is not None and member in info.mutex_members:
                return f"{info.qname}::{member}"
    # Unqualified (or unresolved receiver): enclosing class, then its
    # nested classes — this also resolves structured-binding receivers.
    holders = [info for info in enclosing_chain(program, fn.cls)
               if member in info.mutex_members]
    if holders:
        return f"{holders[0].qname}::{member}"
    same_file = sorted(q for q, info in program.classes.items()
                       if info.file == fn.file and member in
                       info.mutex_members)
    if len(same_file) == 1:
        return f"{same_file[0]}::{member}"
    global_holders = sorted(q for q, info in program.classes.items()
                            if member in info.mutex_members)
    if len(global_holders) == 1:
        return f"{global_holders[0]}::{member}"
    if fn.locals.get(member) == MUTEX_TYPE:
        return f"{fn.qname}::{member}"
    return f"{fn.file}::{member}"


def canon_held(program: Program, fn: Function,
               held_raw: tuple[str, ...]) -> tuple[str, ...]:
    return tuple(sorted({canonical_lock(program, fn, e) for e in held_raw}))


def resolve_targets(program: Program, name_index: dict[str, list[str]],
                    fn: Function, call: CallSite) -> tuple[str, ...]:
    callee = CALL_ALIASES.get(call.callee, call.callee)
    name = callee.rsplit("::", 1)[-1]
    if name in SCOPED_LOCK_TYPES or name == MUTEX_TYPE:
        return ()
    union = name_index.get(name, [])
    if "::" in callee:
        suffix = "::" + callee
        return tuple(k for k in union
                     if program.functions[k].qname == callee
                     or program.functions[k].qname.endswith(suffix))
    if call.receiver is not None:
        rtype = receiver_type(program, fn, call.receiver)
        if rtype is not None:
            if rtype in EXTERNAL_RECEIVER_TYPES:
                return ()
            info = find_class_by_name(program, rtype, fn)
            if info is not None:
                exact = tuple(k for k in union
                              if program.functions[k].cls == info.qname)
                if exact:
                    return exact
    elif fn.cls is not None and not call.is_decl_ctor:
        # Receiver-less call inside a method: C++ name lookup finds the
        # own-class member first.
        own = tuple(k for k in union
                    if program.functions[k].cls == fn.cls)
        if own:
            return own
    # Name union: every parsed function of that name (conservative virtual
    # dispatch — `channel.recv()` resolves to every recv override).
    return tuple(union)


def resolve_program(program: Program) -> None:
    name_index: dict[str, list[str]] = {}
    for key in sorted(program.functions):
        name_index.setdefault(program.functions[key].name, []).append(key)
    for key in sorted(program.functions):
        fn = program.functions[key]
        for a in fn.acquires:
            a.locks = tuple(canonical_lock(program, fn, e)
                            for e in a.lock_exprs)
        for c in fn.calls:
            c.held_locks = canon_held(program, fn, c.held)
            c.targets = resolve_targets(program, name_index, fn, c)
        for al in fn.allocs:
            al.held_locks = canon_held(program, fn, al.held)


# ---------------------------------------------------------------------------
# Interprocedural passes
# ---------------------------------------------------------------------------


def site_blocking(mb: dict[str, tuple[str, str]],
                  c: CallSite) -> tuple[str, str] | None:
    """(blocking kind, witness) if this call site may block, else None."""
    if c.is_decl_ctor:
        return None
    callee = CALL_ALIASES.get(c.callee, c.callee)
    name = callee.rsplit("::", 1)[-1]
    if name in BLOCKING_EXTERNAL:
        return BLOCKING_EXTERNAL[name], name
    for t in c.targets:            # targets are sorted at resolution time
        if t in mb:
            kind, via = mb[t]
            return kind, f"{name} -> {via}"
    return None


def compute_may_block(program: Program) -> dict[str, tuple[str, str]]:
    """fn key → (blocking kind, witness chain). Deferred (lambda-body)
    sites do not make the *enclosing* function blocking — the closure runs
    later, outside this frame."""
    mb: dict[str, tuple[str, str]] = {}
    for key in sorted(program.functions):
        fn = program.functions[key]
        for suffix, kind in sorted(BLOCKING_QNAME_SEEDS.items()):
            if fn.qname == suffix or fn.qname.endswith("::" + suffix):
                mb[key] = (kind, fn.qname)
    changed = True
    while changed:
        changed = False
        for key in sorted(program.functions):
            if key in mb:
                continue
            fn = program.functions[key]
            for c in fn.calls:
                if c.deferred:
                    continue
                b = site_blocking(mb, c)
                if b is not None:
                    mb[key] = (b[0], f"{fn.qname}: {b[1]}")
                    changed = True
                    break
    return mb


def compute_may_acquire(program: Program) -> dict[str, dict[str, str]]:
    """fn key → {canonical lock → witness} for every lock the function may
    acquire, directly or transitively (deferred calls included: a closure
    handed to the pool still runs this code)."""
    acq: dict[str, dict[str, str]] = {k: {} for k in program.functions}
    for key in sorted(program.functions):
        fn = program.functions[key]
        for a in fn.acquires:
            for lock in a.locks:
                acq[key].setdefault(lock, f"{fn.qname}:{a.line}")
    changed = True
    while changed:
        changed = False
        for key in sorted(program.functions):
            fn = program.functions[key]
            for c in fn.calls:
                for t in c.targets:
                    for lock in sorted(acq.get(t, {})):
                        if lock not in acq[key]:
                            acq[key][lock] = \
                                f"{fn.qname} -> {acq[t][lock]}"
                            changed = True
    return acq


def build_lock_order(program: Program,
                     acq: dict[str, dict[str, str]]) -> dict[tuple[str, str],
                                                             str]:
    """(held, acquired) → witness. MutexPairLock contributes no edge
    between its own two locks (std::lock orders them atomically)."""
    edges: dict[tuple[str, str], str] = {}

    def add(h: str, lock: str, witness: str) -> None:
        key = (h, lock)
        if key not in edges or witness < edges[key]:
            edges[key] = witness

    for fkey in sorted(program.functions):
        fn = program.functions[fkey]
        for a in fn.acquires:
            held = canon_held(program, fn, a.held)
            for h in held:
                for lock in a.locks:
                    if lock != h:
                        add(h, lock, f"{fn.qname} ({fn.file}:{a.line})")
        for c in fn.calls:
            if c.deferred or not c.held_locks:
                continue
            for t in c.targets:
                for lock in sorted(acq.get(t, {})):
                    for h in c.held_locks:
                        if lock != h:
                            add(h, lock,
                                f"{fn.qname} ({fn.file}:{c.line}) -> "
                                f"{acq[t][lock]}")
    return edges


def find_lock_cycles(edges: dict[tuple[str, str], str]) -> list[list[str]]:
    """SCCs of size ≥ 2 (plus self-loops) in the lock-order digraph —
    iterative Tarjan, deterministic node order."""
    graph: dict[str, list[str]] = {}
    for (a, b) in edges:
        graph.setdefault(a, []).append(b)
        graph.setdefault(b, [])
    for v in graph:
        graph[v].sort()
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []

    def strongconnect(root: str) -> None:
        work = [(root, iter(graph[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(graph[w])))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                scc: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                if len(scc) > 1 or (v, v) in edges:
                    sccs.append(sorted(scc))

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    sccs.sort()
    return sccs


def hot_reachable(program: Program) -> dict[str, tuple[str, str]]:
    """fn key → (root qname, immediate caller qname) for every function
    reachable from an `// analyze:hot` root. Deferred calls count: work
    handed to the pool from the hot path still burns hot-path time."""
    reach: dict[str, tuple[str, str]] = {}
    queue: list[str] = []
    for key in sorted(program.functions):
        fn = program.functions[key]
        if fn.hot:
            reach[key] = (fn.qname, fn.qname)
            queue.append(key)
    while queue:
        key = queue.pop(0)
        fn = program.functions[key]
        root = reach[key][0]
        for c in fn.calls:
            for t in c.targets:
                if t not in reach:
                    reach[t] = (root, fn.qname)
                    queue.append(t)
    return reach


# ---------------------------------------------------------------------------
# Finding generation
# ---------------------------------------------------------------------------


def protocol_scope(program: Program, file: str) -> bool:
    if file in program.protocol_files:
        return True
    p = pathlib.PurePosixPath(file)
    return (len(p.parts) >= 2 and p.parts[0] == "src"
            and p.parts[1] in PROTOCOL_MODULES
            and p.stem not in PROTOCOL_EXEMPT_STEMS)


def run_passes(program: Program) -> tuple[list[Finding],
                                          dict[tuple[str, str], str]]:
    resolve_program(program)
    mb = compute_may_block(program)
    acq = compute_may_acquire(program)
    edges = build_lock_order(program, acq)
    findings: list[Finding] = []

    for scc in find_lock_cycles(edges):
        subject = " <-> ".join(scc)
        sample = []
        for (a, b), w in sorted(edges.items()):
            if a in scc and b in scc:
                sample.append(f"{a} -> {b} [{w}]")
        loc = sample[0] if sample else ""
        m = re.search(r"\(([^():]+):(\d+)\)", loc)
        file = m.group(1) if m else "src"
        line = int(m.group(2)) if m else 1
        findings.append(Finding(
            rule="lock-cycle", file=file, line=line, subject=subject,
            message=("lock-order cycle (potential deadlock): "
                     + "; ".join(sample[:4]))))

    for fkey in sorted(program.functions):
        fn = program.functions[fkey]
        for c in fn.calls:
            if c.deferred or not c.held_locks:
                continue
            b = site_blocking(mb, c)
            if b is None:
                continue
            kind, via = b
            held = set(c.held_locks)
            name = CALL_ALIASES.get(c.callee, c.callee).rsplit("::", 1)[-1]
            cv_recv = c.receiver is not None and \
                receiver_type(program, fn, c.receiver) == "CondVar"
            if kind == "condvar-wait" and name in ("wait", "wait_until") \
                    and (not c.targets or cv_recv) and c.first_arg:
                # cv.wait(m) holding only m is the sanctioned wait loop.
                held.discard(canonical_lock(program, fn, c.first_arg))
                if not held:
                    continue
            locks = ",".join(sorted(held))
            findings.append(Finding(
                rule="block-under-lock", file=fn.file, line=c.line,
                subject=f"{fn.qname}|{name}|{locks}",
                message=(f"{fn.qname} calls {c.callee} ({kind}; via {via}) "
                         f"while holding {locks}")))

    for fkey in sorted(program.functions):
        fn = program.functions[fkey]
        if not protocol_scope(program, fn.file):
            continue
        for c in fn.calls:
            if c.is_decl_ctor:
                continue
            name = c.callee.rsplit("::", 1)[-1]
            if name not in UNBOUNDED_WAIT_NAMES:
                continue
            findings.append(Finding(
                rule="unbounded-wait", file=fn.file, line=c.line,
                subject=f"{fn.qname}|{name}",
                message=(f"{fn.qname} calls unbounded {name}() in the "
                         f"protocol layer; prefer the _timeout variant "
                         f"with a deadline")))

    reach = hot_reachable(program)
    for fkey in sorted(reach):
        fn = program.functions[fkey]
        if not fn.allocs:
            continue
        root, via = reach[fkey]
        by_kind: dict[str, list[AllocSite]] = {}
        for al in fn.allocs:
            by_kind.setdefault(al.kind, []).append(al)
        for kind in sorted(by_kind):
            sites = by_kind[kind]
            line = min(s.line for s in sites)
            whats = ",".join(sorted({s.what for s in sites}))
            locked = any(s.held_locks for s in sites)
            note = "; some under a held lock" if locked else ""
            hop = f" via {via}" if via != root else ""
            findings.append(Finding(
                rule="hot-alloc", file=fn.file, line=line,
                subject=f"{fn.qname}|{kind}",
                message=(f"{fn.qname} (hot: root {root}{hop}) has "
                         f"{len(sites)} {kind} allocation site(s) "
                         f"[{whats}]{note}")))

    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.subject))
    return findings, edges

# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

DEFAULT_JUSTIFICATIONS = {
    "hot-alloc": ("pre-arena hot-path allocation baseline (ROADMAP item 3):"
                  " burn down, do not extend"),
}
PLACEHOLDER_JUSTIFICATION = "REVIEW: justify this entry"


def load_baseline(path: pathlib.Path) -> dict:
    if not path.is_file():
        return {"version": 1, "findings": {}}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"analyze: cannot read baseline {path}: {exc}")
    data.setdefault("findings", {})
    return data


def render_baseline(findings: list[Finding],
                    edges: dict[tuple[str, str], str],
                    old: dict) -> str:
    """Canonical baseline text: every current finding (keeping the old
    justification when the fingerprint already existed) plus the lock-order
    graph. Byte-stable: fully sorted, fixed indentation."""
    old_findings = old.get("findings", {})
    entries: dict[str, dict] = {}
    for f in findings:
        fp = f.fingerprint
        prev = old_findings.get(fp, {})
        justification = prev.get("justification") or \
            DEFAULT_JUSTIFICATIONS.get(f.rule, PLACEHOLDER_JUSTIFICATION)
        entries[fp] = {
            "rule": f.rule,
            "subject": f.subject,
            "justification": justification,
        }
    nodes = sorted({n for e in edges for n in e})
    doc = {
        "version": 1,
        "tool": "teamnet-analyze",
        "frontend": "lexical",
        "lock_order": {
            "nodes": nodes,
            "edges": [
                {"from": a, "to": b, "witness": w}
                for (a, b), w in sorted(edges.items())
            ],
        },
        "findings": {fp: entries[fp] for fp in sorted(entries)},
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def split_by_baseline(findings: list[Finding],
                      baseline: dict) -> tuple[list[Finding], list[Finding],
                                               list[str]]:
    known = baseline.get("findings", {})
    new = [f for f in findings if f.fingerprint not in known]
    old = [f for f in findings if f.fingerprint in known]
    produced = {f.fingerprint for f in findings}
    stale = sorted(fp for fp in known if fp not in produced)
    return new, old, stale


# ---------------------------------------------------------------------------
# clang.cindex frontend (optional cross-check; not the gating frontend)
# ---------------------------------------------------------------------------


def build_program_clang(paths: list[pathlib.Path],
                        build_dir: pathlib.Path) -> Program:
    """Best-effort IR construction via libclang over the CMake-exported
    compile_commands.json. Used as a CI cross-check where python3-clang is
    installed; the lexical frontend is the deterministic gating one."""
    try:
        from clang import cindex
    except ImportError as exc:
        raise SystemExit(
            "analyze: --frontend clang requires the python3-clang package "
            f"and libclang ({exc}); the default --frontend lexical has no "
            "dependencies")
    try:
        cdb = cindex.CompilationDatabase.fromDirectory(str(build_dir))
    except cindex.CompilationDatabaseError as exc:
        raise SystemExit(
            f"analyze: no compile_commands.json under {build_dir} "
            f"(configure with cmake first): {exc}")
    index = cindex.Index.create()
    program = Program()
    wanted = {p.resolve() for p in paths}
    K = cindex.CursorKind

    def qname_of(cur) -> str:
        parts = []
        c = cur
        while c is not None and c.kind != K.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def scan_body(fn: Function, cur, held: tuple[str, ...],
                  deferred: bool) -> None:
        for child in cur.get_children():
            kind = child.kind
            if kind == K.LAMBDA_EXPR:
                scan_body(fn, child, (), True)
                continue
            if kind == K.VAR_DECL:
                tname = child.type.spelling.rsplit("::", 1)[-1]
                if tname in SCOPED_LOCK_TYPES:
                    args = [t.spelling for t in child.get_children()
                            if t.kind.is_expression()]
                    exprs = tuple(a for a in args if a) or ("<unknown>",)
                    fn.acquires.append(AcquireSite(
                        lock_exprs=exprs,
                        kind="scoped" if tname == "MutexLock" else "pair",
                        line=child.location.line, held=held))
                    held = held + exprs
                    continue
                fn.locals[child.spelling] = \
                    child.type.spelling.rsplit("::", 1)[-1].rstrip(" &*")
            if kind == K.CXX_NEW_EXPR:
                fn.allocs.append(AllocSite("new", "new",
                                           child.location.line, held))
            if kind == K.CALL_EXPR and child.spelling:
                name = child.spelling
                fn.calls.append(CallSite(
                    callee=name, receiver=None, first_arg="",
                    line=child.location.line, held=held,
                    deferred=deferred))
                if name in ALLOC_MEMBER_GROWTH:
                    fn.allocs.append(AllocSite("container-grow", name,
                                               child.location.line, held))
                elif name in ALLOC_EXTERNAL:
                    fn.allocs.append(AllocSite(ALLOC_EXTERNAL[name], name,
                                               child.location.line, held))
            scan_body(fn, child, held, deferred)

    def visit(cur, file_rel: str, markers: dict[int, set[str]]) -> None:
        for child in cur.get_children():
            if child.location.file is None:
                continue
            floc = pathlib.Path(str(child.location.file)).resolve()
            if floc not in wanted:
                continue
            kind = child.kind
            if kind in (K.CLASS_DECL, K.STRUCT_DECL) and \
                    child.is_definition():
                q = qname_of(child)
                info = program.classes.setdefault(
                    q, ClassInfo(qname=q, file=file_rel))
                for m in child.get_children():
                    if m.kind == K.FIELD_DECL:
                        tname = m.type.spelling.rsplit("::", 1)[-1]
                        info.members.setdefault(m.spelling, tname)
                        if tname == MUTEX_TYPE:
                            info.mutex_members.add(m.spelling)
                visit(child, file_rel, markers)
                continue
            if kind in (K.NAMESPACE, K.LINKAGE_SPEC):
                visit(child, file_rel, markers)
                continue
            if kind in (K.CXX_METHOD, K.FUNCTION_DECL, K.CONSTRUCTOR,
                        K.DESTRUCTOR, K.FUNCTION_TEMPLATE) and \
                    child.is_definition():
                q = qname_of(child)
                parent = child.semantic_parent
                cls = qname_of(parent) if parent is not None and \
                    parent.kind in (K.CLASS_DECL, K.STRUCT_DECL) else None
                fn = Function(qname=q, name=child.spelling, file=file_rel,
                              line=child.location.line, cls=cls)
                line = child.location.line
                for probe in range(max(1, line - 3), line + 1):
                    if "hot" in markers.get(probe, set()):
                        fn.hot = True
                scan_body(fn, child, (), False)
                program.add_function(fn)

    for path in sorted(wanted):
        cmds = cdb.getCompileCommands(str(path))
        cmd_args = []
        if cmds:
            cmd_args = [a for a in list(cmds[0].arguments)[1:-1]
                        if a not in ("-c", "-o")]
        try:
            tu = index.parse(str(path), args=cmd_args)
        except cindex.TranslationUnitLoadError:
            continue
        _, markers = tokenize(path.read_text(encoding="utf-8"))
        rel = rel_path(path)
        if any("protocol-scope" in ms for ms in markers.values()):
            program.protocol_files.add(rel)
        visit(tu.cursor, rel, markers)
    return program


# ---------------------------------------------------------------------------
# Self-test over tools/fixtures/
# ---------------------------------------------------------------------------

# Each entry: fixture file, findings that MUST fire (rule + subject
# substring) and findings that MUST NOT.
SELF_TEST_CASES = [
    {
        "fixture": "fixture_lock_cycle.cpp",
        "must": [("lock-cycle", "A::m_"), ("lock-cycle", "B::m_")],
        "must_not": [("lock-cycle", "PairTaker")],
    },
    {
        "fixture": "fixture_block_under_lock.cpp",
        "must": [
            ("block-under-lock", "direct_block"),
            ("block-under-lock", "outer_block"),
            ("unbounded-wait", "serve_forever"),
        ],
        "must_not": [
            ("block-under-lock", "good_wait"),
            ("block-under-lock", "deferred_ok"),
        ],
    },
    {
        "fixture": "fixture_hot_alloc.cpp",
        "must": [
            ("hot-alloc", "hot_entry|new"),
            ("hot-alloc", "hot_helper|container-grow"),
        ],
        "must_not": [("hot-alloc", "cold_path")],
    },
]


def run_self_test(frontend: str, build_dir: pathlib.Path) -> int:
    failures: list[str] = []
    checks = 0

    def build(paths: list[pathlib.Path]) -> Program:
        if frontend == "clang":
            return build_program_clang(paths, build_dir)
        return build_program_lexical(paths)

    for case in SELF_TEST_CASES:
        path = FIXTURES / case["fixture"]
        if not path.is_file():
            failures.append(f"{case['fixture']}: fixture missing")
            continue
        findings, _ = run_passes(build([path]))
        got = [(f.rule, f.subject) for f in findings]
        for rule, substr in case["must"]:
            checks += 1
            if not any(r == rule and substr in s for r, s in got):
                failures.append(
                    f"{case['fixture']}: expected {rule} finding matching "
                    f"'{substr}'; got {got}")
        for rule, substr in case["must_not"]:
            checks += 1
            if any(r == rule and substr in s for r, s in got):
                failures.append(
                    f"{case['fixture']}: unexpected {rule} finding matching "
                    f"'{substr}' in {got}")

    # Baseline suppression + fingerprint stability: the checked-in fixture
    # baseline carries the exact fingerprints this run must reproduce.
    fx = FIXTURES / "fixture_baseline_ok.cpp"
    bl_path = FIXTURES / "fixture_baseline.json"
    if fx.is_file() and bl_path.is_file():
        findings, _ = run_passes(build([fx]))
        baseline = load_baseline(bl_path)
        new, old, stale = split_by_baseline(findings, baseline)
        checks += 3
        if not findings:
            failures.append("fixture_baseline_ok.cpp: produced no findings")
        if new:
            failures.append(
                "fixture_baseline_ok.cpp: baseline failed to suppress: "
                + ", ".join(f"{f.fingerprint} {f.subject}" for f in new))
        if stale:
            failures.append(
                "fixture_baseline_ok.cpp: stale fingerprints (fingerprint "
                "drift): " + ", ".join(stale))
    else:
        failures.append("fixture_baseline_ok.cpp / fixture_baseline.json "
                        "missing")

    if failures:
        for msg in failures:
            print(f"self-test FAIL: {msg}")
        return 1
    print(f"analyze self-test: {checks} checks passed "
          f"({frontend} frontend)")
    return 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def default_files() -> list[pathlib.Path]:
    out = [p for p in sorted(SRC.rglob("*"))
           if p.suffix in (".cpp", ".hpp") and p not in EXCLUDED_FILES]
    return out


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="analyze.py",
        description="TeamNet whole-program static analyzer (deep tier)")
    ap.add_argument("files", nargs="*", type=pathlib.Path,
                    help="files to analyze (default: src/**/*.{cpp,hpp})")
    ap.add_argument("--format", choices=("plain", "github"),
                    default="plain")
    ap.add_argument("--baseline", type=pathlib.Path,
                    default=DEFAULT_BASELINE)
    ap.add_argument("--write-baseline", action="store_true",
                    help="refresh the baseline file (keeps justifications "
                         "of entries that survive)")
    ap.add_argument("--check-baseline", action="store_true",
                    help="fail if rerunning would change the baseline file")
    ap.add_argument("--json-out", type=pathlib.Path,
                    help="write findings + lock-order graph as JSON")
    ap.add_argument("--frontend", choices=("lexical", "clang"),
                    default="lexical")
    ap.add_argument("--build-dir", type=pathlib.Path,
                    default=REPO / "build",
                    help="build dir with compile_commands.json "
                         "(clang frontend only)")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args(argv)

    if args.self_test:
        return run_self_test(args.frontend, args.build_dir)

    paths = [p.resolve() for p in args.files] if args.files \
        else default_files()
    if not paths:
        print("analyze: no input files", file=sys.stderr)
        return 2
    if args.frontend == "clang":
        program = build_program_clang(paths, args.build_dir)
    else:
        program = build_program_lexical(paths)
    findings, edges = run_passes(program)
    baseline = load_baseline(args.baseline)
    new, old, stale = split_by_baseline(findings, baseline)

    if args.json_out:
        known = baseline.get("findings", {})
        doc = {
            "findings": [
                {
                    "rule": f.rule, "file": f.file, "line": f.line,
                    "fingerprint": f.fingerprint, "subject": f.subject,
                    "message": f.message,
                    "baselined": f.fingerprint in known,
                }
                for f in findings
            ],
            "lock_order": {
                "nodes": sorted({n for e in edges for n in e}),
                "edges": [{"from": a, "to": b, "witness": w}
                          for (a, b), w in sorted(edges.items())],
            },
            "summary": {"total": len(findings), "new": len(new),
                        "baselined": len(old), "stale": len(stale)},
        }
        args.json_out.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    if args.write_baseline:
        text = render_baseline(findings, edges, baseline)
        args.baseline.write_text(text, encoding="utf-8")
        print(f"analyze: wrote {args.baseline.name} with {len(findings)} "
              f"finding(s), {len(edges)} lock-order edge(s)")
        return 0

    if args.check_baseline:
        want = render_baseline(findings, edges, baseline)
        have = args.baseline.read_text(encoding="utf-8") \
            if args.baseline.is_file() else ""
        if want != have:
            print("analyze: baseline is out of date (stale entries, new "
                  "findings, or lock-order drift); rerun with "
                  "--write-baseline and review the diff", file=sys.stderr)
            if stale:
                print(f"analyze: {len(stale)} stale fingerprint(s): "
                      + ", ".join(stale), file=sys.stderr)
            for f in new:
                print(f"analyze: new: {f}", file=sys.stderr)
            return 1
        print(f"analyze: baseline current ({len(findings)} finding(s), "
              f"{len(edges)} lock-order edge(s))")
        return 0

    for f in new:
        print(f.github() if args.format == "github" else str(f))
    for fp in stale:
        entry = baseline["findings"][fp]
        print(f"analyze: warning: stale baseline entry {fp} "
              f"[{entry.get('rule')}] {entry.get('subject')} — run "
              f"--write-baseline", file=sys.stderr)
    print(f"analyze: {len(program.functions)} function(s), "
          f"{len(edges)} lock-order edge(s), {len(findings)} finding(s): "
          f"{len(old)} baselined, {len(new)} new", file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
