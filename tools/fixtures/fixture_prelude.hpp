#pragma once
// Mock of the src/common/annotations.hpp lock funnel plus a channel, so
// the fixtures are self-contained translation units for the clang
// frontend. The lexical frontend parses each fixture standalone (includes
// are blanked with the rest of the preprocessor lines) and never reads
// this header, which is also why it is not itself a fixture.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

class Mutex {};

class MutexLock {
 public:
  explicit MutexLock(Mutex&) {}
};

class MutexPairLock {
 public:
  MutexPairLock(Mutex&, Mutex&) {}
};

class CondVar {
 public:
  void wait(Mutex&) {}
  void notify_all() {}
};

class Channel {
 public:
  std::string recv() { return {}; }
  void send(const std::string&) {}
};
