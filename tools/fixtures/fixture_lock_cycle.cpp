// Fixture for analyze.py --self-test: the lock-cycle pass.
//
// A::lock_then_peer acquires B::m_ while holding A::m_, and
// B::lock_then_peer acquires A::m_ while holding B::m_ — a two-node cycle
// in the acquired-while-holding digraph, found interprocedurally (neither
// function acquires both locks itself).
//
// PairTaker uses MutexPairLock in both argument orders; std::lock orders
// the pair atomically, so this must contribute no edges and no cycle.
#include "fixture_prelude.hpp"

struct B;

struct A {
  Mutex m_;
  B* peer_ = nullptr;
  void lock_then_peer();
};

struct B {
  Mutex m_;
  A* peer_ = nullptr;
  void lock_then_peer();
};

void A::lock_then_peer() {
  MutexLock lock(m_);
  peer_->lock_then_peer();
}

void B::lock_then_peer() {
  MutexLock lock(m_);
  peer_->lock_then_peer();
}

struct PairTaker {
  Mutex a_;
  Mutex b_;
  void forward() { MutexPairLock lock(a_, b_); }
  void backward() { MutexPairLock lock(b_, a_); }
};
