// Fixture for analyze.py --self-test: the hot-path allocation pass.
//
// hot_entry is a marked hot root: its own new-expression and the
// container growth inside hot_helper (reached through the call graph)
// must both be reported. cold_path allocates too but is unreachable from
// any root and must stay silent.
#include "fixture_prelude.hpp"

struct Batch {
  std::vector<int> items_;
  void hot_helper(int v) {
    items_.push_back(v);
  }
};

// analyze:hot
int* hot_entry(Batch& b) {
  b.hot_helper(1);
  return new int[16];
}

void cold_path() {
  int* p = new int[4];
  delete[] p;
}
