// Fixture for analyze.py --self-test: the block-under-lock and
// unbounded-wait passes.
//
// direct_block recv()s while holding m_ (direct finding); outer_block
// reaches a blocking send() through helper() (interprocedural finding);
// good_wait is the sanctioned cv.wait(m) loop holding only m (exempt);
// deferred_ok only *captures* a blocking call in a closure while locked
// (exempt — the closure runs later, outside the critical section).
// serve_forever's unbounded recv() fires the protocol-scope discipline
// rule enabled by the marker below.
//
// analyze:protocol-scope
#include "fixture_prelude.hpp"

struct Proto {
  Mutex m_;
  CondVar cv_;
  Channel* ch_ = nullptr;
  bool ready_ = false;

  std::string direct_block() {
    MutexLock lock(m_);
    return ch_->recv();
  }

  void helper() { ch_->send(""); }

  void outer_block() {
    MutexLock lock(m_);
    helper();
  }

  void good_wait() {
    MutexLock lock(m_);
    while (!ready_) {
      cv_.wait(m_);
    }
  }

  void deferred_ok(std::vector<std::function<void()>>& out) {
    MutexLock lock(m_);
    out.push_back([this] { ch_->send(""); });
  }

  std::string serve_forever() { return ch_->recv(); }
};
