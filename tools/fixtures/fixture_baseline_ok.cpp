// Fixture for analyze.py --self-test: baseline suppression and
// fingerprint stability.
//
// Both findings below are fingerprinted in fixture_baseline.json, so the
// self-test must see zero NEW findings and zero stale entries. Because
// the baked fingerprints are sha256(rule|subject) prefixes, this fixture
// doubles as the fingerprint-stability gate: any change to the subject
// scheme or hashing shows up here as both a new and a stale entry.
//
// analyze:protocol-scope
#include "fixture_prelude.hpp"

struct Cache {
  Mutex m_;
  Channel* ch_ = nullptr;

  void flush_under_lock() {
    MutexLock lock(m_);
    std::fprintf(stderr, "flush\n");
  }

  std::string serve() { return ch_->recv(); }
};
