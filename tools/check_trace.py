#!/usr/bin/env python3
"""Validator for TeamNet --trace output (Chrome trace-event JSON).

Checks the structural invariants DESIGN.md §10 promises for every trace the
tracer writes, so CI can gate on them after a real bench run:

  * the file is valid JSON: one object with a "traceEvents" list;
  * every event has "ph", integer "pid"/"tid", and (except metadata 'M'
    events) a finite numeric "ts";
  * per (pid, tid) track, timestamps are non-decreasing in event order —
    each track is stamped by one monotone clock (a node's virtual time
    under the simulator, the steady clock on real TCP);
  * duration events are balanced: on each track, every 'E' closes an
    earlier 'B' and no 'B' is left open at end of trace;
  * instant ('i') events carry a scope ("s").

Usage:
  tools/check_trace.py TRACE.json [TRACE2.json ...]
  tools/check_trace.py --self-test    prove each check fires on a seeded
                                      bad document and accepts a good one
"""

from __future__ import annotations

import argparse
import json
import math
import sys


def validate(doc: object, label: str = "trace") -> list[str]:
    """Returns a list of human-readable violations (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return [f"{label}: top level must be an object with a "
                f"\"traceEvents\" list"]

    last_ts: dict[tuple[int, int], float] = {}
    open_spans: dict[tuple[int, int], int] = {}
    for i, event in enumerate(doc["traceEvents"]):
        where = f"{label}: event {i}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(ph, str) or len(ph) != 1:
            errors.append(f"{where}: missing/malformed \"ph\"")
            continue
        pid = event.get("pid")
        tid = event.get("tid")
        if not isinstance(pid, int) or not isinstance(tid, int):
            errors.append(f"{where}: \"pid\"/\"tid\" must be integers")
            continue
        if ph == "M":
            continue  # metadata events carry no timestamp
        track = (pid, tid)

        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) \
                or not math.isfinite(ts):
            errors.append(f"{where}: missing/non-finite \"ts\"")
            continue
        if track in last_ts and ts < last_ts[track]:
            errors.append(
                f"{where}: timestamp {ts} goes backwards on track "
                f"pid={pid} tid={tid} (previous {last_ts[track]}) — each "
                f"track must be stamped by one monotone clock")
        last_ts[track] = ts

        if ph == "B":
            open_spans[track] = open_spans.get(track, 0) + 1
        elif ph == "E":
            depth = open_spans.get(track, 0)
            if depth == 0:
                errors.append(
                    f"{where}: 'E' with no open 'B' on track pid={pid} "
                    f"tid={tid}")
            else:
                open_spans[track] = depth - 1
        elif ph == "i":
            if "s" not in event:
                errors.append(f"{where}: instant event missing scope \"s\"")

    for (pid, tid), depth in sorted(open_spans.items()):
        if depth > 0:
            errors.append(
                f"{label}: {depth} unclosed 'B' event(s) on track "
                f"pid={pid} tid={tid} at end of trace")
    return errors


def check_file(path: str) -> list[str]:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        return [f"{path}: cannot read: {e}"]
    except json.JSONDecodeError as e:
        return [f"{path}: invalid JSON: {e}"]
    return validate(doc, path)


def self_test() -> int:
    """Each invariant must fire on a seeded violation and accept the fix."""
    good = {"traceEvents": [
        {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
         "args": {"name": "teamnet"}},
        {"ph": "M", "name": "thread_name", "pid": 0, "tid": 1,
         "args": {"name": "node1"}},
        {"ph": "B", "pid": 0, "tid": 0, "ts": 0, "name": "query"},
        {"ph": "B", "pid": 0, "tid": 0, "ts": 10.5, "name": "broadcast"},
        {"ph": "i", "pid": 0, "tid": 0, "ts": 11, "name": "fault", "s": "t"},
        {"ph": "E", "pid": 0, "tid": 0, "ts": 20},
        {"ph": "C", "pid": 0, "tid": 1, "ts": 5, "name": "tx_bytes",
         "args": {"value": 128}},
        {"ph": "E", "pid": 0, "tid": 0, "ts": 30},
    ]}
    cases = [
        ("valid document", good, 0),
        ("top level not an object", [1, 2], 1),
        ("traceEvents missing", {"events": []}, 1),
        ("event missing ph",
         {"traceEvents": [{"pid": 0, "tid": 0, "ts": 0}]}, 1),
        ("non-integer tid",
         {"traceEvents": [{"ph": "i", "pid": 0, "tid": "zero", "ts": 0,
                           "s": "t"}]}, 1),
        ("missing ts",
         {"traceEvents": [{"ph": "i", "pid": 0, "tid": 0, "s": "t"}]}, 1),
        ("non-finite ts",
         {"traceEvents": [{"ph": "i", "pid": 0, "tid": 0, "ts": None,
                           "s": "t"}]}, 1),
        ("backwards timestamp on one track",
         {"traceEvents": [
             {"ph": "B", "pid": 0, "tid": 0, "ts": 10, "name": "a"},
             {"ph": "E", "pid": 0, "tid": 0, "ts": 5}]}, 1),
        ("interleaved tracks each monotone",
         {"traceEvents": [
             {"ph": "i", "pid": 0, "tid": 0, "ts": 10, "s": "t"},
             {"ph": "i", "pid": 0, "tid": 1, "ts": 1, "s": "t"},
             {"ph": "i", "pid": 0, "tid": 0, "ts": 11, "s": "t"}]}, 0),
        ("E without B",
         {"traceEvents": [{"ph": "E", "pid": 0, "tid": 0, "ts": 1}]}, 1),
        ("unclosed B",
         {"traceEvents": [
             {"ph": "B", "pid": 0, "tid": 0, "ts": 1, "name": "a"}]}, 1),
        ("E on the wrong track",
         {"traceEvents": [
             {"ph": "B", "pid": 0, "tid": 0, "ts": 1, "name": "a"},
             {"ph": "E", "pid": 0, "tid": 1, "ts": 2}]}, 2),
        ("instant without scope",
         {"traceEvents": [{"ph": "i", "pid": 0, "tid": 0, "ts": 1,
                           "name": "x"}]}, 1),
        ("metadata events need no ts", {"traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 0, "tid": 0}]}, 0),
    ]
    failures = 0
    for name, doc, want_errors in cases:
        errors = validate(doc, "seeded")
        ok = (len(errors) == want_errors)
        if not ok:
            failures += 1
        print(f"{'ok  ' if ok else 'FAIL'} [{name}] -> {len(errors)} "
              f"error(s), expected {want_errors}")
        if not ok:
            for e in errors:
                print(f"      {e}")
    if failures:
        print(f"self-test: {failures} case(s) failed", file=sys.stderr)
        return 1
    print(f"self-test: all {len(cases)} cases passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="trace files to validate")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each check catches a seeded violation")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.files:
        parser.error("no trace files given (or use --self-test)")

    failures = 0
    for path in args.files:
        errors = check_file(path)
        for e in errors:
            print(e)
        if errors:
            failures += 1
        else:
            print(f"{path}: OK")
    if failures:
        print(f"tools/check_trace.py: {failures} file(s) failed",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
