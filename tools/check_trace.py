#!/usr/bin/env python3
"""Validator for TeamNet --trace output (Chrome trace-event JSON).

Checks the structural invariants DESIGN.md §10 promises for every trace the
tracer writes, so CI can gate on them after a real bench run:

  * the file is valid JSON: one object with a "traceEvents" list;
  * every event has "ph", integer "pid"/"tid", and (except metadata 'M'
    events) a finite numeric "ts";
  * per (pid, tid) track, timestamps are non-decreasing in event order —
    each track is stamped by one monotone clock (a node's virtual time
    under the simulator, the steady clock on real TCP);
  * duration events are balanced: on each track, every 'E' closes an
    earlier 'B' and no 'B' is left open at end of trace;
  * instant ('i') events carry a scope ("s");
  * flow events pair: every 's' (flow start) carries "cat" and an integer
    "id", is finished by exactly one 'f' with the same (cat, name, id), no
    flow dangles at end of trace, and the finish timestamp is not before
    the start (pairing is order-independent — the file may be grouped per
    track, not globally time-sorted);
  * per-query timeline marks ("qtl" instants with args qid/lane/seq/mark
    and a "run" scenario-epoch tag) are ordered: within one (run, qid,
    lane) no seq repeats and timestamps are non-decreasing when walked in
    seq order — lane -1 is the master's phase sequence, lane w >= 0 is
    worker w's mark sequence, both stamped by Lamport-consistent clocks
    under the simulator. Sequential runs in one trace each restart qid at
    1; the run tag keeps their lanes distinct.

Usage:
  tools/check_trace.py TRACE.json [TRACE2.json ...]
  tools/check_trace.py --self-test    prove each check fires on a seeded
                                      bad document and accepts a good one
"""

from __future__ import annotations

import argparse
import json
import math
import sys


def validate(doc: object, label: str = "trace") -> list[str]:
    """Returns a list of human-readable violations (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return [f"{label}: top level must be an object with a "
                f"\"traceEvents\" list"]

    last_ts: dict[tuple[int, int], float] = {}
    open_spans: dict[tuple[int, int], int] = {}
    # (cat, name, id) -> {"s": [(index, ts)], "f": [(index, ts)]}; pairing
    # is resolved after the scan because the start and finish live on
    # different tracks and the file is not globally time-sorted.
    flows: dict[tuple[str, str, int], dict[str, list[tuple[int, float]]]] = {}
    # (run, qid, lane) -> [(seq, ts, index)]
    qtl: dict[tuple[int, int, int], list[tuple[int, float, int]]] = {}
    for i, event in enumerate(doc["traceEvents"]):
        where = f"{label}: event {i}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(ph, str) or len(ph) != 1:
            errors.append(f"{where}: missing/malformed \"ph\"")
            continue
        pid = event.get("pid")
        tid = event.get("tid")
        if not isinstance(pid, int) or not isinstance(tid, int):
            errors.append(f"{where}: \"pid\"/\"tid\" must be integers")
            continue
        if ph == "M":
            continue  # metadata events carry no timestamp
        track = (pid, tid)

        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) \
                or not math.isfinite(ts):
            errors.append(f"{where}: missing/non-finite \"ts\"")
            continue
        if track in last_ts and ts < last_ts[track]:
            errors.append(
                f"{where}: timestamp {ts} goes backwards on track "
                f"pid={pid} tid={tid} (previous {last_ts[track]}) — each "
                f"track must be stamped by one monotone clock")
        last_ts[track] = ts

        if ph == "B":
            open_spans[track] = open_spans.get(track, 0) + 1
        elif ph == "E":
            depth = open_spans.get(track, 0)
            if depth == 0:
                errors.append(
                    f"{where}: 'E' with no open 'B' on track pid={pid} "
                    f"tid={tid}")
            else:
                open_spans[track] = depth - 1
        elif ph == "i":
            if "s" not in event:
                errors.append(f"{where}: instant event missing scope \"s\"")
            if event.get("name") == "qtl":
                qtl_args = event.get("args")
                if not isinstance(qtl_args, dict) or not all(
                        isinstance(qtl_args.get(k, 0), int)
                        and not isinstance(qtl_args.get(k, 0), bool)
                        for k in ("run", "qid", "lane", "seq")) or not all(
                        k in qtl_args for k in ("qid", "lane", "seq")):
                    errors.append(
                        f"{where}: \"qtl\" instant needs integer args "
                        f"qid/lane/seq (and integer \"run\" if present)")
                else:
                    qtl.setdefault(
                        (qtl_args.get("run", 0), qtl_args["qid"],
                         qtl_args["lane"]), []).append(
                            (qtl_args["seq"], ts, i))
        elif ph in ("s", "f"):
            cat = event.get("cat")
            fid = event.get("id")
            name = event.get("name")
            if not isinstance(cat, str) or not isinstance(name, str) \
                    or not isinstance(fid, int) or isinstance(fid, bool):
                errors.append(
                    f"{where}: flow '{ph}' needs string \"cat\"/\"name\" "
                    f"and an integer \"id\"")
                continue
            flows.setdefault((cat, name, fid), {"s": [], "f": []})[ph].append(
                (i, ts))

    for (pid, tid), depth in sorted(open_spans.items()):
        if depth > 0:
            errors.append(
                f"{label}: {depth} unclosed 'B' event(s) on track "
                f"pid={pid} tid={tid} at end of trace")

    for (cat, name, fid), ends in sorted(flows.items()):
        who = f"{label}: flow cat={cat} name={name} id={fid}"
        starts, finishes = ends["s"], ends["f"]
        if len(starts) > 1:
            errors.append(f"{who}: {len(starts)} 's' events (flow ids must "
                          f"be unique per start)")
        if len(finishes) > 1:
            errors.append(f"{who}: {len(finishes)} 'f' events")
        if starts and not finishes:
            errors.append(f"{who}: started (event {starts[0][0]}) but never "
                          f"finished — dangling flow arrow")
        elif finishes and not starts:
            errors.append(f"{who}: finished (event {finishes[0][0]}) but "
                          f"never started")
        elif starts and finishes and finishes[0][1] < starts[0][1]:
            errors.append(
                f"{who}: finish ts {finishes[0][1]} precedes start ts "
                f"{starts[0][1]} — delivery cannot outrun the send under "
                f"Lamport-consistent clocks")

    for (run, qid, lane), marks in sorted(qtl.items()):
        who = f"{label}: qtl run={run} qid={qid} lane={lane}"
        marks.sort()
        for (seq_a, ts_a, idx_a), (seq_b, ts_b, idx_b) in zip(marks,
                                                              marks[1:]):
            if seq_b == seq_a:
                errors.append(f"{who}: duplicate seq {seq_a} (events "
                              f"{idx_a} and {idx_b}) — each phase mark is "
                              f"recorded once per query")
            elif ts_b < ts_a:
                errors.append(
                    f"{who}: ts {ts_b} at seq {seq_b} (event {idx_b}) "
                    f"precedes ts {ts_a} at seq {seq_a} — marks on a lane "
                    f"must be time-ordered by sequence")
    return errors


def check_file(path: str) -> list[str]:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        return [f"{path}: cannot read: {e}"]
    except json.JSONDecodeError as e:
        return [f"{path}: invalid JSON: {e}"]
    return validate(doc, path)


def self_test() -> int:
    """Each invariant must fire on a seeded violation and accept the fix."""
    good = {"traceEvents": [
        {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
         "args": {"name": "teamnet"}},
        {"ph": "M", "name": "thread_name", "pid": 0, "tid": 1,
         "args": {"name": "node1"}},
        {"ph": "B", "pid": 0, "tid": 0, "ts": 0, "name": "query"},
        {"ph": "B", "pid": 0, "tid": 0, "ts": 10.5, "name": "broadcast"},
        {"ph": "i", "pid": 0, "tid": 0, "ts": 11, "name": "fault", "s": "t"},
        {"ph": "E", "pid": 0, "tid": 0, "ts": 20},
        {"ph": "C", "pid": 0, "tid": 1, "ts": 5, "name": "tx_bytes",
         "args": {"value": 128}},
        {"ph": "E", "pid": 0, "tid": 0, "ts": 30},
        # A request flow master->worker and its reply flow back, plus the
        # qtl phase marks both sides record — the shape a flow-enabled
        # TeamNet trace has (note the reply 'f' appears BEFORE its 's' in
        # file order; pairing must not depend on ordering).
        {"ph": "s", "pid": 0, "tid": 0, "ts": 31, "name": "infer",
         "cat": "flow", "id": 1026},
        {"ph": "i", "pid": 0, "tid": 0, "ts": 31, "name": "qtl", "s": "t",
         "args": {"qid": 1, "lane": 1, "seq": 0, "mark": "sent"}},
        {"ph": "f", "pid": 0, "tid": 0, "ts": 40, "name": "result",
         "cat": "flow", "id": 1027, "bp": "e"},
        {"ph": "i", "pid": 0, "tid": 0, "ts": 40, "name": "qtl", "s": "t",
         "args": {"qid": 1, "lane": 1, "seq": 5, "mark": "reply_recv"}},
        {"ph": "f", "pid": 0, "tid": 1, "ts": 33, "name": "infer",
         "cat": "flow", "id": 1026, "bp": "e"},
        {"ph": "i", "pid": 0, "tid": 1, "ts": 33, "name": "qtl", "s": "t",
         "args": {"qid": 1, "lane": 1, "seq": 1, "mark": "request_recv"}},
        {"ph": "s", "pid": 0, "tid": 1, "ts": 38, "name": "result",
         "cat": "flow", "id": 1027},
        {"ph": "i", "pid": 0, "tid": 1, "ts": 38, "name": "qtl", "s": "t",
         "args": {"qid": 1, "lane": 1, "seq": 4, "mark": "reply_sent"}},
    ]}
    cases = [
        ("valid document", good, 0),
        ("top level not an object", [1, 2], 1),
        ("traceEvents missing", {"events": []}, 1),
        ("event missing ph",
         {"traceEvents": [{"pid": 0, "tid": 0, "ts": 0}]}, 1),
        ("non-integer tid",
         {"traceEvents": [{"ph": "i", "pid": 0, "tid": "zero", "ts": 0,
                           "s": "t"}]}, 1),
        ("missing ts",
         {"traceEvents": [{"ph": "i", "pid": 0, "tid": 0, "s": "t"}]}, 1),
        ("non-finite ts",
         {"traceEvents": [{"ph": "i", "pid": 0, "tid": 0, "ts": None,
                           "s": "t"}]}, 1),
        ("backwards timestamp on one track",
         {"traceEvents": [
             {"ph": "B", "pid": 0, "tid": 0, "ts": 10, "name": "a"},
             {"ph": "E", "pid": 0, "tid": 0, "ts": 5}]}, 1),
        ("interleaved tracks each monotone",
         {"traceEvents": [
             {"ph": "i", "pid": 0, "tid": 0, "ts": 10, "s": "t"},
             {"ph": "i", "pid": 0, "tid": 1, "ts": 1, "s": "t"},
             {"ph": "i", "pid": 0, "tid": 0, "ts": 11, "s": "t"}]}, 0),
        ("E without B",
         {"traceEvents": [{"ph": "E", "pid": 0, "tid": 0, "ts": 1}]}, 1),
        ("unclosed B",
         {"traceEvents": [
             {"ph": "B", "pid": 0, "tid": 0, "ts": 1, "name": "a"}]}, 1),
        ("E on the wrong track",
         {"traceEvents": [
             {"ph": "B", "pid": 0, "tid": 0, "ts": 1, "name": "a"},
             {"ph": "E", "pid": 0, "tid": 1, "ts": 2}]}, 2),
        ("instant without scope",
         {"traceEvents": [{"ph": "i", "pid": 0, "tid": 0, "ts": 1,
                           "name": "x"}]}, 1),
        ("metadata events need no ts", {"traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 0, "tid": 0}]}, 0),
        ("dangling flow (s never finished)",
         {"traceEvents": [
             {"ph": "s", "pid": 0, "tid": 0, "ts": 1, "name": "infer",
              "cat": "flow", "id": 7}]}, 1),
        ("flow finish without a start",
         {"traceEvents": [
             {"ph": "f", "pid": 0, "tid": 1, "ts": 2, "name": "infer",
              "cat": "flow", "id": 7, "bp": "e"}]}, 1),
        ("flow finish before its start",
         {"traceEvents": [
             {"ph": "s", "pid": 0, "tid": 0, "ts": 5, "name": "infer",
              "cat": "flow", "id": 7},
             {"ph": "f", "pid": 0, "tid": 1, "ts": 3, "name": "infer",
              "cat": "flow", "id": 7, "bp": "e"}]}, 1),
        ("flow missing id",
         {"traceEvents": [
             {"ph": "s", "pid": 0, "tid": 0, "ts": 1, "name": "infer",
              "cat": "flow"}]}, 1),
        ("duplicate flow start on one id",
         {"traceEvents": [
             {"ph": "s", "pid": 0, "tid": 0, "ts": 1, "name": "infer",
              "cat": "flow", "id": 7},
             {"ph": "s", "pid": 0, "tid": 0, "ts": 2, "name": "infer",
              "cat": "flow", "id": 7},
             {"ph": "f", "pid": 0, "tid": 1, "ts": 3, "name": "infer",
              "cat": "flow", "id": 7, "bp": "e"}]}, 1),
        ("same id under different names stays distinct",
         {"traceEvents": [
             {"ph": "s", "pid": 0, "tid": 0, "ts": 1, "name": "infer",
              "cat": "flow", "id": 7},
             {"ph": "f", "pid": 0, "tid": 1, "ts": 2, "name": "infer",
              "cat": "flow", "id": 7, "bp": "e"},
             {"ph": "s", "pid": 0, "tid": 1, "ts": 3, "name": "result",
              "cat": "flow", "id": 7},
             {"ph": "f", "pid": 0, "tid": 0, "ts": 4, "name": "result",
              "cat": "flow", "id": 7, "bp": "e"}]}, 0),
        ("qtl instant missing args",
         {"traceEvents": [
             {"ph": "i", "pid": 0, "tid": 0, "ts": 1, "name": "qtl",
              "s": "t", "args": {"qid": 1, "lane": -1}}]}, 1),
        ("qtl duplicate seq on one lane",
         {"traceEvents": [
             {"ph": "i", "pid": 0, "tid": 0, "ts": 1, "name": "qtl",
              "s": "t", "args": {"qid": 1, "lane": -1, "seq": 2,
                                 "mark": "broadcast_end"}},
             {"ph": "i", "pid": 0, "tid": 0, "ts": 2, "name": "qtl",
              "s": "t", "args": {"qid": 1, "lane": -1, "seq": 2,
                                 "mark": "broadcast_end"}}]}, 1),
        ("qtl timestamp regresses against seq order",
         {"traceEvents": [
             {"ph": "i", "pid": 0, "tid": 1, "ts": 9, "name": "qtl",
              "s": "t", "args": {"qid": 1, "lane": 1, "seq": 1,
                                 "mark": "request_recv"}},
             {"ph": "i", "pid": 0, "tid": 0, "ts": 4, "name": "qtl",
              "s": "t", "args": {"qid": 1, "lane": 1, "seq": 3,
                                 "mark": "reply_recv"}}]}, 1),
        ("qtl lanes reset across runs (scenario epochs)",
         {"traceEvents": [
             {"ph": "i", "pid": 0, "tid": 0, "ts": 9, "name": "qtl",
              "s": "t", "args": {"run": 0, "qid": 1, "lane": -1, "seq": 5,
                                 "mark": "complete"}},
             {"ph": "i", "pid": 1, "tid": 0, "ts": 2, "name": "qtl",
              "s": "t", "args": {"run": 1, "qid": 1, "lane": -1, "seq": 5,
                                 "mark": "complete"}}]}, 0),
        ("qtl lanes are independent",
         {"traceEvents": [
             {"ph": "i", "pid": 0, "tid": 0, "ts": 9, "name": "qtl",
              "s": "t", "args": {"qid": 1, "lane": 1, "seq": 1,
                                 "mark": "request_recv"}},
             {"ph": "i", "pid": 0, "tid": 1, "ts": 4, "name": "qtl",
              "s": "t", "args": {"qid": 2, "lane": 1, "seq": 3,
                                 "mark": "reply_recv"}}]}, 0),
    ]
    failures = 0
    for name, doc, want_errors in cases:
        errors = validate(doc, "seeded")
        ok = (len(errors) == want_errors)
        if not ok:
            failures += 1
        print(f"{'ok  ' if ok else 'FAIL'} [{name}] -> {len(errors)} "
              f"error(s), expected {want_errors}")
        if not ok:
            for e in errors:
                print(f"      {e}")
    if failures:
        print(f"self-test: {failures} case(s) failed", file=sys.stderr)
        return 1
    print(f"self-test: all {len(cases)} cases passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="trace files to validate")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each check catches a seeded violation")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.files:
        parser.error("no trace files given (or use --self-test)")

    failures = 0
    for path in args.files:
        errors = check_file(path)
        for e in errors:
            print(e)
        if errors:
            failures += 1
        else:
            print(f"{path}: OK")
    if failures:
        print(f"tools/check_trace.py: {failures} file(s) failed",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
