#!/usr/bin/env python3
"""TeamNet repo-specific lint rules (see DESIGN.md "Correctness tooling").

Rules enforced over src/** (tests/bench/examples are exempt unless noted):

  raw-cast       Byte-pointer reinterpret_casts are only allowed inside
                 src/common/raw_bytes.hpp. Everything else must use the
                 write_raw/read_raw helpers, which static_assert
                 trivially-copyable and bounds-check every read.

  module-deps    A module may #include only its own headers and those of
                 modules its CMake target links against. Reaching across
                 library boundaries (e.g. nn/ including net/) knots the
                 dependency graph and breaks standalone module builds.

  errno-capture  errno may only be read by saving it into a local
                 (`const int err = errno;`) immediately after the failing
                 call. Comparing or formatting errno later is a bug:
                 close(), setsockopt(), even allocation can clobber it.

  raw-mutex      Raw std::mutex / std::lock_guard / std::unique_lock /
                 std::scoped_lock / std::condition_variable are only
                 allowed inside src/common/annotations.hpp. Everything
                 else must use the annotated Mutex/MutexLock/CondVar
                 wrappers so clang's -Wthread-safety capability analysis
                 (TEAMNET_THREAD_SAFETY=ON) sees every lock in the tree.

  thread-detach  std::thread::detach() is forbidden REPO-WIDE (src, tests,
                 bench, examples, fuzz): a detached thread outlives scope
                 invisibly, races process teardown, and breaks the
                 close-then-join error-recovery discipline the scenario
                 and transport layers rely on. Threads are always joined.

  wall-clock-in-sim  Wall-clock reads (std::chrono::*_clock::now) and real
                 sleeps (sleep_for / sleep_until) are forbidden in the
                 virtual-time surfaces: src/sim/** (including the sim/des
                 engine), src/obs/**, src/load/**, src/net/virtual_clock.*
                 and bench/**.
                 One wall-clock read in a scenario driver, trace/metrics
                 sink or bench silently breaks the bit-stability the
                 determinism CI gate enforces; time must come from
                 VirtualClock / des::Engine (or an injected time source).

  (retired) naked-recv — the token-level bare-recv() rule moved to the
                 deep tier: tools/analyze.py's `unbounded-wait` pass flags
                 the same direct recv()/pop() sites AST-aware (immune to
                 comments/strings, knows the _timeout variants), and its
                 interprocedural `block-under-lock` pass covers the wrapper
                 blind spots a line regex never could. lint.py stays the
                 fast pre-commit tier (token rules, no build needed);
                 analyze.py is the whole-program tier (DESIGN.md §12).

  unordered-iteration  std::unordered_map / std::unordered_set (and multi
                 variants) are forbidden in the byte-stable serialization
                 surfaces: src/obs/**, src/nn/serialize.* and
                 bench/bench_common.*. Their iteration order is
                 implementation- and seed-dependent, so one range-for over
                 an unordered container in a JSON/trace/metrics writer
                 silently breaks byte-identical output across runs and
                 toolchains. Use std::map / std::set, or a vector sorted
                 before emitting.

  no-raw-stdio   printf/fprintf/puts/std::cout/std::cerr are forbidden in
                 src/** outside the sanctioned sinks (common/logging.*,
                 common/table.*): ad-hoc stdout writes bypass the
                 severity-filtered logger, interleave badly across threads,
                 and pollute machine-readable bench output. Use LOG_* for
                 diagnostics and the obs trace/metrics writers for data.
                 (String formatting via snprintf is fine — the rule is
                 about writing to the process streams.)

Suppress a finding with `// lint:allow(<rule>)` on the offending line.

Usage:
  tools/lint.py                    lint the whole tree
  tools/lint.py FILE...            lint specific files (CI lints changed files)
  tools/lint.py --format github    emit GitHub Actions ::error annotations
  tools/lint.py --self-test        prove each rule fires on a seeded violation
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# Mirrors target_link_libraries() in src/*/CMakeLists.txt. A module may
# include headers from itself and from any module listed here.
MODULE_DEPS = {
    "common": set(),
    "obs": {"common"},
    "tensor": {"common"},
    "nn": {"tensor", "common"},
    "data": {"tensor", "common"},
    "core": {"obs", "nn", "data", "tensor", "common"},
    "net": {"obs", "core", "nn", "tensor", "common"},
    "moe": {"obs", "net", "nn", "data", "tensor", "common"},
    "mpi": {"net", "core", "nn", "tensor", "common"},
    "sim": {"obs", "mpi", "moe", "net", "core", "nn", "data", "tensor",
            "common"},
    "load": {"sim", "moe", "net", "nn", "data", "obs", "common"},
}

RAW_CAST_RE = re.compile(
    r"reinterpret_cast<\s*(?:const\s+)?(?:unsigned\s+)?"
    r"(?:char|signed\s+char|std::byte|std::uint8_t|uint8_t)\s*\*\s*>"
)
RAW_CAST_ALLOWED = {SRC / "common" / "raw_bytes.hpp"}

RAW_MUTEX_RE = re.compile(
    r"std::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable(?:_any)?)\b"
)
RAW_MUTEX_ALLOWED = {SRC / "common" / "annotations.hpp"}

DETACH_RE = re.compile(r"\.\s*detach\s*\(\s*\)")

WALL_CLOCK_RE = re.compile(
    r"std::chrono::\w*_clock::now|\bsleep_for\b|\bsleep_until\b"
)
# File-level exemptions from wall-clock-in-sim (none today; line-level
# escapes go through `// lint:allow(wall-clock-in-sim)` like every rule).
WALL_CLOCK_ALLOWED: set[pathlib.Path] = set()

# Unordered containers have implementation-defined iteration order; in the
# byte-stable serialization surfaces that is a determinism bug waiting for a
# range-for, so the containers themselves are banned there.
UNORDERED_RE = re.compile(r"std::unordered_(?:multi)?(?:map|set)\b")

# Matches `.recv(` / `->recv(` but not recv_timeout / recv_from.

# Stream-writing stdio only; snprintf/sscanf (string formatting) are fine.
RAW_STDIO_RE = re.compile(
    r"\b(?:std::)?(?:printf|fprintf|vfprintf|puts|fputs|putchar|fputc)\s*\(|"
    r"std::(?:cout|cerr|clog)\b"
)
RAW_STDIO_ALLOWED_STEMS = {"logging", "table"}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
ERRNO_RE = re.compile(r"\berrno\b")
ERRNO_SAVE_RE = re.compile(r"(?:int|auto)\s+\w+\s*=\s*errno\s*;")
SUPPRESS_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)")

LINE_COMMENT_RE = re.compile(r"//.*$")
BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


class Finding:
    def __init__(self, path: pathlib.Path, line: int, rule: str, msg: str):
        self.path, self.line, self.rule, self.msg = path, line, rule, msg

    def rel(self) -> pathlib.Path:
        try:
            return self.path.relative_to(REPO)
        except ValueError:
            return self.path

    def __str__(self) -> str:
        return f"{self.rel()}:{self.line}: [{self.rule}] {self.msg}"

    def github(self) -> str:
        # GitHub Actions workflow-command annotation: renders inline on the
        # PR diff. Newlines inside the message would terminate the command,
        # so flatten defensively.
        msg = f"[{self.rule}] {self.msg}".replace("\n", " ")
        return f"::error file={self.rel()},line={self.line}::{msg}"


def stripped_lines(text: str) -> list[str]:
    """Source lines with block/line comments and string literals blanked
    (line count preserved, so indices keep matching the original file)."""
    text = BLOCK_COMMENT_RE.sub(lambda m: "\n" * m.group(0).count("\n"), text)
    out = []
    for line in text.split("\n"):
        if not INCLUDE_RE.match(line):  # include paths are quoted strings
            line = STRING_RE.sub('""', line)
        out.append(LINE_COMMENT_RE.sub("", line))
    return out


def suppressions(text: str) -> dict[int, set[str]]:
    allowed: dict[int, set[str]] = {}
    for i, line in enumerate(text.split("\n"), start=1):
        for m in SUPPRESS_RE.finditer(line):
            allowed.setdefault(i, set()).add(m.group(1))
    return allowed


def check_raw_cast(path: pathlib.Path, code: list[str]) -> list[Finding]:
    if not str(path).startswith(str(SRC)) or path in RAW_CAST_ALLOWED:
        return []
    findings = []
    for i, line in enumerate(code, start=1):
        if RAW_CAST_RE.search(line):
            findings.append(Finding(
                path, i, "raw-cast",
                "byte-pointer reinterpret_cast outside common/raw_bytes.hpp; "
                "use write_raw/read_raw (static_assert + bounds checks)"))
    return findings


def check_module_deps(path: pathlib.Path, code: list[str]) -> list[Finding]:
    try:
        rel = path.relative_to(SRC)
    except ValueError:
        return []
    module = rel.parts[0]
    allowed = MODULE_DEPS.get(module)
    if allowed is None:
        return []
    findings = []
    for i, line in enumerate(code, start=1):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        target = m.group(1).split("/")[0]
        if target not in MODULE_DEPS:
            continue  # not a module-qualified include
        if target != module and target not in allowed:
            findings.append(Finding(
                path, i, "module-deps",
                f"src/{module} must not include \"{m.group(1)}\": "
                f"{target} is not a linked dependency of teamnet_{module}"))
    return findings


def check_errno(path: pathlib.Path, code: list[str]) -> list[Finding]:
    if not str(path).startswith(str(SRC)):
        return []
    findings = []
    for i, line in enumerate(code, start=1):
        if not ERRNO_RE.search(line):
            continue
        if ERRNO_SAVE_RE.search(line) or "#include" in line:
            continue
        findings.append(Finding(
            path, i, "errno-capture",
            "errno must be captured with `const int err = errno;` right "
            "after the failing call, not read later (intervening calls "
            "clobber it)"))
    return findings


def check_raw_mutex(path: pathlib.Path, code: list[str]) -> list[Finding]:
    if not str(path).startswith(str(SRC)) or path in RAW_MUTEX_ALLOWED:
        return []
    findings = []
    for i, line in enumerate(code, start=1):
        if RAW_MUTEX_RE.search(line):
            findings.append(Finding(
                path, i, "raw-mutex",
                "raw std synchronization primitive outside "
                "common/annotations.hpp; use the annotated Mutex/MutexLock/"
                "CondVar wrappers (TEAMNET_THREAD_SAFETY analysis)"))
    return findings


def check_thread_detach(path: pathlib.Path, code: list[str]) -> list[Finding]:
    # Repo-wide: tests/bench/examples/fuzz are NOT exempt from this one.
    findings = []
    for i, line in enumerate(code, start=1):
        if DETACH_RE.search(line):
            findings.append(Finding(
                path, i, "thread-detach",
                "std::thread::detach() is forbidden repo-wide; keep the "
                "handle and join (close channels first to unblock peers)"))
    return findings


def in_wall_clock_scope(path: pathlib.Path) -> bool:
    if path in WALL_CLOCK_ALLOWED:
        return False
    if str(path).startswith(str(REPO / "bench")):
        return True
    try:
        rel = path.relative_to(SRC)
    except ValueError:
        return False
    if rel.parts[0] in {"sim", "obs", "load"}:
        return True
    return rel.parts[0] == "net" and path.stem == "virtual_clock"


def check_wall_clock(path: pathlib.Path, code: list[str]) -> list[Finding]:
    if not in_wall_clock_scope(path):
        return []
    findings = []
    for i, line in enumerate(code, start=1):
        if WALL_CLOCK_RE.search(line):
            findings.append(Finding(
                path, i, "wall-clock-in-sim",
                "wall-clock read/sleep in a virtual-time surface; this "
                "breaks the bit-stability the determinism gate enforces — "
                "take time from VirtualClock / des::Engine (or an injected "
                "time source)"))
    return findings


def in_unordered_scope(path: pathlib.Path) -> bool:
    if str(path).startswith(str(REPO / "bench")):
        return path.stem == "bench_common"
    try:
        rel = path.relative_to(SRC)
    except ValueError:
        return False
    if rel.parts[0] == "obs":
        return True
    return rel.parts[0] == "nn" and path.stem == "serialize"


def check_unordered_iteration(path: pathlib.Path,
                              code: list[str]) -> list[Finding]:
    if not in_unordered_scope(path):
        return []
    findings = []
    for i, line in enumerate(code, start=1):
        if UNORDERED_RE.search(line):
            findings.append(Finding(
                path, i, "unordered-iteration",
                "unordered container in a byte-stable serialization "
                "surface; iteration order is implementation-defined and "
                "breaks byte-identical JSON/trace output — use std::map/"
                "std::set or sort before emitting"))
    return findings


def check_raw_stdio(path: pathlib.Path, code: list[str]) -> list[Finding]:
    try:
        rel = path.relative_to(SRC)
    except ValueError:
        return []
    if rel.parts[0] == "common" and path.stem in RAW_STDIO_ALLOWED_STEMS:
        return []
    findings = []
    for i, line in enumerate(code, start=1):
        if RAW_STDIO_RE.search(line):
            findings.append(Finding(
                path, i, "no-raw-stdio",
                "raw stdout/stderr write outside common/logging.* and "
                "common/table.*; use LOG_* (severity-filtered, thread-safe) "
                "or an obs sink"))
    return findings


CHECKS = [check_raw_cast, check_module_deps, check_errno, check_raw_mutex,
          check_thread_detach, check_wall_clock, check_unordered_iteration,
          check_raw_stdio]


def lint_file(path: pathlib.Path) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return []
    code = stripped_lines(text)
    allowed = suppressions(text)
    findings = []
    for check in CHECKS:
        for f in check(path, code):
            if f.rule not in allowed.get(f.line, set()):
                findings.append(f)
    return findings


def default_targets() -> list[pathlib.Path]:
    # src/** gets every rule; the other trees exist for the repo-wide rules
    # (currently thread-detach) — path-gated rules skip them on their own.
    roots = [SRC, REPO / "tests", REPO / "bench", REPO / "examples",
             REPO / "fuzz"]
    return sorted(p for root in roots if root.is_dir()
                  for p in root.rglob("*")
                  if p.suffix in {".cpp", ".hpp", ".h", ".cc"})


def self_test() -> int:
    """Each rule must fire on a seeded violation and stay quiet on the fix."""
    cases = [
        ("raw-cast", SRC / "nn" / "seeded.cpp",
         "out.append(reinterpret_cast<const char*>(&v), sizeof(v));\n", True),
        ("raw-cast", SRC / "nn" / "seeded.cpp",
         "write_raw(out, v);\n", False),
        ("raw-cast", SRC / "common" / "raw_bytes.hpp",
         "out.append(reinterpret_cast<const char*>(&v), sizeof(v));\n", False),
        ("module-deps", SRC / "nn" / "seeded.cpp",
         '#include "net/tcp.hpp"\n', True),
        ("module-deps", SRC / "nn" / "seeded.cpp",
         '#include "tensor/tensor.hpp"\n', False),
        ("module-deps", SRC / "load" / "seeded.cpp",
         '#include "mpi/collective.hpp"\n', True),
        ("module-deps", SRC / "load" / "seeded.cpp",
         '#include "sim/scenario.hpp"\n', False),
        ("errno-capture", SRC / "net" / "seeded.cpp",
         "if (errno == EAGAIN) return;\n", True),
        ("errno-capture", SRC / "net" / "seeded.cpp",
         "const int err = errno;\n", False),
        ("errno-capture", SRC / "net" / "seeded.cpp",
         "// errno is mentioned in prose only\n", False),
        ("raw-mutex", SRC / "net" / "seeded.cpp",
         "std::lock_guard<std::mutex> lock(mutex_);\n", True),
        ("raw-mutex", SRC / "core" / "seeded.cpp",
         "std::condition_variable cv_;\n", True),
        ("raw-mutex", SRC / "net" / "seeded.cpp",
         "MutexLock lock(mutex_);\n", False),
        ("raw-mutex", SRC / "common" / "annotations.hpp",
         "std::mutex m_;\n", False),
        ("raw-mutex", REPO / "tests" / "seeded.cpp",
         "std::mutex mu;\n", False),  # src-only rule
        ("thread-detach", SRC / "sim" / "seeded.cpp",
         "worker.detach();\n", True),
        ("thread-detach", REPO / "tests" / "seeded.cpp",
         "std::thread([] {}).detach();\n", True),  # repo-wide rule
        ("thread-detach", SRC / "sim" / "seeded.cpp",
         "worker.join();\n", False),
        ("thread-detach", SRC / "core" / "seeded.cpp",
         "// delta is detached here; the meta-estimator owns it\n", False),
        ("wall-clock-in-sim", SRC / "sim" / "seeded.cpp",
         "const auto t0 = std::chrono::steady_clock::now();\n", True),
        ("wall-clock-in-sim", SRC / "sim" / "des" / "seeded.cpp",
         "std::this_thread::sleep_for(std::chrono::milliseconds(5));\n", True),
        ("wall-clock-in-sim", SRC / "net" / "virtual_clock.cpp",
         "return std::chrono::system_clock::now();\n", True),
        ("wall-clock-in-sim", REPO / "bench" / "seeded.cpp",
         "std::this_thread::sleep_until(deadline);\n", True),
        ("wall-clock-in-sim", SRC / "load" / "seeded.cpp",
         "const auto t0 = std::chrono::steady_clock::now();\n", True),
        ("wall-clock-in-sim", SRC / "load" / "seeded.cpp",
         "const double t = process->next_arrival(now);\n", False),
        ("wall-clock-in-sim", SRC / "net" / "tcp.cpp",
         "const auto t0 = std::chrono::steady_clock::now();\n", False),
        ("wall-clock-in-sim", SRC / "sim" / "seeded.cpp",
         "const double t = net->node_time(0);\n", False),
        ("wall-clock-in-sim", REPO / "tests" / "seeded.cpp",
         "std::this_thread::sleep_for(std::chrono::milliseconds(5));\n",
         False),  # tests are out of scope
        ("wall-clock-in-sim", SRC / "sim" / "des" / "seeded.cpp",
         "const double t = engine.node_time(node);\n", False),
        ("unordered-iteration", SRC / "obs" / "seeded.cpp",
         "std::unordered_map<std::string, Counter> counters_;\n", True),
        ("unordered-iteration", SRC / "nn" / "serialize.cpp",
         "std::unordered_set<std::string> seen;\n", True),
        ("unordered-iteration", REPO / "bench" / "bench_common.cpp",
         "std::unordered_map<std::string, double> cells;\n", True),
        ("unordered-iteration", SRC / "obs" / "seeded.cpp",
         "std::map<std::string, Counter> counters_;\n", False),
        ("unordered-iteration", SRC / "net" / "seeded.cpp",
         "std::unordered_map<int, int> routes;\n", False),  # out of scope
        ("unordered-iteration", SRC / "nn" / "mlp.cpp",
         "std::unordered_map<int, int> cache;\n", False),  # serialize.* only
        ("unordered-iteration", REPO / "bench" / "seeded.cpp",
         "std::unordered_set<int> ids;\n", False),  # bench_common.* only
        ("no-raw-stdio", SRC / "net" / "seeded.cpp",
         'std::printf("gather done\\n");\n', True),
        ("no-raw-stdio", SRC / "core" / "seeded.cpp",
         'fprintf(stderr, "bad gate\\n");\n', True),
        ("no-raw-stdio", SRC / "sim" / "seeded.cpp",
         'std::cout << "latency " << ms;\n', True),
        ("no-raw-stdio", SRC / "obs" / "seeded.cpp",
         'std::cerr << "dropped";\n', True),  # obs writes files, not streams
        ("no-raw-stdio", SRC / "common" / "logging.cpp",
         'std::fprintf(out, "[%s] %s\\n", tag, msg);\n', False),
        ("no-raw-stdio", SRC / "common" / "table.hpp",
         'std::printf("%s", row.c_str());\n', False),
        ("no-raw-stdio", SRC / "obs" / "seeded.cpp",
         "std::snprintf(buf, sizeof(buf), \"%.17g\", v);\n", False),
        ("no-raw-stdio", REPO / "bench" / "seeded.cpp",
         'std::printf("table row\\n");\n', False),  # src-only rule
        ("no-raw-stdio", SRC / "moe" / "seeded.cpp",
         "// printf-style formatting documented here\n", False),
    ]
    failures = 0
    for rule, path, snippet, should_fire in cases:
        code = stripped_lines(snippet)
        fired = any(f.rule == rule
                    for check in CHECKS for f in check(path, code))
        verdict = "fired" if fired else "quiet"
        want = "fire" if should_fire else "stay quiet"
        ok = fired == should_fire
        if not ok:
            failures += 1
        print(f"{'ok  ' if ok else 'FAIL'} [{rule}] {snippet.strip()[:60]!r} "
              f"-> {verdict} (expected to {want})")
    if failures:
        print(f"self-test: {failures} case(s) failed", file=sys.stderr)
        return 1
    print(f"self-test: all {len(cases)} cases passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", type=pathlib.Path,
                        help="files to lint (default: all of src/)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule catches a seeded violation")
    parser.add_argument("--format", choices=["plain", "github"],
                        default="plain",
                        help="finding output format: plain (default) or "
                             "GitHub Actions ::error annotations")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    targets = [p.resolve() for p in args.files] if args.files \
        else default_targets()
    findings = []
    for path in targets:
        findings.extend(lint_file(path))
    for f in findings:
        print(f.github() if args.format == "github" else f)
    if findings:
        print(f"tools/lint.py: {len(findings)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
