#!/usr/bin/env python3
"""Tolerance gate for checked-in bench baselines (DESIGN.md §14).

The repo keeps frozen --quick snapshots of the sweep benches
(BENCH_resilience.json, BENCH_loadgen.json). Byte identity across
same-seed runs is enforced separately (the determinism gates `cmp` two
fresh runs); THIS tool answers the softer question a baseline exists for:
did a code change move the numbers? It re-runs (or is handed) a fresh
--quick --json file and compares it row by row against the snapshot with
per-metric tolerance bands, so a legitimate perf change fails loudly and
points at exactly which cell moved, instead of a reviewer eyeballing a
10 kB JSON diff.

Matching and bands:
  * rows are matched by their "label" string; a missing or extra row is a
    failure (a sweep that silently dropped a cell is not "within
    tolerance"),
  * string fields (approach, scheduler) must match exactly,
  * "nodes" and other structural integers must match exactly,
  * accuracy_pct-style metrics get an ABSOLUTE band (quick-mode models are
    tiny; a fraction of the queries flipping is noise),
  * everything else (latencies, rates, counters) gets a RELATIVE band with
    an absolute floor, so near-zero baselines don't demand infinite
    precision.

Exit status: 0 in tolerance, 1 out of tolerance (or structurally
different), 2 usage error. --self-test exercises every failure mode on
inline fixtures and exits 0 only if each fires correctly.

Usage:
  bench_compare.py --baseline BENCH_x.json --fresh fresh.json
  bench_compare.py --baseline BENCH_x.json --run ./bench/x_sweep \
      [-- extra bench args]     # runs BIN --quick --json <tmp> [extra]
  bench_compare.py --self-test
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Structural integers: a drifting value means the sweep changed shape, not
# that performance moved.
EXACT_KEYS = {"nodes", "warmup_queries"}
# Absolute bands (units of the metric itself).
ABSOLUTE_BANDS = {"accuracy_pct": 10.0}
# Relative band for everything else, with an absolute floor below which
# differences are ignored outright.
DEFAULT_REL = 0.35
DEFAULT_ABS_FLOOR = 1.0


def load_report(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if "results" not in doc or not isinstance(doc["results"], list):
        raise ValueError(f"{path}: not a bench --json report (no results[])")
    return doc


def compare_value(key, base, fresh, rel, abs_floor):
    """Returns None if in tolerance, else a human-readable complaint."""
    if isinstance(base, str) or isinstance(fresh, str):
        if base != fresh:
            return f"{key}: {base!r} != {fresh!r}"
        return None
    if base is None or fresh is None:  # json_number() null = non-finite
        if base is not fresh:
            return f"{key}: {base} != {fresh}"
        return None
    if key in EXACT_KEYS:
        if base != fresh:
            return f"{key}: expected exactly {base}, got {fresh}"
        return None
    if key in ABSOLUTE_BANDS:
        band = ABSOLUTE_BANDS[key]
        if abs(fresh - base) > band:
            return (f"{key}: {fresh:g} outside {base:g} "
                    f"± {band:g} (absolute)")
        return None
    band = max(rel * abs(base), abs_floor)
    if abs(fresh - base) > band:
        return (f"{key}: {fresh:g} outside {base:g} ± {band:g} "
                f"(rel {rel:g}, floor {abs_floor:g})")
    return None


def compare_reports(baseline, fresh, rel=DEFAULT_REL,
                    abs_floor=DEFAULT_ABS_FLOOR):
    """Returns a list of complaint strings; empty means in tolerance."""
    problems = []
    for key in ("experiment", "scheduler"):
        if baseline.get(key) != fresh.get(key):
            problems.append(
                f"{key}: {baseline.get(key)!r} != {fresh.get(key)!r}")
    base_rows = {row["label"]: row for row in baseline["results"]}
    fresh_rows = {row["label"]: row for row in fresh["results"]}
    for label in base_rows:
        if label not in fresh_rows:
            problems.append(f"row missing from fresh run: {label!r}")
    for label in fresh_rows:
        if label not in base_rows:
            problems.append(f"unexpected new row: {label!r}")
    for label, base_row in base_rows.items():
        fresh_row = fresh_rows.get(label)
        if fresh_row is None:
            continue
        for key, base_val in base_row.items():
            if key == "label":
                continue
            if key not in fresh_row:
                problems.append(f"[{label}] metric missing: {key}")
                continue
            complaint = compare_value(key, base_val, fresh_row[key], rel,
                                      abs_floor)
            if complaint is not None:
                problems.append(f"[{label}] {complaint}")
    return problems


def run_bench(binary, extra_args):
    """Runs `binary --quick --json <tmp> [extra]`, returns the parsed doc."""
    fd, json_path = tempfile.mkstemp(suffix=".json", prefix="bench_compare_")
    os.close(fd)
    try:
        cmd = [binary, "--quick", "--json", json_path] + extra_args
        proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            raise RuntimeError(
                f"bench exited {proc.returncode}: {' '.join(cmd)}")
        return load_report(json_path)
    finally:
        os.unlink(json_path)


# ---------------------------------------------------------------------------
# self-test


def _fixture(**overrides):
    row = {"label": "poisson k2", "approach": "TeamNet", "nodes": 2,
           "latency_ms": 10.0, "accuracy_pct": 90.0, "p99_ms": 20.0}
    row.update(overrides)
    return {"experiment": "loadgen_sweep", "scheduler": "discrete_event",
            "results": [row]}


def self_test():
    cases = [
        ("identical passes", _fixture(), _fixture(), True),
        ("drift inside band passes", _fixture(),
         _fixture(latency_ms=12.0, p99_ms=25.0), True),
        ("latency outside band fails", _fixture(),
         _fixture(latency_ms=20.0), False),
        ("small absolute drift under floor passes", _fixture(),
         _fixture(latency_ms=10.9), True),
        ("accuracy inside absolute band passes", _fixture(),
         _fixture(accuracy_pct=82.0), True),
        ("accuracy outside absolute band fails", _fixture(),
         _fixture(accuracy_pct=75.0), False),
        ("node count must match exactly", _fixture(),
         _fixture(nodes=4), False),
        ("approach string must match", _fixture(),
         _fixture(approach="SG-MoE"), False),
        ("missing metric fails", _fixture(p99_ms=20.0),
         _fixture_without("p99_ms"), False),
        ("missing row fails", _fixture(),
         {"experiment": "loadgen_sweep", "scheduler": "discrete_event",
          "results": []}, False),
        ("extra row fails",
         {"experiment": "loadgen_sweep", "scheduler": "discrete_event",
          "results": []}, _fixture(), False),
        ("scheduler mode must match", _fixture(),
         dict(_fixture(), scheduler="free_running"), False),
    ]
    failures = 0
    for name, base, fresh, should_pass in cases:
        problems = compare_reports(base, fresh)
        ok = (not problems) == should_pass
        print(f"{'PASS' if ok else 'FAIL'}: {name}")
        if not ok:
            for p in problems:
                print(f"    {p}")
            failures += 1
    if failures:
        print(f"self-test: {failures} case(s) misbehaved")
        return 1
    print(f"self-test: all {len(cases)} cases behaved")
    return 0


def _fixture_without(key):
    doc = _fixture()
    del doc["results"][0][key]
    return doc


def main(argv):
    parser = argparse.ArgumentParser(
        description="compare a fresh bench --json run against a checked-in "
                    "baseline with per-metric tolerance bands")
    parser.add_argument("--baseline", help="checked-in BENCH_*.json")
    parser.add_argument("--fresh", help="fresh --json output to compare")
    parser.add_argument("--run", metavar="BIN",
                        help="run BIN --quick --json <tmp> (plus args after "
                             "--) and compare its output")
    parser.add_argument("--rel", type=float, default=DEFAULT_REL,
                        help="relative tolerance band (default %(default)s)")
    parser.add_argument("--abs-floor", type=float, default=DEFAULT_ABS_FLOOR,
                        help="absolute floor under which drift is ignored "
                             "(default %(default)s)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite and exit")
    if "--" in argv:
        split = argv.index("--")
        argv, extra_args = argv[:split], argv[split + 1:]
    else:
        extra_args = []
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or bool(args.fresh) == bool(args.run):
        parser.error("need --baseline plus exactly one of --fresh / --run")

    baseline = load_report(args.baseline)
    fresh = run_bench(args.run, extra_args) if args.run \
        else load_report(args.fresh)

    problems = compare_reports(baseline, fresh, rel=args.rel,
                               abs_floor=args.abs_floor)
    if problems:
        print(f"OUT OF TOLERANCE vs {args.baseline} "
              f"({len(problems)} problem(s)):")
        for p in problems:
            print(f"  {p}")
        print("if the change is intended, regenerate the baseline from a "
              "--quick --json run and commit it")
        return 1
    n = len(baseline["results"])
    print(f"in tolerance vs {args.baseline} ({n} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
