// Schedule-exploring race detector CLI (DESIGN.md §11).
//
//   schedule_explore --scenario=chaos --seed=3 --schedules=50
//     runs the scenario once under the canonical grant policy, then 50 more
//     times under perturbed (random-tiebreak / PCT) schedules, and exits
//     nonzero if any discrete outcome depended on the schedule, any run
//     deadlocked, or any engine/protocol invariant tripped. Violations are
//     printed with a ready-to-paste replay command.
//
//   schedule_explore --scenario=chaos --seed=3 --replay --policy=pct
//       --schedule-seed=17 [--trace=out.json]
//     re-runs exactly one schedule (a counterexample) and prints its digest
//     and discrete outcome; --trace captures a Perfetto-loadable trace of
//     the replayed interleaving.
//
// The report is byte-stable for a fixed flag set: CI diffs two invocations
// to prove the explorer itself is deterministic.
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "sim/explore_scenarios.hpp"

namespace teamnet {
namespace {

struct Cli {
  std::string scenario = "teamnet";
  std::uint64_t seed = 123;
  int queries = 8;
  int schedules = 50;
  std::uint64_t schedule_seed0 = 1;
  bool mutate = false;
  bool replay = false;
  sim::des::GrantPolicyKind policy = sim::des::GrantPolicyKind::canonical;
  std::uint64_t schedule_seed = 0;
  std::string trace_path;
  bool trace_sched = false;
  double latency_s = -1.0;    ///< <0: keep the scenario default
  double bandwidth_bps = -1.0;
  double overhead_s = -1.0;
  double timeout_s = -1.0;    ///< chaos gather deadline
  double slack_s = -1.0;      ///< perturbed-policy eligibility window
};

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "error: " << error << "\n\n"
            << "usage: schedule_explore --scenario=NAME [options]\n"
            << "  --scenario=NAME       teamnet|mpi|sg-moe|chaos|resilience\n"
            << "  --seed=N              scenario seed (default 123)\n"
            << "  --queries=N           queries per run (default 8)\n"
            << "  --schedules=N         perturbed schedules (default 50)\n"
            << "  --schedule-seed0=N    first schedule seed (default 1)\n"
            << "  --mutate              arm the pre-query-id gather mutant\n"
            << "                        (chaos scenario; mutation-gate use)\n"
            << "  --replay              run ONE schedule instead of exploring\n"
            << "  --policy=P            replay: canonical|random-tiebreak|pct\n"
            << "  --schedule-seed=N     replay: the schedule seed\n"
            << "  --trace=PATH          replay: write Chrome trace JSON\n"
            << "  --trace-sched         include DES scheduler events\n"
            << "  --latency=S --bandwidth=BPS --overhead=S\n"
            << "                        link overrides (defaults: contended)\n"
            << "  --timeout=S           chaos gather deadline override\n"
            << "  --slack=S             perturbed-policy eligibility window\n";
  std::exit(2);
}

/// Accepts --flag=value and --flag value; returns the value or dies.
std::string flag_value(int argc, char** argv, int& i, const std::string& arg,
                       std::size_t eq) {
  if (eq != std::string::npos) return arg.substr(eq + 1);
  if (i + 1 >= argc) usage("missing value for " + arg);
  return argv[++i];
}

Cli parse(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string name = arg.substr(0, eq);
    auto value = [&] { return flag_value(argc, argv, i, arg, eq); };
    if (name == "--scenario") {
      cli.scenario = value();
    } else if (name == "--seed") {
      cli.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (name == "--queries") {
      cli.queries = std::atoi(value().c_str());
    } else if (name == "--schedules") {
      cli.schedules = std::atoi(value().c_str());
    } else if (name == "--schedule-seed0") {
      cli.schedule_seed0 = std::strtoull(value().c_str(), nullptr, 10);
    } else if (name == "--schedule-seed") {
      cli.schedule_seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (name == "--mutate") {
      cli.mutate = true;
    } else if (name == "--replay") {
      cli.replay = true;
    } else if (name == "--policy") {
      const auto kind = sim::des::parse_grant_policy(value());
      if (!kind) usage("unknown --policy (canonical|random-tiebreak|pct)");
      cli.policy = *kind;
    } else if (name == "--trace") {
      cli.trace_path = value();
    } else if (name == "--trace-sched") {
      cli.trace_sched = true;
    } else if (name == "--latency") {
      cli.latency_s = std::strtod(value().c_str(), nullptr);
    } else if (name == "--bandwidth") {
      cli.bandwidth_bps = std::strtod(value().c_str(), nullptr);
    } else if (name == "--overhead") {
      cli.overhead_s = std::strtod(value().c_str(), nullptr);
    } else if (name == "--timeout") {
      cli.timeout_s = std::strtod(value().c_str(), nullptr);
    } else if (name == "--slack") {
      cli.slack_s = std::strtod(value().c_str(), nullptr);
    } else {
      usage("unknown flag: " + arg);
    }
  }
  if (!cli.trace_path.empty() && !cli.replay) {
    usage("--trace only applies to --replay (one schedule per trace file)");
  }
  return cli;
}

int run(const Cli& cli) {
  sim::ExploreScenarioOptions options;
  options.seed = cli.seed;
  options.num_queries = cli.queries;
  options.chaos.test_pre_qid_gather = cli.mutate;
  if (cli.latency_s >= 0.0) options.link.latency_s = cli.latency_s;
  if (cli.bandwidth_bps >= 0.0) options.link.bandwidth_bps = cli.bandwidth_bps;
  if (cli.overhead_s >= 0.0) {
    options.link.per_message_overhead_s = cli.overhead_s;
  }
  if (cli.timeout_s >= 0.0) options.chaos.worker_timeout_s = cli.timeout_s;
  if (cli.slack_s >= 0.0) options.schedule_slack_s = cli.slack_s;
  const auto runner = sim::make_explore_runner(cli.scenario, options);

  if (cli.replay) {
    if (!cli.trace_path.empty()) {
      obs::Tracer::instance().set_scheduler_events(cli.trace_sched);
      obs::Tracer::instance().start();
    }
    sim::des::ScheduleCase c;
    c.policy = cli.policy;
    c.schedule_seed = cli.schedule_seed;
    const sim::des::RunOutcome outcome = runner(c);
    if (!cli.trace_path.empty()) {
      obs::Tracer::instance().write(cli.trace_path);
      std::cout << "wrote trace to " << cli.trace_path << "\n";
    }
    std::cout << "replay policy=" << to_string(c.policy)
              << " schedule_seed=" << c.schedule_seed << "\n"
              << "digest=0x" << std::hex << outcome.digest << std::dec << "\n";
    if (outcome.deadlocked) {
      std::cout << "DEADLOCK\n";
      return 1;
    }
    if (!outcome.error.empty()) {
      std::cout << "ERROR: " << outcome.error << "\n";
      return 1;
    }
    std::cout << outcome.discrete;
    return 0;
  }

  sim::des::ExploreConfig config;
  config.num_schedules = cli.schedules;
  config.schedule_seed0 = cli.schedule_seed0;
  // Every fixture-shaping flag must make it into the repro prefix, or the
  // printed counterexample would replay a different fixture than the one
  // that diverged.
  std::ostringstream prefix;
  prefix << "schedule_explore --scenario=" << cli.scenario
         << " --seed=" << cli.seed << " --queries=" << cli.queries;
  if (cli.mutate) prefix << " --mutate";
  if (cli.latency_s >= 0.0) prefix << " --latency=" << cli.latency_s;
  if (cli.bandwidth_bps >= 0.0) prefix << " --bandwidth=" << cli.bandwidth_bps;
  if (cli.overhead_s >= 0.0) prefix << " --overhead=" << cli.overhead_s;
  if (cli.timeout_s >= 0.0) prefix << " --timeout=" << cli.timeout_s;
  if (cli.slack_s >= 0.0) prefix << " --slack=" << cli.slack_s;
  config.repro_prefix = prefix.str();
  const auto report = sim::des::explore_schedules(runner, config);
  std::cout << sim::des::format_report(report);
  return report.passed() ? 0 : 1;
}

}  // namespace
}  // namespace teamnet

int main(int argc, char** argv) {
  try {
    return teamnet::run(teamnet::parse(argc, argv));
  } catch (const teamnet::Error& e) {
    std::cerr << "schedule_explore: " << e.what() << "\n";
    return 2;
  }
}
