// libFuzzer harness for the wire-message decoder (net::Message::decode).
#include "decode_targets.hpp"
#include "fuzz_harness.hpp"

TEAMNET_FUZZ_TARGET(teamnet::fuzz::message_decode)
