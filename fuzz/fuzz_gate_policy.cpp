// libFuzzer harness for gate-policy robustness (core::GatePolicy::decide
// over arbitrary — including non-finite — entropy matrices).
#include "decode_targets.hpp"
#include "fuzz_harness.hpp"

TEAMNET_FUZZ_TARGET(teamnet::fuzz::gate_policy_decide)
