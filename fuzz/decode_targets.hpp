// The decode contract, defined once and driven three ways: by the libFuzzer
// harnesses (fuzz_*.cpp), by the corpus-replay ctest binaries
// (replay_main.cpp, built with every compiler), and by the hand-rolled
// mutation loops in tests/serialize_fuzz_test.cpp. Keeping one definition
// means ctest and libFuzzer can never drift apart on what "robust decode"
// means.
//
// Contract for every target: an ARBITRARY input byte string either decodes
// successfully (returns true) or is rejected with a teamnet::Error
// (returns false). Any other outcome is a bug:
//   * crash / sanitizer report / std::bad_alloc from a wild length,
//   * a non-teamnet exception escaping,
//   * a violated postcondition — reported as std::logic_error, which no
//     caller catches, so libFuzzer (and gtest) flag it loudly.
#pragma once

#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/gate_policy.hpp"
#include "net/message.hpp"
#include "nn/quantize.hpp"
#include "nn/serialize.hpp"

namespace teamnet::fuzz {

/// Wire-message decoder (net::Message::decode — the bytes every Channel
/// carries).
inline bool message_decode(const std::string& bytes) {
  try {
    (void)net::Message::decode(bytes);
    return true;
  } catch (const Error&) {
    return false;
  }
}

/// Checkpoint decoder (nn::load_tensors — model snapshots and the weight
/// deployment path).
inline bool checkpoint_decode(const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  try {
    (void)nn::load_tensors(is);
    return true;
  } catch (const Error&) {
    return false;
  }
}

/// Quantized-snapshot decoder (nn::dequantize_snapshot — the ~4x-smaller
/// expert-weight transfer format).
inline bool quantize_decode(const std::string& bytes) {
  try {
    (void)nn::dequantize_snapshot(bytes);
    return true;
  } catch (const Error&) {
    return false;
  }
}

/// Gate-policy robustness. Input layout: byte 0 selects the expert count
/// (1..8), byte 1 the policy kind, byte 2 the batch size (1..32); the rest
/// is reinterpreted as raw little-endian floats — deliberately including
/// NaN/Inf/denormal bit patterns, which garbage expert probabilities can
/// produce as entropies at runtime. decide() must return a well-formed
/// assignment (one expert index per row, each in [0, K)) or throw a
/// teamnet::Error.
inline bool gate_policy_decide(const std::string& bytes) {
  if (bytes.size() < 3) return false;
  const auto byte_at = [&bytes](std::size_t i) {
    return static_cast<unsigned char>(bytes[i]);
  };
  const int k = 1 + byte_at(0) % 8;
  const auto kind = static_cast<core::GateKind>(byte_at(1) % 4);
  const std::int64_t n = 1 + byte_at(2) % 32;

  std::vector<float> entropies(static_cast<std::size_t>(n * k), 0.5f);
  const std::size_t available = (bytes.size() - 3) / sizeof(float);
  const std::size_t n_floats = std::min(entropies.size(), available);
  if (n_floats > 0) {
    std::memcpy(entropies.data(), bytes.data() + 3, n_floats * sizeof(float));
  }
  Tensor entropy({n, static_cast<std::int64_t>(k)}, std::move(entropies));

  core::GateTrainerConfig config;
  config.max_iterations = 8;  // keep the learned gate's inner loop fuzz-fast
  const std::uint64_t seed = static_cast<std::uint64_t>(byte_at(0)) |
                             static_cast<std::uint64_t>(byte_at(1)) << 8 |
                             static_cast<std::uint64_t>(byte_at(2)) << 16;
  try {
    auto policy = core::make_gate_policy(kind, k, config, Rng(seed));
    const core::GateDecision decision = policy->decide(entropy);
    if (decision.assignment.size() != static_cast<std::size_t>(n)) {
      throw std::logic_error("gate contract: assignment size != batch rows");
    }
    for (const int a : decision.assignment) {
      if (a < 0 || a >= k) {
        throw std::logic_error("gate contract: expert index out of range");
      }
    }
    return true;
  } catch (const Error&) {
    return false;
  }
}

}  // namespace teamnet::fuzz
