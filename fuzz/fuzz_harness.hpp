// Shared libFuzzer harness glue: TEAMNET_FUZZ_TARGET(fn) expands to the
// LLVMFuzzerTestOneInput entry point for one decode-contract function from
// decode_targets.hpp. The same TU links either against libFuzzer
// (-fsanitize=fuzzer, TEAMNET_FUZZ=ON, clang) or against replay_main.cpp,
// which feeds every checked-in corpus file through the identical entry
// point as a ctest case in regular builds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#define TEAMNET_FUZZ_TARGET(target_fn)                                      \
  extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,           \
                                        std::size_t size) {                 \
    const std::string bytes(reinterpret_cast<const char*>(data), size);     \
    (void)target_fn(bytes);                                                 \
    return 0;                                                               \
  }
