// Seed-corpus generator. Writes the checked-in corpora under
// fuzz/corpus/<target>/ — run it after changing a wire format so the seeds
// keep exercising the interesting branches of the CURRENT decoders:
//
//   ./fuzz_seed_gen <repo>/fuzz/corpus
//
// Each target gets well-formed inputs of varying shapes (fuzzers mutate
// outward from valid structure far faster than from garbage), plus
// truncated / corrupted / garbage variants that pin the rejection paths.
// Every generated seed is replayed through the decode contract before it
// is written, so a generator bug cannot check in a crashing "seed".
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "decode_targets.hpp"
#include "nn/mlp.hpp"

namespace {

using teamnet::Rng;
using teamnet::Tensor;

void write_seed(const std::filesystem::path& dir, const std::string& name,
                const std::string& bytes, bool (*contract)(const std::string&)) {
  (void)contract(bytes);  // throws / crashes here rather than after check-in
  std::ofstream out(dir / name, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("cannot write seed " + name);
}

std::string encoded_message(teamnet::net::MsgType type, int n_ints,
                            const std::vector<teamnet::Shape>& shapes,
                            std::uint64_t seed) {
  Rng rng(seed);
  teamnet::net::Message msg;
  msg.type = type;
  for (int i = 0; i < n_ints; ++i) msg.ints.push_back(rng.randint(-1000, 1000));
  for (const auto& shape : shapes) msg.tensors.push_back(Tensor::randn(shape, rng));
  return msg.encode();
}

std::string corrupt(std::string bytes, std::size_t pos, unsigned char flip) {
  bytes[pos % bytes.size()] = static_cast<char>(
      static_cast<unsigned char>(bytes[pos % bytes.size()]) ^ flip);
  return bytes;
}

void gen_message(const std::filesystem::path& dir) {
  const auto c = teamnet::fuzz::message_decode;
  int n = 0;
  const auto add = [&](const std::string& bytes) {
    char name[32];
    std::snprintf(name, sizeof(name), "seed_%02d", n++);
    write_seed(dir, name, bytes, c);
  };
  using teamnet::net::MsgType;
  add(encoded_message(MsgType::Ack, 0, {}, 1));
  add(encoded_message(MsgType::Infer, 0, {{1, 28 * 28}}, 2));
  add(encoded_message(MsgType::Result, 2, {{1, 10}, {1}}, 3));
  add(encoded_message(MsgType::Shutdown, 0, {}, 4));
  add(encoded_message(MsgType::Weights, 1, {{4, 3}, {4}, {3}}, 5));
  add(encoded_message(MsgType::Collective, 3, {{2, 2, 2}}, 6));
  add(encoded_message(MsgType::Result, 8, {{5}}, 7));
  add(encoded_message(MsgType::Infer, 0, {{3, 32, 32}}, 8));
  add(encoded_message(MsgType::Collective, 1, {{}}, 9));        // rank-0 tensor
  add(encoded_message(MsgType::Ack, 16, {}, 10));
  const std::string base = encoded_message(MsgType::Result, 2, {{2, 3}}, 11);
  add(base.substr(0, 0));                                       // empty
  add(base.substr(0, 3));                                       // inside type
  add(base.substr(0, 8));                                       // after counts
  add(base.substr(0, base.size() / 2));                         // mid-tensor
  add(base.substr(0, base.size() - 1));                         // one byte short
  add(corrupt(base, 0, 0xFF));                                  // wild type
  add(corrupt(base, 4, 0xFF));                                  // wild int count
  add(corrupt(base, base.size() / 2, 0x80));                    // payload flip
  add(base + std::string(7, '\x7f'));                           // trailing junk
  add(std::string(48, '\xee'));                                 // pure garbage
  add(std::string("TNET????????"));                             // wrong format
  // Deadline-budget Infer frames (DESIGN.md §13): qid + absolute deadline
  // stamp + flags, so the fuzzer mutates outward from the degradation
  // plane's current dispatch layout, not just the legacy 1-int frame.
  const auto infer_frame = [](std::int64_t qid, std::int64_t deadline_us,
                              bool hedged, std::uint64_t seed) {
    Rng rng(seed);
    teamnet::net::Message msg;
    msg.type = MsgType::Infer;
    teamnet::net::InferInfo info;
    info.qid = qid;
    info.deadline_us = deadline_us;
    info.hedged = hedged;
    teamnet::net::set_infer_info(msg, info);
    msg.tensors = {Tensor::randn({1, 8}, rng)};
    return msg.encode();
  };
  add(infer_frame(3, 1'000'000, false, 12));                    // live budget
  add(infer_frame(4, teamnet::net::kNoDeadlineUs, true, 13));   // hedged, unbounded
  add(infer_frame(9'000'000'000'000LL,
                  std::numeric_limits<std::int64_t>::max(), true, 14));
  add(corrupt(infer_frame(5, 777, false, 15), 12, 0xFF));       // mangled stamp
  std::printf("message_decode: %d seeds\n", n);
}

void gen_checkpoint(const std::filesystem::path& dir) {
  const auto c = teamnet::fuzz::checkpoint_decode;
  int n = 0;
  const auto add = [&](const std::string& bytes) {
    char name[32];
    std::snprintf(name, sizeof(name), "seed_%02d", n++);
    write_seed(dir, name, bytes, c);
  };
  Rng rng(42);
  const auto snapshot = [&rng](const std::vector<teamnet::Shape>& shapes) {
    std::ostringstream os(std::ios::binary);
    std::vector<Tensor> tensors;
    for (const auto& shape : shapes) tensors.push_back(Tensor::randn(shape, rng));
    teamnet::nn::save_tensors(os, tensors);
    return os.str();
  };
  add(snapshot({}));                                            // zero tensors
  add(snapshot({{1}}));
  add(snapshot({{4, 4}, {2}}));
  add(snapshot({{8, 8, 3}, {8}, {3}}));
  add(snapshot({{}}));                                          // rank-0
  add(snapshot({{0}}));                                         // zero-size dim
  add(snapshot({{784, 16}, {16}, {16, 10}, {10}}));             // MLP-ish
  add(snapshot({{1, 1, 1, 1, 1, 1, 1, 1}}));                    // max rank
  const std::string base = snapshot({{3, 3}, {3}});
  add(base.substr(0, 2));                                       // inside magic
  add(base.substr(0, 4));                                       // magic only
  add(base.substr(0, 8));                                       // version only
  add(base.substr(0, 16));                                      // count only
  add(base.substr(0, base.size() - 5));                         // mid-data
  add(base.substr(0, base.size() - 1));
  add(corrupt(base, 1, 0x01));                                  // bad magic
  add(corrupt(base, 4, 0xFF));                                  // bad version
  add(corrupt(base, 8, 0xFF));                                  // wild count
  add(corrupt(base, 16, 0xFF));                                 // wild rank
  add(corrupt(base, 20, 0x7F));                                 // wild dim
  add(base + base);                                             // trailing junk
  add(std::string(64, '\0'));
  std::printf("checkpoint_decode: %d seeds\n", n);
}

void gen_quantize(const std::filesystem::path& dir) {
  const auto c = teamnet::fuzz::quantize_decode;
  int n = 0;
  const auto add = [&](const std::string& bytes) {
    char name[32];
    std::snprintf(name, sizeof(name), "seed_%02d", n++);
    write_seed(dir, name, bytes, c);
  };
  Rng rng(7);
  const auto snapshot = [&rng](teamnet::nn::MlpConfig config) {
    teamnet::nn::MlpNet mlp(config, rng);
    return teamnet::nn::serialize_parameters_quantized(mlp);
  };
  add(snapshot({8, 4, 2, 6}));
  add(snapshot({16, 3, 3, 8}));
  add(snapshot({4, 2, 2, 4}));
  add(snapshot({28, 10, 4, 12}));
  add(snapshot({6, 6, 2, 6}));
  // Constant tensors hit the scale == 0 branch.
  {
    teamnet::nn::MlpNet mlp({5, 2, 2, 3}, rng);
    for (auto& p : mlp.parameters()) p.mutable_value().fill(1.25f);
    add(teamnet::nn::serialize_parameters_quantized(mlp));
  }
  const std::string base = snapshot({10, 4, 2, 8});
  add(base.substr(0, 0));
  add(base.substr(0, 2));                                       // inside magic
  add(base.substr(0, 4));                                       // magic only
  add(base.substr(0, 12));                                      // count only
  add(base.substr(0, 20));                                      // inside header
  add(base.substr(0, base.size() / 2));
  add(base.substr(0, base.size() - 1));
  add(corrupt(base, 0, 0x20));                                  // bad magic
  add(corrupt(base, 4, 0xFF));                                  // wild count
  add(corrupt(base, 12, 0xFF));                                 // wild rank
  add(corrupt(base, 16, 0x7F));                                 // wild dim
  add(corrupt(base, 24, 0xFF));                                 // min/scale bits
  add(base + std::string(9, '\x55'));                           // trailing junk
  add(std::string("TNQ1") + std::string(32, '\xff'));           // hostile body
  std::printf("quantize_decode: %d seeds\n", n);
}

void gen_gate(const std::filesystem::path& dir) {
  const auto c = teamnet::fuzz::gate_policy_decide;
  int n = 0;
  const auto add = [&](const std::string& bytes) {
    char name[32];
    std::snprintf(name, sizeof(name), "seed_%02d", n++);
    write_seed(dir, name, bytes, c);
  };
  Rng rng(13);
  // Header: k-1 | kind | n-1, then raw little-endian float entropies.
  const auto build = [&rng](unsigned char k, unsigned char kind,
                            unsigned char rows, int n_floats,
                            float lo, float hi) {
    std::string bytes;
    bytes.push_back(static_cast<char>(k - 1));
    bytes.push_back(static_cast<char>(kind));
    bytes.push_back(static_cast<char>(rows - 1));
    for (int i = 0; i < n_floats; ++i) {
      const float v = rng.uniform(lo, hi);
      bytes.append(reinterpret_cast<const char*>(&v), sizeof(v));
    }
    return bytes;
  };
  // Every policy kind at several (K, n) shapes and entropy ranges.
  for (unsigned char kind = 0; kind < 4; ++kind) {
    add(build(2, kind, 8, 16, 0.0f, 2.3f));
    add(build(4, kind, 16, 64, 0.0f, 2.3f));
    add(build(8, kind, 32, 256, 0.001f, 0.01f));  // near-degenerate entropies
    add(build(3, kind, 1, 3, 0.0f, 5.0f));        // single-row batch
  }
  // Non-finite and hostile float payloads.
  const auto with_floats = [](std::initializer_list<float> vs) {
    std::string bytes("\x03\x00\x07", 3);  // K=4, learned, n=8
    for (float v : vs) {
      bytes.append(reinterpret_cast<const char*>(&v), sizeof(v));
    }
    return bytes;
  };
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  add(with_floats({nan, nan, nan, nan, 1.0f, 2.0f, 3.0f, 4.0f}));
  add(with_floats({inf, -inf, inf, -inf, 0.0f, -0.0f, 1e38f, -1e38f}));
  add(with_floats({1e-44f, -1e-44f, 1e38f, 0.5f}));  // denormals
  add(std::string("\x00\x00\x00", 3));               // header only, K=1
  add(std::string(3 + 64, '\xff'));                  // all-ones floats (NaN)
  add(std::string(2, '\x01'));                       // too short → reject
  std::printf("gate_policy: %d seeds\n", n);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 1;
  }
  const std::filesystem::path root(argv[1]);
  const struct {
    const char* name;
    void (*gen)(const std::filesystem::path&);
  } targets[] = {
      {"message_decode", gen_message},
      {"checkpoint_decode", gen_checkpoint},
      {"quantize_decode", gen_quantize},
      {"gate_policy", gen_gate},
  };
  for (const auto& target : targets) {
    const auto dir = root / target.name;
    std::filesystem::create_directories(dir);
    target.gen(dir);
  }
  return 0;
}
