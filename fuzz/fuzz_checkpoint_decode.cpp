// libFuzzer harness for the checkpoint decoder (nn::load_tensors).
#include "decode_targets.hpp"
#include "fuzz_harness.hpp"

TEAMNET_FUZZ_TARGET(teamnet::fuzz::checkpoint_decode)
