// Corpus-replay driver: feeds every file under the given corpus
// directories (or individual files) through LLVMFuzzerTestOneInput, the
// exact entry point the libFuzzer build runs. Registered as ctest cases so
// regular (non-clang, non-fuzzer) builds still regression-test every
// checked-in corpus input — a crash found by the nightly fuzzer and added
// to the corpus stays fixed forever.
//
// Exit status: 0 when every input replayed without crashing; 1 on usage
// error or when a corpus directory yields no inputs (a silently-empty
// corpus would read as "covered" while testing nothing).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

bool replay_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read corpus input: %s\n",
                 path.string().c_str());
    return false;
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  (void)LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir-or-file>...\n", argv[0]);
    return 1;
  }
  std::size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      // Sort for a deterministic replay order (directory iteration order
      // is filesystem-dependent).
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        if (!replay_file(file)) return 1;
        ++replayed;
      }
    } else if (std::filesystem::is_regular_file(arg)) {
      if (!replay_file(arg)) return 1;
      ++replayed;
    } else {
      std::fprintf(stderr, "no such corpus input: %s\n", arg.string().c_str());
      return 1;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "corpus is empty — nothing was tested\n");
    return 1;
  }
  std::printf("replayed %zu corpus input(s) cleanly\n", replayed);
  return 0;
}
