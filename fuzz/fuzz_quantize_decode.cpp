// libFuzzer harness for the quantized-snapshot decoder
// (nn::dequantize_snapshot).
#include "decode_targets.hpp"
#include "fuzz_harness.hpp"

TEAMNET_FUZZ_TARGET(teamnet::fuzz::quantize_decode)
