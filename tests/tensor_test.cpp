// Unit tests for the Tensor value type and the raw math kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace teamnet {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2);
  for (float v : t.values()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FromValuesAndAccessors) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
  t.at(1, 0) = 7.0f;
  EXPECT_EQ(t[2], 7.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), InvariantError);
}

TEST(Tensor, OutOfRangeAccessThrows) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at(2, 0), InvariantError);
  EXPECT_THROW(t.at(0), InvariantError);  // wrong rank
}

TEST(Tensor, ReshapeSharesBuffer) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor v = t.reshape({3, 2});
  v.at(0, 0) = 42.0f;
  EXPECT_EQ(t.at(0, 0), 42.0f);
}

TEST(Tensor, ReshapeInfersDimension) {
  Tensor t({4, 6});
  EXPECT_EQ(t.reshape({2, -1}).dim(1), 12);
  EXPECT_EQ(t.reshape({-1}).dim(0), 24);
  EXPECT_THROW(t.reshape({5, -1}), InvariantError);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t({2}, {1, 2});
  Tensor c = t.clone();
  c[0] = 9.0f;
  EXPECT_EQ(t[0], 1.0f);
}

TEST(Tensor, RandnDeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  Tensor ta = Tensor::randn({8}, a);
  Tensor tb = Tensor::randn({8}, b);
  Tensor tc = Tensor::randn({8}, c);
  EXPECT_TRUE(ta.allclose(tb));
  EXPECT_FALSE(ta.allclose(tc));
}

TEST(Ops, AddSameShape) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {10, 20, 30, 40});
  Tensor c = ops::add(a, b);
  EXPECT_TRUE(c.allclose(Tensor({2, 2}, {11, 22, 33, 44})));
}

TEST(Ops, RowBroadcast) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row({1, 3}, {10, 20, 30});
  Tensor c = ops::add(a, row);
  EXPECT_TRUE(c.allclose(Tensor({2, 3}, {11, 22, 33, 14, 25, 36})));
}

TEST(Ops, ColBroadcast) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor col({2, 1}, {10, 100});
  Tensor c = ops::mul(a, col);
  EXPECT_TRUE(c.allclose(Tensor({2, 3}, {10, 20, 30, 400, 500, 600})));
}

TEST(Ops, ScalarBroadcastBothSides) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor s({1}, {2});
  EXPECT_TRUE(ops::mul(a, s).allclose(Tensor({2, 2}, {2, 4, 6, 8})));
  EXPECT_TRUE(ops::sub(s, a).allclose(Tensor({2, 2}, {1, 0, -1, -2})));
}

TEST(Ops, IncompatibleBroadcastThrows) {
  Tensor a({2, 3});
  Tensor b({3, 2});
  EXPECT_THROW(ops::add(a, b), InvalidArgument);
}

TEST(Ops, ReduceToShapeInvertsBroadcast) {
  Tensor g({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(ops::reduce_to_shape(g, {1, 3}).allclose(Tensor({1, 3}, {5, 7, 9})));
  EXPECT_TRUE(ops::reduce_to_shape(g, {2, 1}).allclose(Tensor({2, 1}, {6, 15})));
  Tensor s = ops::reduce_to_shape(g, {1});
  EXPECT_FLOAT_EQ(s[0], 21.0f);
}

TEST(Ops, MatmulMatchesManual) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = ops::matmul(a, b);
  EXPECT_TRUE(c.allclose(Tensor({2, 2}, {58, 64, 139, 154})));
}

TEST(Ops, MatmulShapeMismatchThrows) {
  EXPECT_THROW(ops::matmul(Tensor({2, 3}), Tensor({2, 3})), InvariantError);
}

TEST(Gemm, VariantsAgreeWithNaive) {
  Rng rng(7);
  const std::int64_t m = 5, k = 4, n = 6;
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c_ref({m, n});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      for (std::int64_t p = 0; p < k; ++p)
        c_ref[i * n + j] += a[i * k + p] * b[p * n + j];

  Tensor c({m, n});
  gemm(a.data(), b.data(), c.data(), m, k, n);
  EXPECT_TRUE(c.allclose(c_ref, 1e-4f));

  // A^T variant: pass a transposed copy of A.
  Tensor at = ops::transpose(a);
  Tensor c_tn({m, n});
  gemm_tn_accumulate(at.data(), b.data(), c_tn.data(), m, k, n);
  EXPECT_TRUE(c_tn.allclose(c_ref, 1e-4f));

  // B^T variant.
  Tensor bt = ops::transpose(b);
  Tensor c_nt({m, n});
  gemm_nt_accumulate(a.data(), bt.data(), c_nt.data(), m, k, n);
  EXPECT_TRUE(c_nt.allclose(c_ref, 1e-4f));
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Tensor logits = Tensor::randn({4, 7}, rng, 0.0f, 5.0f);
  Tensor p = ops::softmax_rows(logits);
  for (std::int64_t i = 0; i < 4; ++i) {
    float sum = 0.0f;
    for (std::int64_t j = 0; j < 7; ++j) {
      EXPECT_GE(p[i * 7 + j], 0.0f);
      sum += p[i * 7 + j];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Ops, SoftmaxNumericallyStableForHugeLogits) {
  Tensor logits({1, 3}, {1000.0f, 1000.0f, -1000.0f});
  Tensor p = ops::softmax_rows(logits);
  EXPECT_NEAR(p[0], 0.5f, 1e-5f);
  EXPECT_NEAR(p[1], 0.5f, 1e-5f);
  EXPECT_NEAR(p[2], 0.0f, 1e-5f);
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(5);
  Tensor logits = Tensor::randn({3, 5}, rng);
  Tensor lsm = ops::log_softmax_rows(logits);
  Tensor sm = ops::softmax_rows(logits);
  for (std::int64_t i = 0; i < lsm.numel(); ++i) {
    EXPECT_NEAR(lsm[i], std::log(sm[i]), 1e-5f);
  }
}

TEST(Ops, ArgminArgmaxRows) {
  Tensor a({2, 3}, {3, 1, 2, 0, 5, -1});
  EXPECT_EQ(ops::argmin_rows(a), (std::vector<int>{1, 2}));
  EXPECT_EQ(ops::argmax_rows(a), (std::vector<int>{0, 1}));
}

TEST(Ops, TakeRowsAndConcat) {
  Tensor a({3, 2}, {0, 1, 2, 3, 4, 5});
  Tensor sel = ops::take_rows(a, {2, 0});
  EXPECT_TRUE(sel.allclose(Tensor({2, 2}, {4, 5, 0, 1})));
  Tensor cat = ops::concat_rows({sel, a});
  EXPECT_EQ(cat.dim(0), 5);
  EXPECT_EQ(cat.at(4, 1), 5.0f);
  EXPECT_THROW(ops::take_rows(a, {3}), InvariantError);
}

TEST(Ops, SumMeanAxis) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(ops::sum_axis(a, 0).allclose(Tensor({1, 3}, {5, 7, 9})));
  EXPECT_TRUE(ops::sum_axis(a, 1).allclose(Tensor({2, 1}, {6, 15})));
  EXPECT_TRUE(ops::mean_axis(a, 1).allclose(Tensor({2, 1}, {2, 5})));
  EXPECT_FLOAT_EQ(ops::sum_all(a), 21.0f);
  EXPECT_FLOAT_EQ(ops::mean_all(a), 3.5f);
  EXPECT_FLOAT_EQ(ops::max_all(a), 6.0f);
}

TEST(Im2Col, IdentityKernelRoundTrip) {
  // 1x1 kernel, stride 1: im2col is a permuted copy of the input.
  Rng rng(11);
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  Tensor cols = im2col(x, 1, 1, 0);
  EXPECT_EQ(cols.dim(0), 2 * 4 * 4);
  EXPECT_EQ(cols.dim(1), 3);
  // Element [n=1, c=2, y=3, x=0] should be cols[(1*4+3)*4+0, 2].
  EXPECT_FLOAT_EQ(cols.at((1 * 4 + 3) * 4 + 0, 2), x.at(1, 2, 3, 0));
}

TEST(Im2Col, PaddingProducesZeros) {
  Tensor x = Tensor::ones({1, 1, 2, 2});
  Tensor cols = im2col(x, 3, 1, 1);
  // Top-left output location: only the bottom-right 2x2 sub-window is real.
  const float* row = cols.data();
  EXPECT_EQ(row[0], 0.0f);  // out-of-bounds corner
  EXPECT_EQ(row[4], 1.0f);  // center hits (0,0)
}

TEST(Im2Col, Col2ImIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining adjoint
  // property that makes the conv backward pass correct.
  Rng rng(13);
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  Tensor cx = im2col(x, 3, 2, 1);
  Tensor y = Tensor::randn(cx.shape(), rng);
  Tensor aty = col2im(y, x.shape(), 3, 2, 1);
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < cx.numel(); ++i) lhs += cx[i] * y[i];
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * aty[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2Col, ConvOutDim) {
  EXPECT_EQ(conv_out_dim(16, 3, 1, 1), 16);
  EXPECT_EQ(conv_out_dim(16, 3, 2, 1), 8);
  EXPECT_THROW(conv_out_dim(2, 5, 1, 0), InvariantError);
}

}  // namespace
}  // namespace teamnet
