// 8-bit quantized weight shipping: error bounds, size savings, and
// behaviour preservation on a trained model.
#include <gtest/gtest.h>

#include "data/blobs.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optim.hpp"
#include "nn/quantize.hpp"
#include "nn/serialize.hpp"

namespace teamnet {
namespace {

TEST(Quantize, RoundTripErrorBoundedByHalfScale) {
  Rng rng(1);
  Tensor t = Tensor::randn({64, 32}, rng, 0.0f, 2.0f);
  nn::QuantizedTensor q = nn::quantize(t);
  Tensor back = nn::dequantize(q);
  ASSERT_EQ(back.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::abs(back[i] - t[i]), q.scale * 0.5f + 1e-6f);
  }
}

TEST(Quantize, ConstantTensorIsExact) {
  Tensor t = Tensor::full({10}, 3.25f);
  Tensor back = nn::dequantize(nn::quantize(t));
  EXPECT_TRUE(back.allclose(t));
}

TEST(Quantize, ExtremesMapExactly) {
  Tensor t({3}, {-1.5f, 0.0f, 2.5f});
  Tensor back = nn::dequantize(nn::quantize(t));
  EXPECT_NEAR(back[0], -1.5f, 1e-6f);
  EXPECT_NEAR(back[2], 2.5f, 1e-6f);
}

TEST(Quantize, SnapshotIsRoughlyFourTimesSmaller) {
  Rng rng(2);
  nn::MlpConfig cfg;
  cfg.depth = 4;
  cfg.hidden = 64;
  nn::MlpNet model(cfg, rng);
  const std::string full = nn::serialize_parameters(model);
  const std::string quantized = nn::serialize_parameters_quantized(model);
  EXPECT_LT(quantized.size() * 3, full.size())
      << "uint8 payload should be ~4x smaller than float32";
}

TEST(Quantize, TrainedModelSurvivesQuantizedDeployment) {
  data::BlobsConfig bc;
  bc.num_samples = 400;
  auto ds = data::make_blobs(bc);
  Rng rng(3);
  nn::MlpConfig cfg;
  cfg.in_features = bc.dims;
  cfg.num_classes = static_cast<int>(bc.num_classes);
  cfg.depth = 3;
  cfg.hidden = 16;
  nn::MlpNet model(cfg, rng);
  nn::Sgd opt(model.parameters(), {});
  Rng srng(4);
  data::BatchIterator it(ds, 32, &srng);
  for (int e = 0; e < 5; ++e) {
    it.reset();
    for (auto b = it.next(); b.size() > 0; b = it.next()) {
      ag::backward(nn::cross_entropy_loss(model.forward(ag::constant(b.x)), b.y));
      opt.step();
    }
  }
  model.set_training(false);
  const double full_acc = nn::accuracy(model.predict(ds.images), ds.labels);
  ASSERT_GT(full_acc, 0.9);

  nn::MlpNet deployed(cfg, rng);
  nn::deserialize_parameters_quantized(
      nn::serialize_parameters_quantized(model), deployed);
  deployed.set_training(false);
  const double q_acc = nn::accuracy(deployed.predict(ds.images), ds.labels);
  EXPECT_GT(q_acc, full_acc - 0.05)
      << "8-bit deployment should cost at most a few points";
}

TEST(Quantize, RejectsCorruptStreams) {
  Rng rng(5);
  nn::MlpConfig cfg;
  cfg.in_features = 4;
  cfg.depth = 2;
  cfg.hidden = 4;
  nn::MlpNet model(cfg, rng);
  std::string bytes = nn::serialize_parameters_quantized(model);
  EXPECT_THROW(
      nn::deserialize_parameters_quantized(bytes.substr(0, bytes.size() / 2),
                                           model),
      SerializationError);
  bytes[0] = 'X';
  EXPECT_THROW(nn::deserialize_parameters_quantized(bytes, model),
               SerializationError);
  EXPECT_THROW(nn::deserialize_parameters_quantized("", model),
               SerializationError);
}

}  // namespace
}  // namespace teamnet
