// Property-based sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P) over the
// mathematical invariants the system relies on: entropy bounds, softmax
// normalization, gate bookkeeping, controller-target feasibility, autograd
// linearity, and serialization robustness under random corruption.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/entropy.hpp"
#include "core/gate.hpp"
#include "core/soft_ops.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"
#include "tensor/autograd.hpp"
#include "tensor/ops.hpp"

namespace teamnet {
namespace {

// ---- entropy / softmax invariants -------------------------------------------

class RandomLogitsSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomLogitsSweep, EntropyBounded) {
  Rng rng(GetParam());
  const std::int64_t n = 1 + rng.randint(1, 40);
  const std::int64_t c = 2 + rng.randint(0, 10);
  Tensor logits = Tensor::randn({n, c}, rng, 0.0f, rng.uniform(0.1f, 8.0f));
  Tensor h = core::entropy_from_logits(logits);
  const float max_entropy = std::log(static_cast<float>(c));
  for (float v : h.values()) {
    EXPECT_GE(v, -1e-6f);
    EXPECT_LE(v, max_entropy + 1e-5f);
  }
}

TEST_P(RandomLogitsSweep, SoftmaxRowsAreDistributions) {
  Rng rng(GetParam() + 1000);
  const std::int64_t n = 1 + rng.randint(1, 40);
  const std::int64_t c = 2 + rng.randint(0, 10);
  Tensor p = ops::softmax_rows(
      Tensor::randn({n, c}, rng, 0.0f, rng.uniform(0.1f, 20.0f)));
  for (std::int64_t i = 0; i < n; ++i) {
    float sum = 0.0f;
    for (std::int64_t j = 0; j < c; ++j) {
      EXPECT_GE(p[i * c + j], 0.0f);
      sum += p[i * c + j];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

TEST_P(RandomLogitsSweep, SoftArgminStaysInIndexRange) {
  Rng rng(GetParam() + 2000);
  const std::int64_t n = 1 + rng.randint(1, 30);
  const std::int64_t k = 2 + rng.randint(0, 6);
  Tensor scores = Tensor::uniform({n, k}, rng, 0.0f, 3.0f);
  ag::Var g = core::soft_argmin_rows(ag::constant(scores),
                                     rng.uniform(0.5f, 50.0f));
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_GE(g.value()[i], -1e-4f);
    EXPECT_LE(g.value()[i], static_cast<float>(k - 1) + 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLogitsSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- gate bookkeeping invariants --------------------------------------------

class GateInvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GateInvariantSweep, ProportionsSumToOneAndPartitionIsExact) {
  Rng rng(GetParam());
  const int n = 16 + rng.randint(0, 200);
  const int k = 2 + rng.randint(0, 6);
  Tensor h = Tensor::uniform({n, k}, rng, 0.01f, 2.0f);
  std::vector<float> delta(static_cast<std::size_t>(k));
  for (auto& d : delta) d = rng.uniform(0.1f, 5.0f);

  const auto assignment = core::gate_assign(h, delta);
  const auto gamma = core::assignment_proportions(assignment, k);
  float sum = 0.0f;
  for (float g : gamma) sum += g;
  EXPECT_NEAR(sum, 1.0f, 1e-5f);

  const auto parts = core::partition_by_assignment(assignment, k);
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  EXPECT_EQ(total, assignment.size());
  for (int i = 0; i < k; ++i) {
    for (int row : parts[static_cast<std::size_t>(i)]) {
      EXPECT_EQ(assignment[static_cast<std::size_t>(row)], i);
    }
  }
}

TEST_P(GateInvariantSweep, ControllerTargetIsFeasibleDistribution) {
  Rng rng(GetParam() + 500);
  const int k = 2 + rng.randint(0, 6);
  // Random gamma on the simplex.
  std::vector<float> gamma(static_cast<std::size_t>(k));
  float norm = 0.0f;
  for (auto& g : gamma) {
    g = rng.uniform(0.0f, 1.0f);
    norm += g;
  }
  for (auto& g : gamma) g /= norm;

  const float gain = rng.uniform(0.05f, 0.95f);
  const auto target = core::controller_target(gamma, gain);
  float sum = 0.0f;
  for (float t : target) {
    EXPECT_GE(t, 0.0f) << "targets must be achievable proportions";
    sum += t;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

TEST_P(GateInvariantSweep, ControllerPushesAgainstBias) {
  Rng rng(GetParam() + 900);
  const int k = 2 + rng.randint(0, 4);
  std::vector<float> gamma(static_cast<std::size_t>(k),
                           1.0f / static_cast<float>(k));
  // Perturb one expert upward, renormalize.
  gamma[0] += 0.3f;
  float norm = 0.0f;
  for (float g : gamma) norm += g;
  for (auto& g : gamma) g /= norm;
  const auto target = core::controller_target(gamma, 0.5f);
  EXPECT_LT(target[0], gamma[0])
      << "over-served expert must be assigned a smaller share";
}

INSTANTIATE_TEST_SUITE_P(Seeds, GateInvariantSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- autograd linearity ------------------------------------------------------

class AutogradLinearitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AutogradLinearitySweep, GradientOfSumIsSumOfGradients) {
  // d(f + g)/dx == df/dx + dg/dx for random small graphs.
  Rng rng(GetParam());
  Tensor x0 = Tensor::randn({4, 3}, rng);
  Tensor w = Tensor::randn({3, 2}, rng);

  auto grad_of = [&](auto builder) {
    ag::Var x(x0.clone(), true);
    ag::backward(builder(x));
    return x.grad().clone();
  };
  auto f = [&](const ag::Var& x) {
    return ag::sum_all(ag::matmul(x, ag::constant(w.clone())));
  };
  auto g = [&](const ag::Var& x) { return ag::sum_all(ag::tanh(x)); };
  auto fg = [&](const ag::Var& x) { return ag::add(f(x), g(x)); };

  Tensor expected = ops::add(grad_of(f), grad_of(g));
  EXPECT_TRUE(grad_of(fg).allclose(expected, 1e-4f));
}

TEST_P(AutogradLinearitySweep, ScalingInputScalesGradient) {
  Rng rng(GetParam() + 77);
  Tensor x0 = Tensor::randn({5}, rng);
  const float c = rng.uniform(0.5f, 3.0f);

  ag::Var a(x0.clone(), true);
  ag::backward(ag::sum_all(ag::mul_scalar(ag::square(a), c)));
  ag::Var b(x0.clone(), true);
  ag::backward(ag::sum_all(ag::square(b)));
  EXPECT_TRUE(a.grad().allclose(ops::mul_scalar(b.grad(), c), 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradLinearitySweep,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---- serialization corruption robustness ------------------------------------

class CorruptionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptionSweep, TruncatedCheckpointsThrowNotCrash) {
  Rng rng(GetParam());
  nn::MlpConfig cfg;
  cfg.in_features = 6;
  cfg.depth = 2;
  cfg.hidden = 4;
  nn::MlpNet model(cfg, rng);
  const std::string bytes = nn::serialize_parameters(model);

  // Truncation at a random point must throw a typed error.
  const std::size_t cut = 1 + static_cast<std::size_t>(rng.randint(
                                  0, static_cast<int>(bytes.size()) - 2));
  nn::MlpNet target(cfg, rng);
  EXPECT_THROW(nn::deserialize_parameters(bytes.substr(0, cut), target), Error);
}

TEST_P(CorruptionSweep, HeaderCorruptionIsRejected) {
  Rng rng(GetParam() + 40);
  nn::MlpConfig cfg;
  cfg.in_features = 6;
  cfg.depth = 2;
  cfg.hidden = 4;
  nn::MlpNet model(cfg, rng);
  std::string bytes = nn::serialize_parameters(model);
  // Flip a byte in the header region (magic/version/count/rank/dims).
  const std::size_t pos = static_cast<std::size_t>(rng.randint(0, 16));
  bytes[pos] = static_cast<char>(bytes[pos] ^ 0xFF);
  nn::MlpNet target(cfg, rng);
  EXPECT_THROW(nn::deserialize_parameters(bytes, target), Error);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionSweep,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace teamnet
