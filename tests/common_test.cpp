// Tests for the common utilities: error macros, logging levels, seeded RNG
// (fork independence), thread pool, and the table printer.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace teamnet {
namespace {

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    TEAMNET_CHECK_MSG(1 == 2, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("value was 42"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchable) {
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw NetworkError("x"), Error);
  EXPECT_THROW(throw SerializationError("x"), Error);
  EXPECT_THROW(throw InvariantError("x"), std::runtime_error);
}

TEST(Error, CheckPassesSilently) {
  TEAMNET_CHECK(2 + 2 == 4);
  TEAMNET_CHECK_MSG(true, "never rendered");
}

TEST(Logging, ThresholdGatesEmission) {
  const auto saved = log::threshold().load();
  log::set_level(log::Level::Warn);
  EXPECT_FALSE(log::enabled(log::Level::Debug));
  EXPECT_FALSE(log::enabled(log::Level::Info));
  EXPECT_TRUE(log::enabled(log::Level::Warn));
  EXPECT_TRUE(log::enabled(log::Level::Error));
  log::set_level(log::Level::Off);
  EXPECT_FALSE(log::enabled(log::Level::Error));
  log::set_level(saved);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.randint(0, 1000), b.randint(0, 1000));
  }
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(Rng, NormalHasRoughlyRightMoments) {
  Rng rng(9);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(5.0f, 2.0f);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ForksAreDecorrelated) {
  Rng parent(10);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.randint(0, 1000000) == b.randint(0, 1000000)) ++equal;
  }
  EXPECT_LE(equal, 2) << "sibling forks should not track each other";
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(11);
  auto perm = rng.permutation(50);
  std::set<int> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), 49);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(12);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw InvalidArgument("boom"); });
  EXPECT_THROW(f.get(), InvalidArgument);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(Table, AlignsColumnsAndValidatesRows) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 2.5"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one-cell"}), InvariantError);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, NumFormatsDigits) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

}  // namespace
}  // namespace teamnet
