// TSan-targeted stress tests: hammer the concurrent substrate — thread
// pool, in-proc channels, MPI-style collectives, virtual clock, telemetry —
// from many threads at once so `-DTEAMNET_SANITIZE=thread` has something to
// bite on. The assertions also hold under the plain build; the point of the
// test is the interleavings, not the arithmetic.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/telemetry.hpp"
#include "mpi/communicator.hpp"
#include "net/transport.hpp"
#include "net/virtual_clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/des/des_channel.hpp"
#include "sim/des/engine.hpp"

namespace teamnet {
namespace {

TEST(ThreadPoolRace, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<int> visits(kN, 0);
  // Distinct per-index writes: any duplicated or skipped index is a real
  // bug, and overlapping block bounds would race on the same slot.
  pool.parallel_for(kN, [&](std::size_t i) { visits[i] += 1; });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0),
            static_cast<int>(kN));
  EXPECT_TRUE(std::all_of(visits.begin(), visits.end(),
                          [](int v) { return v == 1; }));
}

TEST(ThreadPoolRace, ParallelForSmallerThanPoolStillCoversAll) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.parallel_for(3, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i) + 1, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1 + 2 + 3);
}

TEST(ThreadPoolRace, ParallelForPropagatesFirstWorkerException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(1000, [&](std::size_t i) {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 137) throw InvalidArgument("boom at 137");
    });
    FAIL() << "parallel_for should rethrow the worker exception";
  } catch (const InvalidArgument& e) {
    EXPECT_STREQ(e.what(), "boom at 137");
  }
  // The pool must stay serviceable after a failed parallel_for.
  std::atomic<int> after{0};
  pool.parallel_for(100, [&](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 100);
}

TEST(ThreadPoolRace, ConcurrentSubmittersShareOnePool) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 200; ++i) {
        futures.push_back(pool.submit(
            [&] { total.fetch_add(1, std::memory_order_relaxed); }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(), 4 * 200);
}

TEST(TelemetryRace, SimultaneousWritersAndReaders) {
  core::ConvergenceTelemetry tel;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 500;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&tel] {
      for (int i = 0; i < kPerWriter; ++i) {
        tel.record({0.5f, 0.5f}, 1.0f, 3);
      }
    });
  }
  // Readers poll live while writers append.
  threads.emplace_back([&tel] {
    for (int i = 0; i < 200; ++i) {
      const std::size_t n = tel.iterations();
      if (n > 0) {
        (void)tel.max_deviation(n - 1);
        (void)tel.smoothed_gamma(n - 1, std::min<std::size_t>(n, 8));
        (void)tel.iterations_to_converge(0.1f, 4);
      }
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(tel.iterations(), static_cast<std::size_t>(kWriters * kPerWriter));
  EXPECT_NEAR(tel.max_deviation(0), 0.0f, 1e-6f);

  // Snapshot semantics: copies taken under load must be self-consistent.
  core::ConvergenceTelemetry copy = tel;
  EXPECT_EQ(copy.iterations(), tel.iterations());
  EXPECT_EQ(copy.gamma_bar(0).size(), 2u);
}

TEST(VirtualClockRace, ConcurrentAdvanceAndDeliver) {
  net::VirtualClock clock(4);
  const net::LinkProfile link = net::wifi_link();
  std::vector<std::thread> threads;
  for (int node = 0; node < 4; ++node) {
    threads.emplace_back([&clock, &link, node] {
      for (int i = 0; i < 500; ++i) {
        clock.advance(node, 1e-4);
        clock.deliver((node + 1) % 4, clock.node_time(node), 128, link);
        (void)clock.max_time();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(clock.messages_delivered(), 4 * 500);
  EXPECT_EQ(clock.bytes_delivered(), 4 * 500 * 128);
  EXPECT_GE(clock.max_time(), 500 * 1e-4);
}

/// Builds a fully connected in-proc mesh (no virtual clock) for `n` ranks.
std::vector<std::vector<net::ChannelPtr>> make_inproc_mesh(int n) {
  std::vector<std::vector<net::ChannelPtr>> mesh(static_cast<std::size_t>(n));
  for (auto& row : mesh) row.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      auto [a, b] = net::make_inproc_pair();
      mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          std::move(a);
      mesh[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
          std::move(b);
    }
  }
  return mesh;
}

TEST(CommunicatorRace, ConcurrentCollectivesAcrossRanks) {
  constexpr int kRanks = 4;
  constexpr int kRounds = 25;
  auto mesh = make_inproc_mesh(kRanks);

  auto rank_main = [&mesh](int rank) {
    std::vector<net::Channel*> peers(kRanks, nullptr);
    for (int r = 0; r < kRanks; ++r) {
      if (r != rank) {
        peers[static_cast<std::size_t>(r)] =
            mesh[static_cast<std::size_t>(rank)][static_cast<std::size_t>(r)]
                .get();
      }
    }
    mpi::Communicator comm(rank, peers);
    for (int round = 0; round < kRounds; ++round) {
      Tensor t = Tensor::ones({4});
      for (std::int64_t i = 0; i < 4; ++i) t[i] = static_cast<float>(rank);

      const Tensor b = comm.bcast(t, round % kRanks);
      EXPECT_FLOAT_EQ(b[0], static_cast<float>(round % kRanks));

      const auto gathered = comm.gather(t, 0);
      if (rank == 0) {
        ASSERT_EQ(gathered.size(), static_cast<std::size_t>(kRanks));
        for (int r = 0; r < kRanks; ++r) {
          EXPECT_FLOAT_EQ(gathered[static_cast<std::size_t>(r)][0],
                          static_cast<float>(r));
        }
      }

      const auto all = comm.allgather(t);
      ASSERT_EQ(all.size(), static_cast<std::size_t>(kRanks));

      const Tensor sum = comm.allreduce_sum(t);
      EXPECT_FLOAT_EQ(sum[0], 0.0f + 1.0f + 2.0f + 3.0f);

      comm.barrier(0);
    }
  };

  std::vector<std::thread> threads;
  for (int r = 1; r < kRanks; ++r) threads.emplace_back(rank_main, r);
  rank_main(0);
  for (auto& t : threads) t.join();
}

TEST(ChannelRace, CloseWakesBlockedReceiver) {
  auto [a, b] = net::make_inproc_pair();
  net::Channel* reader = b.get();
  std::atomic<bool> threw{false};
  std::thread blocked([reader, &threw] {
    try {
      (void)reader->recv();
    } catch (const NetworkError&) {
      threw.store(true);
    }
  });
  // Give the reader a moment to block, then close from another thread.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  b->close();
  blocked.join();
  EXPECT_TRUE(threw.load());
  EXPECT_THROW(a->send("late"), NetworkError);
}

/// One full ring run over a DES mesh: every node advances, sends to its
/// successor, and receives from its predecessor, `rounds` times. Returns
/// the final per-node virtual clocks so callers can compare runs bit-wise.
std::vector<double> run_des_ring(int k, int rounds) {
  sim::des::Engine engine(k);
  auto mesh = sim::des::make_des_mesh(engine, k, net::wifi_link());
  std::vector<std::thread> threads;
  for (int node = 0; node < k; ++node) {
    threads.emplace_back([&engine, &mesh, node, k, rounds] {
      const int next = (node + 1) % k;
      const int prev = (node + k - 1) % k;
      net::Channel& to_next =
          *mesh[static_cast<std::size_t>(node)][static_cast<std::size_t>(next)];
      net::Channel& from_prev =
          *mesh[static_cast<std::size_t>(node)][static_cast<std::size_t>(prev)];
      for (int round = 0; round < rounds; ++round) {
        engine.advance(node, 1e-4 * (node + 1));
        to_next.send(std::string(64, static_cast<char>('a' + node)));
        const std::string got = from_prev.recv();
        EXPECT_EQ(got, std::string(64, static_cast<char>('a' + prev)));
      }
      // A node that leaves the simulation must retire, or the grant floor
      // would wait on its frozen clock forever.
      engine.retire(node);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(engine.messages_delivered(),
            static_cast<std::int64_t>(k) * rounds);
  std::vector<double> times;
  for (int node = 0; node < k; ++node) times.push_back(engine.node_time(node));
  return times;
}

TEST(DesEngineRace, RingStressIsBitStableAcrossRuns) {
  constexpr int kNodes = 4;
  constexpr int kRounds = 50;
  const std::vector<double> first = run_des_ring(kNodes, kRounds);
  const std::vector<double> second = run_des_ring(kNodes, kRounds);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    // Bit-exact, not approximately equal: the engine's whole contract is
    // that thread scheduling cannot leak into virtual time.
    EXPECT_EQ(first[i], second[i]) << "node " << i;
  }
}

TEST(ChannelRace, CloseDrainsQueuedMessagesFirst) {
  auto [a, b] = net::make_inproc_pair();
  a->send("one");
  a->send("two");
  a->close();
  EXPECT_EQ(b->recv(), "one");
  EXPECT_EQ(b->recv(), "two");
  EXPECT_THROW((void)b->recv(), NetworkError);
}

TEST(MetricsRace, ConcurrentUpdatesAndSnapshotsStayCoherent) {
  // Hammer one counter/gauge/histogram/series from writer threads while a
  // reader thread snapshots the whole registry: TSan sees the sharded
  // counter cells, the histogram's atomics, and the registry map all at
  // once. Metric names are unique to this test so the exact totals are
  // checkable at the end.
  auto& registry = obs::MetricsRegistry::instance();
  obs::Counter& counter = registry.counter("race_test.counter");
  obs::Gauge& gauge = registry.gauge("race_test.gauge");
  obs::Histogram& hist =
      registry.histogram("race_test.hist", {1.0, 10.0, 100.0});
  obs::Series& series = registry.series("race_test.series");

  constexpr int kWriters = 6;
  constexpr int kOpsPerWriter = 5'000;
  std::atomic<bool> stop{false};
  std::thread reader([&registry, &stop] {
    std::int64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::MetricsSnapshot snap = registry.snapshot();
      const std::int64_t seen = snap.counters.at("race_test.counter");
      // Monotone counter: snapshots may lag but can never go backwards.
      EXPECT_GE(seen, last);
      last = seen;
      const auto& h = snap.histograms.at("race_test.hist");
      std::int64_t bucket_total = 0;
      for (std::int64_t b : h.bucket_counts) bucket_total += b;
      // Bucket increments and the count increment are separate relaxed
      // atomics, so they may be observed slightly out of step — but both
      // are bounded by the true number of observe() calls.
      EXPECT_LE(bucket_total, kWriters * kOpsPerWriter);
      EXPECT_LE(h.count, kWriters * kOpsPerWriter);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counter.increment();
        gauge.set(static_cast<double>(i));
        hist.observe(static_cast<double>((w * kOpsPerWriter + i) % 200));
        if (i % 100 == 0) series.append(static_cast<double>(i));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(counter.total(), kWriters * kOpsPerWriter);
  EXPECT_EQ(hist.count(), kWriters * kOpsPerWriter);
  EXPECT_EQ(series.size(),
            static_cast<std::size_t>(kWriters * (kOpsPerWriter / 100)));
}

TEST(TracerRace, ConcurrentSpansOnDistinctTracksAllRecorded) {
  // Each thread binds its own track and emits spans while another thread
  // serializes mid-flight: exercises the registry mutex + leaf track
  // mutexes under contention.
  auto& tracer = obs::Tracer::instance();
  tracer.reset_for_testing();
  tracer.start();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::atomic<bool> stop{false};
  std::thread serializer([&tracer, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)tracer.to_json();
    }
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      double now = 0.0;
      obs::TraceTrack track(t, [&now] { return now; },
                            "race" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        now = static_cast<double>(i);
        obs::TraceSpan span("work");
        obs::trace_instant("tick");
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  serializer.join();

  const std::string json = tracer.to_json();
  std::size_t begins = 0;
  for (std::size_t pos = json.find("\"ph\": \"B\""); pos != std::string::npos;
       pos = json.find("\"ph\": \"B\"", pos + 1)) {
    ++begins;
  }
  EXPECT_EQ(begins, static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(tracer.dropped_events(), 0);
  tracer.reset_for_testing();
}

}  // namespace
}  // namespace teamnet
