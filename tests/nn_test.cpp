// Layer/model/optimizer/serialization tests for the nn module.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "nn/batchnorm.hpp"
#include "nn/dropout.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optim.hpp"
#include "nn/schedule.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "nn/shake_shake.hpp"
#include "tensor/ops.hpp"

namespace teamnet {
namespace {

TEST(Linear, ForwardShapeAndBias) {
  Rng rng(1);
  nn::Linear layer(3, 2, rng);
  layer.bias().mutable_value()[0] = 10.0f;
  Tensor x({2, 3}, {1, 0, 0, 0, 1, 0});
  Tensor y = layer.predict(x);
  EXPECT_EQ(y.shape(), (Shape{2, 2}));
  EXPECT_NEAR(y.at(0, 0), layer.weight().value().at(0, 0) + 10.0f, 1e-5f);
}

TEST(Linear, AnalyzeReportsFlops) {
  Rng rng(2);
  nn::Linear layer(784, 64, rng);
  auto analysis = layer.analyze({784});
  EXPECT_EQ(analysis.output_shape, (Shape{64}));
  EXPECT_EQ(analysis.flops, 2 * 784 * 64);
  EXPECT_THROW(layer.analyze({100}), InvariantError);
}

TEST(Conv2d, MatchesDirectConvolution) {
  Rng rng(3);
  nn::Conv2d conv(1, 1, 3, 1, 1, rng);
  // Identity-ish check: set kernel to a delta -> output equals input.
  conv.weight().mutable_value().fill(0.0f);
  conv.weight().mutable_value()[4] = 1.0f;  // center tap of the 3x3 kernel
  Tensor x = Tensor::randn({1, 1, 5, 5}, rng);
  Tensor y = conv.predict(x);
  EXPECT_TRUE(y.allclose(x, 1e-5f));
}

TEST(Conv2d, StrideHalvesSpatialDims) {
  Rng rng(4);
  nn::Conv2d conv(3, 8, 3, 2, 1, rng);
  auto analysis = conv.analyze({3, 16, 16});
  EXPECT_EQ(analysis.output_shape, (Shape{8, 8, 8}));
  Tensor y = conv.predict(Tensor::randn({2, 3, 16, 16}, rng));
  EXPECT_EQ(y.shape(), (Shape{2, 8, 8, 8}));
}

TEST(BatchNorm, NormalizesBatchStatistics) {
  Rng rng(5);
  nn::BatchNorm bn(4);
  bn.set_training(true);
  Tensor x = Tensor::randn({64, 4}, rng, 3.0f, 2.0f);
  Tensor y = bn.predict(x);
  // Per-feature mean ~0, var ~1 after normalization (gamma=1, beta=0).
  for (std::int64_t c = 0; c < 4; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::int64_t i = 0; i < 64; ++i) mean += y[i * 4 + c];
    mean /= 64.0;
    for (std::int64_t i = 0; i < 64; ++i) {
      var += (y[i * 4 + c] - mean) * (y[i * 4 + c] - mean);
    }
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  Rng rng(6);
  nn::BatchNorm bn(2);
  bn.set_training(true);
  for (int i = 0; i < 50; ++i) {
    bn.predict(Tensor::randn({32, 2}, rng, 5.0f, 1.0f));
  }
  EXPECT_NEAR(bn.running_mean()[0], 5.0f, 0.5f);
  bn.set_training(false);
  // A shifted eval batch should NOT be re-centred to zero mean.
  Tensor y = bn.predict(Tensor::full({8, 2}, 5.0f));
  for (float v : y.values()) EXPECT_NEAR(v, 0.0f, 0.5f);
  Tensor y2 = bn.predict(Tensor::full({8, 2}, 9.0f));
  for (float v : y2.values()) EXPECT_GT(v, 2.0f);
}

TEST(BatchNorm, GradCheckThroughCustomNode) {
  Rng rng(7);
  nn::BatchNorm bn(3);
  bn.set_training(true);
  Tensor x = Tensor::randn({8, 3}, rng);
  ag::Var input(x.clone(), true);
  ag::Var out = ag::sum_all(ag::square(bn.forward(input)));
  ag::backward(out);
  ASSERT_TRUE(input.has_grad());

  // Finite differences through a fresh forward (same batch stats since the
  // batch is the input itself).
  const float eps = 1e-2f;
  for (std::int64_t i = 0; i < 6; ++i) {
    Tensor plus = x.clone();
    plus[i] += eps;
    Tensor minus = x.clone();
    minus[i] -= eps;
    nn::BatchNorm bn2(3);  // fresh running stats, same gamma/beta defaults
    bn2.set_training(true);
    const float fp = ops::sum_all(ops::square(bn2.predict(plus)));
    const float fm = ops::sum_all(ops::square(bn2.predict(minus)));
    EXPECT_NEAR(input.grad()[i], (fp - fm) / (2 * eps), 0.05f) << "elem " << i;
  }
}

TEST(Mlp, DepthCountsLinearLayers) {
  Rng rng(8);
  nn::MlpConfig cfg;
  cfg.depth = 4;
  nn::MlpNet mlp(cfg, rng);
  EXPECT_EQ(mlp.linear_layers().size(), 4u);
  EXPECT_EQ(mlp.name(), "MLP-4");
  auto analysis = mlp.analyze({cfg.in_features});
  EXPECT_EQ(analysis.output_shape, (Shape{10}));
  EXPECT_GT(analysis.flops, 0);
}

TEST(Mlp, DeeperMlpHasMoreFlops) {
  Rng rng(9);
  nn::MlpConfig c2, c4, c8;
  c2.depth = 2;
  c4.depth = 4;
  c8.depth = 8;
  nn::MlpNet m2(c2, rng), m4(c4, rng), m8(c8, rng);
  const auto f2 = m2.analyze({784}).flops;
  const auto f4 = m4.analyze({784}).flops;
  const auto f8 = m8.analyze({784}).flops;
  EXPECT_LT(f2, f4);
  EXPECT_LT(f4, f8);
}

TEST(ShakeShake, DepthMapsToBlocks) {
  EXPECT_EQ(nn::ShakeShakeNet::blocks_for_depth(8), 3);
  EXPECT_EQ(nn::ShakeShakeNet::blocks_for_depth(14), 6);
  EXPECT_EQ(nn::ShakeShakeNet::blocks_for_depth(26), 12);
  EXPECT_THROW(nn::ShakeShakeNet::blocks_for_depth(7), InvariantError);
}

TEST(ShakeShake, ForwardShapeAndFlopOrdering) {
  Rng rng(10);
  nn::ShakeShakeConfig c8, c26;
  c8.depth = 8;
  c26.depth = 26;
  nn::ShakeShakeNet ss8(c8, rng), ss26(c26, rng);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  ss8.set_training(false);
  Tensor y = ss8.predict(x);
  EXPECT_EQ(y.shape(), (Shape{2, 10}));
  EXPECT_LT(ss8.analyze({3, 16, 16}).flops, ss26.analyze({3, 16, 16}).flops);
}

TEST(ShakeShake, EvalIsDeterministicTrainingIsStochastic) {
  Rng rng(11);
  nn::ShakeShakeConfig cfg;
  cfg.depth = 8;
  nn::ShakeShakeNet net(cfg, rng);
  Tensor x = Tensor::randn({1, 3, 16, 16}, rng);
  net.set_training(false);
  Tensor a = net.predict(x);
  Tensor b = net.predict(x);
  EXPECT_TRUE(a.allclose(b));
  net.set_training(true);
  Tensor c = net.forward(ag::constant(x)).value();
  Tensor d = net.forward(ag::constant(x)).value();
  EXPECT_FALSE(c.allclose(d, 1e-7f)) << "shake mixing should differ per pass";
}

TEST(Optim, SgdDescendsQuadratic) {
  ag::Var w(Tensor({1}, {4.0f}), true);
  nn::SgdConfig cfg;
  cfg.lr = 0.1f;
  cfg.momentum = 0.0f;
  cfg.max_grad_norm = 0.0f;
  nn::Sgd opt({w}, cfg);
  for (int i = 0; i < 100; ++i) {
    ag::backward(ag::sum_all(ag::square(w)));
    opt.step();
  }
  EXPECT_NEAR(w.value()[0], 0.0f, 1e-3f);
}

TEST(Optim, SgdClipsGlobalNorm) {
  ag::Var w(Tensor({1}, {0.0f}), true);
  nn::SgdConfig cfg;
  cfg.lr = 1.0f;
  cfg.momentum = 0.0f;
  cfg.max_grad_norm = 1.0f;
  nn::Sgd opt({w}, cfg);
  ag::backward(ag::sum_all(ag::mul_scalar(w, 100.0f)));  // grad = 100
  opt.step();
  EXPECT_NEAR(w.value()[0], -1.0f, 1e-4f);  // clipped to norm 1
}

TEST(Optim, AdamDescendsQuadratic) {
  ag::Var w(Tensor({1}, {4.0f}), true);
  nn::AdamConfig cfg;
  cfg.lr = 0.2f;
  nn::Adam opt({w}, cfg);
  for (int i = 0; i < 200; ++i) {
    ag::backward(ag::sum_all(ag::square(w)));
    opt.step();
  }
  EXPECT_NEAR(w.value()[0], 0.0f, 1e-2f);
}

TEST(Optim, SkipsParamsWithoutGrad) {
  ag::Var used(Tensor({1}, {1.0f}), true);
  ag::Var unused(Tensor({1}, {7.0f}), true);
  nn::Sgd opt({used, unused}, {});
  ag::backward(ag::sum_all(ag::square(used)));
  opt.step();
  EXPECT_FLOAT_EQ(unused.value()[0], 7.0f);
  EXPECT_NE(used.value()[0], 1.0f);
}

TEST(Serialize, TensorRoundTrip) {
  Rng rng(12);
  Tensor t = Tensor::randn({3, 4, 5}, rng);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  nn::write_tensor(ss, t);
  Tensor back = nn::read_tensor(ss);
  EXPECT_TRUE(t.allclose(back));
}

TEST(Serialize, ModuleParameterRoundTrip) {
  Rng rng(13);
  nn::MlpConfig cfg;
  cfg.depth = 3;
  nn::MlpNet a(cfg, rng), b(cfg, rng);
  Tensor x = Tensor::randn({4, cfg.in_features}, rng);
  EXPECT_FALSE(a.predict(x).allclose(b.predict(x)));
  nn::deserialize_parameters(nn::serialize_parameters(a), b);
  EXPECT_TRUE(a.predict(x).allclose(b.predict(x)));
}

TEST(Serialize, RejectsCorruptStream) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ss << "not a checkpoint";
  EXPECT_THROW(nn::load_tensors(ss), SerializationError);
}

TEST(Serialize, RejectsShapeMismatch) {
  Rng rng(14);
  nn::MlpConfig small, big;
  small.depth = 2;
  big.depth = 4;
  nn::MlpNet a(small, rng), b(big, rng);
  EXPECT_THROW(nn::deserialize_parameters(nn::serialize_parameters(a), b),
               InvariantError);
}

TEST(Loss, CrossEntropyOfPerfectPredictionIsSmall) {
  Tensor logits({2, 3}, {20, 0, 0, 0, 20, 0});
  ag::Var loss = nn::cross_entropy_loss(ag::constant(logits), {0, 1});
  EXPECT_NEAR(loss.value()[0], 0.0f, 1e-4f);
}

TEST(Loss, AccuracyCountsMatches) {
  Tensor logits({3, 2}, {1, 0, 0, 1, 1, 0});
  EXPECT_NEAR(nn::accuracy(logits, {0, 1, 1}), 2.0 / 3.0, 1e-9);
}

TEST(Training, TinyMlpOverfitsTinyDataset) {
  Rng rng(15);
  nn::MlpConfig cfg;
  cfg.in_features = 4;
  cfg.num_classes = 2;
  cfg.depth = 2;
  cfg.hidden = 8;
  nn::MlpNet mlp(cfg, rng);
  Tensor x({4, 4}, {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1});
  std::vector<int> y = {0, 0, 1, 1};
  nn::SgdConfig sc;
  sc.lr = 0.5f;
  nn::Sgd opt(mlp.parameters(), sc);
  for (int i = 0; i < 200; ++i) {
    ag::backward(nn::cross_entropy_loss(mlp.forward(ag::constant(x)), y));
    opt.step();
  }
  mlp.set_training(false);
  EXPECT_EQ(nn::accuracy(mlp.predict(x), y), 1.0);
}


TEST(Dropout, EvalIsIdentityTrainingDropsAndRescales) {
  nn::Dropout drop(0.5f, Rng(3));
  Rng rng(4);
  Tensor x = Tensor::ones({64, 32});
  drop.set_training(false);
  EXPECT_TRUE(drop.predict(x).allclose(x));

  drop.set_training(true);
  Tensor y = drop.forward(ag::constant(x)).value();
  int zeros = 0;
  for (float v : y.values()) {
    EXPECT_TRUE(v == 0.0f || std::abs(v - 2.0f) < 1e-5f)
        << "survivors are scaled by 1/(1-p)";
    zeros += (v == 0.0f);
  }
  const double drop_rate = static_cast<double>(zeros) / y.numel();
  EXPECT_NEAR(drop_rate, 0.5, 0.08);
}

TEST(Dropout, GradientFlowsOnlyThroughSurvivors) {
  nn::Dropout drop(0.5f, Rng(5));
  drop.set_training(true);
  ag::Var x(Tensor::ones({16, 16}), true);
  ag::Var y = drop.forward(x);
  ag::backward(ag::sum_all(y));
  for (std::int64_t i = 0; i < x.grad().numel(); ++i) {
    if (y.value()[i] == 0.0f) {
      EXPECT_EQ(x.grad()[i], 0.0f);
    } else {
      EXPECT_NEAR(x.grad()[i], 2.0f, 1e-5f);
    }
  }
}

TEST(Dropout, RejectsBadProbability) {
  EXPECT_THROW(nn::Dropout(1.0f), InvariantError);
  EXPECT_THROW(nn::Dropout(-0.1f), InvariantError);
}

TEST(Schedule, StepDecayHalvesEveryPeriod) {
  auto schedule = nn::step_decay(2, 0.5f);
  EXPECT_FLOAT_EQ(schedule(0), 1.0f);
  EXPECT_FLOAT_EQ(schedule(1), 1.0f);
  EXPECT_FLOAT_EQ(schedule(2), 0.5f);
  EXPECT_FLOAT_EQ(schedule(5), 0.25f);
}

TEST(Schedule, CosineDecayEndsAtFloor) {
  auto schedule = nn::cosine_decay(10, 0.1f);
  EXPECT_NEAR(schedule(0), 1.0f, 1e-5f);
  EXPECT_NEAR(schedule(10), 0.1f, 1e-4f);
  EXPECT_NEAR(schedule(100), 0.1f, 1e-4f);
  EXPECT_GT(schedule(3), schedule(7));
}

TEST(Schedule, ConstantIsOne) {
  EXPECT_FLOAT_EQ(nn::constant_schedule()(0), 1.0f);
  EXPECT_FLOAT_EQ(nn::constant_schedule()(99), 1.0f);
}

TEST(Optim, LrMultiplierScalesStep) {
  ag::Var w(Tensor({1}, {1.0f}), true);
  nn::SgdConfig cfg;
  cfg.lr = 0.1f;
  cfg.momentum = 0.0f;
  cfg.max_grad_norm = 0.0f;
  nn::Sgd opt({w}, cfg);
  opt.set_lr_multiplier(0.5f);
  ag::backward(ag::sum_all(w));  // grad = 1
  opt.step();
  EXPECT_NEAR(w.value()[0], 1.0f - 0.05f, 1e-6f);
  EXPECT_THROW(opt.set_lr_multiplier(-1.0f), InvariantError);
}

TEST(Serialize, BatchNormRunningStatsSurviveRoundTrip) {
  // Regression test: eval-mode behaviour depends on running statistics, so
  // checkpoints must carry buffers() as well as parameters().
  Rng rng(16);
  nn::ShakeShakeConfig cfg;
  cfg.depth = 8;
  cfg.base_channels = 4;
  cfg.image_size = 8;
  nn::ShakeShakeNet model(cfg, rng);
  model.set_training(true);
  for (int i = 0; i < 5; ++i) {
    model.forward(ag::constant(Tensor::randn({8, 3, 8, 8}, rng, 2.0f, 1.5f)));
  }
  model.set_training(false);
  Tensor x = Tensor::randn({4, 3, 8, 8}, rng);
  Tensor expected = model.predict(x);

  Rng rng2(17);
  nn::ShakeShakeNet restored(cfg, rng2);
  nn::deserialize_parameters(nn::serialize_parameters(model), restored);
  restored.set_training(false);
  EXPECT_TRUE(restored.predict(x).allclose(expected, 1e-5f))
      << "restored model must reproduce eval outputs exactly";
}

TEST(Serialize, BufferCountMismatchRejected) {
  Rng rng(18);
  nn::MlpConfig mlp_cfg;
  mlp_cfg.in_features = 4;
  mlp_cfg.depth = 2;
  mlp_cfg.hidden = 4;
  nn::MlpNet mlp(mlp_cfg, rng);  // no buffers
  nn::BatchNorm bn(4);           // has buffers
  EXPECT_THROW(nn::deserialize_parameters(nn::serialize_parameters(mlp), bn),
               Error);
}

}  // namespace
}  // namespace teamnet
