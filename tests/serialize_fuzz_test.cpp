// Fuzz-ish robustness tests for the byte-level decoders: every truncation,
// a sweep of single-byte corruptions, and random garbage must surface as a
// clean teamnet::Error — never UB. Run these under -DTEAMNET_SANITIZE=asan+ubsan
// to give the checks teeth.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/raw_bytes.hpp"
#include "common/rng.hpp"
#include "net/message.hpp"
#include "nn/serialize.hpp"

namespace teamnet {
namespace {

net::Message sample_message() {
  Rng rng(99);
  net::Message msg;
  msg.type = net::MsgType::Result;
  msg.ints = {1, -2, 3'000'000'000LL};
  msg.tensors = {Tensor::randn({3, 5}, rng), Tensor::randn({7}, rng)};
  return msg;
}

TEST(MessageFuzz, EveryTruncationThrowsCleanly) {
  const std::string bytes = sample_message().encode();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)net::Message::decode(bytes.substr(0, len)),
                 SerializationError)
        << "truncation to " << len << " of " << bytes.size()
        << " bytes must not decode";
  }
}

TEST(MessageFuzz, SingleByteCorruptionNeverCrashes) {
  const std::string pristine = sample_message().encode();
  for (std::size_t pos = 0; pos < pristine.size(); ++pos) {
    for (const unsigned char flip : {0x01u, 0x80u, 0xFFu}) {
      std::string bytes = pristine;
      bytes[pos] = static_cast<char>(static_cast<unsigned char>(bytes[pos]) ^
                                     flip);
      try {
        (void)net::Message::decode(bytes);  // may succeed with altered payload
      } catch (const Error&) {
        // Structured rejection (truncated / implausible) is the other
        // acceptable outcome. Anything else — std::bad_alloc from a wild
        // length, a crash, a sanitizer report — fails the test or build.
      }
    }
  }
}

TEST(MessageFuzz, RandomGarbageEitherDecodesOrThrowsError) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes(static_cast<std::size_t>(rng.randint(0, 64)), '\0');
    for (auto& c : bytes) c = static_cast<char>(rng.randint(0, 255));
    try {
      (void)net::Message::decode(bytes);
    } catch (const Error&) {
    }
  }
}

TEST(CheckpointFuzz, TruncatedTensorStreamThrows) {
  Rng rng(3);
  std::ostringstream os(std::ios::binary);
  nn::save_tensors(os, {Tensor::randn({4, 4}, rng), Tensor::randn({2}, rng)});
  const std::string full = os.str();
  for (std::size_t len = 0; len < full.size(); len += 3) {
    std::istringstream is(full.substr(0, len), std::ios::binary);
    EXPECT_THROW((void)nn::load_tensors(is), SerializationError)
        << "at truncation length " << len;
  }
  // The untouched stream still loads.
  std::istringstream ok(full, std::ios::binary);
  EXPECT_EQ(nn::load_tensors(ok).size(), 2u);
}

TEST(RawBytes, RoundTripAndCursor) {
  std::string buf;
  write_raw(buf, std::uint32_t{0xDEADBEEF});
  write_raw(buf, -1.5);
  write_raw(buf, std::int64_t{-42});
  std::size_t offset = 0;
  EXPECT_EQ(read_raw<std::uint32_t>(buf, offset), 0xDEADBEEFu);
  EXPECT_EQ(read_raw<double>(buf, offset), -1.5);
  EXPECT_EQ(read_raw<std::int64_t>(buf, offset), -42);
  EXPECT_EQ(offset, buf.size());
  EXPECT_THROW((void)read_raw<char>(buf, offset), SerializationError);
}

TEST(RawBytes, ReadPastEndThrowsEvenAtHugeOffsets) {
  const std::string buf(8, 'x');
  // A cursor beyond the buffer must not wrap around in the bounds check.
  std::size_t offset = static_cast<std::size_t>(-4);
  EXPECT_THROW((void)read_raw<std::int64_t>(buf, offset), SerializationError);
  offset = 6;
  EXPECT_THROW((void)read_raw<std::int64_t>(buf, offset), SerializationError);
}

TEST(RawBytes, ArrayBoundsChecked) {
  std::string buf;
  const float values[3] = {1.0f, 2.0f, 3.0f};
  write_raw_array(buf, values, 3);
  float back[3] = {};
  std::size_t offset = 0;
  read_raw_array(buf, offset, back, 3);
  EXPECT_EQ(back[2], 3.0f);
  offset = 4;
  EXPECT_THROW(read_raw_array(buf, offset, back, 3), SerializationError);
}

TEST(RawBytes, CheckedNarrowAcceptsFittingValues) {
  EXPECT_EQ(checked_narrow<std::uint32_t>(std::size_t{12}), 12u);
  EXPECT_EQ(checked_narrow<std::int64_t>(std::uint32_t{7}), 7);
  EXPECT_EQ(checked_narrow<std::uint32_t>((std::uint64_t{1} << 32) - 1),
            0xFFFFFFFFu);
}

TEST(RawBytes, CheckedNarrowRejectsOverflowAndSignLoss) {
  EXPECT_THROW((void)checked_narrow<std::uint32_t>(std::uint64_t{1} << 32),
               SerializationError);
  EXPECT_THROW((void)checked_narrow<std::uint32_t>(std::int64_t{-1}),
               SerializationError);
  EXPECT_THROW((void)checked_narrow<std::int32_t>(
                   std::uint64_t{0x8000'0000}),
               SerializationError);
}

}  // namespace
}  // namespace teamnet
