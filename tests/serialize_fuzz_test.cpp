// Fuzz-ish robustness tests for the byte-level decoders: every truncation,
// a sweep of single-byte corruptions, and random garbage must surface as a
// clean teamnet::Error — never UB. Run these under -DTEAMNET_SANITIZE=asan+ubsan
// to give the checks teeth.
//
// The mutation loops drive the SAME entry points as the libFuzzer harnesses
// (fuzz/decode_targets.hpp): each target returns true (decoded) or false
// (rejected with teamnet::Error), and anything else — a crash, a foreign
// exception, a std::logic_error postcondition violation — escapes and fails
// the test. One decode-contract definition, shared by ctest and libFuzzer.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/raw_bytes.hpp"
#include "common/rng.hpp"
#include "decode_targets.hpp"
#include "net/message.hpp"
#include "nn/serialize.hpp"

namespace teamnet {
namespace {

net::Message sample_message() {
  Rng rng(99);
  net::Message msg;
  msg.type = net::MsgType::Result;
  msg.ints = {1, -2, 3'000'000'000LL};
  msg.tensors = {Tensor::randn({3, 5}, rng), Tensor::randn({7}, rng)};
  return msg;
}

/// Drives one decode-contract target through every truncation, a sweep of
/// single-byte corruptions, and random garbage. The pristine input must
/// decode; everything else must decode or cleanly reject.
void exhaust_mutations(bool (*target)(const std::string&),
                       const std::string& pristine, std::uint64_t seed) {
  EXPECT_TRUE(target(pristine)) << "pristine input must decode";
  for (std::size_t len = 0; len < pristine.size(); ++len) {
    EXPECT_NO_THROW((void)target(pristine.substr(0, len)))
        << "truncation to " << len << " of " << pristine.size() << " bytes";
  }
  for (std::size_t pos = 0; pos < pristine.size(); ++pos) {
    for (const unsigned char flip : {0x01u, 0x80u, 0xFFu}) {
      std::string bytes = pristine;
      bytes[pos] = static_cast<char>(static_cast<unsigned char>(bytes[pos]) ^
                                     flip);
      EXPECT_NO_THROW((void)target(bytes)) << "corruption at byte " << pos;
    }
  }
  Rng rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes(static_cast<std::size_t>(rng.randint(0, 64)), '\0');
    for (auto& c : bytes) c = static_cast<char>(rng.randint(0, 255));
    EXPECT_NO_THROW((void)target(bytes)) << "garbage trial " << trial;
  }
}

TEST(MessageFuzz, MutationSweepHoldsDecodeContract) {
  exhaust_mutations(fuzz::message_decode, sample_message().encode(), 7);
}

/// A fully-loaded Infer frame (qid + deadline + hedge flag, DESIGN.md §13)
/// through the same truncation/corruption/garbage sweep.
TEST(MessageFuzz, DeadlineInferFrameHoldsDecodeContract) {
  Rng rng(101);
  net::Message msg;
  msg.type = net::MsgType::Infer;
  net::InferInfo info;
  info.qid = 41;
  info.deadline_us = 1'234'567;
  info.hedged = true;
  net::set_infer_info(msg, info);
  msg.tensors = {Tensor::randn({1, 6}, rng)};
  exhaust_mutations(fuzz::message_decode, msg.encode(), 29);
}

TEST(MessageFuzz, InferInfoRoundTrips) {
  for (const auto& original :
       {net::InferInfo{0, net::kNoDeadlineUs, false},
        net::InferInfo{7, 0, false},
        net::InferInfo{-3, 9'000'000'000'000LL, true},
        net::InferInfo{std::numeric_limits<std::int64_t>::max(), 1, true}}) {
    net::Message msg;
    msg.type = net::MsgType::Infer;
    net::set_infer_info(msg, original);
    const net::Message decoded = net::Message::decode(msg.encode());
    const net::InferInfo back = net::infer_info(decoded);
    EXPECT_EQ(back.qid, original.qid);
    EXPECT_EQ(back.deadline_us, original.deadline_us);
    EXPECT_EQ(back.hedged, original.hedged);
  }
}

/// Frames from peers that predate the deadline plane carry only the query
/// id; they must decode as unbounded and unhedged — and weird int payloads
/// must degrade the same way rather than misread garbage as a budget.
TEST(MessageFuzz, LegacyAndForeignInferFramesDecodeTolerantly) {
  net::Message legacy;
  legacy.type = net::MsgType::Infer;
  legacy.ints = {17};  // the pre-deadline wire layout
  net::InferInfo info = net::infer_info(net::Message::decode(legacy.encode()));
  EXPECT_EQ(info.qid, 17);
  EXPECT_EQ(info.deadline_us, net::kNoDeadlineUs);
  EXPECT_FALSE(info.hedged);

  net::Message empty;
  empty.type = net::MsgType::Infer;
  info = net::infer_info(empty);
  EXPECT_EQ(info.qid, -1);
  EXPECT_EQ(info.deadline_us, net::kNoDeadlineUs);

  // A negative stamp other than the sentinel means "no budget", never a
  // bogus deadline in the past that would shed every request.
  net::Message negative;
  negative.type = net::MsgType::Infer;
  negative.ints = {5, -12345, 0};
  info = net::infer_info(negative);
  EXPECT_EQ(info.deadline_us, net::kNoDeadlineUs);

  // Unknown future flag bits must not read as hedged.
  net::Message flags;
  flags.type = net::MsgType::Infer;
  flags.ints = {5, 1000, 6};  // bits 1|2 set, kHedgedFlag (1) clear
  EXPECT_FALSE(net::infer_info(flags).hedged);
}

TEST(MessageFuzz, EveryTruncationIsRejected) {
  const std::string bytes = sample_message().encode();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(fuzz::message_decode(bytes.substr(0, len)))
        << "truncation to " << len << " of " << bytes.size()
        << " bytes must not decode";
  }
}

TEST(CheckpointFuzz, MutationSweepHoldsDecodeContract) {
  Rng rng(3);
  std::ostringstream os(std::ios::binary);
  nn::save_tensors(os, {Tensor::randn({4, 4}, rng), Tensor::randn({2}, rng)});
  exhaust_mutations(fuzz::checkpoint_decode, os.str(), 11);
}

TEST(CheckpointFuzz, EveryTruncationIsRejected) {
  Rng rng(3);
  std::ostringstream os(std::ios::binary);
  nn::save_tensors(os, {Tensor::randn({4, 4}, rng), Tensor::randn({2}, rng)});
  const std::string full = os.str();
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(fuzz::checkpoint_decode(full.substr(0, len)))
        << "at truncation length " << len;
  }
  EXPECT_TRUE(fuzz::checkpoint_decode(full));
}

TEST(CheckpointFuzz, OverflowingShapeProductIsRejected) {
  // rank 8 x dims 2^28: each dim passes the per-dim bound but the product
  // overflows int64 — shape_numel would be UB; the decoder must reject it
  // (and must do so BEFORE allocating for the phantom payload).
  std::ostringstream os(std::ios::binary);
  write_raw_array(os, "TNET", 4);
  write_raw(os, std::uint32_t{2});            // version
  write_raw(os, std::uint64_t{1});            // tensor count
  write_raw(os, std::uint32_t{8});            // rank
  for (int d = 0; d < 8; ++d) write_raw(os, std::int64_t{1} << 28);
  EXPECT_FALSE(fuzz::checkpoint_decode(os.str()));
}

TEST(QuantizeFuzz, MutationSweepHoldsDecodeContract) {
  // A hand-built two-tensor quantized snapshot (module-free, mirroring
  // serialize_parameters_quantized's writer).
  std::string bytes;
  bytes.append("TNQ1", 4);
  write_raw(bytes, std::uint64_t{2});
  for (const std::int64_t dim : {std::int64_t{6}, std::int64_t{3}}) {
    write_raw(bytes, std::uint32_t{1});       // rank
    write_raw(bytes, dim);
    write_raw(bytes, -1.0f);                  // min
    write_raw(bytes, 0.01f);                  // scale
    for (std::int64_t i = 0; i < dim; ++i) {
      write_raw(bytes, static_cast<std::uint8_t>(40 * i));
    }
  }
  exhaust_mutations(fuzz::quantize_decode, bytes, 13);
}

TEST(QuantizeFuzz, OverflowingShapeProductIsRejected) {
  std::string bytes;
  bytes.append("TNQ1", 4);
  write_raw(bytes, std::uint64_t{1});
  write_raw(bytes, std::uint32_t{8});         // rank
  for (int d = 0; d < 8; ++d) write_raw(bytes, std::int64_t{1} << 28);
  EXPECT_FALSE(fuzz::quantize_decode(bytes));
}

TEST(GatePolicyFuzz, MutationSweepHoldsDecodeContract) {
  // K=4, learned gate, n=8, finite entropies — then mutated every which way.
  std::string bytes("\x03\x00\x07", 3);
  Rng rng(17);
  for (int i = 0; i < 32; ++i) write_raw(bytes, rng.uniform(0.0f, 2.3f));
  exhaust_mutations(fuzz::gate_policy_decide, bytes, 19);
}

TEST(GatePolicyFuzz, NonFiniteEntropiesHoldContract) {
  for (unsigned char kind = 0; kind < 4; ++kind) {
    std::string bytes;
    bytes.push_back('\x05');                  // K = 6
    bytes.push_back(static_cast<char>(kind));
    bytes.push_back('\x0f');                  // n = 16
    Rng rng(23);
    for (int i = 0; i < 96; ++i) {
      switch (rng.randint(0, 3)) {
        case 0: write_raw(bytes, std::numeric_limits<float>::quiet_NaN()); break;
        case 1: write_raw(bytes, std::numeric_limits<float>::infinity()); break;
        case 2: write_raw(bytes, -std::numeric_limits<float>::infinity()); break;
        default: write_raw(bytes, rng.uniform(-1e38f, 1e38f)); break;
      }
    }
    EXPECT_NO_THROW((void)fuzz::gate_policy_decide(bytes))
        << "gate kind " << static_cast<int>(kind);
  }
}

TEST(RawBytes, RoundTripAndCursor) {
  std::string buf;
  write_raw(buf, std::uint32_t{0xDEADBEEF});
  write_raw(buf, -1.5);
  write_raw(buf, std::int64_t{-42});
  std::size_t offset = 0;
  EXPECT_EQ(read_raw<std::uint32_t>(buf, offset), 0xDEADBEEFu);
  EXPECT_EQ(read_raw<double>(buf, offset), -1.5);
  EXPECT_EQ(read_raw<std::int64_t>(buf, offset), -42);
  EXPECT_EQ(offset, buf.size());
  EXPECT_THROW((void)read_raw<char>(buf, offset), SerializationError);
}

TEST(RawBytes, ReadPastEndThrowsEvenAtHugeOffsets) {
  const std::string buf(8, 'x');
  // A cursor beyond the buffer must not wrap around in the bounds check.
  std::size_t offset = static_cast<std::size_t>(-4);
  EXPECT_THROW((void)read_raw<std::int64_t>(buf, offset), SerializationError);
  offset = 6;
  EXPECT_THROW((void)read_raw<std::int64_t>(buf, offset), SerializationError);
}

TEST(RawBytes, ArrayBoundsChecked) {
  std::string buf;
  const float values[3] = {1.0f, 2.0f, 3.0f};
  write_raw_array(buf, values, 3);
  float back[3] = {};
  std::size_t offset = 0;
  read_raw_array(buf, offset, back, 3);
  EXPECT_EQ(back[2], 3.0f);
  offset = 4;
  EXPECT_THROW(read_raw_array(buf, offset, back, 3), SerializationError);
}

TEST(RawBytes, CheckedNarrowAcceptsFittingValues) {
  EXPECT_EQ(checked_narrow<std::uint32_t>(std::size_t{12}), 12u);
  EXPECT_EQ(checked_narrow<std::int64_t>(std::uint32_t{7}), 7);
  EXPECT_EQ(checked_narrow<std::uint32_t>((std::uint64_t{1} << 32) - 1),
            0xFFFFFFFFu);
}

TEST(RawBytes, CheckedNarrowRejectsOverflowAndSignLoss) {
  EXPECT_THROW((void)checked_narrow<std::uint32_t>(std::uint64_t{1} << 32),
               SerializationError);
  EXPECT_THROW((void)checked_narrow<std::uint32_t>(std::int64_t{-1}),
               SerializationError);
  EXPECT_THROW((void)checked_narrow<std::int32_t>(
                   std::uint64_t{0x8000'0000}),
               SerializationError);
}

}  // namespace
}  // namespace teamnet
