// Transport / protocol tests: framing, in-proc channels, real TCP over
// loopback, virtual-clock math, and the Figure-1 collaborative protocol
// (including equivalence with the in-process TeamNetEnsemble).
#include <gtest/gtest.h>

#include <thread>

#include "core/teamnet.hpp"
#include "data/blobs.hpp"
#include "net/collab.hpp"
#include "net/message.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"
#include "net/virtual_clock.hpp"
#include "nn/mlp.hpp"

namespace teamnet {
namespace {

TEST(Message, EncodeDecodeRoundTrip) {
  Rng rng(1);
  net::Message msg;
  msg.type = net::MsgType::Infer;
  msg.ints = {42, -7};
  msg.tensors = {Tensor::randn({2, 3}, rng), Tensor::randn({4}, rng)};
  const std::string bytes = msg.encode();
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), msg.encoded_size());

  net::Message back = net::Message::decode(bytes);
  EXPECT_EQ(back.type, net::MsgType::Infer);
  EXPECT_EQ(back.ints, msg.ints);
  ASSERT_EQ(back.tensors.size(), 2u);
  EXPECT_TRUE(back.tensors[0].allclose(msg.tensors[0]));
  EXPECT_TRUE(back.tensors[1].allclose(msg.tensors[1]));
}

TEST(Message, DecodeRejectsTruncated) {
  net::Message msg;
  msg.tensors = {Tensor::ones({8})};
  std::string bytes = msg.encode();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(net::Message::decode(bytes), SerializationError);
}

TEST(InProc, PairDeliversBothDirections) {
  auto [a, b] = net::make_inproc_pair();
  a->send("hello");
  b->send("world");
  EXPECT_EQ(b->recv(), "hello");
  EXPECT_EQ(a->recv(), "world");
}

TEST(InProc, PreservesOrderAcrossThreads) {
  auto [a, b] = net::make_inproc_pair();
  std::thread producer([&a] {
    for (int i = 0; i < 100; ++i) a->send(std::to_string(i));
  });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(b->recv(), std::to_string(i));
  producer.join();
}

TEST(Tcp, LoopbackRoundTrip) {
  net::TcpListener listener(0);
  std::thread client([&] {
    auto ch = net::tcp_connect("127.0.0.1", listener.port());
    ch->send("ping");
    EXPECT_EQ(ch->recv(), "pong");
  });
  auto server = listener.accept();
  EXPECT_EQ(server->recv(), "ping");
  server->send("pong");
  client.join();
}

TEST(Tcp, LargeMessageSurvivesFraming) {
  net::TcpListener listener(0);
  const std::string big(1 << 20, 'x');
  std::thread client([&] {
    auto ch = net::tcp_connect("127.0.0.1", listener.port());
    ch->send(big);
  });
  auto server = listener.accept();
  EXPECT_EQ(server->recv(), big);
  client.join();
}

TEST(Tcp, ConnectToDeadPortFails) {
  EXPECT_THROW(net::tcp_connect("127.0.0.1", 1), NetworkError);
}

TEST(VirtualClock, ComputeAdvancesOneNode) {
  net::VirtualClock clock(2);
  clock.advance(0, 1.5);
  EXPECT_DOUBLE_EQ(clock.node_time(0), 1.5);
  EXPECT_DOUBLE_EQ(clock.node_time(1), 0.0);
  EXPECT_DOUBLE_EQ(clock.max_time(), 1.5);
  EXPECT_THROW(clock.advance(0, -1.0), InvariantError);
}

TEST(VirtualClock, DeliveryImposesLinkDelay) {
  net::VirtualClock clock(2);
  net::LinkProfile link{0.001, 8e6, 0.0};  // 1 ms prop + 1 us/byte airtime
  const double arrival = clock.deliver(1, /*send_time=*/2.0, 1000, link);
  EXPECT_NEAR(arrival, 2.0 + 0.001 + 0.001, 1e-9);
  EXPECT_NEAR(clock.node_time(1), arrival, 1e-12);
  EXPECT_EQ(clock.bytes_delivered(), 1000);
  EXPECT_EQ(clock.messages_delivered(), 1);
}

TEST(VirtualClock, SharedMediumSerializesConcurrentTransmissions) {
  // Two messages "sent" at the same instant contend for the half-duplex
  // medium: the second transmission starts only after the first's airtime.
  net::VirtualClock clock(3);
  net::LinkProfile link{0.001, 8e6, 0.0};
  const double a1 = clock.deliver(1, 0.0, 1000, link);  // airtime 1 ms
  const double a2 = clock.deliver(2, 0.0, 1000, link);
  EXPECT_NEAR(a1, 0.002, 1e-9);
  EXPECT_NEAR(a2, 0.003, 1e-9) << "second message waits for the medium";
  // A later send on an idle medium pays no contention.
  const double a3 = clock.deliver(1, 10.0, 1000, link);
  EXPECT_NEAR(a3, 10.002, 1e-9);
}

TEST(VirtualClock, LinkTransferTime) {
  net::LinkProfile link{0.0005, 40e6, 0.0002};
  EXPECT_NEAR(link.transfer_time(0), 0.0007, 1e-9);
  EXPECT_NEAR(link.transfer_time(40000000 / 8), 0.0007 + 1.0, 1e-6);
}

TEST(SimChannel, AccountsBytesAndTime) {
  net::VirtualClock clock(2);
  net::LinkProfile link{0.01, 0.0, 0.0};
  auto [raw_a, raw_b] = net::make_inproc_pair();
  auto a = net::make_sim_channel(std::move(raw_a), clock, 0, 1, link);
  auto b = net::make_sim_channel(std::move(raw_b), clock, 1, 0, link);

  clock.advance(0, 5.0);
  a->send("data");
  EXPECT_EQ(b->recv(), "data");
  EXPECT_NEAR(clock.node_time(1), 5.01, 1e-9);
}

/// Two blobs experts trained via TeamNet, then served over the collaborative
/// protocol — results must match in-process ensemble inference bit-for-bit.
TEST(Collab, ProtocolMatchesEnsemble) {
  data::BlobsConfig bc;
  bc.num_samples = 400;
  auto ds = data::make_blobs(bc);

  core::TeamNetConfig cfg;
  cfg.num_experts = 2;
  cfg.epochs = 4;
  cfg.batch_size = 32;
  core::TeamNetTrainer trainer(cfg, [&](int, Rng& rng) -> nn::ModulePtr {
    nn::MlpConfig mc;
    mc.in_features = bc.dims;
    mc.num_classes = static_cast<int>(bc.num_classes);
    mc.depth = 2;
    mc.hidden = 16;
    return std::make_unique<nn::MlpNet>(mc, rng);
  });
  auto ensemble = trainer.train(ds);
  auto expected = ensemble.infer(ds.images);

  auto [master_ch, worker_ch] = net::make_inproc_pair();
  net::CollaborativeWorker worker(ensemble.expert(1), *worker_ch);
  std::thread worker_thread([&worker] { worker.serve(); });

  net::CollaborativeMaster master(ensemble.expert(0), {master_ch.get()});
  auto actual = master.infer(ds.images);
  master.shutdown();
  worker_thread.join();

  EXPECT_EQ(actual.predictions, expected.predictions);
  EXPECT_EQ(actual.chosen, expected.chosen);
  EXPECT_TRUE(actual.probs.allclose(expected.probs, 1e-6f));
  EXPECT_EQ(worker.requests_served(), 1);
}

TEST(Collab, WorksOverRealTcp) {
  Rng rng(31);
  nn::MlpConfig mc;
  mc.in_features = 8;
  mc.num_classes = 4;
  mc.depth = 2;
  mc.hidden = 8;
  nn::MlpNet master_expert(mc, rng), worker_expert(mc, rng);

  net::TcpListener listener(0);
  std::thread worker_thread([&] {
    auto channel = net::tcp_connect("127.0.0.1", listener.port());
    net::CollaborativeWorker worker(worker_expert, *channel);
    worker.serve();
  });
  auto worker_channel = listener.accept();

  net::CollaborativeMaster master(master_expert, {worker_channel.get()});
  Tensor x = Tensor::randn({5, 8}, rng);
  auto result = master.infer(x);
  EXPECT_EQ(result.predictions.size(), 5u);
  for (int chosen : result.chosen) {
    EXPECT_GE(chosen, 0);
    EXPECT_LE(chosen, 1);
  }
  master.shutdown();
  worker_thread.join();
}

TEST(Collab, ComputeHooksFire) {
  Rng rng(33);
  nn::MlpConfig mc;
  mc.in_features = 8;
  mc.num_classes = 4;
  mc.depth = 2;
  mc.hidden = 8;
  nn::MlpNet m(mc, rng), w(mc, rng);
  auto [a, b] = net::make_inproc_pair();

  std::int64_t worker_flops = 0;
  net::CollaborativeWorker worker(w, *b);
  worker.set_compute_hook([&](std::int64_t f) { worker_flops += f; });
  std::thread t([&worker] { worker.serve(); });

  std::int64_t master_flops = 0;
  net::CollaborativeMaster master(m, {a.get()});
  master.set_compute_hook([&](std::int64_t f) { master_flops += f; });
  master.infer(Tensor::randn({3, 8}, rng));
  master.shutdown();
  t.join();

  const std::int64_t expected = m.analyze({8}).flops * 3;
  EXPECT_EQ(master_flops, expected);
  EXPECT_EQ(worker_flops, expected);
}

}  // namespace
}  // namespace teamnet
