// Discrete-event engine tests (ISSUE 4): event-queue tie-breaking,
// quiescence / deadlock detection, virtual timeouts, FaultyChannel
// composition over DesChannel, and the cross-mode contract — free_running
// and discrete_event agree on every discrete outcome (selection, accuracy,
// traffic counts, fault schedules) for the same seed, while discrete_event
// is additionally bit-stable in latency.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/blobs.hpp"
#include "moe/sg_moe.hpp"
#include "net/fault.hpp"
#include "nn/mlp.hpp"
#include "sim/des/des_channel.hpp"
#include "sim/des/engine.hpp"
#include "sim/des/runtime.hpp"
#include "sim/scenario.hpp"

namespace teamnet {
namespace {

using sim::des::DeadlockError;
using sim::des::Engine;
using sim::des::Event;
using sim::des::EventKey;
using sim::des::EventQueue;

// ---- Event queue ordering ---------------------------------------------------

Event make_event(double time, int node, std::uint64_t seq) {
  return Event{EventKey{time, node, seq}, nullptr, std::string()};
}

TEST(DesEventQueue, OrdersByTimeFirst) {
  EventQueue q;
  q.push(make_event(2.0, 0, 0));
  q.push(make_event(1.0, 5, 7));
  q.push(make_event(3.0, 1, 1));
  EXPECT_EQ(q.pop().key.time, 1.0);
  EXPECT_EQ(q.pop().key.time, 2.0);
  EXPECT_EQ(q.pop().key.time, 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(DesEventQueue, BreaksTimeTiesByDestinationNode) {
  EventQueue q;
  q.push(make_event(1.0, 3, 0));
  q.push(make_event(1.0, 1, 1));
  q.push(make_event(1.0, 2, 2));
  EXPECT_EQ(q.pop().key.node, 1);
  EXPECT_EQ(q.pop().key.node, 2);
  EXPECT_EQ(q.pop().key.node, 3);
}

TEST(DesEventQueue, BreaksFullTiesByScheduleOrder) {
  EventQueue q;
  q.push(make_event(1.0, 2, 9));
  q.push(make_event(1.0, 2, 4));
  q.push(make_event(1.0, 2, 6));
  EXPECT_EQ(q.pop().key.seq, 4u);
  EXPECT_EQ(q.pop().key.seq, 6u);
  EXPECT_EQ(q.pop().key.seq, 9u);
}

// ---- Engine semantics -------------------------------------------------------

net::LinkProfile test_link() {
  net::LinkProfile link;
  link.latency_s = 0.001;
  link.bandwidth_bps = 8000.0;  // 1 byte per millisecond of airtime
  link.per_message_overhead_s = 0.002;
  return link;
}

TEST(DesEngine, DeliveryReplaysVirtualClockMath) {
  // The same send sequence, issued to the engine and to a VirtualClock,
  // must produce identical receiver clocks and medium arbitration.
  const net::LinkProfile link = test_link();
  Engine engine(2);
  auto mb = engine.make_mailbox(1);
  engine.advance(0, 0.5);
  engine.advance(1, 0.5);  // grant order: node 1 must catch up before node 0
                           // may transmit at t=0.5
  engine.send(0, mb, std::string(10, 'x'), link);  // back-to-back: the
  engine.send(0, mb, std::string(20, 'y'), link);  // second waits for the medium
  engine.retire(0);
  EXPECT_EQ(engine.recv(1, *mb).size(), 10u);
  const double t_first = engine.node_time(1);
  EXPECT_EQ(engine.recv(1, *mb).size(), 20u);
  const double t_second = engine.node_time(1);

  net::VirtualClock clock(2);
  clock.advance(0, 0.5);
  const double a_first = clock.deliver(1, 0.5, 10, link);
  const double a_second = clock.deliver(1, 0.5, 20, link);
  EXPECT_EQ(t_first, a_first);
  EXPECT_EQ(t_second, a_second);
  EXPECT_EQ(engine.bytes_delivered(), 30);
  EXPECT_EQ(engine.messages_delivered(), 2);
}

TEST(DesEngine, ReceiverClockIsLamportMax) {
  // Node 0 receives, node 1 sends (node 0 wins the t=0 grant tie, so its
  // advance can run first single-threaded).
  Engine engine(2);
  auto mb = engine.make_mailbox(0);
  engine.advance(0, 10.0);  // receiver far ahead of the message's arrival
  engine.send(1, mb, "m", test_link());
  engine.retire(1);
  engine.recv(0, *mb);
  EXPECT_EQ(engine.node_time(0), 10.0);  // max(receiver, arrival) = receiver
}

TEST(DesEngine, ClosedMailboxDrainsInFlightThenThrows) {
  Engine engine(2);
  auto mb = engine.make_mailbox(1);
  engine.send(0, mb, "last", test_link());
  engine.close(*mb);
  engine.retire(0);
  EXPECT_EQ(engine.recv(1, *mb), "last");  // in-flight message drains first
  EXPECT_THROW(engine.recv(1, *mb), NetworkError);
  EXPECT_THROW(engine.send(0, mb, "late", test_link()), NetworkError);
}

TEST(DesEngine, TimeoutFiresAtQuiescenceAndChargesBudget) {
  Engine engine(2);
  auto mb = engine.make_mailbox(1);
  engine.retire(0);  // nothing will ever arrive
  engine.advance(1, 1.0);
  EXPECT_EQ(engine.recv_timeout(1, *mb, 0.25), std::nullopt);
  EXPECT_EQ(engine.node_time(1), 1.25);
  // A non-positive budget polls without charging.
  EXPECT_EQ(engine.recv_timeout(1, *mb, 0.0), std::nullopt);
  EXPECT_EQ(engine.node_time(1), 1.25);
}

TEST(DesEngine, InFlightMessageAlwaysBeatsTimeout) {
  // The delivery arrives later than the timeout budget would expire, but a
  // timeout may only fire at quiescence — with a message in flight the wait
  // must receive it (free-running has the same contract: real waits always
  // lose to a message that is actually coming).
  Engine engine(2);
  auto mb = engine.make_mailbox(1);
  engine.send(0, mb, "slow", test_link());
  engine.retire(0);
  const auto got = engine.recv_timeout(1, *mb, 1e-9);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "slow");
}

TEST(DesEngine, EarliestVirtualDeadlineFiresFirst) {
  Engine engine(3);
  auto mb1 = engine.make_mailbox(1);
  auto mb2 = engine.make_mailbox(2);
  engine.retire(0);
  double done1 = -1.0;
  double done2 = -1.0;
  std::thread t1([&] {
    EXPECT_EQ(engine.recv_timeout(1, *mb1, 0.3), std::nullopt);
    done1 = engine.node_time(1);
    engine.retire(1);
  });
  std::thread t2([&] {
    EXPECT_EQ(engine.recv_timeout(2, *mb2, 0.2), std::nullopt);
    done2 = engine.node_time(2);
    engine.retire(2);
  });
  t1.join();
  t2.join();
  EXPECT_EQ(done1, 0.3);
  EXPECT_EQ(done2, 0.2);
}

TEST(DesEngine, DeadlockIsDiagnosedNotHung) {
  // Two nodes, each blocked on a mailbox nobody will ever write to: the
  // engine must fail the recv with a DeadlockError naming the stuck nodes
  // instead of hanging the process.
  Engine engine(2);
  auto mb0 = engine.make_mailbox(0);
  auto mb1 = engine.make_mailbox(1);
  std::string what0;
  std::string what1;
  std::thread t0([&] {
    try {
      engine.recv(0, *mb0);
    } catch (const DeadlockError& e) {
      what0 = e.what();
    }
  });
  std::thread t1([&] {
    try {
      engine.recv(1, *mb1);
    } catch (const DeadlockError& e) {
      what1 = e.what();
    }
  });
  t0.join();
  t1.join();
  EXPECT_NE(what0.find("deadlock"), std::string::npos);
  EXPECT_NE(what0.find("node 0"), std::string::npos);
  EXPECT_NE(what0.find("node 1"), std::string::npos);
  EXPECT_EQ(what0, what1);
}

TEST(DesEngine, GrantAdmitsMinimumTimeNodeOnly) {
  // Node 1 sits at an earlier virtual time; node 0's advance must not be
  // admitted until node 1 catches up past it, so sends/advances interleave
  // in virtual-time order no matter the thread schedule.
  Engine engine(2);
  engine.advance(0, 1.0);  // node 0 at t=1 while node 1 is at t=0
  std::vector<int> order;
  Mutex order_mutex;
  std::thread t1([&] {
    for (int i = 0; i < 3; ++i) {
      engine.advance(1, 0.25);
      MutexLock lock(order_mutex);
      order.push_back(1);
    }
    engine.retire(1);
  });
  engine.advance(0, 0.001);  // must wait for node 1 to pass t=1
  {
    MutexLock lock(order_mutex);
    order.push_back(0);
    // All three of node 1's sub-t=1 advances completed before node 0 moved.
    EXPECT_EQ(order.size(), 4u);
    EXPECT_EQ(order.back(), 0);
  }
  engine.retire(0);
  t1.join();
}

// ---- DesChannel + FaultyChannel composition ---------------------------------

TEST(DesChannel, ComposesUnderFaultyChannelWithDeterministicSchedule) {
  // A FaultyChannel wrapped around the DES endpoint sees pure payload bytes
  // (no timestamp header) and injects the exact same schedule as over any
  // other channel: seed-driven duplication doubles the delivery.
  Engine engine(2);
  auto [c0, c1] = sim::des::make_des_pair(engine, 0, 1, test_link());
  net::FaultProfile profile;
  profile.seed = 7;
  profile.duplicate_prob = 1.0;
  auto faulty = net::make_faulty_channel(std::move(c0), profile);
  faulty->send("payload");
  engine.retire(0);
  EXPECT_EQ(c1->recv(), "payload");
  EXPECT_EQ(c1->recv(), "payload");  // the duplicate
  EXPECT_EQ(engine.messages_delivered(), 2);
  EXPECT_EQ(engine.bytes_delivered(), 14);
}

TEST(DesChannel, CloseWakesPeerRecv) {
  Engine engine(2);
  auto [c0, c1] = sim::des::make_des_pair(engine, 0, 1, test_link());
  std::thread t1([&] {
    EXPECT_THROW(c1->recv(), NetworkError);
    engine.retire(1);
  });
  c0->close();
  engine.retire(0);
  t1.join();
}

// ---- Cross-mode agreement ---------------------------------------------------

data::Dataset blob_test_set() {
  data::BlobsConfig cfg;
  cfg.num_samples = 200;
  cfg.num_classes = 4;
  cfg.dims = 8;
  cfg.seed = 21;
  return data::make_blobs(cfg);
}

std::vector<std::unique_ptr<nn::MlpNet>> make_experts(int k) {
  std::vector<std::unique_ptr<nn::MlpNet>> experts;
  for (int i = 0; i < k; ++i) {
    nn::MlpConfig cfg;
    cfg.in_features = 8;
    cfg.num_classes = 4;
    cfg.depth = 2;
    cfg.hidden = 12;
    Rng rng(100 + i);
    experts.push_back(std::make_unique<nn::MlpNet>(cfg, rng));
  }
  return experts;
}

std::vector<nn::Module*> expert_ptrs(
    const std::vector<std::unique_ptr<nn::MlpNet>>& experts) {
  std::vector<nn::Module*> ptrs;
  for (const auto& e : experts) ptrs.push_back(e.get());
  return ptrs;
}

sim::ScenarioConfig fast_config(sim::Scheduler scheduler) {
  sim::ScenarioConfig cfg;
  cfg.num_queries = 12;
  cfg.link = net::LinkProfile{0.0005, 0.0, 0.0};
  cfg.scheduler = scheduler;
  return cfg;
}

TEST(DesCrossMode, TeamNetDiscreteOutcomesMatchFreeRunning) {
  const auto experts = make_experts(3);
  const auto ptrs = expert_ptrs(experts);
  const auto test = blob_test_set();
  const auto des =
      sim::run_teamnet(ptrs, test, fast_config(sim::Scheduler::discrete_event));
  const auto des2 =
      sim::run_teamnet(ptrs, test, fast_config(sim::Scheduler::discrete_event));
  const auto free_run =
      sim::run_teamnet(ptrs, test, fast_config(sim::Scheduler::free_running));
  // DES is bit-stable, latency included.
  EXPECT_EQ(des.latency_ms, des2.latency_ms);
  // Both modes agree on every discrete outcome.
  EXPECT_EQ(des.num_nodes, free_run.num_nodes);
  EXPECT_EQ(des.accuracy_pct, free_run.accuracy_pct);
  EXPECT_EQ(des.bytes_per_query, free_run.bytes_per_query);
  EXPECT_EQ(des.messages_per_query, free_run.messages_per_query);
}

TEST(DesCrossMode, MpiMatrixDiscreteOutcomesMatchFreeRunning) {
  nn::MlpConfig cfg;
  cfg.in_features = 8;
  cfg.num_classes = 4;
  cfg.depth = 3;
  cfg.hidden = 12;
  Rng rng(7);
  nn::MlpNet model(cfg, rng);
  const auto test = blob_test_set();
  const auto des = sim::run_mpi_matrix(
      model, test, fast_config(sim::Scheduler::discrete_event), 3);
  const auto des2 = sim::run_mpi_matrix(
      model, test, fast_config(sim::Scheduler::discrete_event), 3);
  const auto free_run = sim::run_mpi_matrix(
      model, test, fast_config(sim::Scheduler::free_running), 3);
  EXPECT_EQ(des.latency_ms, des2.latency_ms);
  EXPECT_EQ(des.accuracy_pct, free_run.accuracy_pct);
  EXPECT_EQ(des.bytes_per_query, free_run.bytes_per_query);
  EXPECT_EQ(des.messages_per_query, free_run.messages_per_query);
}

TEST(DesCrossMode, SgMoeDiscreteOutcomesMatchFreeRunning) {
  moe::SgMoeConfig cfg;
  cfg.num_experts = 3;
  cfg.epochs = 1;
  moe::SgMoe model(cfg, 8, [](int /*index*/, Rng& rng) {
    nn::MlpConfig mc;
    mc.in_features = 8;
    mc.num_classes = 4;
    mc.depth = 2;
    mc.hidden = 10;
    return std::make_unique<nn::MlpNet>(mc, rng);
  });
  const auto test = blob_test_set();
  model.train(test);
  const auto des =
      sim::run_sg_moe(model, test, fast_config(sim::Scheduler::discrete_event));
  const auto des2 =
      sim::run_sg_moe(model, test, fast_config(sim::Scheduler::discrete_event));
  const auto free_run =
      sim::run_sg_moe(model, test, fast_config(sim::Scheduler::free_running));
  EXPECT_EQ(des.latency_ms, des2.latency_ms);
  EXPECT_EQ(des.accuracy_pct, free_run.accuracy_pct);
  EXPECT_EQ(des.bytes_per_query, free_run.bytes_per_query);
  EXPECT_EQ(des.messages_per_query, free_run.messages_per_query);
}

std::string chaos_signature(const sim::ChaosResult& r) {
  std::string s = r.fault_schedule;
  s += "|stale=" + std::to_string(r.stale_replies);
  s += "|rejoins=" + std::to_string(r.rejoins);
  s += "|faults=" + std::to_string(r.faults_injected);
  s += "|acc=" + std::to_string(r.scenario.accuracy_pct);
  s += "|bytes=" + std::to_string(r.scenario.bytes_per_query);
  s += "|msgs=" + std::to_string(r.scenario.messages_per_query);
  s += "|live=";
  for (int v : r.live_nodes) s += std::to_string(v) + ",";
  s += "|ok=";
  for (char c : r.correct) s += c ? '1' : '0';
  return s;
}

TEST(DesCrossMode, ChaosScheduleMatchesFreeRunningUnderDropsAndPartition) {
  const auto experts = make_experts(3);
  const auto ptrs = expert_ptrs(experts);
  const auto test = blob_test_set();
  sim::ChaosConfig chaos;
  chaos.faults.seed = 42;
  chaos.faults.drop_prob = 0.25;
  chaos.faults.corrupt_prob = 0.1;
  chaos.worker_timeout_s = 0.25;
  chaos.probe_interval = 0;  // probes race real time; keep them out of the
                             // cross-mode comparison
  chaos.partition_worker = 0;
  chaos.partition_from_query = 4;
  chaos.heal_at_query = 8;
  const auto des = sim::run_teamnet_chaos(
      ptrs, test, fast_config(sim::Scheduler::discrete_event), chaos);
  const auto des2 = sim::run_teamnet_chaos(
      ptrs, test, fast_config(sim::Scheduler::discrete_event), chaos);
  const auto free_run = sim::run_teamnet_chaos(
      ptrs, test, fast_config(sim::Scheduler::free_running), chaos);
  EXPECT_EQ(des.scenario.latency_ms, des2.scenario.latency_ms);
  EXPECT_EQ(chaos_signature(des), chaos_signature(des2));
  EXPECT_EQ(chaos_signature(des), chaos_signature(free_run));
}

TEST(DesCrossMode, ChaosScheduleMatchesFreeRunningUnderDuplication) {
  const auto experts = make_experts(3);
  const auto ptrs = expert_ptrs(experts);
  const auto test = blob_test_set();
  sim::ChaosConfig chaos;
  chaos.faults.seed = 42;
  chaos.faults.duplicate_prob = 0.3;
  chaos.worker_timeout_s = 5.0;  // generous: no worker ever actually fails,
  chaos.probe_interval = 2;      // so the probe path stays idle in both modes
  const auto des = sim::run_teamnet_chaos(
      ptrs, test, fast_config(sim::Scheduler::discrete_event), chaos);
  const auto free_run = sim::run_teamnet_chaos(
      ptrs, test, fast_config(sim::Scheduler::free_running), chaos);
  EXPECT_EQ(chaos_signature(des), chaos_signature(free_run));
}

}  // namespace
}  // namespace teamnet
