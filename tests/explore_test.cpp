// Schedule-explorer suite (DESIGN.md §11): grant-policy units, the
// scenario-agnostic explorer harness, the unmutated-invariance matrix over
// the paper's scenarios, and the mutation gate — a seeded reintroduction of
// the pre-query-id gather (whose stale filter was a deadline clock reading,
// i.e. a time-of-check race) that the explorer must catch within a bounded
// schedule budget.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/des/explore.hpp"
#include "sim/des/grant_policy.hpp"
#include "sim/explore_scenarios.hpp"

namespace teamnet::sim::des {
namespace {

// ---- grant-policy units ----------------------------------------------------

TEST(GrantPolicy, CanonicalPicksLexicographicMinimum) {
  auto policy = make_grant_policy(GrantPolicyKind::canonical, 0, 4);
  EXPECT_EQ(policy->choose(1.5, {2, 3}, 99), 2);
  EXPECT_EQ(policy->choose(0.0, {0, 1, 2, 3}, 7), 0);
  EXPECT_EQ(policy->slack(), 0.0);
}

TEST(GrantPolicy, RandomTiebreakIsPureAndSeedSensitive) {
  auto policy = make_grant_policy(GrantPolicyKind::random_tiebreak, 42, 4);
  const std::vector<int> eligible = {0, 1, 2, 3};
  const int first = policy->choose(2.0, eligible, 11);
  // Purity: re-evaluation with identical arguments must land on the same
  // winner no matter how many times real threads re-check the grant.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(policy->choose(2.0, eligible, 11), first);
  }
  // Across times, salts and seeds the choice varies — if it never did, the
  // "perturbation" policies would silently degenerate to canonical.
  std::set<int> winners;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    auto p = make_grant_policy(GrantPolicyKind::random_tiebreak, seed, 4);
    for (int t = 0; t < 8; ++t) {
      winners.insert(p->choose(0.25 * t, eligible, seed + 100));
    }
  }
  EXPECT_GT(winners.size(), 1u);
}

TEST(GrantPolicy, PctPrioritiesChangeAtSeededPoints) {
  auto policy = make_grant_policy(GrantPolicyKind::pct, 7, 3);
  const std::vector<int> eligible = {0, 1, 2};
  const int initial = policy->choose(0.0, eligible, 0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(policy->choose(0.0, eligible, 0), initial);
  }
  // Enough granted steps by the current winner hit a change point and
  // demote it below everyone, forcing a preemption.
  int winner = initial;
  bool changed = false;
  for (int step = 0; step < 200 && !changed; ++step) {
    policy->note_step(winner);
    winner = policy->choose(0.0, eligible, 0);
    changed = winner != initial;
  }
  EXPECT_TRUE(changed);
}

TEST(GrantPolicy, PerturbingPoliciesCarryConfiguredSlack) {
  EXPECT_EQ(
      make_grant_policy(GrantPolicyKind::random_tiebreak, 1, 2, 0.25)->slack(),
      0.25);
  EXPECT_EQ(make_grant_policy(GrantPolicyKind::pct, 1, 2, 0.125)->slack(),
            0.125);
  // Canonical ignores the knob: its schedule IS the byte-identity baseline.
  EXPECT_EQ(make_grant_policy(GrantPolicyKind::canonical, 1, 2, 0.25)->slack(),
            0.0);
}

TEST(GrantPolicy, NamesRoundTrip) {
  for (auto kind : {GrantPolicyKind::canonical, GrantPolicyKind::random_tiebreak,
                    GrantPolicyKind::pct}) {
    const auto parsed = parse_grant_policy(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_grant_policy("definitely-not-a-policy").has_value());
}

TEST(ExploreCase, AlternatesPoliciesAndIncrementsSeeds) {
  ExploreConfig config;
  config.schedule_seed0 = 10;
  EXPECT_EQ(case_at(config, 0).policy, GrantPolicyKind::random_tiebreak);
  EXPECT_EQ(case_at(config, 1).policy, GrantPolicyKind::pct);
  EXPECT_EQ(case_at(config, 2).policy, GrantPolicyKind::random_tiebreak);
  EXPECT_EQ(case_at(config, 0).schedule_seed, 10u);
  EXPECT_EQ(case_at(config, 3).schedule_seed, 13u);
}

// ---- explorer harness over synthetic runners -------------------------------

RunOutcome constant_outcome(std::uint64_t digest) {
  RunOutcome out;
  out.discrete = "answer=42\n";
  out.digest = digest;
  return out;
}

TEST(Explore, AllMatchingSchedulesPass) {
  ExploreConfig config;
  config.num_schedules = 5;
  const auto report = explore_schedules(
      [](const ScheduleCase&) { return constant_outcome(1); }, config);
  EXPECT_TRUE(report.passed());
  ASSERT_EQ(report.cases.size(), 5u);
  for (const auto& c : report.cases) EXPECT_EQ(c.status, "match");
}

TEST(Explore, DivergenceCarriesReplayableRepro) {
  ExploreConfig config;
  config.num_schedules = 4;
  config.repro_prefix = "schedule_explore --scenario=synthetic";
  const auto report = explore_schedules(
      [&](const ScheduleCase& c) {
        // Deterministic per case, divergent for one of them — a "real"
        // schedule-dependent outcome, not a flaky one.
        RunOutcome out = constant_outcome(mix64(c.schedule_seed));
        if (c.schedule_seed == case_at(config, 2).schedule_seed &&
            c.policy == case_at(config, 2).policy) {
          out.discrete = "answer=41\n";
        }
        return out;
      },
      config);
  EXPECT_FALSE(report.passed());
  ASSERT_EQ(report.violations.size(), 1u);
  const Violation& v = report.violations[0];
  EXPECT_EQ(v.kind, "outcome-divergence");
  EXPECT_EQ(v.schedule.schedule_seed, case_at(config, 2).schedule_seed);
  EXPECT_NE(v.repro.find("--replay"), std::string::npos);
  EXPECT_NE(v.repro.find("--schedule-seed="), std::string::npos);
  EXPECT_NE(v.repro.find("synthetic"), std::string::npos);
}

TEST(Explore, DeadlockAndErrorAreViolations) {
  ExploreConfig config;
  config.num_schedules = 2;
  const auto report = explore_schedules(
      [](const ScheduleCase& c) {
        RunOutcome out = constant_outcome(3);
        if (c.policy == GrantPolicyKind::random_tiebreak) {
          out.deadlocked = true;
        } else if (c.policy == GrantPolicyKind::pct) {
          out.error = "invariant tripped";
        }
        return out;
      },
      config);
  ASSERT_EQ(report.violations.size(), 2u);
  EXPECT_EQ(report.violations[0].kind, "deadlock");
  EXPECT_EQ(report.violations[1].kind, "error");
}

TEST(Explore, BaselineFailureShortCircuits) {
  ExploreConfig config;
  config.num_schedules = 10;
  int calls = 0;
  const auto report = explore_schedules(
      [&](const ScheduleCase&) {
        ++calls;
        RunOutcome out;
        out.error = "fixture exploded";
        return out;
      },
      config);
  EXPECT_FALSE(report.passed());
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, "baseline-failure");
  EXPECT_EQ(calls, 1);  // no point perturbing a scenario that can't run
}

TEST(Explore, FlakyCounterexampleReportedAsReplayDivergence) {
  ExploreConfig config;
  config.num_schedules = 1;
  std::map<std::uint64_t, int> calls;
  const auto report = explore_schedules(
      [&](const ScheduleCase& c) {
        if (c.policy == GrantPolicyKind::canonical) return constant_outcome(1);
        // Wall-clock-dependent runner: diverges once, then "repairs" itself
        // — the replay check must refuse to hand this to a human as a
        // reproducible counterexample.
        RunOutcome out = constant_outcome(2);
        if (calls[c.schedule_seed]++ == 0) out.discrete = "answer=0\n";
        return out;
      },
      config);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, "replay-divergence");
}

// ---- scenario integration --------------------------------------------------

// Bounded budgets keep this suite inside regular ctest times while still
// exercising every fixture; CI's schedule-explore job sweeps the full
// ≥50-schedule matrix via tools/schedule_explore.
ExploreConfig small_budget(int n) {
  ExploreConfig config;
  config.num_schedules = n;
  return config;
}

TEST(ExploreScenarios, UnmutatedScenariosAreScheduleInvariant) {
  for (const std::string& name : explore_scenario_names()) {
    ExploreScenarioOptions options;
    options.num_queries = 6;
    const auto runner = make_explore_runner(name, options);
    const auto report = explore_schedules(runner, small_budget(6));
    EXPECT_TRUE(report.passed()) << name << ":\n" << format_report(report);
  }
}

TEST(ExploreScenarios, PerturbationIsNotVacuous) {
  // Guard against the failure mode where every "perturbed" schedule is
  // secretly the canonical one (e.g. a contention-free link): across a few
  // cases at least two distinct schedule digests must appear.
  ExploreScenarioOptions options;
  const auto runner = make_explore_runner("chaos", options);
  const auto report = explore_schedules(runner, small_budget(8));
  std::set<std::uint64_t> digests;
  digests.insert(report.baseline.digest);
  for (const auto& c : report.cases) digests.insert(c.digest);
  EXPECT_GT(digests.size(), 1u) << format_report(report);
}

// The gate config: chaos fixture, seed 1, 6 ms gather deadline. Found by
// sweep: reply arrivals land close enough to the deadline that slack-window
// medium jitter flips which side a reply lands on, so the pre-qid mutant's
// clock-reading acceptance diverges on over half the perturbed schedules.
ExploreScenarioOptions mutation_gate_options(bool mutate) {
  ExploreScenarioOptions options;
  options.seed = 1;
  options.chaos.worker_timeout_s = 0.006;
  options.chaos.test_pre_qid_gather = mutate;
  return options;
}

TEST(ExploreScenarios, MutationGateCatchesPreQidGather) {
  const auto runner = make_explore_runner("chaos", mutation_gate_options(true));
  const auto report = explore_schedules(runner, small_budget(16));
  EXPECT_FALSE(report.passed())
      << "the explorer failed to catch the pre-query-id gather mutant "
         "within 16 schedules:\n"
      << format_report(report);
  bool divergence = false;
  for (const auto& v : report.violations) {
    if (v.kind == "outcome-divergence") divergence = true;
    EXPECT_NE(v.kind, "replay-divergence")
        << "counterexample did not replay bit-exactly";
  }
  EXPECT_TRUE(divergence);
}

TEST(ExploreScenarios, MutationGateConfigPassesUnmutated) {
  // The same fixture with the real (query-id-echo) gather must be clean —
  // otherwise the gate above would "catch" noise, not the mutant.
  const auto runner =
      make_explore_runner("chaos", mutation_gate_options(false));
  const auto report = explore_schedules(runner, small_budget(16));
  EXPECT_TRUE(report.passed()) << format_report(report);
}

// ---- determinism gates (ctest -L determinism) ------------------------------

TEST(ExploreDeterminism, ReportIsByteIdenticalAcrossRuns) {
  ExploreScenarioOptions options;
  options.num_queries = 6;
  ExploreConfig config = small_budget(6);
  config.repro_prefix = "schedule_explore --scenario=chaos --seed=123";
  const auto runner = make_explore_runner("chaos", options);
  const std::string first = format_report(explore_schedules(runner, config));
  const std::string second = format_report(explore_schedules(runner, config));
  EXPECT_EQ(first, second);
}

TEST(ExploreDeterminism, ViolatingCaseReplaysBitIdentically) {
  const auto runner = make_explore_runner("chaos", mutation_gate_options(true));
  const auto report = explore_schedules(runner, small_budget(16));
  ASSERT_FALSE(report.violations.empty());
  const ScheduleCase c = report.violations[0].schedule;
  const RunOutcome once = runner(c);
  const RunOutcome twice = runner(c);
  EXPECT_EQ(once.digest, twice.digest);
  EXPECT_EQ(once.discrete, twice.discrete);
  EXPECT_EQ(once.deadlocked, twice.deadlocked);
  EXPECT_EQ(once.error, twice.error);
}

}  // namespace
}  // namespace teamnet::sim::des
