// Edge-simulator tests: device math, resource model, and integration tests
// over the scenario drivers asserting the paper's qualitative shape (who is
// faster than whom) on small trained models.
#include <gtest/gtest.h>

#include "core/teamnet.hpp"
#include "data/synthetic_mnist.hpp"
#include "moe/sg_moe.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "sim/scenario.hpp"

namespace teamnet {
namespace {

TEST(Device, ComputeTimeScalesWithFlops) {
  auto cpu = sim::jetson_tx2_cpu();
  EXPECT_DOUBLE_EQ(cpu.compute_time(0), 0.0);
  EXPECT_NEAR(cpu.compute_time(static_cast<std::int64_t>(cpu.flops_per_s)), 1.0,
              1e-9);
  EXPECT_THROW(cpu.compute_time(-1), InvariantError);
}

TEST(Device, ProfileOrdering) {
  // GPU >> Jetson CPU > RPi, and RAM: Jetson 8 GB vs RPi 1 GB.
  EXPECT_GT(sim::jetson_tx2_gpu().flops_per_s,
            5 * sim::jetson_tx2_cpu().flops_per_s);
  EXPECT_GT(sim::jetson_tx2_cpu().flops_per_s,
            2 * sim::raspberry_pi_3b().flops_per_s);
  EXPECT_GT(sim::jetson_tx2_cpu().memory_bytes,
            4 * sim::raspberry_pi_3b().memory_bytes);
}

TEST(Resource, SmallerModelUsesLessMemory) {
  Rng rng(1);
  nn::MlpConfig big_cfg, small_cfg;
  big_cfg.depth = 8;
  big_cfg.hidden = 128;
  small_cfg.depth = 2;
  small_cfg.hidden = 128;
  nn::MlpNet big(big_cfg, rng), small(small_cfg, rng);
  const auto device = sim::raspberry_pi_3b();
  auto ub = sim::estimate_resources(
      device, sim::model_working_set_bytes(big, {784}), 1.0);
  auto us = sim::estimate_resources(
      device, sim::model_working_set_bytes(small, {784}), 1.0);
  EXPECT_GT(ub.memory_pct, us.memory_pct);
  EXPECT_GT(us.memory_pct, 0.0);
}

TEST(Resource, IdleNodeShowsLowUtilization) {
  const auto device = sim::jetson_tx2_cpu();
  auto busy = sim::estimate_resources(device, 1 << 20, 1.0);
  auto idle = sim::estimate_resources(device, 1 << 20, 0.2);
  EXPECT_GT(busy.cpu_pct, idle.cpu_pct);
  EXPECT_NEAR(busy.cpu_pct, device.max_utilization, 1e-9);
  EXPECT_EQ(busy.gpu_pct, 0.0);
}

TEST(Resource, GpuDeviceReportsGpuUtilization) {
  const auto device = sim::jetson_tx2_gpu();
  auto usage = sim::estimate_resources(device, 1 << 20, 0.5);
  EXPECT_GT(usage.gpu_pct, 0.0);
  EXPECT_GT(usage.cpu_pct, 0.0);
  EXPECT_LT(usage.cpu_pct, device.max_utilization);
}

TEST(Calibration, ProtocolOverheadOrdering) {
  EXPECT_LT(sim::kSocketOverheadS, sim::kGrpcOverheadS);
  EXPECT_LT(sim::kGrpcOverheadS, sim::kMpiOverheadS);
  EXPECT_NEAR(sim::grpc_link().per_message_overhead_s, sim::kGrpcOverheadS,
              1e-12);
}

/// Shared fixture: a small MNIST problem with a trained baseline, TeamNet
/// ensemble, and SG-MoE, reused across the scenario shape tests.
class ScenarioShape : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::MnistConfig mc;
    mc.num_samples = 1200;  // 28x28 keeps glyphs above stroke resolution
    dataset_ = new data::Dataset(data::make_synthetic_mnist(mc));
    auto split = dataset_->split(0.25);
    test_ = new data::Dataset(std::move(split.first));
    train_ = new data::Dataset(std::move(split.second));

    Rng rng(5);
    nn::MlpConfig bc;
    bc.in_features = kFeatures;
    bc.depth = 8;
    bc.hidden = 64;
    baseline_ = new nn::MlpNet(bc, rng);
    {
      nn::Sgd opt(baseline_->parameters(), {});
      Rng srng(6);
      data::BatchIterator it(*train_, 64, &srng);
      for (int e = 0; e < 3; ++e) {
        it.reset();
        for (auto b = it.next(); b.size() > 0; b = it.next()) {
          ag::backward(nn::cross_entropy_loss(
              baseline_->forward(ag::constant(b.x)), b.y));
          opt.step();
        }
      }
      baseline_->set_training(false);
    }

    core::TeamNetConfig tc;
    tc.num_experts = 2;
    tc.epochs = 3;
    tc.batch_size = 64;
    core::TeamNetTrainer trainer(tc, [](int, Rng& r) -> nn::ModulePtr {
      nn::MlpConfig c;
      c.in_features = kFeatures;
      c.depth = 4;
      c.hidden = 64;
      return std::make_unique<nn::MlpNet>(c, r);
    });
    ensemble_ = new core::TeamNetEnsemble(trainer.train(*train_));

    moe::SgMoeConfig sc;
    sc.num_experts = 2;
    sc.epochs = 3;
    sg_moe_ = new moe::SgMoe(sc, kFeatures, [](int, Rng& r) -> nn::ModulePtr {
      nn::MlpConfig c;
      c.in_features = kFeatures;
      c.depth = 4;
      c.hidden = 64;
      return std::make_unique<nn::MlpNet>(c, r);
    });
    sg_moe_->train(*train_);

    // Big UNTRAINED architectures for latency-shape tests: virtual latency
    // depends only on FLOPs and message sizes, not on learned weights, and
    // the compute/communication trade-off only appears at realistic widths.
    Rng brng(8);
    nn::MlpConfig big8;
    big8.in_features = kFeatures;
    big8.depth = 8;
    big8.hidden = 512;
    big_baseline_ = new nn::MlpNet(big8, brng);
    big_baseline_->set_training(false);
    nn::MlpConfig big4 = big8;
    big4.depth = 4;
    big_expert0_ = new nn::MlpNet(big4, brng);
    big_expert1_ = new nn::MlpNet(big4, brng);
    big_expert0_->set_training(false);
    big_expert1_->set_training(false);
  }

  static void TearDownTestSuite() {
    delete big_expert1_;
    delete big_expert0_;
    delete big_baseline_;
    big_expert1_ = big_expert0_ = big_baseline_ = nullptr;
    delete sg_moe_;
    delete ensemble_;
    delete baseline_;
    delete train_;
    delete test_;
    delete dataset_;
    sg_moe_ = nullptr;
    ensemble_ = nullptr;
    baseline_ = nullptr;
    train_ = test_ = dataset_ = nullptr;
  }

  static sim::ScenarioConfig fast_config() {
    sim::ScenarioConfig cfg;
    cfg.num_queries = 10;
    return cfg;
  }

  static constexpr std::int64_t kFeatures = 28 * 28;

  static data::Dataset* dataset_;
  static data::Dataset* train_;
  static data::Dataset* test_;
  static nn::MlpNet* baseline_;
  static core::TeamNetEnsemble* ensemble_;
  static moe::SgMoe* sg_moe_;
  static nn::MlpNet* big_baseline_;
  static nn::MlpNet* big_expert0_;
  static nn::MlpNet* big_expert1_;
};

data::Dataset* ScenarioShape::dataset_ = nullptr;
data::Dataset* ScenarioShape::train_ = nullptr;
data::Dataset* ScenarioShape::test_ = nullptr;
nn::MlpNet* ScenarioShape::baseline_ = nullptr;
core::TeamNetEnsemble* ScenarioShape::ensemble_ = nullptr;
moe::SgMoe* ScenarioShape::sg_moe_ = nullptr;
nn::MlpNet* ScenarioShape::big_baseline_ = nullptr;
nn::MlpNet* ScenarioShape::big_expert0_ = nullptr;
nn::MlpNet* ScenarioShape::big_expert1_ = nullptr;

TEST_F(ScenarioShape, BaselineLatencyMatchesAnalyticModel) {
  auto cfg = fast_config();
  auto result = sim::run_baseline(*baseline_, *test_, cfg);
  const double expected_ms =
      1e3 * cfg.device.compute_time(baseline_->analyze({kFeatures}).flops);
  EXPECT_NEAR(result.latency_ms, expected_ms, 1e-9);
  EXPECT_GT(result.accuracy_pct, 50.0);
}

TEST_F(ScenarioShape, TeamNetProtocolRunsAndReportsTraffic) {
  std::vector<nn::Module*> experts = {&ensemble_->expert(0),
                                      &ensemble_->expert(1)};
  auto result = sim::run_teamnet(experts, *test_, fast_config());
  EXPECT_EQ(result.num_nodes, 2);
  EXPECT_GT(result.latency_ms, 0.0);
  // Figure 1's protocol: one broadcast + one gather = 2 messages/query.
  EXPECT_NEAR(result.messages_per_query, 2.0, 1e-9);
  EXPECT_GT(result.bytes_per_query, kFeatures * 4);  // at least the input
  EXPECT_GT(result.accuracy_pct, 50.0);
}

TEST_F(ScenarioShape, MpiMatrixIsFarSlowerThanTeamNet) {
  std::vector<nn::Module*> experts = {&ensemble_->expert(0),
                                      &ensemble_->expert(1)};
  auto cfg = fast_config();
  auto teamnet = sim::run_teamnet(experts, *test_, cfg);
  auto mpi_cfg = cfg;
  mpi_cfg.link = sim::mpi_link();
  auto mpi = sim::run_mpi_matrix(*baseline_, *test_, mpi_cfg, 2);
  // Paper Table I: MPI-Matrix is 1-2 orders of magnitude slower.
  EXPECT_GT(mpi.latency_ms, 5.0 * teamnet.latency_ms);
  EXPECT_GT(mpi.messages_per_query, teamnet.messages_per_query);
}

TEST_F(ScenarioShape, TeamNetBeatsBaselineOnCpuLosesOnGpu) {
  // Uses the realistic-width untrained models: the trade-off is purely
  // architectural (FLOPs vs WiFi bytes).
  std::vector<nn::Module*> experts = {big_expert0_, big_expert1_};
  auto cpu_cfg = fast_config();
  auto t_cpu = sim::run_teamnet(experts, *test_, cpu_cfg);
  auto b_cpu = sim::run_baseline(*big_baseline_, *test_, cpu_cfg);

  auto gpu_cfg = fast_config();
  gpu_cfg.device = sim::jetson_tx2_gpu();
  auto t_gpu = sim::run_teamnet(experts, *test_, gpu_cfg);
  auto b_gpu = sim::run_baseline(*big_baseline_, *test_, gpu_cfg);

  // Table I's headline shape: the WiFi round trip is worth paying on the
  // CPU-bound device but overwhelms the GPU's tiny compute time.
  EXPECT_LT(t_cpu.latency_ms, b_cpu.latency_ms);
  EXPECT_GT(t_gpu.latency_ms, b_gpu.latency_ms);
}

TEST_F(ScenarioShape, SgMoeScenarioRunsWithBothProtocols) {
  auto grpc_cfg = fast_config();
  grpc_cfg.link = sim::grpc_link();
  auto g = sim::run_sg_moe(*sg_moe_, *test_, grpc_cfg);

  auto mpi_cfg = fast_config();
  mpi_cfg.link = sim::mpi_link();
  auto m = sim::run_sg_moe(*sg_moe_, *test_, mpi_cfg);

  EXPECT_GT(g.latency_ms, 0.0);
  // Same protocol, heavier per-message cost -> slower (SG-MoE-M rows).
  EXPECT_GE(m.latency_ms, g.latency_ms);
  EXPECT_EQ(g.accuracy_pct, m.accuracy_pct);
}

TEST_F(ScenarioShape, BothApproachesLearnTheTask) {
  std::vector<nn::Module*> experts = {&ensemble_->expert(0),
                                      &ensemble_->expert(1)};
  auto cfg = fast_config();
  auto t = sim::run_teamnet(experts, *test_, cfg);
  auto s = sim::run_sg_moe(*sg_moe_, *test_, cfg);
  // Both approaches must clearly beat chance on this small training budget;
  // the full accuracy comparison (paper Tables I-II) lives in the benches.
  EXPECT_GT(t.accuracy_pct, 55.0);
  EXPECT_GT(s.accuracy_pct, 55.0);
  EXPECT_GT(t.accuracy_pct + 15.0, s.accuracy_pct);
}

TEST_F(ScenarioShape, TeamNetMasterCoolerThanBaseline) {
  std::vector<nn::Module*> experts = {&ensemble_->expert(0),
                                      &ensemble_->expert(1)};
  auto cfg = fast_config();
  auto t = sim::run_teamnet(experts, *test_, cfg);
  auto b = sim::run_baseline(*baseline_, *test_, cfg);
  EXPECT_LT(t.usage.cpu_pct, b.usage.cpu_pct);
  EXPECT_LT(t.usage.memory_pct, b.usage.memory_pct);
}

}  // namespace
}  // namespace teamnet

namespace teamnet {
namespace {

TEST(Heterogeneous, StragglerGatesLatencyAndMatchingHelps) {
  Rng rng(90);
  nn::MlpConfig big;
  big.in_features = 28 * 28;
  big.depth = 4;
  big.hidden = 256;
  nn::MlpConfig small = big;
  small.depth = 2;
  nn::MlpNet a(big, rng), b(big, rng), c(big, rng), d(small, rng);
  for (nn::Module* m :
       std::initializer_list<nn::Module*>{&a, &b, &c, &d}) {
    m->set_training(false);
  }

  data::MnistConfig mc;
  mc.num_samples = 64;
  auto test = data::make_synthetic_mnist(mc);

  sim::ScenarioConfig cfg;
  cfg.num_queries = 8;
  const std::vector<sim::DeviceProfile> fleet = {sim::jetson_tx2_cpu(),
                                                 sim::raspberry_pi_3b()};
  auto equal = sim::run_teamnet_heterogeneous({&a, &b}, fleet, test, cfg);
  auto matched = sim::run_teamnet_heterogeneous({&c, &d}, fleet, test, cfg);
  // The RPi running the same big expert is ~4x slower than the Jetson, so
  // it gates the equal configuration; the small expert shortens it.
  EXPECT_LT(matched.latency_ms, equal.latency_ms);

  // Size validation.
  EXPECT_THROW(
      sim::run_teamnet_heterogeneous({&a, &b}, {sim::jetson_tx2_cpu()}, test,
                                     cfg),
      InvariantError);
}

}  // namespace
}  // namespace teamnet
