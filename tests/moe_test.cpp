// SG-MoE baseline tests: routing ops gradients, noisy top-k behaviour,
// load balancing, joint training, and distributed serving equivalence.
#include <gtest/gtest.h>

#include <thread>

#include "data/blobs.hpp"
#include "moe/moe_ops.hpp"
#include "moe/moe_serving.hpp"
#include "moe/sg_moe.hpp"
#include "net/transport.hpp"
#include "nn/mlp.hpp"

namespace teamnet {
namespace {

moe::ExpertFactory blob_expert_factory(std::int64_t dims, int classes) {
  return [dims, classes](int /*index*/, Rng& rng) -> nn::ModulePtr {
    nn::MlpConfig cfg;
    cfg.in_features = dims;
    cfg.num_classes = classes;
    cfg.depth = 2;
    cfg.hidden = 16;
    return std::make_unique<nn::MlpNet>(cfg, rng);
  };
}

TEST(MoeOps, GatherRowsForwardAndGrad) {
  ag::Var src(Tensor({3, 2}, {0, 1, 2, 3, 4, 5}), true);
  ag::Var out = moe::gather_rows(src, {2, 0});
  EXPECT_TRUE(out.value().allclose(Tensor({2, 2}, {4, 5, 0, 1})));
  ag::backward(ag::sum_all(out));
  EXPECT_TRUE(src.grad().allclose(Tensor({3, 2}, {1, 1, 0, 0, 1, 1})));
}

TEST(MoeOps, ScatterAddRowsForwardAndGrad) {
  ag::Var src(Tensor({2, 2}, {1, 2, 3, 4}), true);
  ag::Var out = moe::scatter_add_rows(src, {1, 1}, 3);
  EXPECT_TRUE(out.value().allclose(Tensor({3, 2}, {0, 0, 4, 6, 0, 0})));
  ag::backward(ag::sum_all(ag::mul(out, out)));
  // d/dsrc of sum(out^2): both source rows land on row 1 -> grad 2*out[1].
  EXPECT_TRUE(src.grad().allclose(Tensor({2, 2}, {8, 12, 8, 12})));
}

TEST(MoeOps, GatherElementsForwardAndGrad) {
  ag::Var m(Tensor({2, 3}, {0, 1, 2, 3, 4, 5}), true);
  ag::Var out = moe::gather_elements(m, {0, 1, 1}, {2, 0, 0});
  EXPECT_TRUE(out.value().allclose(Tensor({3, 1}, {2, 3, 3})));
  ag::backward(ag::sum_all(out));
  EXPECT_TRUE(m.grad().allclose(Tensor({2, 3}, {0, 0, 1, 2, 0, 0})));
}

TEST(SgMoe, ConfigValidation) {
  moe::SgMoeConfig cfg;
  cfg.num_experts = 1;
  EXPECT_THROW(moe::SgMoe(cfg, 8, blob_expert_factory(8, 4)), InvariantError);
  cfg.num_experts = 2;
  cfg.top_k = 3;
  EXPECT_THROW(moe::SgMoe(cfg, 8, blob_expert_factory(8, 4)), InvariantError);
}

TEST(SgMoe, TrainsToReasonableAccuracyOnBlobs) {
  data::BlobsConfig bc;
  bc.num_samples = 600;
  auto ds = data::make_blobs(bc);
  moe::SgMoeConfig cfg;
  cfg.num_experts = 2;
  cfg.epochs = 8;
  cfg.sgd.lr = 0.05f;
  moe::SgMoe model(cfg, bc.dims, blob_expert_factory(bc.dims, 4));
  model.train(ds);
  EXPECT_GT(model.evaluate_accuracy(ds), 0.8);
  // Loss should broadly decrease.
  const auto& losses = model.loss_history();
  ASSERT_EQ(losses.size(), 8u);
  EXPECT_LT(losses.back(), losses.front());
}

TEST(SgMoe, LoadBalancingSpreadsRouting) {
  data::BlobsConfig bc;
  bc.num_samples = 600;
  auto ds = data::make_blobs(bc);
  moe::SgMoeConfig cfg;
  cfg.num_experts = 4;
  cfg.epochs = 6;
  cfg.load_balance_weight = 0.2f;
  moe::SgMoe model(cfg, bc.dims, blob_expert_factory(bc.dims, 4));
  model.train(ds);
  auto routed = model.route(ds.images);
  std::vector<int> counts(4, 0);
  for (int r : routed) ++counts[static_cast<std::size_t>(r)];
  int active = 0;
  for (int c : counts) active += (c > 0);
  EXPECT_GE(active, 2) << "load balancing should keep several experts in use";
}

TEST(SgMoe, RoutingIsDeterministicAtInference) {
  data::BlobsConfig bc;
  bc.num_samples = 200;
  auto ds = data::make_blobs(bc);
  moe::SgMoeConfig cfg;
  cfg.num_experts = 2;
  cfg.epochs = 2;
  moe::SgMoe model(cfg, bc.dims, blob_expert_factory(bc.dims, 4));
  model.train(ds);
  EXPECT_EQ(model.route(ds.images), model.route(ds.images));
}

TEST(SgMoe, InferenceUsesExactlyOneExpertPerSample) {
  data::BlobsConfig bc;
  bc.num_samples = 100;
  auto ds = data::make_blobs(bc);
  moe::SgMoeConfig cfg;
  cfg.num_experts = 3;
  cfg.epochs = 2;
  moe::SgMoe model(cfg, bc.dims, blob_expert_factory(bc.dims, 4));
  model.train(ds);
  auto inf = model.infer(ds.images);
  ASSERT_EQ(inf.routed.size(), 100u);
  for (int r : inf.routed) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 3);
  }
  // probs rows are valid distributions
  for (std::int64_t i = 0; i < inf.probs.dim(0); ++i) {
    float sum = 0.0f;
    for (std::int64_t c = 0; c < inf.probs.dim(1); ++c) {
      sum += inf.probs[i * inf.probs.dim(1) + c];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

TEST(MoeServing, DistributedMatchesLocalInference) {
  data::BlobsConfig bc;
  bc.num_samples = 300;
  auto ds = data::make_blobs(bc);
  moe::SgMoeConfig cfg;
  cfg.num_experts = 3;
  cfg.epochs = 3;
  moe::SgMoe model(cfg, bc.dims, blob_expert_factory(bc.dims, 4));
  model.train(ds);
  auto expected = model.infer(ds.images);

  // Two workers serve experts 1 and 2; expert 0 stays on the master.
  auto [m1, w1] = net::make_inproc_pair();
  auto [m2, w2] = net::make_inproc_pair();
  net::CollaborativeWorker worker1(model.expert(1), *w1);
  net::CollaborativeWorker worker2(model.expert(2), *w2);
  std::thread t1([&worker1] { worker1.serve(); });
  std::thread t2([&worker2] { worker2.serve(); });

  moe::MoeMaster master(model, {m1.get(), m2.get()});
  auto actual = master.infer(ds.images);
  master.shutdown();
  t1.join();
  t2.join();

  EXPECT_EQ(actual.routed, expected.routed);
  EXPECT_EQ(actual.predictions, expected.predictions);
  EXPECT_TRUE(actual.probs.allclose(expected.probs, 1e-5f));
}

TEST(MoeServing, RejectsWrongWorkerCount) {
  moe::SgMoeConfig cfg;
  cfg.num_experts = 3;
  moe::SgMoe model(cfg, 8, blob_expert_factory(8, 4));
  auto [a, b] = net::make_inproc_pair();
  EXPECT_THROW(moe::MoeMaster(model, {a.get()}), InvariantError);
}

}  // namespace
}  // namespace teamnet
