// Latency-attribution tests (DESIGN.md §15). The binary carries the
// `determinism` ctest label: the attribution contract is EXACT — each
// query's end-to-end and critical-path partitions are integer-nanosecond
// telescopes that sum to the measured latency bit for bit, and the
// aggregated breakdown JSON is byte-identical across same-seed runs under
// the discrete-event scheduler. Alongside the exactness gates: synthetic
// attribute() units, fault-injection attribution (a delayed link lands in
// serialization/transit/slack, never in compute; a partitioned worker
// degrades the gather without breaking any sum), flow-event serialization
// with epoch-folded ids, and the registry's pre-bucketed histogram export.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "data/blobs.hpp"
#include "load/breakdown.hpp"
#include "load/loadgen.hpp"
#include "moe/sg_moe.hpp"
#include "net/collab.hpp"
#include "net/fault.hpp"
#include "nn/mlp.hpp"
#include "obs/critpath.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "sim/des/runtime.hpp"
#include "sim/driver_util.hpp"
#include "sim/scenario.hpp"

namespace teamnet {
namespace {

constexpr std::int64_t kMs = 1'000'000;  // one millisecond in nanoseconds

std::uint64_t determinism_seed() {
  const char* env = std::getenv("TEAMNET_DETERMINISM_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 123u;
}

std::int64_t ns(const obs::QueryAttribution& a, obs::AttrPhase p) {
  return a.crit_ns[static_cast<std::size_t>(p)];
}
std::int64_t e2e(const obs::QueryAttribution& a, obs::AttrPhase p) {
  return a.e2e_ns[static_cast<std::size_t>(p)];
}

/// Critical-path nanoseconds attributed to `kind` across one query.
std::int64_t crit_kind_ns(const obs::QueryAttribution& a, obs::CritKind kind) {
  std::int64_t sum = 0;
  for (int p = 0; p < obs::kNumAttrPhases; ++p) {
    if (obs::kind_of(static_cast<obs::AttrPhase>(p)) == kind) {
      sum += a.crit_ns[static_cast<std::size_t>(p)];
    }
  }
  return sum;
}

// ---- attribute(): synthetic timelines ---------------------------------------

/// The worked example: an 11 ms query whose gather was released by worker
/// 0's reply, with worker 1 finishing 3 ms early.
obs::QueryTimeline worked_example() {
  obs::QueryTimeline tl;
  tl.qid = 7;
  tl.t[static_cast<int>(obs::QueryPhase::arrival)] = 0.000;
  tl.t[static_cast<int>(obs::QueryPhase::dispatch)] = 0.001;
  tl.t[static_cast<int>(obs::QueryPhase::broadcast_end)] = 0.003;
  tl.t[static_cast<int>(obs::QueryPhase::local_compute_end)] = 0.004;
  tl.t[static_cast<int>(obs::QueryPhase::gather_end)] = 0.010;
  tl.t[static_cast<int>(obs::QueryPhase::complete)] = 0.011;
  obs::WorkerLane& w0 = tl.lane(0);
  w0.t[static_cast<int>(obs::WorkerMark::sent)] = 0.002;
  w0.t[static_cast<int>(obs::WorkerMark::request_recv)] = 0.0025;
  w0.t[static_cast<int>(obs::WorkerMark::compute_begin)] = 0.0026;
  w0.t[static_cast<int>(obs::WorkerMark::compute_end)] = 0.006;
  w0.t[static_cast<int>(obs::WorkerMark::reply_sent)] = 0.0062;
  w0.t[static_cast<int>(obs::WorkerMark::reply_recv)] = 0.010;
  obs::WorkerLane& w1 = tl.lane(1);
  w1.t[static_cast<int>(obs::WorkerMark::sent)] = 0.003;
  w1.t[static_cast<int>(obs::WorkerMark::request_recv)] = 0.0035;
  w1.t[static_cast<int>(obs::WorkerMark::compute_begin)] = 0.0036;
  w1.t[static_cast<int>(obs::WorkerMark::compute_end)] = 0.005;
  w1.t[static_cast<int>(obs::WorkerMark::reply_sent)] = 0.0052;
  w1.t[static_cast<int>(obs::WorkerMark::reply_recv)] = 0.007;
  return tl;
}

TEST(Attribute, WorkedExampleSlicesAreExact) {
  const auto a = obs::attribute(worked_example());
  EXPECT_EQ(a.qid, 7);
  EXPECT_EQ(a.total_ns, 11 * kMs);
  EXPECT_EQ(a.critical_worker, 0);

  // End-to-end partition: the master's five consecutive slices.
  EXPECT_EQ(e2e(a, obs::AttrPhase::master_queue), 1 * kMs);
  EXPECT_EQ(e2e(a, obs::AttrPhase::broadcast), 2 * kMs);
  EXPECT_EQ(e2e(a, obs::AttrPhase::local_compute), 1 * kMs);
  EXPECT_EQ(e2e(a, obs::AttrPhase::gather_wait), 6 * kMs);
  EXPECT_EQ(e2e(a, obs::AttrPhase::argmin), 1 * kMs);
  EXPECT_EQ(a.e2e_sum(), a.total_ns);

  // Critical-path partition through worker 0's lane.
  EXPECT_EQ(ns(a, obs::AttrPhase::master_queue), 1 * kMs);
  EXPECT_EQ(ns(a, obs::AttrPhase::broadcast_serial), 1 * kMs);
  EXPECT_EQ(ns(a, obs::AttrPhase::request_transit), kMs / 2);
  EXPECT_EQ(ns(a, obs::AttrPhase::worker_queue), kMs / 10);
  EXPECT_EQ(ns(a, obs::AttrPhase::worker_compute), 3'400'000);
  EXPECT_EQ(ns(a, obs::AttrPhase::reply_prep), 200'000);
  EXPECT_EQ(ns(a, obs::AttrPhase::reply_transit), 3'800'000);
  EXPECT_EQ(ns(a, obs::AttrPhase::gather_slack), 0);
  EXPECT_EQ(ns(a, obs::AttrPhase::argmin), 1 * kMs);
  EXPECT_EQ(ns(a, obs::AttrPhase::unattributed), 0);
  EXPECT_EQ(a.crit_sum(), a.total_ns);

  // Largest slice wins; reply transit (3.8 ms) beats compute (3.4 ms).
  EXPECT_EQ(a.dominant, obs::AttrPhase::reply_transit);
  EXPECT_EQ(a.dominant_kind(), obs::CritKind::transit);

  // Worker 1's reply was read 3 ms before the gather released.
  ASSERT_EQ(a.straggler_slack_ns.size(), 1u);
  EXPECT_EQ(a.straggler_slack_ns[0], 3 * kMs);
}

TEST(Attribute, CriticalPathSliceNeverExceedsTotal) {
  const auto a = obs::attribute(worked_example());
  std::int64_t max_slice = 0;
  for (int p = 0; p < obs::kNumAttrPhases; ++p) {
    const std::int64_t v = a.crit_ns[static_cast<std::size_t>(p)];
    EXPECT_GE(v, 0);
    EXPECT_LE(v, a.total_ns);
    max_slice = std::max(max_slice, v);
  }
  // The dominant slice IS the maximum, and the chain covers it.
  EXPECT_EQ(ns(a, a.dominant), max_slice);
  EXPECT_GE(a.crit_sum(), max_slice);
}

TEST(Attribute, LocalReleaserChargesWaitAsGatherSlack) {
  // Master's own expert finished last: all worker replies arrived earlier.
  auto tl = worked_example();
  tl.t[static_cast<int>(obs::QueryPhase::local_compute_end)] = 0.0095;
  tl.lane(0).t[static_cast<int>(obs::WorkerMark::reply_recv)] = 0.005;
  const auto a = obs::attribute(tl);
  EXPECT_EQ(a.critical_worker, -1);
  EXPECT_EQ(ns(a, obs::AttrPhase::local_compute), 6'500'000);
  // local_compute_end -> gather_end is slack, not gather_wait, on this
  // chain: the gather was only draining already-read replies.
  EXPECT_EQ(ns(a, obs::AttrPhase::gather_slack), kMs / 2);
  EXPECT_EQ(a.crit_sum(), a.total_ns);
  // Both workers were stragglers relative to the local expert.
  EXPECT_EQ(a.straggler_slack_ns.size(), 2u);
}

TEST(Attribute, MissingInteriorMarksCollapseToUnattributed) {
  // The critical worker's interior marks were suppressed (e.g. a hedged
  // backup answered under its identity): dispatch->reply is real time but
  // its interior must become `unattributed`, never a skewed named phase.
  auto tl = worked_example();
  obs::WorkerLane& w0 = tl.lane(0);
  w0 = obs::WorkerLane();
  w0.worker = 0;
  w0.t[static_cast<int>(obs::WorkerMark::sent)] = 0.002;
  w0.t[static_cast<int>(obs::WorkerMark::reply_recv)] = 0.010;
  const auto a = obs::attribute(tl);
  EXPECT_EQ(a.critical_worker, 0);
  EXPECT_EQ(ns(a, obs::AttrPhase::broadcast_serial), 1 * kMs);
  EXPECT_EQ(ns(a, obs::AttrPhase::unattributed), 8 * kMs);
  EXPECT_EQ(ns(a, obs::AttrPhase::worker_compute), 0);
  EXPECT_EQ(a.crit_sum(), a.total_ns);
  EXPECT_EQ(a.e2e_sum(), a.total_ns);
}

TEST(Attribute, MissingAnchorsYieldEmptyAttribution) {
  obs::QueryTimeline tl;
  tl.qid = 3;
  tl.t[static_cast<int>(obs::QueryPhase::dispatch)] = 0.001;
  // No `complete` mark: nothing to anchor on.
  const auto a = obs::attribute(tl);
  EXPECT_EQ(a.total_ns, 0);
  EXPECT_EQ(a.e2e_sum(), 0);
  EXPECT_EQ(a.crit_sum(), 0);
}

TEST(Attribute, AwkwardDoublesStillTelescopeExactly) {
  // Timestamps with no nice binary representation: the integer-ns
  // telescopes must still close bit-exactly, for any monotone chain.
  Rng rng(determinism_seed());
  for (int trial = 0; trial < 200; ++trial) {
    obs::QueryTimeline tl;
    tl.qid = trial + 1;
    double t = static_cast<double>(rng.uniform(0.0f, 10.0f));
    auto step = [&rng, &t] {
      t += static_cast<double>(rng.uniform(0.0f, 0.01f)) + 1e-7;
      return t;
    };
    tl.t[static_cast<int>(obs::QueryPhase::arrival)] = t;
    tl.t[static_cast<int>(obs::QueryPhase::dispatch)] = step();
    obs::WorkerLane& w0 = tl.lane(0);
    w0.t[static_cast<int>(obs::WorkerMark::sent)] = step();
    w0.t[static_cast<int>(obs::WorkerMark::request_recv)] = step();
    w0.t[static_cast<int>(obs::WorkerMark::compute_begin)] = step();
    tl.t[static_cast<int>(obs::QueryPhase::broadcast_end)] = step();
    tl.t[static_cast<int>(obs::QueryPhase::local_compute_end)] = step();
    w0.t[static_cast<int>(obs::WorkerMark::compute_end)] = step();
    w0.t[static_cast<int>(obs::WorkerMark::reply_sent)] = step();
    w0.t[static_cast<int>(obs::WorkerMark::reply_recv)] = step();
    tl.t[static_cast<int>(obs::QueryPhase::gather_end)] = step();
    tl.t[static_cast<int>(obs::QueryPhase::complete)] = step();
    const auto a = obs::attribute(tl);
    ASSERT_EQ(a.e2e_sum(), a.total_ns) << "trial " << trial;
    ASSERT_EQ(a.crit_sum(), a.total_ns) << "trial " << trial;
  }
}

// ---- full drivers: exact reconciliation -------------------------------------

data::Dataset blob_test_set() {
  data::BlobsConfig cfg;
  cfg.num_samples = 200;
  cfg.num_classes = 4;
  cfg.dims = 8;
  cfg.seed = 21;
  return data::make_blobs(cfg);
}

nn::MlpConfig tiny_mlp() {
  nn::MlpConfig cfg;
  cfg.in_features = 8;
  cfg.num_classes = 4;
  cfg.depth = 2;
  cfg.hidden = 12;
  return cfg;
}

std::vector<std::unique_ptr<nn::MlpNet>> make_experts(int k) {
  std::vector<std::unique_ptr<nn::MlpNet>> experts;
  for (int i = 0; i < k; ++i) {
    Rng rng(100 + i);
    experts.push_back(std::make_unique<nn::MlpNet>(tiny_mlp(), rng));
  }
  return experts;
}

std::vector<nn::Module*> expert_ptrs(
    const std::vector<std::unique_ptr<nn::MlpNet>>& experts) {
  std::vector<nn::Module*> ptrs;
  for (const auto& e : experts) ptrs.push_back(e.get());
  return ptrs;
}

sim::ScenarioConfig des_config() {
  sim::ScenarioConfig cfg;
  cfg.link = net::LinkProfile{0.0005, 0.0, 0.0};
  cfg.seed = determinism_seed();
  cfg.scheduler = sim::Scheduler::discrete_event;
  return cfg;
}

load::LoadConfig small_load(double rate_qps) {
  load::LoadConfig load_cfg;
  load_cfg.arrival.kind = load::ArrivalKind::open_poisson;
  load_cfg.arrival.rate_qps = rate_qps;
  load_cfg.arrival.seed = determinism_seed();
  load_cfg.num_queries = 16;
  load_cfg.warmup_queries = 4;
  load_cfg.query_seed = determinism_seed();
  return load_cfg;
}

void expect_exact_reconciliation(const load::LoadResult& r) {
  ASSERT_EQ(r.attributions.size(), r.records.size());
  for (std::size_t q = 0; q < r.attributions.size(); ++q) {
    const auto& a = r.attributions[q];
    EXPECT_EQ(a.qid, static_cast<std::int64_t>(q) + 1);
    EXPECT_GT(a.total_ns, 0) << "qid " << a.qid;
    EXPECT_EQ(a.e2e_sum(), a.total_ns) << "qid " << a.qid;
    EXPECT_EQ(a.crit_sum(), a.total_ns) << "qid " << a.qid;
    EXPECT_EQ(a.degradation, r.records[q].degradation) << "qid " << a.qid;
  }
}

TEST(LoadDriver, TeamnetAttributionsReconcileBitExactly) {
  const auto experts = make_experts(3);
  const auto r = load::run_teamnet_load(expert_ptrs(experts), blob_test_set(),
                                        des_config(), small_load(500.0));
  expect_exact_reconciliation(r);
  const auto s = load::summarize_attributions(
      r.attributions, 4, load::LatencyHistogram::Config{});
  EXPECT_EQ(s.queries, 12);
  EXPECT_EQ(s.reconciled, s.queries);
  EXPECT_EQ(s.max_residual_ns, 0);
}

TEST(LoadDriver, SgMoeAttributionsReconcileBitExactly) {
  moe::SgMoeConfig cfg;
  cfg.num_experts = 3;
  cfg.epochs = 1;
  moe::SgMoe model(cfg, 8, [](int /*index*/, Rng& rng) -> nn::ModulePtr {
    return std::make_unique<nn::MlpNet>(tiny_mlp(), rng);
  });
  const auto r = load::run_sg_moe_load(model, blob_test_set(), des_config(),
                                       small_load(500.0));
  expect_exact_reconciliation(r);
}

TEST(LoadDriver, BreakdownJsonByteIdenticalAcrossRuns) {
  const auto experts = make_experts(3);
  const auto ptrs = expert_ptrs(experts);
  const auto test = blob_test_set();
  std::string docs[2];
  for (std::string& doc : docs) {
    const auto r =
        load::run_teamnet_load(ptrs, test, des_config(), small_load(500.0));
    const auto s = load::summarize_attributions(
        r.attributions, 4, load::LatencyHistogram::Config{});
    load::append_breakdown_json(doc, s, "  ");
  }
  EXPECT_EQ(docs[0], docs[1]);
  EXPECT_NE(docs[0].find("\"reconciled\""), std::string::npos);
}

TEST(LoadDriver, OverloadPutsQueueingAheadOfCompute) {
  // An open-loop rate far past the serial service capacity: queries spend
  // their lives waiting for the master, so master_queue owns the critical
  // path — the bench's headline claim, pinned here at test scale.
  const auto experts = make_experts(3);
  auto load_cfg = small_load(50'000.0);
  load_cfg.num_queries = 24;
  load_cfg.warmup_queries = 4;
  const auto r = load::run_teamnet_load(expert_ptrs(experts), blob_test_set(),
                                        des_config(), load_cfg);
  expect_exact_reconciliation(r);
  const auto s = load::summarize_attributions(
      r.attributions, 4, load::LatencyHistogram::Config{});
  EXPECT_GT(s.kind_share(obs::CritKind::queueing),
            s.kind_share(obs::CritKind::compute));
  EXPECT_EQ(s.dominant_phase, obs::AttrPhase::master_queue);
}

// ---- fault injection: attribution under delays and partitions ---------------

struct FaultRun {
  std::vector<obs::QueryAttribution> attributions;
  std::vector<int> degradation;  ///< per query, from the master's Result
};

/// Compact chaos-style harness: k nodes under DES, the master reaching the
/// LAST worker through a FaultyChannel (delay faults advance the master's
/// virtual clock, like the chaos scenario driver).
FaultRun run_with_faulty_last_worker(const net::FaultProfile& profile,
                                     double worker_timeout_s, int quorum,
                                     int num_queries) {
  const int k = 3;
  const auto test = blob_test_set();
  const auto experts = make_experts(k);
  const sim::ScenarioConfig cfg = des_config();
  auto net = sim::make_sim_net(cfg.scheduler, k, cfg.link, sim::SimNetOptions{});
  sim::SimNet* netp = net.get();

  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<net::CollaborativeWorker>> workers;
  for (int i = 1; i < k; ++i) {
    workers.push_back(std::make_unique<net::CollaborativeWorker>(
        *experts[static_cast<std::size_t>(i)], net->channel(i, 0)));
    workers.back()->set_compute_hook(
        sim::make_compute_hook(*net, i, cfg.device, nullptr));
    workers.back()->set_time_source([netp, i] { return netp->node_time(i); });
    workers.back()->set_trace_node(i);
    threads.push_back(sim::spawn_sim_worker(
        *net, i, [w = workers.back().get()] { w->serve(); }));
  }

  net::DelayFn delay = [netp](double seconds) { netp->advance(0, seconds); };
  auto faulty = std::make_unique<net::FaultyChannel>(
      net->take_channel(0, k - 1), profile, delay);
  faulty->set_time_source([netp] { return netp->node_time(0); });
  std::vector<net::Channel*> worker_channels;
  for (int i = 1; i < k - 1; ++i) worker_channels.push_back(&net->channel(0, i));
  worker_channels.push_back(faulty.get());

  net::CollaborativeMaster master(*experts[0], worker_channels);
  master.set_compute_hook(
      sim::make_compute_hook(*net, 0, cfg.device, nullptr));
  master.set_time_source([netp] { return netp->node_time(0); });
  if (worker_timeout_s > 0.0) master.set_worker_timeout(worker_timeout_s);
  if (quorum > 0) master.set_gather_quorum(quorum);

  FaultRun out;
  auto& recorder = obs::TimelineRecorder::instance();
  recorder.start();
  for (int q = 0; q < num_queries; ++q) {
    recorder.note_arrival(netp->node_time(0));
    const auto res =
        master.infer(sim::query_row_tensor(test, q % static_cast<int>(test.size())));
    out.degradation.push_back(static_cast<int>(res.degradation));
  }
  master.shutdown();
  faulty->close();
  net->close_all();
  net->retire(0);
  for (auto& t : threads) t.join();
  recorder.stop();
  for (const auto& tl : recorder.take()) {
    out.attributions.push_back(obs::attribute(tl));
  }
  net->finish();
  return out;
}

TEST(FaultAttribution, DelayedLinkLandsOutsideCompute) {
  const int queries = 6;
  net::FaultProfile clean;
  clean.seed = determinism_seed();
  const FaultRun control = run_with_faulty_last_worker(clean, 0.0, 0, queries);

  net::FaultProfile delayed = clean;
  delayed.delay_prob = 1.0;  // every send to the last worker held 50 ms
  delayed.delay_min_s = 0.05;
  delayed.delay_max_s = 0.0500001;
  const FaultRun faulted =
      run_with_faulty_last_worker(delayed, 0.0, 0, queries);

  ASSERT_EQ(control.attributions.size(), static_cast<std::size_t>(queries));
  ASSERT_EQ(faulted.attributions.size(), static_cast<std::size_t>(queries));
  for (int q = 0; q < queries; ++q) {
    const auto& base = control.attributions[static_cast<std::size_t>(q)];
    const auto& a = faulted.attributions[static_cast<std::size_t>(q)];
    // Exactness survives the fault.
    EXPECT_EQ(a.e2e_sum(), a.total_ns) << "qid " << a.qid;
    EXPECT_EQ(a.crit_sum(), a.total_ns) << "qid " << a.qid;
    // The held-back request made the last worker (index k-2 = 1) the
    // gather's releaser, and the hold shows up as master serialization on
    // its chain — the delay happened between dispatch and that worker's
    // send completing.
    EXPECT_EQ(a.critical_worker, 1) << "qid " << a.qid;
    EXPECT_GE(ns(a, obs::AttrPhase::broadcast_serial), 50 * kMs)
        << "qid " << a.qid;
    EXPECT_NE(a.dominant_kind(), obs::CritKind::compute) << "qid " << a.qid;
    // The whole added latency lands outside compute: compute-kind
    // nanoseconds match the fault-free run (same experts, same device
    // model) up to clock-rounding, while the total grew by >= the hold.
    EXPECT_GE(a.total_ns, base.total_ns + 50 * kMs) << "qid " << a.qid;
    const std::int64_t compute_delta =
        crit_kind_ns(a, obs::CritKind::compute) -
        crit_kind_ns(base, obs::CritKind::compute);
    EXPECT_LE(std::abs(compute_delta), 1000) << "qid " << a.qid;
    // The undelayed worker is the one non-critical counted lane. Its
    // recorded slack stays small: reply_recv is the master's READ time,
    // and the master only polls after the delayed broadcast completes —
    // so the hold is charged to broadcast_serial above, not double-counted
    // as straggler slack.
    ASSERT_EQ(a.straggler_slack_ns.size(), 1u) << "qid " << a.qid;
    EXPECT_GE(a.straggler_slack_ns[0], 0) << "qid " << a.qid;
    EXPECT_LT(a.straggler_slack_ns[0], 50 * kMs) << "qid " << a.qid;
  }
}

TEST(FaultAttribution, PartitionedWorkerDegradesGatherWithoutBreakingSums) {
  const int queries = 4;
  net::FaultProfile dead;
  dead.seed = determinism_seed();
  dead.partition_send = true;  // requests to the last worker blackholed
  // Quorum 2 of 3 experts (local always counted) with a 20 ms deadline:
  // the partitioned worker never answers, so every gather completes
  // degraded instead of waiting forever.
  const FaultRun r = run_with_faulty_last_worker(dead, 0.02, 2, queries);

  ASSERT_EQ(r.degradation.size(), static_cast<std::size_t>(queries));
  EXPECT_NE(r.degradation[0], 0) << "first gather must not report full";
  ASSERT_EQ(r.attributions.size(), static_cast<std::size_t>(queries));
  for (const auto& a : r.attributions) {
    EXPECT_EQ(a.e2e_sum(), a.total_ns) << "qid " << a.qid;
    EXPECT_EQ(a.crit_sum(), a.total_ns) << "qid " << a.qid;
    // The dead worker cannot be the releaser.
    EXPECT_NE(a.critical_worker, 1) << "qid " << a.qid;
  }

  // The per-level split sees the degraded queries.
  const auto s = load::summarize_attributions(
      r.attributions, 0, load::LatencyHistogram::Config{});
  EXPECT_EQ(s.queries, queries);
  EXPECT_EQ(s.reconciled, s.queries);
  EXPECT_EQ(s.levels[0].queries + s.levels[1].queries + s.levels[2].queries,
            queries);
  EXPECT_GT(s.levels[1].queries + s.levels[2].queries, 0);
}

// ---- registry export: pre-bucketed histograms -------------------------------

TEST(Registry, ObserveNMatchesRepeatedObserve) {
  const std::vector<double> edges{1.0, 10.0, 100.0};
  obs::Histogram a(edges);
  obs::Histogram b(edges);
  for (int i = 0; i < 7; ++i) a.observe(5.0);
  for (int i = 0; i < 3; ++i) a.observe(500.0);  // overflow
  b.observe_n(5.0, 7);
  b.observe_n(500.0, 3);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.bucket_counts(), b.bucket_counts());
  EXPECT_DOUBLE_EQ(a.sum(), b.sum());
  EXPECT_EQ(b.count(), 10);
}

// ---- tracer: flow events ----------------------------------------------------

/// Restores a quiet tracer no matter how the test exits.
struct TracerReset {
  ~TracerReset() { obs::Tracer::instance().reset_for_testing(); }
};

TEST(Tracer, FlowEventsSerializeWithCatIdAndBindingPoint) {
  TracerReset guard;
  auto& tracer = obs::Tracer::instance();
  tracer.reset_for_testing();
  tracer.start();
  double now = 1.0;
  obs::TraceTrack track(0, [&now] { return now; }, "master");
  const std::int64_t id = obs::flow_id(1, 1, 0);
  obs::trace_flow_start("infer", id);
  now = 2.0;
  obs::trace_flow_finish("infer", id);
  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos) << json;
  // Both ends carry the same binding id under the flow category.
  const std::string binding =
      "\"cat\": \"flow\", \"id\": " + std::to_string(id);
  const std::size_t first = json.find(binding);
  ASSERT_NE(first, std::string::npos) << json;
  EXPECT_NE(json.find(binding, first + 1), std::string::npos) << json;
}

TEST(Tracer, FlowIdsFoldEpochSoSequentialRunsNeverCollide) {
  TracerReset guard;
  auto& tracer = obs::Tracer::instance();
  tracer.reset_for_testing();
  tracer.start();
  const std::int64_t before = obs::flow_id(7, 2, 1);
  tracer.begin_epoch("second-run");
  const std::int64_t after = obs::flow_id(7, 2, 1);
  EXPECT_NE(before, after);
  // Same (qid, node, dir) payload in the low bits; only the epoch moved.
  const std::int64_t low_mask = (std::int64_t{1} << 40) - 1;
  EXPECT_EQ(before & low_mask, after & low_mask);
  EXPECT_EQ(after >> 40, (before >> 40) + 1);
}

}  // namespace
}  // namespace teamnet
