// Degradation-plane suite (ctest label: chaos): deadline propagation with
// expired-request drops, quorum gather, hedged dispatch and the per-worker
// circuit breaker, from protocol units over in-proc channels up to full
// run_teamnet_resilience scenarios under the discrete-event scheduler.
//
// CI runs this binary under ASan+UBSan and TSan across several values of
// TEAMNET_CHAOS_SEED.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>

#include "data/blobs.hpp"
#include "net/collab.hpp"
#include "net/fault.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"
#include "nn/mlp.hpp"
#include "sim/scenario.hpp"

namespace teamnet {
namespace {

std::uint64_t chaos_seed() {
  const char* env = std::getenv("TEAMNET_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 42ULL;
}

nn::MlpConfig tiny_mlp() {
  nn::MlpConfig cfg;
  cfg.in_features = 6;
  cfg.num_classes = 3;
  cfg.depth = 2;
  cfg.hidden = 8;
  return cfg;
}

// ---- deadline-budget propagation -------------------------------------------

/// A worker with drop-expired enabled must silently skip an Infer whose
/// propagated deadline already passed on its own clock, and serve one whose
/// deadline is still live — the load-shedding half of the budget plane.
TEST(DeadlinePropagation, WorkerDropsExpiredRequests) {
  Rng rng(17);
  nn::MlpNet expert(tiny_mlp(), rng);
  auto [master_ch, worker_ch] = net::make_inproc_pair();

  net::CollaborativeWorker worker(expert, *worker_ch);
  worker.set_time_source([] { return 100.0; });  // frozen worker clock
  worker.set_drop_expired(true);
  std::thread t([&worker] {
    try {
      worker.serve();
    } catch (const Error&) {
    }
  });

  Tensor x = Tensor::randn({1, 6}, rng);
  auto send_infer = [&](std::int64_t qid, std::int64_t deadline_us) {
    net::Message msg;
    msg.type = net::MsgType::Infer;
    net::InferInfo info;
    info.qid = qid;
    info.deadline_us = deadline_us;
    net::set_infer_info(msg, info);
    msg.tensors = {x};
    master_ch->send(msg.encode());
  };

  send_infer(1, 50'000'000);   // deadline 50s < worker clock 100s: expired
  send_infer(2, 200'000'000);  // deadline 200s: live
  // An unbounded request (legacy frames decode to kNoDeadlineUs) must never
  // be dropped, frozen clock or not.
  send_infer(3, net::kNoDeadlineUs);

  // Only the live requests get replies, in order.
  net::Message first = net::Message::decode(master_ch->recv());
  ASSERT_EQ(first.type, net::MsgType::Result);
  EXPECT_EQ(first.ints[0], 2);
  net::Message second = net::Message::decode(master_ch->recv());
  ASSERT_EQ(second.type, net::MsgType::Result);
  EXPECT_EQ(second.ints[0], 3);

  net::Message shutdown;
  shutdown.type = net::MsgType::Shutdown;
  master_ch->send(shutdown.encode());
  t.join();
  EXPECT_EQ(worker.expired_dropped(), 1);
  EXPECT_EQ(worker.requests_served(), 2);
  EXPECT_EQ(master_ch->recv_timeout(0.0), std::nullopt);  // no reply leaked
}

/// Drop-expired is opt-in: the default worker serves even a stale-stamped
/// frame (its real clock is a different time base than the stamp's).
TEST(DeadlinePropagation, DropExpiredIsOptIn) {
  Rng rng(18);
  nn::MlpNet expert(tiny_mlp(), rng);
  auto [master_ch, worker_ch] = net::make_inproc_pair();
  net::CollaborativeWorker worker(expert, *worker_ch);
  worker.set_time_source([] { return 100.0; });
  std::thread t([&worker] {
    try {
      worker.serve();
    } catch (const Error&) {
    }
  });

  net::Message msg;
  msg.type = net::MsgType::Infer;
  net::InferInfo info;
  info.qid = 7;
  info.deadline_us = 1;  // long past on the worker's clock
  net::set_infer_info(msg, info);
  msg.tensors = {Tensor::randn({1, 6}, rng)};
  master_ch->send(msg.encode());
  net::Message reply = net::Message::decode(master_ch->recv());
  EXPECT_EQ(reply.type, net::MsgType::Result);
  EXPECT_EQ(reply.ints[0], 7);

  net::Message shutdown;
  shutdown.type = net::MsgType::Shutdown;
  master_ch->send(shutdown.encode());
  t.join();
  EXPECT_EQ(worker.expired_dropped(), 0);
}

// ---- duplicate reconciliation ----------------------------------------------

/// Regression: when BOTH replicas of a hedged worker answer the same query
/// while the gather is still pending on another worker, exactly one reply
/// is consumed and the other is reconciled as a duplicate — not accepted a
/// second time, not counted stale. Fleet: B answers fast, C answers only
/// after its backup C' (forced by the hedge firing first), D stays silent
/// to keep the gather pending past both replies.
TEST(DuplicateReconciliation, BothReplicasAnsweringIsReconciledOnce) {
  Rng rng(19);
  nn::MlpNet master_expert(tiny_mlp(), rng);
  auto [b_master, b_worker] = net::make_inproc_pair();
  auto [c_master, c_worker] = net::make_inproc_pair();
  auto [d_master, d_worker] = net::make_inproc_pair();
  auto [cb_master, cb_worker] = net::make_inproc_pair();  // C's backup C'

  auto make_reply = [](const net::Message& request) {
    net::Message reply;
    reply.type = net::MsgType::Result;
    reply.ints = request.ints;  // echo qid/deadline/flags
    Tensor probs({1, 3});
    probs.fill(1.0f / 3.0f);
    Tensor entropy({1});
    entropy.fill(2.0f);
    reply.tensors = {probs, entropy};
    return reply;
  };

  std::atomic<bool> backup_replied{false};
  std::thread b_thread([&] {
    try {
      net::Message request = net::Message::decode(b_worker->recv());
      b_worker->send(make_reply(request).encode());
      (void)b_worker->recv();  // Shutdown
    } catch (const Error&) {
    }
  });
  // C' replies to the hedged dispatch first...
  std::thread cb_thread([&] {
    try {
      net::Message request = net::Message::decode(cb_worker->recv());
      cb_worker->send(make_reply(request).encode());
      backup_replied.store(true);
      (void)cb_worker->recv();  // Shutdown
    } catch (const Error&) {
    }
  });
  // ...and only then does the slow primary C send its own answer, so both
  // replicas' Results for the same query are in flight while D blocks the
  // gather.
  std::thread c_thread([&] {
    try {
      net::Message request = net::Message::decode(c_worker->recv());
      while (!backup_replied.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      c_worker->send(make_reply(request).encode());
      (void)c_worker->recv();  // Shutdown
    } catch (const Error&) {
    }
  });
  std::thread d_thread([&] {
    try {
      (void)d_worker->recv();  // Infer — never answered
      (void)d_worker->recv();  // unreached: D is failed, so close wakes us
    } catch (const Error&) {
    }
  });

  net::CollaborativeMaster master(
      master_expert, {b_master.get(), c_master.get(), d_master.get()});
  master.set_worker_timeout(0.5);
  master.enable_health(net::HealthConfig{});
  // Only C has a backup, so the hedge (after ~15ms of C pending) must pick
  // C — D pending without a backup never hedges.
  master.set_hedging({nullptr, cb_master.get(), nullptr},
                     /*min_delay_s=*/0.01, /*latency_factor=*/1.5);

  auto result = master.infer(Tensor::randn({1, 6}, rng));
  EXPECT_EQ(result.answered, 3);  // local + B + one C replica, never 4
  EXPECT_EQ(master.hedges_sent(), 1);
  EXPECT_EQ(master.hedge_duplicates(), 1);
  EXPECT_EQ(master.stale_replies_discarded(), 0);
  EXPECT_EQ(result.degradation, net::DegradationLevel::quorum);
  EXPECT_EQ(master.failed_workers(), 1);  // D missed the deadline

  master.shutdown();
  b_thread.join();
  c_thread.join();
  d_thread.join();
  cb_thread.join();
}

// ---- hedged dispatch --------------------------------------------------------

/// Partition-then-heal: with the primary partitioned, the hedge to the
/// static backup replica must still complete the query at full strength;
/// after the heal the primary serves again. The backup shares the primary's
/// expert module, so answers are identical either way.
TEST(HedgedDispatch, HedgeWinsUnderPartitionThenHeal) {
  Rng rng(20);
  nn::MlpNet master_expert(tiny_mlp(), rng);
  nn::MlpNet worker_expert(tiny_mlp(), rng);

  auto [primary_raw, primary_worker_ch] = net::make_inproc_pair();
  auto faulty = std::make_unique<net::FaultyChannel>(std::move(primary_raw),
                                                     net::FaultProfile{});
  net::FaultyChannel& link = *faulty;
  auto [backup_master_ch, backup_worker_ch] = net::make_inproc_pair();

  net::CollaborativeWorker primary(worker_expert, *primary_worker_ch);
  net::CollaborativeWorker backup(worker_expert, *backup_worker_ch);
  std::thread primary_thread([&primary] {
    try {
      primary.serve();
    } catch (const Error&) {
    }
  });
  std::thread backup_thread([&backup] {
    try {
      backup.serve();
    } catch (const Error&) {
    }
  });

  net::CollaborativeMaster master(master_expert, {faulty.get()});
  master.set_worker_timeout(2.0);
  master.enable_health(net::HealthConfig{});
  master.set_hedging({backup_master_ch.get()}, /*min_delay_s=*/0.01,
                     /*latency_factor=*/1.5);

  Tensor x = Tensor::randn({1, 6}, rng);

  link.set_partition(true, true);  // primary dark: only the hedge can answer
  auto hedged = master.infer(x);
  EXPECT_EQ(master.hedges_sent(), 1);
  EXPECT_EQ(master.hedge_wins(), 1);
  EXPECT_EQ(hedged.answered, 2);
  EXPECT_EQ(hedged.degradation, net::DegradationLevel::full)
      << "the backup kept the fleet at full strength";

  link.set_partition(false, false);
  auto healed = master.infer(x);
  EXPECT_EQ(healed.predictions, hedged.predictions)
      << "primary and backup serve the same expert";

  master.shutdown();
  primary_thread.join();
  backup_thread.join();
}

// ---- whole-scenario ---------------------------------------------------------

std::vector<std::unique_ptr<nn::MlpNet>> make_experts(int k) {
  std::vector<std::unique_ptr<nn::MlpNet>> experts;
  for (int i = 0; i < k; ++i) {
    nn::MlpConfig cfg;
    cfg.in_features = 8;
    cfg.num_classes = 4;
    cfg.depth = 2;
    cfg.hidden = 12;
    Rng rng(100 + static_cast<std::uint64_t>(i));
    experts.push_back(std::make_unique<nn::MlpNet>(cfg, rng));
  }
  return experts;
}

std::vector<nn::Module*> expert_ptrs(
    const std::vector<std::unique_ptr<nn::MlpNet>>& experts) {
  std::vector<nn::Module*> ptrs;
  for (const auto& e : experts) ptrs.push_back(e.get());
  return ptrs;
}

data::Dataset blobs() {
  data::BlobsConfig cfg;
  cfg.num_samples = 200;
  cfg.num_classes = 4;
  cfg.dims = 8;
  cfg.seed = 21;
  return data::make_blobs(cfg);
}

sim::ScenarioConfig des_config(int num_queries) {
  sim::ScenarioConfig cfg;
  cfg.num_queries = num_queries;
  cfg.link = net::LinkProfile{0.0005, 0.0, 0.0};
  cfg.seed = chaos_seed();
  cfg.scheduler = sim::Scheduler::discrete_event;
  return cfg;
}

/// Every query must land in exactly one degradation bucket, every per-query
/// vector must be complete, and the hedge counters must stay consistent —
/// under drops, duplicates, quorum, hedging and breakers all at once.
TEST(ResilienceScenario, DegradationAccountingIsExhaustive) {
  auto experts = make_experts(3);
  auto test = blobs();
  auto cfg = des_config(20);

  sim::ResilienceConfig res;
  res.faults.seed = chaos_seed();
  res.faults.drop_prob = 0.25;
  res.faults.duplicate_prob = 0.15;
  res.worker_timeout_s = 0.05;
  res.quorum = 2;
  res.hedging = true;

  const auto r = sim::run_teamnet_resilience(expert_ptrs(experts), test, cfg,
                                             res);
  const auto n = static_cast<std::int64_t>(cfg.num_queries);
  EXPECT_EQ(r.full_gathers + r.quorum_gathers + r.local_only_gathers, n);
  ASSERT_EQ(r.latency_ms.size(), static_cast<std::size_t>(n));
  ASSERT_EQ(r.degradation.size(), static_cast<std::size_t>(n));
  ASSERT_EQ(r.correct.size(), static_cast<std::size_t>(n));
  // The per-query vector and the counters must tell the same story.
  std::int64_t full = 0, quorum = 0, local = 0;
  for (int level : r.degradation) {
    if (level == 0) ++full;
    if (level == 1) ++quorum;
    if (level == 2) ++local;
  }
  EXPECT_EQ(full, r.full_gathers);
  EXPECT_EQ(quorum, r.quorum_gathers);
  EXPECT_EQ(local, r.local_only_gathers);
  EXPECT_LE(r.hedge_wins, r.hedges_sent);
  EXPECT_LE(r.hedge_duplicates, r.hedges_sent);
  EXPECT_LE(r.p50_ms, r.p99_ms);
  for (double ms : r.latency_ms) EXPECT_GE(ms, 0.0);
  EXPECT_GT(r.faults_injected, 0);
  EXPECT_EQ(r.scenario.num_nodes, 5);  // master + 2 workers + 2 backups
}

/// With no faults and the quorum set to the full fleet, the polling gather
/// must agree with the legacy sequential gather query for query — same
/// answers, everything at full strength. This pins the refactor: the new
/// code path changes HOW replies are collected, never WHAT is computed.
TEST(ResilienceScenario, FullQuorumMatchesLegacyGatherWithoutFaults) {
  auto experts = make_experts(3);
  auto test = blobs();

  sim::ResilienceConfig quorum_cfg;
  quorum_cfg.worker_timeout_s = 5.0;  // never spent: no faults
  quorum_cfg.quorum = 3;              // == master + both workers
  quorum_cfg.hedging = false;

  sim::ResilienceConfig legacy_cfg = quorum_cfg;
  legacy_cfg.quorum = 0;  // legacy sequential gather

  const auto a = sim::run_teamnet_resilience(expert_ptrs(experts), test,
                                             des_config(12), quorum_cfg);
  const auto b = sim::run_teamnet_resilience(expert_ptrs(experts), test,
                                             des_config(12), legacy_cfg);
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_DOUBLE_EQ(a.scenario.accuracy_pct, b.scenario.accuracy_pct);
  EXPECT_EQ(a.full_gathers, 12);
  EXPECT_EQ(b.full_gathers, 12);
  EXPECT_EQ(a.local_only_gathers + a.quorum_gathers, 0);
  EXPECT_EQ(a.expired_drops, 0);
  EXPECT_EQ(a.breaker_opens, 0);
}

/// The acceptance property: under heavy drop rates the degradation plane
/// (quorum + hedging + breakers) must bound the latency distribution below
/// the full-gather configuration, which burns its whole deadline whenever
/// any reply goes missing.
TEST(ResilienceScenario, QuorumAndHedgingBoundLatencyUnderDrops) {
  auto experts = make_experts(3);
  auto test = blobs();

  sim::ResilienceConfig full;
  full.faults.seed = chaos_seed();
  full.faults.drop_prob = 0.25;
  full.worker_timeout_s = 0.05;
  full.quorum = 0;  // full gather: any missing reply costs the deadline
  full.hedging = false;

  sim::ResilienceConfig degraded = full;
  degraded.quorum = 2;
  degraded.hedging = true;

  const auto slow = sim::run_teamnet_resilience(expert_ptrs(experts), test,
                                                des_config(24), full);
  const auto fast = sim::run_teamnet_resilience(expert_ptrs(experts), test,
                                                des_config(24), degraded);
  ASSERT_GT(slow.faults_injected, 0);
  EXPECT_LT(fast.scenario.latency_ms, slow.scenario.latency_ms);
  // At 25% drops the full gather is all but certain to burn at least one
  // whole deadline (p99 = the SLO), while the escalating hedge rounds
  // retry lost requests well inside it — the acceptance criterion.
  EXPECT_LT(fast.p99_ms, slow.p99_ms);
  EXPECT_LT(fast.p99_ms, full.worker_timeout_s * 1000.0);
  // No p50 comparison: probation can park the full gather in near-zero
  // local-only answers (tiny median, terrible accuracy), so the median is
  // not a meaningful axis between the two modes — the mean and the tail
  // are.
}

/// Two same-config runs must agree on every discrete outcome and every
/// latency bit — the chaos-label twin of the determinism-gate test, kept
/// here so the seed-swept chaos legs cover it too.
TEST(ResilienceScenario, SameSeedSameEverything) {
  auto experts = make_experts(3);
  auto test = blobs();
  auto cfg = des_config(12);

  sim::ResilienceConfig res;
  res.faults.seed = chaos_seed();
  res.faults.drop_prob = 0.2;
  res.faults.duplicate_prob = 0.15;
  res.worker_timeout_s = 0.05;
  res.quorum = 2;
  res.hedging = true;

  const auto a = sim::run_teamnet_resilience(expert_ptrs(experts), test, cfg,
                                             res);
  const auto b = sim::run_teamnet_resilience(expert_ptrs(experts), test, cfg,
                                             res);
  EXPECT_EQ(a.latency_ms, b.latency_ms);  // exact: virtual time, no tolerance
  EXPECT_EQ(a.degradation, b.degradation);
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_EQ(a.full_gathers, b.full_gathers);
  EXPECT_EQ(a.quorum_gathers, b.quorum_gathers);
  EXPECT_EQ(a.local_only_gathers, b.local_only_gathers);
  EXPECT_EQ(a.hedges_sent, b.hedges_sent);
  EXPECT_EQ(a.hedge_wins, b.hedge_wins);
  EXPECT_EQ(a.hedge_duplicates, b.hedge_duplicates);
  EXPECT_EQ(a.breaker_opens, b.breaker_opens);
  EXPECT_EQ(a.rejoins, b.rejoins);
  EXPECT_EQ(a.stale_replies, b.stale_replies);
  EXPECT_EQ(a.expired_drops, b.expired_drops);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.scenario.schedule_digest, b.scenario.schedule_digest);
}

}  // namespace
}  // namespace teamnet
