// HealthTracker units (DESIGN.md §13): EWMA math, the
// closed/half_open/open breaker state machine, and cooldown timing — all
// against a hand-advanced fake TimeSource, so every transition is exact.
#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "net/health.hpp"

namespace teamnet {
namespace {

/// Hand-advanced clock shared with the tracker under test.
struct FakeClock {
  double now = 0.0;
  net::TimeSource source() {
    return [this] { return now; };
  }
};

net::HealthConfig default_config() { return net::HealthConfig{}; }

TEST(HealthTracker, StartsClosedWithSeedLatency) {
  net::HealthTracker tracker(3);
  for (int w = 0; w < 3; ++w) {
    EXPECT_EQ(tracker.state(w), net::BreakerState::closed);
    EXPECT_TRUE(tracker.allow_dispatch(w));
    EXPECT_DOUBLE_EQ(tracker.expected_latency_s(w),
                     default_config().initial_latency_s);
    EXPECT_DOUBLE_EQ(tracker.failure_rate(w), 0.0);
  }
  EXPECT_EQ(tracker.breaker_opens(), 0);
  EXPECT_EQ(tracker.num_workers(), 3);
}

TEST(HealthTracker, LatencyEwmaSeedsThenSmooths) {
  net::HealthTracker tracker(1);
  tracker.record_success(0, 0.100);
  // First sample seeds the EWMA outright (no pull toward the prior).
  EXPECT_DOUBLE_EQ(tracker.expected_latency_s(0), 0.100);
  tracker.record_success(0, 0.200);
  const double alpha = default_config().latency_alpha;
  EXPECT_DOUBLE_EQ(tracker.expected_latency_s(0),
                   0.100 + alpha * (0.200 - 0.100));
}

TEST(HealthTracker, OpensAfterThreeConsecutiveFailures) {
  // With failure_alpha 0.4 / threshold 0.7 the score walks 0.4, 0.64,
  // 0.784 — the documented three-strikes default.
  net::HealthTracker tracker(2);
  tracker.record_failure(0);
  EXPECT_EQ(tracker.state(0), net::BreakerState::closed);
  tracker.record_failure(0);
  EXPECT_EQ(tracker.state(0), net::BreakerState::closed);
  tracker.record_failure(0);
  EXPECT_EQ(tracker.state(0), net::BreakerState::open);
  EXPECT_FALSE(tracker.allow_dispatch(0));
  EXPECT_EQ(tracker.breaker_opens(), 1);
  // Per-worker isolation: worker 1 is untouched.
  EXPECT_EQ(tracker.state(1), net::BreakerState::closed);
}

TEST(HealthTracker, SuccessDecaysFailureScore) {
  net::HealthTracker tracker(1);
  tracker.record_failure(0);
  tracker.record_failure(0);
  const double before = tracker.failure_rate(0);
  tracker.record_success(0, 0.01);
  EXPECT_DOUBLE_EQ(tracker.failure_rate(0),
                   before * (1.0 - default_config().failure_alpha));
  // Interleaved successes keep the score under the threshold forever.
  for (int i = 0; i < 50; ++i) {
    tracker.record_failure(0);
    tracker.record_success(0, 0.01);
  }
  EXPECT_EQ(tracker.state(0), net::BreakerState::closed);
  EXPECT_EQ(tracker.breaker_opens(), 0);
}

TEST(HealthTracker, ProbeBeforeCooldownStaysOpen) {
  FakeClock clock;
  net::HealthConfig config;
  config.cooldown_s = 1.0;
  net::HealthTracker tracker(1, config, clock.source());
  for (int i = 0; i < 3; ++i) tracker.record_failure(0);
  ASSERT_EQ(tracker.state(0), net::BreakerState::open);

  clock.now = 0.5;  // cooldown not yet elapsed
  tracker.record_probe_success(0);
  EXPECT_EQ(tracker.state(0), net::BreakerState::open);
  EXPECT_FALSE(tracker.allow_dispatch(0));

  clock.now = 1.0;  // exactly the cooldown: admitted to half_open
  tracker.record_probe_success(0);
  EXPECT_EQ(tracker.state(0), net::BreakerState::half_open);
  EXPECT_TRUE(tracker.allow_dispatch(0));
}

TEST(HealthTracker, HalfOpenTrialSuccessClosesFailureReopens) {
  FakeClock clock;
  net::HealthConfig config;
  config.cooldown_s = 0.1;
  net::HealthTracker tracker(2, config, clock.source());

  auto open_then_half_open = [&](int w) {
    while (tracker.state(w) != net::BreakerState::open) {
      tracker.record_failure(w);
    }
    clock.now += config.cooldown_s;
    tracker.record_probe_success(w);
    ASSERT_EQ(tracker.state(w), net::BreakerState::half_open);
  };

  open_then_half_open(0);
  tracker.record_success(0, 0.02);
  EXPECT_EQ(tracker.state(0), net::BreakerState::closed);

  open_then_half_open(1);
  const std::int64_t opens_before = tracker.breaker_opens();
  tracker.record_failure(1);  // trial failed: straight back to open
  EXPECT_EQ(tracker.state(1), net::BreakerState::open);
  EXPECT_EQ(tracker.breaker_opens(), opens_before + 1);
}

TEST(HealthTracker, StragglerReplyClosesOpenBreakerEarly) {
  net::HealthTracker tracker(1);
  for (int i = 0; i < 3; ++i) tracker.record_failure(0);
  ASSERT_EQ(tracker.state(0), net::BreakerState::open);
  // A real reply (e.g. a straggler from a pre-failure dispatch) is direct
  // evidence of health and closes the breaker without the probe dance.
  tracker.record_success(0, 0.03);
  EXPECT_EQ(tracker.state(0), net::BreakerState::closed);
}

TEST(HealthTracker, RejectsInvalidConfigAndIndices) {
  net::HealthConfig bad_alpha;
  bad_alpha.latency_alpha = 0.0;
  EXPECT_THROW(net::HealthTracker(1, bad_alpha), Error);
  net::HealthConfig bad_threshold;
  bad_threshold.open_threshold = 1.5;
  EXPECT_THROW(net::HealthTracker(1, bad_threshold), Error);

  net::HealthTracker tracker(2);
  EXPECT_THROW(tracker.state(-1), Error);
  EXPECT_THROW(tracker.record_failure(2), Error);
}

TEST(HealthTracker, BreakerTransitionsAreDeterministicInVirtualTime) {
  // The same scripted event sequence against the same fake clock must land
  // in the same state — the property the DES scenarios lean on.
  auto run_once = [] {
    FakeClock clock;
    net::HealthConfig config;
    config.cooldown_s = 0.05;
    net::HealthTracker tracker(1, config, clock.source());
    for (int i = 0; i < 3; ++i) tracker.record_failure(0);
    clock.now = 0.06;
    tracker.record_probe_success(0);
    tracker.record_success(0, 0.015);
    return std::make_tuple(tracker.state(0), tracker.failure_rate(0),
                           tracker.expected_latency_s(0),
                           tracker.breaker_opens());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace teamnet
