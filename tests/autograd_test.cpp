// Gradient correctness: every autograd op is checked against central finite
// differences, plus graph-mechanics tests (accumulation, reuse, broadcast).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hpp"
#include "tensor/autograd.hpp"
#include "tensor/ops.hpp"

namespace teamnet {
namespace {

/// Central finite-difference check: builds the graph twice per perturbed
/// element and compares d(scalar out)/d(input) with the autograd gradient.
void expect_grad_matches_fd(
    const std::function<ag::Var(const ag::Var&)>& fn, Tensor input,
    float eps = 1e-3f, float tol = 2e-2f) {
  ag::Var x(input.clone(), true);
  ag::Var out = fn(x);
  ASSERT_EQ(out.value().numel(), 1) << "fd check needs a scalar output";
  ag::backward(out);
  ASSERT_TRUE(x.has_grad());
  const Tensor grad = x.grad().clone();

  for (std::int64_t i = 0; i < input.numel(); ++i) {
    Tensor plus = input.clone();
    plus[i] += eps;
    Tensor minus = input.clone();
    minus[i] -= eps;
    const float f_plus = fn(ag::Var(plus, false)).value()[0];
    const float f_minus = fn(ag::Var(minus, false)).value()[0];
    const float fd = (f_plus - f_minus) / (2.0f * eps);
    EXPECT_NEAR(grad[i], fd, tol + tol * std::abs(fd))
        << "element " << i;
  }
}

TEST(Autograd, AddGrad) {
  Rng rng(1);
  expect_grad_matches_fd(
      [](const ag::Var& x) { return ag::sum_all(ag::add(x, x)); },
      Tensor::randn({3, 2}, rng));
}

TEST(Autograd, MulGradWithConstant) {
  Rng rng(2);
  Tensor c = Tensor::randn({3, 2}, rng);
  expect_grad_matches_fd(
      [&](const ag::Var& x) {
        return ag::sum_all(ag::mul(x, ag::constant(c.clone())));
      },
      Tensor::randn({3, 2}, rng));
}

TEST(Autograd, DivGrad) {
  Rng rng(3);
  Tensor denom({2, 2}, {1.5f, 2.0f, -1.2f, 0.8f});
  expect_grad_matches_fd(
      [&](const ag::Var& x) {
        return ag::sum_all(ag::div(x, ag::constant(denom.clone())));
      },
      Tensor::randn({2, 2}, rng));
  // And through the denominator.
  Tensor numer({2, 2}, {1.0f, -2.0f, 3.0f, 0.5f});
  expect_grad_matches_fd(
      [&](const ag::Var& x) {
        return ag::sum_all(ag::div(ag::constant(numer.clone()), x));
      },
      Tensor({2, 2}, {1.5f, 2.0f, -1.2f, 0.8f}));
}

TEST(Autograd, RowBroadcastGrad) {
  Rng rng(4);
  Tensor big = Tensor::randn({4, 3}, rng);
  expect_grad_matches_fd(
      [&](const ag::Var& x) {
        return ag::sum_all(ag::square(ag::mul(ag::constant(big.clone()), x)));
      },
      Tensor::randn({1, 3}, rng));
}

TEST(Autograd, ColBroadcastGrad) {
  Rng rng(5);
  Tensor big = Tensor::randn({4, 3}, rng);
  expect_grad_matches_fd(
      [&](const ag::Var& x) {
        return ag::sum_all(ag::mul(ag::constant(big.clone()), x));
      },
      Tensor::randn({4, 1}, rng));
}

TEST(Autograd, ScalarBroadcastGrad) {
  Rng rng(6);
  Tensor big = Tensor::randn({3, 3}, rng);
  expect_grad_matches_fd(
      [&](const ag::Var& x) {
        return ag::sum_all(ag::mul(ag::constant(big.clone()), x));
      },
      Tensor::randn({1}, rng));
}

TEST(Autograd, UnaryOpsGrad) {
  Rng rng(7);
  expect_grad_matches_fd(
      [](const ag::Var& x) { return ag::sum_all(ag::exp(x)); },
      Tensor::randn({2, 3}, rng, 0.0f, 0.5f));
  expect_grad_matches_fd(
      [](const ag::Var& x) { return ag::sum_all(ag::log(x)); },
      Tensor::uniform({2, 3}, rng, 0.5f, 2.0f));
  expect_grad_matches_fd(
      [](const ag::Var& x) { return ag::sum_all(ag::tanh(x)); },
      Tensor::randn({2, 3}, rng));
  expect_grad_matches_fd(
      [](const ag::Var& x) { return ag::sum_all(ag::square(x)); },
      Tensor::randn({2, 3}, rng));
  // relu/abs away from the kink
  expect_grad_matches_fd(
      [](const ag::Var& x) { return ag::sum_all(ag::relu(x)); },
      Tensor({4}, {-1.0f, -0.3f, 0.4f, 2.0f}));
  expect_grad_matches_fd(
      [](const ag::Var& x) { return ag::sum_all(ag::abs(x)); },
      Tensor({4}, {-1.0f, -0.3f, 0.4f, 2.0f}));
}

TEST(Autograd, MatmulGradBothSides) {
  Rng rng(8);
  Tensor b = Tensor::randn({3, 2}, rng);
  expect_grad_matches_fd(
      [&](const ag::Var& x) {
        return ag::sum_all(ag::square(ag::matmul(x, ag::constant(b.clone()))));
      },
      Tensor::randn({2, 3}, rng));
  Tensor a = Tensor::randn({2, 3}, rng);
  expect_grad_matches_fd(
      [&](const ag::Var& x) {
        return ag::sum_all(ag::square(ag::matmul(ag::constant(a.clone()), x)));
      },
      Tensor::randn({3, 2}, rng));
}

TEST(Autograd, SoftmaxRowsGrad) {
  Rng rng(9);
  Tensor weights = Tensor::randn({2, 4}, rng);
  expect_grad_matches_fd(
      [&](const ag::Var& x) {
        return ag::sum_all(
            ag::mul(ag::softmax_rows(x), ag::constant(weights.clone())));
      },
      Tensor::randn({2, 4}, rng));
}

TEST(Autograd, LogSoftmaxGrad) {
  Rng rng(10);
  Tensor weights = Tensor::randn({2, 4}, rng);
  expect_grad_matches_fd(
      [&](const ag::Var& x) {
        return ag::sum_all(
            ag::mul(ag::log_softmax_rows(x), ag::constant(weights.clone())));
      },
      Tensor::randn({2, 4}, rng));
}

TEST(Autograd, NllLossGrad) {
  Rng rng(11);
  const std::vector<int> labels = {2, 0, 1};
  expect_grad_matches_fd(
      [&](const ag::Var& x) {
        return ag::nll_loss(ag::log_softmax_rows(x), labels);
      },
      Tensor::randn({3, 4}, rng));
}

TEST(Autograd, SumAxisGrad) {
  Rng rng(12);
  expect_grad_matches_fd(
      [](const ag::Var& x) {
        return ag::sum_all(ag::square(ag::sum_axis(x, 0)));
      },
      Tensor::randn({3, 2}, rng));
  expect_grad_matches_fd(
      [](const ag::Var& x) {
        return ag::sum_all(ag::square(ag::sum_axis(x, 1)));
      },
      Tensor::randn({3, 2}, rng));
}

TEST(Autograd, ReshapeGrad) {
  Rng rng(13);
  expect_grad_matches_fd(
      [](const ag::Var& x) {
        return ag::sum_all(ag::square(ag::reshape(x, {2, 6})));
      },
      Tensor::randn({3, 4}, rng));
}

TEST(Autograd, Conv2dGradInputWeightBias) {
  Rng rng(14);
  Tensor w = Tensor::randn({2 * 3 * 3, 2}, rng, 0.0f, 0.3f);
  Tensor b = Tensor::randn({2}, rng);
  // input gradient
  expect_grad_matches_fd(
      [&](const ag::Var& x) {
        return ag::sum_all(ag::square(
            ag::conv2d(x, ag::constant(w.clone()), ag::constant(b.clone()), 3,
                       1, 1)));
      },
      Tensor::randn({1, 2, 4, 4}, rng, 0.0f, 0.5f), 1e-2f, 5e-2f);
  // weight gradient
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng, 0.0f, 0.5f);
  expect_grad_matches_fd(
      [&](const ag::Var& wv) {
        return ag::sum_all(ag::square(
            ag::conv2d(ag::constant(x.clone()), wv, ag::constant(b.clone()), 3,
                       1, 1)));
      },
      w.clone(), 1e-2f, 5e-2f);
  // bias gradient
  expect_grad_matches_fd(
      [&](const ag::Var& bv) {
        return ag::sum_all(ag::square(
            ag::conv2d(ag::constant(x.clone()), ag::constant(w.clone()), bv, 3,
                       1, 1)));
      },
      b.clone(), 1e-2f, 5e-2f);
}

TEST(Autograd, StridedConvGrad) {
  Rng rng(15);
  Tensor w = Tensor::randn({1 * 3 * 3, 2}, rng, 0.0f, 0.3f);
  expect_grad_matches_fd(
      [&](const ag::Var& x) {
        return ag::sum_all(ag::square(
            ag::conv2d(x, ag::constant(w.clone()), ag::Var(), 3, 2, 1)));
      },
      Tensor::randn({1, 1, 5, 5}, rng, 0.0f, 0.5f), 1e-2f, 5e-2f);
}

TEST(Autograd, GlobalAvgPoolGrad) {
  Rng rng(16);
  expect_grad_matches_fd(
      [](const ag::Var& x) {
        return ag::sum_all(ag::square(ag::global_avg_pool(x)));
      },
      Tensor::randn({2, 3, 2, 2}, rng));
}

TEST(Autograd, ShakeCombineRoutesGradByBeta) {
  Tensor a({2}, {1, 2});
  Tensor bt({2}, {3, 4});
  ag::Var va(a, true), vb(bt, true);
  ag::Var out = ag::sum_all(ag::shake_combine(va, vb, 0.3f, 0.7f));
  // forward uses alpha
  EXPECT_NEAR(out.value()[0], 0.3f * 3 + 0.7f * 7, 1e-5f);
  ag::backward(out);
  // backward uses beta
  EXPECT_FLOAT_EQ(va.grad()[0], 0.7f);
  EXPECT_FLOAT_EQ(vb.grad()[0], 0.3f);
}

TEST(Autograd, GradAccumulatesWhenVarReused) {
  ag::Var x(Tensor({1}, {3.0f}), true);
  ag::Var out = ag::sum_all(ag::mul(x, x));  // x^2
  ag::backward(out);
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
}

TEST(Autograd, GradsAccumulateAcrossBackwardCalls) {
  ag::Var x(Tensor({1}, {1.0f}), true);
  ag::backward(ag::sum_all(ag::mul_scalar(x, 2.0f)));
  ag::backward(ag::sum_all(ag::mul_scalar(x, 3.0f)));
  EXPECT_FLOAT_EQ(x.grad()[0], 5.0f);
  x.zero_grad();
  EXPECT_FALSE(x.has_grad());
}

TEST(Autograd, ConstantsReceiveNoGrad) {
  ag::Var c = ag::constant(Tensor({1}, {2.0f}));
  ag::Var x(Tensor({1}, {3.0f}), true);
  ag::backward(ag::sum_all(ag::mul(c, x)));
  EXPECT_FALSE(c.has_grad());
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(Autograd, BackwardRequiresScalarRoot) {
  ag::Var x(Tensor({2}, {1, 2}), true);
  EXPECT_THROW(ag::backward(ag::mul_scalar(x, 2.0f)), InvariantError);
}

TEST(Autograd, DiamondGraphAccumulatesBothPaths) {
  // out = x*x + 3x: d/dx = 2x + 3.
  ag::Var x(Tensor({1}, {5.0f}), true);
  ag::Var out =
      ag::sum_all(ag::add(ag::mul(x, x), ag::mul_scalar(x, 3.0f)));
  ag::backward(out);
  EXPECT_FLOAT_EQ(x.grad()[0], 13.0f);
}

}  // namespace
}  // namespace teamnet
