// Failure injection for the collaborative protocol: dead workers, wedged
// workers (timeouts), closed TCP peers — the master must degrade to the
// surviving experts, never hang or crash.
#include <gtest/gtest.h>

#include <cstdio>
#include <future>
#include <thread>

#include "common/logging.hpp"
#include "net/collab.hpp"
#include "net/fault.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"
#include "nn/mlp.hpp"

namespace teamnet {
namespace {

nn::MlpConfig tiny_mlp() {
  nn::MlpConfig cfg;
  cfg.in_features = 6;
  cfg.num_classes = 3;
  cfg.depth = 2;
  cfg.hidden = 8;
  return cfg;
}

TEST(ChannelTimeout, InprocTimesOutThenDelivers) {
  auto [a, b] = net::make_inproc_pair();
  EXPECT_EQ(a->recv_timeout(0.02), std::nullopt);
  b->send("late");
  auto got = a->recv_timeout(0.5);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "late");
}

TEST(ChannelTimeout, TcpTimesOutThenDelivers) {
  net::TcpListener listener(0);
  auto client_fut = std::async(std::launch::async, [&] {
    return net::tcp_connect("127.0.0.1", listener.port());
  });
  auto server = listener.accept();
  auto client = client_fut.get();

  EXPECT_EQ(server->recv_timeout(0.05), std::nullopt);
  client->send("hello");
  auto got = server->recv_timeout(1.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "hello");
}

TEST(FaultTolerance, WedgedWorkerIsTimedOutAndExcluded) {
  Rng rng(1);
  nn::MlpNet master_expert(tiny_mlp(), rng);
  nn::MlpNet live_expert(tiny_mlp(), rng);

  // Worker 1 serves normally; worker 2 never answers (wedged).
  auto [m1, w1] = net::make_inproc_pair();
  auto [m2, w2] = net::make_inproc_pair();
  net::CollaborativeWorker live(live_expert, *w1);
  std::thread live_thread([&live] { live.serve(); });

  net::CollaborativeMaster master(master_expert, {m1.get(), m2.get()});
  master.set_worker_timeout(0.05);

  Tensor x = Tensor::randn({2, 6}, rng);
  auto result = master.infer(x);
  EXPECT_EQ(result.predictions.size(), 2u);
  EXPECT_EQ(master.failed_workers(), 1);
  EXPECT_TRUE(master.worker_alive(0));
  EXPECT_FALSE(master.worker_alive(1));
  // Only nodes 0 (master) and 1 (live worker) can win.
  for (int chosen : result.chosen) EXPECT_NE(chosen, 2);

  // A second query must not wait on the dead worker at all.
  auto again = master.infer(x);
  EXPECT_EQ(again.predictions.size(), 2u);
  EXPECT_EQ(master.failed_workers(), 1);

  master.shutdown();
  live_thread.join();
  // The wedged worker's queue got the first Infer but no Shutdown after
  // being marked failed.
}

TEST(FaultTolerance, ClosedTcpPeerIsMarkedFailedNotFatal) {
  Rng rng(2);
  nn::MlpNet master_expert(tiny_mlp(), rng);
  nn::MlpNet worker_expert(tiny_mlp(), rng);

  net::TcpListener listener(0);
  std::thread worker_thread([&] {
    auto channel = net::tcp_connect("127.0.0.1", listener.port());
    // Serve exactly one request, then drop the connection abruptly.
    net::Message request = net::Message::decode(channel->recv());
    net::Message reply;
    reply.type = net::MsgType::Result;
    reply.ints = request.ints;  // echo the query id or the reply is stale
    Tensor probs({request.tensors[0].dim(0), 3});
    probs.fill(1.0f / 3.0f);
    Tensor entropy({request.tensors[0].dim(0)});
    entropy.fill(5.0f);  // very uncertain — master should win selection
    reply.tensors = {probs, entropy};
    channel->send(reply.encode());
    // channel destructor closes the socket here
  });
  auto channel = listener.accept();

  net::CollaborativeMaster master(master_expert, {channel.get()});
  master.set_worker_timeout(1.0);
  Tensor x = Tensor::randn({1, 6}, rng);

  auto first = master.infer(x);
  EXPECT_EQ(master.failed_workers(), 0);
  worker_thread.join();

  // Peer is gone now: the next query must degrade to master-only.
  auto second = master.infer(x);
  EXPECT_EQ(second.predictions.size(), 1u);
  EXPECT_EQ(second.chosen[0], 0);
  EXPECT_EQ(master.failed_workers(), 1);
  master.shutdown();  // must not throw with a dead worker
}

TEST(FaultTolerance, AllWorkersDeadStillAnswers) {
  Rng rng(3);
  nn::MlpNet master_expert(tiny_mlp(), rng);
  auto [m1, w1] = net::make_inproc_pair();
  auto [m2, w2] = net::make_inproc_pair();

  net::CollaborativeMaster master(master_expert, {m1.get(), m2.get()});
  master.set_worker_timeout(0.02);
  Tensor x = Tensor::randn({3, 6}, rng);
  auto result = master.infer(x);
  EXPECT_EQ(master.failed_workers(), 2);
  for (int chosen : result.chosen) EXPECT_EQ(chosen, 0);
  EXPECT_EQ(result.predictions.size(), 3u);
}

TEST(FaultTolerance, ChosenIndexStillNamesGlobalNode) {
  // With worker 1 (index 0) dead, a win by the second worker must still be
  // reported as node 2, not renumbered.
  Rng rng(4);
  nn::MlpNet master_expert(tiny_mlp(), rng);
  nn::MlpNet confident(tiny_mlp(), rng);
  // Make the surviving worker extremely confident so it always wins.
  for (auto& p : confident.parameters()) {
    for (auto& v : p.mutable_value().values()) v *= 20.0f;
  }

  auto [m1, w1] = net::make_inproc_pair();
  auto [m2, w2] = net::make_inproc_pair();
  net::CollaborativeWorker worker(confident, *w2);
  std::thread worker_thread([&worker] { worker.serve(); });

  net::CollaborativeMaster master(master_expert, {m1.get(), m2.get()});
  master.set_worker_timeout(0.05);
  Tensor x = Tensor::full({1, 6}, 1.0f);
  auto result = master.infer(x);
  EXPECT_FALSE(master.worker_alive(0));
  EXPECT_TRUE(master.worker_alive(1));
  EXPECT_EQ(result.chosen[0], 2) << "global node index must be preserved";
  master.shutdown();
  worker_thread.join();
}

TEST(FaultTolerance, WorkerAliveBoundsChecked) {
  Rng rng(5);
  nn::MlpNet master_expert(tiny_mlp(), rng);
  auto [m1, w1] = net::make_inproc_pair();
  net::CollaborativeMaster master(master_expert, {m1.get()});

  EXPECT_TRUE(master.worker_alive(0));
  EXPECT_THROW(master.worker_alive(-1), InvariantError);
  EXPECT_THROW(master.worker_alive(1), InvariantError);
}

TEST(FaultTolerance, ShutdownClosesChannelsSoWorkerThreadsJoin) {
  Rng rng(6);
  nn::MlpNet master_expert(tiny_mlp(), rng);
  nn::MlpNet live_expert(tiny_mlp(), rng);
  nn::MlpNet mute_expert(tiny_mlp(), rng);

  auto [m1, w1] = net::make_inproc_pair();
  auto [m2_raw, w2] = net::make_inproc_pair();
  // The master is deaf to worker 2: its replies vanish, so it gets marked
  // failed while its serving thread keeps blocking on the next request.
  net::FaultProfile deaf;
  deaf.partition_recv = true;
  auto m2 = net::make_faulty_channel(std::move(m2_raw), deaf);

  net::CollaborativeWorker live(live_expert, *w1);
  net::CollaborativeWorker mute(mute_expert, *w2);
  std::thread live_thread([&live] { live.serve(); });
  std::thread mute_thread([&mute] {
    try {
      mute.serve();
    } catch (const NetworkError&) {
      // expected: the master closes the channel on shutdown
    }
  });

  net::CollaborativeMaster master(master_expert, {m1.get(), m2.get()});
  // Only the mute worker spends this; roomy enough that a loaded CI box
  // cannot time out the live one too.
  master.set_worker_timeout(0.5);
  Tensor x = Tensor::randn({2, 6}, rng);
  auto result = master.infer(x);
  EXPECT_EQ(result.predictions.size(), 2u);
  EXPECT_EQ(master.failed_workers(), 1);
  EXPECT_FALSE(master.worker_alive(1));

  // Shutdown must close EVERY worker channel — the failed one included —
  // or the mute worker's thread would block in recv forever (this join
  // hangs the test on regression).
  master.shutdown();
  live_thread.join();
  mute_thread.join();
  EXPECT_EQ(mute.requests_served(), 1);
}

TEST(ChannelTimeout, BaseFallbackWarnsOncePerProcess) {
  // A Channel subclass without timeout support falls back to blocking
  // recv() and must say so — once, not per call.
  class NoTimeoutChannel final : public net::Channel {
   public:
    void send(std::string) override {}
    std::string recv() override { return "payload"; }
  };

  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  log::set_sink(sink);
  NoTimeoutChannel channel;
  EXPECT_EQ(channel.recv_timeout(0.25), "payload");
  EXPECT_EQ(channel.recv_timeout(0.25), "payload");
  log::set_sink(nullptr);

  std::fflush(sink);
  std::rewind(sink);
  std::string captured(1 << 12, '\0');
  captured.resize(std::fread(captured.data(), 1, captured.size(), sink));
  std::fclose(sink);

  int warnings = 0;
  for (std::size_t at = captured.find("no timeout support");
       at != std::string::npos;
       at = captured.find("no timeout support", at + 1)) {
    ++warnings;
  }
  EXPECT_EQ(warnings, 1) << captured;
}

}  // namespace
}  // namespace teamnet
