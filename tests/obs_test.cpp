// Observability layer tests (DESIGN.md §10): metrics registry semantics,
// tracer span nesting/ordering in the serialized Chrome trace JSON, the
// fail-fast output-path validation, and — under the `determinism` ctest
// label carried by this binary — byte-identical traces from two same-seed
// discrete-event scenario runs.
//
// The registry tests deliberately avoid MetricsRegistry::reset_for_testing
// around scenario runs: the transport layer caches counter references for
// the process lifetime, so resetting after a scenario has run would dangle
// them. Unique metric names per test give the same isolation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "data/blobs.hpp"
#include "nn/mlp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/scenario.hpp"

namespace teamnet {
namespace {

// ---- metrics registry -------------------------------------------------------

TEST(Metrics, CounterAddAndIncrement) {
  obs::Counter counter;
  EXPECT_EQ(counter.total(), 0);
  counter.increment();
  counter.add(41);
  EXPECT_EQ(counter.total(), 42);
}

TEST(Metrics, ShardedCounterIsExactUnderConcurrentAdds) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.total(), kThreads * kAddsPerThread);
}

TEST(Metrics, GaugeIsLastWriteWins) {
  obs::Gauge gauge;
  EXPECT_EQ(gauge.get(), 0.0);
  gauge.set(3.5);
  gauge.set(-1.25);
  EXPECT_EQ(gauge.get(), -1.25);
}

TEST(Metrics, HistogramBucketsByUpperEdgeWithOverflow) {
  obs::Histogram hist({1.0, 2.0, 4.0});
  hist.observe(0.5);  // <= 1.0
  hist.observe(1.0);  // <= 1.0 (edges are inclusive upper bounds)
  hist.observe(3.0);  // <= 4.0
  hist.observe(9.0);  // overflow
  const auto counts = hist.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 edges + overflow
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(hist.count(), 4);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.0 + 3.0 + 9.0);
}

TEST(Metrics, HistogramRejectsNonIncreasingEdges) {
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), Error);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), Error);
  EXPECT_THROW(obs::Histogram({}), Error);
}

TEST(Metrics, RegistryFindOrCreateReturnsStableInstances) {
  auto& registry = obs::MetricsRegistry::instance();
  obs::Counter& a = registry.counter("obs_test.stable");
  obs::Counter& b = registry.counter("obs_test.stable");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.total(), 7);
}

TEST(Metrics, RegistryRejectsHistogramEdgeMismatch) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.histogram("obs_test.hist_edges", {1.0, 2.0});
  EXPECT_NO_THROW(registry.histogram("obs_test.hist_edges", {1.0, 2.0}));
  EXPECT_THROW(registry.histogram("obs_test.hist_edges", {1.0, 3.0}), Error);
}

TEST(Metrics, SnapshotCarriesEveryKind) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("obs_test.snap_counter").add(3);
  registry.gauge("obs_test.snap_gauge").set(2.5);
  registry.histogram("obs_test.snap_hist", {10.0}).observe(4.0);
  registry.series("obs_test.snap_series").append(1.0);
  registry.series("obs_test.snap_series").append(2.0);

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("obs_test.snap_counter"), 3);
  EXPECT_EQ(snap.gauges.at("obs_test.snap_gauge"), 2.5);
  const auto& hist = snap.histograms.at("obs_test.snap_hist");
  EXPECT_EQ(hist.count, 1);
  ASSERT_EQ(hist.bucket_counts.size(), 2u);
  EXPECT_EQ(hist.bucket_counts[0], 1);
  EXPECT_EQ(snap.series.at("obs_test.snap_series"),
            (std::vector<double>{1.0, 2.0}));
}

TEST(Metrics, WriteMetricsJsonProducesParseableDocument) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("obs_test.json_counter").add(11);
  const std::string path =
      (std::filesystem::temp_directory_path() / "obs_test_metrics.json")
          .string();
  obs::write_metrics_json(path);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string body((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(body.find("\"obs_test.json_counter\": 11"), std::string::npos);
  EXPECT_NE(body.find("\"counters\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Metrics, RequireWritableParentNamesFlagAndPath) {
  EXPECT_NO_THROW(obs::require_writable_parent(
      (std::filesystem::temp_directory_path() / "out.json").string(),
      "--json"));
  EXPECT_NO_THROW(obs::require_writable_parent("relative.json", "--json"));
  try {
    obs::require_writable_parent("/no/such/dir/out.json", "--trace");
    FAIL() << "expected Error for missing parent directory";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--trace"), std::string::npos) << what;
    EXPECT_NE(what.find("/no/such/dir/out.json"), std::string::npos) << what;
  }
}

// ---- tracer -----------------------------------------------------------------

/// Restores a quiet tracer no matter how the test exits.
struct TracerReset {
  ~TracerReset() { obs::Tracer::instance().reset_for_testing(); }
};

TEST(Tracer, InactiveTracerRecordsNothing) {
  TracerReset guard;
  obs::Tracer::instance().reset_for_testing();
  double now = 0.0;
  obs::TraceTrack track(3, [&now] { return now; }, "idle");
  {
    obs::TraceSpan span("ignored");
    obs::trace_instant("also_ignored");
  }
  const std::string json = obs::Tracer::instance().to_json();
  EXPECT_EQ(json.find("ignored"), std::string::npos);
}

TEST(Tracer, SpanNestingAndOrdering) {
  TracerReset guard;
  auto& tracer = obs::Tracer::instance();
  tracer.reset_for_testing();
  tracer.start();

  double now = 1.0;
  obs::TraceTrack track(5, [&now] { return now; }, "proto");
  {
    obs::TraceSpan outer("query");
    now = 2.0;
    {
      obs::TraceSpan inner("broadcast", [] {
        return obs::TraceArgs().arg("qid", 7).arg("bytes", std::size_t{128});
      });
      now = 3.0;
    }
    obs::trace_instant("fault", [] {
      return obs::TraceArgs().arg("what", std::string("drop"));
    });
    now = 4.0;
  }
  obs::trace_counter("tx_bytes", 128.0);

  const std::string json = tracer.to_json();
  // Balanced, properly nested B/E pairs in emission order: B(query),
  // B(broadcast), E, i(fault), E, C(tx_bytes).
  const std::size_t b_query = json.find("\"ts\": 1000000, \"name\": \"query\"");
  const std::size_t b_bcast =
      json.find("\"ts\": 2000000, \"name\": \"broadcast\"");
  const std::size_t e_first = json.find("\"ph\": \"E\"");
  const std::size_t i_fault = json.find("\"name\": \"fault\"");
  const std::size_t e_last = json.rfind("\"ph\": \"E\"");
  const std::size_t c_tx = json.find("\"name\": \"tx_bytes\"");
  ASSERT_NE(b_query, std::string::npos) << json;
  ASSERT_NE(b_bcast, std::string::npos) << json;
  ASSERT_NE(i_fault, std::string::npos) << json;
  ASSERT_NE(c_tx, std::string::npos) << json;
  EXPECT_LT(b_query, b_bcast);
  EXPECT_LT(b_bcast, e_first);
  EXPECT_LT(e_first, i_fault);
  EXPECT_LT(i_fault, e_last);
  EXPECT_LT(e_last, c_tx);
  // Instants are thread-scoped; args and metadata made it through.
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
  EXPECT_NE(json.find("\"qid\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"what\": \"drop\""), std::string::npos);
  EXPECT_NE(json.find("\"proto\""), std::string::npos);
  // Timestamps are µs on the bound clock.
  EXPECT_NE(json.find("\"ts\": 1000000"), std::string::npos);
}

TEST(Tracer, UnboundThreadEmitsNothing) {
  TracerReset guard;
  auto& tracer = obs::Tracer::instance();
  tracer.reset_for_testing();
  tracer.start();
  {
    obs::TraceSpan span("orphan");
    obs::trace_instant("orphan_instant");
  }
  const std::string json = tracer.to_json();
  EXPECT_EQ(json.find("orphan"), std::string::npos);
}

TEST(Tracer, TracksSerializeInIdOrder) {
  TracerReset guard;
  auto& tracer = obs::Tracer::instance();
  tracer.reset_for_testing();
  tracer.start();
  double now = 0.0;
  {
    obs::TraceTrack track(9, [&now] { return now; }, "high");
    obs::trace_instant("on_high");
  }
  {
    obs::TraceTrack track(2, [&now] { return now; }, "low");
    obs::trace_instant("on_low");
  }
  const std::string json = tracer.to_json();
  const std::size_t low = json.find("on_low");
  const std::size_t high = json.find("on_high");
  ASSERT_NE(low, std::string::npos);
  ASSERT_NE(high, std::string::npos);
  EXPECT_LT(low, high);  // track 2 before track 9 despite emission order
}

TEST(Tracer, WriteFailsFastNamingPath) {
  TracerReset guard;
  auto& tracer = obs::Tracer::instance();
  tracer.reset_for_testing();
  tracer.start();
  try {
    tracer.write("/no/such/dir/trace.json");
    FAIL() << "expected Error for unwritable path";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("/no/such/dir/trace.json"),
              std::string::npos);
  }
}

// ---- trace determinism (ctest label: determinism) ---------------------------

std::uint64_t determinism_seed() {
  const char* env = std::getenv("TEAMNET_DETERMINISM_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 123u;
}

/// One full traced discrete-event TeamNet run; returns the serialized trace.
std::string traced_teamnet_json() {
  auto& tracer = obs::Tracer::instance();
  tracer.reset_for_testing();
  tracer.start();

  std::vector<std::unique_ptr<nn::MlpNet>> experts;
  std::vector<nn::Module*> ptrs;
  for (int i = 0; i < 3; ++i) {
    nn::MlpConfig cfg;
    cfg.in_features = 8;
    cfg.num_classes = 4;
    cfg.depth = 2;
    cfg.hidden = 12;
    Rng rng(100 + i);
    experts.push_back(std::make_unique<nn::MlpNet>(cfg, rng));
    ptrs.push_back(experts.back().get());
  }
  data::BlobsConfig bc;
  bc.num_samples = 60;
  bc.num_classes = 4;
  bc.dims = 8;
  bc.seed = 21;
  const data::Dataset test = data::make_blobs(bc);

  sim::ScenarioConfig cfg;
  cfg.num_queries = 8;
  cfg.link = net::LinkProfile{0.0005, 0.0, 0.0};
  cfg.seed = determinism_seed();
  cfg.scheduler = sim::Scheduler::discrete_event;
  sim::run_teamnet(ptrs, test, cfg);

  std::string json = tracer.to_json();
  tracer.reset_for_testing();
  return json;
}

TEST(ObsDeterminism, TraceBytesIdenticalAcrossSameSeedRuns) {
  const std::string a = traced_teamnet_json();
  const std::string b = traced_teamnet_json();
  // Byte-identical, not merely equivalent: DESIGN.md §10's determinism
  // contract is on the serialized file.
  ASSERT_EQ(a, b);
  // And non-trivial: the protocol spans and per-channel byte counters are
  // actually present.
  EXPECT_NE(a.find("\"query\""), std::string::npos);
  EXPECT_NE(a.find("\"broadcast\""), std::string::npos);
  EXPECT_NE(a.find("\"gather\""), std::string::npos);
  EXPECT_NE(a.find("\"argmin\""), std::string::npos);
  EXPECT_NE(a.find("expert_forward"), std::string::npos);
  EXPECT_NE(a.find("tx_bytes"), std::string::npos);
}

}  // namespace
}  // namespace teamnet
