// Message-passing runtime tests: collectives (TEST_P over world sizes) and
// the three partitioned executors, which must be bit-compatible with
// single-node inference.
#include <gtest/gtest.h>

#include <thread>

#include "mpi/communicator.hpp"
#include "mpi/partitioned.hpp"
#include "net/transport.hpp"
#include "nn/mlp.hpp"
#include "nn/shake_shake.hpp"
#include "tensor/ops.hpp"

namespace teamnet {
namespace {

/// Runs `body(rank, comm)` on `n` rank threads over an in-proc mesh.
void run_world(int n, const std::function<void(int, mpi::Communicator&)>& body) {
  // Build a plain (non-sim) mesh of in-proc pairs.
  std::vector<std::vector<net::ChannelPtr>> mesh(static_cast<std::size_t>(n));
  for (auto& row : mesh) row.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      auto [a, b] = net::make_inproc_pair();
      mesh[i][j] = std::move(a);
      mesh[j][i] = std::move(b);
    }
  }
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      std::vector<net::Channel*> peers(static_cast<std::size_t>(n), nullptr);
      for (int p = 0; p < n; ++p) {
        if (p != r) peers[static_cast<std::size_t>(p)] = mesh[r][p].get();
      }
      mpi::Communicator comm(r, peers);
      body(r, comm);
    });
  }
  for (auto& t : threads) t.join();
}

class CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweep, BcastDeliversRootTensor) {
  const int n = GetParam();
  run_world(n, [](int rank, mpi::Communicator& comm) {
    Tensor t = rank == 1 ? Tensor({3}, {1, 2, 3}) : Tensor({1});
    Tensor out = comm.bcast(t, 1);
    EXPECT_TRUE(out.allclose(Tensor({3}, {1, 2, 3})));
  });
}

TEST_P(CollectiveSweep, GatherCollectsInRankOrder) {
  const int n = GetParam();
  run_world(n, [n](int rank, mpi::Communicator& comm) {
    Tensor mine = Tensor::full({2}, static_cast<float>(rank));
    auto all = comm.gather(mine, 0);
    if (rank == 0) {
      ASSERT_EQ(static_cast<int>(all.size()), n);
      for (int r = 0; r < n; ++r) {
        EXPECT_FLOAT_EQ(all[static_cast<std::size_t>(r)][0],
                        static_cast<float>(r));
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectiveSweep, AllgatherGivesEveryoneEverything) {
  const int n = GetParam();
  run_world(n, [n](int rank, mpi::Communicator& comm) {
    auto all = comm.allgather(Tensor::full({1}, static_cast<float>(rank * 10)));
    ASSERT_EQ(static_cast<int>(all.size()), n);
    for (int r = 0; r < n; ++r) {
      EXPECT_FLOAT_EQ(all[static_cast<std::size_t>(r)][0],
                      static_cast<float>(r * 10));
    }
  });
}

TEST_P(CollectiveSweep, AllreduceSumsAcrossRanks) {
  const int n = GetParam();
  run_world(n, [n](int rank, mpi::Communicator& comm) {
    Tensor mine = Tensor::full({4}, static_cast<float>(rank + 1));
    Tensor sum = comm.allreduce_sum(mine);
    const float expected = static_cast<float>(n * (n + 1) / 2);
    for (float v : sum.values()) EXPECT_FLOAT_EQ(v, expected);
  });
}

TEST_P(CollectiveSweep, BarrierCompletes) {
  const int n = GetParam();
  run_world(n, [](int, mpi::Communicator& comm) { comm.barrier(); });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveSweep,
                         ::testing::Values(2, 3, 4, 5));

TEST(Communicator, RejectsBadWiring) {
  auto [a, b] = net::make_inproc_pair();
  // Self channel must be null.
  EXPECT_THROW(mpi::Communicator(0, {a.get(), b.get()}), InvariantError);
  // Peer channel must be present.
  EXPECT_THROW(mpi::Communicator(0, {nullptr, nullptr}), InvariantError);
}

class PartitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSweep, MpiMatrixMatchesSingleNodeMlp) {
  const int n = GetParam();
  Rng rng(41);
  nn::MlpConfig cfg;
  cfg.in_features = 20;
  cfg.num_classes = 5;
  cfg.depth = 4;
  cfg.hidden = 16;
  nn::MlpNet model(cfg, rng);
  model.set_training(false);
  Tensor x = Tensor::randn({3, 20}, rng);
  Tensor expected = model.predict(x);

  run_world(n, [&](int, mpi::Communicator& comm) {
    mpi::MpiMatrixMlp executor(model, comm);
    Tensor got = executor.infer(x);
    EXPECT_TRUE(got.allclose(expected, 1e-4f));
  });
}

TEST_P(PartitionSweep, MpiKernelMatchesSingleNodeShakeShake) {
  const int n = GetParam();
  Rng rng(43);
  nn::ShakeShakeConfig cfg;
  cfg.depth = 8;
  cfg.base_channels = 4;
  cfg.image_size = 8;
  nn::ShakeShakeNet model(cfg, rng);
  model.set_training(false);
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor expected = model.predict(x);

  run_world(n, [&](int, mpi::Communicator& comm) {
    mpi::MpiKernelShakeShake executor(model, comm);
    Tensor got = executor.infer(x);
    EXPECT_TRUE(got.allclose(expected, 1e-4f));
  });
}

INSTANTIATE_TEST_SUITE_P(Nodes, PartitionSweep, ::testing::Values(2, 4));

TEST(MpiBranch, MatchesSingleNodeShakeShake) {
  Rng rng(47);
  nn::ShakeShakeConfig cfg;
  cfg.depth = 8;
  cfg.base_channels = 4;
  cfg.image_size = 8;
  nn::ShakeShakeNet model(cfg, rng);
  model.set_training(false);
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor expected = model.predict(x);

  run_world(2, [&](int, mpi::Communicator& comm) {
    mpi::MpiBranchShakeShake executor(model, comm);
    Tensor got = executor.infer(x);
    EXPECT_TRUE(got.allclose(expected, 1e-4f));
  });
}

TEST(MpiBranch, RequiresTwoRanks) {
  Rng rng(48);
  nn::ShakeShakeConfig cfg;
  cfg.depth = 8;
  cfg.base_channels = 4;
  cfg.image_size = 8;
  nn::ShakeShakeNet model(cfg, rng);
  model.set_training(false);
  run_world(3, [&](int, mpi::Communicator& comm) {
    EXPECT_THROW(mpi::MpiBranchShakeShake(model, comm), InvariantError);
  });
}

TEST(Partitioned, RequiresEvalMode) {
  Rng rng(49);
  nn::MlpConfig cfg;
  cfg.in_features = 4;
  cfg.depth = 2;
  cfg.hidden = 4;
  nn::MlpNet model(cfg, rng);
  model.set_training(true);
  run_world(2, [&](int, mpi::Communicator& comm) {
    EXPECT_THROW(mpi::MpiMatrixMlp(model, comm), InvariantError);
  });
}

TEST(Partitioned, ComputeSharesSumToWholeModel) {
  // Across ranks, partitioned FLOPs for Linear layers must sum to the
  // single-node total (duplicate local work like ReLU is charged per rank).
  Rng rng(51);
  nn::MlpConfig cfg;
  cfg.in_features = 20;
  cfg.num_classes = 5;
  cfg.depth = 3;
  cfg.hidden = 16;
  nn::MlpNet model(cfg, rng);
  model.set_training(false);
  Tensor x = Tensor::randn({1, 20}, rng);

  std::mutex mu;
  std::int64_t total_linear_flops = 0;
  run_world(2, [&](int, mpi::Communicator& comm) {
    std::int64_t mine = 0;
    mpi::MpiMatrixMlp executor(model, comm, [&mine](std::int64_t f) { mine += f; });
    executor.infer(x);
    std::lock_guard<std::mutex> lock(mu);
    total_linear_flops += mine;
  });

  std::int64_t expected = model.analyze({20}).flops;
  // Subtract the ReLU flops once (each rank was charged them separately).
  std::int64_t relu_flops = 2 * cfg.hidden;  // two ReLUs of width hidden
  EXPECT_EQ(total_linear_flops, expected + relu_flops);
}

}  // namespace
}  // namespace teamnet

#include "core/teamnet.hpp"
#include "mpi/decentralized.hpp"
#include "nn/serialize.hpp"

namespace teamnet {
namespace {

TEST(Decentralized, AllRanksAgreeAndMatchCentralizedSelection) {
  // Build 3 distinct experts; decentralized selection must equal the
  // centralized argmin-entropy ensemble on every rank.
  Rng rng(61);
  nn::MlpConfig cfg;
  cfg.in_features = 8;
  cfg.num_classes = 4;
  cfg.depth = 2;
  cfg.hidden = 12;
  std::vector<nn::ModulePtr> experts;
  for (int i = 0; i < 3; ++i) {
    experts.push_back(std::make_unique<nn::MlpNet>(cfg, rng));
    experts.back()->set_training(false);
  }
  Tensor x = Tensor::randn({6, 8}, rng);

  // Centralized reference.
  std::vector<nn::ModulePtr> copy;
  {
    Rng rng2(61);
    for (int i = 0; i < 3; ++i) {
      auto e = std::make_unique<nn::MlpNet>(cfg, rng2);
      nn::deserialize_parameters(nn::serialize_parameters(*experts[i]), *e);
      copy.push_back(std::move(e));
    }
  }
  core::TeamNetEnsemble ensemble(std::move(copy));
  auto expected = ensemble.infer(x);

  std::mutex mu;
  std::vector<std::vector<int>> per_rank_predictions(3);
  run_world(3, [&](int rank, mpi::Communicator& comm) {
    auto result = mpi::decentralized_infer(
        comm, *experts[static_cast<std::size_t>(rank)], x);
    std::lock_guard<std::mutex> lock(mu);
    per_rank_predictions[static_cast<std::size_t>(rank)] = result.predictions;
    EXPECT_EQ(result.winner, expected.chosen);
  });
  for (const auto& preds : per_rank_predictions) {
    EXPECT_EQ(preds, expected.predictions);
  }
}

TEST(Decentralized, ComputeHookChargesLocalExpertOnly) {
  Rng rng(62);
  nn::MlpConfig cfg;
  cfg.in_features = 8;
  cfg.num_classes = 4;
  cfg.depth = 2;
  cfg.hidden = 12;
  std::vector<nn::ModulePtr> experts;
  for (int i = 0; i < 2; ++i) {
    experts.push_back(std::make_unique<nn::MlpNet>(cfg, rng));
    experts.back()->set_training(false);
  }
  Tensor x = Tensor::randn({5, 8}, rng);
  const std::int64_t expected_flops =
      experts[0]->analyze({8}).flops * x.dim(0);

  run_world(2, [&](int rank, mpi::Communicator& comm) {
    std::int64_t charged = 0;
    mpi::decentralized_infer(comm, *experts[static_cast<std::size_t>(rank)], x,
                             [&charged](std::int64_t f) { charged += f; });
    EXPECT_EQ(charged, expected_flops);
  });
}

}  // namespace
}  // namespace teamnet
