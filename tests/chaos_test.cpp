// Chaos suite (ctest label: chaos): seeded fault injection end to end.
//
// Covers the FaultyChannel decorator in isolation (schedule determinism,
// crash-after-N, duplication, corruption, partition control), the
// protocol-level regressions the query-id/deadline/probation machinery
// exists for (stale replies, shared gather deadline, rejoin), and full
// run_teamnet_chaos determinism: the same seed must reproduce the same
// fault schedule AND the same ScenarioResult.
//
// CI runs this binary under ASan+UBSan and TSan across several values of
// TEAMNET_CHAOS_SEED; tests read the env var so each leg exercises a
// different (still deterministic) fault schedule.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>

#include "data/blobs.hpp"
#include "net/collab.hpp"
#include "net/fault.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"
#include "nn/mlp.hpp"
#include "sim/scenario.hpp"

namespace teamnet {
namespace {

/// Base seed for every chaos schedule in this binary. CI sweeps it.
std::uint64_t chaos_seed() {
  const char* env = std::getenv("TEAMNET_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 42ULL;
}

nn::MlpConfig tiny_mlp() {
  nn::MlpConfig cfg;
  cfg.in_features = 6;
  cfg.num_classes = 3;
  cfg.depth = 2;
  cfg.hidden = 8;
  return cfg;
}

nn::MlpConfig blob_mlp() {
  nn::MlpConfig cfg;
  cfg.in_features = 8;
  cfg.num_classes = 4;
  cfg.depth = 2;
  cfg.hidden = 12;
  return cfg;
}

data::Dataset blobs() {
  data::BlobsConfig cfg;
  cfg.num_samples = 200;
  cfg.num_classes = 4;
  cfg.dims = 8;
  cfg.seed = 21;
  return data::make_blobs(cfg);
}

/// Latency-only link: zero airtime, so the shared-medium cursor cannot
/// couple arrival times across delivery order — the precondition for the
/// strict (bit-identical latency) determinism assertion below.
net::LinkProfile latency_only_link() { return net::LinkProfile{0.0005, 0.0, 0.0}; }

// ---- FaultyChannel in isolation --------------------------------------------

TEST(FaultyChannel, SameSeedSameScheduleAndDeliveries) {
  net::FaultProfile profile;
  profile.seed = chaos_seed();
  profile.drop_prob = 0.4;
  profile.corrupt_prob = 0.2;
  profile.duplicate_prob = 0.2;
  profile.delay_prob = 0.2;
  profile.delay_min_s = 0.001;
  profile.delay_max_s = 0.002;
  net::DelayFn no_sleep = [](double) {};

  auto run_once = [&] {
    auto [a, b] = net::make_inproc_pair();
    net::FaultyChannel faulty(std::move(a), profile, no_sleep);
    for (int i = 0; i < 32; ++i) faulty.send("message " + std::to_string(i));
    std::vector<std::string> delivered;
    while (auto bytes = b->recv_timeout(0.0)) delivered.push_back(*bytes);
    return std::make_pair(faulty.fault_schedule(), delivered);
  };

  auto [schedule1, delivered1] = run_once();
  auto [schedule2, delivered2] = run_once();
  EXPECT_FALSE(schedule1.empty());
  EXPECT_EQ(schedule1, schedule2);
  EXPECT_EQ(delivered1, delivered2);
  EXPECT_LT(delivered1.size(), 32u + 7u);  // sanity: some messages dropped
}

TEST(FaultyChannel, CrashAfterNMessagesThenDead) {
  net::FaultProfile profile;
  profile.crash_after_messages = 2;
  auto [a, b] = net::make_inproc_pair();
  net::FaultyChannel faulty(std::move(a), profile);

  faulty.send("one");
  faulty.send("two");
  EXPECT_THROW(faulty.send("three"), NetworkError);
  EXPECT_THROW(faulty.recv(), NetworkError);  // dead for good, all calls
  EXPECT_THROW(faulty.recv_timeout(0.01), NetworkError);
  EXPECT_EQ(b->recv(), "one");
  EXPECT_EQ(b->recv(), "two");
}

TEST(FaultyChannel, DuplicationDeliversTwice) {
  net::FaultProfile profile;
  profile.duplicate_prob = 1.0;
  auto [a, b] = net::make_inproc_pair();
  net::FaultyChannel faulty(std::move(a), profile);

  faulty.send("payload");
  EXPECT_EQ(b->recv(), "payload");
  EXPECT_EQ(b->recv(), "payload");
  EXPECT_EQ(b->recv_timeout(0.0), std::nullopt);
  EXPECT_EQ(faulty.faults_injected(), 1);
}

TEST(FaultyChannel, CorruptionFlipsExactlyOneBit) {
  net::FaultProfile profile;
  profile.seed = chaos_seed();
  profile.corrupt_prob = 1.0;
  auto [a, b] = net::make_inproc_pair();
  net::FaultyChannel faulty(std::move(a), profile);

  const std::string original(64, '\0');
  faulty.send(original);
  const std::string corrupted = b->recv();
  ASSERT_EQ(corrupted.size(), original.size());
  int bits_flipped = 0;
  for (std::size_t i = 0; i < corrupted.size(); ++i) {
    unsigned diff = static_cast<unsigned char>(corrupted[i]) ^
                    static_cast<unsigned char>(original[i]);
    while (diff != 0) {
      bits_flipped += static_cast<int>(diff & 1u);
      diff >>= 1;
    }
  }
  EXPECT_EQ(bits_flipped, 1);
}

TEST(FaultyChannel, PartitionTogglesAtRuntime) {
  auto [a, b] = net::make_inproc_pair();
  net::FaultyChannel faulty(std::move(a), net::FaultProfile{});

  faulty.send("before");
  EXPECT_EQ(b->recv(), "before");

  faulty.set_partition(/*send_lost=*/true, /*recv_lost=*/false);
  faulty.send("lost");
  EXPECT_EQ(b->recv_timeout(0.01), std::nullopt);

  faulty.set_partition(false, false);
  faulty.send("after heal");
  EXPECT_EQ(b->recv(), "after heal");
  EXPECT_NE(faulty.fault_schedule().find("partition-drop"), std::string::npos);
}

// ---- protocol-level regressions --------------------------------------------

/// A duplicated Result for query N must never be consumed as the answer to
/// query N+1. The scripted worker plants a maximally confident duplicate
/// (entropy 0 — it would win the selection if the master trusted it).
TEST(ChaosProtocol, StaleReplyIsDiscardedNotConsumed) {
  Rng rng(11);
  nn::MlpNet master_expert(tiny_mlp(), rng);
  auto [master_ch, worker_ch] = net::make_inproc_pair();

  std::thread worker([&worker_ch = worker_ch] {
    auto reply_uncertain = [&](const net::Message& request) {
      net::Message reply;
      reply.type = net::MsgType::Result;
      reply.ints = request.ints;
      Tensor probs({1, 3});
      probs.fill(1.0f / 3.0f);
      Tensor entropy({1});
      entropy.fill(5.0f);  // very uncertain: the master's expert wins
      reply.tensors = {probs, entropy};
      return reply;
    };

    net::Message q1 = net::Message::decode(worker_ch->recv());
    worker_ch->send(reply_uncertain(q1).encode());
    // The poisoned duplicate: same (now stale) query id, but absolutely
    // certain — consuming it for query 2 would flip the selection.
    net::Message stale;
    stale.type = net::MsgType::Result;
    stale.ints = q1.ints;
    Tensor confident({1, 3});
    confident.fill(0.0f);
    confident[2] = 1.0f;
    Tensor zero_entropy({1});
    zero_entropy.fill(0.0f);
    stale.tensors = {confident, zero_entropy};
    worker_ch->send(stale.encode());

    net::Message q2 = net::Message::decode(worker_ch->recv());
    worker_ch->send(reply_uncertain(q2).encode());
    (void)worker_ch->recv();  // Shutdown
  });

  net::CollaborativeMaster master(master_expert, {master_ch.get()});
  master.set_worker_timeout(2.0);
  Tensor x = Tensor::randn({1, 6}, rng);

  auto first = master.infer(x);
  EXPECT_EQ(first.chosen[0], 0);
  auto second = master.infer(x);
  EXPECT_EQ(second.chosen[0], 0) << "stale confident reply was consumed";
  EXPECT_EQ(master.stale_replies_discarded(), 1);
  master.shutdown();
  worker.join();
}

/// The gather budget is shared: with every worker dead, the master waits
/// ONE deadline of virtual time, not one per worker. Uses a sim mesh with
/// the virtual clock as the master's time source and no serving threads.
TEST(ChaosProtocol, GatherDeadlineIsSharedAcrossWorkers) {
  const int k = 4;
  const double timeout_s = 0.05;
  net::VirtualClock clock(k);
  auto mesh = net::make_sim_mesh(k, clock, latency_only_link());

  Rng rng(12);
  nn::MlpNet expert(tiny_mlp(), rng);
  std::vector<net::Channel*> channels;
  for (int i = 1; i < k; ++i) {
    channels.push_back(mesh[0][static_cast<std::size_t>(i)].get());
  }
  net::CollaborativeMaster master(expert, channels);
  master.set_worker_timeout(timeout_s);
  master.set_time_source([&clock] { return clock.node_time(0); });

  Tensor x = Tensor::randn({1, 6}, rng);
  const double t0 = clock.node_time(0);
  auto result = master.infer(x);
  const double waited = clock.node_time(0) - t0;

  EXPECT_EQ(master.failed_workers(), k - 1);
  EXPECT_EQ(result.chosen[0], 0);
  // The first worker's timeout consumes the whole budget; the others are
  // polled with a zero remainder. Budget <= wait < 1.5 budgets — nowhere
  // near the (k-1) * budget a per-worker deadline would burn.
  EXPECT_GE(waited, timeout_s * 0.999);
  EXPECT_LT(waited, timeout_s * 1.5);
}

/// Crash -> probation -> Ping/Pong -> rejoin, end to end, with the
/// post-rejoin answers matching a fault-free baseline exactly.
TEST(ChaosProtocol, PartitionedWorkerRejoinsAndMatchesBaseline) {
  Rng rng(13);
  nn::MlpNet master_expert(tiny_mlp(), rng);
  nn::MlpNet worker_expert(tiny_mlp(), rng);
  Tensor x = Tensor::randn({1, 6}, rng);

  // Fault-free baseline for the same pair of experts.
  net::CollaborativeMaster::Result baseline;
  {
    auto [m, w] = net::make_inproc_pair();
    net::CollaborativeWorker worker(worker_expert, *w);
    std::thread t([&worker] { worker.serve(); });
    net::CollaborativeMaster master(master_expert, {m.get()});
    baseline = master.infer(x);
    master.shutdown();
    t.join();
  }

  auto [m_raw, w] = net::make_inproc_pair();
  auto faulty = std::make_unique<net::FaultyChannel>(std::move(m_raw),
                                                     net::FaultProfile{});
  net::FaultyChannel& link = *faulty;
  net::CollaborativeWorker worker(worker_expert, *w);
  std::thread t([&worker] { worker.serve(); });

  net::CollaborativeMaster master(master_expert, {faulty.get()});
  // Spent (once) only while partitioned; generous so a loaded CI box can
  // never time out the HEALTHY worker and skew the baseline comparison.
  master.set_worker_timeout(1.0);
  master.set_probe_interval(1);

  auto healthy = master.infer(x);
  EXPECT_EQ(healthy.predictions, baseline.predictions);

  link.set_partition(true, true);
  master.infer(x);
  EXPECT_EQ(master.failed_workers(), 1);
  EXPECT_FALSE(master.worker_alive(0));

  link.set_partition(false, false);
  // Probation: the master pings on its backoff cadence and the worker's
  // Pong brings it back. Bounded loop — rejoin must happen well within it.
  for (int q = 0; q < 100 && !master.worker_alive(0); ++q) {
    master.infer(x);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(master.worker_alive(0));
  EXPECT_EQ(master.failed_workers(), 0);
  EXPECT_EQ(master.rejoins(), 1);

  auto after = master.infer(x);
  EXPECT_EQ(after.predictions, baseline.predictions);
  EXPECT_EQ(after.chosen, baseline.chosen);

  master.shutdown();
  t.join();
  EXPECT_GE(worker.pongs_sent(), 1);
}

// ---- whole-scenario determinism --------------------------------------------

std::vector<std::unique_ptr<nn::MlpNet>> make_experts(int k) {
  std::vector<std::unique_ptr<nn::MlpNet>> experts;
  for (int i = 0; i < k; ++i) {
    Rng rng(100 + static_cast<std::uint64_t>(i));
    experts.push_back(std::make_unique<nn::MlpNet>(blob_mlp(), rng));
  }
  return experts;
}

std::vector<nn::Module*> expert_ptrs(
    const std::vector<std::unique_ptr<nn::MlpNet>>& experts) {
  std::vector<nn::Module*> ptrs;
  for (const auto& e : experts) ptrs.push_back(e.get());
  return ptrs;
}

/// Duplication-only faults: no drops means no timeouts, so everything
/// discrete — schedule, outcomes, accuracy, traffic — must be
/// bit-identical. Latency alone gets a tolerance: the nodes are
/// free-running threads, and the VirtualClock's shared-medium cursor makes
/// each message's airtime slot depend on the real-time order concurrent
/// sends reach the medium (see DESIGN.md, "Fault model & recovery"), so
/// virtual latency jitters by a link latency even with no faults at all.
TEST(ChaosScenario, SameSeedSameResultUnderDuplication) {
  auto experts = make_experts(3);
  auto test = blobs();
  sim::ScenarioConfig cfg;
  cfg.num_queries = 12;
  cfg.link = latency_only_link();

  sim::ChaosConfig chaos;
  chaos.faults.seed = chaos_seed();
  chaos.faults.duplicate_prob = 0.3;
  // No drops, so no reply should ever miss the deadline — but the budget
  // is measured in REAL seconds while waiting, and a sanitizer build on a
  // loaded CI box can stall a worker thread long enough to miss a tight
  // one, which would desync the two runs. Generous budget, never spent.
  chaos.worker_timeout_s = 5.0;
  chaos.probe_interval = 2;

  auto a = sim::run_teamnet_chaos(expert_ptrs(experts), test, cfg, chaos);
  auto b = sim::run_teamnet_chaos(expert_ptrs(experts), test, cfg, chaos);

  EXPECT_FALSE(a.fault_schedule.empty());
  EXPECT_EQ(a.fault_schedule, b.fault_schedule);
  EXPECT_EQ(a.live_nodes, b.live_nodes);
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_EQ(a.stale_replies, b.stale_replies);
  EXPECT_EQ(a.rejoins, b.rejoins);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_DOUBLE_EQ(a.scenario.accuracy_pct, b.scenario.accuracy_pct);
  EXPECT_DOUBLE_EQ(a.scenario.bytes_per_query, b.scenario.bytes_per_query);
  EXPECT_DOUBLE_EQ(a.scenario.messages_per_query,
                   b.scenario.messages_per_query);
  EXPECT_NEAR(a.scenario.latency_ms, b.scenario.latency_ms,
              0.25 * (a.scenario.latency_ms + 1.0));
}

/// Determinism under drops + corruption + a scripted partition: the fault
/// schedule and every discrete outcome must reproduce exactly. Latency is
/// compared with a tolerance only: a timed-out wait charges the measured
/// real remainder (budget minus scheduling epsilon) to the virtual clock,
/// which jitters at sub-millisecond scale run to run.
TEST(ChaosScenario, SameSeedSameScheduleUnderDropsAndPartition) {
  auto experts = make_experts(3);
  auto test = blobs();
  sim::ScenarioConfig cfg;
  cfg.num_queries = 12;
  cfg.link = latency_only_link();

  sim::ChaosConfig chaos;
  chaos.faults.seed = chaos_seed();
  chaos.faults.drop_prob = 0.25;
  chaos.faults.corrupt_prob = 0.1;
  // Dropped replies cost a real wait of the full budget, so keep it small
  // enough for test wall-clock — but big enough that a loaded sanitizer
  // build can't make a LIVE worker's reply miss it (which would desync
  // the runs). A failed worker stays failed here, so the budget is spent
  // at most once per worker per run.
  chaos.worker_timeout_s = 0.25;
  chaos.probe_interval = 0;  // probation off: rejoin timing is real-time-racy
  chaos.partition_worker = 1;
  chaos.partition_from_query = 4;
  chaos.heal_at_query = 8;

  auto a = sim::run_teamnet_chaos(expert_ptrs(experts), test, cfg, chaos);
  auto b = sim::run_teamnet_chaos(expert_ptrs(experts), test, cfg, chaos);

  EXPECT_FALSE(a.fault_schedule.empty());
  EXPECT_EQ(a.fault_schedule, b.fault_schedule);
  EXPECT_EQ(a.live_nodes, b.live_nodes);
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_EQ(a.stale_replies, b.stale_replies);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_DOUBLE_EQ(a.scenario.accuracy_pct, b.scenario.accuracy_pct);
  EXPECT_NEAR(a.scenario.latency_ms, b.scenario.latency_ms,
              0.1 * (a.scenario.latency_ms + 1.0));
}

/// Rejoin inside the simulated scenario: a worker partitioned for a window
/// of queries must be back in the live set by the end of the run.
TEST(ChaosScenario, ScriptedPartitionHealsAndRejoins) {
  auto experts = make_experts(3);
  auto test = blobs();
  sim::ScenarioConfig cfg;
  cfg.num_queries = 20;
  cfg.link = latency_only_link();

  sim::ChaosConfig chaos;
  chaos.faults.seed = chaos_seed();
  chaos.worker_timeout_s = 0.25;  // loaded-CI headroom for live replies
  chaos.probe_interval = 1;
  chaos.partition_worker = 0;
  chaos.partition_from_query = 4;
  chaos.heal_at_query = 8;

  auto r = sim::run_teamnet_chaos(expert_ptrs(experts), test, cfg, chaos);
  ASSERT_EQ(r.live_nodes.size(), 20u);
  EXPECT_EQ(r.live_nodes[0], 3);          // everyone up initially
  EXPECT_EQ(r.live_nodes[5], 2);          // partitioned worker failed
  EXPECT_GE(r.rejoins, 1);                // ...and came back after the heal
  EXPECT_EQ(r.live_nodes.back(), 3);      // full strength by the end
}

}  // namespace
}  // namespace teamnet
