// Cross-module integration tests: the full train -> serialize -> deploy ->
// serve-over-TCP pipeline, weight shipping through the wire format, the
// MoE and MPI paths running over simulated meshes, and end-to-end failure
// injection (malformed frames, protocol violations).
#include <gtest/gtest.h>

#include <thread>

#include "core/teamnet.hpp"
#include "data/blobs.hpp"
#include "moe/moe_serving.hpp"
#include "mpi/partitioned.hpp"
#include "net/collab.hpp"
#include "net/tcp.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"
#include "sim/scenario.hpp"

namespace teamnet {
namespace {

nn::MlpConfig blob_mlp() {
  nn::MlpConfig cfg;
  cfg.in_features = 8;
  cfg.num_classes = 4;
  cfg.depth = 3;
  cfg.hidden = 16;
  return cfg;
}

data::Dataset blobs(std::uint64_t seed = 21) {
  data::BlobsConfig cfg;
  cfg.num_samples = 500;
  cfg.num_classes = 4;
  cfg.dims = 8;
  cfg.seed = seed;
  return data::make_blobs(cfg);
}

TEST(Pipeline, TrainShipDeployServeOverTcp) {
  // 1. Train a 2-expert team centrally.
  auto train = blobs();
  core::TeamNetConfig cfg;
  cfg.num_experts = 2;
  cfg.epochs = 5;
  cfg.batch_size = 32;
  core::TeamNetTrainer trainer(cfg, [](int, Rng& rng) -> nn::ModulePtr {
    return std::make_unique<nn::MlpNet>(blob_mlp(), rng);
  });
  core::TeamNetEnsemble ensemble = trainer.train(train);
  auto expected = ensemble.infer(train.images);

  // 2. Ship expert 1's weights over the wire format (MsgType::Weights) to a
  //    fresh "edge device" that builds the architecture locally.
  net::Message deploy;
  deploy.type = net::MsgType::Weights;
  {
    std::string blob = nn::serialize_parameters(ensemble.expert(1));
    // Weights travel as a raw tensor of bytes (float-packed).
    Tensor packed({static_cast<std::int64_t>(blob.size())});
    for (std::size_t i = 0; i < blob.size(); ++i) {
      packed[static_cast<std::int64_t>(i)] =
          static_cast<float>(static_cast<unsigned char>(blob[i]));
    }
    deploy.tensors = {std::move(packed)};
  }
  const std::string wire = deploy.encode();
  net::Message received = net::Message::decode(wire);
  ASSERT_EQ(received.type, net::MsgType::Weights);
  std::string blob(static_cast<std::size_t>(received.tensors[0].numel()), '\0');
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<char>(
        static_cast<unsigned char>(received.tensors[0][static_cast<std::int64_t>(i)]));
  }
  Rng edge_rng(123);
  nn::MlpNet edge_expert(blob_mlp(), edge_rng);
  nn::deserialize_parameters(blob, edge_expert);
  edge_expert.set_training(false);

  // 3. Serve it over real TCP and verify the distributed answers match the
  //    centralized ensemble exactly.
  net::TcpListener listener(0);
  std::thread worker_thread([&] {
    auto channel = net::tcp_connect("127.0.0.1", listener.port());
    net::CollaborativeWorker worker(edge_expert, *channel);
    worker.serve();
  });
  auto channel = listener.accept();
  net::CollaborativeMaster master(ensemble.expert(0), {channel.get()});
  auto actual = master.infer(train.images);
  master.shutdown();
  worker_thread.join();

  EXPECT_EQ(actual.predictions, expected.predictions);
  EXPECT_EQ(actual.chosen, expected.chosen);
}

TEST(Pipeline, ScenarioLatencyIsDeterministic) {
  auto train = blobs();
  core::TeamNetConfig cfg;
  cfg.num_experts = 2;
  cfg.epochs = 3;
  core::TeamNetTrainer trainer(cfg, [](int, Rng& rng) -> nn::ModulePtr {
    return std::make_unique<nn::MlpNet>(blob_mlp(), rng);
  });
  core::TeamNetEnsemble ensemble = trainer.train(train);
  std::vector<nn::Module*> experts = {&ensemble.expert(0),
                                      &ensemble.expert(1)};
  sim::ScenarioConfig scenario;
  scenario.num_queries = 8;
  auto a = sim::run_teamnet(experts, train, scenario);
  auto b = sim::run_teamnet(experts, train, scenario);
  EXPECT_DOUBLE_EQ(a.latency_ms, b.latency_ms);
  EXPECT_EQ(a.bytes_per_query, b.bytes_per_query);
}

TEST(Pipeline, WorkerSkipsProtocolViolationAndKeepsServing) {
  Rng rng(3);
  nn::MlpNet m(blob_mlp(), rng), w(blob_mlp(), rng);
  auto [master_ch, worker_ch] = net::make_inproc_pair();
  net::CollaborativeWorker worker(w, *worker_ch);

  // A Result message arriving at a worker is a protocol violation; a
  // fault-tolerant worker drops it and keeps serving — one bad frame (a
  // chaos injection, a confused peer) must not take the node down.
  net::Message bogus;
  bogus.type = net::MsgType::Result;
  master_ch->send(bogus.encode());

  std::thread t([&worker] { worker.serve(); });
  net::CollaborativeMaster master(m, {master_ch.get()});
  auto ds = blobs();
  auto result = master.infer(ds.images.reshape({ds.size(), -1}));
  EXPECT_EQ(result.predictions.size(), static_cast<std::size_t>(ds.size()));
  master.shutdown();
  t.join();
  EXPECT_EQ(worker.requests_served(), 1);
}

TEST(Pipeline, MalformedFrameIsSkippedNotFatal) {
  Rng rng(4);
  nn::MlpNet m(blob_mlp(), rng), w(blob_mlp(), rng);
  auto [master_ch, worker_ch] = net::make_inproc_pair();
  net::CollaborativeWorker worker(w, *worker_ch);
  master_ch->send("garbage that is not a message");

  std::thread t([&worker] { worker.serve(); });
  net::CollaborativeMaster master(m, {master_ch.get()});
  auto ds = blobs();
  auto result = master.infer(ds.images.reshape({ds.size(), -1}));
  EXPECT_EQ(result.predictions.size(), static_cast<std::size_t>(ds.size()));
  master.shutdown();
  t.join();
  EXPECT_EQ(worker.requests_served(), 1);
}

TEST(Pipeline, MasterSurvivesManySequentialQueries) {
  Rng rng(5);
  nn::MlpNet m(blob_mlp(), rng), w(blob_mlp(), rng);
  auto [a, b] = net::make_inproc_pair();
  net::CollaborativeWorker worker(w, *b);
  std::thread t([&worker] { worker.serve(); });
  net::CollaborativeMaster master(m, {a.get()});

  auto ds = blobs(99);
  for (int q = 0; q < 64; ++q) {
    Tensor x = ds.images.reshape({ds.size(), -1});
    Tensor query({1, x.dim(1)});
    const std::int64_t row = q % ds.size();
    std::copy(x.data() + row * x.dim(1), x.data() + (row + 1) * x.dim(1),
              query.data());
    auto result = master.infer(query);
    ASSERT_EQ(result.predictions.size(), 1u);
  }
  master.shutdown();
  t.join();
  EXPECT_EQ(worker.requests_served(), 64);
}

TEST(Pipeline, MoeServingOverTcp) {
  auto train = blobs();
  moe::SgMoeConfig cfg;
  cfg.num_experts = 2;
  cfg.epochs = 3;
  moe::SgMoe model(cfg, 8, [](int, Rng& rng) -> nn::ModulePtr {
    return std::make_unique<nn::MlpNet>(blob_mlp(), rng);
  });
  model.train(train);
  auto expected = model.infer(train.images);

  net::TcpListener listener(0);
  std::thread worker_thread([&] {
    auto channel = net::tcp_connect("127.0.0.1", listener.port());
    net::CollaborativeWorker worker(model.expert(1), *channel);
    worker.serve();
  });
  auto channel = listener.accept();
  moe::MoeMaster master(model, {channel.get()});
  auto actual = master.infer(train.images);
  master.shutdown();
  worker_thread.join();

  EXPECT_EQ(actual.predictions, expected.predictions);
  EXPECT_EQ(actual.routed, expected.routed);
}

TEST(Pipeline, CheckpointRoundTripPreservesEnsembleBehaviour) {
  auto train = blobs();
  core::TeamNetConfig cfg;
  cfg.num_experts = 2;
  cfg.epochs = 4;
  core::TeamNetTrainer trainer(cfg, [](int, Rng& rng) -> nn::ModulePtr {
    return std::make_unique<nn::MlpNet>(blob_mlp(), rng);
  });
  core::TeamNetEnsemble ensemble = trainer.train(train);
  auto before = ensemble.infer(train.images);

  const std::string dir = ::testing::TempDir();
  for (int i = 0; i < 2; ++i) {
    nn::save_module(dir + "/expert" + std::to_string(i) + ".tnet",
                    ensemble.expert(i));
  }
  std::vector<nn::ModulePtr> restored;
  Rng rng(7);
  for (int i = 0; i < 2; ++i) {
    auto expert = std::make_unique<nn::MlpNet>(blob_mlp(), rng);
    nn::load_module(dir + "/expert" + std::to_string(i) + ".tnet", *expert);
    restored.push_back(std::move(expert));
  }
  core::TeamNetEnsemble reloaded(std::move(restored));
  auto after = reloaded.infer(train.images);
  EXPECT_EQ(before.predictions, after.predictions);
  EXPECT_EQ(before.chosen, after.chosen);
}

}  // namespace
}  // namespace teamnet
