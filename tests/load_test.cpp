// Load-generation plane tests (DESIGN.md §14). The whole binary carries
// the `determinism` ctest label: the arrival processes and the loadgen
// driver promise byte-identical output per seed under the discrete-event
// scheduler, and the gates here compare raw double bytes, not tolerances.
// Alongside the bit-stability gates: histogram bucket/merge semantics,
// phase statistics (Little's law holds by construction), Zipf skew
// properties, and the regression pin that the shared nearest-rank helper
// reproduces the historical resilience percentile byte for byte.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "data/blobs.hpp"
#include "load/arrival.hpp"
#include "load/histogram.hpp"
#include "load/loadgen.hpp"
#include "load/stats.hpp"
#include "nn/mlp.hpp"
#include "obs/percentile.hpp"
#include "sim/driver_util.hpp"
#include "sim/scenario.hpp"

namespace teamnet {
namespace {

std::uint64_t determinism_seed() {
  const char* env = std::getenv("TEAMNET_DETERMINISM_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 123u;
}

void put_double(std::string& out, double v) {
  char raw[sizeof v];
  std::memcpy(raw, &v, sizeof v);
  out.append(raw, sizeof v);
}

// ---- arrival processes ------------------------------------------------------

std::string arrival_bytes(load::ArrivalProcess& process, int n) {
  std::string out;
  double now = 0.0;
  for (int i = 0; i < n; ++i) {
    const double t = process.next_arrival(now);
    put_double(out, t);
    now = std::max(now, t);
    // Closed loops need completions to keep drawing; a fixed service time
    // keeps the feedback deterministic.
    process.on_complete(now + 0.001);
  }
  return out;
}

TEST(Arrival, SameSeedSameByteSequenceEveryKind) {
  for (const auto kind :
       {load::ArrivalKind::open_poisson, load::ArrivalKind::closed_loop,
        load::ArrivalKind::bursty}) {
    load::ArrivalConfig cfg;
    cfg.kind = kind;
    cfg.seed = determinism_seed();
    auto a = load::make_arrival_process(cfg);
    auto b = load::make_arrival_process(cfg);
    EXPECT_EQ(arrival_bytes(*a, 200), arrival_bytes(*b, 200))
        << load::to_string(kind);
  }
}

TEST(Arrival, DifferentSeedDifferentSequence) {
  for (const auto kind :
       {load::ArrivalKind::open_poisson, load::ArrivalKind::closed_loop,
        load::ArrivalKind::bursty}) {
    load::ArrivalConfig cfg;
    cfg.kind = kind;
    cfg.seed = 1;
    auto a = load::make_arrival_process(cfg);
    cfg.seed = 2;
    auto b = load::make_arrival_process(cfg);
    EXPECT_NE(arrival_bytes(*a, 50), arrival_bytes(*b, 50))
        << load::to_string(kind);
  }
}

TEST(Arrival, ArrivalsAreNondecreasing) {
  for (const auto kind :
       {load::ArrivalKind::open_poisson, load::ArrivalKind::closed_loop,
        load::ArrivalKind::bursty}) {
    load::ArrivalConfig cfg;
    cfg.kind = kind;
    cfg.seed = determinism_seed();
    auto p = load::make_arrival_process(cfg);
    double prev = 0.0;
    for (int i = 0; i < 500; ++i) {
      const double t = p->next_arrival(prev);
      EXPECT_GE(t, prev) << load::to_string(kind) << " draw " << i;
      prev = t;
      p->on_complete(prev + 0.001);
    }
  }
}

TEST(Arrival, OpenPoissonMeanGapMatchesRate) {
  load::ArrivalConfig cfg;
  cfg.kind = load::ArrivalKind::open_poisson;
  cfg.rate_qps = 200.0;
  cfg.seed = determinism_seed();
  auto p = load::make_arrival_process(cfg);
  const int n = 4000;
  double last = 0.0;
  for (int i = 0; i < n; ++i) last = p->next_arrival(last);
  // Mean gap = last/n; for 4000 exponential draws the sample mean is
  // within ~5 sigma of 1/rate at a 10% band.
  EXPECT_NEAR(last / n, 1.0 / cfg.rate_qps, 0.1 / cfg.rate_qps);
}

TEST(Arrival, ClosedLoopThrowsWhenPopulationExhausted) {
  load::ArrivalConfig cfg;
  cfg.kind = load::ArrivalKind::closed_loop;
  cfg.clients = 2;
  cfg.seed = determinism_seed();
  auto p = load::make_arrival_process(cfg);
  p->next_arrival(0.0);
  p->next_arrival(0.0);  // both clients now awaiting completions
  EXPECT_THROW(p->next_arrival(0.0), InvariantError);
  p->on_complete(1.0);  // one client finishes thinking eventually
  EXPECT_GT(p->next_arrival(0.0), 1.0);
}

TEST(Arrival, BurstyStaysPositiveAndOrdered) {
  load::ArrivalConfig cfg;
  cfg.kind = load::ArrivalKind::bursty;
  cfg.rate_qps = 100.0;
  cfg.burst_amplitude = 1.0;  // rate touches zero at the trough
  cfg.burst_period_s = 0.5;
  cfg.seed = determinism_seed();
  auto p = load::make_arrival_process(cfg);
  double prev = 0.0;
  for (int i = 0; i < 300; ++i) {
    const double t = p->next_arrival(prev);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

// ---- Zipf class skew --------------------------------------------------------

TEST(Zipf, ExponentZeroIsUniformish) {
  load::ZipfClassSampler sampler(4, 0.0, determinism_seed());
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) counts[sampler.sample()]++;
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(counts[c], 1000, 150) << "class " << c;
  }
}

TEST(Zipf, SkewConcentratesOnSeededHotClass) {
  load::ZipfClassSampler sampler(8, 1.2, determinism_seed());
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 4000; ++i) counts[sampler.sample()]++;
  const int hot = sampler.hot_classes()[0];
  for (int c = 0; c < 8; ++c) {
    if (c != hot) {
      EXPECT_GE(counts[hot], counts[c]);
    }
  }
  // Zipf(1.2) over 8 classes gives the rank-1 class ~37% of the mass —
  // far above the 12.5% uniform share.
  EXPECT_GT(counts[hot], 4000 / 4);
}

TEST(Zipf, HotClassesIsSeededPermutation) {
  load::ZipfClassSampler a(6, 1.0, 5);
  load::ZipfClassSampler b(6, 1.0, 5);
  EXPECT_EQ(a.hot_classes(), b.hot_classes());
  auto sorted = a.hot_classes();
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(Zipf, SameSeedSameDraws) {
  load::ZipfClassSampler a(5, 0.9, determinism_seed());
  load::ZipfClassSampler b(5, 0.9, determinism_seed());
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.sample(), b.sample());
}

// ---- shared nearest-rank percentile -----------------------------------------

/// The historical implementation this repo's resilience numbers were
/// published with (verbatim from the pre-refactor scenario.cpp); the
/// shared helper must reproduce it byte for byte.
double legacy_percentile_ms(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  return values[std::min(rank, n) - 1];
}

TEST(Percentile, SharedHelperMatchesLegacyByteForByte) {
  Rng rng(determinism_seed());
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> values;
    const int n = 1 + rng.randint(0, 99);
    for (int i = 0; i < n; ++i) {
      values.push_back(static_cast<double>(rng.uniform(0.0f, 100.0f)));
    }
    for (double pct : {0.001, 1.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
      const double expected = legacy_percentile_ms(values, pct);
      const double actual = obs::nearest_rank_percentile(values, pct);
      EXPECT_EQ(std::memcmp(&expected, &actual, sizeof expected), 0)
          << "n=" << n << " pct=" << pct;
    }
  }
  EXPECT_EQ(obs::nearest_rank_percentile({}, 50.0), 0.0);
}

TEST(Percentile, NearestRankRule) {
  EXPECT_EQ(obs::nearest_rank(0, 50.0), 0u);
  EXPECT_EQ(obs::nearest_rank(4, 50.0), 2u);
  EXPECT_EQ(obs::nearest_rank(4, 100.0), 4u);
  EXPECT_EQ(obs::nearest_rank(100, 99.0), 99u);
  EXPECT_EQ(obs::nearest_rank(100, 99.9), 100u);
  EXPECT_EQ(obs::nearest_rank(10, 0.001), 1u);  // rank clamps up to 1
}

// ---- latency histogram ------------------------------------------------------

TEST(Histogram, BucketBoundariesAreInclusiveUpperEdges) {
  load::LatencyHistogram::Config cfg;
  cfg.min_value = 1.0;
  cfg.buckets_per_decade = 1;
  cfg.num_decades = 3;  // edges: 1, 10, 100, 1000
  load::LatencyHistogram h(cfg);
  ASSERT_EQ(h.upper_edges().size(), 4u);
  h.record(1.0);     // exactly on edge 0 -> bucket 0
  h.record(1.0001);  // just above -> bucket 1
  h.record(10.0);    // exactly on edge 1 -> bucket 1
  h.record(1000.0);  // last finite edge -> bucket 3
  h.record(5000.0);  // beyond -> overflow
  const auto& counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(counts[4], 1);  // overflow
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 5000.0);
}

TEST(Histogram, PercentileReportsBucketUpperEdgeClamped) {
  load::LatencyHistogram::Config cfg;
  cfg.min_value = 1.0;
  cfg.buckets_per_decade = 1;
  cfg.num_decades = 3;
  load::LatencyHistogram h(cfg);
  EXPECT_EQ(h.percentile(99.0), 0.0);  // empty
  for (int i = 0; i < 99; ++i) h.record(5.0);  // bucket 1 (edge 10)
  h.record(50.0);                              // bucket 2 (edge 100)
  EXPECT_EQ(h.percentile(50.0), 10.0);
  EXPECT_EQ(h.percentile(99.0), 10.0);
  EXPECT_EQ(h.percentile(100.0), 50.0);  // bucket 2's edge 100 clamps to max
  // Overflow bucket reports the observed max, not an edge.
  h.record(1e6);
  EXPECT_EQ(h.percentile(100.0), 1e6);
}

TEST(Histogram, MergeEqualsConcatenation) {
  load::LatencyHistogram::Config cfg;
  load::LatencyHistogram a(cfg);
  load::LatencyHistogram b(cfg);
  load::LatencyHistogram both(cfg);
  Rng rng(determinism_seed());
  for (int i = 0; i < 500; ++i) {
    const double v = std::exp(static_cast<double>(rng.uniform(-3.0f, 8.0f)));
    if (i % 2 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    both.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.bucket_counts(), both.bucket_counts());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  for (double pct : {50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(a.percentile(pct), both.percentile(pct)) << pct;
  }
}

TEST(Histogram, MergeRejectsLayoutMismatch) {
  load::LatencyHistogram::Config narrow;
  narrow.num_decades = 2;
  load::LatencyHistogram a{load::LatencyHistogram::Config{}};
  load::LatencyHistogram b(narrow);
  EXPECT_THROW(a.merge(b), InvariantError);
}

// ---- phase statistics -------------------------------------------------------

TEST(PhaseStats, LittlesLawOnSyntheticRecords) {
  // 10 queries, one per second, each served in exactly 0.5 s.
  std::vector<load::QueryRecord> records;
  for (int i = 0; i < 10; ++i) {
    load::QueryRecord r;
    r.arrival_s = static_cast<double>(i);
    r.completion_s = r.arrival_s + 0.5;
    records.push_back(r);
  }
  const auto phase = load::make_phase_stats(
      records, 0, records.size(), load::LatencyHistogram::Config{});
  EXPECT_EQ(phase.queries, 10);
  EXPECT_DOUBLE_EQ(phase.window_start_s, 0.0);
  EXPECT_DOUBLE_EQ(phase.window_end_s, 9.5);
  EXPECT_DOUBLE_EQ(phase.inflight_integral_s, 5.0);
  // L = lambda * W: 10 queries / 9.5 s * 0.5 s each.
  EXPECT_NEAR(phase.mean_inflight(),
              phase.achieved_qps() * 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(phase.offered_qps(), 10.0 / 9.0);
}

TEST(PhaseStats, WarmupQueryStraddlingBoundaryChargesBothPhases) {
  // Warmup query [0, 4] is still in flight when steady opens at t=2.
  std::vector<load::QueryRecord> records(2);
  records[0].arrival_s = 0.0;
  records[0].completion_s = 4.0;
  records[1].arrival_s = 2.0;
  records[1].completion_s = 6.0;
  const auto warmup = load::make_phase_stats(
      records, 0, 1, load::LatencyHistogram::Config{});
  const auto steady = load::make_phase_stats(
      records, 1, 2, load::LatencyHistogram::Config{});
  // Warmup window [0,4]: own query 4s + steady query's [2,4] overlap.
  EXPECT_DOUBLE_EQ(warmup.inflight_integral_s, 6.0);
  // Steady window [2,6]: own query 4s + warmup query's [2,4] overlap.
  EXPECT_DOUBLE_EQ(steady.inflight_integral_s, 6.0);
  EXPECT_EQ(steady.latency.count(), 1);
}

TEST(PhaseStats, EmptySliceIsAllZero) {
  const auto phase = load::make_phase_stats(
      {}, 0, 0, load::LatencyHistogram::Config{});
  EXPECT_EQ(phase.queries, 0);
  EXPECT_EQ(phase.offered_qps(), 0.0);
  EXPECT_EQ(phase.achieved_qps(), 0.0);
  EXPECT_EQ(phase.mean_inflight(), 0.0);
}

// ---- loadgen driver ---------------------------------------------------------

data::Dataset blob_test_set() {
  data::BlobsConfig cfg;
  cfg.num_samples = 200;
  cfg.num_classes = 4;
  cfg.dims = 8;
  cfg.seed = 21;
  return data::make_blobs(cfg);
}

std::vector<std::unique_ptr<nn::MlpNet>> make_experts(int k) {
  std::vector<std::unique_ptr<nn::MlpNet>> experts;
  for (int i = 0; i < k; ++i) {
    nn::MlpConfig cfg;
    cfg.in_features = 8;
    cfg.num_classes = 4;
    cfg.depth = 2;
    cfg.hidden = 12;
    Rng rng(100 + i);
    experts.push_back(std::make_unique<nn::MlpNet>(cfg, rng));
  }
  return experts;
}

std::vector<nn::Module*> expert_ptrs(
    const std::vector<std::unique_ptr<nn::MlpNet>>& experts) {
  std::vector<nn::Module*> ptrs;
  for (const auto& e : experts) ptrs.push_back(e.get());
  return ptrs;
}

sim::ScenarioConfig des_config() {
  sim::ScenarioConfig cfg;
  cfg.link = net::LinkProfile{0.0005, 0.0, 0.0};
  cfg.seed = determinism_seed();
  cfg.scheduler = sim::Scheduler::discrete_event;
  return cfg;
}

std::string result_bytes(const load::LoadResult& r) {
  std::string out = r.approach + '\0' + r.arrival + '\0';
  out += std::to_string(r.num_nodes) + ",";
  out += std::to_string(r.num_queries) + ",";
  out += std::to_string(r.schedule_digest);
  for (double v : {r.offered_qps, r.achieved_qps, r.p50_ms, r.p90_ms,
                   r.p99_ms, r.p999_ms, r.mean_ms, r.max_ms,
                   r.mean_inflight, r.accuracy_pct, r.bytes_per_query,
                   r.messages_per_query}) {
    put_double(out, v);
  }
  for (const auto& rec : r.records) {
    put_double(out, rec.arrival_s);
    put_double(out, rec.completion_s);
    out += std::to_string(rec.row);
    out += rec.correct ? '1' : '0';
  }
  return out;
}

load::LoadConfig small_load(load::ArrivalKind kind) {
  load::LoadConfig load_cfg;
  load_cfg.arrival.kind = kind;
  load_cfg.arrival.rate_qps = 500.0;
  load_cfg.arrival.clients = 3;
  load_cfg.arrival.seed = determinism_seed();
  load_cfg.num_queries = 12;
  load_cfg.warmup_queries = 3;
  load_cfg.query_seed = determinism_seed();
  return load_cfg;
}

TEST(LoadGen, ByteIdenticalAcrossRunsEveryKind) {
  const auto experts = make_experts(3);
  const auto ptrs = expert_ptrs(experts);
  const auto test = blob_test_set();
  for (const auto kind :
       {load::ArrivalKind::open_poisson, load::ArrivalKind::closed_loop,
        load::ArrivalKind::bursty}) {
    const auto a =
        load::run_teamnet_load(ptrs, test, des_config(), small_load(kind));
    const auto b =
        load::run_teamnet_load(ptrs, test, des_config(), small_load(kind));
    EXPECT_EQ(result_bytes(a), result_bytes(b)) << load::to_string(kind);
    EXPECT_EQ(a.schedule_digest, b.schedule_digest);
  }
}

TEST(LoadGen, RecordsAreCoherent) {
  const auto experts = make_experts(2);
  const auto ptrs = expert_ptrs(experts);
  const auto test = blob_test_set();
  const auto r = load::run_teamnet_load(
      ptrs, test, des_config(), small_load(load::ArrivalKind::open_poisson));
  ASSERT_EQ(static_cast<int>(r.records.size()), r.num_queries);
  double prev_arrival = 0.0;
  double prev_completion = 0.0;
  for (const auto& rec : r.records) {
    EXPECT_GE(rec.arrival_s, prev_arrival);
    EXPECT_GT(rec.completion_s, rec.arrival_s);
    // Serial master: completions are ordered even when arrivals queue up.
    EXPECT_GE(rec.completion_s, prev_completion);
    EXPECT_GE(rec.row, 0);
    EXPECT_LT(rec.row, static_cast<int>(test.size()));
    prev_arrival = rec.arrival_s;
    prev_completion = rec.completion_s;
  }
  EXPECT_GT(r.achieved_qps, 0.0);
  EXPECT_GT(r.p50_ms, 0.0);
  EXPECT_GE(r.p99_ms, r.p50_ms);
  EXPECT_GE(r.p999_ms, r.p99_ms);
  EXPECT_EQ(r.steady.latency.count(), r.num_queries - r.warmup_queries);
  EXPECT_EQ(r.warmup.latency.count(), r.warmup_queries);
}

TEST(LoadGen, ZipfRowsSkewTowardHotClasses) {
  const auto test = blob_test_set();
  const auto uniform = load::sample_load_rows(test, 400, 9, 0.0);
  const auto skewed = load::sample_load_rows(test, 400, 9, 1.5);
  // Uniform path must be byte-identical to the scenario drivers' sampling.
  EXPECT_EQ(uniform, sim::sample_query_rows(test, 400, 9));
  // Count per-class traffic; the skewed stream's hottest class must take a
  // clearly super-uniform share.
  std::vector<int> counts(4, 0);
  for (int row : skewed) {
    counts[static_cast<std::size_t>(
        test.labels[static_cast<std::size_t>(row)])]++;
  }
  EXPECT_GT(*std::max_element(counts.begin(), counts.end()), 400 / 4 + 50);
  // Deterministic per seed.
  EXPECT_EQ(skewed, load::sample_load_rows(test, 400, 9, 1.5));
}

}  // namespace
}  // namespace teamnet
