// Gate machinery tests: entropy math, the differentiable relaxations
// (Eqs. 5-7), hard gate helpers, Algorithm 2's trainer, and the alternative
// gate policies. Includes TEST_P property sweeps over K and the gain a.
#include <gtest/gtest.h>

#include <cmath>

#include "core/entropy.hpp"
#include "core/gate.hpp"
#include "core/gate_policy.hpp"
#include "core/gate_trainer.hpp"
#include "core/soft_ops.hpp"
#include "nn/mlp.hpp"
#include "tensor/ops.hpp"

namespace teamnet {
namespace {

TEST(Entropy, UniformIsMaximalDeltaIsZero) {
  Tensor probs({2, 4}, {0.25f, 0.25f, 0.25f, 0.25f, 1.0f, 0.0f, 0.0f, 0.0f});
  Tensor h = core::predictive_entropy(probs);
  EXPECT_NEAR(h[0], std::log(4.0f), 1e-5f);
  EXPECT_NEAR(h[1], 0.0f, 1e-6f);
}

TEST(Entropy, FromLogitsMatchesSoftmaxPath) {
  Rng rng(1);
  Tensor logits = Tensor::randn({5, 3}, rng);
  Tensor a = core::entropy_from_logits(logits);
  Tensor b = core::predictive_entropy(ops::softmax_rows(logits));
  EXPECT_TRUE(a.allclose(b, 1e-5f));
}

TEST(Entropy, MatrixShapeAndEvalModePreserved) {
  Rng rng(2);
  nn::MlpConfig cfg;
  cfg.in_features = 6;
  cfg.depth = 2;
  cfg.hidden = 8;
  nn::MlpNet e1(cfg, rng), e2(cfg, rng);
  e1.set_training(true);
  Tensor x = Tensor::randn({7, 6}, rng);
  Tensor h = core::entropy_matrix({&e1, &e2}, x);
  EXPECT_EQ(h.shape(), (Shape{7, 2}));
  EXPECT_TRUE(e1.training()) << "probe must restore training mode";
  for (float v : h.values()) EXPECT_GE(v, 0.0f);
}

TEST(Entropy, RelativeDeviationDetectsDiversity) {
  Tensor same({4, 2}, {1, 1, 1, 1, 1, 1, 1, 1});
  EXPECT_NEAR(core::relative_mean_abs_deviation(same), 0.0f, 1e-6f);
  Tensor diverse({1, 2}, {0.1f, 1.9f});
  EXPECT_GT(core::relative_mean_abs_deviation(diverse), 0.5f);
}

TEST(SoftOps, SoftArgminApproachesHardArgmin) {
  Tensor scores({3, 3}, {1.0f, 0.1f, 2.0f,   //
                         0.2f, 1.5f, 1.0f,   //
                         3.0f, 2.0f, 0.5f});
  ag::Var g = core::soft_argmin_rows(ag::constant(scores), 50.0f);
  EXPECT_NEAR(g.value()[0], 1.0f, 1e-2f);
  EXPECT_NEAR(g.value()[1], 0.0f, 1e-2f);
  EXPECT_NEAR(g.value()[2], 2.0f, 1e-2f);
}

TEST(SoftOps, SoftArgminIsSoftAtLowTemperature) {
  Tensor scores({1, 2}, {1.0f, 1.1f});
  ag::Var g = core::soft_argmin_rows(ag::constant(scores), 0.5f);
  EXPECT_GT(g.value()[0], 0.3f);
  EXPECT_LT(g.value()[0], 0.7f);
}

TEST(SoftOps, SoftIndicatorSelectsOwnInteger) {
  Tensor g({3, 1}, {0.0f, 1.0f, 2.0f});
  for (int i = 0; i < 3; ++i) {
    ag::Var ind = core::soft_indicator(ag::constant(g.clone()), i);
    for (int r = 0; r < 3; ++r) {
      if (r == i) {
        EXPECT_GT(ind.value()[r], 0.99f);
      } else {
        EXPECT_NEAR(ind.value()[r], 0.0f, 1e-5f);
      }
    }
  }
}

TEST(SoftOps, SoftIndicatorIsDifferentiableNearBoundary) {
  ag::Var g(Tensor({1, 1}, {0.3f}), true);
  ag::Var ind = core::soft_indicator(g, 0);
  ag::backward(ag::sum_all(ind));
  EXPECT_NE(g.grad()[0], 0.0f);
}

TEST(SoftOps, RoundingDistance) {
  Tensor g({4, 1}, {0.0f, 0.5f, 0.9f, 1.2f});
  ag::Var d = core::mean_rounding_distance(ag::constant(g));
  EXPECT_NEAR(d.value()[0], (0.0f + 0.5f + 0.1f + 0.2f) / 4.0f, 1e-5f);
}

TEST(Gate, AssignAndProportions) {
  Tensor h({4, 2}, {0.1f, 0.9f,   //
                    0.9f, 0.1f,   //
                    0.2f, 0.8f,   //
                    0.3f, 0.6f});
  auto assign = core::argmin_gate(h);
  EXPECT_EQ(assign, (std::vector<int>{0, 1, 0, 0}));
  auto gamma = core::assignment_proportions(assign, 2);
  EXPECT_FLOAT_EQ(gamma[0], 0.75f);
  EXPECT_FLOAT_EQ(gamma[1], 0.25f);

  // Delta handicap flips the borderline sample (row 3: 0.9 vs 0.6).
  auto biased = core::gate_assign(h, {3.0f, 1.0f});
  EXPECT_EQ(biased, (std::vector<int>{0, 1, 0, 1}));
}

TEST(Gate, ControllerTargetMirrorsBias) {
  auto target = core::controller_target({0.8f, 0.2f}, 0.5f);
  EXPECT_NEAR(target[0], 0.5f - 0.5f * 0.3f, 1e-6f);
  EXPECT_NEAR(target[1], 0.5f + 0.5f * 0.3f, 1e-6f);
  // Targets always sum to 1.
  EXPECT_NEAR(target[0] + target[1], 1.0f, 1e-6f);
}

TEST(Gate, PartitionByAssignment) {
  auto parts = core::partition_by_assignment({0, 1, 0, 2, 1}, 3);
  EXPECT_EQ(parts[0], (std::vector<int>{0, 2}));
  EXPECT_EQ(parts[1], (std::vector<int>{1, 4}));
  EXPECT_EQ(parts[2], (std::vector<int>{3}));
}

/// Builds a biased entropy matrix where expert 0 "wins" `bias_pct`% of rows
/// under the plain argmin gate.
Tensor biased_entropy(int n, int k, int bias_pct, std::uint64_t seed) {
  Rng rng(seed);
  Tensor h({n, k});
  for (int r = 0; r < n; ++r) {
    const int winner = (r * 100 < n * bias_pct) ? 0 : 1 + rng.randint(0, k - 2);
    for (int i = 0; i < k; ++i) {
      h[r * k + i] = (i == winner) ? rng.uniform(0.05f, 0.4f)
                                   : rng.uniform(0.7f, 1.6f);
    }
  }
  return h;
}

struct GateSweepParam {
  int num_experts;
  float gain;
  int bias_pct;
};

class GateTrainerSweep : public ::testing::TestWithParam<GateSweepParam> {};

TEST_P(GateTrainerSweep, CorrectsBiasTowardControllerTarget) {
  const auto param = GetParam();
  Tensor h = biased_entropy(128, param.num_experts, param.bias_pct, 42);
  core::GateTrainerConfig cfg;
  cfg.gain_a = param.gain;
  core::GateTrainer trainer(param.num_experts, cfg, Rng(7));

  // A few consecutive batches (warm start helps, as in real training).
  core::GateDecision d;
  for (int i = 0; i < 4; ++i) d = trainer.decide(h);

  const auto gamma = core::assignment_proportions(core::argmin_gate(h),
                                                  param.num_experts);
  const auto target = core::controller_target(gamma, param.gain);
  EXPECT_LE(core::gate_objective(d.gamma_bar, target), 0.10f)
      << "K=" << param.num_experts << " a=" << param.gain
      << " bias=" << param.bias_pct;
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, GateTrainerSweep,
    ::testing::Values(GateSweepParam{2, 0.3f, 70}, GateSweepParam{2, 0.5f, 85},
                      GateSweepParam{2, 0.7f, 95}, GateSweepParam{4, 0.3f, 55},
                      GateSweepParam{4, 0.5f, 70}, GateSweepParam{4, 0.7f, 85},
                      GateSweepParam{3, 0.5f, 80}));

TEST(GateTrainer, UnbiasedBatchExitsImmediately) {
  // Perfectly balanced entropies: argmin already meets the target.
  Tensor h = biased_entropy(128, 2, 50, 3);
  core::GateTrainer trainer(2, {}, Rng(5));
  auto d = trainer.decide(h);
  EXPECT_LE(d.objective, trainer.config().j_threshold + 0.05f);
}

TEST(GateTrainer, RejectsBadConfig) {
  EXPECT_THROW(core::GateTrainer(1, {}, Rng(1)), InvariantError);
  core::GateTrainerConfig bad;
  bad.gain_a = 1.5f;
  EXPECT_THROW(core::GateTrainer(2, bad, Rng(1)), InvariantError);
}

TEST(GateTrainer, TemperatureStaysInSaneBand) {
  Tensor h = biased_entropy(64, 2, 85, 11);
  core::GateTrainer trainer(2, {}, Rng(13));
  for (int i = 0; i < 8; ++i) trainer.decide(h);
  EXPECT_GE(trainer.temperature(), 0.5f);
  EXPECT_LE(trainer.temperature(), 100.0f);
}

TEST(GatePolicy, ArgMinNeverCorrectsBias) {
  Tensor h = biased_entropy(100, 2, 90, 17);
  auto policy = core::make_gate_policy(core::GateKind::ArgMin, 2, {}, Rng(1));
  auto d = policy->decide(h);
  EXPECT_NEAR(d.gamma_bar[0], 0.9f, 0.02f) << "argmin keeps the rich richer";
}

TEST(GatePolicy, ProportionalControllerConverges) {
  auto policy =
      core::make_gate_policy(core::GateKind::Proportional, 2, {}, Rng(1));
  core::GateDecision d;
  for (int i = 0; i < 30; ++i) {
    d = policy->decide(biased_entropy(100, 2, 85, 100 + i));
  }
  EXPECT_NEAR(d.gamma_bar[0], 0.5f, 0.2f);
}

TEST(GatePolicy, RandomIsRoughlyUniform) {
  auto policy = core::make_gate_policy(core::GateKind::Random, 4, {}, Rng(2));
  auto d = policy->decide(biased_entropy(400, 4, 90, 19));
  for (float g : d.gamma_bar) EXPECT_NEAR(g, 0.25f, 0.1f);
}

TEST(GatePolicy, Names) {
  EXPECT_EQ(core::to_string(core::GateKind::Learned), "learned");
  EXPECT_EQ(core::to_string(core::GateKind::Random), "random");
}

}  // namespace
}  // namespace teamnet

namespace teamnet {
namespace {

TEST(WeightedController, UnequalSetPoints) {
  // Device with weight 3 should be targeted 3x the share of weight-1 peers.
  const auto target =
      core::weighted_controller_target({0.6f, 0.2f, 0.2f}, {3.0f, 1.0f, 1.0f},
                                       0.5f);
  // Set points are [0.6, 0.2, 0.2]; gamma equals them -> target == set point.
  EXPECT_NEAR(target[0], 0.6f, 1e-5f);
  EXPECT_NEAR(target[1], 0.2f, 1e-5f);
  EXPECT_NEAR(target[2], 0.2f, 1e-5f);
}

TEST(WeightedController, CorrectsTowardWeightedSetPoint) {
  // gamma uniform but weights 2:1 -> expert 0 should be targeted above 1/2.
  const auto target =
      core::weighted_controller_target({0.5f, 0.5f}, {2.0f, 1.0f}, 0.5f);
  EXPECT_GT(target[0], 0.5f);
  EXPECT_LT(target[1], 0.5f);
  EXPECT_NEAR(target[0] + target[1], 1.0f, 1e-5f);
}

TEST(WeightedController, RejectsNonPositiveWeights) {
  EXPECT_THROW(
      core::weighted_controller_target({0.5f, 0.5f}, {1.0f, 0.0f}, 0.5f),
      InvariantError);
  EXPECT_THROW(
      core::weighted_controller_target({0.5f, 0.5f}, {1.0f}, 0.5f),
      InvariantError);
}

TEST(WeightedController, UniformWeightsMatchPlainController) {
  const std::vector<float> gamma = {0.7f, 0.1f, 0.2f};
  const auto plain = core::controller_target(gamma, 0.4f);
  const auto weighted =
      core::weighted_controller_target(gamma, {5.0f, 5.0f, 5.0f}, 0.4f);
  ASSERT_EQ(plain.size(), weighted.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_NEAR(plain[i], weighted[i], 1e-5f);
  }
}

TEST(GateTrainer, CapacityWeightsSteerThePartition) {
  // Balanced entropies, but expert 0 is declared twice as capable: the gate
  // should hand it roughly two thirds of the batch.
  core::GateTrainerConfig cfg;
  cfg.capacity_weights = {2.0f, 1.0f};
  core::GateTrainer trainer(2, cfg, Rng(7));
  Tensor h = biased_entropy(128, 2, 50, 42);  // unbiased batch
  core::GateDecision d;
  for (int i = 0; i < 4; ++i) d = trainer.decide(h);
  EXPECT_NEAR(d.gamma_bar[0], 2.0f / 3.0f, 0.12f);
  EXPECT_NEAR(d.gamma_bar[1], 1.0f / 3.0f, 0.12f);
}

TEST(GateTrainer, CapacityWeightsValidated) {
  core::GateTrainerConfig cfg;
  cfg.capacity_weights = {1.0f, 1.0f, 1.0f};  // wrong size for K=2
  EXPECT_THROW(core::GateTrainer(2, cfg, Rng(1)), InvariantError);
}

}  // namespace
}  // namespace teamnet

namespace teamnet {
namespace {

TEST(GateTrainer, RescuesAStarvedExpert) {
  // Expert 2 of 4 has uniformly HIGH entropy (never trained) while the
  // others are confident everywhere — the regime where gradient search
  // stalls because no bounded delta swing is found by descent. The rescue
  // projection must still hand it roughly its target share.
  Rng rng(7);
  const int n = 128, k = 4;
  Tensor h({n, k});
  for (int r = 0; r < n; ++r) {
    for (int i = 0; i < k; ++i) {
      h[r * k + i] = (i == 1) ? rng.uniform(2.0f, 2.3f)   // starved expert
                              : rng.uniform(0.05f, 0.5f);
    }
  }
  core::GateTrainer trainer(k, {}, Rng(9));
  core::GateDecision d;
  for (int call = 0; call < 3; ++call) d = trainer.decide(h);
  EXPECT_GT(d.gamma_bar[1], 0.12f)
      << "starved expert must receive a meaningful share";
  EXPECT_LE(d.objective, 0.12f);
}

}  // namespace
}  // namespace teamnet
