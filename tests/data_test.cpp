// Dataset substrate tests: determinism, balance, separability and the
// super-cluster structure the specialization experiment depends on.
#include <gtest/gtest.h>

#include <cmath>

#include "data/blobs.hpp"
#include "data/dataset.hpp"
#include "data/synthetic_cifar.hpp"
#include "data/synthetic_mnist.hpp"

namespace teamnet {
namespace {

/// Nearest-centroid classification accuracy — a cheap proxy for "classes
/// are separable in pixel space".
double nearest_centroid_accuracy(const data::Dataset& train,
                                 const data::Dataset& test) {
  const std::int64_t features = train.images.numel() / train.size();
  Tensor train_flat = train.images.reshape({train.size(), features});
  Tensor test_flat = test.images.reshape({test.size(), features});

  std::vector<std::vector<double>> centroids(
      static_cast<std::size_t>(train.num_classes),
      std::vector<double>(static_cast<std::size_t>(features), 0.0));
  std::vector<int> counts(static_cast<std::size_t>(train.num_classes), 0);
  for (std::int64_t i = 0; i < train.size(); ++i) {
    const int y = train.labels[static_cast<std::size_t>(i)];
    ++counts[static_cast<std::size_t>(y)];
    for (std::int64_t f = 0; f < features; ++f) {
      centroids[static_cast<std::size_t>(y)][static_cast<std::size_t>(f)] +=
          train_flat[i * features + f];
    }
  }
  for (int c = 0; c < train.num_classes; ++c) {
    for (auto& v : centroids[static_cast<std::size_t>(c)]) {
      v /= counts[static_cast<std::size_t>(c)];
    }
  }

  std::size_t correct = 0;
  for (std::int64_t i = 0; i < test.size(); ++i) {
    int best = -1;
    double best_dist = 1e300;
    for (int c = 0; c < train.num_classes; ++c) {
      double dist = 0.0;
      for (std::int64_t f = 0; f < features; ++f) {
        const double d =
            test_flat[i * features + f] -
            centroids[static_cast<std::size_t>(c)][static_cast<std::size_t>(f)];
        dist += d * d;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    if (best == test.labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

TEST(Dataset, SubsetSplitAndCounts) {
  data::BlobsConfig cfg;
  cfg.num_samples = 100;
  cfg.num_classes = 4;
  auto ds = data::make_blobs(cfg);
  EXPECT_EQ(ds.size(), 100);
  auto counts = ds.class_counts();
  for (int c : counts) EXPECT_EQ(c, 25);

  auto sub = ds.subset({0, 5, 10});
  EXPECT_EQ(sub.size(), 3);
  EXPECT_EQ(sub.labels[1], ds.labels[5]);

  auto [a, b] = ds.split(0.8);
  EXPECT_EQ(a.size(), 80);
  EXPECT_EQ(b.size(), 20);
  EXPECT_THROW(ds.subset({1000}), InvariantError);
}

TEST(Dataset, ShuffleIsDeterministicPerSeed) {
  data::BlobsConfig cfg;
  cfg.num_samples = 64;
  auto a = data::make_blobs(cfg);
  auto b = data::make_blobs(cfg);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_TRUE(a.images.allclose(b.images));
}

TEST(BatchIterator, CoversEpochExactlyOnce) {
  data::BlobsConfig cfg;
  cfg.num_samples = 50;
  auto ds = data::make_blobs(cfg);
  data::BatchIterator it(ds, 16);
  EXPECT_EQ(it.batches_per_epoch(), 4);
  std::int64_t seen = 0;
  for (auto b = it.next(); b.size() > 0; b = it.next()) seen += b.size();
  EXPECT_EQ(seen, 50);
  EXPECT_EQ(it.next().size(), 0);  // epoch exhausted
  it.reset();
  EXPECT_EQ(it.next().size(), 16);
}

TEST(BatchIterator, ShufflingChangesOrderButNotContent) {
  data::BlobsConfig cfg;
  cfg.num_samples = 64;
  auto ds = data::make_blobs(cfg);
  Rng rng(5);
  data::BatchIterator it(ds, 64, &rng);
  auto b1 = it.next();
  it.reset();
  auto b2 = it.next();
  // Same multiset of labels, different order (with high probability).
  auto s1 = b1.y, s2 = b2.y;
  EXPECT_NE(b1.y, b2.y);
  std::sort(s1.begin(), s1.end());
  std::sort(s2.begin(), s2.end());
  EXPECT_EQ(s1, s2);
}

TEST(SyntheticMnist, BalancedAndDeterministic) {
  data::MnistConfig cfg;
  cfg.num_samples = 200;
  auto a = data::make_synthetic_mnist(cfg);
  auto b = data::make_synthetic_mnist(cfg);
  EXPECT_EQ(a.num_classes, 10);
  EXPECT_EQ(a.images.shape(), (Shape{200, 28 * 28}));
  for (int c : a.class_counts()) EXPECT_EQ(c, 20);
  EXPECT_TRUE(a.images.allclose(b.images));
  for (float v : a.images.values()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(SyntheticMnist, ClassesAreSeparable) {
  data::MnistConfig cfg;
  cfg.num_samples = 1200;
  auto ds = data::make_synthetic_mnist(cfg);
  auto [test, train] = ds.split(0.25);
  EXPECT_GT(nearest_centroid_accuracy(train, test), 0.7)
      << "digit templates should separate well above 10% chance";
}

TEST(SyntheticMnist, IntraClassVarianceExists) {
  Rng rng(9);
  Tensor a = data::render_digit(3, 28, rng, 0.05f, 2.0f);
  Tensor b = data::render_digit(3, 28, rng, 0.05f, 2.0f);
  EXPECT_FALSE(a.allclose(b, 1e-3f)) << "two renders must differ";
}

TEST(SyntheticCifar, BalancedShapesAndRange) {
  data::CifarConfig cfg;
  cfg.num_samples = 200;
  cfg.image_size = 16;
  auto ds = data::make_synthetic_cifar(cfg);
  EXPECT_EQ(ds.images.shape(), (Shape{200, 3, 16, 16}));
  for (int c : ds.class_counts()) EXPECT_EQ(c, 20);
  for (float v : ds.images.values()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(SyntheticCifar, ClassesAreSeparable) {
  data::CifarConfig cfg;
  cfg.num_samples = 1500;
  auto ds = data::make_synthetic_cifar(cfg);
  auto [test, train] = ds.split(0.2);
  EXPECT_GT(nearest_centroid_accuracy(train, test), 0.6);
}

TEST(SyntheticCifar, SuperClustersSeparateInColorSpace) {
  // Mean blue-channel minus green-channel should split machines (sky/sea
  // backgrounds) from animals (vegetation backgrounds) — the structure
  // Figure 9's specialization result needs.
  data::CifarConfig cfg;
  cfg.num_samples = 500;
  auto ds = data::make_synthetic_cifar(cfg);
  const std::int64_t s = cfg.image_size;
  const std::int64_t plane = s * s;
  double machine_score = 0.0, animal_score = 0.0;
  int machines = 0, animals = 0;
  for (std::int64_t i = 0; i < ds.size(); ++i) {
    const float* img = ds.images.data() + i * 3 * plane;
    double green = 0.0, blue = 0.0;
    for (std::int64_t p = 0; p < plane; ++p) {
      green += img[plane + p];
      blue += img[2 * plane + p];
    }
    const double score = (blue - green) / static_cast<double>(plane);
    if (data::is_machine_class(ds.labels[static_cast<std::size_t>(i)])) {
      machine_score += score;
      ++machines;
    } else {
      animal_score += score;
      ++animals;
    }
  }
  EXPECT_GT(machine_score / machines, animal_score / animals + 0.05)
      << "machines should be bluer than animals on average";
}

TEST(SyntheticCifar, ClassMetadata) {
  EXPECT_EQ(data::cifar_class_name(0), "airplane");
  EXPECT_EQ(data::cifar_class_name(9), "truck");
  EXPECT_TRUE(data::is_machine_class(0));
  EXPECT_TRUE(data::is_machine_class(8));
  EXPECT_FALSE(data::is_machine_class(3));
  EXPECT_THROW(data::cifar_class_name(10), InvariantError);
}

TEST(Blobs, SeparableByConstruction) {
  data::BlobsConfig cfg;
  cfg.num_samples = 800;
  auto ds = data::make_blobs(cfg);
  auto [test, train] = ds.split(0.25);
  EXPECT_GT(nearest_centroid_accuracy(train, test), 0.95);
}

TEST(Dataset, ValidateCatchesBadLabels) {
  data::Dataset ds;
  ds.images = Tensor({2, 3});
  ds.labels = {0, 5};
  ds.num_classes = 2;
  EXPECT_THROW(ds.validate(), InvariantError);
}

}  // namespace
}  // namespace teamnet
