// End-to-end TeamNet tests on the fast blobs dataset: specialization,
// balanced partitions, inference gating and accuracy vs a single model.
#include <gtest/gtest.h>

#include "core/teamnet.hpp"
#include "data/blobs.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"

namespace teamnet {
namespace {

data::Dataset blobs_train() {
  data::BlobsConfig cfg;
  cfg.num_samples = 600;
  cfg.num_classes = 4;
  cfg.dims = 8;
  cfg.seed = 21;
  return data::make_blobs(cfg);
}

data::Dataset blobs_test() {
  data::BlobsConfig cfg;
  cfg.num_samples = 200;
  cfg.num_classes = 4;
  cfg.dims = 8;
  cfg.seed = 21;  // same centers (same seed), different draw below
  data::Dataset d = data::make_blobs(cfg);
  Rng rng(99);
  d.shuffle(rng);
  return d;
}

core::ExpertFactory small_mlp_factory(std::int64_t dims, int classes) {
  return [dims, classes](int /*index*/, Rng& rng) -> nn::ModulePtr {
    nn::MlpConfig cfg;
    cfg.in_features = dims;
    cfg.num_classes = classes;
    cfg.depth = 2;
    cfg.hidden = 16;
    return std::make_unique<nn::MlpNet>(cfg, rng);
  };
}

TEST(TeamNet, TrainsToHighAccuracyOnBlobs) {
  core::TeamNetConfig cfg;
  cfg.num_experts = 2;
  cfg.epochs = 6;
  cfg.batch_size = 32;
  cfg.sgd.lr = 0.05f;
  auto train = blobs_train();
  core::TeamNetTrainer trainer(cfg, small_mlp_factory(8, 4));
  core::TeamNetEnsemble ensemble = trainer.train(train);
  const double acc = ensemble.evaluate_accuracy(blobs_test());
  EXPECT_GT(acc, 0.9) << "TeamNet should solve separable blobs";
}

TEST(TeamNet, PartitionsConvergeTowardSetPoint) {
  core::TeamNetConfig cfg;
  cfg.num_experts = 2;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  auto train = blobs_train();
  core::TeamNetTrainer trainer(cfg, small_mlp_factory(8, 4));
  trainer.train(train);
  const auto& tel = trainer.telemetry();
  ASSERT_GT(tel.iterations(), 20u);
  // The paper's convergence claim (Fig. 6) is about the mean proportion:
  // the smoothed gamma over the last quarter of training sits near 1/K.
  const std::size_t window = tel.iterations() / 4;
  const auto smoothed = tel.smoothed_gamma(tel.iterations() - 1, window);
  for (float g : smoothed) {
    EXPECT_NEAR(g, 0.5f, 0.15f)
        << "late-training mean partition should hover near 1/K";
  }
}

TEST(TeamNet, EnsembleInferenceSelectsLeastEntropyExpert) {
  core::TeamNetConfig cfg;
  cfg.num_experts = 2;
  cfg.epochs = 4;
  cfg.batch_size = 32;
  auto train = blobs_train();
  core::TeamNetTrainer trainer(cfg, small_mlp_factory(8, 4));
  core::TeamNetEnsemble ensemble = trainer.train(train);

  auto test = blobs_test();
  auto result = ensemble.infer(test.images);
  ASSERT_EQ(result.chosen.size(), test.labels.size());
  const std::int64_t k = 2;
  for (std::size_t r = 0; r < result.chosen.size(); ++r) {
    const int w = result.chosen[r];
    for (std::int64_t i = 0; i < k; ++i) {
      EXPECT_LE(result.entropy[static_cast<std::int64_t>(r) * k + w],
                result.entropy[static_cast<std::int64_t>(r) * k + i] + 1e-6f);
    }
  }
}

TEST(TeamNet, BothExpertsWinSomeSamples) {
  core::TeamNetConfig cfg;
  cfg.num_experts = 2;
  cfg.epochs = 6;
  cfg.batch_size = 32;
  auto train = blobs_train();
  core::TeamNetTrainer trainer(cfg, small_mlp_factory(8, 4));
  core::TeamNetEnsemble ensemble = trainer.train(train);
  auto result = ensemble.infer(blobs_test().images);
  int wins0 = 0, wins1 = 0;
  for (int w : result.chosen) (w == 0 ? wins0 : wins1)++;
  EXPECT_GT(wins0, 0) << "expert 0 never selected — no specialization";
  EXPECT_GT(wins1, 0) << "expert 1 never selected — no specialization";
}

TEST(TeamNet, MajorityVoteRuleRuns) {
  core::TeamNetConfig cfg;
  cfg.num_experts = 2;
  cfg.epochs = 4;
  cfg.batch_size = 32;
  auto train = blobs_train();
  core::TeamNetTrainer trainer(cfg, small_mlp_factory(8, 4));
  core::TeamNetEnsemble ensemble = trainer.train(train);
  const double acc =
      ensemble.evaluate_accuracy(blobs_test(), core::SelectionRule::MajorityVote);
  EXPECT_GT(acc, 0.4);
}

TEST(TeamNet, ConfigValidation) {
  core::TeamNetConfig cfg;
  cfg.num_experts = 1;
  EXPECT_THROW(core::TeamNetTrainer(cfg, small_mlp_factory(8, 4)),
               InvariantError);
  cfg.num_experts = 2;
  EXPECT_THROW(core::TeamNetTrainer(cfg, nullptr), InvariantError);
}

TEST(TeamNet, FourExpertsTrainAndInfer) {
  core::TeamNetConfig cfg;
  cfg.num_experts = 4;
  cfg.epochs = 6;
  cfg.batch_size = 32;
  auto train = blobs_train();
  core::TeamNetTrainer trainer(cfg, small_mlp_factory(8, 4));
  core::TeamNetEnsemble ensemble = trainer.train(train);
  EXPECT_EQ(ensemble.num_experts(), 4);
  EXPECT_GT(ensemble.evaluate_accuracy(blobs_test()), 0.8);
}

}  // namespace
}  // namespace teamnet
