// Determinism gate (ctest label `determinism`, run under Release and TSan
// in CI): every scenario driver, run twice with the same seed under the
// discrete-event scheduler, must produce byte-identical results —
// latency_ms and every other double included, compared as raw bytes, not
// within a tolerance. TEAMNET_DETERMINISM_SEED sweeps the seed in CI.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "data/blobs.hpp"
#include "moe/sg_moe.hpp"
#include "nn/mlp.hpp"
#include "nn/shake_shake.hpp"
#include "sim/scenario.hpp"

namespace teamnet {
namespace {

std::uint64_t determinism_seed() {
  const char* env = std::getenv("TEAMNET_DETERMINISM_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 123u;
}

// ---- byte-exact serialization ----------------------------------------------

void put_double(std::string& out, double v) {
  char raw[sizeof v];
  std::memcpy(raw, &v, sizeof v);
  out.append(raw, sizeof v);
}

std::string result_bytes(const sim::ScenarioResult& r) {
  std::string out = r.approach;
  out += '\0';
  out += std::to_string(r.num_nodes);
  out += '\0';
  put_double(out, r.latency_ms);
  put_double(out, r.accuracy_pct);
  put_double(out, r.usage.memory_pct);
  put_double(out, r.usage.cpu_pct);
  put_double(out, r.usage.gpu_pct);
  put_double(out, r.bytes_per_query);
  put_double(out, r.messages_per_query);
  return out;
}

std::string result_bytes(const sim::ChaosResult& r) {
  std::string out = result_bytes(r.scenario);
  out += '\0';
  for (int v : r.live_nodes) out += std::to_string(v) + ",";
  out += '\0';
  for (char c : r.correct) out += c ? '1' : '0';
  out += '\0';
  out += std::to_string(r.stale_replies);
  out += '\0';
  out += std::to_string(r.rejoins);
  out += '\0';
  out += std::to_string(r.faults_injected);
  out += '\0';
  out += r.fault_schedule;
  return out;
}

std::string result_bytes(const sim::ResilienceResult& r) {
  std::string out = result_bytes(r.scenario);
  out += '\0';
  for (double ms : r.latency_ms) put_double(out, ms);
  put_double(out, r.p50_ms);
  put_double(out, r.p99_ms);
  out += '\0';
  for (int level : r.degradation) out += std::to_string(level) + ",";
  out += '\0';
  for (char c : r.correct) out += c ? '1' : '0';
  for (std::int64_t v :
       {r.full_gathers, r.quorum_gathers, r.local_only_gathers,
        r.hedges_sent, r.hedge_wins, r.hedge_duplicates, r.breaker_opens,
        r.rejoins, r.stale_replies, r.expired_drops, r.faults_injected}) {
    out += '\0';
    out += std::to_string(v);
  }
  return out;
}

// ---- shared fixtures --------------------------------------------------------

data::Dataset blob_test_set() {
  data::BlobsConfig cfg;
  cfg.num_samples = 200;
  cfg.num_classes = 4;
  cfg.dims = 8;
  cfg.seed = 21;
  return data::make_blobs(cfg);
}

/// 8x8 3-channel image dataset for the Shake-Shake MPI drivers; labels are
/// arbitrary (the gate here is bit-stability, not model quality).
data::Dataset image_test_set() {
  data::Dataset set;
  Rng rng(31);
  set.images = Tensor::randn({24, 3, 8, 8}, rng);
  set.num_classes = 4;
  for (int i = 0; i < 24; ++i) set.labels.push_back(i % 4);
  return set;
}

sim::ScenarioConfig des_config() {
  sim::ScenarioConfig cfg;
  cfg.num_queries = 8;
  cfg.link = net::LinkProfile{0.0005, 0.0, 0.0};
  cfg.seed = determinism_seed();
  cfg.scheduler = sim::Scheduler::discrete_event;
  return cfg;
}

std::vector<std::unique_ptr<nn::MlpNet>> make_experts(int k) {
  std::vector<std::unique_ptr<nn::MlpNet>> experts;
  for (int i = 0; i < k; ++i) {
    nn::MlpConfig cfg;
    cfg.in_features = 8;
    cfg.num_classes = 4;
    cfg.depth = 2;
    cfg.hidden = 12;
    Rng rng(100 + i);
    experts.push_back(std::make_unique<nn::MlpNet>(cfg, rng));
  }
  return experts;
}

std::vector<nn::Module*> expert_ptrs(
    const std::vector<std::unique_ptr<nn::MlpNet>>& experts) {
  std::vector<nn::Module*> ptrs;
  for (const auto& e : experts) ptrs.push_back(e.get());
  return ptrs;
}

std::unique_ptr<nn::ShakeShakeNet> make_shake_shake() {
  nn::ShakeShakeConfig cfg;
  cfg.depth = 8;
  cfg.base_channels = 2;
  cfg.image_size = 8;
  cfg.num_classes = 4;
  Rng rng(43);
  auto model = std::make_unique<nn::ShakeShakeNet>(cfg, rng);
  model->set_training(false);
  return model;
}

// ---- one test per scenario driver ------------------------------------------

TEST(Determinism, Baseline) {
  const auto experts = make_experts(1);
  const auto test = blob_test_set();
  const auto a = sim::run_baseline(*experts[0], test, des_config());
  const auto b = sim::run_baseline(*experts[0], test, des_config());
  EXPECT_EQ(result_bytes(a), result_bytes(b));
}

TEST(Determinism, TeamNet) {
  const auto experts = make_experts(3);
  const auto ptrs = expert_ptrs(experts);
  const auto test = blob_test_set();
  const auto a = sim::run_teamnet(ptrs, test, des_config());
  const auto b = sim::run_teamnet(ptrs, test, des_config());
  EXPECT_EQ(result_bytes(a), result_bytes(b));
}

TEST(Determinism, TeamNetHeterogeneous) {
  const auto experts = make_experts(3);
  const auto ptrs = expert_ptrs(experts);
  const auto test = blob_test_set();
  const std::vector<sim::DeviceProfile> devices = {
      sim::jetson_tx2_cpu(), sim::raspberry_pi_3b(), sim::raspberry_pi_3b()};
  const auto a =
      sim::run_teamnet_heterogeneous(ptrs, devices, test, des_config());
  const auto b =
      sim::run_teamnet_heterogeneous(ptrs, devices, test, des_config());
  EXPECT_EQ(result_bytes(a), result_bytes(b));
}

TEST(Determinism, MpiMatrix) {
  nn::MlpConfig cfg;
  cfg.in_features = 8;
  cfg.num_classes = 4;
  cfg.depth = 3;
  cfg.hidden = 12;
  Rng rng(7);
  nn::MlpNet model(cfg, rng);
  const auto test = blob_test_set();
  const auto a = sim::run_mpi_matrix(model, test, des_config(), 3);
  const auto b = sim::run_mpi_matrix(model, test, des_config(), 3);
  EXPECT_EQ(result_bytes(a), result_bytes(b));
}

TEST(Determinism, MpiKernel) {
  auto model = make_shake_shake();
  const auto test = image_test_set();
  auto cfg = des_config();
  cfg.num_queries = 4;  // conv inference is the slow part; 4 is plenty
  const auto a = sim::run_mpi_kernel(*model, test, cfg, 2);
  const auto b = sim::run_mpi_kernel(*model, test, cfg, 2);
  EXPECT_EQ(result_bytes(a), result_bytes(b));
}

TEST(Determinism, MpiBranch) {
  auto model = make_shake_shake();
  const auto test = image_test_set();
  auto cfg = des_config();
  cfg.num_queries = 4;
  const auto a = sim::run_mpi_branch(*model, test, cfg);
  const auto b = sim::run_mpi_branch(*model, test, cfg);
  EXPECT_EQ(result_bytes(a), result_bytes(b));
}

TEST(Determinism, SgMoe) {
  moe::SgMoeConfig cfg;
  cfg.num_experts = 3;
  cfg.epochs = 1;
  moe::SgMoe model(cfg, 8, [](int /*index*/, Rng& rng) {
    nn::MlpConfig mc;
    mc.in_features = 8;
    mc.num_classes = 4;
    mc.depth = 2;
    mc.hidden = 10;
    return std::make_unique<nn::MlpNet>(mc, rng);
  });
  const auto test = blob_test_set();
  model.train(test);
  const auto a = sim::run_sg_moe(model, test, des_config());
  const auto b = sim::run_sg_moe(model, test, des_config());
  EXPECT_EQ(result_bytes(a), result_bytes(b));
}

TEST(Determinism, TeamNetChaos) {
  const auto experts = make_experts(3);
  const auto ptrs = expert_ptrs(experts);
  const auto test = blob_test_set();
  sim::ChaosConfig chaos;
  chaos.faults.seed = determinism_seed();
  chaos.faults.drop_prob = 0.2;
  chaos.faults.corrupt_prob = 0.1;
  chaos.faults.duplicate_prob = 0.15;
  chaos.worker_timeout_s = 0.25;
  chaos.probe_interval = 2;
  chaos.partition_worker = 0;
  chaos.partition_from_query = 3;
  chaos.heal_at_query = 6;
  const auto a = sim::run_teamnet_chaos(ptrs, test, des_config(), chaos);
  const auto b = sim::run_teamnet_chaos(ptrs, test, des_config(), chaos);
  EXPECT_EQ(result_bytes(a), result_bytes(b));
}

/// The full degradation plane — drops, duplicates, quorum gather, hedged
/// dispatch to backup replicas, circuit breakers, expired-request drops —
/// must still be bit-stable under the discrete-event scheduler, per-query
/// latencies included.
TEST(Determinism, TeamNetResilience) {
  const auto experts = make_experts(3);
  const auto ptrs = expert_ptrs(experts);
  const auto test = blob_test_set();
  sim::ResilienceConfig res;
  res.faults.seed = determinism_seed();
  res.faults.drop_prob = 0.2;
  res.faults.duplicate_prob = 0.15;
  res.worker_timeout_s = 0.05;
  res.quorum = 2;
  res.hedging = true;
  const auto a = sim::run_teamnet_resilience(ptrs, test, des_config(), res);
  const auto b = sim::run_teamnet_resilience(ptrs, test, des_config(), res);
  EXPECT_EQ(result_bytes(a), result_bytes(b));
  EXPECT_EQ(a.scenario.schedule_digest, b.scenario.schedule_digest);
}

}  // namespace
}  // namespace teamnet
