// Shared main() for the google-benchmark micro benches, adding the repo's
// `--json PATH` convention on top of the standard benchmark flags: results
// still print to the console exactly as before, and a machine-readable row
// per benchmark (name, iterations, per-iteration real/cpu time,
// items/bytes per second) is written to PATH. Unlike the sweep benches'
// --json, micro timings are wall-clock by nature — the file is for
// tracking and tooling, not for byte-identity gates.
//
// Kept separate from teamnet_bench_common so the scenario benches don't
// pick up a link dependency on the google-benchmark library.
#pragma once

namespace teamnet::bench {

/// Drop-in replacement for BENCHMARK_MAIN()'s body: strips `--json PATH`,
/// forwards everything else to benchmark::Initialize, runs the registered
/// benchmarks with a console+collecting reporter, and writes the JSON
/// sink if requested. Returns the process exit code.
int micro_main(int argc, char** argv);

}  // namespace teamnet::bench
