// Ablation: gate policy. Trains TeamNet on MNIST with the paper's learned
// dynamic gate vs plain argmin (no bias correction — "richer gets richer"),
// a direct proportional controller (no MLP), and random assignment
// (SG-MoE-style routing). Reports accuracy and partition balance.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/entropy.hpp"
#include "tensor/ops.hpp"

namespace teamnet::bench {
namespace {

struct GateOutcome {
  std::string name;
  double accuracy_pct;
  double late_deviation;   // mean max|gamma - 1/K| over last quarter
  double min_share;        // smallest expert's share of inference wins
};

GateOutcome evaluate(const MnistSetup& setup, core::GateKind kind,
                     const Options& opts) {
  TrainedTeam team = train_mnist_teamnet(setup, 2, opts, kind);

  GateOutcome out;
  out.name = core::to_string(kind);

  // Accuracy under the argmin-entropy ensemble rule.
  Tensor entropy = core::entropy_matrix(team.expert_ptrs(), setup.test.images);
  const auto chosen = ops::argmin_rows(entropy);
  std::size_t correct = 0;
  std::vector<int> win_counts(2, 0);
  for (std::int64_t r = 0; r < setup.test.size(); ++r) {
    const int expert = chosen[static_cast<std::size_t>(r)];
    ++win_counts[static_cast<std::size_t>(expert)];
    Tensor probs = ops::softmax_rows(
        team.experts[static_cast<std::size_t>(expert)]->predict(
            ops::take_rows(setup.test.images,
                           {static_cast<int>(r)})));
    if (ops::argmax_rows(probs)[0] ==
        setup.test.labels[static_cast<std::size_t>(r)]) {
      ++correct;
    }
  }
  out.accuracy_pct = 100.0 * static_cast<double>(correct) /
                     static_cast<double>(setup.test.size());
  out.min_share = static_cast<double>(
                      *std::min_element(win_counts.begin(), win_counts.end())) /
                  static_cast<double>(setup.test.size());

  const auto& tel = team.telemetry;
  double dev = 0.0;
  std::size_t count = 0;
  for (std::size_t t = tel.iterations() * 3 / 4; t < tel.iterations(); ++t) {
    dev += tel.max_deviation(t);
    ++count;
  }
  out.late_deviation = count ? dev / static_cast<double>(count) : 1.0;
  return out;
}

int main_impl(int argc, char** argv) {
  Options opts = parse_options(argc, argv);
  print_banner("Ablation — gate policy (learned vs argmin vs proportional vs"
               " random)",
               "§IV-B motivation: why dynamic gating is needed");

  MnistSetup setup = mnist_setup(opts);
  std::vector<GateOutcome> outcomes;
  for (auto kind : {core::GateKind::Learned, core::GateKind::Proportional,
                    core::GateKind::ArgMin, core::GateKind::Random}) {
    outcomes.push_back(evaluate(setup, kind, opts));
  }

  Table table({"gate", "accuracy (%)", "late max|gamma-1/K|",
               "min expert share at inference"});
  for (const auto& o : outcomes) {
    table.add_row({o.name, Table::num(o.accuracy_pct, 1),
                   Table::num(o.late_deviation, 3), Table::num(o.min_share, 3)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: learned/proportional keep partitions near\n"
              "1/K; plain argmin drifts (richer-gets-richer); random balances\n"
              "the data but forfeits specialization.\n");
  write_observability_outputs(opts);
  return 0;
}

}  // namespace
}  // namespace teamnet::bench

int main(int argc, char** argv) { return teamnet::bench::main_impl(argc, argv); }
