// Reproduces Table I: handwritten digit recognition on Jetson TX2, CPU-only
// (a) and GPU+CPU (b). Columns: Baseline MLP-8, then TeamNet / MPI-Matrix /
// SG-MoE-G / SG-MoE-M at 2 and 4 edge nodes.
#include <cstdio>

#include "bench_common.hpp"

namespace teamnet::bench {
namespace {

struct PaperRow {
  double latency;
  double accuracy;
};

void run_device(const Options& opts, JsonReport& report,
                const MnistSetup& setup, nn::MlpNet& baseline,
                const TrainedTeam& team2, const TrainedTeam& team4,
                moe::SgMoe& moe2, moe::SgMoe& moe4,
                const sim::DeviceProfile& device, const std::string& label,
                const std::vector<PaperRow>& paper) {
  sim::ScenarioConfig cfg;
  cfg.device = device;
  cfg.num_queries = 40;
  apply_scheduler_options(cfg, opts);

  auto socket_cfg = cfg;
  socket_cfg.link = sim::socket_link();
  auto mpi_cfg = cfg;
  mpi_cfg.link = sim::mpi_link();
  auto grpc_cfg = cfg;
  grpc_cfg.link = sim::grpc_link();

  std::vector<PaperColumn> columns;
  auto add = [&](const std::string& header, sim::ScenarioResult result,
                 std::size_t paper_idx) {
    report.add(label + " / " + header, result);
    PaperColumn col;
    col.header = header;
    col.measured = std::move(result);
    if (paper_idx < paper.size()) {
      col.paper_latency_ms = paper[paper_idx].latency;
      col.paper_accuracy_pct = paper[paper_idx].accuracy;
    }
    columns.push_back(std::move(col));
  };

  add("Baseline", sim::run_baseline(baseline, setup.test, cfg), 0);
  add("TeamNet x2", sim::run_teamnet(team2.expert_ptrs(), setup.test, socket_cfg),
      1);
  add("MPI-Matrix x2", sim::run_mpi_matrix(baseline, setup.test, mpi_cfg, 2), 2);
  add("SG-MoE-G x2", sim::run_sg_moe(moe2, setup.test, grpc_cfg), 3);
  add("SG-MoE-M x2", sim::run_sg_moe(moe2, setup.test, mpi_cfg), 4);
  add("TeamNet x4", sim::run_teamnet(team4.expert_ptrs(), setup.test, socket_cfg),
      5);
  add("MPI-Matrix x4", sim::run_mpi_matrix(baseline, setup.test, mpi_cfg, 4), 6);
  add("SG-MoE-G x4", sim::run_sg_moe(moe4, setup.test, grpc_cfg), 7);
  add("SG-MoE-M x4", sim::run_sg_moe(moe4, setup.test, mpi_cfg), 8);

  print_comparison_table("Table I(" + label + ")", columns, device.uses_gpu);
}

int main_impl(int argc, char** argv) {
  Options opts = parse_options(argc, argv);
  print_banner("Table I — MNIST on Jetson TX2 (CPU-only and GPU+CPU)",
               "Table I(a) and I(b)");

  MnistSetup setup = mnist_setup(opts);
  std::printf("dataset: %lld train / %lld test, MLP hidden=%lld\n",
              static_cast<long long>(setup.train.size()),
              static_cast<long long>(setup.test.size()),
              static_cast<long long>(setup.mlp8.hidden));

  auto baseline = train_mnist_baseline(setup, opts);
  auto team2 = train_mnist_teamnet(setup, 2, opts);
  auto team4 = train_mnist_teamnet(setup, 4, opts);
  auto moe2 = train_mnist_sgmoe(setup, 2, opts);
  auto moe4 = train_mnist_sgmoe(setup, 4, opts);

  // Paper Table I(a): Baseline, TeamNet/MPI/SG-MoE-G/SG-MoE-M x2, then x4.
  const std::vector<PaperRow> paper_cpu = {
      {3.4, 98.8},  {3.2, 98.7}, {108.2, 98.7}, {5.9, 98.6}, {6.9, 98.6},
      {3.3, 98.7},  {189.0, 98.7}, {4.1, 98.5}, {10.3, 98.5}};
  const std::vector<PaperRow> paper_gpu = {
      {0.3, 98.8},  {1.5, 98.8}, {104.8, 98.8}, {5.8, 98.7}, {3.2, 98.6},
      {2.6, 98.7},  {187.7, 98.8}, {4.5, 98.5}, {6.9, 98.5}};

  JsonReport report(opts, "table1_jetson_mnist");
  run_device(opts, report, setup, *baseline, team2, team4, *moe2, *moe4,
             sim::jetson_tx2_cpu(), "a: Jetson TX2 CPU only", paper_cpu);
  run_device(opts, report, setup, *baseline, team2, team4, *moe2, *moe4,
             sim::jetson_tx2_gpu(), "b: Jetson TX2 GPU and CPU", paper_gpu);
  report.write();
  write_observability_outputs(opts);
  return 0;
}

}  // namespace
}  // namespace teamnet::bench

int main(int argc, char** argv) { return teamnet::bench::main_impl(argc, argv); }
