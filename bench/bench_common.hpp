// Shared infrastructure for the paper-reproduction benches: dataset +
// architecture setups matching §VI, cached model training (weights and gate
// telemetry are stored under ./bench_cache so the table and figure benches
// that share models train them only once), and table printing in the
// paper's row layout with the paper's reported numbers alongside.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/teamnet.hpp"
#include "data/synthetic_cifar.hpp"
#include "data/synthetic_mnist.hpp"
#include "load/breakdown.hpp"
#include "moe/sg_moe.hpp"
#include "nn/mlp.hpp"
#include "nn/shake_shake.hpp"
#include "sim/scenario.hpp"

namespace teamnet::bench {

struct Options {
  bool quick = false;  ///< --quick: smaller data/epochs for smoke runs
  std::string cache_dir = "bench_cache";
  std::string json_path;     ///< --json PATH: machine-readable results sink
  std::string trace_path;    ///< --trace PATH: Chrome trace-event JSON sink
  std::string metrics_path;  ///< --metrics PATH: metrics snapshot JSON sink
  /// --breakdown PATH: per-scenario latency-attribution report (rich
  /// nested JSON — per-phase critical-path totals, dominant-phase census,
  /// straggler slack, per-degradation-level splits). Byte-stable under
  /// discrete_event; CI gates it by double-run byte identity, while the
  /// flat --json row carries the compare-gated headline shares.
  std::string breakdown_path;
  bool trace_sched = false;  ///< --trace-sched: include DES scheduler events
  /// Benches default to the discrete-event scheduler so every published
  /// number — latency_ms included — is bit-reproducible from the seed;
  /// --scheduler free_running restores the racing wall-clock mode.
  sim::Scheduler scheduler = sim::Scheduler::discrete_event;
  /// Schedule-exploration knobs (DESIGN.md §11), forwarded into every
  /// ScenarioConfig via apply_scheduler_options. The defaults (canonical,
  /// seed 0, slack 0) reproduce the historical schedule byte for byte;
  /// --grant-policy/--schedule-seed/--schedule-slack rerun a bench under a
  /// perturbed-but-legal schedule, e.g. to replay an explorer finding at
  /// full bench scale.
  sim::des::GrantPolicyKind grant_policy = sim::des::GrantPolicyKind::canonical;
  std::uint64_t schedule_seed = 0;
  double schedule_slack_s = 0.0;
};

/// Copies the scheduler-selection flags (--scheduler, --grant-policy,
/// --schedule-seed, --schedule-slack) into a scenario config.
void apply_scheduler_options(sim::ScenarioConfig& config, const Options& opts);

/// Parses the shared bench flags. Every output-file flag (--json, --trace,
/// --metrics) fails fast with a teamnet::Error naming the flag and path when
/// the parent directory does not exist, instead of discovering the problem
/// after minutes of training. --trace also arms the process tracer;
/// write_observability_outputs() drains it.
Options parse_options(int argc, char** argv);

/// Writes the trace (--trace) and metrics snapshot (--metrics) if those
/// options were given. Call once at the end of main, after the last
/// scenario completes (an atexit hook would also fire on std::exit from
/// usage errors, writing empty files).
void write_observability_outputs(const Options& opts);

/// Prints the standard bench banner (what is being reproduced + caveats).
void print_banner(const std::string& experiment, const std::string& paper_ref);

/// Machine-readable results sink behind --json: collects one row per
/// measured scenario and writes them as a single JSON document (experiment
/// name, scheduler mode, and per-row approach/nodes/latency/accuracy/
/// traffic). Doubles are emitted with %.17g so a bit-stable run produces a
/// byte-stable file. No-op when the option was not given.
class JsonReport {
 public:
  JsonReport(const Options& opts, std::string experiment);
  void add(const std::string& label, const sim::ScenarioResult& result);
  /// Same row, plus bench-specific numeric fields appended to the JSON
  /// object (e.g. the resilience sweep's p50/p99 and degradation-mix
  /// counters). Keys must be valid JSON identifiers; values are emitted
  /// with the same %.17g rule as the standard columns.
  void add(const std::string& label, const sim::ScenarioResult& result,
           std::vector<std::pair<std::string, double>> extras);
  /// Attaches the full per-iteration convergence series (gamma-bar per
  /// expert, gate objective, inner-loop iterations) for one trained team.
  /// The figure benches use this so --json carries the exact curves the
  /// terminal plot renders.
  void add_convergence(const std::string& label,
                       const core::ConvergenceTelemetry& telemetry);
  /// Writes the collected rows to Options::json_path. Call once at exit.
  void write() const;

 private:
  std::string path_;
  std::string experiment_;
  std::string scheduler_;
  struct Row {
    std::string label;
    sim::ScenarioResult result;
    std::vector<std::pair<std::string, double>> extras;
  };
  std::vector<Row> rows_;
  struct ConvergenceRow {
    std::string label;
    core::ConvergenceTelemetry::Series series;
  };
  std::vector<ConvergenceRow> convergence_;
};

/// Latency-attribution sink behind --breakdown: one BreakdownSummary per
/// measured scenario, written as a single JSON document via
/// load::append_breakdown_json. No-op when the option was not given.
class BreakdownReport {
 public:
  BreakdownReport(const Options& opts, std::string experiment);
  void add(const std::string& label, const load::BreakdownSummary& summary);
  /// Writes the collected rows to Options::breakdown_path. Call at exit.
  void write() const;

 private:
  std::string path_;
  std::string experiment_;
  std::string scheduler_;
  std::vector<std::pair<std::string, load::BreakdownSummary>> rows_;
};

// ---- MNIST (handwritten digit recognition, §VI-C) --------------------------

struct MnistSetup {
  data::Dataset train;
  data::Dataset test;
  nn::MlpConfig mlp8;  ///< baseline
  nn::MlpConfig mlp4;  ///< TeamNet double-node expert
  nn::MlpConfig mlp2;  ///< TeamNet quadro-node expert
};

MnistSetup mnist_setup(const Options& opts);

/// Expert config for K experts (paper: 2 -> MLP-4, 4 -> MLP-2).
const nn::MlpConfig& mnist_expert_cfg(const MnistSetup& setup, int num_experts);

// ---- CIFAR (image classification, §VI-D) ------------------------------------

struct CifarSetup {
  data::Dataset train;
  data::Dataset test;
  nn::ShakeShakeConfig ss26;  ///< baseline
  nn::ShakeShakeConfig ss14;  ///< TeamNet double-node expert
  nn::ShakeShakeConfig ss8;   ///< TeamNet quadro-node expert
};

CifarSetup cifar_setup(const Options& opts);

const nn::ShakeShakeConfig& cifar_expert_cfg(const CifarSetup& setup,
                                             int num_experts);

// ---- cached training --------------------------------------------------------

/// Trained TeamNet experts plus the gate telemetry from training (telemetry
/// is cached alongside the weights so convergence figures reload instantly).
struct TrainedTeam {
  std::vector<nn::ModulePtr> experts;
  core::ConvergenceTelemetry telemetry;

  std::vector<nn::Module*> expert_ptrs() const {
    std::vector<nn::Module*> ptrs;
    for (const auto& e : experts) ptrs.push_back(e.get());
    return ptrs;
  }
};

std::unique_ptr<nn::MlpNet> train_mnist_baseline(const MnistSetup& setup,
                                                 const Options& opts);
TrainedTeam train_mnist_teamnet(const MnistSetup& setup, int num_experts,
                                const Options& opts,
                                core::GateKind gate = core::GateKind::Learned);
std::unique_ptr<moe::SgMoe> train_mnist_sgmoe(const MnistSetup& setup,
                                              int num_experts,
                                              const Options& opts);

std::unique_ptr<nn::ShakeShakeNet> train_cifar_baseline(const CifarSetup& setup,
                                                        const Options& opts);
TrainedTeam train_cifar_teamnet(const CifarSetup& setup, int num_experts,
                                const Options& opts);
std::unique_ptr<moe::SgMoe> train_cifar_sgmoe(const CifarSetup& setup,
                                              int num_experts,
                                              const Options& opts);

// ---- paper-style tables ------------------------------------------------------

/// One table column: a measured scenario result + the paper's numbers for
/// the same cell (NaN = paper did not report it).
struct PaperColumn {
  std::string header;
  sim::ScenarioResult measured;
  double paper_latency_ms = -1.0;
  double paper_accuracy_pct = -1.0;
};

/// Prints the paper's metric-rows-by-approach-columns layout, with a second
/// block showing the paper's reported values for direct comparison.
void print_comparison_table(const std::string& title,
                            const std::vector<PaperColumn>& columns,
                            bool show_gpu_row);

}  // namespace teamnet::bench
