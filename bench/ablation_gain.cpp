// Ablation: the proportional-controller gain a of Eq. (4). Sweeps a on a
// stream of biased synthetic batches and reports how fast the cumulative
// training share converges to 1/K (Appendix A's quantity) and how much the
// per-batch assignment oscillates.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/gate_trainer.hpp"

namespace teamnet::bench {
namespace {

/// Entropy stream whose plain-argmin bias toward expert 0 decays as the
/// (simulated) lagging expert catches up with the data it receives.
Tensor biased_batch(int n, int k, float bias, Rng& rng) {
  Tensor h({n, k});
  for (int r = 0; r < n; ++r) {
    const bool expert0 = rng.uniform(0.0f, 1.0f) < bias;
    for (int i = 0; i < k; ++i) {
      const bool winner = expert0 ? (i == 0) : (i == 1 + (r % (k - 1)));
      h[r * k + i] =
          winner ? rng.uniform(0.05f, 0.4f) : rng.uniform(0.7f, 1.6f);
    }
  }
  return h;
}

int main_impl(int argc, char** argv) {
  Options opts = parse_options(argc, argv);
  print_banner("Ablation — controller gain a (Eq. 4)",
               "Appendix A convergence rate");

  const int k = 2;
  const int batches = opts.quick ? 60 : 150;
  const int n = 64;

  Table table({"gain a", "iters to cumulative |share-1/2| < 0.05",
               "late per-batch max|dev|", "mean gate iters/batch"});
  for (float gain : {0.1f, 0.3f, 0.5f, 0.7f, 0.9f}) {
    core::GateTrainerConfig cfg;
    cfg.gain_a = gain;
    core::GateTrainer trainer(k, cfg, Rng(71));
    Rng rng(72);

    double cumulative0 = 0.0;
    int converged_at = -1;
    double late_dev = 0.0;
    long gate_iters = 0;
    int late_count = 0;
    // Bias decays as the starved expert accumulates training share —
    // a first-order surrogate for Assumption 1 of Appendix A.
    float bias = 0.85f;
    for (int b = 0; b < batches; ++b) {
      auto d = trainer.decide(biased_batch(n, k, bias, rng));
      gate_iters += d.iterations;
      cumulative0 += d.gamma_bar[0];
      const double share0 = cumulative0 / (b + 1);
      if (converged_at < 0 && b > 5 && std::abs(share0 - 0.5) < 0.05) {
        converged_at = b;
      }
      bias = 0.5f + (bias - 0.5f) * (1.0f - gain * 0.05f);
      if (b >= batches * 3 / 4) {
        late_dev += std::abs(d.gamma_bar[0] - 0.5);
        ++late_count;
      }
    }
    table.add_row({Table::num(gain, 1),
                   converged_at < 0 ? "-" : std::to_string(converged_at),
                   Table::num(late_dev / late_count, 3),
                   Table::num(static_cast<double>(gate_iters) / batches, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: larger a corrects faster (fewer iterations\n"
              "to 1/K) at the cost of more per-batch oscillation; tiny a\n"
              "barely corrects within the horizon.\n");
  write_observability_outputs(opts);
  return 0;
}

}  // namespace
}  // namespace teamnet::bench

int main(int argc, char** argv) { return teamnet::bench::main_impl(argc, argv); }
