// Load-generation sweep (DESIGN.md §14): the TeamNet serving path under
// seeded arrival processes — open-loop Poisson, closed-loop with think
// time, bursty diurnal-style waves — across team sizes and offered loads,
// reporting steady-state throughput and latency percentiles from the
// log-bucketed histogram. Latency here is ARRIVAL-to-completion, so an
// open-loop rate above the service capacity shows up as queueing delay in
// the tail — the perf behaviour the paper-table benches (one query at a
// time) cannot express.
//
// Under --scheduler discrete_event (the default) the whole sweep is
// bit-reproducible from the seeds, so --json output is byte-stable across
// same-seed runs; the checked-in BENCH_loadgen.json is the frozen --quick
// snapshot, gated in CI by tools/bench_compare.py.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "load/loadgen.hpp"

namespace teamnet::bench {
namespace {

std::vector<std::pair<std::string, double>> extras(
    const load::LoadResult& r) {
  return {{"offered_qps", r.offered_qps},
          {"achieved_qps", r.achieved_qps},
          {"p50_ms", r.p50_ms},
          {"p90_ms", r.p90_ms},
          {"p99_ms", r.p99_ms},
          {"p999_ms", r.p999_ms},
          {"mean_ms", r.mean_ms},
          {"max_ms", r.max_ms},
          {"mean_inflight", r.mean_inflight},
          {"warmup_queries", static_cast<double>(r.warmup_queries)}};
}

/// JsonReport speaks ScenarioResult; adapt the loadgen headline columns
/// into one (the loadgen-specific metrics ride in the extras).
sim::ScenarioResult as_scenario(const load::LoadResult& r) {
  sim::ScenarioResult sr;
  sr.approach = r.approach;
  sr.num_nodes = r.num_nodes;
  sr.latency_ms = r.mean_ms;
  sr.accuracy_pct = r.accuracy_pct;
  sr.bytes_per_query = r.bytes_per_query;
  sr.messages_per_query = r.messages_per_query;
  sr.schedule_digest = r.schedule_digest;
  return sr;
}

int main_impl(int argc, char** argv) {
  Options opts = parse_options(argc, argv);
  print_banner("Load generation — arrival-process x team-size sweep",
               "perf baseline extension; not a paper table");

  MnistSetup setup = mnist_setup(opts);

  sim::ScenarioConfig cfg;
  cfg.link = sim::socket_link();
  apply_scheduler_options(cfg, opts);

  load::LoadConfig base;
  base.num_queries = opts.quick ? 40 : 200;
  base.warmup_queries = opts.quick ? 8 : 20;

  JsonReport report(opts, "loadgen_sweep");
  Table table({"arrival", "nodes", "level", "offered q/s", "achieved q/s",
               "p50 (ms)", "p99 (ms)", "p99.9 (ms)", "inflight",
               "accuracy (%)"});

  const int team_sizes[] = {2, 4, 8};
  // Two load levels per arrival shape: comfortably under the serial service
  // capacity, and well past it (open-loop then queues; closed-loop
  // self-limits at a deeper population instead).
  const double rates[] = {50.0, 200.0};
  const int populations[] = {2, 8};

  auto run_cell = [&](int k, const load::LoadConfig& load_cfg,
                      const std::string& level, const std::string& prefix) {
    auto team = train_mnist_teamnet(setup, k, opts);
    const auto r =
        load::run_teamnet_load(team.expert_ptrs(), setup.test, cfg, load_cfg);
    const std::string label = prefix + load::to_string(load_cfg.arrival.kind) +
                              " k" + std::to_string(k) + " " + level;
    report.add(label, as_scenario(r), extras(r));
    table.add_row({prefix + r.arrival, std::to_string(k), level,
                   Table::num(r.offered_qps, 1), Table::num(r.achieved_qps, 1),
                   Table::num(r.p50_ms, 2), Table::num(r.p99_ms, 2),
                   Table::num(r.p999_ms, 2), Table::num(r.mean_inflight, 2),
                   Table::num(r.accuracy_pct, 1)});
  };

  for (const load::ArrivalKind kind :
       {load::ArrivalKind::open_poisson, load::ArrivalKind::closed_loop,
        load::ArrivalKind::bursty}) {
    for (const int k : team_sizes) {
      for (int level = 0; level < 2; ++level) {
        load::LoadConfig load_cfg = base;
        load_cfg.arrival.kind = kind;
        load_cfg.arrival.seed = 1000 + static_cast<std::uint64_t>(level);
        std::string level_name;
        if (kind == load::ArrivalKind::closed_loop) {
          load_cfg.arrival.clients = populations[level];
          level_name = "c=" + std::to_string(populations[level]);
        } else {
          load_cfg.arrival.rate_qps = rates[level];
          level_name = Table::num(rates[level], 0) + " q/s";
        }
        run_cell(k, load_cfg, level_name, "");
      }
    }
  }

  // Hot-key skew leg: the same open-loop underload with Zipf(1.2) class
  // traffic, one row per team size — accuracy shifts with which classes
  // the seed makes hot, latency should not.
  for (const int k : team_sizes) {
    load::LoadConfig load_cfg = base;
    load_cfg.arrival.kind = load::ArrivalKind::open_poisson;
    load_cfg.arrival.rate_qps = rates[0];
    load_cfg.arrival.seed = 2000;
    load_cfg.zipf_exponent = 1.2;
    run_cell(k, load_cfg, Table::num(rates[0], 0) + " q/s", "zipf1.2 ");
  }

  std::printf("%s", table.to_string().c_str());
  report.write();
  std::printf(
      "\nexpected shape: open-loop at 200 q/s exceeds the serial service\n"
      "capacity, so latency includes queueing delay and the tail grows with\n"
      "the run; the closed loop self-limits (in-flight <= population) and\n"
      "its achieved rate tracks service capacity; the bursty wave lands\n"
      "between its trough and crest. Larger teams pay more coordination\n"
      "per query (workers answer every gather), so p50 rises with k.\n");
  write_observability_outputs(opts);
  return 0;
}

}  // namespace
}  // namespace teamnet::bench

int main(int argc, char** argv) { return teamnet::bench::main_impl(argc, argv); }
