// Ablation: the differentiable relaxation inside Algorithm 2. Compares the
// paper-literal composition (scalar soft argmin of Eq. 5 pushed through the
// indicator of Eq. 7) against the direct softmax-weights relaxation this
// implementation defaults to (see core::GateRelaxation), across K and bias
// levels.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/gate.hpp"
#include "core/gate_trainer.hpp"

namespace teamnet::bench {
namespace {

Tensor biased_entropy(int n, int k, int bias_pct, std::uint64_t seed) {
  Rng rng(seed);
  Tensor h({n, k});
  for (int r = 0; r < n; ++r) {
    const int winner = (r * 100 < n * bias_pct) ? 0 : 1 + rng.randint(0, k - 2);
    for (int i = 0; i < k; ++i) {
      h[r * k + i] =
          (i == winner) ? rng.uniform(0.05f, 0.4f) : rng.uniform(0.7f, 1.6f);
    }
  }
  return h;
}

int main_impl(int argc, char** argv) {
  Options opts = parse_options(argc, argv);
  (void)opts;
  print_banner("Ablation — gate relaxation (Eq.5+7 composition vs softmax"
               " weights)",
               "implementation note in DESIGN.md §2");

  Table table({"K", "bias %", "relaxation", "final J", "gate iters (4 calls)"});
  for (int k : {2, 3, 4}) {
    for (int bias : {70, 85}) {
      for (auto relax : {core::GateRelaxation::IndexExpectation,
                         core::GateRelaxation::SoftmaxWeights}) {
        core::GateTrainerConfig cfg;
        cfg.relaxation = relax;
        core::GateTrainer trainer(k, cfg, Rng(81));
        Tensor h = biased_entropy(128, k, bias, 91);
        core::GateDecision d;
        int total_iters = 0;
        for (int call = 0; call < 4; ++call) {
          d = trainer.decide(h);
          total_iters += d.iterations;
        }
        table.add_row(
            {std::to_string(k), std::to_string(bias),
             relax == core::GateRelaxation::IndexExpectation ? "index-expect"
                                                             : "softmax-wts",
             Table::num(d.objective, 3), std::to_string(total_iters)});
      }
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: both relaxations solve K=2; the paper-literal\n"
              "index expectation degrades for K>=3 (a row split between\n"
              "experts 0 and 2 credits expert 1), while softmax weights\n"
              "converge with fewer iterations everywhere.\n");
  write_observability_outputs(opts);
  return 0;
}

}  // namespace
}  // namespace teamnet::bench

int main(int argc, char** argv) { return teamnet::bench::main_impl(argc, argv); }
