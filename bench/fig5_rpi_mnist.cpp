// Reproduces Figure 5: handwritten digit recognition on Raspberry Pi 3B+.
// With more experts in TeamNet, inference gets faster and per-node memory /
// CPU consumption drops, while accuracy is not compromised.
#include <cstdio>

#include "bench_common.hpp"

namespace teamnet::bench {
namespace {

int main_impl(int argc, char** argv) {
  Options opts = parse_options(argc, argv);
  print_banner("Figure 5 — MNIST on Raspberry Pi 3 Model B+", "Figure 5");

  MnistSetup setup = mnist_setup(opts);
  auto baseline = train_mnist_baseline(setup, opts);
  auto team2 = train_mnist_teamnet(setup, 2, opts);
  auto team4 = train_mnist_teamnet(setup, 4, opts);

  sim::ScenarioConfig cfg;
  cfg.device = sim::raspberry_pi_3b();
  cfg.link = sim::socket_link();
  cfg.num_queries = 40;
  apply_scheduler_options(cfg, opts);

  std::vector<PaperColumn> columns;
  columns.push_back({"MLP-8 (baseline)",
                     sim::run_baseline(*baseline, setup.test, cfg), -1, -1});
  columns.push_back({"2 x MLP-4 (TeamNet)",
                     sim::run_teamnet(team2.expert_ptrs(), setup.test, cfg), -1,
                     -1});
  columns.push_back({"4 x MLP-2 (TeamNet)",
                     sim::run_teamnet(team4.expert_ptrs(), setup.test, cfg), -1,
                     -1});
  print_comparison_table("Figure 5 (RPi 3B+, per-node metrics)", columns,
                         /*show_gpu_row=*/false);

  // The figure's qualitative claims, checked explicitly.
  const auto& b = columns[0].measured;
  const auto& t2 = columns[1].measured;
  const auto& t4 = columns[2].measured;
  std::printf("\nshape checks (paper: more experts -> faster, leaner):\n");
  std::printf("  latency   %s  (%.2f > %.2f > %.2f ms)\n",
              (b.latency_ms > t2.latency_ms && t2.latency_ms > t4.latency_ms)
                  ? "OK"
                  : "MISMATCH",
              b.latency_ms, t2.latency_ms, t4.latency_ms);
  std::printf("  memory    %s  (%.1f > %.1f > %.1f %%)\n",
              (b.usage.memory_pct > t2.usage.memory_pct &&
               t2.usage.memory_pct > t4.usage.memory_pct)
                  ? "OK"
                  : "MISMATCH",
              b.usage.memory_pct, t2.usage.memory_pct, t4.usage.memory_pct);
  std::printf("  accuracy  %s  (baseline %.1f vs TeamNet %.1f / %.1f %%)\n",
              (t2.accuracy_pct + 3.0 > b.accuracy_pct &&
               t4.accuracy_pct + 5.0 > b.accuracy_pct)
                  ? "OK"
                  : "MISMATCH",
              b.accuracy_pct, t2.accuracy_pct, t4.accuracy_pct);
  write_observability_outputs(opts);
  return 0;
}

}  // namespace
}  // namespace teamnet::bench

int main(int argc, char** argv) { return teamnet::bench::main_impl(argc, argv); }
