// Degradation-plane bench (DESIGN.md §13): p50/p99 latency and the
// degradation-level mix vs injected drop rate, with the full gather
// (quorum 0, no hedging) side by side against the SLO-aware mode
// (quorum gather + hedged dispatch to backup replicas + circuit
// breakers). The headline shape: at >= 20% drops the full gather's p99
// pins at the gather deadline (a single lost reply burns the whole SLO)
// while quorum + hedging keeps the tail bounded below it, trading a
// recorded fraction of quorum/local-only gathers for the latency win.
// Under --scheduler discrete_event (the default) every number is
// bit-reproducible, so --json output is byte-stable across same-seed
// runs; the checked-in BENCH_resilience.json is the frozen --quick
// snapshot of this sweep (the repo's first bench baseline).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"

namespace teamnet::bench {
namespace {

/// Share of queries that completed at each degradation level, as "a/b/c".
std::string mix(const sim::ResilienceResult& r) {
  return std::to_string(r.full_gathers) + "/" +
         std::to_string(r.quorum_gathers) + "/" +
         std::to_string(r.local_only_gathers);
}

std::vector<std::pair<std::string, double>> extras(
    const sim::ResilienceResult& r) {
  return {{"p50_ms", r.p50_ms},
          {"p99_ms", r.p99_ms},
          {"full_gathers", static_cast<double>(r.full_gathers)},
          {"quorum_gathers", static_cast<double>(r.quorum_gathers)},
          {"local_only_gathers", static_cast<double>(r.local_only_gathers)},
          {"hedges_sent", static_cast<double>(r.hedges_sent)},
          {"hedge_wins", static_cast<double>(r.hedge_wins)},
          {"hedge_duplicates", static_cast<double>(r.hedge_duplicates)},
          {"breaker_opens", static_cast<double>(r.breaker_opens)},
          {"expired_drops", static_cast<double>(r.expired_drops)},
          {"faults_injected", static_cast<double>(r.faults_injected)}};
}

int main_impl(int argc, char** argv) {
  Options opts = parse_options(argc, argv);
  print_banner("Resilience — SLO-aware degradation plane sweep",
               "robustness extension; not a paper table");

  MnistSetup setup = mnist_setup(opts);
  auto team4 = train_mnist_teamnet(setup, 4, opts);

  sim::ScenarioConfig cfg;
  cfg.num_queries = opts.quick ? 20 : 48;
  cfg.link = sim::socket_link();
  apply_scheduler_options(cfg, opts);

  const double slo_ms = 0.05 * 1000.0;  // worker_timeout_s below, in ms
  JsonReport report(opts, "resilience_sweep");
  Table table({"mode", "drop rate", "p50 (ms)", "p99 (ms)", "accuracy (%)",
               "full/quorum/local", "hedges (sent/win/dup)", "opens",
               "expired"});
  const double rates[] = {0.0, 0.1, 0.2, 0.3};
  for (double rate : rates) {
    for (int degraded = 0; degraded <= 1; ++degraded) {
      sim::ResilienceConfig res;
      res.faults.seed = 42;
      res.faults.drop_prob = rate;
      res.faults.duplicate_prob = rate / 4;
      res.worker_timeout_s = 0.05;
      res.probe_interval = 2;
      if (degraded != 0) {
        res.quorum = 3;  // local expert + any 2 of the 3 remote answers
        res.hedging = true;
      }
      const auto r = sim::run_teamnet_resilience(team4.expert_ptrs(),
                                                 setup.test, cfg, res);
      const std::string mode = degraded != 0 ? "quorum+hedge" : "full gather";
      report.add(mode + " drop " + Table::num(rate, 2), r.scenario,
                 extras(r));
      table.add_row({mode, Table::num(rate, 2), Table::num(r.p50_ms, 2),
                     Table::num(r.p99_ms, 2),
                     Table::num(r.scenario.accuracy_pct, 1), mix(r),
                     std::to_string(r.hedges_sent) + "/" +
                         std::to_string(r.hedge_wins) + "/" +
                         std::to_string(r.hedge_duplicates),
                     std::to_string(r.breaker_opens),
                     std::to_string(r.expired_drops)});
      // The acceptance property the suite also asserts (resilience_test):
      // with drops at or above 20%, the degraded mode's p99 stays under
      // the gather SLO while the full gather burns it on lost replies.
      if (degraded != 0 && rate >= 0.2) {
        std::printf("drop %.2f: quorum+hedge p99 %.2f ms vs SLO %.0f ms — %s\n",
                    rate, r.p99_ms, slo_ms,
                    r.p99_ms < slo_ms ? "bounded" : "NOT bounded");
      }
    }
  }
  std::printf("%s", table.to_string().c_str());
  report.write();
  std::printf(
      "\nexpected shape: the full gather's p99 climbs to the %.0f ms SLO as\n"
      "soon as drops appear (one lost reply = one timed-out gather), while\n"
      "quorum+hedge completes at 3 of 4 answers or a backup replica's reply\n"
      "and keeps p99 below the SLO at every swept drop rate; the\n"
      "full/quorum/local counters always sum to the query count.\n",
      slo_ms);
  write_observability_outputs(opts);
  return 0;
}

}  // namespace
}  // namespace teamnet::bench

int main(int argc, char** argv) { return teamnet::bench::main_impl(argc, argv); }
