// Microbenchmarks for the TeamNet gate path: entropy-matrix probing, one
// Algorithm-2 decision, the soft relaxations, and an end-to-end training
// step — the per-batch training overhead TeamNet adds over plain SGD.
#include <benchmark/benchmark.h>

#include "micro_common.hpp"

#include "core/entropy.hpp"
#include "core/expert_trainer.hpp"
#include "core/gate_trainer.hpp"
#include "core/soft_ops.hpp"
#include "nn/mlp.hpp"

namespace teamnet {
namespace {

Tensor biased_entropy(int n, int k, Rng& rng) {
  Tensor h({n, k});
  for (int r = 0; r < n; ++r) {
    const int winner = rng.randint(0, k - 1);
    for (int i = 0; i < k; ++i) {
      h[r * k + i] =
          (i == winner) ? rng.uniform(0.05f, 0.4f) : rng.uniform(0.7f, 1.6f);
    }
  }
  return h;
}

void BM_GateDecide(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  core::GateTrainer trainer(k, {}, Rng(7));
  Rng rng(8);
  for (auto _ : state) {
    Tensor h = biased_entropy(64, k, rng);
    auto d = trainer.decide(h);
    benchmark::DoNotOptimize(d.assignment.data());
  }
}
BENCHMARK(BM_GateDecide)->Arg(2)->Arg(4)->Arg(8);

void BM_SoftArgmin(benchmark::State& state) {
  Rng rng(9);
  Tensor scores = Tensor::uniform({state.range(0), 4}, rng, 0.1f, 2.0f);
  for (auto _ : state) {
    ag::Var g = core::soft_argmin_rows(ag::constant(scores.clone()), 8.0f);
    benchmark::DoNotOptimize(g.node().get());
  }
}
BENCHMARK(BM_SoftArgmin)->Arg(64)->Arg(512);

void BM_EntropyMatrix(benchmark::State& state) {
  Rng rng(10);
  nn::MlpConfig cfg;
  cfg.in_features = 784;
  cfg.depth = 4;
  cfg.hidden = 64;
  nn::MlpNet e0(cfg, rng), e1(cfg, rng);
  Tensor x = Tensor::uniform({state.range(0), 784}, rng);
  for (auto _ : state) {
    Tensor h = core::entropy_matrix({&e0, &e1}, x);
    benchmark::DoNotOptimize(h.data());
  }
}
BENCHMARK(BM_EntropyMatrix)->Arg(16)->Arg(64);

void BM_ExpertTrainStep(benchmark::State& state) {
  Rng rng(11);
  nn::MlpConfig cfg;
  cfg.in_features = 784;
  cfg.depth = 4;
  cfg.hidden = 64;
  nn::MlpNet e0(cfg, rng), e1(cfg, rng);
  core::ExpertTrainer trainer({&e0, &e1}, {});
  Rng drng(12);
  Tensor x = Tensor::uniform({64, 784}, drng);
  std::vector<int> y(64), assign(64);
  for (int i = 0; i < 64; ++i) {
    y[static_cast<std::size_t>(i)] = drng.randint(0, 9);
    assign[static_cast<std::size_t>(i)] = drng.randint(0, 1);
  }
  for (auto _ : state) {
    auto losses = trainer.train_on_batch(x, y, assign);
    benchmark::DoNotOptimize(losses.data());
  }
}
BENCHMARK(BM_ExpertTrainStep);

}  // namespace
}  // namespace teamnet

int main(int argc, char** argv) {
  return teamnet::bench::micro_main(argc, argv);
}
