#include "micro_common.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace teamnet::bench {
namespace {

/// %.17g, matching the sweep benches' number formatting.
std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& in) {
  std::string out;
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

const char* time_unit_name(benchmark::TimeUnit unit) {
  switch (unit) {
    case benchmark::kNanosecond: return "ns";
    case benchmark::kMicrosecond: return "us";
    case benchmark::kMillisecond: return "ms";
    case benchmark::kSecond: return "s";
  }
  return "?";
}

/// Console output as usual, plus one collected row per finished run.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    std::int64_t iterations = 0;
    double real_time = 0.0;  ///< per-iteration, in `unit`
    double cpu_time = 0.0;
    std::string unit;
    double items_per_second = -1.0;  ///< < 0 = not reported
    double bytes_per_second = -1.0;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      row.iterations = run.iterations;
      row.real_time = run.GetAdjustedRealTime();
      row.cpu_time = run.GetAdjustedCPUTime();
      row.unit = time_unit_name(run.time_unit);
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) row.items_per_second = items->second;
      const auto bytes = run.counters.find("bytes_per_second");
      if (bytes != run.counters.end()) row.bytes_per_second = bytes->second;
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

std::string basename_of(const char* path) {
  const std::string s(path);
  const std::size_t slash = s.find_last_of('/');
  return slash == std::string::npos ? s : s.substr(slash + 1);
}

int write_json(const std::string& path, const std::string& experiment,
               const std::vector<CollectingReporter::Row>& rows) {
  std::ofstream os(path);
  if (!os.good()) {
    std::fprintf(stderr, "cannot open --json output file: %s\n",
                 path.c_str());
    return 1;
  }
  os << "{\n  \"experiment\": \"" << json_escape(experiment)
     << "\",\n  \"results\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << (i == 0 ? "" : ",") << "\n    {\"name\": \"" << json_escape(r.name)
       << "\", \"iterations\": " << r.iterations
       << ", \"real_time\": " << json_number(r.real_time)
       << ", \"cpu_time\": " << json_number(r.cpu_time) << ", \"time_unit\": \""
       << r.unit << "\"";
    if (r.items_per_second >= 0.0) {
      os << ", \"items_per_second\": " << json_number(r.items_per_second);
    }
    if (r.bytes_per_second >= 0.0) {
      os << ", \"bytes_per_second\": " << json_number(r.bytes_per_second);
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
  if (!os.good()) {
    std::fprintf(stderr, "failed writing --json output file: %s\n",
                 path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int micro_main(int argc, char** argv) {
  // Strip `--json PATH` before benchmark::Initialize sees (and rejects) it.
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  args.push_back(nullptr);

  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    return write_json(json_path, basename_of(argv[0]), reporter.rows());
  }
  return 0;
}

}  // namespace teamnet::bench
