// Chaos bench: graceful degradation under injected faults. Sweeps the
// per-message fault rate on every master<->worker link and reports how
// accuracy tracks the number of live experts and how latency grows with
// the fault rate (timed-out gathers cost the full deadline). A final run
// scripts a partition/heal cycle to show probation rejoin closing the
// accuracy gap again.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

namespace teamnet::bench {
namespace {

double mean_live(const sim::ChaosResult& r) {
  double sum = 0.0;
  for (int live : r.live_nodes) sum += live;
  return r.live_nodes.empty() ? 0.0 : sum / static_cast<double>(r.live_nodes.size());
}

int main_impl(int argc, char** argv) {
  Options opts = parse_options(argc, argv);
  print_banner("Chaos — degradation under fault injection",
               "robustness extension; not a paper table");

  MnistSetup setup = mnist_setup(opts);
  auto team4 = train_mnist_teamnet(setup, 4, opts);

  sim::ScenarioConfig cfg;
  cfg.num_queries = opts.quick ? 24 : 60;
  cfg.link = sim::socket_link();
  apply_scheduler_options(cfg, opts);

  JsonReport report(opts, "chaos_degradation");
  Table table({"fault rate", "accuracy (%)", "mean live nodes",
               "latency (ms)", "faults", "stale", "rejoins"});
  const double rates[] = {0.0, 0.05, 0.1, 0.2, 0.3};
  for (double rate : rates) {
    sim::ChaosConfig chaos;
    chaos.faults.seed = 42;
    chaos.faults.drop_prob = rate;
    chaos.faults.corrupt_prob = rate / 4;
    chaos.faults.duplicate_prob = rate / 4;
    chaos.worker_timeout_s = 0.05;
    chaos.probe_interval = 2;
    auto r = sim::run_teamnet_chaos(team4.expert_ptrs(), setup.test, cfg,
                                    chaos);
    report.add("fault rate " + Table::num(rate, 2), r.scenario);
    table.add_row({Table::num(rate, 2),
                   Table::num(r.scenario.accuracy_pct, 1),
                   Table::num(mean_live(r), 2),
                   Table::num(r.scenario.latency_ms, 2),
                   std::to_string(r.faults_injected),
                   std::to_string(r.stale_replies),
                   std::to_string(r.rejoins)});
  }

  // Scripted partition/heal on worker 1: the probation machinery must bring
  // the worker back, so late-window accuracy matches the fault-free run.
  sim::ChaosConfig split;
  split.faults.seed = 42;
  split.partition_worker = 0;
  split.partition_from_query = cfg.num_queries / 4;
  split.heal_at_query = cfg.num_queries / 2;
  split.worker_timeout_s = 0.05;
  split.probe_interval = 1;
  auto healed = sim::run_teamnet_chaos(team4.expert_ptrs(), setup.test, cfg,
                                       split);
  report.add("partition+heal", healed.scenario);
  table.add_row({"partition+heal",
                 Table::num(healed.scenario.accuracy_pct, 1),
                 Table::num(mean_live(healed), 2),
                 Table::num(healed.scenario.latency_ms, 2),
                 std::to_string(healed.faults_injected),
                 std::to_string(healed.stale_replies),
                 std::to_string(healed.rejoins)});
  std::printf("%s", table.to_string().c_str());
  report.write();
  std::printf("\nexpected shape: accuracy decays gently with the fault rate\n"
              "(the selection degrades to the surviving experts rather than\n"
              "failing), latency rises as timed-out gathers burn the full\n"
              "deadline, and the partition+heal row ends with rejoins >= 1\n"
              "— the partitioned worker returns to the live set.\n");
  write_observability_outputs(opts);
  return 0;
}

}  // namespace
}  // namespace teamnet::bench

int main(int argc, char** argv) { return teamnet::bench::main_impl(argc, argv); }
