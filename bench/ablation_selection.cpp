// Ablation: inference selection rule. §V argues the argmin-entropy gate
// beats (weighted) majority voting because "non-expert" opinions are
// detrimental once experts specialize. Compares both rules on MNIST teams.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/teamnet.hpp"

namespace teamnet::bench {
namespace {

int main_impl(int argc, char** argv) {
  Options opts = parse_options(argc, argv);
  print_banner("Ablation — selection rule (argmin entropy vs majority vote)",
               "§V discussion");

  MnistSetup setup = mnist_setup(opts);
  Table table({"team", "argmin-entropy acc (%)", "majority-vote acc (%)"});
  for (int k : {2, 4}) {
    TrainedTeam team = train_mnist_teamnet(setup, k, opts);
    core::TeamNetEnsemble ensemble(std::move(team.experts));
    const double argmin_acc = 100.0 * ensemble.evaluate_accuracy(
                                          setup.test,
                                          core::SelectionRule::ArgMinEntropy);
    const double vote_acc = 100.0 * ensemble.evaluate_accuracy(
                                        setup.test,
                                        core::SelectionRule::MajorityVote);
    table.add_row({std::to_string(k) + " experts", Table::num(argmin_acc, 1),
                   Table::num(vote_acc, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: argmin-entropy >= majority vote — specialized\n"
              "experts are wrong outside their partition, so counting their\n"
              "votes hurts.\n");
  write_observability_outputs(opts);
  return 0;
}

}  // namespace
}  // namespace teamnet::bench

int main(int argc, char** argv) { return teamnet::bench::main_impl(argc, argv); }
