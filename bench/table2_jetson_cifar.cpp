// Reproduces Table II: image classification (CIFAR-10-like) on Jetson TX2,
// CPU-only (a) and GPU+CPU (b). Columns: Base SS-26, then TeamNet /
// MPI-Kernel / MPI-Branch / SG-MoE-G / SG-MoE-M at 2 nodes and TeamNet /
// MPI-Kernel / SG-MoE at 4 nodes (MPI-Branch only exists for 2 nodes).
#include <cstdio>

#include "bench_common.hpp"

namespace teamnet::bench {
namespace {

struct PaperRow {
  double latency;
  double accuracy;
};

void run_device(const Options& opts, JsonReport& report,
                const CifarSetup& setup, nn::ShakeShakeNet& baseline,
                const TrainedTeam& team2, const TrainedTeam& team4,
                moe::SgMoe& moe2, moe::SgMoe& moe4,
                const sim::DeviceProfile& device, const std::string& label,
                const std::vector<PaperRow>& paper) {
  sim::ScenarioConfig cfg;
  cfg.device = device;
  cfg.num_queries = 20;
  apply_scheduler_options(cfg, opts);

  auto socket_cfg = cfg;
  socket_cfg.link = sim::socket_link();
  auto mpi_cfg = cfg;
  mpi_cfg.link = sim::mpi_link();
  auto grpc_cfg = cfg;
  grpc_cfg.link = sim::grpc_link();

  std::vector<PaperColumn> columns;
  auto add = [&](const std::string& header, sim::ScenarioResult result,
                 std::size_t idx) {
    report.add(label + " / " + header, result);
    PaperColumn col;
    col.header = header;
    col.measured = std::move(result);
    if (idx < paper.size()) {
      col.paper_latency_ms = paper[idx].latency;
      col.paper_accuracy_pct = paper[idx].accuracy;
    }
    columns.push_back(std::move(col));
  };

  add("Base", sim::run_baseline(baseline, setup.test, cfg), 0);
  add("TeamNet x2", sim::run_teamnet(team2.expert_ptrs(), setup.test, socket_cfg),
      1);
  add("MPI-Kernel x2", sim::run_mpi_kernel(baseline, setup.test, mpi_cfg, 2), 2);
  add("MPI-Branch x2", sim::run_mpi_branch(baseline, setup.test, mpi_cfg), 3);
  add("SG-MoE-G x2", sim::run_sg_moe(moe2, setup.test, grpc_cfg), 4);
  add("SG-MoE-M x2", sim::run_sg_moe(moe2, setup.test, mpi_cfg), 5);
  add("TeamNet x4", sim::run_teamnet(team4.expert_ptrs(), setup.test, socket_cfg),
      6);
  add("MPI-Kernel x4", sim::run_mpi_kernel(baseline, setup.test, mpi_cfg, 4), 7);
  add("SG-MoE-G x4", sim::run_sg_moe(moe4, setup.test, grpc_cfg), 8);
  add("SG-MoE-M x4", sim::run_sg_moe(moe4, setup.test, mpi_cfg), 9);

  print_comparison_table("Table II(" + label + ")", columns, device.uses_gpu);
}

int main_impl(int argc, char** argv) {
  Options opts = parse_options(argc, argv);
  print_banner("Table II — CIFAR-10 image classification on Jetson TX2",
               "Table II(a) and II(b)");

  CifarSetup setup = cifar_setup(opts);
  std::printf("dataset: %lld train / %lld test, Shake-Shake base channels %lld\n",
              static_cast<long long>(setup.train.size()),
              static_cast<long long>(setup.test.size()),
              static_cast<long long>(setup.ss26.base_channels));

  auto baseline = train_cifar_baseline(setup, opts);
  auto team2 = train_cifar_teamnet(setup, 2, opts);
  auto team4 = train_cifar_teamnet(setup, 4, opts);
  auto moe2 = train_cifar_sgmoe(setup, 2, opts);
  auto moe4 = train_cifar_sgmoe(setup, 4, opts);

  // Paper Table II rows: Base, TeamNet/Kernel/Branch/SG-G/SG-M x2,
  // TeamNet/Kernel/SG-G/SG-M x4.
  const std::vector<PaperRow> paper_cpu = {
      {378.2, 94.0}, {179.5, 93.7}, {2684.3, 93.9}, {1227.8, 93.9},
      {157.3, 89.7}, {192.4, 90.1}, {84.8, 92.4},   {6722.7, 93.6},
      {67.8, 87.1},  {71.6, 87.8}};
  const std::vector<PaperRow> paper_gpu = {
      {14.3, 93.9}, {11.4, 93.8}, {2611.7, 93.9}, {1002.7, 94.0},
      {31.7, 89.4}, {29.4, 89.0}, {13.1, 92.8},   {7062.9, 93.5},
      {30.6, 87.3}, {29.5, 87.3}};

  JsonReport report(opts, "table2_jetson_cifar");
  run_device(opts, report, setup, *baseline, team2, team4, *moe2, *moe4,
             sim::jetson_tx2_cpu(), "a: Jetson TX2 CPU only", paper_cpu);
  run_device(opts, report, setup, *baseline, team2, team4, *moe2, *moe4,
             sim::jetson_tx2_gpu(), "b: Jetson TX2 GPU and CPU", paper_gpu);
  report.write();
  write_observability_outputs(opts);
  return 0;
}

}  // namespace
}  // namespace teamnet::bench

int main(int argc, char** argv) { return teamnet::bench::main_impl(argc, argv); }
