#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace teamnet::bench {

namespace {

namespace fs = std::filesystem;

std::string cache_path(const Options& opts, const std::string& key) {
  fs::create_directories(opts.cache_dir);
  return (fs::path(opts.cache_dir) / key).string();
}

bool exists(const std::string& path) { return fs::exists(path); }

void save_telemetry(const std::string& path,
                    const core::ConvergenceTelemetry& tel) {
  std::ofstream os(path);
  for (std::size_t t = 0; t < tel.iterations(); ++t) {
    for (float g : tel.gamma_bar(t)) os << g << ' ';
    os << tel.objective(t) << ' ' << tel.gate_iters(t) << '\n';
  }
}

core::ConvergenceTelemetry load_telemetry(const std::string& path, int k) {
  core::ConvergenceTelemetry tel;
  std::ifstream is(path);
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::vector<float> gamma(static_cast<std::size_t>(k));
    for (auto& g : gamma) ls >> g;
    float objective = 0.0f;
    int iters = 0;
    ls >> objective >> iters;
    tel.record(gamma, objective, iters);
  }
  return tel;
}

/// Plain supervised training of a single model (the Baseline columns).
void train_supervised(nn::Module& model, const data::Dataset& train, int epochs,
                      std::int64_t batch_size, float lr, std::uint64_t seed) {
  model.set_training(true);
  nn::SgdConfig sgd;
  sgd.lr = lr;
  nn::Sgd opt(model.parameters(), sgd);
  Rng rng(seed);
  data::BatchIterator batches(train, batch_size, &rng);
  for (int e = 0; e < epochs; ++e) {
    batches.reset();
    for (auto b = batches.next(); b.size() > 0; b = batches.next()) {
      ag::backward(nn::cross_entropy_loss(model.forward(ag::constant(b.x)), b.y));
      opt.step();
    }
    LOG_INFO("baseline epoch " << e + 1 << "/" << epochs);
  }
  model.set_training(false);
}

std::string fmt(double v, int digits = 1) { return Table::num(v, digits); }

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// %.17g round-trips every finite double exactly; non-finite values have no
/// JSON spelling, so they degrade to null rather than corrupt the document.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

namespace {

/// Bad output paths are usage errors: diagnose on stderr and exit(2) like
/// the other flag errors instead of aborting on an uncaught exception.
void require_writable_parent_or_exit(const std::string& path,
                                     const char* flag) {
  try {
    obs::require_writable_parent(path, flag);
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

}  // namespace

void apply_scheduler_options(sim::ScenarioConfig& config,
                             const Options& opts) {
  config.scheduler = opts.scheduler;
  config.grant_policy = opts.grant_policy;
  config.schedule_seed = opts.schedule_seed;
  config.schedule_slack_s = opts.schedule_slack_s;
}

Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      opts.cache_dir = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      opts.json_path = argv[++i];
      require_writable_parent_or_exit(opts.json_path, "--json");
    } else if (arg == "--trace" && i + 1 < argc) {
      opts.trace_path = argv[++i];
      require_writable_parent_or_exit(opts.trace_path, "--trace");
    } else if (arg == "--metrics" && i + 1 < argc) {
      opts.metrics_path = argv[++i];
      require_writable_parent_or_exit(opts.metrics_path, "--metrics");
    } else if (arg == "--breakdown" && i + 1 < argc) {
      opts.breakdown_path = argv[++i];
      require_writable_parent_or_exit(opts.breakdown_path, "--breakdown");
    } else if (arg == "--trace-sched") {
      opts.trace_sched = true;
    } else if (arg == "--scheduler" && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "free_running") {
        opts.scheduler = sim::Scheduler::free_running;
      } else if (mode == "discrete_event") {
        opts.scheduler = sim::Scheduler::discrete_event;
      } else {
        std::fprintf(stderr, "unknown --scheduler %s (want free_running or "
                             "discrete_event)\n", mode.c_str());
        std::exit(2);
      }
    } else if (arg == "--grant-policy" && i + 1 < argc) {
      const std::string name = argv[++i];
      const auto kind = sim::des::parse_grant_policy(name);
      if (!kind) {
        std::fprintf(stderr, "unknown --grant-policy %s (want canonical, "
                             "random-tiebreak or pct)\n", name.c_str());
        std::exit(2);
      }
      opts.grant_policy = *kind;
    } else if (arg == "--schedule-seed" && i + 1 < argc) {
      opts.schedule_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--schedule-slack" && i + 1 < argc) {
      opts.schedule_slack_s = std::strtod(argv[++i], nullptr);
    } else if (arg == "--verbose") {
      log::set_level(log::Level::Info);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--verbose] [--cache-dir DIR] "
                   "[--json PATH] [--trace PATH] [--metrics PATH] "
                   "[--trace-sched] "
                   "[--scheduler free_running|discrete_event] "
                   "[--grant-policy canonical|random-tiebreak|pct] "
                   "[--schedule-seed N] [--schedule-slack S]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (!opts.trace_path.empty()) {
    obs::Tracer::instance().set_scheduler_events(opts.trace_sched);
    obs::Tracer::instance().start();
  }
  return opts;
}

void write_observability_outputs(const Options& opts) {
  if (!opts.trace_path.empty()) {
    obs::Tracer::instance().write(opts.trace_path);
    std::printf("wrote trace to %s\n", opts.trace_path.c_str());
  }
  if (!opts.metrics_path.empty()) {
    obs::write_metrics_json(opts.metrics_path);
    std::printf("wrote metrics snapshot to %s\n", opts.metrics_path.c_str());
  }
}

void print_banner(const std::string& experiment, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s — TeamNet (ICDCS 2019)\n", paper_ref.c_str());
  std::printf("Synthetic datasets + virtual-time edge simulation; compare\n");
  std::printf("SHAPE (orderings, ratios, crossovers) to the paper, not\n");
  std::printf("absolute values. See DESIGN.md / EXPERIMENTS.md.\n");
  std::printf("==============================================================\n");
}

MnistSetup mnist_setup(const Options& opts) {
  data::MnistConfig mc;
  mc.num_samples = opts.quick ? 1200 : 2500;
  mc.seed = 11;
  data::Dataset all = data::make_synthetic_mnist(mc);
  auto [test, train] = all.split(0.2);

  MnistSetup setup;
  setup.test = std::move(test);
  setup.train = std::move(train);
  setup.mlp8.in_features = 28 * 28;
  setup.mlp8.depth = 8;
  setup.mlp8.hidden = opts.quick ? 128 : 512;
  setup.mlp4 = setup.mlp8;
  setup.mlp4.depth = 4;
  setup.mlp2 = setup.mlp8;
  setup.mlp2.depth = 2;
  return setup;
}

const nn::MlpConfig& mnist_expert_cfg(const MnistSetup& setup, int num_experts) {
  // 2 and 4 nodes are the paper's configurations (§VI-C); 8 nodes extends
  // the ladder for the load-generation sweep, reusing the shallowest expert
  // (the paper's depth-halving rule bottoms out at 2 layers).
  TEAMNET_CHECK_MSG(num_experts == 2 || num_experts == 4 || num_experts == 8,
                    "supported team sizes: 2, 4 (paper) and 8 (loadgen)");
  return num_experts == 2 ? setup.mlp4 : setup.mlp2;
}

CifarSetup cifar_setup(const Options& opts) {
  data::CifarConfig cc;
  cc.num_samples = opts.quick ? 800 : 1800;
  cc.image_size = 16;
  cc.seed = 13;
  data::Dataset all = data::make_synthetic_cifar(cc);
  auto [test, train] = all.split(0.2);

  CifarSetup setup;
  setup.test = std::move(test);
  setup.train = std::move(train);
  setup.ss26.depth = 26;
  setup.ss26.image_size = 16;
  setup.ss26.base_channels = opts.quick ? 6 : 10;
  setup.ss14 = setup.ss26;
  setup.ss14.depth = 14;
  setup.ss8 = setup.ss26;
  setup.ss8.depth = 8;
  return setup;
}

const nn::ShakeShakeConfig& cifar_expert_cfg(const CifarSetup& setup,
                                             int num_experts) {
  TEAMNET_CHECK_MSG(num_experts == 2 || num_experts == 4,
                    "paper evaluates 2 or 4 nodes");
  return num_experts == 2 ? setup.ss14 : setup.ss8;
}

std::unique_ptr<nn::MlpNet> train_mnist_baseline(const MnistSetup& setup,
                                                 const Options& opts) {
  Rng rng(21);
  auto model = std::make_unique<nn::MlpNet>(setup.mlp8, rng);
  const std::string path = cache_path(
      opts, "mnist_mlp8_h" + std::to_string(setup.mlp8.hidden) + "_n" +
                std::to_string(setup.train.size()) + ".tnet");
  if (exists(path)) {
    try {
      nn::load_module(path, *model);
      model->set_training(false);
      return model;
    } catch (const Error& e) {
      LOG_WARN("stale cache " << path << " (" << e.what() << "); retraining");
    }
  }
  const int epochs = opts.quick ? 3 : 6;
  train_supervised(*model, setup.train, epochs, 64, 0.05f, 22);
  nn::save_module(path, *model);
  return model;
}

TrainedTeam train_mnist_teamnet(const MnistSetup& setup, int num_experts,
                                const Options& opts, core::GateKind gate) {
  const nn::MlpConfig& expert_cfg = mnist_expert_cfg(setup, num_experts);
  const std::string stem =
      "mnist_teamnet_k" + std::to_string(num_experts) + "_h" +
      std::to_string(expert_cfg.hidden) + "_n" +
      std::to_string(setup.train.size()) + "_" + core::to_string(gate);

  TrainedTeam team;
  const std::string tele_path = cache_path(opts, stem + ".telemetry");
  bool cached = exists(tele_path);
  for (int i = 0; cached && i < num_experts; ++i) {
    cached = exists(cache_path(opts, stem + "_e" + std::to_string(i) + ".tnet"));
  }

  if (cached) {
    try {
      Rng rng(31);
      for (int i = 0; i < num_experts; ++i) {
        auto expert = std::make_unique<nn::MlpNet>(expert_cfg, rng);
        nn::load_module(
            cache_path(opts, stem + "_e" + std::to_string(i) + ".tnet"),
            *expert);
        expert->set_training(false);
        team.experts.push_back(std::move(expert));
      }
      team.telemetry = load_telemetry(tele_path, num_experts);
      return team;
    } catch (const Error& e) {
      LOG_WARN("stale cache for " << stem << " (" << e.what()
                                  << "); retraining");
      team.experts.clear();
    }
  }

  core::TeamNetConfig cfg;
  cfg.num_experts = num_experts;
  cfg.epochs = opts.quick ? 3 : 6;
  cfg.batch_size = 64;
  cfg.gate_kind = gate;
  cfg.seed = 33;
  core::TeamNetTrainer trainer(cfg, [&expert_cfg](int, Rng& rng) -> nn::ModulePtr {
    return std::make_unique<nn::MlpNet>(expert_cfg, rng);
  });
  core::TeamNetEnsemble ensemble = trainer.train(setup.train);
  team.telemetry = trainer.telemetry();
  team.experts = ensemble.release_experts();

  for (int i = 0; i < num_experts; ++i) {
    nn::save_module(cache_path(opts, stem + "_e" + std::to_string(i) + ".tnet"),
                    *team.experts[static_cast<std::size_t>(i)]);
  }
  save_telemetry(tele_path, team.telemetry);
  return team;
}

std::unique_ptr<moe::SgMoe> train_mnist_sgmoe(const MnistSetup& setup,
                                              int num_experts,
                                              const Options& opts) {
  const nn::MlpConfig& expert_cfg = mnist_expert_cfg(setup, num_experts);
  moe::SgMoeConfig cfg;
  cfg.num_experts = num_experts;
  // Top-1 routing: the paper characterizes SG-MoE's data assignment as
  // random/non-specializing (§VI-C, §VI-D). With k=1 the gate receives no
  // cross-entropy gradient (only the load-balance term), so experts see
  // noisy, semantically incoherent shards — the behaviour the paper
  // compares against. k=2 would turn K=2 into a dense ensemble instead.
  cfg.top_k = 1;
  cfg.epochs = opts.quick ? 3 : 6;
  cfg.seed = 35;
  auto model = std::make_unique<moe::SgMoe>(
      cfg, 28 * 28, [&expert_cfg](int, Rng& rng) -> nn::ModulePtr {
        return std::make_unique<nn::MlpNet>(expert_cfg, rng);
      });

  const std::string stem = "mnist_sgmoe_v2_k" + std::to_string(num_experts) +
                           "_h" + std::to_string(expert_cfg.hidden) + "_n" +
                           std::to_string(setup.train.size());
  const std::string gate_path = cache_path(opts, stem + "_gate.tnet");
  bool cached = exists(gate_path);
  for (int i = 0; cached && i < num_experts; ++i) {
    cached = exists(cache_path(opts, stem + "_e" + std::to_string(i) + ".tnet"));
  }
  if (cached) {
    try {
      nn::load_module(gate_path, model->gate());
      for (int i = 0; i < num_experts; ++i) {
        nn::load_module(
            cache_path(opts, stem + "_e" + std::to_string(i) + ".tnet"),
            model->expert(i));
        model->expert(i).set_training(false);
      }
      return model;
    } catch (const Error& e) {
      LOG_WARN("stale cache for " << stem << " (" << e.what()
                                  << "); retraining");
    }
  }
  model->train(setup.train);
  nn::save_module(gate_path, model->gate());
  for (int i = 0; i < num_experts; ++i) {
    nn::save_module(cache_path(opts, stem + "_e" + std::to_string(i) + ".tnet"),
                    model->expert(i));
  }
  return model;
}

std::unique_ptr<nn::ShakeShakeNet> train_cifar_baseline(const CifarSetup& setup,
                                                        const Options& opts) {
  Rng rng(41);
  auto model = std::make_unique<nn::ShakeShakeNet>(setup.ss26, rng);
  const std::string path = cache_path(
      opts, "cifar_ss26_c" + std::to_string(setup.ss26.base_channels) + "_n" +
                std::to_string(setup.train.size()) + ".tnet");
  if (exists(path)) {
    try {
      nn::load_module(path, *model);
      model->set_training(false);
      return model;
    } catch (const Error& e) {
      LOG_WARN("stale cache " << path << " (" << e.what() << "); retraining");
    }
  }
  const int epochs = opts.quick ? 2 : 4;
  train_supervised(*model, setup.train, epochs, 32, 0.03f, 42);
  nn::save_module(path, *model);
  return model;
}

TrainedTeam train_cifar_teamnet(const CifarSetup& setup, int num_experts,
                                const Options& opts) {
  const nn::ShakeShakeConfig& expert_cfg = cifar_expert_cfg(setup, num_experts);
  const std::string stem =
      "cifar_teamnet_k" + std::to_string(num_experts) + "_d" +
      std::to_string(expert_cfg.depth) + "_c" +
      std::to_string(expert_cfg.base_channels) + "_n" +
      std::to_string(setup.train.size());

  TrainedTeam team;
  const std::string tele_path = cache_path(opts, stem + ".telemetry");
  bool cached = exists(tele_path);
  for (int i = 0; cached && i < num_experts; ++i) {
    cached = exists(cache_path(opts, stem + "_e" + std::to_string(i) + ".tnet"));
  }
  if (cached) {
    try {
      Rng rng(51);
      for (int i = 0; i < num_experts; ++i) {
        auto expert = std::make_unique<nn::ShakeShakeNet>(expert_cfg, rng);
        nn::load_module(
            cache_path(opts, stem + "_e" + std::to_string(i) + ".tnet"),
            *expert);
        expert->set_training(false);
        team.experts.push_back(std::move(expert));
      }
      team.telemetry = load_telemetry(tele_path, num_experts);
      return team;
    } catch (const Error& e) {
      LOG_WARN("stale cache for " << stem << " (" << e.what()
                                  << "); retraining");
      team.experts.clear();
    }
  }

  core::TeamNetConfig cfg;
  cfg.num_experts = num_experts;
  cfg.epochs = opts.quick ? 2 : 4;
  cfg.batch_size = 32;
  cfg.sgd.lr = 0.03f;
  cfg.seed = 53;
  core::TeamNetTrainer trainer(cfg, [&expert_cfg](int, Rng& rng) -> nn::ModulePtr {
    return std::make_unique<nn::ShakeShakeNet>(expert_cfg, rng);
  });
  core::TeamNetEnsemble ensemble = trainer.train(setup.train);
  team.telemetry = trainer.telemetry();
  team.experts = ensemble.release_experts();

  for (int i = 0; i < num_experts; ++i) {
    nn::save_module(cache_path(opts, stem + "_e" + std::to_string(i) + ".tnet"),
                    *team.experts[static_cast<std::size_t>(i)]);
  }
  save_telemetry(tele_path, team.telemetry);
  return team;
}

std::unique_ptr<moe::SgMoe> train_cifar_sgmoe(const CifarSetup& setup,
                                              int num_experts,
                                              const Options& opts) {
  const nn::ShakeShakeConfig& expert_cfg = cifar_expert_cfg(setup, num_experts);
  moe::SgMoeConfig cfg;
  cfg.num_experts = num_experts;
  cfg.top_k = 1;  // see the MNIST trainer's note on SG-MoE routing
  cfg.epochs = opts.quick ? 2 : 4;
  cfg.sgd.lr = 0.03f;
  cfg.batch_size = 32;
  cfg.seed = 55;
  const std::int64_t gate_in = 3 * setup.ss26.image_size * setup.ss26.image_size;
  auto model = std::make_unique<moe::SgMoe>(
      cfg, gate_in, [&expert_cfg](int, Rng& rng) -> nn::ModulePtr {
        return std::make_unique<nn::ShakeShakeNet>(expert_cfg, rng);
      });

  const std::string stem = "cifar_sgmoe_v2_k" + std::to_string(num_experts) +
                           "_d" + std::to_string(expert_cfg.depth) + "_n" +
                           std::to_string(setup.train.size());
  const std::string gate_path = cache_path(opts, stem + "_gate.tnet");
  bool cached = exists(gate_path);
  for (int i = 0; cached && i < num_experts; ++i) {
    cached = exists(cache_path(opts, stem + "_e" + std::to_string(i) + ".tnet"));
  }
  if (cached) {
    try {
      nn::load_module(gate_path, model->gate());
      for (int i = 0; i < num_experts; ++i) {
        nn::load_module(
            cache_path(opts, stem + "_e" + std::to_string(i) + ".tnet"),
            model->expert(i));
        model->expert(i).set_training(false);
      }
      return model;
    } catch (const Error& e) {
      LOG_WARN("stale cache for " << stem << " (" << e.what()
                                  << "); retraining");
    }
  }
  model->train(setup.train);
  nn::save_module(gate_path, model->gate());
  for (int i = 0; i < num_experts; ++i) {
    nn::save_module(cache_path(opts, stem + "_e" + std::to_string(i) + ".tnet"),
                    model->expert(i));
  }
  return model;
}

JsonReport::JsonReport(const Options& opts, std::string experiment)
    : path_(opts.json_path),
      experiment_(std::move(experiment)),
      scheduler_(sim::to_string(opts.scheduler)) {}

void JsonReport::add(const std::string& label,
                     const sim::ScenarioResult& result) {
  if (path_.empty()) return;
  rows_.push_back({label, result, {}});
}

void JsonReport::add(const std::string& label,
                     const sim::ScenarioResult& result,
                     std::vector<std::pair<std::string, double>> extras) {
  if (path_.empty()) return;
  rows_.push_back({label, result, std::move(extras)});
}

void JsonReport::add_convergence(const std::string& label,
                                 const core::ConvergenceTelemetry& telemetry) {
  if (path_.empty()) return;
  convergence_.push_back({label, telemetry.series()});
}

void JsonReport::write() const {
  if (path_.empty()) return;
  std::ofstream os(path_);
  if (!os.good()) {
    throw Error("cannot open --json output file: " + path_);
  }
  os << "{\n"
     << "  \"experiment\": \"" << json_escape(experiment_) << "\",\n"
     << "  \"scheduler\": \"" << scheduler_ << "\",\n"
     << "  \"results\": [";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& row = rows_[i];
    const sim::ScenarioResult& r = row.result;
    os << (i == 0 ? "" : ",") << "\n    {"
       << "\"label\": \"" << json_escape(row.label) << "\", "
       << "\"approach\": \"" << json_escape(r.approach) << "\", "
       << "\"nodes\": " << r.num_nodes << ", "
       << "\"latency_ms\": " << json_number(r.latency_ms) << ", "
       << "\"accuracy_pct\": " << json_number(r.accuracy_pct) << ", "
       << "\"bytes_per_query\": " << json_number(r.bytes_per_query) << ", "
       << "\"messages_per_query\": " << json_number(r.messages_per_query);
    for (const auto& extra : row.extras) {
      os << ", \"" << json_escape(extra.first)
         << "\": " << json_number(extra.second);
    }
    os << "}";
  }
  os << "\n  ]";
  if (!convergence_.empty()) {
    os << ",\n  \"convergence\": [";
    for (std::size_t i = 0; i < convergence_.size(); ++i) {
      const ConvergenceRow& row = convergence_[i];
      const auto& s = row.series;
      os << (i == 0 ? "" : ",") << "\n    {\"label\": \""
         << json_escape(row.label) << "\", \"gamma_bar\": [";
      for (std::size_t t = 0; t < s.gamma_bar.size(); ++t) {
        os << (t == 0 ? "[" : ", [");
        for (std::size_t e = 0; e < s.gamma_bar[t].size(); ++e) {
          os << (e == 0 ? "" : ", ")
             << json_number(static_cast<double>(s.gamma_bar[t][e]));
        }
        os << "]";
      }
      os << "], \"objective\": [";
      for (std::size_t t = 0; t < s.objective.size(); ++t) {
        os << (t == 0 ? "" : ", ")
           << json_number(static_cast<double>(s.objective[t]));
      }
      os << "], \"gate_iters\": [";
      for (std::size_t t = 0; t < s.gate_iters.size(); ++t) {
        os << (t == 0 ? "" : ", ") << s.gate_iters[t];
      }
      os << "]}";
    }
    os << "\n  ]";
  }
  os << "\n}\n";
  if (!os.good()) {
    throw Error("failed writing --json output file: " + path_);
  }
  std::printf("\nwrote %zu result rows to %s\n", rows_.size(), path_.c_str());
}

BreakdownReport::BreakdownReport(const Options& opts, std::string experiment)
    : path_(opts.breakdown_path),
      experiment_(std::move(experiment)),
      scheduler_(sim::to_string(opts.scheduler)) {}

void BreakdownReport::add(const std::string& label,
                          const load::BreakdownSummary& summary) {
  if (path_.empty()) return;
  rows_.emplace_back(label, summary);
}

void BreakdownReport::write() const {
  if (path_.empty()) return;
  std::string doc;
  doc += "{\n";
  doc += "  \"experiment\": \"" + json_escape(experiment_) + "\",\n";
  doc += "  \"scheduler\": \"" + scheduler_ + "\",\n";
  doc += "  \"breakdowns\": [";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    doc += (i == 0 ? "" : ",");
    doc += "\n    {\n      \"label\": \"" + json_escape(rows_[i].first) +
           "\",\n      \"summary\": ";
    load::append_breakdown_json(doc, rows_[i].second, "      ");
    doc += "\n    }";
  }
  doc += "\n  ]\n}\n";
  std::ofstream os(path_, std::ios::binary);
  if (!os.good()) {
    throw Error("cannot open --breakdown output file: " + path_);
  }
  os << doc;
  os.flush();
  if (!os.good()) {
    throw Error("failed writing --breakdown output file: " + path_);
  }
  std::printf("wrote %zu breakdown rows to %s\n", rows_.size(), path_.c_str());
}

void print_comparison_table(const std::string& title,
                            const std::vector<PaperColumn>& columns,
                            bool show_gpu_row) {
  std::printf("\n--- %s ---\n", title.c_str());
  std::vector<std::string> header = {""};
  for (const auto& c : columns) header.push_back(c.header);
  Table table(header);

  auto metric_row = [&](const std::string& name, auto getter, int digits) {
    std::vector<std::string> row = {name};
    for (const auto& c : columns) row.push_back(fmt(getter(c.measured), digits));
    table.add_row(std::move(row));
  };
  metric_row("Accuracy (%)",
             [](const sim::ScenarioResult& r) { return r.accuracy_pct; }, 1);
  metric_row("Inference Time (ms)",
             [](const sim::ScenarioResult& r) { return r.latency_ms; }, 2);
  metric_row("Memory Usage (%)",
             [](const sim::ScenarioResult& r) { return r.usage.memory_pct; }, 1);
  metric_row("CPU Usage (%)",
             [](const sim::ScenarioResult& r) { return r.usage.cpu_pct; }, 1);
  if (show_gpu_row) {
    metric_row("GPU Usage (%)",
               [](const sim::ScenarioResult& r) { return r.usage.gpu_pct; }, 1);
  }
  metric_row("Messages / query",
             [](const sim::ScenarioResult& r) { return r.messages_per_query; },
             1);
  metric_row("KBytes / query",
             [](const sim::ScenarioResult& r) { return r.bytes_per_query / 1e3; },
             2);
  std::printf("%s", table.to_string().c_str());

  // Paper block (only the cells the paper reports).
  Table paper(header);
  std::vector<std::string> lat = {"paper: Inference Time (ms)"};
  std::vector<std::string> acc = {"paper: Accuracy (%)"};
  bool have_any = false;
  for (const auto& c : columns) {
    lat.push_back(c.paper_latency_ms >= 0 ? fmt(c.paper_latency_ms, 1) : "-");
    acc.push_back(c.paper_accuracy_pct >= 0 ? fmt(c.paper_accuracy_pct, 1) : "-");
    have_any = have_any || c.paper_latency_ms >= 0 || c.paper_accuracy_pct >= 0;
  }
  if (have_any) {
    paper.add_row(std::move(acc));
    paper.add_row(std::move(lat));
    std::printf("%s", paper.to_string().c_str());
  }
}

}  // namespace teamnet::bench
