// Microbenchmarks for the networking layer: message encode/decode, in-proc
// channel round trips, collective primitives, and weight serialization —
// the real byte-shuffling costs behind the simulated links.
#include <benchmark/benchmark.h>

#include "micro_common.hpp"

#include <thread>

#include "mpi/communicator.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"

namespace teamnet {
namespace {

void BM_MessageEncodeDecode(benchmark::State& state) {
  Rng rng(1);
  net::Message msg;
  msg.type = net::MsgType::Infer;
  msg.tensors = {Tensor::randn({state.range(0)}, rng)};
  for (auto _ : state) {
    net::Message back = net::Message::decode(msg.encode());
    benchmark::DoNotOptimize(back.tensors.data());
  }
  state.SetBytesProcessed(state.iterations() * msg.encoded_size());
}
BENCHMARK(BM_MessageEncodeDecode)->Arg(784)->Arg(16384);

void BM_InprocRoundTrip(benchmark::State& state) {
  auto [a, b] = net::make_inproc_pair();
  std::thread echo([&b] {
    for (;;) {
      std::string m = b->recv();
      if (m == "quit") return;
      b->send(std::move(m));
    }
  });
  std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    a->send(payload);
    benchmark::DoNotOptimize(a->recv().size());
  }
  a->send("quit");
  echo.join();
}
BENCHMARK(BM_InprocRoundTrip)->Arg(64)->Arg(4096);

void BM_ParameterSerialization(benchmark::State& state) {
  Rng rng(2);
  nn::MlpConfig cfg;
  cfg.depth = 4;
  cfg.hidden = static_cast<std::int64_t>(state.range(0));
  nn::MlpNet model(cfg, rng);
  for (auto _ : state) {
    std::string bytes = nn::serialize_parameters(model);
    benchmark::DoNotOptimize(bytes.size());
  }
  state.SetBytesProcessed(state.iterations() * model.parameter_bytes());
}
BENCHMARK(BM_ParameterSerialization)->Arg(64)->Arg(256);

void BM_Allreduce(benchmark::State& state) {
  // The peer rank is DRIVEN by a control channel so both sides execute
  // exactly the same number of collectives (a free-running peer loop races
  // the shutdown flag and can strand the final allreduce without a
  // partner).
  const int world = 2;
  std::vector<std::vector<net::ChannelPtr>> mesh(world);
  for (auto& row : mesh) row.resize(world);
  auto [c01, c10] = net::make_inproc_pair();
  mesh[0][1] = std::move(c01);
  mesh[1][0] = std::move(c10);
  auto [ctl_main, ctl_peer] = net::make_inproc_pair();

  std::thread peer([&] {
    mpi::Communicator comm(1, {mesh[1][0].get(), nullptr});
    Rng rng(3);
    Tensor t = Tensor::randn({static_cast<std::int64_t>(1024)}, rng);
    for (;;) {
      if (ctl_peer->recv() == "quit") return;
      comm.allreduce_sum(t);
    }
  });

  mpi::Communicator comm(0, {nullptr, mesh[0][1].get()});
  Rng rng(4);
  Tensor t = Tensor::randn({static_cast<std::int64_t>(1024)}, rng);
  for (auto _ : state) {
    ctl_main->send("go");
    Tensor s = comm.allreduce_sum(t);
    benchmark::DoNotOptimize(s.data());
  }
  ctl_main->send("quit");
  peer.join();
}
BENCHMARK(BM_Allreduce);

}  // namespace
}  // namespace teamnet

int main(int argc, char** argv) {
  return teamnet::bench::micro_main(argc, argv);
}
