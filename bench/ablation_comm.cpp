// Ablation: communication pattern. Quantifies WHY TeamNet wins against the
// model-parallel baselines: one broadcast + one gather per query versus one
// collective per layer. Reports messages, bytes and the latency breakdown
// on the same device/link for the same MNIST workload.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

namespace teamnet::bench {
namespace {

int main_impl(int argc, char** argv) {
  Options opts = parse_options(argc, argv);
  print_banner("Ablation — communication pattern (one-shot vs per-layer)",
               "§VI-C third experiment's explanation");

  MnistSetup setup = mnist_setup(opts);
  auto baseline = train_mnist_baseline(setup, opts);
  auto team2 = train_mnist_teamnet(setup, 2, opts);
  auto team4 = train_mnist_teamnet(setup, 4, opts);

  sim::ScenarioConfig cfg;
  cfg.num_queries = 40;
  apply_scheduler_options(cfg, opts);
  // Same link for both patterns so only the pattern differs.
  cfg.link = sim::socket_link();

  Table table({"approach", "nodes", "messages/query", "KB/query",
               "latency (ms)"});
  auto add = [&](const sim::ScenarioResult& r) {
    table.add_row({r.approach, std::to_string(r.num_nodes),
                   Table::num(r.messages_per_query, 1),
                   Table::num(r.bytes_per_query / 1e3, 2),
                   Table::num(r.latency_ms, 2)});
  };
  add(sim::run_teamnet(team2.expert_ptrs(), setup.test, cfg));
  add(sim::run_teamnet(team4.expert_ptrs(), setup.test, cfg));
  add(sim::run_mpi_matrix(*baseline, setup.test, cfg, 2));
  add(sim::run_mpi_matrix(*baseline, setup.test, cfg, 4));
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: TeamNet's message count is K-1 broadcasts +\n"
              "K-1 gathers per query regardless of model depth; MPI-Matrix\n"
              "pays ~2(K-1) messages per Linear layer, so its latency scales\n"
              "with depth x nodes and dominates everything else.\n");
  write_observability_outputs(opts);
  return 0;
}

}  // namespace
}  // namespace teamnet::bench

int main(int argc, char** argv) { return teamnet::bench::main_impl(argc, argv); }
