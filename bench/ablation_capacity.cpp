// Ablation (paper §VII future work): capacity-weighted partitioning for
// heterogeneous edge fleets. A Jetson paired with a Raspberry Pi should not
// split the data 50/50 — the gate's set points become w_i / sum(w). This
// bench trains a 2-expert team with weights 1:1 vs 3:1 and reports the
// achieved data shares, per-node latency when the big expert is placed on
// the fast device, and accuracy.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/teamnet.hpp"

namespace teamnet::bench {
namespace {

struct Outcome {
  std::string label;
  std::vector<float> final_share;
  double accuracy_pct;
};

Outcome run(const MnistSetup& setup, std::vector<float> weights,
            const Options& opts) {
  core::TeamNetConfig cfg;
  cfg.num_experts = 2;
  cfg.epochs = opts.quick ? 3 : 5;
  cfg.batch_size = 64;
  cfg.gate.capacity_weights = weights;
  cfg.seed = 101;
  const nn::MlpConfig expert_cfg = mnist_expert_cfg(setup, 2);
  core::TeamNetTrainer trainer(cfg, [&](int, Rng& rng) -> nn::ModulePtr {
    return std::make_unique<nn::MlpNet>(expert_cfg, rng);
  });
  core::TeamNetEnsemble ensemble = trainer.train(setup.train);

  Outcome out;
  out.label = weights.empty()
                  ? "uniform (paper)"
                  : Table::num(weights[0], 0) + ":" + Table::num(weights[1], 0);
  const auto& tel = trainer.telemetry();
  out.final_share =
      tel.smoothed_gamma(tel.iterations() - 1, tel.iterations() / 4);
  out.accuracy_pct = 100.0 * ensemble.evaluate_accuracy(setup.test);
  return out;
}

int main_impl(int argc, char** argv) {
  Options opts = parse_options(argc, argv);
  print_banner("Ablation — capacity-weighted partitions (heterogeneous fleet)",
               "§VII future work: unequal partition objectives");

  MnistSetup setup = mnist_setup(opts);
  Table table({"capacity weights", "expert-1 share", "expert-2 share",
               "accuracy (%)"});
  for (auto weights : std::vector<std::vector<float>>{
           {}, {2.0f, 1.0f}, {3.0f, 1.0f}}) {
    Outcome o = run(setup, weights, opts);
    table.add_row({o.label, Table::num(o.final_share[0], 2),
                   Table::num(o.final_share[1], 2),
                   Table::num(o.accuracy_pct, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: the achieved data share tracks the declared\n"
              "capacity ratio (0.50, ~0.67, ~0.75 for expert 1) without a\n"
              "large accuracy penalty.\n");

  // Part 2: why it matters — a heterogeneous fleet (Jetson + RPi) is gated
  // by its slowest node. Matching expert size to device speed shortens the
  // critical path versus equal-size experts.
  std::printf("\n--- heterogeneous fleet: Jetson CPU (node 1) + RPi (node 2)"
              " ---\n");
  Rng rng(202);
  nn::MlpConfig big = mnist_expert_cfg(setup, 2);   // MLP-4
  nn::MlpConfig small = big;
  small.depth = 2;                                  // MLP-2 for the slow node
  nn::MlpNet equal_a(big, rng), equal_b(big, rng);
  nn::MlpNet matched_big(big, rng), matched_small(small, rng);
  for (nn::Module* m : {static_cast<nn::Module*>(&equal_a), 
                        static_cast<nn::Module*>(&equal_b),
                        static_cast<nn::Module*>(&matched_big),
                        static_cast<nn::Module*>(&matched_small)}) {
    m->set_training(false);
  }

  sim::ScenarioConfig scenario;
  scenario.num_queries = 30;
  apply_scheduler_options(scenario, opts);
  scenario.link = sim::socket_link();
  const std::vector<sim::DeviceProfile> fleet = {sim::jetson_tx2_cpu(),
                                                 sim::raspberry_pi_3b()};
  auto equal = sim::run_teamnet_heterogeneous({&equal_a, &equal_b}, fleet,
                                              setup.test, scenario);
  auto matched = sim::run_teamnet_heterogeneous(
      {&matched_big, &matched_small}, fleet, setup.test, scenario);
  Table het({"expert sizing", "latency (ms)"});
  het.add_row({"equal (MLP-4 + MLP-4)", Table::num(equal.latency_ms, 2)});
  het.add_row({"capacity-matched (MLP-4 + MLP-2)",
               Table::num(matched.latency_ms, 2)});
  std::printf("%s", het.to_string().c_str());
  std::printf("\nexpected shape: the RPi straggler dominates the equal\n"
              "configuration; giving it the smaller expert cuts the\n"
              "per-query critical path.\n");
  write_observability_outputs(opts);
  return 0;
}

}  // namespace
}  // namespace teamnet::bench

int main(int argc, char** argv) { return teamnet::bench::main_impl(argc, argv); }
