// Latency-attribution sweep (DESIGN.md §15): the TeamNet serving path
// under seeded arrival processes, with every query's arrival→completion
// latency decomposed exactly — an end-to-end master-side partition and a
// critical-path partition through the broadcast→gather DAG — and folded
// into per-phase totals, a dominant-phase census, and straggler-slack
// distributions.
//
// The point of the sweep: WHERE the latency goes as load rises. At low
// load the critical path is the wire (request/reply transit: link latency
// plus the shared medium serializing the broadcast); as an open-loop rate
// passes the serial service capacity, master-side queueing takes over —
// queries spend most of their life waiting for the serial master to reach
// them. The master IS the bottleneck, which is the paper's motivation for
// keeping coordination cheap on the edge.
//
// Under --scheduler discrete_event (the default) every attribution
// telescopes bit-exactly (reconciled == queries, max_residual_ns == 0) and
// both --json and --breakdown are byte-stable across same-seed runs; the
// checked-in BENCH_breakdown.json freezes the flat --json rows, gated in
// CI by tools/bench_compare.py, while the rich --breakdown document is
// gated by double-run byte identity.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "load/breakdown.hpp"
#include "load/loadgen.hpp"

namespace teamnet::bench {
namespace {

std::vector<std::pair<std::string, double>> extras(
    const load::LoadResult& r, const load::BreakdownSummary& s) {
  const double queries = s.queries > 0 ? static_cast<double>(s.queries) : 1.0;
  return {{"offered_qps", r.offered_qps},
          {"achieved_qps", r.achieved_qps},
          {"p50_ms", r.p50_ms},
          {"p99_ms", r.p99_ms},
          {"mean_ms", r.mean_ms},
          {"warmup_queries", static_cast<double>(r.warmup_queries)},
          {"reconciled_pct",
           100.0 * static_cast<double>(s.reconciled) / queries},
          {"max_residual_ns", static_cast<double>(s.max_residual_ns)},
          {"pct_crit_queueing",
           100.0 * s.kind_share(obs::CritKind::queueing)},
          {"pct_crit_serialization",
           100.0 * s.kind_share(obs::CritKind::serialization)},
          {"pct_crit_compute", 100.0 * s.kind_share(obs::CritKind::compute)},
          {"pct_crit_transit", 100.0 * s.kind_share(obs::CritKind::transit)},
          {"dom_queueing_pct",
           100.0 * s.dominant_kind_fraction(obs::CritKind::queueing)},
          {"dom_serialization_pct",
           100.0 * s.dominant_kind_fraction(obs::CritKind::serialization)},
          {"dom_compute_pct",
           100.0 * s.dominant_kind_fraction(obs::CritKind::compute)},
          {"dom_transit_pct",
           100.0 * s.dominant_kind_fraction(obs::CritKind::transit)},
          {"dominant_share_pct", 100.0 * s.crit_share(s.dominant_phase)},
          {"mean_slack_ms", s.straggler_slack_ms.mean()},
          {"quorum_queries", static_cast<double>(s.levels[1].queries)}};
}

sim::ScenarioResult as_scenario(const load::LoadResult& r) {
  sim::ScenarioResult sr;
  sr.approach = r.approach;
  sr.num_nodes = r.num_nodes;
  sr.latency_ms = r.mean_ms;
  sr.accuracy_pct = r.accuracy_pct;
  sr.bytes_per_query = r.bytes_per_query;
  sr.messages_per_query = r.messages_per_query;
  sr.schedule_digest = r.schedule_digest;
  return sr;
}

int main_impl(int argc, char** argv) {
  Options opts = parse_options(argc, argv);
  print_banner("Latency attribution — critical-path breakdown sweep",
               "perf analysis extension; not a paper table");

  MnistSetup setup = mnist_setup(opts);

  sim::ScenarioConfig cfg;
  cfg.link = sim::socket_link();
  apply_scheduler_options(cfg, opts);

  load::LoadConfig base;
  base.num_queries = opts.quick ? 40 : 200;
  base.warmup_queries = opts.quick ? 8 : 20;

  JsonReport report(opts, "latency_breakdown");
  BreakdownReport breakdown(opts, "latency_breakdown");
  Table table({"arrival", "nodes", "level", "p50 (ms)", "p99 (ms)",
               "top of critical path", "queue %", "serial %", "compute %",
               "transit %", "slack (ms)"});

  const int team_sizes[] = {2, 4, 8};
  const double rates[] = {50.0, 200.0};

  auto run_cell = [&](int k, const load::LoadConfig& load_cfg,
                      const std::string& level, const std::string& prefix) {
    auto team = train_mnist_teamnet(setup, k, opts);
    const auto r =
        load::run_teamnet_load(team.expert_ptrs(), setup.test, cfg, load_cfg);
    const auto summary = load::summarize_attributions(
        r.attributions, static_cast<std::size_t>(load_cfg.warmup_queries),
        load_cfg.histogram);
    const std::string label = prefix + load::to_string(load_cfg.arrival.kind) +
                              " k" + std::to_string(k) + " " + level;
    report.add(label, as_scenario(r), extras(r, summary));
    breakdown.add(label, summary);
    table.add_row(
        {prefix + r.arrival, std::to_string(k), level,
         Table::num(r.p50_ms, 2), Table::num(r.p99_ms, 2),
         obs::to_string(summary.dominant_phase),
         Table::num(100.0 * summary.kind_share(obs::CritKind::queueing), 1),
         Table::num(
             100.0 * summary.kind_share(obs::CritKind::serialization), 1),
         Table::num(100.0 * summary.kind_share(obs::CritKind::compute), 1),
         Table::num(100.0 * summary.kind_share(obs::CritKind::transit), 1),
         Table::num(summary.straggler_slack_ms.mean(), 2)});
  };

  for (const load::ArrivalKind kind :
       {load::ArrivalKind::open_poisson, load::ArrivalKind::bursty}) {
    for (const int k : team_sizes) {
      for (int level = 0; level < 2; ++level) {
        load::LoadConfig load_cfg = base;
        load_cfg.arrival.kind = kind;
        load_cfg.arrival.seed = 1000 + static_cast<std::uint64_t>(level);
        load_cfg.arrival.rate_qps = rates[level];
        run_cell(k, load_cfg, Table::num(rates[level], 0) + " q/s", "");
      }
    }
  }

  // Quorum leg: a bounded gather (quorum 2 of 3 workers, 6 ms deadline) at
  // the overload rate exercises the polling-gather code path and the
  // per-DegradationLevel split in the report. Fault-free DES runs still
  // complete full (zero-budget polls see every in-flight reply at
  // quiescence); actual quorum/local_only splits appear under injected
  // faults — the attribution tests cover that.
  {
    load::LoadConfig load_cfg = base;
    load_cfg.arrival.kind = load::ArrivalKind::open_poisson;
    load_cfg.arrival.rate_qps = rates[1];
    load_cfg.arrival.seed = 3000;
    load_cfg.worker_timeout_s = 0.006;
    load_cfg.gather_quorum = 2;
    run_cell(4, load_cfg, Table::num(rates[1], 0) + " q/s", "quorum ");
  }

  std::printf("%s", table.to_string().c_str());
  report.write();
  breakdown.write();
  std::printf(
      "\nexpected shape: at 50 q/s the critical path is dominated by the\n"
      "wire (request/reply transit — link latency plus the shared medium\n"
      "serializing the broadcast); at 200 q/s — past the serial service\n"
      "capacity — master-side queueing owns the critical path, and its\n"
      "share grows with k as every extra worker lengthens the serial\n"
      "broadcast+gather each queued query waits behind. Every query's two\n"
      "partitions telescope bit-exactly under discrete_event\n"
      "(reconciled == queries, max_residual_ns == 0).\n");
  write_observability_outputs(opts);
  return 0;
}

}  // namespace
}  // namespace teamnet::bench

int main(int argc, char** argv) { return teamnet::bench::main_impl(argc, argv); }
