// Reproduces Figure 8: convergence of per-expert data proportions on CIFAR.
// (a) K=2 drifts early (both experts know little, uncertainty judgments are
// noisy) then converges to 0.5; (b) K=4 converges to 0.25, later than K=2.
#include <cstdio>

#include "bench_common.hpp"

namespace teamnet::bench {
namespace {

void print_series(const core::ConvergenceTelemetry& tel, int k) {
  const float set_point = 1.0f / static_cast<float>(k);
  std::printf("\n(%c) %d experts — smoothed gamma per expert (set point %.2f)\n",
              k == 2 ? 'a' : 'b', k, set_point);
  std::printf("%10s", "iteration");
  for (int i = 0; i < k; ++i) std::printf("  expert%-3d", i + 1);
  std::printf("  max|dev|\n");
  const std::size_t total = tel.iterations();
  const std::size_t window = std::max<std::size_t>(1, total / 20);
  const std::size_t step = std::max<std::size_t>(1, total / 16);
  for (std::size_t t = step - 1; t < total; t += step) {
    auto gamma = tel.smoothed_gamma(t, window);
    std::printf("%10zu", t + 1);
    float dev = 0.0f;
    for (float g : gamma) {
      std::printf("  %8.3f", g);
      dev = std::max(dev, std::abs(g - set_point));
    }
    std::printf("  %7.3f\n", dev);
  }
}

int main_impl(int argc, char** argv) {
  Options opts = parse_options(argc, argv);
  print_banner("Figure 8 — gate convergence on CIFAR", "Figure 8(a), 8(b)");

  CifarSetup setup = cifar_setup(opts);
  auto team2 = train_cifar_teamnet(setup, 2, opts);
  auto team4 = train_cifar_teamnet(setup, 4, opts);

  print_series(team2.telemetry, 2);
  print_series(team4.telemetry, 4);

  // Full per-iteration series: into --json directly, and into the metrics
  // registry so a --metrics snapshot carries the same curves.
  JsonReport report(opts, "fig8_convergence_cifar");
  report.add_convergence("TeamNet x2", team2.telemetry);
  report.add_convergence("TeamNet x4", team4.telemetry);
  team2.telemetry.export_to_metrics("fig8.k2");
  team4.telemetry.export_to_metrics("fig8.k4");

  const int c2 = team2.telemetry.iterations_to_converge(0.15f, 5);
  const int c4 = team4.telemetry.iterations_to_converge(0.15f, 5);
  std::printf("\nconvergence iteration (|gamma - 1/K| < 0.15 for 5 iters): "
              "K=2 -> %d, K=4 -> %d\n", c2, c4);
  // At this reduced dataset scale (1.4k samples vs the paper's 50k) both
  // runs converge within the first epoch, so K=2/K=4 can land within a few
  // iterations of each other; require only that K=4 is not decisively
  // faster.
  std::printf("shape check (paper: K=4 converges later, ~32k iters at full "
              "scale; near-ties expected at 25x reduced scale): %s\n",
              (c2 >= 0 && (c4 < 0 || c4 + 10 >= c2)) ? "OK" : "MISMATCH");
  report.write();
  write_observability_outputs(opts);
  return 0;
}

}  // namespace
}  // namespace teamnet::bench

int main(int argc, char** argv) { return teamnet::bench::main_impl(argc, argv); }
