// Ablation (paper §III): centralized gather-at-the-master selection versus
// decentralized allgather-of-summaries selection. Decentralized selection
// leaves every node holding the final answer (no coordinator, no single
// point of failure) at the cost of extra summary messages. This bench
// measures both protocols' traffic and virtual latency on the same team.
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "mpi/decentralized.hpp"
#include "tensor/ops.hpp"

namespace teamnet::bench {
namespace {

/// Virtual-time run of the decentralized protocol: the sensing rank (0)
/// broadcasts the input, everyone computes + allgathers summaries, and the
/// per-query latency is the LAST node to learn the answer (all must know).
sim::ScenarioResult run_decentralized(const std::vector<nn::Module*>& experts,
                                      const data::Dataset& test,
                                      const sim::ScenarioConfig& config) {
  const int k = static_cast<int>(experts.size());
  net::VirtualClock clock(k);
  auto mesh = net::make_sim_mesh(k, clock, config.link);

  Rng rng(config.seed);
  std::vector<int> queries(static_cast<std::size_t>(config.num_queries));
  for (auto& q : queries) q = rng.randint(0, static_cast<int>(test.size()) - 1);

  double total_latency = 0.0;
  const std::int64_t bytes_before = clock.bytes_delivered();
  const std::int64_t msgs_before = clock.messages_delivered();

  auto rank_main = [&](int rank) {
    std::vector<net::Channel*> peers(static_cast<std::size_t>(k), nullptr);
    for (int p = 0; p < k; ++p) {
      if (p != rank) {
        peers[static_cast<std::size_t>(p)] =
            mesh[static_cast<std::size_t>(rank)][static_cast<std::size_t>(p)]
                .get();
      }
    }
    mpi::Communicator comm(rank, peers);
    net::ComputeHook hook = [&clock, rank, &config](std::int64_t flops) {
      clock.advance(rank, config.device.compute_time(flops));
    };
    for (int row : queries) {
      Tensor x;
      if (rank == 0) x = ops::take_rows(test.images, {row});
      x = comm.bcast(x.defined() ? x : Tensor({1}), 0);
      auto result = mpi::decentralized_infer(
          comm, *experts[static_cast<std::size_t>(rank)], x, hook);
      if (rank == 0) {
        // Wait until EVERY node knows the answer: barrier through rank 0.
        comm.barrier();
      } else {
        comm.barrier();
      }
    }
  };

  const double t0 = clock.node_time(0);
  std::vector<std::thread> threads;
  for (int r = 1; r < k; ++r) threads.emplace_back(rank_main, r);
  rank_main(0);
  for (auto& t : threads) t.join();
  total_latency = clock.max_time() - t0;

  sim::ScenarioResult result;
  result.approach = "TeamNet-decentralized";
  result.num_nodes = k;
  result.latency_ms = 1e3 * total_latency / config.num_queries;
  result.bytes_per_query =
      static_cast<double>(clock.bytes_delivered() - bytes_before) /
      config.num_queries;
  result.messages_per_query =
      static_cast<double>(clock.messages_delivered() - msgs_before) /
      config.num_queries;
  return result;
}

int main_impl(int argc, char** argv) {
  Options opts = parse_options(argc, argv);
  print_banner("Ablation — centralized vs decentralized result selection",
               "§III step 5 ('can be done distributedly')");

  MnistSetup setup = mnist_setup(opts);
  Table table({"protocol", "nodes", "messages/query", "KB/query",
               "latency (ms)", "who knows the answer"});
  for (int k : {2, 4}) {
    TrainedTeam team = train_mnist_teamnet(setup, k, opts);
    sim::ScenarioConfig cfg;
    cfg.num_queries = 30;
    apply_scheduler_options(cfg, opts);
    cfg.link = sim::socket_link();

    auto centralized = sim::run_teamnet(team.expert_ptrs(), setup.test, cfg);
    table.add_row({"centralized", std::to_string(k),
                   Table::num(centralized.messages_per_query, 1),
                   Table::num(centralized.bytes_per_query / 1e3, 2),
                   Table::num(centralized.latency_ms, 2), "master only"});

    auto decentralized = run_decentralized(team.expert_ptrs(), setup.test, cfg);
    table.add_row({"decentralized", std::to_string(k),
                   Table::num(decentralized.messages_per_query, 1),
                   Table::num(decentralized.bytes_per_query / 1e3, 2),
                   Table::num(decentralized.latency_ms, 2), "every node"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: decentralized selection pays extra summary\n"
              "messages (allgather + barrier) for coordinator-free agreement;\n"
              "the gap grows with the number of nodes.\n");
  write_observability_outputs(opts);
  return 0;
}

}  // namespace
}  // namespace teamnet::bench

int main(int argc, char** argv) { return teamnet::bench::main_impl(argc, argv); }
