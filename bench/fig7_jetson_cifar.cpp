// Reproduces Figure 7: CIFAR image classification with SS-26 baseline vs
// TeamNet 2xSS-14 and 4xSS-8. (a) On Jetson CPUs more experts -> faster;
// (b) on Jetson GPUs two experts are the sweet spot because the fixed WiFi
// cost eats the gain from the smallest model.
#include <cstdio>

#include "bench_common.hpp"

namespace teamnet::bench {
namespace {

void run_device(const Options& opts, const CifarSetup& setup,
                nn::ShakeShakeNet& baseline,
                const TrainedTeam& team2, const TrainedTeam& team4,
                const sim::DeviceProfile& device, char tag) {
  sim::ScenarioConfig cfg;
  cfg.device = device;
  cfg.link = sim::socket_link();
  cfg.num_queries = 20;
  apply_scheduler_options(cfg, opts);

  std::vector<PaperColumn> columns;
  columns.push_back({"SS-26 (baseline)",
                     sim::run_baseline(baseline, setup.test, cfg), -1, -1});
  columns.push_back({"2 x SS-14 (TeamNet)",
                     sim::run_teamnet(team2.expert_ptrs(), setup.test, cfg), -1,
                     -1});
  columns.push_back({"4 x SS-8 (TeamNet)",
                     sim::run_teamnet(team4.expert_ptrs(), setup.test, cfg), -1,
                     -1});
  print_comparison_table(std::string("Figure 7(") + tag + ") " + device.name,
                         columns, device.uses_gpu);

  const auto& b = columns[0].measured;
  const auto& t2 = columns[1].measured;
  const auto& t4 = columns[2].measured;
  if (!device.uses_gpu) {
    std::printf("shape check (7a: more experts -> faster on CPU): %s "
                "(%.1f > %.1f > %.1f ms)\n",
                (b.latency_ms > t2.latency_ms && t2.latency_ms > t4.latency_ms)
                    ? "OK"
                    : "MISMATCH",
                b.latency_ms, t2.latency_ms, t4.latency_ms);
  } else {
    std::printf("shape check (7b: 2 experts fastest on GPU): %s "
                "(baseline %.2f, x2 %.2f, x4 %.2f ms)\n",
                (t2.latency_ms < b.latency_ms && t2.latency_ms < t4.latency_ms)
                    ? "OK"
                    : "MISMATCH",
                b.latency_ms, t2.latency_ms, t4.latency_ms);
  }
}

int main_impl(int argc, char** argv) {
  Options opts = parse_options(argc, argv);
  print_banner("Figure 7 — CIFAR on Jetson TX2 CPUs and GPUs",
               "Figure 7(a), 7(b)");

  CifarSetup setup = cifar_setup(opts);
  auto baseline = train_cifar_baseline(setup, opts);
  auto team2 = train_cifar_teamnet(setup, 2, opts);
  auto team4 = train_cifar_teamnet(setup, 4, opts);

  run_device(opts, setup, *baseline, team2, team4, sim::jetson_tx2_cpu(),
             'a');
  run_device(opts, setup, *baseline, team2, team4, sim::jetson_tx2_gpu(),
             'b');
  write_observability_outputs(opts);
  return 0;
}

}  // namespace
}  // namespace teamnet::bench

int main(int argc, char** argv) { return teamnet::bench::main_impl(argc, argv); }
