// Microbenchmarks for the tensor substrate: GEMM variants, convolution
// lowering, softmax/entropy kernels — the primitives whose FLOP counts feed
// the edge-latency model.
#include <benchmark/benchmark.h>

#include "micro_common.hpp"

#include "common/rng.hpp"
#include "core/entropy.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"

namespace teamnet {
namespace {

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTransposedVariants(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(2);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    c.fill(0.0f);
    gemm_tn_accumulate(a.data(), b.data(), c.data(), n, n, n);
    gemm_nt_accumulate(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 4 * n * n * n);
}
BENCHMARK(BM_GemmTransposedVariants)->Arg(64)->Arg(128);

void BM_Im2Col(benchmark::State& state) {
  const std::int64_t s = state.range(0);
  Rng rng(3);
  Tensor x = Tensor::randn({8, 8, s, s}, rng);
  for (auto _ : state) {
    Tensor cols = im2col(x, 3, 1, 1);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2Col)->Arg(8)->Arg(16)->Arg(32);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(4);
  Tensor logits = Tensor::randn({state.range(0), 10}, rng);
  for (auto _ : state) {
    Tensor p = ops::softmax_rows(logits);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(64)->Arg(1024);

void BM_PredictiveEntropy(benchmark::State& state) {
  Rng rng(5);
  Tensor probs = ops::softmax_rows(Tensor::randn({state.range(0), 10}, rng));
  for (auto _ : state) {
    Tensor h = core::predictive_entropy(probs);
    benchmark::DoNotOptimize(h.data());
  }
}
BENCHMARK(BM_PredictiveEntropy)->Arg(64)->Arg(1024);

void BM_BroadcastMul(benchmark::State& state) {
  Rng rng(6);
  Tensor big = Tensor::randn({state.range(0), 64}, rng);
  Tensor row = Tensor::randn({1, 64}, rng);
  for (auto _ : state) {
    Tensor out = ops::mul(big, row);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BroadcastMul)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace teamnet

int main(int argc, char** argv) {
  return teamnet::bench::micro_main(argc, argv);
}
