// Reproduces Figure 9: which expert is most certain of which class.
// (a) With two experts, one specializes in machines (airplane, automobile,
// ship, truck) and the other in animals. (b) With four experts, pairs of
// experts sub-divide the two super-clusters.
#include <cstdio>

#include "bench_common.hpp"
#include "core/entropy.hpp"
#include "tensor/ops.hpp"

namespace teamnet::bench {
namespace {

/// Rows: classes (machines first); columns: experts; cell = fraction of the
/// class's test samples for which that expert has the least entropy.
void print_specialization(const CifarSetup& setup, const TrainedTeam& team,
                          int k) {
  Tensor entropy =
      core::entropy_matrix(team.expert_ptrs(), setup.test.images);
  const auto winner = ops::argmin_rows(entropy);

  std::vector<std::vector<int>> wins(10, std::vector<int>(static_cast<std::size_t>(k), 0));
  std::vector<int> totals(10, 0);
  for (std::int64_t r = 0; r < setup.test.size(); ++r) {
    const int cls = setup.test.labels[static_cast<std::size_t>(r)];
    ++wins[static_cast<std::size_t>(cls)]
          [static_cast<std::size_t>(winner[static_cast<std::size_t>(r)])];
    ++totals[static_cast<std::size_t>(cls)];
  }

  std::printf("\n(%c) %d experts — per-class share of 'most certain' wins\n",
              k == 2 ? 'a' : 'b', k);
  std::printf("%-14s %-9s", "class", "group");
  for (int i = 0; i < k; ++i) std::printf("  expert%-3d", i + 1);
  std::printf("\n");

  // Machines first (paper groups them), then animals.
  std::vector<int> order = {0, 1, 8, 9, 2, 3, 4, 5, 6, 7};
  std::vector<double> machine_share(static_cast<std::size_t>(k), 0.0);
  std::vector<double> animal_share(static_cast<std::size_t>(k), 0.0);
  for (int cls : order) {
    const bool machine = data::is_machine_class(cls);
    std::printf("%-14s %-9s", data::cifar_class_name(cls).c_str(),
                machine ? "machine" : "animal");
    for (int i = 0; i < k; ++i) {
      const double share =
          static_cast<double>(wins[static_cast<std::size_t>(cls)]
                                  [static_cast<std::size_t>(i)]) /
          std::max(1, totals[static_cast<std::size_t>(cls)]);
      std::printf("  %8.2f", share);
      (machine ? machine_share : animal_share)[static_cast<std::size_t>(i)] +=
          share / (machine ? 4.0 : 6.0);
    }
    std::printf("\n");
  }

  std::printf("%-14s %-9s", "SUPER-CLUSTER", "machines");
  for (double s : machine_share) std::printf("  %8.2f", s);
  std::printf("\n%-14s %-9s", "SUPER-CLUSTER", "animals");
  for (double s : animal_share) std::printf("  %8.2f", s);
  std::printf("\n");

  // Shape check: the expert that dominates machines should NOT be the one
  // that dominates animals.
  const auto argmax = [](const std::vector<double>& v) {
    return static_cast<int>(std::max_element(v.begin(), v.end()) - v.begin());
  };
  const int machine_expert = argmax(machine_share);
  const int animal_expert = argmax(animal_share);
  std::printf("shape check (distinct specialists per super-cluster): %s "
              "(machines -> expert %d, animals -> expert %d)\n",
              machine_expert != animal_expert ? "OK" : "MISMATCH",
              machine_expert + 1, animal_expert + 1);
}

int main_impl(int argc, char** argv) {
  Options opts = parse_options(argc, argv);
  print_banner("Figure 9 — expert specialization on CIFAR",
               "Figure 9(a), 9(b)");

  CifarSetup setup = cifar_setup(opts);
  auto team2 = train_cifar_teamnet(setup, 2, opts);
  auto team4 = train_cifar_teamnet(setup, 4, opts);

  print_specialization(setup, team2, 2);
  print_specialization(setup, team4, 4);
  write_observability_outputs(opts);
  return 0;
}

}  // namespace
}  // namespace teamnet::bench

int main(int argc, char** argv) { return teamnet::bench::main_impl(argc, argv); }
