// Decentralized result selection (paper §III): instead of a designated
// master gathering every expert's output (Figure 1 steps 4-5), all nodes
// exchange compact (prediction, uncertainty) summaries and each determines
// the winner locally — no coordinator, every node ends up with the final
// answer. This is the "done distributedly" alternative the paper sketches
// via leader election; an allgather of summaries achieves the same
// agreement deterministically.
#pragma once

#include "mpi/communicator.hpp"
#include "net/collab.hpp"
#include "nn/module.hpp"

namespace teamnet::mpi {

struct DecentralizedResult {
  std::vector<int> predictions;  ///< final class per sample (same on all ranks)
  std::vector<int> winner;       ///< winning rank per sample (same on all ranks)
  Tensor entropy;                ///< [n, world] all ranks' uncertainties
};

/// Every rank calls this with the same input batch (the sensing rank has
/// broadcast it beforehand). Each rank runs its local expert, allgathers
/// per-sample (argmax class, predictive entropy) summary rows — not the
/// full probability tensors — and selects the least-uncertain rank's
/// prediction. All ranks return identical results.
DecentralizedResult decentralized_infer(Communicator& comm,
                                        nn::Module& local_expert,
                                        const Tensor& x,
                                        const net::ComputeHook& on_compute = {});

}  // namespace teamnet::mpi
