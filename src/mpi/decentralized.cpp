#include "mpi/decentralized.hpp"

#include "core/entropy.hpp"
#include "tensor/ops.hpp"

namespace teamnet::mpi {

DecentralizedResult decentralized_infer(Communicator& comm,
                                        nn::Module& local_expert,
                                        const Tensor& x,
                                        const net::ComputeHook& on_compute) {
  TEAMNET_CHECK(x.rank() >= 2);
  const std::int64_t n = x.dim(0);
  const int world = comm.size();

  if (on_compute) {
    Shape sample_shape(x.shape().begin() + 1, x.shape().end());
    on_compute(local_expert.analyze(sample_shape).flops * n);
  }
  Tensor probs = ops::softmax_rows(local_expert.predict(x));
  Tensor entropy = core::predictive_entropy(probs);
  const auto local_predictions = ops::argmax_rows(probs);

  // Compact summary: one (class, entropy) pair per sample.
  Tensor summary({n, 2});
  for (std::int64_t r = 0; r < n; ++r) {
    summary[r * 2] = static_cast<float>(
        local_predictions[static_cast<std::size_t>(r)]);
    summary[r * 2 + 1] = entropy[r];
  }
  const std::vector<Tensor> all = comm.allgather(summary);

  DecentralizedResult result;
  result.predictions.resize(static_cast<std::size_t>(n));
  result.winner.resize(static_cast<std::size_t>(n));
  result.entropy = Tensor({n, world});
  for (std::int64_t r = 0; r < n; ++r) {
    int best_rank = 0;
    float best_entropy = all[0][r * 2 + 1];
    for (int rank = 0; rank < world; ++rank) {
      const float h = all[static_cast<std::size_t>(rank)][r * 2 + 1];
      result.entropy[r * world + rank] = h;
      if (h < best_entropy) {
        best_entropy = h;
        best_rank = rank;
      }
    }
    result.winner[static_cast<std::size_t>(r)] = best_rank;
    result.predictions[static_cast<std::size_t>(r)] = static_cast<int>(
        all[static_cast<std::size_t>(best_rank)][r * 2]);
  }
  return result;
}

}  // namespace teamnet::mpi
