// The paper's MPI baselines: model-parallel inference of a single model
// split across edge nodes (§VI-A).
//
//   MPI-Matrix — each Linear layer's weight matrix is row-partitioned; every
//     rank computes a partial product and an allreduce combines them. One
//     collective per layer -> the per-layer WiFi chatter that makes this
//     baseline 1-2 orders of magnitude slower than TeamNet (Table I).
//   MPI-Kernel — each Conv layer's output channels are partitioned; an
//     allgather reassembles the feature map after every conv (Table II).
//   MPI-Branch — the two Shake-Shake branches run on two ranks; feature
//     maps are exchanged once per residual block (Table II, 2 nodes only).
//
// All executors perform REAL distributed computation: every rank computes
// only its slice from the shared model parameters, and results are
// bit-identical to single-node inference (verified in tests). The optional
// compute hook reports each rank's FLOP share to the simulator.
#pragma once

#include "mpi/communicator.hpp"
#include "net/collab.hpp"
#include "nn/mlp.hpp"
#include "nn/shake_shake.hpp"

namespace teamnet::mpi {

using net::ComputeHook;

/// Row-partitioned Linear: rank r computes x[:, rows_r] @ W[rows_r, :];
/// partials are allreduce-summed and the bias added everywhere.
Tensor distributed_linear(const Tensor& x, nn::Linear& layer,
                          Communicator& comm, const ComputeHook& on_compute);

/// Output-channel-partitioned Conv2d: rank r computes channels [c0_r, c1_r)
/// via im2col + sliced GEMM; slices are allgathered and concatenated.
Tensor distributed_conv(const Tensor& x, nn::Conv2d& layer, Communicator& comm,
                        const ComputeHook& on_compute);

/// Runs a Sequential with Linear/Conv2d layers distributed and everything
/// else (activations, batch-norm, pooling) computed locally on every rank.
Tensor run_sequential_partitioned(nn::Sequential& seq, const Tensor& x,
                                  Communicator& comm,
                                  const ComputeHook& on_compute,
                                  bool partition_linear, bool partition_conv);

/// MPI-Matrix over the MLP family. All ranks call infer with the same input
/// and all obtain the full logits.
class MpiMatrixMlp {
 public:
  MpiMatrixMlp(nn::MlpNet& model, Communicator& comm,
               ComputeHook on_compute = {});
  Tensor infer(const Tensor& x);

 private:
  nn::MlpNet& model_;
  Communicator& comm_;
  ComputeHook on_compute_;
};

/// MPI-Kernel over the Shake-Shake family.
class MpiKernelShakeShake {
 public:
  MpiKernelShakeShake(nn::ShakeShakeNet& model, Communicator& comm,
                      ComputeHook on_compute = {});
  Tensor infer(const Tensor& x);

 private:
  nn::ShakeShakeNet& model_;
  Communicator& comm_;
  ComputeHook on_compute_;
};

/// MPI-Branch over the Shake-Shake family; requires exactly 2 ranks.
/// Rank 0 owns stem/skip/combine/head and branch 0; rank 1 owns branch 1.
class MpiBranchShakeShake {
 public:
  MpiBranchShakeShake(nn::ShakeShakeNet& model, Communicator& comm,
                      ComputeHook on_compute = {});
  /// Returns the full logits on both ranks.
  Tensor infer(const Tensor& x);

 private:
  nn::ShakeShakeNet& model_;
  Communicator& comm_;
  ComputeHook on_compute_;
};

}  // namespace teamnet::mpi
