#include "mpi/communicator.hpp"

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace teamnet::mpi {

Communicator::Communicator(int rank, std::vector<net::Channel*> peers)
    : rank_(rank), peers_(std::move(peers)) {
  TEAMNET_CHECK(rank_ >= 0 && rank_ < size());
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) {
      TEAMNET_CHECK_MSG(peers_[static_cast<std::size_t>(r)] == nullptr,
                        "self channel must be null");
    } else {
      TEAMNET_CHECK_MSG(peers_[static_cast<std::size_t>(r)] != nullptr,
                        "missing channel to rank " << r);
    }
  }
}

void Communicator::send(int to, const net::Message& msg) {
  TEAMNET_CHECK(to >= 0 && to < size() && to != rank_);
  peers_[static_cast<std::size_t>(to)]->send(msg.encode());
}

net::Message Communicator::recv(int from) {
  TEAMNET_CHECK(from >= 0 && from < size() && from != rank_);
  return net::Message::decode(peers_[static_cast<std::size_t>(from)]->recv());
}

Tensor Communicator::bcast(const Tensor& t, int root) {
  if (rank_ == root) {
    net::Message msg;
    msg.type = net::MsgType::Collective;
    msg.tensors = {t};
    for (int r = 0; r < size(); ++r) {
      if (r != rank_) send(r, msg);
    }
    return t;
  }
  net::Message msg = recv(root);
  TEAMNET_CHECK(msg.type == net::MsgType::Collective && msg.tensors.size() == 1);
  return std::move(msg.tensors[0]);
}

std::vector<Tensor> Communicator::gather(const Tensor& t, int root) {
  if (rank_ == root) {
    std::vector<Tensor> all(static_cast<std::size_t>(size()));
    all[static_cast<std::size_t>(rank_)] = t;
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      net::Message msg = recv(r);
      TEAMNET_CHECK(msg.type == net::MsgType::Collective &&
                    msg.tensors.size() == 1);
      all[static_cast<std::size_t>(r)] = std::move(msg.tensors[0]);
    }
    return all;
  }
  net::Message msg;
  msg.type = net::MsgType::Collective;
  msg.tensors = {t};
  send(root, msg);
  return {};
}

std::vector<Tensor> Communicator::allgather(const Tensor& t) {
  // Gather to rank 0 then fan the full set back out.
  std::vector<Tensor> all = gather(t, 0);
  if (rank_ == 0) {
    net::Message msg;
    msg.type = net::MsgType::Collective;
    msg.tensors = all;
    for (int r = 1; r < size(); ++r) send(r, msg);
    return all;
  }
  net::Message msg = recv(0);
  TEAMNET_CHECK(msg.type == net::MsgType::Collective &&
                static_cast<int>(msg.tensors.size()) == size());
  return std::move(msg.tensors);
}

Tensor Communicator::allreduce_sum(const Tensor& t) {
  std::vector<Tensor> all = gather(t, 0);
  Tensor total;
  if (rank_ == 0) {
    total = all[0].clone();
    for (int r = 1; r < size(); ++r) {
      total = ops::add(total, all[static_cast<std::size_t>(r)]);
    }
  }
  return bcast(total.defined() ? total : Tensor({1}), 0);
}

void Communicator::barrier(int root) {
  gather(Tensor({1}), root);
  bcast(Tensor({1}), root);
}

}  // namespace teamnet::mpi
