// Message-passing runtime: a from-scratch MPI-flavoured communicator built
// on the net::Channel abstraction (DESIGN.md §1.1 — substitutes OpenMPI).
//
// Each rank runs on its own thread with point-to-point channels to every
// peer. Collectives use linear algorithms rooted at a configurable root;
// over simulated channels every byte lands on the virtual clock, so the
// per-layer chattiness of the MPI baselines is accounted exactly.
#pragma once

#include <string>
#include <vector>

#include "net/message.hpp"
#include "net/transport.hpp"

namespace teamnet::mpi {

class Communicator {
 public:
  /// `peers[r]` is this rank's channel to rank r (nullptr at index `rank`).
  Communicator(int rank, std::vector<net::Channel*> peers);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(peers_.size()); }

  // ---- point to point -------------------------------------------------------
  void send(int to, const net::Message& msg);
  net::Message recv(int from);

  // ---- collectives (all ranks must call; linear algorithms) ----------------
  /// Root's tensor is copied to every rank.
  Tensor bcast(const Tensor& t, int root);
  /// Root receives all ranks' tensors ordered by rank (root's own included);
  /// non-roots get an empty vector.
  std::vector<Tensor> gather(const Tensor& t, int root);
  /// Every rank receives all ranks' tensors ordered by rank.
  std::vector<Tensor> allgather(const Tensor& t);
  /// Elementwise sum of all ranks' tensors, result on every rank.
  Tensor allreduce_sum(const Tensor& t);
  /// Synchronization point (zero-payload gather + bcast through `root`).
  void barrier(int root = 0);

 private:
  int rank_;
  std::vector<net::Channel*> peers_;
};

}  // namespace teamnet::mpi
