#include "mpi/partitioned.hpp"

#include <cstring>

#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"

namespace teamnet::mpi {

namespace {

/// Contiguous 1/size share of [0, total) for `rank` (remainder to the
/// leading ranks).
std::pair<std::int64_t, std::int64_t> share_of(std::int64_t total, int rank,
                                               int size) {
  const std::int64_t base = total / size;
  const std::int64_t extra = total % size;
  const std::int64_t lo =
      rank * base + std::min<std::int64_t>(rank, extra);
  const std::int64_t len = base + (rank < extra ? 1 : 0);
  return {lo, lo + len};
}

/// Columns [c0, c1) of a [m, n] matrix.
Tensor col_block(const Tensor& m, std::int64_t c0, std::int64_t c1) {
  TEAMNET_CHECK(m.rank() == 2 && c0 >= 0 && c0 <= c1 && c1 <= m.dim(1));
  Tensor out({m.dim(0), c1 - c0});
  for (std::int64_t r = 0; r < m.dim(0); ++r) {
    std::memcpy(out.data() + r * (c1 - c0), m.data() + r * m.dim(1) + c0,
                static_cast<std::size_t>(c1 - c0) * sizeof(float));
  }
  return out;
}

/// Rows [r0, r1) of a [m, n] matrix (view-free copy).
Tensor row_block(const Tensor& m, std::int64_t r0, std::int64_t r1) {
  TEAMNET_CHECK(m.rank() == 2 && r0 >= 0 && r0 <= r1 && r1 <= m.dim(0));
  Tensor out({r1 - r0, m.dim(1)});
  std::memcpy(out.data(), m.data() + r0 * m.dim(1),
              static_cast<std::size_t>(out.numel()) * sizeof(float));
  return out;
}

void charge(const ComputeHook& hook, std::int64_t flops) {
  if (hook) hook(flops);
}

/// Local eval-mode forward of an arbitrary module on a plain tensor, with
/// full FLOPs charged to this rank (duplicated work such as activations and
/// batch-norm that every rank performs on the full map).
Tensor local_forward(nn::Module& module, const Tensor& x,
                     const ComputeHook& hook) {
  Shape sample_shape(x.shape().begin() + 1, x.shape().end());
  charge(hook, module.analyze(sample_shape).flops * x.dim(0));
  return module.predict(x);
}

}  // namespace

Tensor distributed_linear(const Tensor& x, nn::Linear& layer,
                          Communicator& comm, const ComputeHook& on_compute) {
  TEAMNET_CHECK(x.rank() == 2 && x.dim(1) == layer.in_features());
  const auto [r0, r1] = share_of(layer.in_features(), comm.rank(), comm.size());

  // Partial product over this rank's row block of W.
  Tensor x_cols = col_block(x, r0, r1);
  Tensor w_rows = row_block(layer.weight().value(), r0, r1);
  charge(on_compute, 2 * x.dim(0) * (r1 - r0) * layer.out_features());
  Tensor partial = ops::matmul(x_cols, w_rows);

  // One allreduce per layer — the per-layer WiFi round trip.
  Tensor full = comm.allreduce_sum(partial);
  return ops::add(full, layer.bias().value());
}

Tensor distributed_conv(const Tensor& x, nn::Conv2d& layer, Communicator& comm,
                        const ComputeHook& on_compute) {
  TEAMNET_CHECK(x.rank() == 4 && x.dim(1) == layer.in_channels());
  const std::int64_t n = x.dim(0);
  const std::int64_t cout = layer.out_channels();
  const auto [c0, c1] = share_of(cout, comm.rank(), comm.size());
  const std::int64_t my_c = c1 - c0;

  // This rank's output channels via im2col + sliced GEMM.
  Tensor cols = im2col(x, layer.kernel(), layer.stride(), layer.pad());
  Tensor w_slice = col_block(layer.weight().value(), c0, c1);
  charge(on_compute, 2 * cols.dim(0) * cols.dim(1) * my_c);
  Tensor out_mat = ops::matmul(cols, w_slice);  // [n*Ho*Wo, my_c], NHWC rows
  const float* bias = layer.bias().value().data();
  for (std::int64_t r = 0; r < out_mat.dim(0); ++r) {
    float* row = out_mat.data() + r * my_c;
    for (std::int64_t j = 0; j < my_c; ++j) row[j] += bias[c0 + j];
  }

  const std::int64_t ho =
      conv_out_dim(x.dim(2), layer.kernel(), layer.stride(), layer.pad());
  const std::int64_t wo =
      conv_out_dim(x.dim(3), layer.kernel(), layer.stride(), layer.pad());
  // NHWC rows -> NCHW slice [n, my_c, ho, wo].
  Tensor slice({n, my_c, ho, wo});
  for (std::int64_t img = 0; img < n; ++img)
    for (std::int64_t y = 0; y < ho; ++y)
      for (std::int64_t xp = 0; xp < wo; ++xp) {
        const float* row = out_mat.data() + ((img * ho + y) * wo + xp) * my_c;
        for (std::int64_t ch = 0; ch < my_c; ++ch) {
          slice[((img * my_c + ch) * ho + y) * wo + xp] = row[ch];
        }
      }

  // Allgather the channel slices — the per-conv-layer WiFi exchange.
  std::vector<Tensor> slices = comm.allgather(slice);

  Tensor full({n, cout, ho, wo});
  for (int r = 0; r < comm.size(); ++r) {
    const auto [rc0, rc1] = share_of(cout, r, comm.size());
    const Tensor& s = slices[static_cast<std::size_t>(r)];
    TEAMNET_CHECK(s.dim(1) == rc1 - rc0);
    for (std::int64_t img = 0; img < n; ++img) {
      std::memcpy(full.data() + (img * cout + rc0) * ho * wo,
                  s.data() + img * (rc1 - rc0) * ho * wo,
                  static_cast<std::size_t>((rc1 - rc0) * ho * wo) *
                      sizeof(float));
    }
  }
  return full;
}

Tensor run_sequential_partitioned(nn::Sequential& seq, const Tensor& x,
                                  Communicator& comm,
                                  const ComputeHook& on_compute,
                                  bool partition_linear, bool partition_conv) {
  Tensor h = x;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    nn::Module& layer = seq.layer(i);
    if (auto* linear = dynamic_cast<nn::Linear*>(&layer);
        linear != nullptr && partition_linear) {
      h = distributed_linear(h, *linear, comm, on_compute);
    } else if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer);
               conv != nullptr && partition_conv) {
      h = distributed_conv(h, *conv, comm, on_compute);
    } else {
      h = local_forward(layer, h, on_compute);
    }
  }
  return h;
}

MpiMatrixMlp::MpiMatrixMlp(nn::MlpNet& model, Communicator& comm,
                           ComputeHook on_compute)
    : model_(model), comm_(comm), on_compute_(std::move(on_compute)) {
  // Eval mode is a caller responsibility: rank threads construct executors
  // concurrently, so the shared model must already be frozen.
  TEAMNET_CHECK_MSG(!model_.training(),
                    "partitioned executors need the model in eval mode");
}

Tensor MpiMatrixMlp::infer(const Tensor& x) {
  return run_sequential_partitioned(model_, x, comm_, on_compute_,
                                    /*partition_linear=*/true,
                                    /*partition_conv=*/false);
}

MpiKernelShakeShake::MpiKernelShakeShake(nn::ShakeShakeNet& model,
                                         Communicator& comm,
                                         ComputeHook on_compute)
    : model_(model), comm_(comm), on_compute_(std::move(on_compute)) {
  // Eval mode is a caller responsibility: rank threads construct executors
  // concurrently, so the shared model must already be frozen.
  TEAMNET_CHECK_MSG(!model_.training(),
                    "partitioned executors need the model in eval mode");
}

Tensor MpiKernelShakeShake::infer(const Tensor& x) {
  auto run = [&](nn::Sequential& seq, const Tensor& in) {
    return run_sequential_partitioned(seq, in, comm_, on_compute_,
                                      /*partition_linear=*/false,
                                      /*partition_conv=*/true);
  };
  Tensor h = run(model_.stem(), x);
  for (std::size_t i = 0; i < model_.num_blocks(); ++i) {
    nn::ShakeBlock& block = model_.block(i);
    Tensor b0 = run(block.branch_seq(0), h);
    Tensor b1 = run(block.branch_seq(1), h);
    Tensor skip = block.skip_seq() ? run(*block.skip_seq(), h) : h;
    // Eval-time combine (0.5/0.5 mix + residual + ReLU) on every rank.
    charge(on_compute_, 3 * b0.numel());
    h = ops::relu(ops::add(
        ops::add(ops::mul_scalar(b0, 0.5f), ops::mul_scalar(b1, 0.5f)), skip));
  }
  // The head (GAP + tiny Linear) is cheap; every rank runs it locally.
  for (std::size_t i = 0; i < model_.head().size(); ++i) {
    h = local_forward(model_.head().layer(i), h, on_compute_);
  }
  return h;
}

MpiBranchShakeShake::MpiBranchShakeShake(nn::ShakeShakeNet& model,
                                         Communicator& comm,
                                         ComputeHook on_compute)
    : model_(model), comm_(comm), on_compute_(std::move(on_compute)) {
  TEAMNET_CHECK_MSG(comm.size() == 2, "MPI-Branch needs exactly 2 ranks");
  TEAMNET_CHECK_MSG(!model_.training(),
                    "partitioned executors need the model in eval mode");
}

Tensor MpiBranchShakeShake::infer(const Tensor& x) {
  const int rank = comm_.rank();
  auto local = [&](nn::Sequential& seq, const Tensor& in) {
    Tensor h = in;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      h = local_forward(seq.layer(i), h, on_compute_);
    }
    return h;
  };

  Tensor h;
  if (rank == 0) {
    h = local(model_.stem(), x);
  }
  for (std::size_t i = 0; i < model_.num_blocks(); ++i) {
    nn::ShakeBlock& block = model_.block(i);
    // Rank 0 ships the current feature map; both branches then run in
    // parallel; rank 1 ships its branch output back — two transfers per
    // block (the per-block WiFi cost of Table II's MPI-Branch row).
    h = comm_.bcast(h, 0);
    if (rank == 0) {
      Tensor b0 = local(block.branch_seq(0), h);
      Tensor skip = block.skip_seq() ? local(*block.skip_seq(), h) : h;
      net::Message msg = comm_.recv(1);
      TEAMNET_CHECK(msg.type == net::MsgType::Result && msg.tensors.size() == 1);
      const Tensor& b1 = msg.tensors[0];
      charge(on_compute_, 3 * b0.numel());
      h = ops::relu(ops::add(
          ops::add(ops::mul_scalar(b0, 0.5f), ops::mul_scalar(b1, 0.5f)),
          skip));
    } else {
      Tensor b1 = local(block.branch_seq(1), h);
      net::Message msg;
      msg.type = net::MsgType::Result;
      msg.tensors = {std::move(b1)};
      comm_.send(0, msg);
    }
  }
  if (rank == 0) {
    h = local(model_.head(), h);
  }
  // Both ranks return the final logits.
  return comm_.bcast(h, 0);
}

}  // namespace teamnet::mpi
