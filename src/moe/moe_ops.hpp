// Row-routing autograd ops needed by sparsely-gated mixture-of-experts:
// gather a sub-batch, scatter expert outputs back, and pick each row's gate
// weight. Built on ag::make_node — the autograd extension point.
#pragma once

#include <vector>

#include "tensor/autograd.hpp"

namespace teamnet::moe {

/// out[r, :] = src[rows[r], :]  (src rank >= 2; backward scatter-adds).
ag::Var gather_rows(const ag::Var& src, const std::vector<int>& rows);

/// out is [n, C] zeros with out[rows[r], :] += src[r, :] (backward gathers).
ag::Var scatter_add_rows(const ag::Var& src, const std::vector<int>& rows,
                         std::int64_t n);

/// out[r, 0] = m[rows[r], cols[r]] for a [n, K] matrix -> [len(rows), 1].
ag::Var gather_elements(const ag::Var& m, const std::vector<int>& rows,
                        const std::vector<int>& cols);

}  // namespace teamnet::moe
