#include "moe/moe_serving.hpp"

#include <algorithm>
#include <string>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace teamnet::moe {

namespace {

/// Registry bump for rare protocol events — off the per-sample hot path.
void bump(const char* name, std::int64_t delta = 1) {
  obs::MetricsRegistry::instance().counter(name).add(delta);
}

}  // namespace

MoeMaster::MoeMaster(SgMoe& model, std::vector<net::Channel*> workers)
    : model_(model),
      workers_(std::move(workers)),
      slots_(workers_.size()),
      now_(&net::steady_seconds) {
  TEAMNET_CHECK_MSG(
      static_cast<int>(workers_.size()) == model.num_experts() - 1,
      "need one worker channel per remote expert");
  for (auto* w : workers_) TEAMNET_CHECK(w != nullptr);
}

void MoeMaster::set_time_source(net::TimeSource now) {
  now_ = now ? std::move(now) : net::TimeSource(&net::steady_seconds);
}

void MoeMaster::set_probe_interval(int queries) {
  TEAMNET_CHECK_MSG(queries >= 0, "probe interval must be >= 0");
  probe_interval_ =
      std::min(queries, net::CollaborativeMaster::kMaxProbeInterval);
}

void MoeMaster::enable_health(const net::HealthConfig& config) {
  health_ = std::make_unique<net::HealthTracker>(
      static_cast<int>(workers_.size()), config, now_);
}

int MoeMaster::failed_workers() const {
  return static_cast<int>(
      std::count_if(slots_.begin(), slots_.end(),
                    [](const WorkerSlot& s) { return s.failed; }));
}

bool MoeMaster::worker_alive(int worker_index) const {
  TEAMNET_CHECK_MSG(
      worker_index >= 0 && worker_index < static_cast<int>(slots_.size()),
      "worker index " << worker_index << " out of range [0, " << slots_.size()
                      << ")");
  return !slots_[static_cast<std::size_t>(worker_index)].failed;
}

bool MoeMaster::dispatchable(std::size_t w) const {
  return !slots_[w].failed &&
         (!health_ || health_->allow_dispatch(static_cast<int>(w)));
}

void MoeMaster::mark_failed(std::size_t w) {
  WorkerSlot& slot = slots_[w];
  if (slot.failed) return;
  if (health_) health_->record_failure(static_cast<int>(w));
  slot.failed = true;
  slot.probe_id = 0;
  slot.probe_interval = probe_interval_;
  slot.probe_countdown = probe_interval_;
  bump("moe.worker_failures_total");
  obs::trace_instant("worker_failed", [&] {
    return obs::TraceArgs().arg("expert", static_cast<std::int64_t>(w) + 1);
  });
}

// Probation parity with CollaborativeMaster::probe_failed_workers: poll for
// Pongs (rejoining answerers, breaker permitting) and send fresh Pings on
// the exponential-backoff cadence.
void MoeMaster::probe_failed_workers() {
  if (probe_interval_ <= 0) return;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    WorkerSlot& slot = slots_[w];
    if (!slot.failed) continue;
    try {
      for (int drained = 0; slot.probe_id != 0 && drained < 64; ++drained) {
        auto raw = workers_[w]->recv_timeout(0.0);
        if (!raw) break;
        net::Message msg;
        try {
          msg = net::Message::decode(*raw);
        } catch (const SerializationError&) {
          ++stale_discarded_;
          bump("moe.stale_replies_total");
          continue;
        }
        if (msg.type == net::MsgType::Pong && !msg.ints.empty() &&
            msg.ints[0] == slot.probe_id) {
          if (health_) health_->record_probe_success(static_cast<int>(w));
          if (health_ && !health_->allow_dispatch(static_cast<int>(w))) {
            slot.probe_id = 0;
            LOG_INFO("expert " << w + 1
                               << " answered probe but its breaker is open; "
                                  "staying in probation");
            break;
          }
          slot.failed = false;
          slot.probe_id = 0;
          ++rejoins_;
          bump("moe.rejoins_total");
          obs::trace_instant("worker_rejoin", [&] {
            return obs::TraceArgs().arg("expert",
                                        static_cast<std::int64_t>(w) + 1);
          });
          LOG_INFO("expert " << w + 1
                             << " answered probe; rejoining the live set");
          break;
        }
        ++stale_discarded_;
        bump("moe.stale_replies_total");
        if (flow_trace_ && msg.type == net::MsgType::Result &&
            !msg.ints.empty()) {
          // A late Result from before the expert failed: close its flow at
          // the probation drain so it does not dangle in the trace.
          obs::trace_flow_finish(
              "result",
              obs::flow_id(msg.ints[0], static_cast<int>(w) + 1, 1));
        }
      }
      if (!slot.failed) continue;
      if (--slot.probe_countdown > 0) continue;
      net::Message ping;
      ping.type = net::MsgType::Ping;
      ping.ints = {++probe_seq_};
      workers_[w]->send(ping.encode());
      slot.probe_id = probe_seq_;
      obs::trace_instant("probe", [&] {
        return obs::TraceArgs()
            .arg("expert", static_cast<std::int64_t>(w) + 1)
            .arg("probe_id", probe_seq_);
      });
      slot.probe_interval = std::min(
          slot.probe_interval * 2, net::CollaborativeMaster::kMaxProbeInterval);
      slot.probe_countdown = slot.probe_interval;
    } catch (const Error& e) {
      LOG_DEBUG("expert " << w + 1 << " probe failed: " << e.what());
    }
  }
}

// analyze:hot  (per-query path: hot-path allocation audit root)
MoeMaster::Result MoeMaster::infer(const Tensor& x) {
  const std::int64_t n = x.dim(0);
  const std::int64_t qid = ++query_seq_;
  obs::MetricsRegistry::instance().counter("moe.queries_total").increment();
  obs::TraceSpan query_span("query", [&] {
    return obs::TraceArgs().arg("qid", qid).arg("batch", n);
  });
  const bool timeline = obs::qtl_active();
  if (timeline) {
    obs::qtl_master_mark(qid, obs::QueryPhase::dispatch, now_());
  }

  // Probation first, so a recovered worker rejoins in time for this query.
  probe_failed_workers();

  // The shared deadline anchors before dispatch (the query's SLO) and its
  // absolute expiry rides in every Infer frame (DESIGN.md §13).
  net::GatherDeadline deadline(worker_timeout_s_, now_);

  // Gate evaluation on the master (tiny linear layer).
  Result result;
  {
    obs::TraceSpan span("route", [&] {
      return obs::TraceArgs().arg("qid", qid);
    });
    if (on_compute_) {
      on_compute_(2 * x.numel() / n * model_.num_experts() * n);
    }
    result.routed = model_.route(x);
  }

  // Group rows per expert; remote groups cost one round trip each.
  std::vector<std::vector<int>> groups(
      static_cast<std::size_t>(model_.num_experts()));
  for (std::int64_t r = 0; r < n; ++r) {
    groups[static_cast<std::size_t>(
               result.routed[static_cast<std::size_t>(r)])]
        .push_back(static_cast<int>(r));
  }

  // Degraded rerouting (local fallback): rows routed to a probationed or
  // breaker-open expert are recomputed by the master's expert 0 — a
  // wrong-expert answer beats no answer.
  auto reroute_local = [&](std::size_t expert) {
    auto& rows = groups[expert];
    fallback_rows_ += static_cast<std::int64_t>(rows.size());
    result.fallback_rows += static_cast<std::int64_t>(rows.size());
    bump("moe.fallback_rows_total", static_cast<std::int64_t>(rows.size()));
    groups[0].insert(groups[0].end(), rows.begin(), rows.end());
    rows.clear();
  };
  if (local_fallback_) {
    for (int i = 1; i < model_.num_experts(); ++i) {
      if (!groups[static_cast<std::size_t>(i)].empty() &&
          !dispatchable(static_cast<std::size_t>(i - 1))) {
        reroute_local(static_cast<std::size_t>(i));
      }
    }
  }

  // Dispatch remote requests first so the remote nodes compute while the
  // master handles its local group. Without local fallback a send error
  // propagates (the legacy strict contract); with it the failure enters
  // probation and the rows come home.
  std::vector<char> asked(groups.size(), 0);
  {
    obs::TraceSpan span("dispatch", [&] {
      return obs::TraceArgs().arg("qid", qid);
    });
    for (int i = 1; i < model_.num_experts(); ++i) {
      const auto& rows = groups[static_cast<std::size_t>(i)];
      if (rows.empty()) continue;
      net::Message request;
      request.type = net::MsgType::Infer;
      net::InferInfo info;
      info.qid = qid;
      info.deadline_us = deadline.deadline_us();
      net::set_infer_info(request, info);
      request.tensors = {ops::take_rows(x, rows)};
      if (!local_fallback_) {
        workers_[static_cast<std::size_t>(i - 1)]->send(request.encode());
        asked[static_cast<std::size_t>(i)] = 1;
        if (timeline) {
          obs::qtl_worker_mark(qid, i - 1, obs::WorkerMark::sent, now_());
        }
        if (flow_trace_) {
          obs::trace_flow_start("infer", obs::flow_id(qid, i, 0));
        }
        continue;
      }
      try {
        workers_[static_cast<std::size_t>(i - 1)]->send(request.encode());
        asked[static_cast<std::size_t>(i)] = 1;
        if (timeline) {
          obs::qtl_worker_mark(qid, i - 1, obs::WorkerMark::sent, now_());
        }
        if (flow_trace_) {
          obs::trace_flow_start("infer", obs::flow_id(qid, i, 0));
        }
      } catch (const Error& e) {
        LOG_WARN("expert " << i << " failed on send: " << e.what());
        mark_failed(static_cast<std::size_t>(i - 1));
        reroute_local(static_cast<std::size_t>(i));
      }
    }
  }
  const double t_sent = now_();
  if (timeline) {
    obs::qtl_master_mark(qid, obs::QueryPhase::broadcast_end, t_sent);
  }

  Tensor probs;
  auto place = [&](const std::vector<int>& rows, const Tensor& pi) {
    if (!probs.defined()) probs = Tensor({n, pi.dim(1)});
    for (std::size_t r = 0; r < rows.size(); ++r) {
      std::copy(pi.data() + static_cast<std::int64_t>(r) * pi.dim(1),
                pi.data() + static_cast<std::int64_t>(r + 1) * pi.dim(1),
                probs.data() + rows[r] * pi.dim(1));
    }
  };
  auto run_local = [&](const std::vector<int>& rows) {
    Tensor xi = ops::take_rows(x, rows);
    if (on_compute_) {
      Shape sample_shape(xi.shape().begin() + 1, xi.shape().end());
      on_compute_(model_.expert(0).analyze(sample_shape).flops * xi.dim(0));
    }
    place(rows, ops::softmax_rows(model_.expert(0).predict(xi)));
  };

  // Local expert 0 (fallback rows included).
  if (!groups[0].empty()) {
    obs::TraceSpan span("expert_forward", [&] {
      return obs::TraceArgs().arg("qid", qid).arg(
          "rows", static_cast<std::int64_t>(groups[0].size()));
    });
    run_local(groups[0]);
  }
  if (timeline) {
    obs::qtl_master_mark(qid, obs::QueryPhase::local_compute_end, now_());
  }

  // Collect remote replies under ONE shared deadline; stale replies (old
  // query ids left over from a previous timed-out query) and duplicate
  // probe Pongs are discarded. A missed deadline throws under the strict
  // contract — the routed expert's answer IS the answer — and falls back
  // to the local expert in degraded mode.
  obs::TraceSpan gather_span("gather", [&] {
    return obs::TraceArgs().arg("qid", qid);
  });
  for (int i = 1; i < model_.num_experts(); ++i) {
    const auto& rows = groups[static_cast<std::size_t>(i)];
    if (rows.empty() || !asked[static_cast<std::size_t>(i)]) continue;
    net::Channel& channel = *workers_[static_cast<std::size_t>(i - 1)];
    const std::size_t w = static_cast<std::size_t>(i - 1);
    try {
      for (;;) {
        auto raw = deadline.recv_from(channel);
        if (!raw) {
          if (!local_fallback_) {
            throw NetworkError("expert " + std::to_string(i) +
                               " missed the reply deadline");
          }
          LOG_WARN("expert " << i << " missed the reply deadline; rows fall "
                                     "back to the local expert");
          mark_failed(w);
          fallback_rows_ += static_cast<std::int64_t>(rows.size());
          result.fallback_rows += static_cast<std::int64_t>(rows.size());
          bump("moe.fallback_rows_total",
               static_cast<std::int64_t>(rows.size()));
          run_local(rows);
          break;
        }
        net::Message reply = net::Message::decode(*raw);
        if (reply.type == net::MsgType::Pong) {
          ++stale_discarded_;  // duplicate probe answer; keep waiting
          bump("moe.stale_replies_total");
          continue;
        }
        TEAMNET_CHECK(reply.type == net::MsgType::Result &&
                      reply.tensors.size() == 2);
        if (test_pre_qid_gather_) {
          // TEST-ONLY mutant (see set_test_pre_qid_gather): no id echo — the
          // deadline reading is the only stale filter, so acceptance races
          // the reply's arrival time against the clock.
          if (deadline.remaining() <= 0.0) {
            throw NetworkError("expert " + std::to_string(i) +
                               " answered past the deadline reading "
                               "(pre-qid mutant)");
          }
        } else if (reply.ints.empty() || reply.ints[0] != qid) {
          ++stale_discarded_;
          bump("moe.stale_replies_total");
          if (flow_trace_ && !reply.ints.empty()) {
            obs::trace_flow_finish(
                "result", obs::flow_id(reply.ints[0], i, 1));
          }
          obs::trace_instant("stale_reply_discarded", [&] {
            return obs::TraceArgs().arg("expert", i).arg("qid", qid);
          });
          LOG_WARN("expert " << i << " sent a stale reply; discarded");
          continue;
        }
        if (flow_trace_) {
          obs::trace_flow_finish("result", obs::flow_id(qid, i, 1));
        }
        if (timeline) {
          obs::qtl_worker_mark(qid, i - 1, obs::WorkerMark::reply_recv,
                               now_());
        }
        place(rows, reply.tensors[0]);
        if (health_) health_->record_success(static_cast<int>(w),
                                             now_() - t_sent);
        break;
      }
    } catch (const NetworkError&) {
      if (!local_fallback_) throw;
      LOG_WARN("expert " << i << " failed on recv; rows fall back to the "
                                 "local expert");
      mark_failed(w);
      fallback_rows_ += static_cast<std::int64_t>(rows.size());
      result.fallback_rows += static_cast<std::int64_t>(rows.size());
      bump("moe.fallback_rows_total", static_cast<std::int64_t>(rows.size()));
      run_local(rows);
    }
  }

  if (timeline) {
    obs::qtl_master_mark(qid, obs::QueryPhase::gather_end, now_());
  }
  result.probs = std::move(probs);
  result.predictions = ops::argmax_rows(result.probs);
  if (timeline) {
    // Map onto the shared degradation vocabulary: any row that fell back
    // to the local expert degrades the query (quorum-equivalent).
    obs::qtl_degradation(qid, result.fallback_rows > 0 ? 1 : 0);
    obs::qtl_master_mark(qid, obs::QueryPhase::complete, now_());
  }
  return result;
}

void MoeMaster::shutdown() {
  net::Message msg;
  msg.type = net::MsgType::Shutdown;
  const std::string encoded = msg.encode();
  for (auto* worker : workers_) {
    try {
      worker->send(encoded);
    } catch (const Error& e) {
      LOG_WARN("moe shutdown send failed: " << e.what());
    }
  }
  // Close every channel so a worker thread wedged in recv unblocks and can
  // be joined; the Shutdown just sent stays readable until drained.
  for (auto* worker : workers_) {
    try {
      worker->close();
    } catch (const Error& e) {
      LOG_WARN("moe shutdown close failed: " << e.what());
    }
  }
}

}  // namespace teamnet::moe
