#include "moe/moe_serving.hpp"

#include <string>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace teamnet::moe {

MoeMaster::MoeMaster(SgMoe& model, std::vector<net::Channel*> workers)
    : model_(model),
      workers_(std::move(workers)),
      now_(&net::steady_seconds) {
  TEAMNET_CHECK_MSG(
      static_cast<int>(workers_.size()) == model.num_experts() - 1,
      "need one worker channel per remote expert");
  for (auto* w : workers_) TEAMNET_CHECK(w != nullptr);
}

void MoeMaster::set_time_source(net::TimeSource now) {
  now_ = now ? std::move(now) : net::TimeSource(&net::steady_seconds);
}

// analyze:hot  (per-query path: hot-path allocation audit root)
MoeMaster::Result MoeMaster::infer(const Tensor& x) {
  const std::int64_t n = x.dim(0);
  const std::int64_t qid = ++query_seq_;
  obs::MetricsRegistry::instance().counter("moe.queries_total").increment();
  obs::TraceSpan query_span("query", [&] {
    return obs::TraceArgs().arg("qid", qid).arg("batch", n);
  });

  // Gate evaluation on the master (tiny linear layer).
  Result result;
  {
    obs::TraceSpan span("route", [&] {
      return obs::TraceArgs().arg("qid", qid);
    });
    if (on_compute_) {
      on_compute_(2 * x.numel() / n * model_.num_experts() * n);
    }
    result.routed = model_.route(x);
  }

  // Group rows per expert; remote groups cost one round trip each.
  std::vector<std::vector<int>> groups(
      static_cast<std::size_t>(model_.num_experts()));
  for (std::int64_t r = 0; r < n; ++r) {
    groups[static_cast<std::size_t>(
               result.routed[static_cast<std::size_t>(r)])]
        .push_back(static_cast<int>(r));
  }

  Tensor probs;
  auto place = [&](const std::vector<int>& rows, const Tensor& pi) {
    if (!probs.defined()) probs = Tensor({n, pi.dim(1)});
    for (std::size_t r = 0; r < rows.size(); ++r) {
      std::copy(pi.data() + static_cast<std::int64_t>(r) * pi.dim(1),
                pi.data() + static_cast<std::int64_t>(r + 1) * pi.dim(1),
                probs.data() + rows[r] * pi.dim(1));
    }
  };

  // Dispatch remote requests first so the remote nodes compute while the
  // master handles its local group.
  {
    obs::TraceSpan span("dispatch", [&] {
      return obs::TraceArgs().arg("qid", qid);
    });
    for (int i = 1; i < model_.num_experts(); ++i) {
      const auto& rows = groups[static_cast<std::size_t>(i)];
      if (rows.empty()) continue;
      net::Message request;
      request.type = net::MsgType::Infer;
      request.ints = {qid};
      request.tensors = {ops::take_rows(x, rows)};
      workers_[static_cast<std::size_t>(i - 1)]->send(request.encode());
    }
  }

  // Local expert 0.
  if (!groups[0].empty()) {
    obs::TraceSpan span("expert_forward", [&] {
      return obs::TraceArgs().arg("qid", qid).arg(
          "rows", static_cast<std::int64_t>(groups[0].size()));
    });
    Tensor xi = ops::take_rows(x, groups[0]);
    if (on_compute_) {
      Shape sample_shape(xi.shape().begin() + 1, xi.shape().end());
      on_compute_(model_.expert(0).analyze(sample_shape).flops * xi.dim(0));
    }
    place(groups[0], ops::softmax_rows(model_.expert(0).predict(xi)));
  }

  // Collect remote replies under ONE shared deadline; stale replies (old
  // query ids left over from a previous timed-out query) are discarded.
  // Unlike TeamNet's broadcast there is no degraded mode here — the routed
  // expert's answer IS the answer — so a missed deadline throws.
  obs::TraceSpan gather_span("gather", [&] {
    return obs::TraceArgs().arg("qid", qid);
  });
  net::GatherDeadline deadline(worker_timeout_s_, now_);
  for (int i = 1; i < model_.num_experts(); ++i) {
    const auto& rows = groups[static_cast<std::size_t>(i)];
    if (rows.empty()) continue;
    net::Channel& channel = *workers_[static_cast<std::size_t>(i - 1)];
    for (;;) {
      auto raw = deadline.recv_from(channel);
      if (!raw) {
        throw NetworkError("expert " + std::to_string(i) +
                           " missed the reply deadline");
      }
      net::Message reply = net::Message::decode(*raw);
      TEAMNET_CHECK(reply.type == net::MsgType::Result &&
                    reply.tensors.size() == 2);
      if (test_pre_qid_gather_) {
        // TEST-ONLY mutant (see set_test_pre_qid_gather): no id echo — the
        // deadline reading is the only stale filter, so acceptance races
        // the reply's arrival time against the clock.
        if (deadline.remaining() <= 0.0) {
          throw NetworkError("expert " + std::to_string(i) +
                             " answered past the deadline reading "
                             "(pre-qid mutant)");
        }
      } else if (reply.ints.empty() || reply.ints[0] != qid) {
        obs::MetricsRegistry::instance()
            .counter("moe.stale_replies_total")
            .increment();
        obs::trace_instant("stale_reply_discarded", [&] {
          return obs::TraceArgs().arg("expert", i).arg("qid", qid);
        });
        LOG_WARN("expert " << i << " sent a stale reply; discarded");
        continue;
      }
      place(rows, reply.tensors[0]);
      break;
    }
  }

  result.probs = std::move(probs);
  result.predictions = ops::argmax_rows(result.probs);
  return result;
}

void MoeMaster::shutdown() {
  net::Message msg;
  msg.type = net::MsgType::Shutdown;
  const std::string encoded = msg.encode();
  for (auto* worker : workers_) {
    try {
      worker->send(encoded);
    } catch (const Error& e) {
      LOG_WARN("moe shutdown send failed: " << e.what());
    }
  }
  // Close every channel so a worker thread wedged in recv unblocks and can
  // be joined; the Shutdown just sent stays readable until drained.
  for (auto* worker : workers_) {
    try {
      worker->close();
    } catch (const Error& e) {
      LOG_WARN("moe shutdown close failed: " << e.what());
    }
  }
}

}  // namespace teamnet::moe
