// Distributed SG-MoE inference (§VI-A): each expert runs on its own edge
// node; the gate sits on node 0 alongside expert 0. For every query the
// master evaluates the gate, routes the input to the top-1 expert's node
// (one request/response round trip — or a local call when expert 0 wins),
// and returns that expert's prediction.
//
// Workers reuse net::CollaborativeWorker — the Infer/Result protocol is the
// same; only the master's routing differs from TeamNet's broadcast.
#pragma once

#include <vector>

#include "moe/sg_moe.hpp"
#include "net/collab.hpp"

namespace teamnet::moe {

class MoeMaster {
 public:
  /// `workers[i]` serves expert i+1; expert 0 runs locally on the master.
  MoeMaster(SgMoe& model, std::vector<net::Channel*> workers);

  struct Result {
    Tensor probs;
    std::vector<int> predictions;
    std::vector<int> routed;  ///< expert chosen per sample
  };

  Result infer(const Tensor& x);
  /// Sends Shutdown to every worker, then closes the channels so wedged
  /// worker threads unblock and can be joined.
  void shutdown();

  void set_compute_hook(net::ComputeHook hook) { on_compute_ = std::move(hook); }

  /// When > 0, ONE shared deadline bounds the whole reply collection (same
  /// discipline as net::CollaborativeMaster). A worker that misses it
  /// throws NetworkError — SG-MoE routing has no degraded mode: the routed
  /// expert's answer is the answer. 0 (default) = block forever.
  void set_worker_timeout(double seconds) { worker_timeout_s_ = seconds; }
  /// Substitutes the monotonic clock used for the reply deadline.
  void set_time_source(net::TimeSource now);

  /// TEST-ONLY: re-introduces the pre-query-id gather (same mutation hook
  /// as net::CollaborativeMaster::set_test_pre_qid_gather; see there). Any
  /// reply arriving while the deadline still reads unexpired is trusted;
  /// one arriving after it throws the miss-path NetworkError.
  void set_test_pre_qid_gather(bool enable) { test_pre_qid_gather_ = enable; }

 private:
  SgMoe& model_;
  std::vector<net::Channel*> workers_;
  net::ComputeHook on_compute_;
  double worker_timeout_s_ = 0.0;
  bool test_pre_qid_gather_ = false;  ///< test-only mutation hook
  net::TimeSource now_;
  std::int64_t query_seq_ = 0;
};

}  // namespace teamnet::moe
