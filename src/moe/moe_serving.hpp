// Distributed SG-MoE inference (§VI-A): each expert runs on its own edge
// node; the gate sits on node 0 alongside expert 0. For every query the
// master evaluates the gate, routes the input to the top-1 expert's node
// (one request/response round trip — or a local call when expert 0 wins),
// and returns that expert's prediction.
//
// Workers reuse net::CollaborativeWorker — the Infer/Result protocol is the
// same; only the master's routing differs from TeamNet's broadcast.
#pragma once

#include <vector>

#include "moe/sg_moe.hpp"
#include "net/collab.hpp"

namespace teamnet::moe {

class MoeMaster {
 public:
  /// `workers[i]` serves expert i+1; expert 0 runs locally on the master.
  MoeMaster(SgMoe& model, std::vector<net::Channel*> workers);

  struct Result {
    Tensor probs;
    std::vector<int> predictions;
    std::vector<int> routed;  ///< expert chosen per sample
  };

  Result infer(const Tensor& x);
  void shutdown();

  void set_compute_hook(net::ComputeHook hook) { on_compute_ = std::move(hook); }

 private:
  SgMoe& model_;
  std::vector<net::Channel*> workers_;
  net::ComputeHook on_compute_;
};

}  // namespace teamnet::moe
