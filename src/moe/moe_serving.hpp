// Distributed SG-MoE inference (§VI-A): each expert runs on its own edge
// node; the gate sits on node 0 alongside expert 0. For every query the
// master evaluates the gate, routes the input to the top-1 expert's node
// (one request/response round trip — or a local call when expert 0 wins),
// and returns that expert's prediction.
//
// Workers reuse net::CollaborativeWorker — the Infer/Result protocol is the
// same; only the master's routing differs from TeamNet's broadcast.
//
// Fault tolerance mirrors net/collab (probation parity, DESIGN.md §13): a
// worker that misses the shared deadline or errors goes into Ping/Pong
// probation with exponential backoff and rejoins when it answers, and the
// same net::HealthTracker circuit breaker can gate dispatch. Because SG-MoE
// routes each row to exactly one expert there is no quorum — the degraded
// mode is a LOCAL FALLBACK: with set_local_fallback(true) the rows routed
// to a dead expert are recomputed by the master's expert 0 instead of the
// query throwing.
#pragma once

#include <memory>
#include <vector>

#include "moe/sg_moe.hpp"
#include "net/collab.hpp"

namespace teamnet::moe {

class MoeMaster {
 public:
  /// `workers[i]` serves expert i+1; expert 0 runs locally on the master.
  MoeMaster(SgMoe& model, std::vector<net::Channel*> workers);

  struct Result {
    Tensor probs;
    std::vector<int> predictions;
    std::vector<int> routed;  ///< expert chosen per sample
    std::int64_t fallback_rows = 0;  ///< rows recomputed by local expert 0
  };

  Result infer(const Tensor& x);
  /// Sends Shutdown to every worker, then closes the channels so wedged
  /// worker threads unblock and can be joined.
  void shutdown();

  void set_compute_hook(net::ComputeHook hook) { on_compute_ = std::move(hook); }

  /// When > 0, ONE shared deadline bounds the whole reply collection (same
  /// discipline as net::CollaborativeMaster). Without local fallback a
  /// worker that misses it throws NetworkError — the routed expert's
  /// answer is the answer; with set_local_fallback(true) the miss marks
  /// the worker failed and its rows fall back to the local expert.
  /// 0 (default) = block forever.
  void set_worker_timeout(double seconds) { worker_timeout_s_ = seconds; }
  /// Substitutes the monotonic clock used for the reply deadline.
  void set_time_source(net::TimeSource now);

  /// Causal flow tracing, same contract as
  /// net::CollaborativeMaster::set_flow_trace: dispatch sends open
  /// Chrome-trace flows the workers close, worker replies open flows the
  /// collection loop closes (stale discards included). In-process sim
  /// drivers only.
  void set_flow_trace(bool enabled) { flow_trace_ = enabled; }

  /// Degraded mode (DESIGN.md §13): rows routed to a failed (or
  /// breaker-open) expert are recomputed by the master's local expert 0 —
  /// a wrong-expert answer beats no answer — and the failure enters the
  /// probation machinery instead of throwing. Off by default, preserving
  /// the strict no-degraded-mode contract.
  void set_local_fallback(bool enabled) { local_fallback_ = enabled; }

  /// Probation cadence, identical to CollaborativeMaster::set_probe_interval:
  /// a failed worker is probed with a Ping every `queries` queries with
  /// exponential backoff; an answered probe rejoins it. 0 disables probing.
  void set_probe_interval(int queries);

  /// Per-worker health scoring + circuit breaker (net/health.hpp), shared
  /// semantics with CollaborativeMaster::enable_health: an open breaker
  /// keeps the worker out of dispatch until a probe answers after the
  /// cooldown. Call after set_time_source.
  void enable_health(const net::HealthConfig& config);
  const net::HealthTracker* health() const { return health_.get(); }

  /// Workers currently in probation.
  int failed_workers() const;
  /// Whether worker `worker_index` (0-based, serving expert index+1) is in
  /// the live set.
  bool worker_alive(int worker_index) const;
  /// Probed workers that answered and re-entered the live set.
  std::int64_t rejoins() const { return rejoins_; }
  /// Replies discarded because their query id did not match.
  std::int64_t stale_replies_discarded() const { return stale_discarded_; }
  /// Total rows recomputed by the local expert across all queries.
  std::int64_t fallback_rows() const { return fallback_rows_; }

  /// TEST-ONLY: re-introduces the pre-query-id gather (same mutation hook
  /// as net::CollaborativeMaster::set_test_pre_qid_gather; see there). Any
  /// reply arriving while the deadline still reads unexpired is trusted;
  /// one arriving after it throws the miss-path NetworkError.
  void set_test_pre_qid_gather(bool enable) { test_pre_qid_gather_ = enable; }

 private:
  /// Same live <-> probation state machine as CollaborativeMaster.
  struct WorkerSlot {
    bool failed = false;
    int probe_countdown = 0;
    int probe_interval = 0;
    std::int64_t probe_id = 0;
  };

  void mark_failed(std::size_t w);
  void probe_failed_workers();
  bool dispatchable(std::size_t w) const;

  SgMoe& model_;
  std::vector<net::Channel*> workers_;
  std::vector<WorkerSlot> slots_;
  net::ComputeHook on_compute_;
  double worker_timeout_s_ = 0.0;
  bool local_fallback_ = false;
  bool flow_trace_ = false;
  int probe_interval_ = 4;
  std::unique_ptr<net::HealthTracker> health_;
  bool test_pre_qid_gather_ = false;  ///< test-only mutation hook
  net::TimeSource now_;
  std::int64_t query_seq_ = 0;
  std::int64_t probe_seq_ = 0;
  std::int64_t stale_discarded_ = 0;
  std::int64_t rejoins_ = 0;
  std::int64_t fallback_rows_ = 0;
};

}  // namespace teamnet::moe
