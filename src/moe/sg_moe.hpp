// Sparsely-Gated Mixture-of-Experts (Shazeer et al. 2017) — the paper's
// SOTA MoE baseline (§II, §VI-A).
//
// A linear gating network over the flattened input produces noisy logits;
// only the top-k experts run per sample, their outputs mixed by the
// renormalized gate weights. Experts and gate train jointly on
// cross-entropy plus an importance load-balancing penalty (the CV^2 of the
// per-expert gate mass). Unlike TeamNet there is no uncertainty-driven
// specialization: data routing follows the gate's noisy preferences, which
// is exactly why SG-MoE loses accuracy to TeamNet in Tables I-II.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "nn/layers.hpp"
#include "nn/module.hpp"
#include "nn/optim.hpp"

namespace teamnet::moe {

struct SgMoeConfig {
  int num_experts = 2;
  int top_k = 2;                    ///< experts active per sample in training
  float noise_stddev = 1.0f;        ///< gating noise (exploration)
  float load_balance_weight = 0.1f; ///< weight of the CV^2 importance loss
  int epochs = 3;
  std::int64_t batch_size = 64;
  nn::SgdConfig sgd;
  std::uint64_t seed = 9;
};

using ExpertFactory = std::function<nn::ModulePtr(int index, Rng& rng)>;

class SgMoe {
 public:
  /// `gate_in_features` is the flattened input size the gate sees.
  SgMoe(const SgMoeConfig& config, std::int64_t gate_in_features,
        const ExpertFactory& factory);

  /// Joint training of gate and experts.
  void train(const data::Dataset& dataset);

  struct Inference {
    Tensor probs;                  ///< [n, C]
    std::vector<int> predictions;
    std::vector<int> routed;       ///< top-1 expert per sample
  };

  /// Top-1 sparse inference (each sample runs exactly one expert).
  Inference infer(const Tensor& x);

  double evaluate_accuracy(const data::Dataset& dataset);

  /// Top-1 expert per row without running the experts (used by the
  /// distributed serving master).
  std::vector<int> route(const Tensor& x);

  int num_experts() const { return config_.num_experts; }
  nn::Module& expert(int i) { return *experts_.at(static_cast<std::size_t>(i)); }
  nn::Linear& gate() { return *gate_; }
  const SgMoeConfig& config() const { return config_; }

  /// Mean training loss per epoch from the last train() call.
  const std::vector<float>& loss_history() const { return loss_history_; }

 private:
  /// Gate logits for a batch (optionally with exploration noise).
  Tensor gate_logits(const Tensor& x, bool add_noise);

  SgMoeConfig config_;
  std::int64_t gate_in_;
  Rng rng_;
  std::unique_ptr<nn::Linear> gate_;
  std::vector<nn::ModulePtr> experts_;
  std::vector<float> loss_history_;
};

}  // namespace teamnet::moe
