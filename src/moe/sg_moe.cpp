#include "moe/sg_moe.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"
#include "moe/moe_ops.hpp"
#include "nn/loss.hpp"
#include "tensor/ops.hpp"

namespace teamnet::moe {

namespace {

/// Indices of the k largest entries of `row` (unordered).
std::vector<int> top_k_indices(const float* row, int k_total, int k) {
  std::vector<int> idx(static_cast<std::size_t>(k_total));
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [row](int a, int b) { return row[a] > row[b]; });
  idx.resize(static_cast<std::size_t>(k));
  return idx;
}

}  // namespace

SgMoe::SgMoe(const SgMoeConfig& config, std::int64_t gate_in_features,
             const ExpertFactory& factory)
    : config_(config), gate_in_(gate_in_features), rng_(config.seed) {
  TEAMNET_CHECK(config.num_experts >= 2);
  TEAMNET_CHECK(config.top_k >= 1 && config.top_k <= config.num_experts);
  TEAMNET_CHECK(factory != nullptr);
  gate_ = std::make_unique<nn::Linear>(gate_in_, config.num_experts, rng_);
  for (int i = 0; i < config.num_experts; ++i) {
    Rng expert_rng = rng_.fork(static_cast<std::uint64_t>(i) + 500);
    experts_.push_back(factory(i, expert_rng));
  }
}

Tensor SgMoe::gate_logits(const Tensor& x, bool add_noise) {
  Tensor flat = x.reshape({x.dim(0), -1});
  TEAMNET_CHECK_MSG(flat.dim(1) == gate_in_,
                    "gate expects " << gate_in_ << " features, got "
                                    << flat.dim(1));
  Tensor logits = ops::add(ops::matmul(flat, gate_->weight().value()),
                           gate_->bias().value());
  if (add_noise && config_.noise_stddev > 0.0f) {
    for (auto& v : logits.values()) v += rng_.normal(0.0f, config_.noise_stddev);
  }
  return logits;
}

void SgMoe::train(const data::Dataset& dataset) {
  dataset.validate();
  loss_history_.clear();

  // One optimizer over gate + all experts (joint training).
  std::vector<ag::Var> params = gate_->parameters();
  for (auto& e : experts_) {
    e->set_training(true);
    auto ep = e->parameters();
    params.insert(params.end(), ep.begin(), ep.end());
  }
  nn::Sgd optimizer(params, config_.sgd);

  const int k_experts = config_.num_experts;
  Rng shuffle_rng = rng_.fork(77);
  data::BatchIterator batches(dataset, config_.batch_size, &shuffle_rng);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    batches.reset();
    double epoch_loss = 0.0;
    int batch_count = 0;
    for (data::Batch batch = batches.next(); batch.size() > 0;
         batch = batches.next()) {
      const std::int64_t n = batch.size();

      // Noisy gate logits; only the top-k per row stay active.
      Tensor flat = batch.x.reshape({n, -1}).clone();
      ag::Var gate_raw = ag::add(
          ag::matmul(ag::constant(flat), gate_->weight()), gate_->bias());
      Tensor noise({n, k_experts});
      for (auto& v : noise.values()) v = rng_.normal(0.0f, config_.noise_stddev);
      ag::Var noisy = ag::add(gate_raw, ag::constant(std::move(noise)));

      // Top-k mask: non-selected logits get a large negative offset so the
      // softmax routes (and backprops) only through the keepers.
      Tensor mask({n, k_experts});
      std::vector<std::vector<int>> expert_rows(
          static_cast<std::size_t>(k_experts));
      for (std::int64_t r = 0; r < n; ++r) {
        const float* row = noisy.value().data() + r * k_experts;
        for (int i = 0; i < k_experts; ++i) mask[r * k_experts + i] = -1e9f;
        for (int i : top_k_indices(row, k_experts, config_.top_k)) {
          mask[r * k_experts + i] = 0.0f;
          expert_rows[static_cast<std::size_t>(i)].push_back(
              static_cast<int>(r));
        }
      }
      ag::Var gate_probs =
          ag::softmax_rows(ag::add(noisy, ag::constant(std::move(mask))));

      // Mixture of the active experts' logits.
      ag::Var mix;
      for (int i = 0; i < k_experts; ++i) {
        const auto& rows = expert_rows[static_cast<std::size_t>(i)];
        if (rows.empty()) continue;
        Tensor xi = ops::take_rows(batch.x, rows);
        ag::Var expert_out =
            experts_[static_cast<std::size_t>(i)]->forward(ag::constant(xi));
        std::vector<int> cols(rows.size(), i);
        ag::Var w = gather_elements(gate_probs, rows, cols);  // [m, 1]
        ag::Var contribution =
            scatter_add_rows(ag::mul(expert_out, w), rows, n);
        mix = mix.defined() ? ag::add(mix, contribution) : contribution;
      }

      ag::Var ce = nn::cross_entropy_loss(mix, batch.y);

      // Importance load balancing: CV^2 of the per-expert gate mass,
      // computed over the UNMASKED noisy softmax. The masked distribution
      // is one-hot for k=1 (its kept entry is constantly 1), which would
      // starve the balance term of gradient entirely.
      ag::Var dense_probs = ag::softmax_rows(noisy);
      ag::Var importance = ag::sum_axis(dense_probs, 0);      // [1, K]
      ag::Var mean_imp = ag::mean_all(importance);            // [1]
      ag::Var variance = ag::mean_all(ag::square(ag::sub(importance, mean_imp)));
      ag::Var cv2 =
          ag::div(variance, ag::add_scalar(ag::square(mean_imp), 1e-9f));
      ag::Var loss =
          ag::add(ce, ag::mul_scalar(cv2, config_.load_balance_weight));

      ag::backward(loss);
      optimizer.step();
      epoch_loss += loss.value()[0];
      ++batch_count;
    }
    loss_history_.push_back(static_cast<float>(epoch_loss / batch_count));
    LOG_INFO("sg-moe epoch " << epoch + 1 << "/" << config_.epochs
                             << " loss=" << loss_history_.back());
  }
  for (auto& e : experts_) e->set_training(false);
}

std::vector<int> SgMoe::route(const Tensor& x) {
  return ops::argmax_rows(gate_logits(x, /*add_noise=*/false));
}

SgMoe::Inference SgMoe::infer(const Tensor& x) {
  const std::int64_t n = x.dim(0);
  Inference result;
  result.routed = route(x);

  // Group rows by routed expert, run each group once, scatter back.
  std::vector<std::vector<int>> groups(
      static_cast<std::size_t>(config_.num_experts));
  for (std::int64_t r = 0; r < n; ++r) {
    groups[static_cast<std::size_t>(result.routed[static_cast<std::size_t>(r)])]
        .push_back(static_cast<int>(r));
  }
  Tensor probs;
  for (int i = 0; i < config_.num_experts; ++i) {
    const auto& rows = groups[static_cast<std::size_t>(i)];
    if (rows.empty()) continue;
    Tensor xi = ops::take_rows(x, rows);
    Tensor pi = ops::softmax_rows(
        experts_[static_cast<std::size_t>(i)]->predict(xi));
    if (!probs.defined()) probs = Tensor({n, pi.dim(1)});
    for (std::size_t r = 0; r < rows.size(); ++r) {
      std::copy(pi.data() + static_cast<std::int64_t>(r) * pi.dim(1),
                pi.data() + static_cast<std::int64_t>(r + 1) * pi.dim(1),
                probs.data() + rows[r] * pi.dim(1));
    }
  }
  result.probs = std::move(probs);
  result.predictions = ops::argmax_rows(result.probs);
  return result;
}

double SgMoe::evaluate_accuracy(const data::Dataset& dataset) {
  const Inference inf = infer(dataset.images);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset.labels.size(); ++i) {
    if (inf.predictions[i] == dataset.labels[i]) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(dataset.labels.size());
}

}  // namespace teamnet::moe
