#include "moe/moe_ops.hpp"

#include <cstring>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace teamnet::moe {

ag::Var gather_rows(const ag::Var& src, const std::vector<int>& rows) {
  Tensor out = ops::take_rows(src.value(), rows);
  const Shape src_shape = src.value().shape();
  return ag::make_node(
      std::move(out), {src.node()},
      [rows, src_shape](ag::Node& node) {
        const std::int64_t row_size =
            shape_numel(src_shape) / src_shape[0];
        Tensor dsrc(src_shape);
        for (std::size_t r = 0; r < rows.size(); ++r) {
          const float* g = node.grad.data() +
                           static_cast<std::int64_t>(r) * row_size;
          float* d = dsrc.data() + rows[r] * row_size;
          for (std::int64_t j = 0; j < row_size; ++j) d[j] += g[j];
        }
        node.parents[0]->accumulate_grad(dsrc);
      },
      "gather_rows");
}

ag::Var scatter_add_rows(const ag::Var& src, const std::vector<int>& rows,
                         std::int64_t n) {
  const Tensor& s = src.value();
  TEAMNET_CHECK(s.rank() == 2 &&
                s.dim(0) == static_cast<std::int64_t>(rows.size()));
  const std::int64_t c = s.dim(1);
  Tensor out({n, c});
  for (std::size_t r = 0; r < rows.size(); ++r) {
    TEAMNET_CHECK(rows[r] >= 0 && rows[r] < n);
    const float* sr = s.data() + static_cast<std::int64_t>(r) * c;
    float* o = out.data() + rows[r] * c;
    for (std::int64_t j = 0; j < c; ++j) o[j] += sr[j];
  }
  return ag::make_node(
      std::move(out), {src.node()},
      [rows, c](ag::Node& node) {
        Tensor dsrc({static_cast<std::int64_t>(rows.size()), c});
        for (std::size_t r = 0; r < rows.size(); ++r) {
          std::memcpy(dsrc.data() + static_cast<std::int64_t>(r) * c,
                      node.grad.data() + rows[r] * c,
                      static_cast<std::size_t>(c) * sizeof(float));
        }
        node.parents[0]->accumulate_grad(dsrc);
      },
      "scatter_add_rows");
}

ag::Var gather_elements(const ag::Var& m, const std::vector<int>& rows,
                        const std::vector<int>& cols) {
  const Tensor& v = m.value();
  TEAMNET_CHECK(v.rank() == 2 && rows.size() == cols.size());
  const std::int64_t k = v.dim(1);
  Tensor out({static_cast<std::int64_t>(rows.size()), 1});
  for (std::size_t r = 0; r < rows.size(); ++r) {
    TEAMNET_CHECK(rows[r] >= 0 && rows[r] < v.dim(0) && cols[r] >= 0 &&
                  cols[r] < k);
    out[static_cast<std::int64_t>(r)] = v[rows[r] * k + cols[r]];
  }
  const Shape m_shape = v.shape();
  return ag::make_node(
      std::move(out), {m.node()},
      [rows, cols, m_shape, k](ag::Node& node) {
        Tensor dm(m_shape);
        for (std::size_t r = 0; r < rows.size(); ++r) {
          dm[rows[r] * k + cols[r]] +=
              node.grad[static_cast<std::int64_t>(r)];
        }
        node.parents[0]->accumulate_grad(dm);
      },
      "gather_elements");
}

}  // namespace teamnet::moe
