// Merge-able log-bucketed latency histogram (DESIGN.md §14), in the style
// of elbencho's LatencyHistogram: geometric bucket edges give a bounded
// relative error at every scale, so one layout covers microsecond channel
// hops and multi-second saturated-queue waits, and two histograms with the
// same layout merge by adding counts — per-phase and per-worker stats
// compose into fleet totals without keeping raw samples.
//
// Percentiles are nearest-rank over the cumulative bucket counts (the rank
// rule is obs::nearest_rank, the repo's single percentile definition) and
// report the bucket's inclusive upper edge — a deterministic, slightly
// conservative value. Bucket edges are precomputed by repeated
// multiplication and values are placed with a binary search, not a log()
// per record, so placement is exact at the boundaries and byte-stable.
//
// Not thread-safe: one driver loop owns one histogram; merge after join.
#pragma once

#include <cstdint>
#include <vector>

namespace teamnet::load {

class LatencyHistogram {
 public:
  struct Config {
    /// Upper edge of the first bucket; anything at or below lands there.
    double min_value = 1e-3;
    /// Geometric resolution: buckets per decade (relative error per bucket
    /// is 10^(1/buckets_per_decade) - 1, ~15.5% at the default 16).
    int buckets_per_decade = 16;
    /// Decades covered above min_value; values beyond the last edge land
    /// in the overflow bucket. The default spans 1e-3 .. 1e5 (eight
    /// decades — microseconds to nearly two minutes when values are ms).
    int num_decades = 8;

    bool operator==(const Config& other) const {
      return min_value == other.min_value &&
             buckets_per_decade == other.buckets_per_decade &&
             num_decades == other.num_decades;
    }
  };

  LatencyHistogram();  ///< default Config
  explicit LatencyHistogram(const Config& config);

  void record(double value);

  /// Adds `other`'s contents into this histogram. Throws InvariantError on
  /// a layout mismatch — merging across layouts would silently misbucket.
  void merge(const LatencyHistogram& other);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Nearest-rank percentile (pct in (0, 100]): the inclusive upper edge
  /// of the bucket holding the ranked sample, clamped to the observed
  /// [min, max] so coarse buckets never report beyond the data. 0.0 when
  /// empty.
  double percentile(double pct) const;

  const Config& config() const { return config_; }
  /// Inclusive upper edge of bucket `i` (the last index is the overflow
  /// bucket, reported as the max observed value).
  const std::vector<double>& upper_edges() const { return edges_; }
  /// Per-bucket counts; index edges().size() is the overflow bucket.
  const std::vector<std::int64_t>& bucket_counts() const { return counts_; }

 private:
  Config config_;
  std::vector<double> edges_;         ///< strictly increasing upper edges
  std::vector<std::int64_t> counts_;  ///< edges_.size() + 1 (overflow)
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace teamnet::load
