#include "load/breakdown.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/json.hpp"

namespace teamnet::load {

namespace {

constexpr double kNsPerMs = 1e6;

void append_hist_json(std::string& out, const LatencyHistogram& h) {
  out += "{\"count\": " + std::to_string(h.count());
  out += ", \"mean_ms\": " + obs::json_double(h.mean());
  out += ", \"p50_ms\": " + obs::json_double(h.percentile(50.0));
  out += ", \"p95_ms\": " + obs::json_double(h.percentile(95.0));
  out += ", \"p99_ms\": " + obs::json_double(h.percentile(99.0));
  out += ", \"max_ms\": " + obs::json_double(h.max());
  out += "}";
}

const char* level_name(int level) {
  switch (level) {
    case 0:
      return "full";
    case 1:
      return "quorum";
    default:
      return "local_only";
  }
}

}  // namespace

double BreakdownSummary::crit_share(obs::AttrPhase phase) const {
  const std::int64_t total = crit_total_ns();
  if (total <= 0) return 0.0;
  return static_cast<double>(phases[static_cast<int>(phase)].crit_sum_ns) /
         static_cast<double>(total);
}

double BreakdownSummary::kind_share(obs::CritKind kind) const {
  const std::int64_t total = crit_total_ns();
  if (total <= 0) return 0.0;
  std::int64_t sum = 0;
  for (int p = 0; p < obs::kNumAttrPhases; ++p) {
    if (obs::kind_of(static_cast<obs::AttrPhase>(p)) == kind) {
      sum += phases[p].crit_sum_ns;
    }
  }
  return static_cast<double>(sum) / static_cast<double>(total);
}

double BreakdownSummary::dominant_kind_fraction(obs::CritKind kind) const {
  if (queries <= 0) return 0.0;
  return static_cast<double>(dominant_kind_queries[static_cast<int>(kind)]) /
         static_cast<double>(queries);
}

std::int64_t BreakdownSummary::crit_total_ns() const {
  std::int64_t total = 0;
  for (const PhaseBreakdown& p : phases) total += p.crit_sum_ns;
  return total;
}

BreakdownSummary summarize_attributions(
    const std::vector<obs::QueryAttribution>& attrs, std::size_t skip_warmup,
    const LatencyHistogram::Config& histogram) {
  BreakdownSummary s;
  s.latency_ms = LatencyHistogram(histogram);
  s.straggler_slack_ms = LatencyHistogram(histogram);
  for (PhaseBreakdown& p : s.phases) p.crit_ms = LatencyHistogram(histogram);
  for (LevelBreakdown& l : s.levels) l.latency_ms = LatencyHistogram(histogram);

  for (std::size_t i = skip_warmup; i < attrs.size(); ++i) {
    const obs::QueryAttribution& a = attrs[i];
    s.queries += 1;
    const std::int64_t e2e_res = std::llabs(a.e2e_sum() - a.total_ns);
    const std::int64_t crit_res = std::llabs(a.crit_sum() - a.total_ns);
    if (e2e_res == 0 && crit_res == 0) s.reconciled += 1;
    s.max_residual_ns = std::max({s.max_residual_ns, e2e_res, crit_res});

    for (int p = 0; p < obs::kNumAttrPhases; ++p) {
      s.phases[p].e2e_sum_ns += a.e2e_ns[p];
      s.phases[p].crit_sum_ns += a.crit_ns[p];
      if (a.crit_ns[p] > 0) {
        s.phases[p].crit_ms.record(static_cast<double>(a.crit_ns[p]) /
                                   kNsPerMs);
      }
    }
    s.phases[static_cast<int>(a.dominant)].dominant_queries += 1;
    s.dominant_kind_queries[static_cast<int>(a.dominant_kind())] += 1;
    s.latency_ms.record(static_cast<double>(a.total_ns) / kNsPerMs);
    for (std::int64_t slack : a.straggler_slack_ns) {
      s.straggler_slack_ms.record(static_cast<double>(slack) / kNsPerMs);
    }
    const int level = std::clamp(a.degradation, 0, 2);
    s.levels[level].queries += 1;
    s.levels[level].latency_ms.record(static_cast<double>(a.total_ns) /
                                      kNsPerMs);
  }

  // Dominant phase of the RUN: largest aggregate critical contribution,
  // ties to the lowest enum value (master_queue first — the serial
  // master is the paper's expected bottleneck, so ties read as it).
  std::int64_t best = -1;
  for (int p = 0; p < obs::kNumAttrPhases; ++p) {
    if (s.phases[p].crit_sum_ns > best) {
      best = s.phases[p].crit_sum_ns;
      s.dominant_phase = static_cast<obs::AttrPhase>(p);
    }
  }
  return s;
}

void append_breakdown_json(std::string& out, const BreakdownSummary& s,
                           const std::string& indent) {
  const std::string in1 = indent + "  ";
  const std::string in2 = in1 + "  ";
  out += "{\n";
  out += in1 + "\"queries\": " + std::to_string(s.queries) + ",\n";
  out += in1 + "\"reconciled\": " + std::to_string(s.reconciled) + ",\n";
  out += in1 + "\"max_residual_ns\": " + std::to_string(s.max_residual_ns) +
         ",\n";
  out += in1 + "\"dominant_phase\": \"" +
         std::string(obs::to_string(s.dominant_phase)) + "\",\n";
  out += in1 + "\"dominant_share\": " +
         obs::json_double(s.crit_share(s.dominant_phase)) + ",\n";

  out += in1 + "\"phases\": {";
  bool first = true;
  for (int p = 0; p < obs::kNumAttrPhases; ++p) {
    const PhaseBreakdown& pb = s.phases[p];
    if (pb.e2e_sum_ns == 0 && pb.crit_sum_ns == 0 &&
        pb.dominant_queries == 0) {
      continue;  // keep rows readable; absent phase == all-zero phase
    }
    if (!first) out += ",";
    first = false;
    const auto phase = static_cast<obs::AttrPhase>(p);
    out += "\n" + in2 + "\"" + std::string(obs::to_string(phase)) + "\": ";
    out += "{\"e2e_ms_total\": " +
           obs::json_double(static_cast<double>(pb.e2e_sum_ns) / kNsPerMs);
    out += ", \"crit_ms_total\": " +
           obs::json_double(static_cast<double>(pb.crit_sum_ns) / kNsPerMs);
    out += ", \"crit_share\": " + obs::json_double(s.crit_share(phase));
    out += ", \"dominant_queries\": " + std::to_string(pb.dominant_queries);
    out += ", \"crit\": ";
    append_hist_json(out, pb.crit_ms);
    out += "}";
  }
  if (!first) out += "\n" + in1;
  out += "},\n";

  out += in1 + "\"kinds\": {";
  for (int k = 0; k < obs::kNumCritKinds; ++k) {
    const auto kind = static_cast<obs::CritKind>(k);
    if (k > 0) out += ",";
    out += "\n" + in2 + "\"" + std::string(obs::to_string(kind)) + "\": ";
    out += "{\"crit_share\": " + obs::json_double(s.kind_share(kind));
    out += ", \"dominant_queries\": " +
           std::to_string(s.dominant_kind_queries[k]);
    out += ", \"dominant_fraction\": " +
           obs::json_double(s.dominant_kind_fraction(kind));
    out += "}";
  }
  out += "\n" + in1 + "},\n";

  out += in1 + "\"latency\": ";
  append_hist_json(out, s.latency_ms);
  out += ",\n";
  out += in1 + "\"straggler_slack\": ";
  append_hist_json(out, s.straggler_slack_ms);
  out += ",\n";

  out += in1 + "\"levels\": {";
  for (int l = 0; l < 3; ++l) {
    if (l > 0) out += ",";
    out += "\n" + in2 + "\"" + std::string(level_name(l)) + "\": ";
    out += "{\"queries\": " + std::to_string(s.levels[l].queries);
    out += ", \"latency\": ";
    append_hist_json(out, s.levels[l].latency_ms);
    out += "}";
  }
  out += "\n" + in1 + "}\n";
  out += indent + "}";
}

}  // namespace teamnet::load
