#include "load/stats.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace teamnet::load {

double PhaseStats::offered_qps() const {
  const double span = arrivals_end_s - window_start_s;
  return span > 0.0 ? static_cast<double>(queries) / span : 0.0;
}

double PhaseStats::achieved_qps() const {
  const double span = duration_s();
  return span > 0.0 ? static_cast<double>(queries) / span : 0.0;
}

double PhaseStats::mean_inflight() const {
  const double span = duration_s();
  return span > 0.0 ? inflight_integral_s / span : 0.0;
}

PhaseStats make_phase_stats(const std::vector<QueryRecord>& records,
                            std::size_t begin, std::size_t end,
                            const LatencyHistogram::Config& histogram) {
  TEAMNET_CHECK(begin <= end && end <= records.size());
  PhaseStats phase;
  phase.latency = LatencyHistogram(histogram);
  if (begin == end) return phase;
  phase.queries = static_cast<std::int64_t>(end - begin);
  phase.window_start_s = records[begin].arrival_s;
  phase.arrivals_end_s = records[begin].arrival_s;
  phase.window_end_s = records[begin].completion_s;
  for (std::size_t i = begin; i < end; ++i) {
    const QueryRecord& r = records[i];
    TEAMNET_CHECK_MSG(r.completion_s >= r.arrival_s,
                      "query completed before it arrived");
    phase.arrivals_end_s = std::max(phase.arrivals_end_s, r.arrival_s);
    phase.window_end_s = std::max(phase.window_end_s, r.completion_s);
    phase.latency.record(1e3 * (r.completion_s - r.arrival_s));
  }
  // In-flight depth integral: overlap of every run query's service interval
  // with this phase's window, including queries from other phases that
  // straddle the boundary (e.g. a queued warmup query still unserved when
  // steady state opens).
  for (const QueryRecord& r : records) {
    const double lo = std::max(r.arrival_s, phase.window_start_s);
    const double hi = std::min(r.completion_s, phase.window_end_s);
    if (hi > lo) phase.inflight_integral_s += hi - lo;
  }
  return phase;
}

}  // namespace teamnet::load
