#include "load/arrival.hpp"

#include <cmath>
#include <functional>

#include "common/error.hpp"

namespace teamnet::load {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Uniform in [0, 1) from the top 53 bits of one engine draw — fixed
/// mapping, so the value sequence is byte-identical across standard
/// libraries (std::uniform_real_distribution is not).
double uniform01(Rng& rng) {
  return static_cast<double>(rng.engine()() >> 11) * 0x1.0p-53;
}

/// Exponential with rate `rate` (mean 1/rate); log1p keeps precision for
/// small draws.
double exponential(Rng& rng, double rate) {
  return -std::log1p(-uniform01(rng)) / rate;
}

class OpenPoissonProcess final : public ArrivalProcess {
 public:
  explicit OpenPoissonProcess(const ArrivalConfig& config)
      : rate_(config.rate_qps), rng_(config.seed) {
    TEAMNET_CHECK_MSG(rate_ > 0.0, "open_poisson needs rate_qps > 0");
  }

  double next_arrival(double /*now*/) override {
    next_ += exponential(rng_, rate_);
    return next_;
  }

  const char* name() const override { return "open_poisson"; }

 private:
  double rate_;
  Rng rng_;
  double next_ = 0.0;
};

class BurstyProcess final : public ArrivalProcess {
 public:
  explicit BurstyProcess(const ArrivalConfig& config)
      : base_(config.rate_qps),
        amplitude_(config.burst_amplitude),
        period_(config.burst_period_s),
        rng_(config.seed) {
    TEAMNET_CHECK_MSG(base_ > 0.0, "bursty needs rate_qps > 0");
    TEAMNET_CHECK_MSG(amplitude_ >= 0.0 && amplitude_ <= 1.0,
                      "burst_amplitude must be in [0, 1]");
    TEAMNET_CHECK_MSG(period_ > 0.0, "burst_period_s must be > 0");
  }

  double next_arrival(double /*now*/) override {
    // Lewis thinning: candidates at the peak rate, accepted with
    // probability rate(t)/rate_max. Both draws come from the one stream,
    // in a fixed order, so the accepted subsequence is deterministic.
    const double rate_max = base_ * (1.0 + amplitude_);
    for (;;) {
      candidate_ += exponential(rng_, rate_max);
      const double rate_t =
          base_ * (1.0 + amplitude_ * std::sin(kTwoPi * candidate_ / period_));
      if (uniform01(rng_) * rate_max <= rate_t) return candidate_;
    }
  }

  const char* name() const override { return "bursty"; }

 private:
  double base_;
  double amplitude_;
  double period_;
  Rng rng_;
  double candidate_ = 0.0;
};

class ClosedLoopProcess final : public ArrivalProcess {
 public:
  explicit ClosedLoopProcess(const ArrivalConfig& config)
      : think_mean_(config.think_mean_s), rng_(config.seed) {
    TEAMNET_CHECK_MSG(config.clients >= 1, "closed_loop needs clients >= 1");
    TEAMNET_CHECK_MSG(think_mean_ > 0.0,
                      "closed_loop needs think_mean_s > 0");
    // Each client finishes an initial think before its first submission —
    // a deterministic stagger that keeps arrival ties (and their heap
    // order) out of the sequence.
    for (int c = 0; c < config.clients; ++c) {
      ready_.push(exponential(rng_, 1.0 / think_mean_));
    }
  }

  double next_arrival(double /*now*/) override {
    TEAMNET_CHECK_MSG(!ready_.empty(),
                      "closed_loop exhausted: every client is awaiting a "
                      "completion; call on_complete before the next draw");
    const double t = ready_.top();
    ready_.pop();
    return t;
  }

  void on_complete(double completion_s) override {
    ready_.push(completion_s + exponential(rng_, 1.0 / think_mean_));
  }

  const char* name() const override { return "closed_loop"; }

 private:
  double think_mean_;
  Rng rng_;
  std::priority_queue<double, std::vector<double>, std::greater<>> ready_;
};

}  // namespace

const char* to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::open_poisson: return "open_poisson";
    case ArrivalKind::closed_loop: return "closed_loop";
    case ArrivalKind::bursty: return "bursty";
  }
  return "unknown";
}

std::optional<ArrivalKind> parse_arrival_kind(const std::string& name) {
  if (name == "open_poisson" || name == "poisson") {
    return ArrivalKind::open_poisson;
  }
  if (name == "closed_loop" || name == "closed") {
    return ArrivalKind::closed_loop;
  }
  if (name == "bursty") return ArrivalKind::bursty;
  return std::nullopt;
}

std::unique_ptr<ArrivalProcess> make_arrival_process(
    const ArrivalConfig& config) {
  switch (config.kind) {
    case ArrivalKind::open_poisson:
      return std::make_unique<OpenPoissonProcess>(config);
    case ArrivalKind::closed_loop:
      return std::make_unique<ClosedLoopProcess>(config);
    case ArrivalKind::bursty:
      return std::make_unique<BurstyProcess>(config);
  }
  throw InvariantError("unknown ArrivalKind");
}

ZipfClassSampler::ZipfClassSampler(int num_classes, double exponent,
                                   std::uint64_t seed)
    : rng_(seed) {
  TEAMNET_CHECK_MSG(num_classes >= 1, "ZipfClassSampler needs >= 1 class");
  TEAMNET_CHECK_MSG(exponent >= 0.0, "Zipf exponent must be >= 0");
  for (int c = 0; c < num_classes; ++c) classes_.push_back(c);
  rng_.shuffle(classes_);  // which classes are hot depends on the seed
  double total = 0.0;
  cdf_.reserve(classes_.size());
  for (int rank = 1; rank <= num_classes; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank), exponent);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
}

int ZipfClassSampler::sample() {
  const double u = uniform01(rng_);
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return classes_[lo];
}

}  // namespace teamnet::load
