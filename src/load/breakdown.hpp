// Latency-attribution aggregation for the load plane (DESIGN.md §15).
//
// obs::attribute() decomposes ONE query; a load run produces hundreds.
// This module folds the per-query QueryAttributions into a
// BreakdownSummary: per-phase end-to-end and critical-path totals,
// per-phase critical-contribution histograms, the dominant-phase census
// ("what fraction of queries have their critical path topped by gather
// slack vs compute vs queueing"), straggler-slack distribution, and
// per-DegradationLevel latency splits. The summary also carries the
// reconciliation census — how many queries' two partitions telescoped
// bit-exactly to the measured latency — which the determinism tests and
// the bench report both assert on.
//
// Serialization lives here (not in bench_common) so tests can link
// teamnet_load and byte-compare the JSON without pulling in the bench
// driver. Doubles are %.17g (obs/json.hpp), so a deterministic run emits
// a byte-stable document.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "load/histogram.hpp"
#include "obs/critpath.hpp"

namespace teamnet::load {

/// Aggregate contribution of one AttrPhase across a run.
struct PhaseBreakdown {
  std::int64_t e2e_sum_ns = 0;   ///< total across the end-to-end partition
  std::int64_t crit_sum_ns = 0;  ///< total across the critical partition
  std::int64_t dominant_queries = 0;  ///< queries whose top slice is this
  /// Per-query critical-path contribution, ms (zero-ns slices skipped so
  /// the histogram describes the phase when it actually appears).
  LatencyHistogram crit_ms;
};

/// Latency split for one net::DegradationLevel (full / quorum /
/// local_only).
struct LevelBreakdown {
  std::int64_t queries = 0;
  LatencyHistogram latency_ms;
};

struct BreakdownSummary {
  std::int64_t queries = 0;
  /// Queries where BOTH partitions summed bit-exactly to total_ns.
  std::int64_t reconciled = 0;
  /// Largest |partition sum - total_ns| seen — 0 under discrete_event.
  std::int64_t max_residual_ns = 0;
  std::array<PhaseBreakdown, obs::kNumAttrPhases> phases{};
  /// Queries whose dominant critical slice falls in each CritKind.
  std::array<std::int64_t, obs::kNumCritKinds> dominant_kind_queries{};
  LatencyHistogram latency_ms;          ///< arrival -> completion
  LatencyHistogram straggler_slack_ms;  ///< per non-critical worker reply
  std::array<LevelBreakdown, 3> levels{};
  /// Phase with the largest aggregate crit_sum_ns (ties: lowest value).
  obs::AttrPhase dominant_phase = obs::AttrPhase::unattributed;

  /// Fraction of total critical-path nanoseconds spent in `phase` (0 when
  /// the run recorded nothing).
  double crit_share(obs::AttrPhase phase) const;
  /// Fraction of total critical-path nanoseconds spent in phases of
  /// `kind`.
  double kind_share(obs::CritKind kind) const;
  /// Fraction of queries whose dominant critical slice is of `kind`.
  double dominant_kind_fraction(obs::CritKind kind) const;
  std::int64_t crit_total_ns() const;
};

/// Folds `attrs[skip_warmup..]` into a summary. `histogram` configures
/// every LatencyHistogram in the result (one layout, so summaries merge).
BreakdownSummary summarize_attributions(
    const std::vector<obs::QueryAttribution>& attrs, std::size_t skip_warmup,
    const LatencyHistogram::Config& histogram);

/// Appends `summary` as a JSON object onto `out`. `indent` prefixes every
/// line (the opening '{' is NOT prefixed — it continues the current line,
/// so callers embed the object after a key). Byte-stable for
/// deterministic runs.
void append_breakdown_json(std::string& out, const BreakdownSummary& summary,
                           const std::string& indent);

}  // namespace teamnet::load
