// Load-generation driver (DESIGN.md §14): feeds the real serving protocols
// (TeamNet CollaborativeMaster, SG-MoE MoeMaster) with queries timed by a
// seeded ArrivalProcess, entirely on the simulator's virtual clock.
//
// The driver is the missing piece between the paper-scenario runners (one
// query at a time, latency = mean service time) and a perf baseline: it
// measures latency from ARRIVAL to completion, so queueing delay under an
// open-loop overload shows up in the tail exactly as it would on a real
// edge deployment. Under the discrete_event scheduler the whole run —
// arrival instants, per-query latencies, the JSON a bench emits — is
// byte-identical for a seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "load/arrival.hpp"
#include "load/stats.hpp"
#include "moe/sg_moe.hpp"
#include "nn/module.hpp"
#include "obs/critpath.hpp"
#include "sim/scenario.hpp"

namespace teamnet::load {

struct LoadConfig {
  ArrivalConfig arrival;
  int num_queries = 200;
  /// First `warmup_queries` (arrival order) are excluded from steady-state
  /// statistics; must be < num_queries.
  int warmup_queries = 20;
  /// Hot-key class skew: > 0 draws query rows Zipf(s)-skewed over a seeded
  /// class permutation (see ZipfClassSampler); 0 keeps the uniform row
  /// sampling the paper-scenario drivers use.
  double zipf_exponent = 0.0;
  /// Seed for query-row sampling (the arrival process seeds separately via
  /// arrival.seed, so traffic shape and traffic content vary independently).
  std::uint64_t query_seed = 7;
  LatencyHistogram::Config histogram;
  /// > 0 bounds each gather with one shared deadline (master
  /// set_worker_timeout); 0 keeps the block-forever default.
  double worker_timeout_s = 0.0;
  /// > 0 lets the TeamNet gather complete at a quorum of worker answers
  /// (set_gather_quorum; requires worker_timeout_s > 0 to ever degrade).
  /// Ignored by the SG-MoE path, which has no quorum concept.
  int gather_quorum = 0;
};

struct LoadResult {
  std::string approach;
  int num_nodes = 0;
  std::string arrival;  ///< arrival-process name ("open_poisson", ...)
  int num_queries = 0;
  int warmup_queries = 0;

  // Steady-state headline numbers (warmup excluded). Percentiles come from
  // the log-bucketed histogram — nearest-rank bucket upper edges.
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  double mean_inflight = 0.0;

  double accuracy_pct = 0.0;  ///< over every issued query (warmup included)
  double bytes_per_query = 0.0;
  double messages_per_query = 0.0;

  PhaseStats warmup;
  PhaseStats steady;
  /// Per-query arrival/completion/row/correct in arrival order — the raw
  /// material for determinism tests and offline analysis.
  std::vector<QueryRecord> records;
  /// Exact latency attribution per query (same order as `records`;
  /// records[i] is query id i+1). Under discrete_event both partitions of
  /// every entry telescope bit-exactly to the record's latency.
  std::vector<obs::QueryAttribution> attributions;
  std::uint64_t schedule_digest = 0;  ///< discrete_event only, 0 otherwise
};

/// Query rows for a load run: uniform when zipf_exponent <= 0 (identical to
/// the paper-scenario sampling for the same seed), Zipf class-skewed
/// otherwise.
std::vector<int> sample_load_rows(const data::Dataset& test, int n,
                                  std::uint64_t seed, double zipf_exponent);

/// Runs the TeamNet serving path (master = experts[0], workers serve the
/// rest over the simulated mesh) under `load`. experts.size() >= 2.
LoadResult run_teamnet_load(const std::vector<nn::Module*>& experts,
                            const data::Dataset& test,
                            const sim::ScenarioConfig& config,
                            const LoadConfig& load);

/// Same driver over the SG-MoE serving path (gate on the master, experts
/// sharded across workers).
LoadResult run_sg_moe_load(moe::SgMoe& model, const data::Dataset& test,
                           const sim::ScenarioConfig& config,
                           const LoadConfig& load);

}  // namespace teamnet::load
