// Seeded, deterministic arrival processes for the load-generation plane
// (DESIGN.md §14).
//
// An ArrivalProcess turns a seed into the virtual-time instants at which
// queries enter the system. Three shapes cover the serving literature's
// standard workloads:
//
//   open_poisson  open-loop: exponential inter-arrival gaps at a fixed
//                 rate. Arrivals do NOT wait for service — under overload
//                 the queue (and the tail) grows, which is exactly what an
//                 open-loop benchmark is for.
//   closed_loop   a fixed population of clients, each submitting, waiting
//                 for its completion, thinking (exponential think time),
//                 then submitting again. In-flight depth is bounded by the
//                 population; throughput self-limits instead of queueing.
//   bursty        nonhomogeneous Poisson via Lewis thinning: the rate is a
//                 diurnal-style sinusoid rate*(1 + A*sin(2πt/period)), so
//                 the generator sweeps through under- and over-load within
//                 one run.
//
// Every random draw comes from a hand-rolled uniform over the process's
// own mt19937_64 stream (no std::*_distribution — their value sequences
// are implementation-defined, and the arrival sequence must be
// byte-identical for a seed across standard libraries). Wall-clock never
// appears: `now` is virtual time supplied by the caller, so the whole
// plane runs on the DES clock and full runs stay bit-identical per seed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace teamnet::load {

enum class ArrivalKind { open_poisson, closed_loop, bursty };

const char* to_string(ArrivalKind kind);
std::optional<ArrivalKind> parse_arrival_kind(const std::string& name);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::open_poisson;
  /// Mean arrival rate in queries per virtual second (open_poisson and
  /// bursty; the bursty wave oscillates around it).
  double rate_qps = 100.0;
  /// Closed-loop population size.
  int clients = 4;
  /// Closed-loop mean think time (virtual seconds, exponential).
  double think_mean_s = 0.01;
  /// Bursty wave: rate(t) = rate_qps * (1 + amplitude * sin(2πt/period)).
  /// Amplitude must stay in [0, 1] so the rate is never negative.
  double burst_amplitude = 0.8;
  double burst_period_s = 1.0;
  std::uint64_t seed = 1;
};

/// A deterministic stream of arrival instants on the caller's (virtual)
/// clock. Not thread-safe: one driver loop owns one process.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Virtual time of the next arrival (seconds). Open-loop processes
  /// pre-schedule and ignore `now`; the returned instants are
  /// nondecreasing across calls. A closed-loop process pops its earliest
  /// ready client and throws InvariantError if every client is still
  /// awaiting a completion (the caller must feed on_complete between
  /// draws once the population is exhausted).
  virtual double next_arrival(double now) = 0;

  /// Completion feedback at virtual time `completion_s`. Only the closed
  /// loop reacts (the finishing client starts thinking); open-loop shapes
  /// ignore it.
  virtual void on_complete(double completion_s) { (void)completion_s; }

  virtual const char* name() const = 0;
};

std::unique_ptr<ArrivalProcess> make_arrival_process(
    const ArrivalConfig& config);

/// Hot-key class skew: Zipf(s) over a seeded permutation of the class ids,
/// so query traffic concentrates on a few "hot" classes (which classes are
/// hot depends on the seed, not on label order). s = 0 degenerates to the
/// uniform mix.
class ZipfClassSampler {
 public:
  /// `num_classes` >= 1; `exponent` >= 0.
  ZipfClassSampler(int num_classes, double exponent, std::uint64_t seed);

  /// Draws a class id in [0, num_classes).
  int sample();

  /// Rank order: hot_classes()[0] is the most-probable class.
  const std::vector<int>& hot_classes() const { return classes_; }

 private:
  std::vector<int> classes_;  ///< permuted ids, hottest first
  std::vector<double> cdf_;   ///< cumulative probability per rank
  Rng rng_;
};

}  // namespace teamnet::load
