#include "load/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/percentile.hpp"

namespace teamnet::load {

LatencyHistogram::LatencyHistogram() : LatencyHistogram(Config{}) {}

LatencyHistogram::LatencyHistogram(const Config& config) : config_(config) {
  TEAMNET_CHECK_MSG(config.min_value > 0.0, "min_value must be > 0");
  TEAMNET_CHECK_MSG(config.buckets_per_decade >= 1,
                    "buckets_per_decade must be >= 1");
  TEAMNET_CHECK_MSG(config.num_decades >= 1, "num_decades must be >= 1");
  const int n = config.buckets_per_decade * config.num_decades;
  const double growth =
      std::pow(10.0, 1.0 / static_cast<double>(config.buckets_per_decade));
  edges_.reserve(static_cast<std::size_t>(n) + 1);
  double edge = config.min_value;
  edges_.push_back(edge);
  // Repeated multiplication, not pow-per-edge: the edge sequence is then a
  // pure function of (min_value, growth) with one rounding per step, the
  // same on every libm.
  for (int i = 0; i < n; ++i) {
    edge *= growth;
    edges_.push_back(edge);
  }
  counts_.assign(edges_.size() + 1, 0);
}

void LatencyHistogram::record(double value) {
  // First edge at or above the value; past-the-end = overflow bucket.
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), value);
  counts_[static_cast<std::size_t>(it - edges_.begin())] += 1;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  TEAMNET_CHECK_MSG(config_ == other.config_,
                    "LatencyHistogram::merge requires identical layouts");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.count_ > 0) {
    min_ = count_ > 0 ? std::min(min_, other.min_) : other.min_;
    max_ = count_ > 0 ? std::max(max_, other.max_) : other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyHistogram::percentile(double pct) const {
  if (count_ == 0) return 0.0;
  const std::int64_t rank = static_cast<std::int64_t>(
      obs::nearest_rank(static_cast<std::size_t>(count_), pct));
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      // Overflow bucket has no finite edge; the max observed value is the
      // tightest deterministic bound we can report.
      const double edge =
          i < edges_.size() ? edges_[i] : max_;
      return std::clamp(edge, min_, max_);
    }
  }
  return max_;  // unreachable: cumulative counts sum to count_
}

}  // namespace teamnet::load
