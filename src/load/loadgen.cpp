#include "load/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "moe/moe_serving.hpp"
#include "net/collab.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "sim/driver_util.hpp"

namespace teamnet::load {

namespace {

/// Coarse decade edges (ms) for the always-on metrics-registry histogram.
/// Fixed independently of LoadConfig::histogram so repeated runs in one
/// process (different layouts) never trip the registry's same-name /
/// same-edges invariant; the fine-grained percentiles come from the
/// per-run LatencyHistogram instead.
const std::vector<double>& metrics_latency_edges() {
  static const std::vector<double> edges{0.1, 1.0, 10.0, 100.0, 1e3, 1e4};
  return edges;
}

/// Degradation level for a record, normalized across result types.
int result_degradation(const net::CollaborativeMaster::Result& r) {
  return static_cast<int>(r.degradation);
}
int result_degradation(const moe::MoeMaster::Result& r) {
  // SG-MoE has no quorum; local fallback is its (only) degraded mode.
  return r.fallback_rows > 0 ? 1 : 0;
}

/// The protocol plumbing is identical for both serving paths — only master
/// construction and the expert each worker serves differ, so both arrive
/// as callables. `make_master(channels)` returns a unique_ptr to a master
/// with infer/shutdown/set_compute_hook (CollaborativeMaster and MoeMaster
/// share that surface by convention, not by base class).
template <typename GetExpert, typename MakeMaster>
LoadResult run_load_generic(const std::string& approach, int k,
                            GetExpert get_expert, const data::Dataset& test,
                            const sim::ScenarioConfig& config,
                            const LoadConfig& load, MakeMaster make_master) {
  TEAMNET_CHECK(k >= 2);
  TEAMNET_CHECK_MSG(load.num_queries >= 1, "load.num_queries must be >= 1");
  TEAMNET_CHECK_MSG(
      load.warmup_queries >= 0 && load.warmup_queries < load.num_queries,
      "warmup_queries must be in [0, num_queries)");

  obs::Tracer::instance().begin_epoch(approach + "-load");
  sim::SimNetOptions opts;
  opts.grant_policy = config.grant_policy;
  opts.schedule_seed = config.schedule_seed;
  opts.schedule_slack_s = config.schedule_slack_s;
  auto net = sim::make_sim_net(config.scheduler, k, config.link, opts);
  sim::SimNet* netp = net.get();

  std::atomic<double> master_compute{0.0};
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<net::CollaborativeWorker>> workers;
  for (int i = 1; i < k; ++i) {
    workers.push_back(std::make_unique<net::CollaborativeWorker>(
        get_expert(i), net->channel(i, 0)));
    workers.back()->set_compute_hook(
        sim::make_compute_hook(*net, i, config.device, nullptr));
    workers.back()->set_time_source([netp, i] { return netp->node_time(i); });
    workers.back()->set_trace_node(i);
    threads.push_back(sim::spawn_sim_worker(
        *net, i, [w = workers.back().get()] { w->serve(); }));
  }

  std::vector<net::Channel*> worker_channels;
  for (int i = 1; i < k; ++i) {
    worker_channels.push_back(&net->channel(0, i));
  }
  auto master = make_master(worker_channels);
  master->set_compute_hook(
      sim::make_compute_hook(*net, 0, config.device, &master_compute));
  // The master publishes timeline marks through its time source; the
  // steady-clock default would stamp wall time into a virtual-clock run.
  // Behavior-neutral otherwise: with timeout 0 no deadline ever reads it.
  master->set_time_source([netp] { return netp->node_time(0); });
  master->set_flow_trace(true);
  if (load.worker_timeout_s > 0.0) {
    master->set_worker_timeout(load.worker_timeout_s);
  }

  obs::TraceTrack track(0, [netp] { return netp->node_time(0); }, "master");
  const auto rows =
      sample_load_rows(test, load.num_queries, load.query_seed,
                       load.zipf_exponent);
  auto process = make_arrival_process(load.arrival);

  auto& registry = obs::MetricsRegistry::instance();
  auto& arrivals_counter = registry.counter("load.arrivals");
  auto& completions_counter = registry.counter("load.completions");
  auto& latency_histogram =
      registry.histogram("load.latency_ms", metrics_latency_edges());

  std::vector<QueryRecord> records;
  records.reserve(rows.size());
  int correct = 0;
  const std::int64_t bytes_before = net->bytes_delivered();
  const std::int64_t msgs_before = net->messages_delivered();
  auto& recorder = obs::TimelineRecorder::instance();
  recorder.start();
  try {
    for (std::size_t q = 0; q < rows.size(); ++q) {
      const double now = net->node_time(0);
      const double t_arrival = process->next_arrival(now);
      // Open-loop: an arrival in the past means the query queued while the
      // master was busy — serve immediately, latency absorbs the wait. An
      // arrival in the future means the master idles until it.
      if (t_arrival > now) net->advance(0, t_arrival - now);
      arrivals_counter.increment();
      obs::trace_instant("load.arrival");
      recorder.note_arrival(t_arrival);
      auto res = master->infer(sim::query_row_tensor(test, rows[q]));
      const double t_completion = net->node_time(0);
      process->on_complete(t_completion);
      completions_counter.increment();
      latency_histogram.observe(1e3 * (t_completion - t_arrival));

      QueryRecord record;
      record.arrival_s = t_arrival;
      record.completion_s = t_completion;
      record.row = rows[q];
      record.correct =
          res.predictions[0] ==
          test.labels[static_cast<std::size_t>(rows[q])];
      record.degradation = result_degradation(res);
      if (record.correct) ++correct;
      records.push_back(record);
    }
  } catch (...) {
    recorder.stop();
    recorder.take();
    net->close_all();
    net->retire(0);
    for (auto& t : threads) t.join();
    throw;
  }
  const std::int64_t bytes_used = net->bytes_delivered() - bytes_before;
  const std::int64_t msgs_used = net->messages_delivered() - msgs_before;
  master->shutdown();
  net->retire(0);
  for (auto& t : threads) t.join();
  recorder.stop();
  const std::vector<obs::QueryTimeline> timelines = recorder.take();

  LoadResult result;
  result.schedule_digest = net->finish();
  result.approach = approach;
  result.num_nodes = k;
  result.arrival = process->name();
  result.num_queries = load.num_queries;
  result.warmup_queries = load.warmup_queries;
  result.records = std::move(records);

  // Attribute every query's latency. Query ids are the master's monotone
  // sequence starting at 1, so records[q] is qid q+1; a qid the recorder
  // never saw (cannot happen on the in-process paths) degrades to an
  // all-zero attribution rather than misaligning the join.
  result.attributions.reserve(result.records.size());
  std::size_t ti = 0;
  for (std::size_t q = 0; q < result.records.size(); ++q) {
    const auto qid = static_cast<std::int64_t>(q) + 1;
    while (ti < timelines.size() && timelines[ti].qid < qid) ++ti;
    if (ti < timelines.size() && timelines[ti].qid == qid) {
      result.attributions.push_back(obs::attribute(timelines[ti]));
    } else {
      obs::QueryAttribution missing;
      missing.qid = qid;
      result.attributions.push_back(missing);
    }
  }

  const std::size_t warmup = static_cast<std::size_t>(load.warmup_queries);
  result.warmup = make_phase_stats(result.records, 0, warmup, load.histogram);
  result.steady = make_phase_stats(result.records, warmup,
                                   result.records.size(), load.histogram);
  result.offered_qps = result.steady.offered_qps();
  result.achieved_qps = result.steady.achieved_qps();
  result.p50_ms = result.steady.latency.percentile(50.0);
  result.p90_ms = result.steady.latency.percentile(90.0);
  result.p99_ms = result.steady.latency.percentile(99.0);
  result.p999_ms = result.steady.latency.percentile(99.9);
  result.mean_ms = result.steady.latency.mean();
  result.max_ms = result.steady.latency.max();
  result.mean_inflight = result.steady.mean_inflight();
  result.accuracy_pct = 100.0 * static_cast<double>(correct) /
                        static_cast<double>(load.num_queries);
  result.bytes_per_query =
      static_cast<double>(bytes_used) / load.num_queries;
  result.messages_per_query =
      static_cast<double>(msgs_used) / load.num_queries;
  registry.gauge("load.achieved_qps").set(result.achieved_qps);
  registry.gauge("load.offered_qps").set(result.offered_qps);
  registry.gauge("load.mean_inflight").set(result.mean_inflight);
  registry.gauge("load.steady_window_s").set(result.steady.duration_s());
  registry.gauge("load.steady_queries")
      .set(static_cast<double>(result.steady.queries));
  // Export the steady-phase distribution at full resolution (the always-on
  // "load.latency_ms" above keeps coarse decade edges). Guarded on the
  // default layout: a same-process run with a custom layout would otherwise
  // trip the registry's same-name/same-edges invariant.
  if (load.histogram == LatencyHistogram::Config{}) {
    auto& steady_histogram = registry.histogram(
        "load.steady_latency_ms", result.steady.latency.upper_edges());
    const auto& edges = result.steady.latency.upper_edges();
    const auto counts = result.steady.latency.bucket_counts();
    for (std::size_t b = 0; b < counts.size(); ++b) {
      // Placing each bucket at its inclusive upper edge reproduces the
      // counts exactly (both histograms bucket by lower_bound); overflow
      // goes past the last edge.
      const double at = b < edges.size() ? edges[b] : edges.back() * 2.0;
      steady_histogram.observe_n(at, counts[b]);
    }
  }
  return result;
}

}  // namespace

std::vector<int> sample_load_rows(const data::Dataset& test, int n,
                                  std::uint64_t seed, double zipf_exponent) {
  if (zipf_exponent <= 0.0) return sim::sample_query_rows(test, n, seed);
  int num_classes = 0;
  for (int label : test.labels) num_classes = std::max(num_classes, label + 1);
  TEAMNET_CHECK_MSG(num_classes >= 1, "dataset has no labels");
  std::vector<std::vector<int>> by_class(
      static_cast<std::size_t>(num_classes));
  for (std::size_t r = 0; r < test.labels.size(); ++r) {
    by_class[static_cast<std::size_t>(test.labels[r])].push_back(
        static_cast<int>(r));
  }
  // Fork the seed so class choice and row-within-class choice come from
  // independent streams (the same class sequence replays under a different
  // row pick and vice versa).
  Rng base(seed);
  ZipfClassSampler zipf(num_classes, zipf_exponent, base.fork(1).engine()());
  Rng row_rng = base.fork(2);
  std::vector<int> rows;
  rows.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& bucket = by_class[static_cast<std::size_t>(zipf.sample())];
    if (bucket.empty()) {
      // A class with no test rows: fall back to a uniform row so skew
      // toward an unrepresented class cannot stall the generator.
      rows.push_back(
          row_rng.randint(0, static_cast<int>(test.size()) - 1));
      continue;
    }
    rows.push_back(bucket[static_cast<std::size_t>(
        row_rng.randint(0, static_cast<int>(bucket.size()) - 1))]);
  }
  return rows;
}

LoadResult run_teamnet_load(const std::vector<nn::Module*>& experts,
                            const data::Dataset& test,
                            const sim::ScenarioConfig& config,
                            const LoadConfig& load) {
  TEAMNET_CHECK(experts.size() >= 2);
  return run_load_generic(
      "TeamNet", static_cast<int>(experts.size()),
      [&experts](int i) -> nn::Module& {
        return *experts[static_cast<std::size_t>(i)];
      },
      test, config, load,
      [&experts, &load](const std::vector<net::Channel*>& channels) {
        auto master = std::make_unique<net::CollaborativeMaster>(*experts[0],
                                                                 channels);
        if (load.gather_quorum > 0) {
          master->set_gather_quorum(load.gather_quorum);
        }
        return master;
      });
}

LoadResult run_sg_moe_load(moe::SgMoe& model, const data::Dataset& test,
                           const sim::ScenarioConfig& config,
                           const LoadConfig& load) {
  return run_load_generic(
      "SG-MoE", model.num_experts(),
      [&model](int i) -> nn::Module& { return model.expert(i); },
      test, config, load,
      [&model](const std::vector<net::Channel*>& channels) {
        return std::make_unique<moe::MoeMaster>(model, channels);
      });
}

}  // namespace teamnet::load
