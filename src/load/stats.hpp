// Phase-split run statistics for the load-generation plane (DESIGN.md §14).
//
// A load run yields one QueryRecord per query: when it arrived (per the
// arrival process, on the virtual clock) and when its reply came back.
// Derived statistics are split into phases — warmup vs steady state — so
// cold-start effects (first-touch page faults in free_running, the arrival
// process ramping a closed-loop population) never pollute the numbers a
// baseline is gated on. A phase reports offered vs achieved rate and the
// time-average in-flight depth (queued + in service), computed exactly as
// the integral of interval overlap with the phase window — Little's law
// (L = λW) then holds by construction, which the unit tests exploit.
#pragma once

#include <cstdint>
#include <vector>

#include "load/histogram.hpp"

namespace teamnet::load {

/// One served query on the virtual clock. completion >= arrival always
/// (service cannot precede the arrival that triggered it).
struct QueryRecord {
  double arrival_s = 0.0;
  double completion_s = 0.0;
  int row = -1;       ///< dataset row served
  bool correct = false;
  /// net::DegradationLevel the serving path reported for this query (0 =
  /// full; SG-MoE reports 1 when local fallback recomputed any row).
  int degradation = 0;
};

struct PhaseStats {
  std::int64_t queries = 0;        ///< records in this phase
  double window_start_s = 0.0;     ///< first arrival in the phase
  double arrivals_end_s = 0.0;     ///< last arrival in the phase
  double window_end_s = 0.0;       ///< last completion in the phase
  /// Integral over the phase window of the in-flight depth — every run
  /// query (any phase) contributes its [arrival, completion] overlap.
  double inflight_integral_s = 0.0;
  LatencyHistogram latency;        ///< per-query (completion - arrival), ms

  double duration_s() const { return window_end_s - window_start_s; }
  /// Arrival rate: queries per second over the arrival span. 0 when the
  /// span is empty (fewer than two distinct arrival instants).
  double offered_qps() const;
  /// Completion rate: queries per second over the full window.
  double achieved_qps() const;
  /// Time-average number of in-flight queries over the window.
  double mean_inflight() const;
};

/// Statistics for the phase holding records [begin, end) of `records`
/// (arrival order). The in-flight integral scans ALL records, so a warmup
/// query still in service when the steady window opens is charged to both
/// phases for the time it actually overlaps each.
PhaseStats make_phase_stats(const std::vector<QueryRecord>& records,
                            std::size_t begin, std::size_t end,
                            const LatencyHistogram::Config& histogram);

}  // namespace teamnet::load
