// Virtual time for the edge-network simulation.
//
// Every simulated node owns a clock; local computation advances one node's
// clock, and message transfers impose latency + serialization delay and
// order the receiver after the sender (Lamport-style max). All bench
// latencies come from this clock — no wall-clock sleeps anywhere.
//
// Thread-safe: simulated nodes run on real threads (the same code paths as
// the real TCP deployment) and stamp their virtual send times onto
// messages.
#pragma once

#include <cstdint>
#include <vector>

#include "common/annotations.hpp"
#include "common/error.hpp"

namespace teamnet::net {

/// A point-to-point link's timing model (e.g. WiFi between edge boards).
struct LinkProfile {
  double latency_s = 0.0;        ///< fixed per-message cost (propagation + stack)
  double bandwidth_bps = 0.0;    ///< bits per second; 0 means infinite
  double per_message_overhead_s = 0.0;  ///< protocol cost (RPC marshalling etc.)

  /// Seconds to deliver `bytes` over this link.
  double transfer_time(std::int64_t bytes) const {
    TEAMNET_CHECK(bytes >= 0);
    double t = latency_s + per_message_overhead_s;
    if (bandwidth_bps > 0.0) {
      t += static_cast<double>(bytes) * 8.0 / bandwidth_bps;
    }
    return t;
  }
};

/// Canonical WiFi link between edge devices (calibrated in sim/calibration).
LinkProfile wifi_link();

// Thread-safety: one leaf `mutex_` guards every mutable field (per-node
// times, the shared-medium cursor, and the traffic counters) so a delivery
// updates all of them atomically; `num_nodes_` is immutable after
// construction and readable without the lock.
class VirtualClock {
 public:
  explicit VirtualClock(int num_nodes);

  int num_nodes() const { return num_nodes_; }

  /// Current virtual time of `node` in seconds.
  double node_time(int node) const;

  /// Advances `node` by `seconds` of local work; returns the new time.
  double advance(int node, double seconds);

  /// Records a message delivery over the shared wireless medium. WiFi on a
  /// single AP is half-duplex: concurrent transmissions contend and
  /// serialize, so the transmission starts at max(send_time, medium_free)
  /// and occupies the medium for its overhead + serialization time. The
  /// receiver's clock becomes max(receiver_now, start + duration + latency).
  /// Returns the arrival time.
  double deliver(int to, double send_time, std::int64_t bytes,
                 const LinkProfile& link);

  /// Largest node clock — the makespan of the simulated run.
  double max_time() const;

  /// Resets all clocks to zero.
  void reset();

  /// Total bytes delivered so far (telemetry).
  std::int64_t bytes_delivered() const;
  /// Total messages delivered so far (telemetry).
  std::int64_t messages_delivered() const;

 private:
  const int num_nodes_;
  mutable Mutex mutex_;
  std::vector<double> times_ TN_GUARDED_BY(mutex_);
  ///< when the shared wireless medium frees up
  double medium_free_ TN_GUARDED_BY(mutex_) = 0.0;
  std::int64_t bytes_ TN_GUARDED_BY(mutex_) = 0;
  std::int64_t messages_ TN_GUARDED_BY(mutex_) = 0;
};

}  // namespace teamnet::net
