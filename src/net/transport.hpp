// Channel abstraction: blocking, bidirectional, message-oriented byte pipes.
//
// Three implementations share one interface so the collaborative protocol
// and the MPI-style runtime run unchanged over:
//   * InProc      — lock-free-enough in-process queues (tests, examples)
//   * TCP         — real sockets (examples; see tcp.hpp)
//   * Sim         — an InProc pair wrapped with virtual-clock accounting:
//                   every send stamps the sender's virtual time, every recv
//                   charges link latency + serialization delay (benches)
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "net/virtual_clock.hpp"

namespace teamnet::net {

class Channel {
 public:
  virtual ~Channel() = default;
  /// Enqueues one message (blocking implementations may block on flow
  /// control; in-proc never blocks).
  virtual void send(std::string bytes) = 0;
  /// Blocks until a message is available and returns it.
  virtual std::string recv() = 0;
  /// Like recv but gives up after `seconds` of REAL time, returning
  /// nullopt; `seconds <= 0` is a non-blocking poll. The fault-tolerant
  /// master uses this to survive dead or wedged workers. The base default
  /// has no timeout support: it falls back to plain blocking recv and
  /// warns (once per process) when called with a positive timeout, because
  /// a blocking fallback silently voids the caller's deadline.
  virtual std::optional<std::string> recv_timeout(double seconds);
  /// Shuts the channel down: subsequent (and currently blocked) recv calls
  /// fail with NetworkError once drained. Error-recovery paths use this to
  /// unblock peer threads instead of leaking them. Default: no-op.
  virtual void close() {}
};

using ChannelPtr = std::unique_ptr<Channel>;

/// Creates a connected in-process channel pair: bytes sent on `first` are
/// received on `second` and vice versa.
std::pair<ChannelPtr, ChannelPtr> make_inproc_pair();

/// Wraps `inner` with virtual-time accounting for one direction-pair:
/// this endpoint is simulated node `self`, the peer is node `peer`.
/// Each sent message is prefixed with the sender's virtual timestamp; each
/// received message advances the receiver's clock by the link model.
ChannelPtr make_sim_channel(ChannelPtr inner, VirtualClock& clock, int self,
                            int peer, LinkProfile link);

/// Creates a fully connected simulated mesh of `n` nodes over in-process
/// pairs. mesh[i][j] is node i's channel to node j (nullptr for i == j).
std::vector<std::vector<ChannelPtr>> make_sim_mesh(int n, VirtualClock& clock,
                                                   const LinkProfile& link);

}  // namespace teamnet::net
