#include "net/message.hpp"

#include <cstring>
#include <sstream>

#include "common/error.hpp"
#include "nn/serialize.hpp"

namespace teamnet::net {

namespace {

template <typename T>
void write_pod(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(const std::string& in, std::size_t& offset) {
  if (offset + sizeof(T) > in.size()) {
    throw SerializationError("truncated message");
  }
  T value{};
  std::memcpy(&value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

std::string Message::encode() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(encoded_size()));
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(type));
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(ints.size()));
  for (std::int64_t v : ints) write_pod<std::int64_t>(out, v);
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(tensors.size()));
  for (const Tensor& t : tensors) {
    std::ostringstream os(std::ios::binary);
    nn::write_tensor(os, t);
    out += os.str();
  }
  return out;
}

Message Message::decode(const std::string& bytes) {
  Message msg;
  std::size_t offset = 0;
  msg.type = static_cast<MsgType>(read_pod<std::uint32_t>(bytes, offset));
  const auto n_ints = read_pod<std::uint32_t>(bytes, offset);
  if (n_ints > (1u << 20)) throw SerializationError("implausible int count");
  msg.ints.reserve(n_ints);
  for (std::uint32_t i = 0; i < n_ints; ++i) {
    msg.ints.push_back(read_pod<std::int64_t>(bytes, offset));
  }
  const auto n_tensors = read_pod<std::uint32_t>(bytes, offset);
  if (n_tensors > (1u << 16)) throw SerializationError("implausible tensor count");
  std::istringstream is(bytes.substr(offset), std::ios::binary);
  for (std::uint32_t i = 0; i < n_tensors; ++i) {
    msg.tensors.push_back(nn::read_tensor(is));
  }
  return msg;
}

std::int64_t Message::encoded_size() const {
  std::int64_t size = 4 + 4 + 4;  // type + two counts
  size += static_cast<std::int64_t>(ints.size()) * 8;
  for (const Tensor& t : tensors) {
    size += 4 + t.rank() * 8 + t.numel() * static_cast<std::int64_t>(sizeof(float));
  }
  return size;
}

}  // namespace teamnet::net
