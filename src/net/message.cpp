#include "net/message.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/raw_bytes.hpp"
#include "nn/serialize.hpp"

namespace teamnet::net {

// analyze:hot  (per-query path: hot-path allocation audit root)
std::string Message::encode() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(encoded_size()));
  write_raw(out, static_cast<std::uint32_t>(type));
  write_raw(out, checked_narrow<std::uint32_t>(ints.size()));
  for (std::int64_t v : ints) write_raw(out, v);
  write_raw(out, checked_narrow<std::uint32_t>(tensors.size()));
  for (const Tensor& t : tensors) {
    std::ostringstream os(std::ios::binary);
    nn::write_tensor(os, t);
    out += os.str();
  }
  return out;
}

// analyze:hot  (per-query path: hot-path allocation audit root)
Message Message::decode(const std::string& bytes) {
  Message msg;
  std::size_t offset = 0;
  msg.type = static_cast<MsgType>(read_raw<std::uint32_t>(bytes, offset));
  const auto n_ints = read_raw<std::uint32_t>(bytes, offset);
  if (n_ints > (1u << 20)) throw SerializationError("implausible int count");
  msg.ints.reserve(n_ints);
  for (std::uint32_t i = 0; i < n_ints; ++i) {
    msg.ints.push_back(read_raw<std::int64_t>(bytes, offset));
  }
  const auto n_tensors = read_raw<std::uint32_t>(bytes, offset);
  if (n_tensors > (1u << 16)) throw SerializationError("implausible tensor count");
  std::istringstream is(bytes.substr(offset), std::ios::binary);
  for (std::uint32_t i = 0; i < n_tensors; ++i) {
    msg.tensors.push_back(nn::read_tensor(is));
  }
  return msg;
}

InferInfo infer_info(const Message& msg) {
  InferInfo info;
  if (!msg.ints.empty()) info.qid = msg.ints[0];
  if (msg.ints.size() > 1 && msg.ints[1] >= 0) info.deadline_us = msg.ints[1];
  if (msg.ints.size() > 2) info.hedged = (msg.ints[2] & kHedgedFlag) != 0;
  return info;
}

void set_infer_info(Message& msg, const InferInfo& info) {
  msg.ints = {info.qid, info.deadline_us,
              info.hedged ? kHedgedFlag : std::int64_t{0}};
}

std::int64_t Message::encoded_size() const {
  std::int64_t size = 4 + 4 + 4;  // type + two counts
  size += static_cast<std::int64_t>(ints.size()) * 8;
  for (const Tensor& t : tensors) {
    size += 4 + t.rank() * 8 + t.numel() * static_cast<std::int64_t>(sizeof(float));
  }
  return size;
}

}  // namespace teamnet::net
