#include "net/collab.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/logging.hpp"
#include "core/entropy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace teamnet::net {

namespace {

/// Registry bump for rare protocol events (failures, rejoins, stales) —
/// these are off the per-sample hot path, so the name lookup is fine.
void bump(const char* name) {
  obs::MetricsRegistry::instance().counter(name).increment();
}

std::int64_t batch_flops(nn::Module& model, const Tensor& x) {
  Shape sample_shape(x.shape().begin() + 1, x.shape().end());
  return model.analyze(sample_shape).flops * x.dim(0);
}

/// Local expert evaluation: probabilities + per-sample entropy.
std::pair<Tensor, Tensor> evaluate(nn::Module& expert, const Tensor& x) {
  Tensor probs = ops::softmax_rows(expert.predict(x));
  Tensor entropy = core::predictive_entropy(probs);
  return {std::move(probs), std::move(entropy)};
}

}  // namespace

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

GatherDeadline::GatherDeadline(double budget_s, const TimeSource& now)
    : now_(now), unbounded_(budget_s <= 0.0) {
  if (!unbounded_) deadline_ = now_() + budget_s;
}

double GatherDeadline::remaining() const {
  if (unbounded_) return std::numeric_limits<double>::infinity();
  const double left = deadline_ - now_();
  return left > 0.0 ? left : 0.0;
}

std::optional<std::string> GatherDeadline::recv_from(Channel& channel) const {
  if (unbounded_) {
    // The deliberate blocking fallback: no budget was configured, so the
    // gather keeps the original block-forever semantics.
    return channel.recv();
  }
  return channel.recv_timeout(remaining());
}

CollaborativeWorker::CollaborativeWorker(nn::Module& expert, Channel& channel)
    : expert_(expert), channel_(channel) {
  expert_.set_training(false);
}

// analyze:hot  (per-query path: hot-path allocation audit root)
void CollaborativeWorker::serve() {
  for (;;) {
    // Worker side: blocking on the master is the serving contract; the
    // deadline discipline (lint rule naked-recv) exists for master-side
    // gathers, where one slow peer must not starve the rest.
    std::string raw = channel_.recv();
    Message request;
    try {
      request = Message::decode(raw);
    } catch (const SerializationError& e) {
      LOG_WARN("worker: dropping malformed frame (" << e.what() << ")");
      continue;
    }
    if (request.type == MsgType::Shutdown) return;
    if (request.type == MsgType::Ping) {
      Message pong;
      pong.type = MsgType::Pong;
      pong.ints = request.ints;  // echo the probe id
      channel_.send(pong.encode());
      ++pongs_;
      continue;
    }
    if (request.type != MsgType::Infer || request.tensors.size() != 1) {
      LOG_WARN("worker: dropping unexpected message type "
               << static_cast<int>(request.type));
      continue;
    }
    const Tensor& x = request.tensors[0];
    try {
      obs::TraceSpan span("expert_forward", [&] {
        return obs::TraceArgs().arg(
            "qid", request.ints.empty() ? std::int64_t{-1} : request.ints[0]);
      });
      if (on_compute_) on_compute_(batch_flops(expert_, x));
      auto [probs, entropy] = evaluate(expert_, x);
      Message reply;
      reply.type = MsgType::Result;
      reply.ints = request.ints;  // echo the query id
      reply.tensors = {std::move(probs), std::move(entropy)};
      channel_.send(reply.encode());
      ++served_;
    } catch (const NetworkError&) {
      throw;  // broken channel: the serving loop cannot continue
    } catch (const Error& e) {
      // A corrupted frame can decode into an Infer the expert cannot run
      // (bad shapes); skip it — the master's deadline covers the answer.
      LOG_WARN("worker: dropping Infer it cannot evaluate (" << e.what()
                                                             << ")");
    }
  }
}

CollaborativeMaster::CollaborativeMaster(nn::Module& local_expert,
                                         std::vector<Channel*> workers)
    : expert_(local_expert),
      workers_(std::move(workers)),
      slots_(workers_.size()),
      now_(&steady_seconds) {
  expert_.set_training(false);
  for (auto* w : workers_) TEAMNET_CHECK(w != nullptr);
}

int CollaborativeMaster::failed_workers() const {
  return static_cast<int>(
      std::count_if(slots_.begin(), slots_.end(),
                    [](const WorkerSlot& s) { return s.failed; }));
}

bool CollaborativeMaster::worker_alive(int worker_index) const {
  TEAMNET_CHECK_MSG(
      worker_index >= 0 &&
          worker_index < static_cast<int>(slots_.size()),
      "worker index " << worker_index << " out of range [0, " << slots_.size()
                      << ")");
  return !slots_[static_cast<std::size_t>(worker_index)].failed;
}

void CollaborativeMaster::set_probe_interval(int queries) {
  TEAMNET_CHECK_MSG(queries >= 0, "probe interval must be >= 0");
  probe_interval_ = std::min(queries, kMaxProbeInterval);
}

void CollaborativeMaster::set_time_source(TimeSource now) {
  now_ = now ? std::move(now) : TimeSource(&steady_seconds);
}

void CollaborativeMaster::mark_failed(std::size_t w) {
  WorkerSlot& slot = slots_[w];
  if (slot.failed) return;
  slot.failed = true;
  slot.probe_id = 0;
  slot.probe_interval = probe_interval_;
  slot.probe_countdown = probe_interval_;
  bump("collab.worker_failures_total");
  obs::trace_instant("worker_failed", [&] {
    return obs::TraceArgs().arg("worker", static_cast<std::int64_t>(w) + 1);
  });
}

void CollaborativeMaster::probe_failed_workers() {
  if (probe_interval_ <= 0) return;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    WorkerSlot& slot = slots_[w];
    if (!slot.failed) continue;
    try {
      // Poll for an answer to the in-flight probe. Anything else queued on
      // the channel (a late Result from before the worker failed) is stale
      // and discarded here — bounded drain, never blocking.
      for (int drained = 0; slot.probe_id != 0 && drained < 64; ++drained) {
        auto raw = workers_[w]->recv_timeout(0.0);
        if (!raw) break;
        Message msg;
        try {
          msg = Message::decode(*raw);
        } catch (const SerializationError&) {
          ++stale_discarded_;
          bump("collab.stale_replies_total");
          continue;
        }
        if (msg.type == MsgType::Pong && !msg.ints.empty() &&
            msg.ints[0] == slot.probe_id) {
          slot.failed = false;
          slot.probe_id = 0;
          ++rejoins_;
          bump("collab.rejoins_total");
          obs::trace_instant("worker_rejoin", [&] {
            return obs::TraceArgs().arg("worker",
                                        static_cast<std::int64_t>(w) + 1);
          });
          LOG_INFO("worker " << w + 1
                             << " answered probe; rejoining the live set");
          break;
        }
        ++stale_discarded_;
        bump("collab.stale_replies_total");
      }
      if (!slot.failed) continue;
      if (--slot.probe_countdown > 0) continue;
      Message ping;
      ping.type = MsgType::Ping;
      ping.ints = {++probe_seq_};
      workers_[w]->send(ping.encode());
      slot.probe_id = probe_seq_;
      obs::trace_instant("probe", [&] {
        return obs::TraceArgs()
            .arg("worker", static_cast<std::int64_t>(w) + 1)
            .arg("probe_id", probe_seq_);
      });
      // Exponential backoff on the probe cadence: each unanswered probe
      // doubles the wait before the next one, up to kMaxProbeInterval.
      slot.probe_interval =
          std::min(slot.probe_interval * 2, kMaxProbeInterval);
      slot.probe_countdown = slot.probe_interval;
    } catch (const Error& e) {
      LOG_DEBUG("worker " << w + 1 << " probe failed: " << e.what());
      // Still failed; the probe cadence continues on later queries.
    }
  }
}

// analyze:hot  (per-query path: hot-path allocation audit root)
CollaborativeMaster::Result CollaborativeMaster::infer(const Tensor& x) {
  TEAMNET_CHECK(x.rank() >= 2);
  const std::int64_t n = x.dim(0);
  const std::int64_t qid = ++query_seq_;
  bump("collab.queries_total");
  obs::TraceSpan query_span("query", [&] {
    return obs::TraceArgs().arg("qid", qid).arg("batch", n);
  });

  // Probation first, so a recovered worker rejoins in time for this query.
  probe_failed_workers();

  // Step 2: broadcast the sensor data to every live worker. Channel errors
  // mark the worker failed rather than aborting the query.
  Message request;
  request.type = MsgType::Infer;
  request.ints = {qid};
  request.tensors = {x};
  const std::string encoded = request.encode();
  std::vector<bool> asked(workers_.size(), false);
  {
    obs::TraceSpan span("broadcast", [&] {
      return obs::TraceArgs().arg("qid", qid).arg("bytes_per_worker",
                                                  encoded.size());
    });
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (slots_[w].failed) continue;
      try {
        workers_[w]->send(encoded);
        asked[w] = true;
      } catch (const Error& e) {
        LOG_WARN("worker " << w + 1 << " failed on send: " << e.what());
        mark_failed(w);
      }
    }
  }

  // Step 3 (local share): the master evaluates its own expert while the
  // workers evaluate theirs.
  std::pair<Tensor, Tensor> local;
  {
    obs::TraceSpan span("expert_forward", [&] {
      return obs::TraceArgs().arg("qid", qid);
    });
    if (on_compute_) on_compute_(batch_flops(expert_, x));
    local = evaluate(expert_, x);
  }
  Tensor local_probs = std::move(local.first);
  Tensor local_entropy = std::move(local.second);

  // Step 4: gather whatever answers arrive before ONE shared deadline;
  // slow or broken workers are marked failed and the selection proceeds
  // without them. Replies for any other query id are stale (a late answer
  // from a previously timed-out worker, or a duplicate) and are discarded
  // instead of desyncing the protocol.
  std::vector<Tensor> all_probs = {std::move(local_probs)};
  std::vector<Tensor> all_entropy = {std::move(local_entropy)};
  std::vector<int> node_of = {0};
  {
    obs::TraceSpan span("gather", [&] {
      return obs::TraceArgs().arg("qid", qid);
    });
    GatherDeadline deadline(worker_timeout_s_, now_);
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (!asked[w]) continue;
      try {
        for (;;) {
          auto raw = deadline.recv_from(*workers_[w]);
          if (!raw) {
            LOG_WARN("worker " << w + 1 << " missed the " << worker_timeout_s_
                               << "s gather deadline; marking failed");
            mark_failed(w);
            break;
          }
          Message reply = Message::decode(*raw);
          if (reply.type == MsgType::Pong) {
            ++stale_discarded_;  // duplicate probe answer; keep waiting
            bump("collab.stale_replies_total");
            obs::trace_instant("stale_reply_discarded", [&] {
              return obs::TraceArgs()
                  .arg("worker", static_cast<std::int64_t>(w) + 1)
                  .arg("kind", "duplicate_pong");
            });
            continue;
          }
          TEAMNET_CHECK_MSG(
              reply.type == MsgType::Result && reply.tensors.size() == 2,
              "worker " << w + 1 << " sent malformed reply type "
                        << static_cast<int>(reply.type));
          if (test_pre_qid_gather_) {
            // TEST-ONLY mutant (see set_test_pre_qid_gather): the pre-PR-3
            // gather had no query-id echo, so its only stale defense was
            // the deadline reading — a Result landing while the deadline
            // still reads unexpired is trusted as THIS query's answer; one
            // landing after it is treated as the miss the naive code
            // assumed. Whether a reply beats the reading depends on its
            // arrival time, i.e. on the schedule — the race the id echo
            // removed and the schedule explorer exists to catch.
            if (deadline.remaining() <= 0.0) {
              LOG_WARN("worker " << w + 1
                                 << " answered past the deadline reading; "
                                    "marking failed (pre-qid mutant)");
              mark_failed(w);
              break;
            }
          } else if (reply.ints.empty() || reply.ints[0] != qid) {
            ++stale_discarded_;
            bump("collab.stale_replies_total");
            obs::trace_instant("stale_reply_discarded", [&] {
              return obs::TraceArgs()
                  .arg("worker", static_cast<std::int64_t>(w) + 1)
                  .arg("stale_qid",
                       reply.ints.empty() ? std::int64_t{-1} : reply.ints[0])
                  .arg("qid", qid);
            });
            LOG_DEBUG("worker " << w + 1 << " sent stale reply for query "
                                << (reply.ints.empty() ? -1 : reply.ints[0])
                                << " during query " << qid << "; discarded");
            continue;
          }
          all_probs.push_back(std::move(reply.tensors[0]));
          all_entropy.push_back(std::move(reply.tensors[1]));
          node_of.push_back(static_cast<int>(w) + 1);
          break;
        }
      } catch (const Error& e) {
        LOG_WARN("worker " << w + 1 << " failed on recv: " << e.what());
        mark_failed(w);
      }
    }
  }

  // Step 5: per sample, the least-uncertain answering node wins.
  const int answered = static_cast<int>(all_probs.size());
  obs::TraceSpan argmin_span("argmin", [&] {
    return obs::TraceArgs().arg("qid", qid).arg("answered", answered);
  });
  const std::int64_t c = all_probs[0].dim(1);
  Result result;
  result.probs = Tensor({n, c});
  result.chosen.resize(static_cast<std::size_t>(n));
  for (std::int64_t r = 0; r < n; ++r) {
    int winner = 0;
    float best = all_entropy[0][r];
    for (int i = 1; i < answered; ++i) {
      if (all_entropy[static_cast<std::size_t>(i)][r] < best) {
        best = all_entropy[static_cast<std::size_t>(i)][r];
        winner = i;
      }
    }
    result.chosen[static_cast<std::size_t>(r)] =
        node_of[static_cast<std::size_t>(winner)];
    const float* src = all_probs[static_cast<std::size_t>(winner)].data() + r * c;
    std::copy(src, src + c, result.probs.data() + r * c);
  }
  result.predictions = ops::argmax_rows(result.probs);
  return result;
}

void CollaborativeMaster::shutdown() {
  Message msg;
  msg.type = MsgType::Shutdown;
  const std::string encoded = msg.encode();
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (slots_[w].failed) continue;
    try {
      workers_[w]->send(encoded);
    } catch (const Error& e) {
      LOG_WARN("worker " << w + 1 << " failed on shutdown: " << e.what());
    }
  }
  // Close every channel — failed workers included — so a thread wedged in
  // recv unblocks (NetworkError) and can be joined instead of leaking.
  // Queued messages (the Shutdown just sent) stay readable until drained.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    try {
      workers_[w]->close();
    } catch (const Error& e) {
      LOG_WARN("worker " << w + 1 << " failed on close: " << e.what());
    }
  }
}

}  // namespace teamnet::net
