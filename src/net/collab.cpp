#include "net/collab.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "core/entropy.hpp"
#include "tensor/ops.hpp"

namespace teamnet::net {

namespace {

std::int64_t batch_flops(nn::Module& model, const Tensor& x) {
  Shape sample_shape(x.shape().begin() + 1, x.shape().end());
  return model.analyze(sample_shape).flops * x.dim(0);
}

/// Local expert evaluation: probabilities + per-sample entropy.
std::pair<Tensor, Tensor> evaluate(nn::Module& expert, const Tensor& x) {
  Tensor probs = ops::softmax_rows(expert.predict(x));
  Tensor entropy = core::predictive_entropy(probs);
  return {std::move(probs), std::move(entropy)};
}

}  // namespace

CollaborativeWorker::CollaborativeWorker(nn::Module& expert, Channel& channel)
    : expert_(expert), channel_(channel) {
  expert_.set_training(false);
}

void CollaborativeWorker::serve() {
  for (;;) {
    Message request = Message::decode(channel_.recv());
    if (request.type == MsgType::Shutdown) return;
    TEAMNET_CHECK_MSG(request.type == MsgType::Infer,
                      "worker got unexpected message type "
                          << static_cast<int>(request.type));
    TEAMNET_CHECK(request.tensors.size() == 1);
    const Tensor& x = request.tensors[0];

    if (on_compute_) on_compute_(batch_flops(expert_, x));
    auto [probs, entropy] = evaluate(expert_, x);

    Message reply;
    reply.type = MsgType::Result;
    reply.tensors = {std::move(probs), std::move(entropy)};
    channel_.send(reply.encode());
    ++served_;
  }
}

CollaborativeMaster::CollaborativeMaster(nn::Module& local_expert,
                                         std::vector<Channel*> workers)
    : expert_(local_expert),
      workers_(std::move(workers)),
      failed_(workers_.size(), false) {
  expert_.set_training(false);
  for (auto* w : workers_) TEAMNET_CHECK(w != nullptr);
}

int CollaborativeMaster::failed_workers() const {
  return static_cast<int>(std::count(failed_.begin(), failed_.end(), true));
}

CollaborativeMaster::Result CollaborativeMaster::infer(const Tensor& x) {
  TEAMNET_CHECK(x.rank() >= 2);
  const std::int64_t n = x.dim(0);

  // Step 2: broadcast the sensor data to every live worker. Channel errors
  // mark the worker failed rather than aborting the query.
  Message request;
  request.type = MsgType::Infer;
  request.tensors = {x};
  const std::string encoded = request.encode();
  std::vector<bool> asked(workers_.size(), false);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (failed_[w]) continue;
    try {
      workers_[w]->send(encoded);
      asked[w] = true;
    } catch (const Error& e) {
      LOG_WARN("worker " << w + 1 << " failed on send: " << e.what());
      failed_[w] = true;
    }
  }

  // Step 3 (local share): the master evaluates its own expert while the
  // workers evaluate theirs.
  if (on_compute_) on_compute_(batch_flops(expert_, x));
  auto [local_probs, local_entropy] = evaluate(expert_, x);

  // Step 4: gather whatever answers arrive; slow or broken workers are
  // marked failed and the selection proceeds without them.
  std::vector<Tensor> all_probs = {std::move(local_probs)};
  std::vector<Tensor> all_entropy = {std::move(local_entropy)};
  std::vector<int> node_of = {0};
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!asked[w]) continue;
    try {
      std::string raw;
      if (worker_timeout_s_ > 0.0) {
        auto maybe = workers_[w]->recv_timeout(worker_timeout_s_);
        if (!maybe) {
          LOG_WARN("worker " << w + 1 << " timed out after "
                             << worker_timeout_s_ << "s; marking failed");
          failed_[w] = true;
          continue;
        }
        raw = std::move(*maybe);
      } else {
        raw = workers_[w]->recv();
      }
      Message reply = Message::decode(raw);
      TEAMNET_CHECK(reply.type == MsgType::Result && reply.tensors.size() == 2);
      all_probs.push_back(std::move(reply.tensors[0]));
      all_entropy.push_back(std::move(reply.tensors[1]));
      node_of.push_back(static_cast<int>(w) + 1);
    } catch (const Error& e) {
      LOG_WARN("worker " << w + 1 << " failed on recv: " << e.what());
      failed_[w] = true;
    }
  }

  // Step 5: per sample, the least-uncertain answering node wins.
  const int answered = static_cast<int>(all_probs.size());
  const std::int64_t c = all_probs[0].dim(1);
  Result result;
  result.probs = Tensor({n, c});
  result.chosen.resize(static_cast<std::size_t>(n));
  for (std::int64_t r = 0; r < n; ++r) {
    int winner = 0;
    float best = all_entropy[0][r];
    for (int i = 1; i < answered; ++i) {
      if (all_entropy[static_cast<std::size_t>(i)][r] < best) {
        best = all_entropy[static_cast<std::size_t>(i)][r];
        winner = i;
      }
    }
    result.chosen[static_cast<std::size_t>(r)] =
        node_of[static_cast<std::size_t>(winner)];
    const float* src = all_probs[static_cast<std::size_t>(winner)].data() + r * c;
    std::copy(src, src + c, result.probs.data() + r * c);
  }
  result.predictions = ops::argmax_rows(result.probs);
  return result;
}

void CollaborativeMaster::shutdown() {
  Message msg;
  msg.type = MsgType::Shutdown;
  const std::string encoded = msg.encode();
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (failed_[w]) continue;
    try {
      workers_[w]->send(encoded);
    } catch (const Error& e) {
      LOG_WARN("worker " << w + 1 << " failed on shutdown: " << e.what());
    }
  }
}

}  // namespace teamnet::net
