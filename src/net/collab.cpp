#include "net/collab.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"
#include "core/entropy.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace teamnet::net {

namespace {

/// Registry bump for rare protocol events (failures, rejoins, stales) —
/// these are off the per-sample hot path, so the name lookup is fine.
void bump(const char* name) {
  obs::MetricsRegistry::instance().counter(name).increment();
}

std::int64_t batch_flops(nn::Module& model, const Tensor& x) {
  Shape sample_shape(x.shape().begin() + 1, x.shape().end());
  return model.analyze(sample_shape).flops * x.dim(0);
}

/// Local expert evaluation: probabilities + per-sample entropy.
std::pair<Tensor, Tensor> evaluate(nn::Module& expert, const Tensor& x) {
  Tensor probs = ops::softmax_rows(expert.predict(x));
  Tensor entropy = core::predictive_entropy(probs);
  return {std::move(probs), std::move(entropy)};
}

}  // namespace

GatherDeadline::GatherDeadline(double budget_s, const TimeSource& now)
    : now_(now), unbounded_(budget_s <= 0.0) {
  if (!unbounded_) deadline_ = now_() + budget_s;
}

bool GatherDeadline::expired() const {
  return !unbounded_ && now_() >= deadline_;
}

double GatherDeadline::remaining() const {
  if (unbounded_) return std::numeric_limits<double>::infinity();
  const double left = deadline_ - now_();
  return left > 0.0 ? left : 0.0;
}

std::int64_t GatherDeadline::deadline_us() const {
  if (unbounded_) return kNoDeadlineUs;
  return std::llround(deadline_ * 1e6);
}

std::optional<std::string> GatherDeadline::recv_from(Channel& channel) const {
  if (unbounded_) {
    // The deliberate blocking fallback: no budget was configured, so the
    // gather keeps the original block-forever semantics.
    return channel.recv();
  }
  return channel.recv_timeout(remaining());
}

CollaborativeWorker::CollaborativeWorker(nn::Module& expert, Channel& channel)
    : expert_(expert), channel_(channel), now_(&steady_seconds) {
  expert_.set_training(false);
}

void CollaborativeWorker::set_time_source(TimeSource now) {
  now_ = now ? std::move(now) : TimeSource(&steady_seconds);
}

void CollaborativeWorker::set_trace_node(int node) {
  TEAMNET_CHECK_MSG(node >= 1, "worker trace node must be >= 1");
  trace_node_ = node;
}

// analyze:hot  (per-query path: hot-path allocation audit root)
void CollaborativeWorker::serve() {
  for (;;) {
    // Worker side: blocking on the master is the serving contract; the
    // deadline discipline (lint rule naked-recv) exists for master-side
    // gathers, where one slow peer must not starve the rest.
    std::string raw = channel_.recv();
    Message request;
    try {
      request = Message::decode(raw);
    } catch (const SerializationError& e) {
      LOG_WARN("worker: dropping malformed frame (" << e.what() << ")");
      continue;
    }
    if (request.type == MsgType::Shutdown) return;
    if (request.type == MsgType::Ping) {
      Message pong;
      pong.type = MsgType::Pong;
      pong.ints = request.ints;  // echo the probe id
      channel_.send(pong.encode());
      ++pongs_;
      continue;
    }
    if (request.type != MsgType::Infer || request.tensors.size() != 1) {
      LOG_WARN("worker: dropping unexpected message type "
               << static_cast<int>(request.type));
      continue;
    }
    const InferInfo info = infer_info(request);
    // Hedged requests answer under the primary worker's identity, so only
    // the primary replica publishes marks/flows for a query (DESIGN.md
    // §15) — a backup doing the same would double-book the lane.
    const bool marked = trace_node_ >= 1 && !info.hedged && obs::qtl_active();
    if (marked) {
      obs::trace_flow_finish("infer", obs::flow_id(info.qid, trace_node_, 0));
      obs::qtl_worker_mark(info.qid, trace_node_ - 1,
                           obs::WorkerMark::request_recv, now_());
    }
    if (drop_expired_ && info.deadline_us != kNoDeadlineUs &&
        now_() * 1e6 > static_cast<double>(info.deadline_us)) {
      // The propagated deadline already passed on this node's clock: the
      // master has stopped listening, so computing a reply could only feed
      // the stale-discard path. Drop the request instead (DESIGN.md §13).
      ++expired_dropped_;
      bump("worker.expired_dropped_total");
      obs::trace_instant("expired_request_dropped", [&] {
        return obs::TraceArgs().arg("qid", info.qid);
      });
      continue;
    }
    const Tensor& x = request.tensors[0];
    try {
      obs::TraceSpan span("expert_forward", [&] {
        return obs::TraceArgs().arg(
            "qid", request.ints.empty() ? std::int64_t{-1} : request.ints[0]);
      });
      // compute_begin BEFORE the compute hook: under simulation the hook
      // advances this node's virtual clock by the modeled compute time, so
      // the begin/end pair brackets exactly that interval.
      if (marked) {
        obs::qtl_worker_mark(info.qid, trace_node_ - 1,
                             obs::WorkerMark::compute_begin, now_());
      }
      if (on_compute_) on_compute_(batch_flops(expert_, x));
      auto [probs, entropy] = evaluate(expert_, x);
      if (marked) {
        obs::qtl_worker_mark(info.qid, trace_node_ - 1,
                             obs::WorkerMark::compute_end, now_());
      }
      Message reply;
      reply.type = MsgType::Result;
      reply.ints = request.ints;  // echo the query id
      reply.tensors = {std::move(probs), std::move(entropy)};
      channel_.send(reply.encode());
      if (marked) {
        obs::trace_flow_start("result", obs::flow_id(info.qid, trace_node_, 1));
        obs::qtl_worker_mark(info.qid, trace_node_ - 1,
                             obs::WorkerMark::reply_sent, now_());
      }
      ++served_;
    } catch (const NetworkError&) {
      throw;  // broken channel: the serving loop cannot continue
    } catch (const Error& e) {
      // A corrupted frame can decode into an Infer the expert cannot run
      // (bad shapes); skip it — the master's deadline covers the answer.
      LOG_WARN("worker: dropping Infer it cannot evaluate (" << e.what()
                                                             << ")");
    }
  }
}

const char* to_string(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::full:
      return "full";
    case DegradationLevel::quorum:
      return "quorum";
    case DegradationLevel::local_only:
      return "local_only";
  }
  return "?";
}

CollaborativeMaster::CollaborativeMaster(nn::Module& local_expert,
                                         std::vector<Channel*> workers)
    : expert_(local_expert),
      workers_(std::move(workers)),
      slots_(workers_.size()),
      now_(&steady_seconds) {
  expert_.set_training(false);
  for (auto* w : workers_) TEAMNET_CHECK(w != nullptr);
}

int CollaborativeMaster::failed_workers() const {
  return static_cast<int>(
      std::count_if(slots_.begin(), slots_.end(),
                    [](const WorkerSlot& s) { return s.failed; }));
}

bool CollaborativeMaster::worker_alive(int worker_index) const {
  TEAMNET_CHECK_MSG(
      worker_index >= 0 &&
          worker_index < static_cast<int>(slots_.size()),
      "worker index " << worker_index << " out of range [0, " << slots_.size()
                      << ")");
  return !slots_[static_cast<std::size_t>(worker_index)].failed;
}

void CollaborativeMaster::set_probe_interval(int queries) {
  TEAMNET_CHECK_MSG(queries >= 0, "probe interval must be >= 0");
  probe_interval_ = std::min(queries, kMaxProbeInterval);
}

void CollaborativeMaster::set_time_source(TimeSource now) {
  now_ = now ? std::move(now) : TimeSource(&steady_seconds);
}

void CollaborativeMaster::set_gather_quorum(int answers) {
  TEAMNET_CHECK_MSG(answers >= 0, "gather quorum must be >= 0");
  quorum_ = answers;
}

void CollaborativeMaster::enable_health(const HealthConfig& config) {
  health_ = std::make_unique<HealthTracker>(
      static_cast<int>(workers_.size()), config, now_);
}

void CollaborativeMaster::set_hedging(std::vector<Channel*> backups,
                                      double min_delay_s,
                                      double latency_factor) {
  TEAMNET_CHECK_MSG(backups.size() == workers_.size(),
                    "need one backup entry (possibly null) per worker");
  TEAMNET_CHECK_MSG(min_delay_s >= 0.0 && latency_factor >= 0.0,
                    "hedge delay parameters must be >= 0");
  backups_ = std::move(backups);
  hedge_min_delay_s_ = min_delay_s;
  hedge_factor_ = latency_factor;
}

void CollaborativeMaster::mark_failed(std::size_t w) {
  WorkerSlot& slot = slots_[w];
  if (slot.failed) return;
  if (health_) health_->record_failure(static_cast<int>(w));
  slot.failed = true;
  slot.probe_id = 0;
  slot.probe_interval = probe_interval_;
  slot.probe_countdown = probe_interval_;
  bump("collab.worker_failures_total");
  obs::trace_instant("worker_failed", [&] {
    return obs::TraceArgs().arg("worker", static_cast<std::int64_t>(w) + 1);
  });
}

void CollaborativeMaster::probe_failed_workers() {
  if (probe_interval_ <= 0) return;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    WorkerSlot& slot = slots_[w];
    if (!slot.failed) continue;
    try {
      // Poll for an answer to the in-flight probe. Anything else queued on
      // the channel (a late Result from before the worker failed) is stale
      // and discarded here — bounded drain, never blocking.
      for (int drained = 0; slot.probe_id != 0 && drained < 64; ++drained) {
        auto raw = workers_[w]->recv_timeout(0.0);
        if (!raw) break;
        Message msg;
        try {
          msg = Message::decode(*raw);
        } catch (const SerializationError&) {
          ++stale_discarded_;
          bump("collab.stale_replies_total");
          continue;
        }
        if (msg.type == MsgType::Pong && !msg.ints.empty() &&
            msg.ints[0] == slot.probe_id) {
          if (health_) health_->record_probe_success(static_cast<int>(w));
          if (health_ && !health_->allow_dispatch(static_cast<int>(w))) {
            // The worker answers probes but its breaker is still inside the
            // cooldown: stay in probation (the cadence keeps pinging) until
            // a later Pong lands after the cooldown and opens half_open.
            slot.probe_id = 0;
            LOG_INFO("worker " << w + 1
                               << " answered probe but its breaker is open; "
                                  "staying in probation");
            break;
          }
          slot.failed = false;
          slot.probe_id = 0;
          ++rejoins_;
          bump("collab.rejoins_total");
          obs::trace_instant("worker_rejoin", [&] {
            return obs::TraceArgs().arg("worker",
                                        static_cast<std::int64_t>(w) + 1);
          });
          LOG_INFO("worker " << w + 1
                             << " answered probe; rejoining the live set");
          break;
        }
        ++stale_discarded_;
        bump("collab.stale_replies_total");
        if (flow_trace_ && msg.type == MsgType::Result && !msg.ints.empty()) {
          // A late Result from before the worker failed: close its flow at
          // the probation drain so it does not dangle in the trace.
          obs::trace_flow_finish(
              "result",
              obs::flow_id(msg.ints[0], static_cast<int>(w) + 1, 1));
        }
      }
      if (!slot.failed) continue;
      if (--slot.probe_countdown > 0) continue;
      Message ping;
      ping.type = MsgType::Ping;
      ping.ints = {++probe_seq_};
      workers_[w]->send(ping.encode());
      slot.probe_id = probe_seq_;
      obs::trace_instant("probe", [&] {
        return obs::TraceArgs()
            .arg("worker", static_cast<std::int64_t>(w) + 1)
            .arg("probe_id", probe_seq_);
      });
      // Exponential backoff on the probe cadence: each unanswered probe
      // doubles the wait before the next one, up to kMaxProbeInterval.
      slot.probe_interval =
          std::min(slot.probe_interval * 2, kMaxProbeInterval);
      slot.probe_countdown = slot.probe_interval;
    } catch (const Error& e) {
      LOG_DEBUG("worker " << w + 1 << " probe failed: " << e.what());
      // Still failed; the probe cadence continues on later queries.
    }
  }
}

// analyze:hot  (per-query path: hot-path allocation audit root)
CollaborativeMaster::Result CollaborativeMaster::infer(const Tensor& x) {
  TEAMNET_CHECK(x.rank() >= 2);
  const std::int64_t n = x.dim(0);
  const std::int64_t qid = ++query_seq_;
  bump("collab.queries_total");
  obs::TraceSpan query_span("query", [&] {
    return obs::TraceArgs().arg("qid", qid).arg("batch", n);
  });
  const bool timeline = obs::qtl_active();
  if (timeline) {
    obs::qtl_master_mark(qid, obs::QueryPhase::dispatch, now_());
  }

  // Probation first, so a recovered worker rejoins in time for this query.
  probe_failed_workers();

  // The shared deadline anchors BEFORE the broadcast: the budget is the
  // query's SLO — it covers send + compute + gather — and its absolute
  // expiry rides in every Infer frame so workers can drop requests that
  // outlive it (deadline propagation, DESIGN.md §13).
  GatherDeadline deadline(worker_timeout_s_, now_);

  // Step 2: broadcast the sensor data to every live worker. Channel errors
  // mark the worker failed rather than aborting the query.
  Message request;
  request.type = MsgType::Infer;
  InferInfo dispatch;
  dispatch.qid = qid;
  dispatch.deadline_us = deadline.deadline_us();
  set_infer_info(request, dispatch);
  request.tensors = {x};
  const std::string encoded = request.encode();
  std::vector<bool> asked(workers_.size(), false);
  {
    obs::TraceSpan span("broadcast", [&] {
      return obs::TraceArgs().arg("qid", qid).arg("bytes_per_worker",
                                                  encoded.size());
    });
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (slots_[w].failed) continue;
      if (health_ && !health_->allow_dispatch(static_cast<int>(w))) continue;
      try {
        workers_[w]->send(encoded);
        asked[w] = true;
        if (timeline) {
          // Per-worker send-done instants expose the serial broadcast: the
          // gap between consecutive `sent` marks IS the master's per-worker
          // serialization cost (AttrPhase::broadcast_serial).
          obs::qtl_worker_mark(qid, static_cast<int>(w),
                               obs::WorkerMark::sent, now_());
        }
        if (flow_trace_) {
          obs::trace_flow_start(
              "infer", obs::flow_id(qid, static_cast<int>(w) + 1, 0));
        }
      } catch (const Error& e) {
        LOG_WARN("worker " << w + 1 << " failed on send: " << e.what());
        mark_failed(w);
      }
    }
  }
  const double t_sent = now_();
  if (timeline) {
    obs::qtl_master_mark(qid, obs::QueryPhase::broadcast_end, t_sent);
  }

  // Step 3 (local share): the master evaluates its own expert while the
  // workers evaluate theirs.
  std::pair<Tensor, Tensor> local;
  {
    obs::TraceSpan span("expert_forward", [&] {
      return obs::TraceArgs().arg("qid", qid);
    });
    if (on_compute_) on_compute_(batch_flops(expert_, x));
    local = evaluate(expert_, x);
  }
  if (timeline) {
    obs::qtl_master_mark(qid, obs::QueryPhase::local_compute_end, now_());
  }
  Tensor local_probs = std::move(local.first);
  Tensor local_entropy = std::move(local.second);

  // Step 4: gather whatever answers arrive before ONE shared deadline;
  // slow or broken workers are marked failed and the selection proceeds
  // without them. Replies for any other query id are stale (a late answer
  // from a previously timed-out worker, or a duplicate) and are discarded
  // instead of desyncing the protocol.
  std::vector<Tensor> all_probs = {std::move(local_probs)};
  std::vector<Tensor> all_entropy = {std::move(local_entropy)};
  std::vector<int> node_of = {0};
  {
    obs::TraceSpan span("gather", [&] {
      return obs::TraceArgs().arg("qid", qid);
    });
    std::vector<char> answered_by(workers_.size(), 0);
    if (!polling_gather()) {
      // Full gather (the original protocol): one blocking sweep over the
      // asked workers under the shared deadline.
      for (std::size_t w = 0; w < workers_.size(); ++w) {
        if (!asked[w]) continue;
        try {
          for (;;) {
            auto raw = deadline.recv_from(*workers_[w]);
            if (!raw) {
              LOG_WARN("worker " << w + 1 << " missed the "
                                 << worker_timeout_s_
                                 << "s gather deadline; marking failed");
              mark_failed(w);
              break;
            }
            Message reply = Message::decode(*raw);
            if (reply.type == MsgType::Pong) {
              ++stale_discarded_;  // duplicate probe answer; keep waiting
              bump("collab.stale_replies_total");
              obs::trace_instant("stale_reply_discarded", [&] {
                return obs::TraceArgs()
                    .arg("worker", static_cast<std::int64_t>(w) + 1)
                    .arg("kind", "duplicate_pong");
              });
              continue;
            }
            TEAMNET_CHECK_MSG(
                reply.type == MsgType::Result && reply.tensors.size() == 2,
                "worker " << w + 1 << " sent malformed reply type "
                          << static_cast<int>(reply.type));
            if (test_pre_qid_gather_) {
              // TEST-ONLY mutant (see set_test_pre_qid_gather): the pre-PR-3
              // gather had no query-id echo, so its only stale defense was
              // the deadline reading — a Result landing while the deadline
              // still reads unexpired is trusted as THIS query's answer; one
              // landing after it is treated as the miss the naive code
              // assumed. Whether a reply beats the reading depends on its
              // arrival time, i.e. on the schedule — the race the id echo
              // removed and the schedule explorer exists to catch.
              if (deadline.remaining() <= 0.0) {
                LOG_WARN("worker " << w + 1
                                   << " answered past the deadline reading; "
                                      "marking failed (pre-qid mutant)");
                mark_failed(w);
                break;
              }
            } else if (reply.ints.empty() || reply.ints[0] != qid) {
              ++stale_discarded_;
              bump("collab.stale_replies_total");
              if (flow_trace_ && !reply.ints.empty()) {
                // Close the stale reply's flow at its discard point — a
                // drained stale is consumed, not dangling.
                obs::trace_flow_finish(
                    "result",
                    obs::flow_id(reply.ints[0], static_cast<int>(w) + 1, 1));
              }
              obs::trace_instant("stale_reply_discarded", [&] {
                return obs::TraceArgs()
                    .arg("worker", static_cast<std::int64_t>(w) + 1)
                    .arg("stale_qid",
                         reply.ints.empty() ? std::int64_t{-1} : reply.ints[0])
                    .arg("qid", qid);
              });
              LOG_DEBUG("worker " << w + 1 << " sent stale reply for query "
                                  << (reply.ints.empty() ? -1 : reply.ints[0])
                                  << " during query " << qid << "; discarded");
              continue;
            }
            if (flow_trace_) {
              obs::trace_flow_finish(
                  "result", obs::flow_id(qid, static_cast<int>(w) + 1, 1));
            }
            if (timeline) {
              obs::qtl_worker_mark(qid, static_cast<int>(w),
                                   obs::WorkerMark::reply_recv, now_());
            }
            all_probs.push_back(std::move(reply.tensors[0]));
            all_entropy.push_back(std::move(reply.tensors[1]));
            node_of.push_back(static_cast<int>(w) + 1);
            answered_by[w] = 1;
            if (health_) {
              health_->record_success(static_cast<int>(w), now_() - t_sent);
            }
            break;
          }
        } catch (const Error& e) {
          LOG_WARN("worker " << w + 1 << " failed on recv: " << e.what());
          mark_failed(w);
        }
      }
    } else {
      // Quorum/hedge gather (DESIGN.md §13): instead of a blocking sweep,
      // poll every outstanding source round-robin with a zero budget.
      // Under discrete_event a zero-budget receive blocks until quiescence
      // and charges nothing, so the rotation behaves like an ideal
      // deterministic select over the outstanding channels; the bounded
      // no-progress wait at the bottom paces the loop (and burns deadline
      // budget, virtual time included) when every outstanding worker is
      // genuinely silent.
      int asked_count = 0;
      for (std::size_t w = 0; w < workers_.size(); ++w) {
        if (asked[w]) ++asked_count;
      }
      const int full_total = 1 + asked_count;
      const int target =
          quorum_ > 0 ? std::min(quorum_, full_total) : full_total;
      int answers = 1;  // the local expert always counts
      // `pending[w]`: worker w's ANSWER is still needed (counts toward the
      // target). `primary_outstanding[w]`: worker w's primary replica has a
      // dispatched request whose reply has not been seen yet — drained even
      // after the answer arrived via the backup, so a same-query duplicate
      // is reconciled here instead of surfacing as next query's stale.
      std::vector<char> pending(workers_.size(), 0);
      std::vector<char> primary_outstanding(workers_.size(), 0);
      for (std::size_t w = 0; w < workers_.size(); ++w) {
        pending[w] = asked[w] ? 1 : 0;
        primary_outstanding[w] = asked[w] ? 1 : 0;
      }
      bool can_hedge = false;
      for (std::size_t w = 0; w < backups_.size(); ++w) {
        if (pending[w] && backups_[w] != nullptr) can_hedge = true;
      }
      // Per-backup in-flight request count: repeated hedge rounds stack
      // sends on the same channel, and every one of them is drained for
      // duplicate reconciliation.
      std::vector<int> backup_outstanding(workers_.size(), 0);
      int hedge_round = 0;
      double hedge_at = std::numeric_limits<double>::infinity();
      double hedge_interval = 0.0;
      if (can_hedge) {
        // Adaptive hedge delay: wait `hedge_factor_` times the slowest
        // outstanding worker's expected latency (half the SLO budget when
        // no health tracker is observing), floored at hedge_min_delay_s_.
        // The same interval paces the later escalation rounds.
        double slowest =
            worker_timeout_s_ > 0.0 ? worker_timeout_s_ / 2 : 0.0;
        if (health_) {
          slowest = 0.0;
          for (std::size_t w = 0; w < backups_.size(); ++w) {
            if (!pending[w] || backups_[w] == nullptr) continue;
            slowest = std::max(
                slowest, health_->expected_latency_s(static_cast<int>(w)));
          }
        }
        hedge_interval =
            std::max(hedge_min_delay_s_, hedge_factor_ * slowest);
        hedge_at = t_sent + hedge_interval;
      }

      // Accepts or discards one raw frame from worker `w`'s primary or
      // backup replica; true = it completed a fresh answer.
      auto process_reply = [&](const std::string& raw, std::size_t w,
                               bool from_backup) {
        Message reply = Message::decode(raw);
        if (reply.type == MsgType::Pong) {
          ++stale_discarded_;
          bump("collab.stale_replies_total");
          obs::trace_instant("stale_reply_discarded", [&] {
            return obs::TraceArgs()
                .arg("worker", static_cast<std::int64_t>(w) + 1)
                .arg("kind", "duplicate_pong");
          });
          return false;
        }
        TEAMNET_CHECK_MSG(
            reply.type == MsgType::Result && reply.tensors.size() == 2,
            "worker " << w + 1 << " sent malformed reply type "
                      << static_cast<int>(reply.type));
        if (reply.ints.empty() || reply.ints[0] != qid) {
          ++stale_discarded_;
          bump("collab.stale_replies_total");
          if (flow_trace_ && !from_backup && !reply.ints.empty()) {
            obs::trace_flow_finish(
                "result",
                obs::flow_id(reply.ints[0], static_cast<int>(w) + 1, 1));
          }
          obs::trace_instant("stale_reply_discarded", [&] {
            return obs::TraceArgs()
                .arg("worker", static_cast<std::int64_t>(w) + 1)
                .arg("stale_qid",
                     reply.ints.empty() ? std::int64_t{-1} : reply.ints[0])
                .arg("qid", qid);
          });
          return false;
        }
        // A current-query Result settles its source's outstanding request,
        // duplicate or not.
        if (from_backup) {
          if (backup_outstanding[w] > 0) --backup_outstanding[w];
        } else {
          primary_outstanding[w] = 0;
          // Backup replicas never open flows (they answer under a lane
          // they do not own), so only primary replies close one — whether
          // accepted or reconciled as a hedge duplicate below.
          if (flow_trace_) {
            obs::trace_flow_finish(
                "result", obs::flow_id(qid, static_cast<int>(w) + 1, 1));
          }
        }
        if (answered_by[w]) {
          // The other replica of this expert answered first: the id echo
          // reconciles the duplicate instead of double-counting the expert.
          ++hedge_duplicates_;
          bump("collab.hedge_duplicates_total");
          obs::trace_instant("hedge_duplicate_reconciled", [&] {
            return obs::TraceArgs()
                .arg("worker", static_cast<std::int64_t>(w) + 1)
                .arg("qid", qid);
          });
          return false;
        }
        answered_by[w] = 1;
        pending[w] = 0;
        ++answers;
        if (timeline) {
          obs::qtl_worker_mark(qid, static_cast<int>(w),
                               obs::WorkerMark::reply_recv, now_());
        }
        all_probs.push_back(std::move(reply.tensors[0]));
        all_entropy.push_back(std::move(reply.tensors[1]));
        node_of.push_back(static_cast<int>(w) + 1);
        if (from_backup) {
          ++hedge_wins_;
          bump("collab.hedge_wins_total");
          obs::trace_instant("hedge_won", [&] {
            return obs::TraceArgs()
                .arg("worker", static_cast<std::int64_t>(w) + 1)
                .arg("qid", qid);
          });
        } else if (health_) {
          health_->record_success(static_cast<int>(w), now_() - t_sent);
        }
        return true;
      };

      auto hedge_to = [&](std::size_t target_w) {
        Message hedged;
        hedged.type = MsgType::Infer;
        InferInfo info = dispatch;
        info.hedged = true;
        set_infer_info(hedged, info);
        hedged.tensors = {x};
        try {
          backups_[target_w]->send(hedged.encode());
        } catch (const Error& e) {
          LOG_WARN("hedge to worker " << target_w + 1
                                      << "'s backup failed on send: "
                                      << e.what());
          return;
        }
        ++backup_outstanding[target_w];
        ++hedges_sent_;
        bump("collab.hedges_total");
        obs::trace_instant("hedge_dispatch", [&] {
          return obs::TraceArgs()
              .arg("worker", static_cast<std::int64_t>(target_w) + 1)
              .arg("qid", qid);
        });
      };

      auto fire_hedge = [&] {
        ++hedge_round;
        if (hedge_round == 1) {
          // First round: cover only the slowest still-outstanding worker
          // (by health EWMA; lowest index breaks ties deterministically)
          // with its backup — the classic single tail hedge.
          std::size_t target_w = workers_.size();
          double slowest = -1.0;
          for (std::size_t w = 0; w < backups_.size(); ++w) {
            if (!pending[w] || backups_[w] == nullptr) continue;
            const double expect =
                health_ ? health_->expected_latency_s(static_cast<int>(w))
                        : 0.0;
            if (expect > slowest) {
              slowest = expect;
              target_w = w;
            }
          }
          if (target_w < workers_.size()) hedge_to(target_w);
          return;
        }
        // Escalation rounds: the first hedge did not close the gather
        // within another interval, so the query is in the drop-loss tail —
        // re-issue to EVERY pending worker's backup, previous in-flight
        // hedges included (a lost hedge is indistinguishable from a slow
        // one; retrying is what bounds p99 under message loss, DESIGN.md
        // §13).
        for (std::size_t w = 0; w < backups_.size(); ++w) {
          if (!pending[w] || backups_[w] == nullptr) continue;
          hedge_to(w);
        }
      };

      for (;;) {
        if (answers >= target) break;
        // A backup can still produce a fresh ANSWER only while its worker
        // slot is unanswered; once answered it is drained purely for
        // duplicate reconciliation and must not keep the loop alive.
        bool any_pending = false;
        for (std::size_t w = 0; w < workers_.size(); ++w) {
          if (pending[w]) any_pending = true;
          if (backup_outstanding[w] > 0 && !answered_by[w]) any_pending = true;
        }
        if (!any_pending) break;  // every source answered, failed or errored
        if (deadline.expired()) {
          for (std::size_t w = 0; w < workers_.size(); ++w) {
            if (!pending[w]) continue;
            LOG_WARN("worker " << w + 1 << " missed the " << worker_timeout_s_
                               << "s gather deadline; marking failed");
            mark_failed(w);
            pending[w] = 0;
          }
          std::fill(backup_outstanding.begin(), backup_outstanding.end(), 0);
          break;
        }
        // One zero-budget drain pass over every outstanding source —
        // answered workers' counterparts included, so same-query duplicates
        // are reconciled here rather than going stale next query.
        bool progress = false;
        for (std::size_t w = 0; w < workers_.size(); ++w) {
          if (!primary_outstanding[w]) continue;
          try {
            while (primary_outstanding[w]) {
              auto raw = workers_[w]->recv_timeout(0.0);
              if (!raw) break;
              progress = true;
              process_reply(*raw, w, false);
            }
          } catch (const Error& e) {
            LOG_WARN("worker " << w + 1 << " failed on recv: " << e.what());
            primary_outstanding[w] = 0;
            if (pending[w]) {  // never fail a worker whose backup answered
              mark_failed(w);
              pending[w] = 0;
            }
          }
        }
        for (std::size_t w = 0; w < workers_.size(); ++w) {
          if (backup_outstanding[w] <= 0) continue;
          try {
            while (backup_outstanding[w] > 0) {
              auto raw = backups_[w]->recv_timeout(0.0);
              if (!raw) break;
              progress = true;
              process_reply(*raw, w, true);
            }
          } catch (const Error& e) {
            LOG_WARN("worker " << w + 1 << "'s backup failed on recv: "
                               << e.what());
            backup_outstanding[w] = 0;
          }
        }
        if (answers >= target) break;
        if (can_hedge && now_() >= hedge_at) {
          fire_hedge();
          hedge_at += hedge_interval;  // pace the next escalation round
          progress = true;  // a hedged reply may land on the next pass
        }
        if (progress) continue;
        // Nothing moved: block briefly on ONE outstanding source so the
        // wait burns deadline budget (virtual time under simulation)
        // instead of spinning, bounded by the deadline and the pending
        // hedge fire time.
        double wait = worker_timeout_s_ > 0.0 ? worker_timeout_s_ / 8 : 0.005;
        wait = std::min(wait, deadline.remaining());
        if (can_hedge) {
          wait = std::min(wait, hedge_at - now_());
        }
        wait = std::max(wait, 1e-6);
        Channel* source = nullptr;
        std::size_t source_w = 0;
        bool source_backup = false;
        for (std::size_t w = 0; w < workers_.size(); ++w) {
          if (pending[w]) {
            source = workers_[w];
            source_w = w;
            break;
          }
        }
        if (source == nullptr) {
          for (std::size_t w = 0; w < workers_.size(); ++w) {
            if (backup_outstanding[w] > 0 && !answered_by[w]) {
              source = backups_[w];
              source_w = w;
              source_backup = true;
              break;
            }
          }
        }
        if (source == nullptr) continue;
        try {
          if (auto raw = source->recv_timeout(wait)) {
            process_reply(*raw, source_w, source_backup);
          }
        } catch (const Error& e) {
          LOG_WARN("worker " << source_w + 1 << (source_backup ? "'s backup" : "")
                             << " failed on recv: " << e.what());
          if (source_backup) {
            backup_outstanding[source_w] = 0;
          } else {
            primary_outstanding[source_w] = 0;
            if (pending[source_w]) {
              mark_failed(source_w);
              pending[source_w] = 0;
            }
          }
        }
      }
    }
  }

  if (timeline) {
    obs::qtl_master_mark(qid, obs::QueryPhase::gather_end, now_());
  }

  // Step 5: per sample, the least-uncertain answering node wins.
  const int answered = static_cast<int>(all_probs.size());
  obs::TraceSpan argmin_span("argmin", [&] {
    return obs::TraceArgs().arg("qid", qid).arg("answered", answered);
  });
  const std::int64_t c = all_probs[0].dim(1);
  Result result;
  result.probs = Tensor({n, c});
  result.chosen.resize(static_cast<std::size_t>(n));
  for (std::int64_t r = 0; r < n; ++r) {
    int winner = 0;
    float best = all_entropy[0][r];
    for (int i = 1; i < answered; ++i) {
      if (all_entropy[static_cast<std::size_t>(i)][r] < best) {
        best = all_entropy[static_cast<std::size_t>(i)][r];
        winner = i;
      }
    }
    result.chosen[static_cast<std::size_t>(r)] =
        node_of[static_cast<std::size_t>(winner)];
    const float* src = all_probs[static_cast<std::size_t>(winner)].data() + r * c;
    std::copy(src, src + c, result.probs.data() + r * c);
  }
  result.predictions = ops::argmax_rows(result.probs);
  result.answered = answered;
  // Degradation level is fleet-relative (DESIGN.md §13): `full` means every
  // expert contributed — a worker skipped at broadcast (probation, open
  // breaker) degrades the query exactly like one that missed the deadline.
  if (answered == num_nodes() || workers_.empty()) {
    result.degradation = DegradationLevel::full;
    ++full_gathers_;
    bump("collab.degradation_full_total");
  } else if (answered == 1) {
    result.degradation = DegradationLevel::local_only;
    ++local_only_gathers_;
    bump("collab.degradation_local_only_total");
  } else {
    result.degradation = DegradationLevel::quorum;
    ++quorum_gathers_;
    bump("collab.degradation_quorum_total");
  }
  if (timeline) {
    obs::qtl_degradation(qid, static_cast<int>(result.degradation));
    obs::qtl_master_mark(qid, obs::QueryPhase::complete, now_());
  }
  return result;
}

void CollaborativeMaster::shutdown() {
  Message msg;
  msg.type = MsgType::Shutdown;
  const std::string encoded = msg.encode();
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (slots_[w].failed) continue;
    try {
      workers_[w]->send(encoded);
    } catch (const Error& e) {
      LOG_WARN("worker " << w + 1 << " failed on shutdown: " << e.what());
    }
  }
  // Backup replicas (hedged dispatch) get the same Shutdown so their
  // serving loops exit too.
  for (std::size_t b = 0; b < backups_.size(); ++b) {
    if (backups_[b] == nullptr) continue;
    try {
      backups_[b]->send(encoded);
    } catch (const Error& e) {
      LOG_WARN("backup " << b + 1 << " failed on shutdown: " << e.what());
    }
  }
  // Close every channel — failed workers included — so a thread wedged in
  // recv unblocks (NetworkError) and can be joined instead of leaking.
  // Queued messages (the Shutdown just sent) stay readable until drained.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    try {
      workers_[w]->close();
    } catch (const Error& e) {
      LOG_WARN("worker " << w + 1 << " failed on close: " << e.what());
    }
  }
  for (std::size_t b = 0; b < backups_.size(); ++b) {
    if (backups_[b] == nullptr) continue;
    try {
      backups_[b]->close();
    } catch (const Error& e) {
      LOG_WARN("backup " << b + 1 << " failed on close: " << e.what());
    }
  }
}

}  // namespace teamnet::net
