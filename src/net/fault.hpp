// Deterministic fault injection for any Channel.
//
// FaultyChannel decorates a Channel (InProc, TCP and Sim alike) with a
// seeded fault schedule: per-message drop, bounded extra delay, single-byte
// corruption, duplication, crash-after-N-messages, and a one-way partition
// that can also be toggled at runtime (crash/heal patterns). Every decision
// is drawn from one Rng owned by the wrapper, so a FaultProfile seed
// reproduces the exact same fault schedule run after run — the chaos
// scenario and the chaos tests assert on the recorded schedule byte for
// byte.
//
// Faults are injected at this endpoint only: send-side faults model losses
// between the caller and the wire (a dropped send never reaches the inner
// channel), recv-side faults model losses at the receiver (the inner
// channel already delivered — and, for Sim channels, already charged — the
// message before it is discarded or corrupted here).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "common/annotations.hpp"
#include "common/rng.hpp"
#include "net/transport.hpp"

namespace teamnet::net {

/// One endpoint's fault model. Probabilities are per message and
/// independent; everything is driven by `seed`, so two channels built from
/// the same profile inject byte-identical fault schedules.
struct FaultProfile {
  std::uint64_t seed = 0;

  double drop_prob = 0.0;       ///< message silently lost (either direction)
  double delay_prob = 0.0;      ///< outbound message held back before sending
  double delay_min_s = 0.0;     ///< inclusive lower bound of the extra delay
  double delay_max_s = 0.0;     ///< exclusive upper bound of the extra delay
  double corrupt_prob = 0.0;    ///< one byte flipped (either direction)
  double duplicate_prob = 0.0;  ///< message delivered twice (either direction)

  /// Channel dies (NetworkError on every later call) after this many
  /// messages have passed through the endpoint, send and recv combined.
  /// Negative = never crashes.
  std::int64_t crash_after_messages = -1;

  bool partition_send = false;  ///< one-way partition: all sends blackholed
  bool partition_recv = false;  ///< one-way partition: all receipts blackholed
};

/// Called with the drawn delay when a message is held back. The chaos
/// simulation advances the sender's virtual clock here; the default (empty)
/// hook sleeps for real (the right model when wrapping TCP channels).
using DelayFn = std::function<void(double seconds)>;

class FaultyChannel final : public Channel {
 public:
  /// Takes ownership of `inner`. `delay` is invoked for delay faults; when
  /// empty, the thread sleeps for the drawn duration instead.
  FaultyChannel(ChannelPtr inner, FaultProfile profile, DelayFn delay = {});

  void send(std::string bytes) override;
  std::string recv() override;
  std::optional<std::string> recv_timeout(double seconds) override;
  void close() override;

  /// Runtime partition control for crash/heal patterns: `send_lost` drops
  /// every outbound message, `recv_lost` every inbound one.
  void set_partition(bool send_lost, bool recv_lost);

  /// Replaces the clock recv_timeout budgets are measured against (seconds,
  /// monotone non-decreasing). Defaults to the real steady clock — right
  /// when wrapping TCP or free-running sim channels, whose deadlines elapse
  /// in real time. The discrete-event scheduler injects virtual time here
  /// instead: under DES the inner channel's timeouts consume virtual
  /// seconds, and measuring the remaining budget on the real clock would
  /// feed scheduling noise back into the retry sequence. Configure before
  /// any traffic flows, like the DelayFn.
  void set_time_source(std::function<double()> now);

  /// The recorded fault schedule so far, one `tx#N <fault>` / `rx#N <fault>`
  /// line per injected fault. Byte-identical across runs for the same seed
  /// and the same message sequence.
  std::string fault_schedule() const;

  /// Total faults injected so far (telemetry).
  std::int64_t faults_injected() const;

  /// The undecorated channel: a fault-free control path past the injector.
  /// The chaos scenario uses it to quiesce workers (Ping over the inner
  /// channel, wait for the Pong) before tearing down, so trailing
  /// fault-induced traffic is fully counted instead of racing close().
  /// Bypasses the fault schedule AND the crash state — never use it for
  /// traffic that is supposed to be under test.
  Channel& inner() { return *inner_; }

 private:
  /// Throws NetworkError when the injected crash point has been reached;
  /// otherwise counts one more message through the endpoint.
  void check_crash_locked(const char* dir, std::int64_t seq)
      TN_REQUIRES(mutex_);
  void record_locked(const char* dir, std::int64_t seq, const std::string& what)
      TN_REQUIRES(mutex_);
  /// Applies recv-side faults to `bytes` in place. Returns false when the
  /// message is dropped (partition or drop fault).
  bool apply_rx_locked(std::string& bytes) TN_REQUIRES(mutex_);

  ChannelPtr inner_;
  const FaultProfile profile_;
  DelayFn delay_;
  std::function<double()> now_;  ///< timeout clock; see set_time_source

  mutable Mutex mutex_;
  Rng rng_ TN_GUARDED_BY(mutex_);
  std::string log_ TN_GUARDED_BY(mutex_);
  std::int64_t faults_ TN_GUARDED_BY(mutex_) = 0;
  std::int64_t tx_seq_ TN_GUARDED_BY(mutex_) = 0;
  std::int64_t rx_seq_ TN_GUARDED_BY(mutex_) = 0;
  std::int64_t messages_seen_ TN_GUARDED_BY(mutex_) = 0;
  bool crashed_ TN_GUARDED_BY(mutex_) = false;
  bool partition_send_ TN_GUARDED_BY(mutex_);
  bool partition_recv_ TN_GUARDED_BY(mutex_);
  /// Duplicate of the last received message, replayed on the next recv.
  std::deque<std::string> pending_rx_ TN_GUARDED_BY(mutex_);
};

/// Convenience factory for callers that only need the Channel interface.
ChannelPtr make_faulty_channel(ChannelPtr inner, FaultProfile profile,
                               DelayFn delay = {});

}  // namespace teamnet::net
