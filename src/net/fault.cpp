#include "net/fault.hpp"

#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace teamnet::net {

namespace {

double clamp01(double p) { return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p); }

void validate(const FaultProfile& p) {
  TEAMNET_CHECK_MSG(p.drop_prob == clamp01(p.drop_prob) &&
                        p.delay_prob == clamp01(p.delay_prob) &&
                        p.corrupt_prob == clamp01(p.corrupt_prob) &&
                        p.duplicate_prob == clamp01(p.duplicate_prob),
                    "fault probabilities must be in [0, 1]");
  TEAMNET_CHECK_MSG(p.delay_min_s >= 0.0 && p.delay_max_s >= p.delay_min_s,
                    "delay range must satisfy 0 <= min <= max");
}

std::string format_delay(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "delay %.6f", seconds);
  return buf;
}

std::string format_corrupt(std::size_t pos, unsigned mask) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "corrupt @%zu ^0x%02x", pos, mask);
  return buf;
}

}  // namespace

FaultyChannel::FaultyChannel(ChannelPtr inner, FaultProfile profile,
                             DelayFn delay)
    : inner_(std::move(inner)),
      profile_(profile),
      delay_(std::move(delay)),
      now_([] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
      }),
      rng_(profile.seed),
      partition_send_(profile.partition_send),
      partition_recv_(profile.partition_recv) {
  TEAMNET_CHECK(inner_ != nullptr);
  validate(profile_);
}

void FaultyChannel::check_crash_locked(const char* dir, std::int64_t seq) {
  if (crashed_) throw NetworkError("injected crash (fault profile)");
  if (profile_.crash_after_messages >= 0 &&
      messages_seen_ >= profile_.crash_after_messages) {
    crashed_ = true;
    record_locked(dir, seq, "crash");
    throw NetworkError("injected crash (fault profile)");
  }
}

void FaultyChannel::record_locked(const char* dir, std::int64_t seq,
                                  const std::string& what) {
  log_ += dir;
  log_ += '#';
  log_ += std::to_string(seq);
  log_ += ' ';
  log_ += what;
  log_ += '\n';
  ++faults_;
  // Single fault-record point, so this is THE place every injected fault
  // becomes an instant event. `mutex_` is held; the tracer only takes leaf
  // locks (and the bound clock's engine lock already nests under `mutex_`
  // on the normal send path), so ordering stays acyclic.
  obs::MetricsRegistry::instance()
      .counter("net.faults_injected_total")
      .increment();
  // Per-kind companion ("net.faults_drop_total", "net.faults_delay_total",
  // ...): the kind is `what`'s first token, normalized to a name segment,
  // so a fault sweep can see WHICH injections fired without parsing logs.
  std::string kind = what.substr(0, what.find(' '));
  for (char& c : kind) {
    if (c == '-' || c == '@') c = '_';
  }
  obs::MetricsRegistry::instance()
      .counter("net.faults_" + kind + "_total")
      .increment();
  obs::trace_instant("fault", [&] {
    return obs::TraceArgs().arg("dir", dir).arg("seq", seq).arg("what", what);
  });
}

void FaultyChannel::send(std::string bytes) {
  double delay_s = 0.0;
  bool duplicate = false;
  {
    MutexLock lock(mutex_);
    const std::int64_t seq = ++tx_seq_;
    check_crash_locked("tx", seq);
    ++messages_seen_;
    if (partition_send_) {
      record_locked("tx", seq, "partition-drop");
      return;
    }
    if (profile_.drop_prob > 0.0 && rng_.bernoulli(profile_.drop_prob)) {
      record_locked("tx", seq, "drop");
      return;
    }
    if (profile_.delay_prob > 0.0 && rng_.bernoulli(profile_.delay_prob)) {
      delay_s = static_cast<double>(
          rng_.uniform(static_cast<float>(profile_.delay_min_s),
                       static_cast<float>(profile_.delay_max_s)));
      record_locked("tx", seq, format_delay(delay_s));
    }
    if (profile_.corrupt_prob > 0.0 && rng_.bernoulli(profile_.corrupt_prob) &&
        !bytes.empty()) {
      const auto pos = static_cast<std::size_t>(
          rng_.randint(0, static_cast<int>(bytes.size()) - 1));
      const unsigned mask = 1u << rng_.randint(0, 7);
      bytes[pos] = static_cast<char>(static_cast<unsigned char>(bytes[pos]) ^
                                     mask);
      record_locked("tx", seq, format_corrupt(pos, mask));
    }
    if (profile_.duplicate_prob > 0.0 &&
        rng_.bernoulli(profile_.duplicate_prob)) {
      duplicate = true;
      record_locked("tx", seq, "dup");
    }
  }
  // Delay and forwarding happen outside the lock: the hook may advance a
  // virtual clock (its own leaf lock) and inner_->send may block.
  if (delay_s > 0.0) {
    if (delay_) {
      delay_(delay_s);
    } else {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay_s));
    }
  }
  if (duplicate) inner_->send(bytes);
  inner_->send(std::move(bytes));
}

bool FaultyChannel::apply_rx_locked(std::string& bytes) {
  const std::int64_t seq = ++rx_seq_;
  ++messages_seen_;
  if (partition_recv_) {
    record_locked("rx", seq, "partition-drop");
    return false;
  }
  if (profile_.drop_prob > 0.0 && rng_.bernoulli(profile_.drop_prob)) {
    record_locked("rx", seq, "drop");
    return false;
  }
  if (profile_.corrupt_prob > 0.0 && rng_.bernoulli(profile_.corrupt_prob) &&
      !bytes.empty()) {
    const auto pos = static_cast<std::size_t>(
        rng_.randint(0, static_cast<int>(bytes.size()) - 1));
    const unsigned mask = 1u << rng_.randint(0, 7);
    bytes[pos] = static_cast<char>(static_cast<unsigned char>(bytes[pos]) ^
                                   mask);
    record_locked("rx", seq, format_corrupt(pos, mask));
  }
  if (profile_.duplicate_prob > 0.0 &&
      rng_.bernoulli(profile_.duplicate_prob)) {
    pending_rx_.push_back(bytes);
    record_locked("rx", seq, "dup");
  }
  return true;
}

std::string FaultyChannel::recv() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      check_crash_locked("rx", rx_seq_ + 1);
      if (!pending_rx_.empty()) {
        std::string bytes = std::move(pending_rx_.front());
        pending_rx_.pop_front();
        return bytes;
      }
    }
    std::string bytes = inner_->recv();
    MutexLock lock(mutex_);
    if (apply_rx_locked(bytes)) return bytes;
  }
}

void FaultyChannel::set_time_source(std::function<double()> now) {
  TEAMNET_CHECK(now != nullptr);
  now_ = std::move(now);
}

std::optional<std::string> FaultyChannel::recv_timeout(double seconds) {
  // One budget across retries, measured on now_(): a dropped message must
  // not reset the caller's deadline.
  const double budget = seconds > 0.0 ? seconds : 0.0;
  const double start = now_();
  for (;;) {
    {
      MutexLock lock(mutex_);
      check_crash_locked("rx", rx_seq_ + 1);
      if (!pending_rx_.empty()) {
        std::string bytes = std::move(pending_rx_.front());
        pending_rx_.pop_front();
        return bytes;
      }
    }
    const double remaining = budget - (now_() - start);
    auto bytes = inner_->recv_timeout(remaining > 0.0 ? remaining : 0.0);
    if (!bytes) return std::nullopt;
    MutexLock lock(mutex_);
    if (apply_rx_locked(*bytes)) return bytes;
  }
}

void FaultyChannel::close() { inner_->close(); }

void FaultyChannel::set_partition(bool send_lost, bool recv_lost) {
  MutexLock lock(mutex_);
  partition_send_ = send_lost;
  partition_recv_ = recv_lost;
  log_ += "ctl partition send=";
  log_ += send_lost ? '1' : '0';
  log_ += " recv=";
  log_ += recv_lost ? '1' : '0';
  log_ += '\n';
}

std::string FaultyChannel::fault_schedule() const {
  MutexLock lock(mutex_);
  return log_;
}

std::int64_t FaultyChannel::faults_injected() const {
  MutexLock lock(mutex_);
  return faults_;
}

ChannelPtr make_faulty_channel(ChannelPtr inner, FaultProfile profile,
                               DelayFn delay) {
  return std::make_unique<FaultyChannel>(std::move(inner), profile,
                                         std::move(delay));
}

}  // namespace teamnet::net
