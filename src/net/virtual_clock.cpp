#include "net/virtual_clock.hpp"

#include <algorithm>

namespace teamnet::net {

LinkProfile wifi_link() {
  // Effective single-hop WiFi figures between two edge boards on the same
  // AP: ~0.6 ms one-way latency, ~40 Mbit/s goodput.
  return LinkProfile{0.0006, 40e6, 0.0};
}

VirtualClock::VirtualClock(int num_nodes) : num_nodes_(num_nodes) {
  TEAMNET_CHECK(num_nodes > 0);
  times_.assign(static_cast<std::size_t>(num_nodes), 0.0);
}

double VirtualClock::node_time(int node) const {
  MutexLock lock(mutex_);
  TEAMNET_CHECK(node >= 0 && node < num_nodes());
  return times_[static_cast<std::size_t>(node)];
}

double VirtualClock::advance(int node, double seconds) {
  MutexLock lock(mutex_);
  TEAMNET_CHECK(node >= 0 && node < num_nodes());
  TEAMNET_CHECK_MSG(seconds >= 0.0, "cannot advance time backwards");
  return times_[static_cast<std::size_t>(node)] += seconds;
}

double VirtualClock::deliver(int to, double send_time, std::int64_t bytes,
                             const LinkProfile& link) {
  MutexLock lock(mutex_);
  TEAMNET_CHECK(to >= 0 && to < num_nodes());
  // Airtime (overhead + serialization) occupies the shared medium;
  // propagation latency does not.
  const double airtime = link.transfer_time(bytes) - link.latency_s;
  const double start = std::max(send_time, medium_free_);
  medium_free_ = start + airtime;
  const double arrival = start + airtime + link.latency_s;
  auto& t = times_[static_cast<std::size_t>(to)];
  t = std::max(t, arrival);
  bytes_ += bytes;
  ++messages_;
  return t;
}

double VirtualClock::max_time() const {
  MutexLock lock(mutex_);
  return *std::max_element(times_.begin(), times_.end());
}

void VirtualClock::reset() {
  MutexLock lock(mutex_);
  std::fill(times_.begin(), times_.end(), 0.0);
  medium_free_ = 0.0;
  bytes_ = 0;
  messages_ = 0;
}

std::int64_t VirtualClock::bytes_delivered() const {
  MutexLock lock(mutex_);
  return bytes_;
}

std::int64_t VirtualClock::messages_delivered() const {
  MutexLock lock(mutex_);
  return messages_;
}

}  // namespace teamnet::net
