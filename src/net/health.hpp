// Per-worker health scoring + circuit breaker (DESIGN.md §13).
//
// The master feeds every dispatch outcome into a HealthTracker: a reply
// updates an EWMA of observed latency, a miss/error updates an EWMA of
// failure rate, and the failure score drives a per-worker breaker:
//
//   closed ----failure EWMA >= open_threshold----> open
//   open ----probe answered after cooldown_s-----> half_open
//   half_open --success--> closed      half_open --failure--> open
//
// An open breaker removes the worker from dispatch (the master's broadcast
// skips it and probes it over the existing Ping/Pong probation path), so a
// flapping device stops eating gather budget; half_open readmits it for
// one trial query. The latency EWMA doubles as the hedge-delay estimate
// (CollaborativeMaster::set_hedging).
//
// Time is an injectable TimeSource so the cooldown runs on virtual time
// under the simulator — breaker transitions are deterministic under DES.
// All state sits behind one TN-annotated mutex: the tracker is shared
// between a master's query path and any telemetry reader.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/annotations.hpp"

namespace teamnet::net {

/// Monotonic time source in seconds, used for deadline and breaker
/// accounting. The default reads std::chrono::steady_clock; simulations
/// substitute the virtual clock so budgets burn simulated time.
using TimeSource = std::function<double()>;

/// Seconds since an arbitrary epoch on the steady (monotonic) clock.
double steady_seconds();

enum class BreakerState { closed = 0, half_open = 1, open = 2 };

const char* to_string(BreakerState state);

struct HealthConfig {
  double latency_alpha = 0.3;  ///< EWMA smoothing for reply latency
  double failure_alpha = 0.4;  ///< EWMA smoothing for the failure rate
  /// Failure EWMA that trips closed -> open. With failure_alpha 0.4 the
  /// default opens after three consecutive misses (0.4, 0.64, 0.784).
  double open_threshold = 0.7;
  /// Earliest open -> half_open transition after the breaker opened; until
  /// then even an answered probe leaves the breaker open.
  double cooldown_s = 0.02;
  /// expected_latency_s() before any reply has been observed (seeds the
  /// hedge delay on the first queries).
  double initial_latency_s = 0.01;
};

class HealthTracker {
 public:
  HealthTracker(int num_workers, HealthConfig config = {},
                TimeSource now = {});

  /// A dispatched query got its reply after `latency_s`. Decays the failure
  /// score, folds the latency into the EWMA, and closes the breaker (a
  /// half_open trial that answers is healthy again).
  void record_success(int worker, double latency_s);

  /// A dispatched query missed its deadline or the channel errored. Bumps
  /// the failure score; trips closed -> open past the threshold and any
  /// half_open trial straight back to open.
  void record_failure(int worker);

  /// A probation probe (Ping/Pong) was answered. Decays the failure score;
  /// if the breaker is open and the cooldown has elapsed, admits the worker
  /// to half_open for a trial query. Before the cooldown it stays open.
  void record_probe_success(int worker);

  BreakerState state(int worker) const;
  /// Whether the worker may be dispatched to: closed or half_open.
  bool allow_dispatch(int worker) const;
  /// EWMA of observed reply latency (config.initial_latency_s before any
  /// sample) — the hedge-delay estimate.
  double expected_latency_s(int worker) const;
  /// Current failure EWMA in [0, 1].
  double failure_rate(int worker) const;

  /// Total closed/half_open -> open transitions across all workers.
  std::int64_t breaker_opens() const;

  int num_workers() const { return static_cast<int>(size_); }

 private:
  struct Slot {
    double latency_ewma_s = 0.0;
    bool has_latency = false;
    double failure_ewma = 0.0;
    BreakerState state = BreakerState::closed;
    double opened_at_s = 0.0;  ///< now() when the breaker last opened
  };

  Slot& check_slot(int worker) TN_REQUIRES(mutex_);
  const Slot& check_slot(int worker) const TN_REQUIRES(mutex_);
  void open_locked(Slot& slot) TN_REQUIRES(mutex_);

  HealthConfig config_;
  TimeSource now_;
  std::size_t size_;
  mutable Mutex mutex_;
  std::vector<Slot> slots_ TN_GUARDED_BY(mutex_);
  std::int64_t opens_ TN_GUARDED_BY(mutex_) = 0;
};

}  // namespace teamnet::net
