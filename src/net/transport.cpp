#include "net/transport.hpp"

#include <atomic>
#include <chrono>

#include "common/annotations.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/raw_bytes.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace teamnet::net {

std::optional<std::string> Channel::recv_timeout(double seconds) {
  if (seconds > 0.0) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      LOG_WARN("Channel::recv_timeout: this channel type has no timeout "
               "support; falling back to blocking recv() — the caller's "
               << seconds << "s deadline is not enforced");
    }
  }
  return recv();
}

namespace {

/// One direction of an in-process pipe. Closing wakes blocked readers;
/// already-queued messages stay readable until drained.
///
/// Lock hierarchy: `mutex` is a leaf lock guarding `messages` + `closed`;
/// notify calls sit outside the critical section (the woken waiter must
/// reacquire the lock anyway, so this only avoids a pointless contention
/// bounce, it does not change visibility).
struct ByteQueue {
  Mutex mutex;
  CondVar cv;
  std::deque<std::string> messages TN_GUARDED_BY(mutex);
  bool closed TN_GUARDED_BY(mutex) = false;

  void push(std::string bytes) {
    {
      MutexLock lock(mutex);
      if (closed) throw NetworkError("channel closed");
      messages.push_back(std::move(bytes));
    }
    cv.notify_one();
  }

  void close() {
    {
      MutexLock lock(mutex);
      closed = true;
    }
    cv.notify_all();
  }

  std::string pop() {
    MutexLock lock(mutex);
    while (!closed && messages.empty()) cv.wait(mutex);
    return take_front_locked();
  }

  std::optional<std::string> pop_timeout(double seconds) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(seconds));
    MutexLock lock(mutex);
    while (!closed && messages.empty()) {
      if (!cv.wait_until(mutex, deadline)) {
        // Deadline passed; one final predicate check below decides between
        // "timed out empty" and "message/close raced the timeout".
        if (!closed && messages.empty()) return std::nullopt;
        break;
      }
    }
    return take_front_locked();
  }

 private:
  /// Precondition (enforced at both call sites under the lock): the wait
  /// loop exited, so either a message is queued or the queue is closed.
  std::string take_front_locked() TN_REQUIRES(mutex) {
    if (messages.empty()) throw NetworkError("channel closed");
    std::string bytes = std::move(messages.front());
    messages.pop_front();
    return bytes;
  }
};

class InProcChannel final : public Channel {
 public:
  InProcChannel(std::shared_ptr<ByteQueue> out, std::shared_ptr<ByteQueue> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  void send(std::string bytes) override { out_->push(std::move(bytes)); }
  std::string recv() override { return in_->pop(); }
  std::optional<std::string> recv_timeout(double seconds) override {
    return in_->pop_timeout(seconds);
  }
  void close() override {
    out_->close();
    in_->close();
  }

 private:
  std::shared_ptr<ByteQueue> out_;
  std::shared_ptr<ByteQueue> in_;
};

/// Registry counters for the simulated wire. Counting happens at the
/// SimChannel/DesChannel layer — the layers that know (self, peer) — never
/// in InProcChannel, so wrapped channels are not double-counted.
struct WireCounters {
  obs::Counter& bytes_sent;
  obs::Counter& msgs_sent;
  obs::Counter& bytes_received;
  obs::Counter& msgs_received;
  /// Per-message link transit (virtual send -> virtual delivery), ms.
  /// Decade edges span channel hops to multi-second injected delays.
  obs::Histogram& transit_ms;

  static WireCounters& instance() {
    static WireCounters& counters = *new WireCounters{
        obs::MetricsRegistry::instance().counter("net.bytes_sent"),
        obs::MetricsRegistry::instance().counter("net.msgs_sent"),
        obs::MetricsRegistry::instance().counter("net.bytes_received"),
        obs::MetricsRegistry::instance().counter("net.msgs_received"),
        obs::MetricsRegistry::instance().histogram(
            "net.transit_ms", {0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1e3}),
    };
    return counters;
  }
};

class SimChannel final : public Channel {
 public:
  SimChannel(ChannelPtr inner, VirtualClock& clock, int self, int peer,
             LinkProfile link)
      : inner_(std::move(inner)),
        clock_(clock),
        self_(self),
        peer_(peer),
        link_(link),
        tx_label_("tx_bytes " + std::to_string(self) + "->" +
                  std::to_string(peer)),
        rx_label_("rx_bytes " + std::to_string(peer) + "->" +
                  std::to_string(self)) {}

  void send(std::string bytes) override {
    const std::size_t payload = bytes.size();
    // Prefix the sender's virtual timestamp so the receiving endpoint can
    // model the link delay relative to when the message actually left.
    const double now = clock_.node_time(self_);
    std::string stamped;
    stamped.reserve(bytes.size() + sizeof(double));
    write_raw(stamped, now);
    stamped += bytes;
    inner_->send(std::move(stamped));
    WireCounters::instance().bytes_sent.add(
        static_cast<std::int64_t>(payload));
    WireCounters::instance().msgs_sent.increment();
    if (obs::Tracer::active()) {
      const auto total = tx_bytes_.fetch_add(
                             static_cast<std::int64_t>(payload),
                             std::memory_order_relaxed) +
                         static_cast<std::int64_t>(payload);
      obs::trace_counter(tx_label_.c_str(), static_cast<double>(total));
    }
  }

  std::string recv() override {
    std::string stamped = inner_->recv();
    return unstamp(std::move(stamped));
  }

  std::optional<std::string> recv_timeout(double seconds) override {
    auto stamped = inner_->recv_timeout(seconds);
    if (!stamped) {
      // Virtual-time-aware timeout: the real wait timed out, so the
      // simulated node spent the full budget listening. Charging it here is
      // what bounds a shared-deadline gather to ONE timeout of virtual time
      // — the first timed-out worker consumes the budget, and later workers
      // are polled with a zero remainder.
      if (seconds > 0.0) clock_.advance(self_, seconds);
      return std::nullopt;
    }
    return unstamp(std::move(*stamped));
  }

  void close() override { inner_->close(); }

 private:
  std::string unstamp(std::string stamped) {
    std::size_t offset = 0;
    const double send_time = read_raw<double>(stamped, offset);
    const auto payload_bytes =
        static_cast<std::int64_t>(stamped.size() - sizeof(double));
    clock_.deliver(self_, send_time, payload_bytes, link_);
    WireCounters::instance().bytes_received.add(payload_bytes);
    WireCounters::instance().msgs_received.increment();
    // Observed AFTER deliver returns (never under the clock's lock): the
    // receiver's post-delivery clock minus the sender's stamp is the
    // message's realized transit, Lamport wait included.
    WireCounters::instance().transit_ms.observe(
        1e3 * (clock_.node_time(self_) - send_time));
    if (obs::Tracer::active()) {
      const auto total =
          rx_bytes_.fetch_add(payload_bytes, std::memory_order_relaxed) +
          payload_bytes;
      obs::trace_counter(rx_label_.c_str(), static_cast<double>(total));
    }
    return stamped.substr(sizeof(double));
  }

  ChannelPtr inner_;
  VirtualClock& clock_;
  int self_;
  int peer_;
  LinkProfile link_;
  const std::string tx_label_;
  const std::string rx_label_;
  std::atomic<std::int64_t> tx_bytes_{0};
  std::atomic<std::int64_t> rx_bytes_{0};
};

}  // namespace

std::pair<ChannelPtr, ChannelPtr> make_inproc_pair() {
  auto a_to_b = std::make_shared<ByteQueue>();
  auto b_to_a = std::make_shared<ByteQueue>();
  return {std::make_unique<InProcChannel>(a_to_b, b_to_a),
          std::make_unique<InProcChannel>(b_to_a, a_to_b)};
}

ChannelPtr make_sim_channel(ChannelPtr inner, VirtualClock& clock, int self,
                            int peer, LinkProfile link) {
  TEAMNET_CHECK(inner != nullptr);
  return std::make_unique<SimChannel>(std::move(inner), clock, self, peer, link);
}

std::vector<std::vector<ChannelPtr>> make_sim_mesh(int n, VirtualClock& clock,
                                                   const LinkProfile& link) {
  TEAMNET_CHECK(n >= 1 && clock.num_nodes() >= n);
  std::vector<std::vector<ChannelPtr>> mesh(static_cast<std::size_t>(n));
  for (auto& row : mesh) row.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      auto [a, b] = make_inproc_pair();
      mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          make_sim_channel(std::move(a), clock, i, j, link);
      mesh[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
          make_sim_channel(std::move(b), clock, j, i, link);
    }
  }
  return mesh;
}

}  // namespace teamnet::net
