#include "net/transport.hpp"

#include <chrono>
#include <cstring>

#include "common/error.hpp"

namespace teamnet::net {

namespace {

/// One direction of an in-process pipe.
struct ByteQueue {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::string> messages;

  void push(std::string bytes) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      messages.push_back(std::move(bytes));
    }
    cv.notify_one();
  }

  std::string pop() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return !messages.empty(); });
    std::string bytes = std::move(messages.front());
    messages.pop_front();
    return bytes;
  }

  std::optional<std::string> pop_timeout(double seconds) {
    std::unique_lock<std::mutex> lock(mutex);
    const bool got = cv.wait_for(
        lock, std::chrono::duration<double>(seconds),
        [this] { return !messages.empty(); });
    if (!got) return std::nullopt;
    std::string bytes = std::move(messages.front());
    messages.pop_front();
    return bytes;
  }
};

class InProcChannel final : public Channel {
 public:
  InProcChannel(std::shared_ptr<ByteQueue> out, std::shared_ptr<ByteQueue> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  void send(std::string bytes) override { out_->push(std::move(bytes)); }
  std::string recv() override { return in_->pop(); }
  std::optional<std::string> recv_timeout(double seconds) override {
    return in_->pop_timeout(seconds);
  }

 private:
  std::shared_ptr<ByteQueue> out_;
  std::shared_ptr<ByteQueue> in_;
};

class SimChannel final : public Channel {
 public:
  SimChannel(ChannelPtr inner, VirtualClock& clock, int self, int peer,
             LinkProfile link)
      : inner_(std::move(inner)),
        clock_(clock),
        self_(self),
        peer_(peer),
        link_(link) {}

  void send(std::string bytes) override {
    // Prefix the sender's virtual timestamp so the receiving endpoint can
    // model the link delay relative to when the message actually left.
    const double now = clock_.node_time(self_);
    std::string stamped;
    stamped.reserve(bytes.size() + sizeof(double));
    stamped.append(reinterpret_cast<const char*>(&now), sizeof(double));
    stamped += bytes;
    inner_->send(std::move(stamped));
  }

  std::string recv() override {
    std::string stamped = inner_->recv();
    return unstamp(std::move(stamped));
  }

  std::optional<std::string> recv_timeout(double seconds) override {
    auto stamped = inner_->recv_timeout(seconds);
    if (!stamped) return std::nullopt;
    return unstamp(std::move(*stamped));
  }

 private:
  std::string unstamp(std::string stamped) {
    TEAMNET_CHECK(stamped.size() >= sizeof(double));
    double send_time = 0.0;
    std::memcpy(&send_time, stamped.data(), sizeof(double));
    const auto payload_bytes =
        static_cast<std::int64_t>(stamped.size() - sizeof(double));
    clock_.deliver(self_, send_time, payload_bytes, link_);
    return stamped.substr(sizeof(double));
  }

  ChannelPtr inner_;
  VirtualClock& clock_;
  int self_;
  int peer_;
  LinkProfile link_;
};

}  // namespace

std::pair<ChannelPtr, ChannelPtr> make_inproc_pair() {
  auto a_to_b = std::make_shared<ByteQueue>();
  auto b_to_a = std::make_shared<ByteQueue>();
  return {std::make_unique<InProcChannel>(a_to_b, b_to_a),
          std::make_unique<InProcChannel>(b_to_a, a_to_b)};
}

ChannelPtr make_sim_channel(ChannelPtr inner, VirtualClock& clock, int self,
                            int peer, LinkProfile link) {
  TEAMNET_CHECK(inner != nullptr);
  return std::make_unique<SimChannel>(std::move(inner), clock, self, peer, link);
}

std::vector<std::vector<ChannelPtr>> make_sim_mesh(int n, VirtualClock& clock,
                                                   const LinkProfile& link) {
  TEAMNET_CHECK(n >= 1 && clock.num_nodes() >= n);
  std::vector<std::vector<ChannelPtr>> mesh(static_cast<std::size_t>(n));
  for (auto& row : mesh) row.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      auto [a, b] = make_inproc_pair();
      mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          make_sim_channel(std::move(a), clock, i, j, link);
      mesh[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
          make_sim_channel(std::move(b), clock, j, i, link);
    }
  }
  return mesh;
}

}  // namespace teamnet::net
