// Wire message: a small typed envelope carrying tensors and integers.
//
// Encoding (little-endian):
//   u32 type | u32 n_ints | i64 ints[] | u32 n_tensors | tensor[] (nn format)
// The byte string produced here is what flows through every Channel
// implementation (in-proc, TCP, simulated), so byte counts seen by the
// virtual clock equal real serialized sizes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace teamnet::net {

/// Protocol message types for the collaborative-inference protocol
/// (Figure 1) and the message-passing runtime.
///
/// Query identity: `Infer` carries the master's query sequence number in
/// `ints[0]` and workers echo the request's `ints` back on the matching
/// `Result` (and `Pong`). The master's gather discards replies whose id
/// does not match the in-flight query, so a late reply from a timed-out
/// worker — or an injected duplicate — can never be consumed as the answer
/// to a later query.
///
/// Deadline budget (DESIGN.md §13): an `Infer` may carry two more ints
/// after the query id —
///   ints[1] = the query's absolute deadline in microseconds on the
///             sender's monotonic clock (kNoDeadlineUs = unbounded). An
///             absolute stamp survives queueing: a worker that dequeues the
///             frame late sees it already expired, which a re-anchored
///             relative budget would hide. It is comparable on the worker
///             because the clock domain is shared in-process and
///             Lamport-synced under simulation (a receive never lands
///             before its send left the sender's clock).
///   ints[2] = dispatch flags (bit kHedgedFlag: this frame is a hedged
///             re-issue to a backup replica).
/// Decoding is tolerant: legacy one-int frames read as unbounded/unhedged,
/// so the extension is backward compatible on the wire.
enum class MsgType : std::uint32_t {
  Infer = 1,       ///< master -> worker: input tensor broadcast (Step 2)
  Result = 2,      ///< worker -> master: probs + entropy (Step 4)
  Shutdown = 3,    ///< master -> worker: terminate the serving loop
  Weights = 4,     ///< model deployment: serialized expert parameters
  Collective = 5,  ///< payload of an MPI-style collective
  Ack = 6,
  Ping = 7,        ///< master -> worker: probation probe (ints[0] = probe id)
  Pong = 8,        ///< worker -> master: probe answer (echoes the Ping ints)
};

struct Message {
  MsgType type = MsgType::Ack;
  std::vector<std::int64_t> ints;
  std::vector<Tensor> tensors;

  std::string encode() const;
  static Message decode(const std::string& bytes);

  /// Serialized size in bytes without materializing the string.
  std::int64_t encoded_size() const;
};

/// `Infer` ints[1] value meaning "no deadline": the gather is unbounded.
inline constexpr std::int64_t kNoDeadlineUs = -1;
/// `Infer` ints[2] flag bit: the frame is a hedged re-issue to a backup.
inline constexpr std::int64_t kHedgedFlag = 1;

/// Decoded view of an Infer frame's ints (layout documented on MsgType).
struct InferInfo {
  std::int64_t qid = -1;
  std::int64_t deadline_us = kNoDeadlineUs;  ///< absolute, sender's clock
  bool hedged = false;
};

/// Tolerant read of `msg.ints` in the Infer layout: missing or negative
/// fields fall back to the defaults (qid -1, unbounded, unhedged), so
/// legacy and fuzzed frames stay servable.
InferInfo infer_info(const Message& msg);

/// Writes `info` into `msg.ints` in the Infer layout (always three ints).
void set_infer_info(Message& msg, const InferInfo& info);

}  // namespace teamnet::net
