// Wire message: a small typed envelope carrying tensors and integers.
//
// Encoding (little-endian):
//   u32 type | u32 n_ints | i64 ints[] | u32 n_tensors | tensor[] (nn format)
// The byte string produced here is what flows through every Channel
// implementation (in-proc, TCP, simulated), so byte counts seen by the
// virtual clock equal real serialized sizes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace teamnet::net {

/// Protocol message types for the collaborative-inference protocol
/// (Figure 1) and the message-passing runtime.
///
/// Query identity: `Infer` carries the master's query sequence number in
/// `ints[0]` and workers echo the request's `ints` back on the matching
/// `Result` (and `Pong`). The master's gather discards replies whose id
/// does not match the in-flight query, so a late reply from a timed-out
/// worker — or an injected duplicate — can never be consumed as the answer
/// to a later query.
enum class MsgType : std::uint32_t {
  Infer = 1,       ///< master -> worker: input tensor broadcast (Step 2)
  Result = 2,      ///< worker -> master: probs + entropy (Step 4)
  Shutdown = 3,    ///< master -> worker: terminate the serving loop
  Weights = 4,     ///< model deployment: serialized expert parameters
  Collective = 5,  ///< payload of an MPI-style collective
  Ack = 6,
  Ping = 7,        ///< master -> worker: probation probe (ints[0] = probe id)
  Pong = 8,        ///< worker -> master: probe answer (echoes the Ping ints)
};

struct Message {
  MsgType type = MsgType::Ack;
  std::vector<std::int64_t> ints;
  std::vector<Tensor> tensors;

  std::string encode() const;
  static Message decode(const std::string& bytes);

  /// Serialized size in bytes without materializing the string.
  std::int64_t encoded_size() const;
};

}  // namespace teamnet::net
