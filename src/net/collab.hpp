// The collaborative-inference protocol of Figure 1:
//   Step 1  master receives sensor data
//   Step 2  master broadcasts the input to every worker
//   Step 3  all nodes run their local expert in parallel
//   Step 4  master gathers each worker's (probabilities, entropy)
//   Step 5  master selects the least-uncertain expert's output
//
// The same classes run over any Channel implementation: real TCP in the
// examples, simulated WiFi channels in the benches. The optional compute
// hook reports each node's FLOP count so a simulation can advance its
// virtual clock; real deployments leave it unset.
//
// Fault model (DESIGN.md "Fault model & recovery"): every Infer carries a
// query id that workers echo on the Result, the gather shares ONE deadline
// across all workers, and a failed worker sits in probation — probed with
// Ping/Pong on an exponential-backoff cadence — until it answers and
// rejoins the live set.
//
// Degradation plane (DESIGN.md §13): the Infer frame propagates the
// query's absolute deadline so workers drop expired requests instead of
// computing stale replies; the gather can complete at a quorum Q <= K of
// answers (argmin over what arrived, the local expert always counted); a
// per-worker circuit breaker (net/health.hpp) removes flapping workers
// from dispatch; and a hedged re-issue covers the slowest outstanding
// worker with its designated backup replica.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/health.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"
#include "nn/module.hpp"

namespace teamnet::net {

using ComputeHook = std::function<void(std::int64_t flops)>;

/// One shared receive budget for a whole gather loop: however many workers
/// are slow or dead, the total wait is bounded by a single `budget_s`
/// (each receive gets whatever remains). A budget <= 0 means unbounded —
/// receives block forever, the pre-fault-tolerance behavior.
///
/// This is the only sanctioned way to receive in master-side gather paths;
/// tools/lint.py (rule `naked-recv`) rejects bare Channel::recv() calls
/// there so no gather can silently reintroduce an unbounded per-worker
/// wait.
class GatherDeadline {
 public:
  GatherDeadline(double budget_s, const TimeSource& now);

  bool unbounded() const { return unbounded_; }
  /// Whether a bounded budget has run out. Always false when unbounded —
  /// the explicit query for what `remaining() == 0` used to ambiguously
  /// mean (an unbounded deadline also read 0 through the double-comparison
  /// footgun of callers testing `remaining() <= 0`).
  bool expired() const;
  /// Seconds left before the deadline; 0 once expired, +infinity when
  /// unbounded.
  double remaining() const;
  /// The absolute expiry in microseconds on the time source's clock —
  /// what an Infer frame propagates (InferInfo::deadline_us).
  /// kNoDeadlineUs when unbounded.
  std::int64_t deadline_us() const;
  /// Receives from `channel`, bounded by remaining() (blocking when
  /// unbounded). nullopt = deadline expired with no message.
  std::optional<std::string> recv_from(Channel& channel) const;

 private:
  const TimeSource& now_;
  bool unbounded_;
  double deadline_ = 0.0;
};

/// Serves one expert model on one channel until a Shutdown message.
class CollaborativeWorker {
 public:
  CollaborativeWorker(nn::Module& expert, Channel& channel);

  /// Blocks, answering Infer requests (and probation Pings) until
  /// Shutdown. A malformed or corrupted frame is logged and skipped — the
  /// master's gather deadline covers the lost answer — so one bad message
  /// cannot take the worker down. Throws NetworkError on a broken channel.
  void serve();

  void set_compute_hook(ComputeHook hook) { on_compute_ = std::move(hook); }

  /// SLO discipline (DESIGN.md §13): when enabled, an Infer whose
  /// propagated deadline (InferInfo::deadline_us) has already passed on
  /// this worker's clock is dropped without computing or replying — the
  /// master stopped listening for it, so the reply could only ever be
  /// discarded as stale. Off by default because the check compares the
  /// frame's stamp against set_time_source's clock: it is only meaningful
  /// when worker and master share a clock domain (in-process, or the same
  /// simulation), which the caller asserts by opting in.
  void set_drop_expired(bool enabled) { drop_expired_ = enabled; }
  /// Clock used for the expiry check (default: steady_seconds; simulations
  /// pass this node's virtual clock).
  void set_time_source(TimeSource now);

  /// Tells the worker which scenario node it serves as (node >= 1; worker
  /// lane = node - 1) so it can publish per-query timeline marks and close
  /// the master's causal flow events (DESIGN.md §15). Unset (the default)
  /// keeps the worker anonymous and emission-free — the right state for
  /// real-TCP deployments where master and worker traces are separate
  /// files and a flow pair could never match up. In-process sim drivers
  /// opt in. Marks are only published for non-hedged requests: a backup
  /// replica answers under the PRIMARY worker's lane and flow ids, which
  /// it does not own.
  void set_trace_node(int node);

  /// Number of Infer requests answered (telemetry).
  std::int64_t requests_served() const { return served_; }
  /// Number of probation Pings answered (telemetry).
  std::int64_t pongs_sent() const { return pongs_; }
  /// Infer requests dropped because their deadline had already expired.
  std::int64_t expired_dropped() const { return expired_dropped_; }

 private:
  nn::Module& expert_;
  Channel& channel_;
  ComputeHook on_compute_;
  TimeSource now_;
  int trace_node_ = 0;  ///< 0 = anonymous (no marks/flows)
  bool drop_expired_ = false;
  std::int64_t served_ = 0;
  std::int64_t pongs_ = 0;
  std::int64_t expired_dropped_ = 0;
};

/// How much of the fleet answered a query before the gather completed
/// (DESIGN.md §13): `full` = every asked worker, `quorum` = the configured
/// quorum but not everyone, `local_only` = nobody but the master's own
/// expert.
enum class DegradationLevel { full = 0, quorum = 1, local_only = 2 };

const char* to_string(DegradationLevel level);

/// The master edge node: owns a local expert plus channels to the workers.
class CollaborativeMaster {
 public:
  CollaborativeMaster(nn::Module& local_expert, std::vector<Channel*> workers);

  struct Result {
    Tensor probs;                  ///< [n, C] winning expert's probabilities
    std::vector<int> predictions;  ///< argmax class per sample
    std::vector<int> chosen;       ///< winning node (0 = master, 1.. = workers)
    int answered = 1;              ///< experts in the argmin (local included)
    DegradationLevel degradation = DegradationLevel::full;
  };

  /// Runs Figure 1's five steps for a batch of inputs. Workers that have
  /// been marked failed are skipped; the selection runs over whichever
  /// nodes answered (degraded but available — the master alone in the
  /// worst case). Failed workers are probed and rejoin when they answer.
  Result infer(const Tensor& x);

  /// Sends Shutdown to every live worker, then closes every worker channel
  /// (failed ones included) so wedged worker threads unblock and can be
  /// joined instead of leaking.
  void shutdown();

  void set_compute_hook(ComputeHook hook) { on_compute_ = std::move(hook); }

  /// Fault tolerance: when > 0, ONE shared deadline of `seconds` bounds
  /// the whole gather — a worker that has not answered when the budget
  /// runs out (or whose channel errors) is marked failed and put on
  /// probation. 0 (default) = block forever.
  void set_worker_timeout(double seconds) { worker_timeout_s_ = seconds; }

  /// Probation cadence: a failed worker is probed with a Ping every
  /// `queries` queries, with the interval doubling after every unanswered
  /// probe (capped at kMaxProbeInterval). 0 disables probing — a failed
  /// worker then stays failed forever (the pre-rejoin behavior).
  void set_probe_interval(int queries);

  /// Substitutes the monotonic clock used for gather deadlines (default:
  /// steady_seconds). Simulations pass virtual-clock time here.
  void set_time_source(TimeSource now);

  /// Causal flow tracing (DESIGN.md §15): when enabled, every broadcast
  /// send opens a Chrome-trace flow ('s') that the worker's receive closes
  /// ('f'), and every worker reply opens one the gather's read closes —
  /// Perfetto renders the pairs as arrows across node rows. Off by default
  /// and only meaningful for in-process sim drivers where master and
  /// workers share one tracer (and call set_trace_node); over real TCP the
  /// halves would dangle in separate trace files. Stale replies drained by
  /// the gather or probation paths still close their flow, so a clean
  /// (fault-free) trace has no dangling flows — tools/check_trace.py
  /// enforces exactly that.
  void set_flow_trace(bool enabled) { flow_trace_ = enabled; }

  /// Quorum gather (DESIGN.md §13): when `answers` > 0, a gather completes
  /// as soon as that many answers are in — the local expert always counts
  /// as one — and the argmin runs over what arrived. Workers still
  /// outstanding at quorum are NOT marked failed: their late replies are
  /// discarded as stale on the next query, and the deadline/probation
  /// machinery handles genuinely dead ones. 0 (default) = wait for every
  /// asked worker (the original full gather). Values above 1 + #workers
  /// clamp to a full gather.
  void set_gather_quorum(int answers);

  /// Per-worker health scoring + circuit breaker (net/health.hpp): an open
  /// breaker puts the worker in probation (skipped at broadcast, probed via
  /// Ping/Pong) and an answered probe readmits it only after the breaker's
  /// cooldown. Uses the master's time source — call after set_time_source.
  void enable_health(const HealthConfig& config);
  /// The tracker enabled by enable_health (nullptr before).
  const HealthTracker* health() const { return health_.get(); }

  /// Hedged dispatch (DESIGN.md §13): `backups[w]` is the channel to the
  /// static backup replica serving worker w's expert (nullptr = worker w
  /// has no backup). Once per query, after an adaptive delay — max of
  /// `min_delay_s` and `latency_factor` × the health EWMA of the slowest
  /// outstanding worker (worker_timeout_s/2 without health) — the query is
  /// re-issued to that worker's backup with the hedge flag set; whichever
  /// replica answers first wins and the duplicate is reconciled via the
  /// query-id echo. Requires a bounded worker timeout or a quorum so the
  /// gather runs the polling loop.
  void set_hedging(std::vector<Channel*> backups, double min_delay_s,
                   double latency_factor);

  int num_nodes() const { return 1 + static_cast<int>(workers_.size()); }
  /// Workers currently marked failed (in probation).
  int failed_workers() const;
  /// Whether `worker_index` (0-based) is in the live set. Out-of-range
  /// indices throw InvariantError.
  bool worker_alive(int worker_index) const;

  /// Replies discarded because their query id did not match the in-flight
  /// query (late answers from timed-out workers, injected duplicates).
  std::int64_t stale_replies_discarded() const { return stale_discarded_; }

  /// Degradation-level accounting: the three counters partition the
  /// queries served so far (full + quorum + local_only == queries).
  std::int64_t full_gathers() const { return full_gathers_; }
  std::int64_t quorum_gathers() const { return quorum_gathers_; }
  std::int64_t local_only_gathers() const { return local_only_gathers_; }
  /// Hedged re-issues sent / won (the backup's reply was the one used) /
  /// reconciled duplicates (both replicas answered the same query).
  std::int64_t hedges_sent() const { return hedges_sent_; }
  std::int64_t hedge_wins() const { return hedge_wins_; }
  std::int64_t hedge_duplicates() const { return hedge_duplicates_; }

  /// TEST-ONLY: re-introduces the pre-PR-3 gather, which had no query-id
  /// echo. Its only stale-reply defense was the deadline clock reading:
  /// whatever Result arrives while the deadline still reads unexpired is
  /// trusted as the current query's answer (whichever query it actually
  /// answers), and one arriving after the reading is treated as a miss.
  /// That makes acceptance a time-of-check race — the outcome depends on
  /// arrival order against the deadline, i.e. on the schedule — which is
  /// the ordering bug the id echo removed. Exists so the schedule
  /// explorer's mutation gate can prove the detector catches a real bug;
  /// never enable in production paths.
  void set_test_pre_qid_gather(bool enable) { test_pre_qid_gather_ = enable; }
  /// Probed workers that answered and re-entered the live set.
  std::int64_t rejoins() const { return rejoins_; }

  /// Probe backoff never exceeds this many queries between Pings.
  static constexpr int kMaxProbeInterval = 64;

 private:
  /// Per-worker fault-tolerance state machine: live <-> probation.
  struct WorkerSlot {
    bool failed = false;
    int probe_countdown = 0;  ///< queries until the next probe action
    int probe_interval = 0;   ///< current backoff interval (queries)
    std::int64_t probe_id = 0;  ///< in-flight Ping id (0 = none)
  };

  void mark_failed(std::size_t w);
  /// Polls probation workers for Pongs (rejoining the ones that answered)
  /// and sends fresh Pings on the backoff cadence.
  void probe_failed_workers();
  /// Whether the quorum/hedge polling gather replaces the sequential
  /// full gather for this query.
  bool polling_gather() const { return quorum_ > 0 || !backups_.empty(); }

  nn::Module& expert_;
  std::vector<Channel*> workers_;
  std::vector<WorkerSlot> slots_;
  double worker_timeout_s_ = 0.0;
  int probe_interval_ = 4;
  TimeSource now_;
  ComputeHook on_compute_;
  int quorum_ = 0;  ///< 0 = full gather
  std::unique_ptr<HealthTracker> health_;
  std::vector<Channel*> backups_;  ///< empty = hedging disabled
  double hedge_min_delay_s_ = 0.0;
  double hedge_factor_ = 1.5;
  bool flow_trace_ = false;
  std::int64_t query_seq_ = 0;
  std::int64_t probe_seq_ = 0;
  std::int64_t stale_discarded_ = 0;
  std::int64_t rejoins_ = 0;
  std::int64_t full_gathers_ = 0;
  std::int64_t quorum_gathers_ = 0;
  std::int64_t local_only_gathers_ = 0;
  std::int64_t hedges_sent_ = 0;
  std::int64_t hedge_wins_ = 0;
  std::int64_t hedge_duplicates_ = 0;
  bool test_pre_qid_gather_ = false;  ///< test-only mutation hook
};

}  // namespace teamnet::net
