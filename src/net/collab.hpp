// The collaborative-inference protocol of Figure 1:
//   Step 1  master receives sensor data
//   Step 2  master broadcasts the input to every worker
//   Step 3  all nodes run their local expert in parallel
//   Step 4  master gathers each worker's (probabilities, entropy)
//   Step 5  master selects the least-uncertain expert's output
//
// The same classes run over any Channel implementation: real TCP in the
// examples, simulated WiFi channels in the benches. The optional compute
// hook reports each node's FLOP count so a simulation can advance its
// virtual clock; real deployments leave it unset.
#pragma once

#include <functional>
#include <vector>

#include "net/message.hpp"
#include "net/transport.hpp"
#include "nn/module.hpp"

namespace teamnet::net {

using ComputeHook = std::function<void(std::int64_t flops)>;

/// Serves one expert model on one channel until a Shutdown message.
class CollaborativeWorker {
 public:
  CollaborativeWorker(nn::Module& expert, Channel& channel);

  /// Blocks, answering Infer requests until Shutdown. Throws NetworkError
  /// on a broken channel.
  void serve();

  void set_compute_hook(ComputeHook hook) { on_compute_ = std::move(hook); }

  /// Number of Infer requests answered (telemetry).
  std::int64_t requests_served() const { return served_; }

 private:
  nn::Module& expert_;
  Channel& channel_;
  ComputeHook on_compute_;
  std::int64_t served_ = 0;
};

/// The master edge node: owns a local expert plus channels to the workers.
class CollaborativeMaster {
 public:
  CollaborativeMaster(nn::Module& local_expert, std::vector<Channel*> workers);

  struct Result {
    Tensor probs;                  ///< [n, C] winning expert's probabilities
    std::vector<int> predictions;  ///< argmax class per sample
    std::vector<int> chosen;       ///< winning node (0 = master, 1.. = workers)
  };

  /// Runs Figure 1's five steps for a batch of inputs. Workers that have
  /// been marked failed are skipped; the selection runs over whichever
  /// nodes answered (degraded but available — the master alone in the
  /// worst case).
  Result infer(const Tensor& x);

  /// Sends Shutdown to every live worker.
  void shutdown();

  void set_compute_hook(ComputeHook hook) { on_compute_ = std::move(hook); }

  /// Fault tolerance: when > 0, a worker that does not answer within
  /// `seconds` of real time (or whose channel errors) is marked failed and
  /// excluded from subsequent queries. 0 (default) = block forever.
  void set_worker_timeout(double seconds) { worker_timeout_s_ = seconds; }

  int num_nodes() const { return 1 + static_cast<int>(workers_.size()); }
  /// Workers currently marked failed.
  int failed_workers() const;
  bool worker_alive(int worker_index) const {
    return !failed_[static_cast<std::size_t>(worker_index)];
  }

 private:
  nn::Module& expert_;
  std::vector<Channel*> workers_;
  std::vector<bool> failed_;
  double worker_timeout_s_ = 0.0;
  ComputeHook on_compute_;
};

}  // namespace teamnet::net
