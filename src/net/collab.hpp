// The collaborative-inference protocol of Figure 1:
//   Step 1  master receives sensor data
//   Step 2  master broadcasts the input to every worker
//   Step 3  all nodes run their local expert in parallel
//   Step 4  master gathers each worker's (probabilities, entropy)
//   Step 5  master selects the least-uncertain expert's output
//
// The same classes run over any Channel implementation: real TCP in the
// examples, simulated WiFi channels in the benches. The optional compute
// hook reports each node's FLOP count so a simulation can advance its
// virtual clock; real deployments leave it unset.
//
// Fault model (DESIGN.md "Fault model & recovery"): every Infer carries a
// query id that workers echo on the Result, the gather shares ONE deadline
// across all workers, and a failed worker sits in probation — probed with
// Ping/Pong on an exponential-backoff cadence — until it answers and
// rejoins the live set.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "net/message.hpp"
#include "net/transport.hpp"
#include "nn/module.hpp"

namespace teamnet::net {

using ComputeHook = std::function<void(std::int64_t flops)>;

/// Monotonic time source in seconds, used for deadline accounting. The
/// default reads std::chrono::steady_clock; simulations may substitute the
/// virtual clock so gather deadlines are measured in simulated time.
using TimeSource = std::function<double()>;

/// Seconds since an arbitrary epoch on the steady (monotonic) clock.
double steady_seconds();

/// One shared receive budget for a whole gather loop: however many workers
/// are slow or dead, the total wait is bounded by a single `budget_s`
/// (each receive gets whatever remains). A budget <= 0 means unbounded —
/// receives block forever, the pre-fault-tolerance behavior.
///
/// This is the only sanctioned way to receive in master-side gather paths;
/// tools/lint.py (rule `naked-recv`) rejects bare Channel::recv() calls
/// there so no gather can silently reintroduce an unbounded per-worker
/// wait.
class GatherDeadline {
 public:
  GatherDeadline(double budget_s, const TimeSource& now);

  bool unbounded() const { return unbounded_; }
  /// Seconds left before the deadline; 0 once expired. Only meaningful for
  /// bounded deadlines.
  double remaining() const;
  /// Receives from `channel`, bounded by remaining() (blocking when
  /// unbounded). nullopt = deadline expired with no message.
  std::optional<std::string> recv_from(Channel& channel) const;

 private:
  const TimeSource& now_;
  bool unbounded_;
  double deadline_ = 0.0;
};

/// Serves one expert model on one channel until a Shutdown message.
class CollaborativeWorker {
 public:
  CollaborativeWorker(nn::Module& expert, Channel& channel);

  /// Blocks, answering Infer requests (and probation Pings) until
  /// Shutdown. A malformed or corrupted frame is logged and skipped — the
  /// master's gather deadline covers the lost answer — so one bad message
  /// cannot take the worker down. Throws NetworkError on a broken channel.
  void serve();

  void set_compute_hook(ComputeHook hook) { on_compute_ = std::move(hook); }

  /// Number of Infer requests answered (telemetry).
  std::int64_t requests_served() const { return served_; }
  /// Number of probation Pings answered (telemetry).
  std::int64_t pongs_sent() const { return pongs_; }

 private:
  nn::Module& expert_;
  Channel& channel_;
  ComputeHook on_compute_;
  std::int64_t served_ = 0;
  std::int64_t pongs_ = 0;
};

/// The master edge node: owns a local expert plus channels to the workers.
class CollaborativeMaster {
 public:
  CollaborativeMaster(nn::Module& local_expert, std::vector<Channel*> workers);

  struct Result {
    Tensor probs;                  ///< [n, C] winning expert's probabilities
    std::vector<int> predictions;  ///< argmax class per sample
    std::vector<int> chosen;       ///< winning node (0 = master, 1.. = workers)
  };

  /// Runs Figure 1's five steps for a batch of inputs. Workers that have
  /// been marked failed are skipped; the selection runs over whichever
  /// nodes answered (degraded but available — the master alone in the
  /// worst case). Failed workers are probed and rejoin when they answer.
  Result infer(const Tensor& x);

  /// Sends Shutdown to every live worker, then closes every worker channel
  /// (failed ones included) so wedged worker threads unblock and can be
  /// joined instead of leaking.
  void shutdown();

  void set_compute_hook(ComputeHook hook) { on_compute_ = std::move(hook); }

  /// Fault tolerance: when > 0, ONE shared deadline of `seconds` bounds
  /// the whole gather — a worker that has not answered when the budget
  /// runs out (or whose channel errors) is marked failed and put on
  /// probation. 0 (default) = block forever.
  void set_worker_timeout(double seconds) { worker_timeout_s_ = seconds; }

  /// Probation cadence: a failed worker is probed with a Ping every
  /// `queries` queries, with the interval doubling after every unanswered
  /// probe (capped at kMaxProbeInterval). 0 disables probing — a failed
  /// worker then stays failed forever (the pre-rejoin behavior).
  void set_probe_interval(int queries);

  /// Substitutes the monotonic clock used for gather deadlines (default:
  /// steady_seconds). Simulations pass virtual-clock time here.
  void set_time_source(TimeSource now);

  int num_nodes() const { return 1 + static_cast<int>(workers_.size()); }
  /// Workers currently marked failed (in probation).
  int failed_workers() const;
  /// Whether `worker_index` (0-based) is in the live set. Out-of-range
  /// indices throw InvariantError.
  bool worker_alive(int worker_index) const;

  /// Replies discarded because their query id did not match the in-flight
  /// query (late answers from timed-out workers, injected duplicates).
  std::int64_t stale_replies_discarded() const { return stale_discarded_; }

  /// TEST-ONLY: re-introduces the pre-PR-3 gather, which had no query-id
  /// echo. Its only stale-reply defense was the deadline clock reading:
  /// whatever Result arrives while the deadline still reads unexpired is
  /// trusted as the current query's answer (whichever query it actually
  /// answers), and one arriving after the reading is treated as a miss.
  /// That makes acceptance a time-of-check race — the outcome depends on
  /// arrival order against the deadline, i.e. on the schedule — which is
  /// the ordering bug the id echo removed. Exists so the schedule
  /// explorer's mutation gate can prove the detector catches a real bug;
  /// never enable in production paths.
  void set_test_pre_qid_gather(bool enable) { test_pre_qid_gather_ = enable; }
  /// Probed workers that answered and re-entered the live set.
  std::int64_t rejoins() const { return rejoins_; }

  /// Probe backoff never exceeds this many queries between Pings.
  static constexpr int kMaxProbeInterval = 64;

 private:
  /// Per-worker fault-tolerance state machine: live <-> probation.
  struct WorkerSlot {
    bool failed = false;
    int probe_countdown = 0;  ///< queries until the next probe action
    int probe_interval = 0;   ///< current backoff interval (queries)
    std::int64_t probe_id = 0;  ///< in-flight Ping id (0 = none)
  };

  void mark_failed(std::size_t w);
  /// Polls probation workers for Pongs (rejoining the ones that answered)
  /// and sends fresh Pings on the backoff cadence.
  void probe_failed_workers();

  nn::Module& expert_;
  std::vector<Channel*> workers_;
  std::vector<WorkerSlot> slots_;
  double worker_timeout_s_ = 0.0;
  int probe_interval_ = 4;
  TimeSource now_;
  ComputeHook on_compute_;
  std::int64_t query_seq_ = 0;
  std::int64_t probe_seq_ = 0;
  std::int64_t stale_discarded_ = 0;
  std::int64_t rejoins_ = 0;
  bool test_pre_qid_gather_ = false;  ///< test-only mutation hook
};

}  // namespace teamnet::net
