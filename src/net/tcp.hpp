// Real TCP sockets with length-prefixed framing — the transport the paper
// used between edge boards ("communication among the edge devices is done
// through TCP sockets over WiFi"). The examples run master and workers as
// separate threads/processes talking over loopback; the same code would
// connect boards over a LAN.
#pragma once

#include <cstdint>
#include <string>

#include "net/transport.hpp"

namespace teamnet::net {

/// RAII wrapper over a listening socket.
class TcpListener {
 public:
  /// Binds to 127.0.0.1:`port`; port 0 picks a free port (see port()).
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Blocks until a peer connects and returns the channel.
  ChannelPtr accept();

  std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to `host`:`port` (retrying briefly while the listener comes up)
/// and returns the channel.
ChannelPtr tcp_connect(const std::string& host, std::uint16_t port);

}  // namespace teamnet::net
