#include "net/health.hpp"

#include <chrono>

#include "common/error.hpp"

namespace teamnet::net {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::closed:
      return "closed";
    case BreakerState::half_open:
      return "half_open";
    case BreakerState::open:
      return "open";
  }
  return "?";
}

HealthTracker::HealthTracker(int num_workers, HealthConfig config,
                             TimeSource now)
    : config_(config),
      now_(now ? std::move(now) : TimeSource(&steady_seconds)),
      size_(static_cast<std::size_t>(num_workers)),
      slots_(size_) {
  TEAMNET_CHECK_MSG(num_workers >= 0, "worker count must be >= 0");
  TEAMNET_CHECK_MSG(
      config_.latency_alpha > 0.0 && config_.latency_alpha <= 1.0 &&
          config_.failure_alpha > 0.0 && config_.failure_alpha <= 1.0,
      "EWMA smoothing factors must lie in (0, 1]");
  TEAMNET_CHECK_MSG(config_.open_threshold > 0.0 &&
                        config_.open_threshold <= 1.0,
                    "open_threshold must lie in (0, 1]");
}

const HealthTracker::Slot& HealthTracker::check_slot(int worker) const {
  TEAMNET_CHECK_MSG(worker >= 0 && static_cast<std::size_t>(worker) < size_,
                    "worker index " << worker << " out of range [0, " << size_
                                    << ")");
  return slots_[static_cast<std::size_t>(worker)];
}

HealthTracker::Slot& HealthTracker::check_slot(int worker) {
  return const_cast<Slot&>(
      static_cast<const HealthTracker*>(this)->check_slot(worker));
}

void HealthTracker::open_locked(Slot& slot) {
  slot.state = BreakerState::open;
  slot.opened_at_s = now_();
  ++opens_;
}

void HealthTracker::record_success(int worker, double latency_s) {
  MutexLock lock(mutex_);
  Slot& slot = check_slot(worker);
  slot.failure_ewma *= 1.0 - config_.failure_alpha;
  if (slot.has_latency) {
    slot.latency_ewma_s += config_.latency_alpha *
                           (latency_s - slot.latency_ewma_s);
  } else {
    slot.latency_ewma_s = latency_s;
    slot.has_latency = true;
  }
  // Any observed reply is direct evidence of health: a half_open trial that
  // answers closes the breaker, and a straggler reply that lands while the
  // breaker is open closes it early.
  slot.state = BreakerState::closed;
}

void HealthTracker::record_failure(int worker) {
  MutexLock lock(mutex_);
  Slot& slot = check_slot(worker);
  slot.failure_ewma =
      slot.failure_ewma * (1.0 - config_.failure_alpha) +
      config_.failure_alpha;
  if (slot.state == BreakerState::half_open) {
    open_locked(slot);  // trial query failed: straight back to open
  } else if (slot.state == BreakerState::closed &&
             slot.failure_ewma >= config_.open_threshold) {
    open_locked(slot);
  }
}

void HealthTracker::record_probe_success(int worker) {
  MutexLock lock(mutex_);
  Slot& slot = check_slot(worker);
  slot.failure_ewma *= 1.0 - config_.failure_alpha;
  if (slot.state == BreakerState::open &&
      now_() - slot.opened_at_s >= config_.cooldown_s) {
    slot.state = BreakerState::half_open;
  }
}

BreakerState HealthTracker::state(int worker) const {
  MutexLock lock(mutex_);
  return check_slot(worker).state;
}

bool HealthTracker::allow_dispatch(int worker) const {
  MutexLock lock(mutex_);
  return check_slot(worker).state != BreakerState::open;
}

double HealthTracker::expected_latency_s(int worker) const {
  MutexLock lock(mutex_);
  const Slot& slot = check_slot(worker);
  return slot.has_latency ? slot.latency_ewma_s : config_.initial_latency_s;
}

double HealthTracker::failure_rate(int worker) const {
  MutexLock lock(mutex_);
  return check_slot(worker).failure_ewma;
}

std::int64_t HealthTracker::breaker_opens() const {
  MutexLock lock(mutex_);
  return opens_;
}

}  // namespace teamnet::net
