#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace teamnet::net {

namespace {

// errno discipline (tools/lint.py rule `errno-capture`): every syscall
// failure path saves errno into a local before doing anything else — string
// building, close(), setsockopt() and even allocation may clobber it.
[[noreturn]] void throw_errno(const std::string& what, int err) {
  throw NetworkError(what + ": " + std::strerror(err));
}

void send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) {
      const int err = errno;
      throw_errno("send", err);
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

void recv_all(int fd, char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n == 0) throw NetworkError("peer closed connection");
    if (n < 0) {
      const int err = errno;
      throw_errno("recv", err);
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Length-prefixed framing over a connected socket.
class TcpChannel final : public Channel {
  std::string recv_body(const char header[8]) {
    std::uint64_t len = 0;
    std::memcpy(&len, header, sizeof(len));
    if (len > (1ull << 32)) throw NetworkError("implausible frame length");
    std::string bytes(len, '\0');
    recv_all(fd_, bytes.data(), bytes.size());
    return bytes;
  }

 public:
  explicit TcpChannel(int fd) : fd_(fd) {
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~TcpChannel() override {
    if (fd_ >= 0) ::close(fd_);
  }

  void close() override {
    // shutdown() rather than ::close() so the fd stays valid (no double
    // close / fd reuse race) while any blocked recv fails with "peer
    // closed connection"; the destructor still releases the fd.
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

  void send(std::string bytes) override {
    const std::uint64_t len = bytes.size();
    char header[8];
    std::memcpy(header, &len, sizeof(len));
    send_all(fd_, header, sizeof(header));
    send_all(fd_, bytes.data(), bytes.size());
  }

  std::string recv() override {
    char header[8];
    recv_all(fd_, header, sizeof(header));
    return recv_body(header);
  }

  std::optional<std::string> recv_timeout(double seconds) override {
    // Arm SO_RCVTIMEO for the frame header only; once a header arrives the
    // body is assumed to follow promptly (sender writes frames atomically).
    const double clamped = std::max(seconds, 0.0);
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(clamped);
    tv.tv_usec = static_cast<suseconds_t>(
        (clamped - static_cast<double>(tv.tv_sec)) * 1e6);
    // A zeroed timeval means "no timeout" to SO_RCVTIMEO, which would turn
    // a non-blocking poll (seconds <= 0) into a blocking recv. Clamp to the
    // smallest representable timeout instead.
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    char header[8];
    const ssize_t n = ::recv(fd_, header, sizeof(header), MSG_PEEK);
    const int err = errno;  // before setsockopt below can clobber it
    timeval off{};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &off, sizeof(off));
    if (n < 0 && (err == EAGAIN || err == EWOULDBLOCK)) {
      return std::nullopt;
    }
    if (n == 0) throw NetworkError("peer closed connection");
    if (n < 0) throw_errno("recv", err);
    return recv();
  }

 private:
  int fd_;
};

}  // namespace

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    const int err = errno;
    throw_errno("socket", err);
  }
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;  // close() below would overwrite it
    ::close(fd_);
    throw_errno("bind", err);
  }
  if (::listen(fd_, 16) != 0) {
    const int err = errno;
    ::close(fd_);
    throw_errno("listen", err);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    const int err = errno;
    ::close(fd_);
    throw_errno("getsockname", err);
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

ChannelPtr TcpListener::accept() {
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    const int err = errno;
    throw_errno("accept", err);
  }
  return std::make_unique<TcpChannel>(client);
}

ChannelPtr tcp_connect(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetworkError("bad address: " + host);
  }

  // Retry with exponential backoff + jitter: workers often dial before the
  // master's listener is up, and a fixed cadence makes a rejoining fleet
  // hammer the listener in lockstep. Deterministically seeded from the
  // target address so tests remain reproducible.
  constexpr double kBackoffBudgetS = 3.0;
  constexpr int kBaseDelayMs = 5;
  constexpr int kMaxDelayMs = 320;
  Rng jitter(0x7c9ULL * port + 0xdeadULL * addr.sin_addr.s_addr);
  int delay_ms = kBaseDelayMs;
  const auto give_up_at = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(kBackoffBudgetS));
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      const int err = errno;
      throw_errno("socket", err);
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return std::make_unique<TcpChannel>(fd);
    }
    ::close(fd);
    if (std::chrono::steady_clock::now() >= give_up_at) break;
    // Full jitter: sleep uniform in [delay/2, delay], then double the cap.
    const int sleep_ms = jitter.randint(delay_ms / 2, delay_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    delay_ms = std::min(delay_ms * 2, kMaxDelayMs);
  }
  throw NetworkError("connect to " + host + ":" + std::to_string(port) +
                     " failed after retries");
}

}  // namespace teamnet::net
