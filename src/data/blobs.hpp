// Gaussian-blob toy dataset: K well-separated class clusters in D
// dimensions. Used by unit/property tests that need a dataset trainable in
// milliseconds, and by the quickstart example's first steps.
#pragma once

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace teamnet::data {

struct BlobsConfig {
  std::int64_t num_samples = 512;
  std::int64_t num_classes = 4;
  std::int64_t dims = 8;
  float center_scale = 4.0f;   ///< cluster centers drawn from N(0, scale^2)
  float noise_stddev = 0.5f;   ///< within-cluster spread
  std::uint64_t seed = 3;
};

Dataset make_blobs(const BlobsConfig& config);

}  // namespace teamnet::data
