#include "data/dataset.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace teamnet::data {

Shape Dataset::sample_shape() const {
  TEAMNET_CHECK(images.rank() >= 1);
  Shape s(images.shape().begin() + 1, images.shape().end());
  return s;
}

Dataset Dataset::subset(const std::vector<int>& indices) const {
  Dataset out;
  out.images = ops::take_rows(images, indices);
  out.labels.reserve(indices.size());
  for (int i : indices) {
    TEAMNET_CHECK(i >= 0 && i < size());
    out.labels.push_back(labels[static_cast<std::size_t>(i)]);
  }
  out.num_classes = num_classes;
  return out;
}

Dataset Dataset::take(std::int64_t n) const {
  TEAMNET_CHECK(n >= 0 && n <= size());
  std::vector<int> indices(static_cast<std::size_t>(n));
  std::iota(indices.begin(), indices.end(), 0);
  return subset(indices);
}

void Dataset::shuffle(Rng& rng) {
  std::vector<int> perm = rng.permutation(static_cast<int>(size()));
  *this = subset(perm);
}

std::pair<Dataset, Dataset> Dataset::split(double frac) const {
  TEAMNET_CHECK(frac >= 0.0 && frac <= 1.0);
  const std::int64_t n_first = static_cast<std::int64_t>(
      static_cast<double>(size()) * frac);
  std::vector<int> first(static_cast<std::size_t>(n_first));
  std::iota(first.begin(), first.end(), 0);
  std::vector<int> second(static_cast<std::size_t>(size() - n_first));
  std::iota(second.begin(), second.end(), static_cast<int>(n_first));
  return {subset(first), subset(second)};
}

std::vector<int> Dataset::class_counts() const {
  std::vector<int> counts(static_cast<std::size_t>(num_classes), 0);
  for (int y : labels) {
    TEAMNET_CHECK(y >= 0 && y < num_classes);
    ++counts[static_cast<std::size_t>(y)];
  }
  return counts;
}

void Dataset::validate() const {
  TEAMNET_CHECK_MSG(images.rank() >= 2, "images must be batched");
  TEAMNET_CHECK_MSG(images.dim(0) == size(),
                    "images batch " << images.dim(0) << " != labels "
                                    << size());
  TEAMNET_CHECK(num_classes > 0);
  for (int y : labels) TEAMNET_CHECK(y >= 0 && y < num_classes);
}

BatchIterator::BatchIterator(const Dataset& dataset, std::int64_t batch_size,
                             Rng* rng)
    : dataset_(dataset), batch_size_(batch_size), rng_(rng) {
  TEAMNET_CHECK(batch_size > 0);
  order_.resize(static_cast<std::size_t>(dataset.size()));
  std::iota(order_.begin(), order_.end(), 0);
  reset();
}

void BatchIterator::reset() {
  cursor_ = 0;
  if (rng_ != nullptr) rng_->shuffle(order_);
}

std::int64_t BatchIterator::batches_per_epoch() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

Batch BatchIterator::next() {
  if (cursor_ >= dataset_.size()) return Batch{};
  const std::int64_t end = std::min(cursor_ + batch_size_, dataset_.size());
  std::vector<int> indices(order_.begin() + cursor_, order_.begin() + end);
  cursor_ = end;
  Dataset sub = dataset_.subset(indices);
  return Batch{std::move(sub.images), std::move(sub.labels)};
}

}  // namespace teamnet::data
