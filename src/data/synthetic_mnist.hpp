// Procedural stand-in for the MNIST handwritten-digit dataset (DESIGN.md
// §1.1). Digits 0-9 are rendered as jittered seven-segment glyphs on a
// 28x28 grayscale canvas: random translation, scale, stroke thickness,
// stroke intensity and pixel noise provide intra-class variance, while the
// segment layout keeps the 10 classes well separated — the properties
// TeamNet's competitive partitioning depends on.
#pragma once

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace teamnet::data {

struct MnistConfig {
  std::int64_t num_samples = 4096;
  std::int64_t image_size = 28;   ///< canvas side; images are flattened
  float noise_stddev = 0.08f;     ///< additive pixel noise
  float max_jitter = 2.0f;        ///< translation jitter in pixels
  std::uint64_t seed = 1;
  bool balanced = true;           ///< equal class counts (paper assumes this)
};

/// Images are flattened to [N, size*size] for the MLP family.
Dataset make_synthetic_mnist(const MnistConfig& config);

/// Renders a single digit (exposed for tests/examples).
Tensor render_digit(int digit, std::int64_t image_size, Rng& rng,
                    float noise_stddev, float max_jitter);

}  // namespace teamnet::data
