// In-memory labeled dataset plus batching utilities.
#pragma once

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace teamnet::data {

struct Dataset {
  Tensor images;            ///< [N, ...] — feature layout is model-specific
  std::vector<int> labels;  ///< size N, values in [0, num_classes)
  int num_classes = 0;

  std::int64_t size() const { return static_cast<std::int64_t>(labels.size()); }

  /// Per-sample feature shape (images.shape() without the batch dim).
  Shape sample_shape() const;

  /// Rows selected by `indices` (copies).
  Dataset subset(const std::vector<int>& indices) const;

  /// First `n` samples after the dataset's current order.
  Dataset take(std::int64_t n) const;

  /// Randomly reorders samples in place.
  void shuffle(Rng& rng);

  /// Splits into (first `frac` of samples, rest). Call shuffle first for a
  /// random split.
  std::pair<Dataset, Dataset> split(double frac) const;

  /// Number of samples per class.
  std::vector<int> class_counts() const;

  /// Throws InvariantError when sizes/labels are inconsistent.
  void validate() const;
};

/// One minibatch.
struct Batch {
  Tensor x;
  std::vector<int> y;
  std::int64_t size() const { return static_cast<std::int64_t>(y.size()); }
};

/// Iterates a dataset in minibatches; reshuffles at the start of every epoch
/// when constructed with an Rng (Algorithm 1 lines 2-4).
class BatchIterator {
 public:
  BatchIterator(const Dataset& dataset, std::int64_t batch_size,
                Rng* rng = nullptr);

  /// Next batch, or a batch of size 0 at the end of the epoch.
  Batch next();

  /// Restarts the epoch (reshuffling when an Rng was supplied).
  void reset();

  std::int64_t batches_per_epoch() const;

 private:
  const Dataset& dataset_;
  std::int64_t batch_size_;
  Rng* rng_;
  std::vector<int> order_;
  std::int64_t cursor_ = 0;
};

}  // namespace teamnet::data
