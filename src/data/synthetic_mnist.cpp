#include "data/synthetic_mnist.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hpp"

namespace teamnet::data {

namespace {

// Seven-segment layout on a unit square (x right, y down):
//   A: top  B: top-right  C: bottom-right  D: bottom
//   E: bottom-left  F: top-left  G: middle
struct Segment {
  float x0, y0, x1, y1;
};

constexpr std::array<Segment, 7> kSegments = {{
    {0.15f, 0.05f, 0.85f, 0.05f},  // A
    {0.85f, 0.05f, 0.85f, 0.50f},  // B
    {0.85f, 0.50f, 0.85f, 0.95f},  // C
    {0.15f, 0.95f, 0.85f, 0.95f},  // D
    {0.15f, 0.50f, 0.15f, 0.95f},  // E
    {0.15f, 0.05f, 0.15f, 0.50f},  // F
    {0.15f, 0.50f, 0.85f, 0.50f},  // G
}};

// Active segments per digit (A..G).
constexpr std::array<std::uint8_t, 10> kDigitMask = {
    0b0111111,  // 0: ABCDEF
    0b0000110,  // 1: BC
    0b1011011,  // 2: ABDEG
    0b1001111,  // 3: ABCDG
    0b1100110,  // 4: BCFG
    0b1101101,  // 5: ACDFG
    0b1111101,  // 6: ACDEFG
    0b0000111,  // 7: ABC
    0b1111111,  // 8: all
    0b1101111,  // 9: ABCDFG
};

float point_segment_distance(float px, float py, const Segment& s) {
  const float dx = s.x1 - s.x0, dy = s.y1 - s.y0;
  const float len2 = dx * dx + dy * dy;
  float t = len2 > 0.0f ? ((px - s.x0) * dx + (py - s.y0) * dy) / len2 : 0.0f;
  t = std::clamp(t, 0.0f, 1.0f);
  const float cx = s.x0 + t * dx, cy = s.y0 + t * dy;
  return std::sqrt((px - cx) * (px - cx) + (py - cy) * (py - cy));
}

}  // namespace

Tensor render_digit(int digit, std::int64_t image_size, Rng& rng,
                    float noise_stddev, float max_jitter) {
  TEAMNET_CHECK(digit >= 0 && digit <= 9 && image_size >= 12);
  const float size = static_cast<float>(image_size);

  // Per-sample glyph transform.
  const float scale = rng.uniform(0.55f, 0.75f) * size;
  const float ox = (size - scale) * 0.5f + rng.uniform(-max_jitter, max_jitter);
  const float oy = (size - scale) * 0.5f + rng.uniform(-max_jitter, max_jitter);
  const float thickness = rng.uniform(0.055f, 0.095f);  // in glyph units
  const float intensity = rng.uniform(0.75f, 1.0f);
  const float slant = rng.uniform(-0.12f, 0.12f);  // horizontal shear

  const std::uint8_t mask = kDigitMask[static_cast<std::size_t>(digit)];
  Tensor image({image_size, image_size});
  for (std::int64_t y = 0; y < image_size; ++y) {
    for (std::int64_t x = 0; x < image_size; ++x) {
      // Map pixel back into glyph coordinates (inverse shear + scale).
      const float gy = (static_cast<float>(y) - oy) / scale;
      const float gx =
          (static_cast<float>(x) - ox) / scale - slant * (gy - 0.5f);
      float best = 1e9f;
      for (std::size_t s = 0; s < kSegments.size(); ++s) {
        if (!(mask >> s & 1)) continue;
        best = std::min(best, point_segment_distance(gx, gy, kSegments[s]));
      }
      // Smooth stroke falloff.
      float v = 0.0f;
      if (best < thickness) {
        v = intensity;
      } else if (best < 2.0f * thickness) {
        v = intensity * (2.0f - best / thickness);
      }
      v += rng.normal(0.0f, noise_stddev);
      image[y * image_size + x] = std::clamp(v, 0.0f, 1.0f);
    }
  }
  return image;
}

Dataset make_synthetic_mnist(const MnistConfig& config) {
  TEAMNET_CHECK(config.num_samples > 0);
  Rng rng(config.seed);
  const std::int64_t n = config.num_samples;
  const std::int64_t features = config.image_size * config.image_size;

  Dataset out;
  out.num_classes = 10;
  out.images = Tensor({n, features});
  out.labels.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const int digit = config.balanced ? static_cast<int>(i % 10)
                                      : rng.randint(0, 9);
    out.labels[static_cast<std::size_t>(i)] = digit;
    Tensor img = render_digit(digit, config.image_size, rng,
                              config.noise_stddev, config.max_jitter);
    std::copy(img.values().begin(), img.values().end(),
              out.images.data() + i * features);
  }
  out.shuffle(rng);
  out.validate();
  return out;
}

}  // namespace teamnet::data
