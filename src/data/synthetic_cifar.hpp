// Procedural stand-in for CIFAR-10 (DESIGN.md §1.1), downsized to SxSx3.
//
// The 10 classes keep CIFAR-10's ids and its semantic super-cluster
// structure, which Figure 9 of the paper depends on:
//   machines: 0 airplane, 1 automobile, 8 ship, 9 truck
//     - cool blue/grey palettes, gradient sky/road/sea backgrounds,
//       geometric (rectangular) foreground shapes
//   animals:  2 bird, 3 cat, 4 deer, 5 dog, 6 frog, 7 horse
//     - warm organic palettes, green/brown textured backgrounds,
//       elliptical blob foregrounds
// Classes inside a super-cluster share statistics, so an expert that learns
// one machine class finds the others familiar — exactly the structure that
// lets TeamNet's experts specialize along the machine/animal split.
#pragma once

#include <string>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace teamnet::data {

struct CifarConfig {
  std::int64_t num_samples = 2048;
  std::int64_t image_size = 16;  ///< images are [3, size, size]
  float noise_stddev = 0.06f;
  std::uint64_t seed = 2;
  bool balanced = true;
};

Dataset make_synthetic_cifar(const CifarConfig& config);

/// Renders one sample of `cls` (exposed for tests/examples).
Tensor render_cifar_sample(int cls, std::int64_t image_size, Rng& rng,
                           float noise_stddev);

/// CIFAR-10 class name for an id in [0, 10).
const std::string& cifar_class_name(int cls);

/// True when `cls` belongs to the "machines" super-cluster {0, 1, 8, 9}.
bool is_machine_class(int cls);

}  // namespace teamnet::data
