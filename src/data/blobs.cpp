#include "data/blobs.hpp"

#include "common/error.hpp"

namespace teamnet::data {

Dataset make_blobs(const BlobsConfig& config) {
  TEAMNET_CHECK(config.num_samples > 0 && config.num_classes > 0 &&
                config.dims > 0);
  Rng rng(config.seed);
  Tensor centers = Tensor::randn(
      {config.num_classes, config.dims}, rng, 0.0f, config.center_scale);

  Dataset out;
  out.num_classes = static_cast<int>(config.num_classes);
  out.images = Tensor({config.num_samples, config.dims});
  out.labels.resize(static_cast<std::size_t>(config.num_samples));
  for (std::int64_t i = 0; i < config.num_samples; ++i) {
    const int cls = static_cast<int>(i % config.num_classes);
    out.labels[static_cast<std::size_t>(i)] = cls;
    for (std::int64_t d = 0; d < config.dims; ++d) {
      out.images[i * config.dims + d] =
          centers[cls * config.dims + d] + rng.normal(0.0f, config.noise_stddev);
    }
  }
  out.shuffle(rng);
  out.validate();
  return out;
}

}  // namespace teamnet::data
