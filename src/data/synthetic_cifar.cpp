#include "data/synthetic_cifar.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hpp"

namespace teamnet::data {

namespace {

struct Rgb {
  float r, g, b;
};

/// Unit-coordinate painter over a [3, S, S] tensor.
class Canvas {
 public:
  Canvas(std::int64_t size, Rng& rng) : size_(size), rng_(rng), img_({3, size, size}) {}

  Tensor finish(float noise_stddev) {
    for (auto& v : img_.values()) {
      v = std::clamp(v + rng_.normal(0.0f, noise_stddev), 0.0f, 1.0f);
    }
    return img_;
  }

  /// Vertical gradient from `top` to `bottom` over rows [y0, y1) (unit).
  void vertical_gradient(float y0, float y1, Rgb top, Rgb bottom) {
    const std::int64_t r0 = row(y0), r1 = row(y1);
    for (std::int64_t y = r0; y < r1; ++y) {
      const float t = r1 > r0 + 1
                          ? static_cast<float>(y - r0) / static_cast<float>(r1 - r0 - 1)
                          : 0.0f;
      const Rgb c = {top.r + t * (bottom.r - top.r), top.g + t * (bottom.g - top.g),
                     top.b + t * (bottom.b - top.b)};
      for (std::int64_t x = 0; x < size_; ++x) set(x, y, c);
    }
  }

  /// Per-pixel mottled fill (organic texture) over the whole canvas.
  void textured_fill(Rgb base, float variation) {
    for (std::int64_t y = 0; y < size_; ++y) {
      for (std::int64_t x = 0; x < size_; ++x) {
        const float v = rng_.uniform(-variation, variation);
        set(x, y, {base.r + v, base.g + v * 0.7f, base.b + v * 0.4f});
      }
    }
  }

  void fill_rect(float x0, float y0, float x1, float y1, Rgb c) {
    for (std::int64_t y = row(y0); y < row(y1); ++y) {
      for (std::int64_t x = col(x0); x < col(x1); ++x) set(x, y, c);
    }
  }

  void fill_ellipse(float cx, float cy, float rx, float ry, Rgb c) {
    for (std::int64_t y = 0; y < size_; ++y) {
      for (std::int64_t x = 0; x < size_; ++x) {
        const float dx = (unit(x) - cx) / rx;
        const float dy = (unit(y) - cy) / ry;
        if (dx * dx + dy * dy <= 1.0f) set(x, y, c);
      }
    }
  }

  void fill_triangle_up(float cx, float base_y, float half_w, float height,
                        Rgb c) {
    for (std::int64_t y = row(base_y - height); y < row(base_y); ++y) {
      const float frac = (base_y - unit(y)) / height;  // 1 at apex, 0 at base
      const float hw = half_w * (1.0f - frac);
      for (std::int64_t x = col(cx - hw); x < col(cx + hw); ++x) set(x, y, c);
    }
  }

 private:
  std::int64_t row(float y) const {
    return std::clamp<std::int64_t>(
        static_cast<std::int64_t>(std::lround(y * static_cast<float>(size_))), 0,
        size_);
  }
  std::int64_t col(float x) const { return row(x); }
  float unit(std::int64_t p) const {
    return (static_cast<float>(p) + 0.5f) / static_cast<float>(size_);
  }
  void set(std::int64_t x, std::int64_t y, Rgb c) {
    if (x < 0 || x >= size_ || y < 0 || y >= size_) return;
    img_[0 * size_ * size_ + y * size_ + x] = std::clamp(c.r, 0.0f, 1.0f);
    img_[1 * size_ * size_ + y * size_ + x] = std::clamp(c.g, 0.0f, 1.0f);
    img_[2 * size_ * size_ + y * size_ + x] = std::clamp(c.b, 0.0f, 1.0f);
  }

  std::int64_t size_;
  Rng& rng_;
  Tensor img_;
};

Rgb jitter(Rgb c, Rng& rng, float amount = 0.08f) {
  return {c.r + rng.uniform(-amount, amount), c.g + rng.uniform(-amount, amount),
          c.b + rng.uniform(-amount, amount)};
}

const std::array<std::string, 10> kClassNames = {
    "airplane", "automobile", "bird", "cat",  "deer",
    "dog",      "frog",       "horse", "ship", "truck"};

// ---- machine renderers ------------------------------------------------------

void draw_airplane(Canvas& canvas, Rng& rng) {
  canvas.vertical_gradient(0.0f, 1.0f, jitter({0.45f, 0.65f, 0.95f}, rng),
                           jitter({0.70f, 0.82f, 0.98f}, rng));
  const float cy = rng.uniform(0.35f, 0.55f);
  const float cx = rng.uniform(0.40f, 0.60f);
  const Rgb body = jitter({0.82f, 0.84f, 0.88f}, rng);
  canvas.fill_ellipse(cx, cy, rng.uniform(0.30f, 0.40f), 0.07f, body);   // fuselage
  canvas.fill_rect(cx - 0.08f, cy - 0.22f, cx + 0.08f, cy + 0.22f, body);  // wings
  canvas.fill_rect(cx + 0.24f, cy - 0.12f, cx + 0.32f, cy, body);          // tail
}

void draw_automobile(Canvas& canvas, Rng& rng) {
  canvas.vertical_gradient(0.0f, 0.65f, jitter({0.55f, 0.70f, 0.92f}, rng),
                           jitter({0.70f, 0.80f, 0.95f}, rng));
  canvas.vertical_gradient(0.65f, 1.0f, jitter({0.45f, 0.45f, 0.48f}, rng),
                           jitter({0.35f, 0.35f, 0.38f}, rng));  // road
  const Rgb paint = jitter({0.75f, 0.20f, 0.22f}, rng, 0.15f);
  const float cx = rng.uniform(0.42f, 0.58f);
  canvas.fill_rect(cx - 0.30f, 0.50f, cx + 0.30f, 0.68f, paint);          // body
  canvas.fill_rect(cx - 0.16f, 0.38f, cx + 0.16f, 0.52f, paint);          // cabin
  const Rgb wheel = {0.08f, 0.08f, 0.10f};
  canvas.fill_ellipse(cx - 0.18f, 0.70f, 0.07f, 0.07f, wheel);
  canvas.fill_ellipse(cx + 0.18f, 0.70f, 0.07f, 0.07f, wheel);
}

void draw_ship(Canvas& canvas, Rng& rng) {
  canvas.vertical_gradient(0.0f, 0.55f, jitter({0.55f, 0.72f, 0.95f}, rng),
                           jitter({0.65f, 0.80f, 0.97f}, rng));
  canvas.vertical_gradient(0.55f, 1.0f, jitter({0.10f, 0.25f, 0.55f}, rng),
                           jitter({0.05f, 0.15f, 0.40f}, rng));  // sea
  const Rgb hull = jitter({0.50f, 0.52f, 0.58f}, rng);
  const float cx = rng.uniform(0.42f, 0.58f);
  canvas.fill_rect(cx - 0.28f, 0.50f, cx + 0.28f, 0.64f, hull);           // hull
  canvas.fill_rect(cx - 0.12f, 0.36f, cx + 0.12f, 0.52f,
                   jitter({0.85f, 0.85f, 0.88f}, rng));                   // cabin
  canvas.fill_rect(cx - 0.02f, 0.20f, cx + 0.02f, 0.38f, {0.30f, 0.30f, 0.32f});
}

void draw_truck(Canvas& canvas, Rng& rng) {
  canvas.vertical_gradient(0.0f, 0.60f, jitter({0.55f, 0.70f, 0.92f}, rng),
                           jitter({0.68f, 0.78f, 0.94f}, rng));
  canvas.vertical_gradient(0.60f, 1.0f, jitter({0.42f, 0.42f, 0.45f}, rng),
                           jitter({0.33f, 0.33f, 0.36f}, rng));
  const Rgb box = jitter({0.80f, 0.78f, 0.30f}, rng, 0.12f);
  const float cx = rng.uniform(0.42f, 0.58f);
  canvas.fill_rect(cx - 0.32f, 0.30f, cx + 0.12f, 0.66f, box);            // cargo
  canvas.fill_rect(cx + 0.12f, 0.44f, cx + 0.32f, 0.66f,
                   jitter({0.25f, 0.35f, 0.60f}, rng));                   // cab
  const Rgb wheel = {0.08f, 0.08f, 0.10f};
  canvas.fill_ellipse(cx - 0.20f, 0.68f, 0.07f, 0.07f, wheel);
  canvas.fill_ellipse(cx + 0.20f, 0.68f, 0.07f, 0.07f, wheel);
}

// ---- animal renderers -------------------------------------------------------

void organic_background(Canvas& canvas, Rng& rng, Rgb base) {
  canvas.textured_fill(jitter(base, rng, 0.06f), 0.10f);
}

void draw_bird(Canvas& canvas, Rng& rng) {
  organic_background(canvas, rng, {0.35f, 0.55f, 0.25f});
  const float cx = rng.uniform(0.40f, 0.60f), cy = rng.uniform(0.40f, 0.55f);
  const Rgb body = jitter({0.70f, 0.45f, 0.25f}, rng, 0.12f);
  canvas.fill_ellipse(cx, cy, 0.16f, 0.11f, body);                        // body
  canvas.fill_ellipse(cx + 0.14f, cy - 0.08f, 0.07f, 0.06f, body);        // head
  canvas.fill_triangle_up(cx - 0.04f, cy + 0.02f, 0.10f, 0.14f,
                          jitter({0.50f, 0.30f, 0.18f}, rng));            // wing
}

void draw_cat(Canvas& canvas, Rng& rng) {
  organic_background(canvas, rng, {0.40f, 0.50f, 0.28f});
  const float cx = rng.uniform(0.40f, 0.60f), cy = rng.uniform(0.50f, 0.62f);
  const Rgb fur = jitter({0.55f, 0.42f, 0.30f}, rng, 0.12f);
  canvas.fill_ellipse(cx, cy, 0.20f, 0.16f, fur);                         // body
  canvas.fill_ellipse(cx, cy - 0.22f, 0.11f, 0.10f, fur);                 // head
  canvas.fill_triangle_up(cx - 0.07f, cy - 0.28f, 0.04f, 0.08f, fur);     // ears
  canvas.fill_triangle_up(cx + 0.07f, cy - 0.28f, 0.04f, 0.08f, fur);
}

void draw_deer(Canvas& canvas, Rng& rng) {
  organic_background(canvas, rng, {0.38f, 0.48f, 0.22f});
  const float cx = rng.uniform(0.42f, 0.58f);
  const Rgb hide = jitter({0.58f, 0.40f, 0.22f}, rng, 0.10f);
  canvas.fill_ellipse(cx, 0.45f, 0.18f, 0.12f, hide);                     // body
  canvas.fill_ellipse(cx + 0.16f, 0.30f, 0.07f, 0.07f, hide);             // head
  canvas.fill_rect(cx - 0.12f, 0.52f, cx - 0.07f, 0.80f, hide);           // legs
  canvas.fill_rect(cx + 0.07f, 0.52f, cx + 0.12f, 0.80f, hide);
  canvas.fill_rect(cx + 0.18f, 0.12f, cx + 0.21f, 0.26f,
                   jitter({0.40f, 0.30f, 0.18f}, rng));                   // antler
}

void draw_dog(Canvas& canvas, Rng& rng) {
  organic_background(canvas, rng, {0.42f, 0.46f, 0.26f});
  const float cx = rng.uniform(0.40f, 0.60f), cy = rng.uniform(0.50f, 0.60f);
  const Rgb coat = jitter({0.48f, 0.34f, 0.20f}, rng, 0.14f);
  canvas.fill_ellipse(cx, cy, 0.22f, 0.14f, coat);                        // body
  canvas.fill_ellipse(cx - 0.20f, cy - 0.12f, 0.10f, 0.09f, coat);        // head
  canvas.fill_ellipse(cx - 0.26f, cy - 0.20f, 0.04f, 0.06f, coat);        // ear
  canvas.fill_rect(cx + 0.18f, cy - 0.10f, cx + 0.24f, cy,
                   jitter({0.40f, 0.28f, 0.16f}, rng));                   // tail
}

void draw_frog(Canvas& canvas, Rng& rng) {
  organic_background(canvas, rng, {0.25f, 0.45f, 0.30f});
  const float cx = rng.uniform(0.42f, 0.58f), cy = rng.uniform(0.55f, 0.65f);
  const Rgb skin = jitter({0.30f, 0.65f, 0.25f}, rng, 0.10f);
  canvas.fill_ellipse(cx, cy, 0.24f, 0.13f, skin);                        // body
  canvas.fill_ellipse(cx - 0.10f, cy - 0.12f, 0.05f, 0.05f, skin);        // eyes
  canvas.fill_ellipse(cx + 0.10f, cy - 0.12f, 0.05f, 0.05f, skin);
  canvas.fill_ellipse(cx - 0.22f, cy + 0.10f, 0.07f, 0.04f, skin);        // legs
  canvas.fill_ellipse(cx + 0.22f, cy + 0.10f, 0.07f, 0.04f, skin);
}

void draw_horse(Canvas& canvas, Rng& rng) {
  organic_background(canvas, rng, {0.40f, 0.52f, 0.24f});
  const float cx = rng.uniform(0.42f, 0.58f);
  const Rgb coat = jitter({0.42f, 0.28f, 0.18f}, rng, 0.10f);
  canvas.fill_ellipse(cx, 0.42f, 0.22f, 0.13f, coat);                     // body
  canvas.fill_ellipse(cx + 0.20f, 0.26f, 0.08f, 0.07f, coat);             // head
  canvas.fill_rect(cx + 0.16f, 0.18f, cx + 0.20f, 0.30f, coat);           // neck
  canvas.fill_rect(cx - 0.16f, 0.50f, cx - 0.11f, 0.85f, coat);           // legs
  canvas.fill_rect(cx - 0.02f, 0.50f, cx + 0.03f, 0.85f, coat);
  canvas.fill_rect(cx + 0.12f, 0.50f, cx + 0.17f, 0.85f, coat);
}

}  // namespace

const std::string& cifar_class_name(int cls) {
  TEAMNET_CHECK(cls >= 0 && cls < 10);
  return kClassNames[static_cast<std::size_t>(cls)];
}

bool is_machine_class(int cls) {
  return cls == 0 || cls == 1 || cls == 8 || cls == 9;
}

Tensor render_cifar_sample(int cls, std::int64_t image_size, Rng& rng,
                           float noise_stddev) {
  TEAMNET_CHECK(cls >= 0 && cls < 10 && image_size >= 8);
  Canvas canvas(image_size, rng);
  switch (cls) {
    case 0: draw_airplane(canvas, rng); break;
    case 1: draw_automobile(canvas, rng); break;
    case 2: draw_bird(canvas, rng); break;
    case 3: draw_cat(canvas, rng); break;
    case 4: draw_deer(canvas, rng); break;
    case 5: draw_dog(canvas, rng); break;
    case 6: draw_frog(canvas, rng); break;
    case 7: draw_horse(canvas, rng); break;
    case 8: draw_ship(canvas, rng); break;
    case 9: draw_truck(canvas, rng); break;
    default: throw InvalidArgument("bad class id");
  }
  return canvas.finish(noise_stddev);
}

Dataset make_synthetic_cifar(const CifarConfig& config) {
  TEAMNET_CHECK(config.num_samples > 0);
  Rng rng(config.seed);
  const std::int64_t n = config.num_samples;
  const std::int64_t s = config.image_size;

  Dataset out;
  out.num_classes = 10;
  out.images = Tensor({n, 3, s, s});
  out.labels.resize(static_cast<std::size_t>(n));
  const std::int64_t sample_elems = 3 * s * s;
  for (std::int64_t i = 0; i < n; ++i) {
    const int cls = config.balanced ? static_cast<int>(i % 10) : rng.randint(0, 9);
    out.labels[static_cast<std::size_t>(i)] = cls;
    Tensor img = render_cifar_sample(cls, s, rng, config.noise_stddev);
    std::copy(img.values().begin(), img.values().end(),
              out.images.data() + i * sample_elems);
  }
  out.shuffle(rng);
  out.validate();
  return out;
}

}  // namespace teamnet::data
