#include "obs/trace.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace teamnet::obs {

namespace {

/// Per-track buffer cap. A saturated track stops recording (events are
/// counted as dropped, never silently reordered) so a runaway emitter
/// cannot OOM a long bench.
constexpr std::size_t kMaxEventsPerTrack = 1u << 20;

struct Binding {
  int track = -1;
  TimeSource clock;
};

Binding& binding() {
  static thread_local Binding b;
  return b;
}

double bound_now() {
  const Binding& b = binding();
  // Unbound threads never reach here (callers check track >= 0), but keep
  // the fallback deterministic rather than UB.
  return b.clock ? b.clock() : 0.0;
}

}  // namespace

TraceArgs& TraceArgs::arg(const char* key, std::int64_t value) {
  if (!body_.empty()) body_ += ", ";
  body_ += '"';
  body_ += json_escape(key);
  body_ += "\": ";
  body_ += std::to_string(value);
  return *this;
}

TraceArgs& TraceArgs::arg(const char* key, double value) {
  if (!body_.empty()) body_ += ", ";
  body_ += '"';
  body_ += json_escape(key);
  body_ += "\": ";
  body_ += json_double(value);
  return *this;
}

TraceArgs& TraceArgs::arg(const char* key, const std::string& value) {
  if (!body_.empty()) body_ += ", ";
  body_ += '"';
  body_ += json_escape(key);
  body_ += "\": \"";
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

std::string TraceArgs::json() const {
  if (body_.empty()) return {};
  return "{" + body_ + "}";
}

Tracer& Tracer::instance() {
  // Leaked on purpose: emissions and the atexit trace writer may run during
  // static destruction.
  static Tracer* const tracer = new Tracer();
  return *tracer;
}

void Tracer::start() {
  detail::g_trace_active.store(true, std::memory_order_relaxed);
}

void Tracer::set_scheduler_events(bool on) {
  detail::g_sched_events.store(on, std::memory_order_relaxed);
}

void Tracer::reset_for_testing() {
  detail::g_trace_active.store(false, std::memory_order_relaxed);
  detail::g_sched_events.store(false, std::memory_order_relaxed);
  epoch_base_.store(0, std::memory_order_relaxed);
  MutexLock lock(registry_mutex_);
  tracks_.clear();
  epoch_names_.clear();
  drop_warned_.store(false, std::memory_order_relaxed);
}

void Tracer::begin_epoch(const std::string& name) {
  if (!active()) return;
  const int base =
      epoch_base_.load(std::memory_order_relaxed) + kTrackStride;
  epoch_base_.store(base, std::memory_order_relaxed);
  MutexLock lock(registry_mutex_);
  epoch_names_[base / kTrackStride] = name;
}

Tracer::Track& Tracer::track(int id) {
  MutexLock lock(registry_mutex_);
  auto& slot = tracks_[id];
  if (!slot) slot = std::make_unique<Track>();
  return *slot;
}

void Tracer::append(int track_id, TraceEvent event) {
  // Callers pass raw node ids; the current epoch namespaces them so
  // sequential scenarios never share a (pid, tid) row.
  track_id += epoch_base_.load(std::memory_order_relaxed);
  Track& t = track(track_id);
  bool warn = false;
  std::int64_t dropped_total = 0;
  {
    MutexLock lock(t.mutex);
    if (t.events.size() >= kMaxEventsPerTrack) {
      ++t.dropped;
      dropped_total = t.dropped;
      warn = !drop_warned_.exchange(true, std::memory_order_relaxed);
    } else {
      t.events.push_back(std::move(event));
    }
  }
  if (dropped_total > 0) {
    MetricsRegistry::instance().counter("obs.trace.dropped_events").increment();
  }
  if (warn) {
    // Outside the track lock — the log sink mutex and track mutexes are
    // both leaves; never hold one while taking the other.
    LOG_WARN("trace buffer saturated, dropping events "
             << log::Fields()
                    .kv("track", track_id)
                    .kv("cap", static_cast<long long>(kMaxEventsPerTrack)));
  }
}

void Tracer::set_track_name(int track_id, const std::string& name) {
  track_id += epoch_base_.load(std::memory_order_relaxed);
  Track& t = track(track_id);
  MutexLock lock(t.mutex);
  t.name = name;
}

void Tracer::instant_at(int track_id, double ts_s, const char* name,
                        const TraceArgs& args) {
  TraceEvent e;
  e.ts_us = ts_s * 1e6;
  e.ph = 'i';
  e.name = name;
  e.args = args.json();
  append(track_id, std::move(e));
}

void Tracer::counter_at(int track_id, double ts_s, const char* name,
                        double value) {
  TraceEvent e;
  e.ts_us = ts_s * 1e6;
  e.ph = 'C';
  e.name = name;
  e.args = "{\"value\": " + json_double(value) + "}";
  append(track_id, std::move(e));
}

void Tracer::begin_at(int track_id, double ts_s, const char* name,
                      const TraceArgs* args) {
  TraceEvent e;
  e.ts_us = ts_s * 1e6;
  e.ph = 'B';
  e.name = name;
  if (args != nullptr) e.args = args->json();
  append(track_id, std::move(e));
}

void Tracer::end_at(int track_id, double ts_s) {
  TraceEvent e;
  e.ts_us = ts_s * 1e6;
  e.ph = 'E';
  append(track_id, std::move(e));
}

void Tracer::flow_at(int track_id, double ts_s, char ph, const char* name,
                     std::int64_t id) {
  TraceEvent e;
  e.ts_us = ts_s * 1e6;
  e.ph = ph;
  e.name = name;
  e.flow_id = id;
  append(track_id, std::move(e));
}

std::int64_t Tracer::dropped_events() const {
  std::int64_t total = 0;
  MutexLock lock(registry_mutex_);
  for (const auto& [id, t] : tracks_) {
    MutexLock track_lock(t->mutex);
    total += t->dropped;
  }
  return total;
}

std::string Tracer::to_json() const {
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  os << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 0, \"tid\": 0, "
        "\"args\": {\"name\": \"teamnet\"}}";
  MutexLock lock(registry_mutex_);
  // One Perfetto process row per epoch (= scenario run), ascending pid.
  for (const auto& [pid, name] : epoch_names_) {
    os << ",\n{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " << pid
       << ", \"tid\": 0, \"args\": {\"name\": \"" << json_escape(name)
       << "\"}}";
  }
  // std::map iteration = ascending real track id, i.e. grouped by epoch;
  // events in emission order.
  for (const auto& [id, t] : tracks_) {
    const int pid = id / kTrackStride;
    const int tid = id % kTrackStride;
    MutexLock track_lock(t->mutex);
    if (!t->name.empty()) {
      os << ",\n{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " << pid
         << ", \"tid\": " << tid << ", \"args\": {\"name\": \""
         << json_escape(t->name) << "\"}}";
    }
    for (const TraceEvent& e : t->events) {
      os << ",\n{\"ph\": \"" << e.ph << "\", \"pid\": " << pid
         << ", \"tid\": " << tid << ", \"ts\": " << json_double(e.ts_us);
      if (!e.name.empty()) {
        os << ", \"name\": \"" << json_escape(e.name) << "\"";
      }
      if (e.ph == 'i') {
        os << ", \"s\": \"t\"";  // thread-scoped instant
      }
      if (e.ph == 's' || e.ph == 'f') {
        // Chrome flow events need a category + binding id; "bp": "e" binds
        // the finish to its ENCLOSING slice (the receiver's span).
        os << ", \"cat\": \"flow\", \"id\": " << e.flow_id;
        if (e.ph == 'f') os << ", \"bp\": \"e\"";
      }
      if (!e.args.empty()) {
        os << ", \"args\": " << e.args;
      }
      os << "}";
    }
  }
  os << "\n]}\n";
  return os.str();
}

void Tracer::write(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os.good()) {
    throw Error("cannot open --trace output file: " + path);
  }
  os << to_json();
  os.flush();
  if (!os.good()) {
    throw Error("failed writing --trace output file: " + path);
  }
}

TraceTrack::TraceTrack(int track, TimeSource clock, const std::string& name) {
  Binding& b = binding();
  saved_track_ = b.track;
  saved_clock_ = std::move(b.clock);
  b.track = track;
  b.clock = std::move(clock);
  if (Tracer::active() && !name.empty()) {
    Tracer::instance().set_track_name(track, name);
  }
}

TraceTrack::~TraceTrack() {
  Binding& b = binding();
  b.track = saved_track_;
  b.clock = std::move(saved_clock_);
}

int bound_track() { return binding().track; }

namespace detail {

void begin_slow(const char* name, const TraceArgs* args, bool* live,
                int* track) {
  const Binding& b = binding();
  if (b.track < 0) return;
  Tracer::instance().begin_at(b.track, bound_now(), name, args);
  *live = true;
  *track = b.track;
}

void end_slow(int track) {
  Tracer::instance().end_at(track, bound_now());
}

void instant_slow(const char* name, const TraceArgs* args) {
  const Binding& b = binding();
  if (b.track < 0) return;
  Tracer::instance().instant_at(b.track, bound_now(), name,
                                args != nullptr ? *args : TraceArgs());
}

void counter_slow(const char* name, double value) {
  const Binding& b = binding();
  if (b.track < 0) return;
  Tracer::instance().counter_at(b.track, bound_now(), name, value);
}

void flow_slow(char ph, const char* name, std::int64_t id) {
  const Binding& b = binding();
  if (b.track < 0) return;
  Tracer::instance().flow_at(b.track, bound_now(), ph, name, id);
}

}  // namespace detail
}  // namespace teamnet::obs
