#include "obs/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace teamnet::obs {

namespace {

constexpr double kUnset = std::numeric_limits<double>::quiet_NaN();

bool is_set(double t) { return !std::isnan(t); }

}  // namespace

const char* to_string(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::arrival:
      return "arrival";
    case QueryPhase::dispatch:
      return "dispatch";
    case QueryPhase::broadcast_end:
      return "broadcast_end";
    case QueryPhase::local_compute_end:
      return "local_compute_end";
    case QueryPhase::gather_end:
      return "gather_end";
    case QueryPhase::complete:
      return "complete";
  }
  return "?";
}

const char* to_string(WorkerMark mark) {
  switch (mark) {
    case WorkerMark::sent:
      return "sent";
    case WorkerMark::request_recv:
      return "request_recv";
    case WorkerMark::compute_begin:
      return "compute_begin";
    case WorkerMark::compute_end:
      return "compute_end";
    case WorkerMark::reply_sent:
      return "reply_sent";
    case WorkerMark::reply_recv:
      return "reply_recv";
  }
  return "?";
}

WorkerLane::WorkerLane() { t.fill(kUnset); }

bool WorkerLane::has(WorkerMark mark) const {
  return is_set(t[static_cast<std::size_t>(mark)]);
}

QueryTimeline::QueryTimeline() { t.fill(kUnset); }

bool QueryTimeline::has(QueryPhase phase) const {
  return is_set(t[static_cast<std::size_t>(phase)]);
}

WorkerLane& QueryTimeline::lane(int worker) {
  auto it = std::lower_bound(
      lanes.begin(), lanes.end(), worker,
      [](const WorkerLane& lane, int w) { return lane.worker < w; });
  if (it != lanes.end() && it->worker == worker) return *it;
  WorkerLane fresh;
  fresh.worker = worker;
  return *lanes.insert(it, fresh);
}

const WorkerLane* QueryTimeline::find_lane(int worker) const {
  auto it = std::lower_bound(
      lanes.begin(), lanes.end(), worker,
      [](const WorkerLane& lane, int w) { return lane.worker < w; });
  if (it != lanes.end() && it->worker == worker) return &*it;
  return nullptr;
}

TimelineRecorder& TimelineRecorder::instance() {
  // Leaked on purpose, mirroring the Tracer: emission may race static
  // destruction in detached-thread shutdown paths.
  static TimelineRecorder* const recorder = new TimelineRecorder();
  return *recorder;
}

void TimelineRecorder::start() {
  MutexLock lock(mutex_);
  queries_.clear();
  have_pending_arrival_ = false;
  detail::g_timeline_active.store(true, std::memory_order_relaxed);
}

void TimelineRecorder::stop() {
  detail::g_timeline_active.store(false, std::memory_order_relaxed);
}

std::vector<QueryTimeline> TimelineRecorder::take() {
  MutexLock lock(mutex_);
  std::vector<QueryTimeline> out = std::move(queries_);
  queries_.clear();
  have_pending_arrival_ = false;
  return out;
}

QueryTimeline& TimelineRecorder::query(std::int64_t qid) {
  // Queries begin in ascending qid order (the master's ids are monotone),
  // so the common case is "last element or append"; worker marks for an
  // in-flight query hit the tail as well.
  auto it = std::lower_bound(
      queries_.begin(), queries_.end(), qid,
      [](const QueryTimeline& q, std::int64_t id) { return q.qid < id; });
  if (it != queries_.end() && it->qid == qid) return *it;
  QueryTimeline fresh;
  fresh.qid = qid;
  return *queries_.insert(it, std::move(fresh));
}

void TimelineRecorder::note_arrival(double t_s) {
  MutexLock lock(mutex_);
  have_pending_arrival_ = true;
  pending_arrival_s_ = t_s;
}

void TimelineRecorder::mark(std::int64_t qid, QueryPhase phase, double t_s) {
  MutexLock lock(mutex_);
  QueryTimeline& q = query(qid);
  if (phase == QueryPhase::dispatch && !q.has(QueryPhase::arrival)) {
    q.t[static_cast<std::size_t>(QueryPhase::arrival)] =
        have_pending_arrival_ ? pending_arrival_s_ : t_s;
    have_pending_arrival_ = false;
  }
  double& slot = q.t[static_cast<std::size_t>(phase)];
  if (!is_set(slot)) slot = t_s;
}

void TimelineRecorder::mark_worker(std::int64_t qid, int worker,
                                   WorkerMark mark, double t_s) {
  MutexLock lock(mutex_);
  WorkerLane& lane = query(qid).lane(worker);
  double& slot = lane.t[static_cast<std::size_t>(mark)];
  if (!is_set(slot)) slot = t_s;
}

void TimelineRecorder::set_degradation(std::int64_t qid, int level) {
  MutexLock lock(mutex_);
  query(qid).degradation = level;
}

std::int64_t TimelineRecorder::recorded_queries() const {
  MutexLock lock(mutex_);
  return static_cast<std::int64_t>(queries_.size());
}

namespace {

/// Trace instant carrying the (qid, lane, seq) triple check_trace.py
/// validates ordering on: lane -1 = master phase marks, lane >= 0 = that
/// worker's marks; seq is the enum value, strictly increasing per lane.
/// "run" is the tracer epoch — sequential scenario runs in one trace each
/// restart qid at 1, so the validator scopes lanes per (run, qid, lane).
void qtl_instant(std::int64_t qid, int lane, int seq, const char* what) {
  trace_instant("qtl", [&] {
    return TraceArgs()
        .arg("run", Tracer::instance().current_epoch())
        .arg("qid", qid)
        .arg("lane", lane)
        .arg("seq", seq)
        .arg("mark", what);
  });
}

}  // namespace

void qtl_master_mark(std::int64_t qid, QueryPhase phase, double t_s) {
  if (TimelineRecorder::active()) {
    TimelineRecorder::instance().mark(qid, phase, t_s);
  }
  if (Tracer::active()) {
    qtl_instant(qid, -1, static_cast<int>(phase), to_string(phase));
  }
}

void qtl_worker_mark(std::int64_t qid, int worker, WorkerMark mark,
                     double t_s) {
  if (TimelineRecorder::active()) {
    TimelineRecorder::instance().mark_worker(qid, worker, mark, t_s);
  }
  if (Tracer::active()) {
    qtl_instant(qid, worker, static_cast<int>(mark), to_string(mark));
  }
}

void qtl_degradation(std::int64_t qid, int level) {
  if (TimelineRecorder::active()) {
    TimelineRecorder::instance().set_degradation(qid, level);
  }
}

}  // namespace teamnet::obs
