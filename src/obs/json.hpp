// Minimal byte-stable JSON emission helpers shared by the obs sinks.
//
// Doubles use %.17g — enough digits to round-trip any IEEE double — so a
// deterministic (same-seed discrete_event) run serializes to a
// byte-identical file. Same convention as `bench --json`.
#pragma once

#include <cstdio>
#include <string>

namespace teamnet::obs {

inline std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace teamnet::obs
