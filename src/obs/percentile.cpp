#include "obs/percentile.hpp"

#include <algorithm>
#include <cmath>

namespace teamnet::obs {

std::size_t nearest_rank(std::size_t n, double pct) {
  if (n == 0) return 0;
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  return std::min(rank, n);
}

double nearest_rank_percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[nearest_rank(values.size(), pct) - 1];
}

}  // namespace teamnet::obs
