#include "obs/critpath.hpp"

#include <algorithm>
#include <cmath>

namespace teamnet::obs {

namespace {

/// One candidate point on a chain: the instant `phase` ends. A NaN time
/// (mark not observed) merges its slice into the following one.
struct ChainPoint {
  double t = 0.0;
  bool present = false;
  AttrPhase phase = AttrPhase::unattributed;
};

ChainPoint point(const QueryTimeline& tl, QueryPhase phase, AttrPhase attr) {
  return {tl.has(phase) ? tl.at(phase) : 0.0, tl.has(phase), attr};
}

ChainPoint point(const WorkerLane& lane, WorkerMark mark, AttrPhase attr) {
  return {lane.has(mark) ? lane.at(mark) : 0.0, lane.has(mark), attr};
}

/// Folds a chain of points into per-phase nanosecond slices. Points are
/// clamped monotone into [begin_ns, end_ns], so the slice sum telescopes
/// to exactly end_ns - begin_ns; the interval ending at a missing point is
/// absorbed by the next present one. The final chain point must be the
/// `complete` mark (clamps to end_ns), which closes the telescope.
void fold_chain(const std::vector<ChainPoint>& points, std::int64_t begin_ns,
                std::int64_t end_ns,
                std::array<std::int64_t, kNumAttrPhases>& out,
                std::vector<PhaseSlice>* slices) {
  std::int64_t prev = begin_ns;
  for (const ChainPoint& p : points) {
    if (!p.present) continue;
    std::int64_t t = to_ns(p.t);
    t = std::clamp(t, prev, end_ns);
    const std::int64_t ns = t - prev;
    out[static_cast<std::size_t>(p.phase)] += ns;
    if (slices != nullptr) slices->push_back({p.phase, ns});
    prev = t;
  }
  // Anything between the last present point and `end_ns` is unaccounted
  // master time; callers end chains on `complete` so this only fires when
  // that mark itself is missing.
  if (prev < end_ns) {
    out[static_cast<std::size_t>(AttrPhase::unattributed)] += end_ns - prev;
    if (slices != nullptr) {
      slices->push_back({AttrPhase::unattributed, end_ns - prev});
    }
  }
}

}  // namespace

const char* to_string(AttrPhase phase) {
  switch (phase) {
    case AttrPhase::master_queue:
      return "master_queue";
    case AttrPhase::broadcast:
      return "broadcast";
    case AttrPhase::local_compute:
      return "local_compute";
    case AttrPhase::gather_wait:
      return "gather_wait";
    case AttrPhase::argmin:
      return "argmin";
    case AttrPhase::broadcast_serial:
      return "broadcast_serial";
    case AttrPhase::request_transit:
      return "request_transit";
    case AttrPhase::worker_queue:
      return "worker_queue";
    case AttrPhase::worker_compute:
      return "worker_compute";
    case AttrPhase::reply_prep:
      return "reply_prep";
    case AttrPhase::reply_transit:
      return "reply_transit";
    case AttrPhase::gather_slack:
      return "gather_slack";
    case AttrPhase::unattributed:
      return "unattributed";
  }
  return "?";
}

const char* to_string(CritKind kind) {
  switch (kind) {
    case CritKind::queueing:
      return "queueing";
    case CritKind::serialization:
      return "serialization";
    case CritKind::compute:
      return "compute";
    case CritKind::transit:
      return "transit";
    case CritKind::other:
      return "other";
  }
  return "?";
}

CritKind kind_of(AttrPhase phase) {
  switch (phase) {
    case AttrPhase::master_queue:
    case AttrPhase::worker_queue:
      return CritKind::queueing;
    case AttrPhase::broadcast:
    case AttrPhase::broadcast_serial:
    case AttrPhase::argmin:
    case AttrPhase::gather_slack:
      return CritKind::serialization;
    case AttrPhase::local_compute:
    case AttrPhase::worker_compute:
    case AttrPhase::reply_prep:
      return CritKind::compute;
    case AttrPhase::request_transit:
    case AttrPhase::reply_transit:
      return CritKind::transit;
    case AttrPhase::gather_wait:
    case AttrPhase::unattributed:
      return CritKind::other;
  }
  return CritKind::other;
}

std::int64_t to_ns(double seconds) {
  return std::llround(seconds * 1e9);
}

std::int64_t QueryAttribution::e2e_sum() const {
  std::int64_t sum = 0;
  for (std::int64_t ns : e2e_ns) sum += ns;
  return sum;
}

std::int64_t QueryAttribution::crit_sum() const {
  std::int64_t sum = 0;
  for (std::int64_t ns : crit_ns) sum += ns;
  return sum;
}

QueryAttribution attribute(const QueryTimeline& tl) {
  QueryAttribution a;
  a.qid = tl.qid;
  a.degradation = tl.degradation;

  const bool has_arrival = tl.has(QueryPhase::arrival);
  const bool has_dispatch = tl.has(QueryPhase::dispatch);
  const bool has_complete = tl.has(QueryPhase::complete);
  if ((!has_arrival && !has_dispatch) || !has_complete) {
    // Nothing to anchor the interval on: an empty (all-zero) attribution
    // keeps aggregate sums consistent.
    return a;
  }
  const double t_arrival =
      has_arrival ? tl.at(QueryPhase::arrival) : tl.at(QueryPhase::dispatch);
  a.arrival_ns = to_ns(t_arrival);
  a.complete_ns = std::max(to_ns(tl.at(QueryPhase::complete)), a.arrival_ns);
  a.total_ns = a.complete_ns - a.arrival_ns;

  // -- end-to-end partition: the master's own five consecutive slices --
  std::vector<ChainPoint> e2e{
      point(tl, QueryPhase::dispatch, AttrPhase::master_queue),
      point(tl, QueryPhase::broadcast_end, AttrPhase::broadcast),
      point(tl, QueryPhase::local_compute_end, AttrPhase::local_compute),
      point(tl, QueryPhase::gather_end, AttrPhase::gather_wait),
      point(tl, QueryPhase::complete, AttrPhase::argmin),
  };
  fold_chain(e2e, a.arrival_ns, a.complete_ns, a.e2e_ns, nullptr);

  // -- the gather's releaser: the chain whose last event the gather's
  // completion actually waited on. Candidates are the master's own expert
  // (local_compute_end) and every counted worker reply (reply_recv, a
  // master-clock read instant). Latest wins; ties prefer the local chain,
  // then the lowest worker index, for determinism.
  double release = tl.has(QueryPhase::local_compute_end)
                       ? tl.at(QueryPhase::local_compute_end)
                       : t_arrival;
  a.critical_worker = -1;
  for (const WorkerLane& lane : tl.lanes) {
    if (!lane.has(WorkerMark::reply_recv)) continue;
    if (lane.at(WorkerMark::reply_recv) > release) {
      release = lane.at(WorkerMark::reply_recv);
      a.critical_worker = lane.worker;
    }
  }

  // -- critical-path partition --
  std::vector<ChainPoint> crit;
  if (a.critical_worker < 0) {
    // The master's own expert released the gather: the critical chain is
    // the e2e chain with the post-compute wait labeled as slack.
    crit = {
        point(tl, QueryPhase::dispatch, AttrPhase::master_queue),
        point(tl, QueryPhase::broadcast_end, AttrPhase::broadcast),
        point(tl, QueryPhase::local_compute_end, AttrPhase::local_compute),
        point(tl, QueryPhase::gather_end, AttrPhase::gather_slack),
        point(tl, QueryPhase::complete, AttrPhase::argmin),
    };
  } else {
    const WorkerLane& lane = *tl.find_lane(a.critical_worker);
    const bool full_lane =
        lane.has(WorkerMark::request_recv) &&
        lane.has(WorkerMark::compute_begin) &&
        lane.has(WorkerMark::compute_end) && lane.has(WorkerMark::reply_sent);
    if (full_lane) {
      crit = {
          point(tl, QueryPhase::dispatch, AttrPhase::master_queue),
          point(lane, WorkerMark::sent, AttrPhase::broadcast_serial),
          point(lane, WorkerMark::request_recv, AttrPhase::request_transit),
          point(lane, WorkerMark::compute_begin, AttrPhase::worker_queue),
          point(lane, WorkerMark::compute_end, AttrPhase::worker_compute),
          point(lane, WorkerMark::reply_sent, AttrPhase::reply_prep),
          point(lane, WorkerMark::reply_recv, AttrPhase::reply_transit),
          point(tl, QueryPhase::gather_end, AttrPhase::gather_slack),
          point(tl, QueryPhase::complete, AttrPhase::argmin),
      };
    } else {
      // Worker-side marks were suppressed (hedged replica won, or an
      // uninstrumented worker): the dispatch→reply interval is real but
      // its interior is unobserved.
      crit = {
          point(tl, QueryPhase::dispatch, AttrPhase::master_queue),
          point(lane, WorkerMark::sent, AttrPhase::broadcast_serial),
          point(lane, WorkerMark::reply_recv, AttrPhase::unattributed),
          point(tl, QueryPhase::gather_end, AttrPhase::gather_slack),
          point(tl, QueryPhase::complete, AttrPhase::argmin),
      };
    }
  }
  fold_chain(crit, a.arrival_ns, a.complete_ns, a.crit_ns, &a.critical);

  // Dominant slice: largest critical contribution, ties to the lowest
  // phase value (master_queue first — the serial-master phases win ties).
  std::int64_t best = -1;
  for (int p = 0; p < kNumAttrPhases; ++p) {
    if (a.crit_ns[static_cast<std::size_t>(p)] > best) {
      best = a.crit_ns[static_cast<std::size_t>(p)];
      a.dominant = static_cast<AttrPhase>(p);
    }
  }

  // Straggler slack: how long before the gather's release each
  // non-critical counted reply was read.
  const std::int64_t gather_ns =
      tl.has(QueryPhase::gather_end)
          ? std::clamp(to_ns(tl.at(QueryPhase::gather_end)), a.arrival_ns,
                       a.complete_ns)
          : a.complete_ns;
  for (const WorkerLane& lane : tl.lanes) {
    if (!lane.has(WorkerMark::reply_recv) || lane.worker == a.critical_worker)
      continue;
    const std::int64_t reply =
        std::clamp(to_ns(lane.at(WorkerMark::reply_recv)), a.arrival_ns,
                   a.complete_ns);
    a.straggler_slack_ns.push_back(std::max<std::int64_t>(0, gather_ns - reply));
  }
  return a;
}

}  // namespace teamnet::obs
