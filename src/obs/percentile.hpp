// Nearest-rank percentile, shared by every latency-statistics surface.
//
// One definition of "p99" for the whole repo: the resilience sweep's
// per-query percentiles (sim/scenario.cpp), the load-generation plane's
// LatencyHistogram (load/histogram.*) and any future tail-latency report
// all go through these two functions, so a published p50/p99/p99.9 always
// means the same estimator — nearest rank, ceil(p/100 * n), 1-based,
// clamped to the sample — and two surfaces can never drift apart by an
// off-by-one in their private copies (load_test pins the resilience
// sweep's historical output against this helper byte for byte).
#pragma once

#include <cstddef>
#include <vector>

namespace teamnet::obs {

/// 1-based nearest-rank index for percentile `pct` (in (0, 100]) over `n`
/// ordered samples: ceil(pct/100 * n), clamped to [1, n]. Returns 0 only
/// when n == 0 (no sample to name).
std::size_t nearest_rank(std::size_t n, double pct);

/// Nearest-rank percentile of `values` (sorts a copy; empty -> 0.0).
/// Byte-identical to the pre-refactor sim/scenario.cpp `percentile_ms`.
double nearest_rank_percentile(std::vector<double> values, double pct);

}  // namespace teamnet::obs
