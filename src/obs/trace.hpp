// Span/event tracer emitting Chrome trace-event JSON (Perfetto-loadable).
//
// Model (DESIGN.md §10):
//   * A TRACK is one Perfetto thread row, identified by a small integer —
//     by convention the scenario node id (master = its node id, workers =
//     theirs). Events within a track are stored in emission order.
//   * Each thread BINDS itself to a track with an RAII `TraceTrack`,
//     providing the track id and a `TimeSource` — the clock events on this
//     thread are stamped with. The time-source rule: virtual node time
//     (`SimNet::node_time`) under the simulator, wall time on real TCP,
//     never mixed in one trace.
//   * `TraceSpan` records a balanced B/E pair on the calling thread's
//     bound track; `trace_instant` / `trace_counter` record point events.
//   * Code that already holds a scheduler lock (des::Engine) emits with an
//     explicit track + timestamp via `Tracer::instant_at`; calling a bound
//     TimeSource there would re-enter the engine mutex. Track mutexes are
//     LEAF locks — no other lock is ever taken while one is held.
//
// Zero-overhead-when-disabled contract: every emission entry point is an
// inline check of one relaxed atomic (`Tracer::active()`); argument
// construction is deferred behind that check via the lambda overloads, so
// an un-traced run pays one predictable branch per site and never
// allocates.
//
// Determinism: under the discrete_event scheduler at most one protocol
// thread runs at a time and every track's clock is its node's virtual
// time, so buffer order and timestamps — and therefore the serialized
// JSON, written in track-id order with %.17g timestamps — are
// byte-identical across same-seed runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/annotations.hpp"

namespace teamnet::obs {

/// Returns the current time in seconds. Monotone per bound track.
using TimeSource = std::function<double()>;

namespace detail {
inline std::atomic<bool> g_trace_active{false};
inline std::atomic<bool> g_sched_events{false};
}  // namespace detail

/// Pre-rendered JSON argument map for a trace event.
class TraceArgs {
 public:
  TraceArgs& arg(const char* key, std::int64_t value);
  TraceArgs& arg(const char* key, int value) {
    return arg(key, static_cast<std::int64_t>(value));
  }
  TraceArgs& arg(const char* key, std::size_t value) {
    return arg(key, static_cast<std::int64_t>(value));
  }
  TraceArgs& arg(const char* key, double value);
  TraceArgs& arg(const char* key, const std::string& value);

  bool empty() const { return body_.empty(); }
  /// Rendered `{"k": v, ...}` object (empty string when no args).
  std::string json() const;

 private:
  std::string body_;
};

struct TraceEvent {
  double ts_us = 0.0;  ///< microseconds on the track's TimeSource
  char ph = 'i';       ///< 'B' | 'E' | 'i' | 'C' | 's' | 'f'
  std::string name;    ///< empty for 'E'
  std::string args;    ///< pre-rendered JSON object, may be empty
  std::int64_t flow_id = -1;  ///< 's'/'f' only: the flow-binding id
};

class Tracer {
 public:
  /// Track ids are namespaced per EPOCH (one scenario run): real id =
  /// epoch * kTrackStride + caller's track. Serialization splits that back
  /// into Perfetto pid (epoch) and tid (node), so sequential scenarios in
  /// one process — each restarting virtual time at 0 — keep per-track
  /// timestamps monotone instead of jumping backwards on a shared row.
  static constexpr int kTrackStride = 1000;

  static Tracer& instance();

  /// One relaxed load — THE gate every emission entry point checks first.
  static bool active() {
    return detail::g_trace_active.load(std::memory_order_relaxed);
  }
  /// Gate for high-volume DES scheduling events (`--trace-sched`).
  static bool scheduler_events() {
    return detail::g_sched_events.load(std::memory_order_relaxed);
  }

  /// Installs the sink; emissions are recorded from this point on.
  void start();
  void set_scheduler_events(bool on);
  /// Stops recording and drops every buffered event and track binding
  /// cache. Single-threaded use only (tests).
  void reset_for_testing();

  /// Serializes all tracks to Chrome trace-event JSON at `path`. Tracks in
  /// id order, events in emission order, metadata ('M') events first.
  /// Throws teamnet::Error naming the path on I/O failure.
  void write(const std::string& path) const;
  /// Same serialization, returned as a string (tests).
  std::string to_json() const;

  /// Labels a track's Perfetto thread row.
  void set_track_name(int track, const std::string& name);

  /// Starts a new track epoch (scenario drivers call this on entry, in
  /// deterministic order): subsequent emissions land on a fresh pid whose
  /// process row carries `name`. No-op while tracing is inactive. Must only
  /// be called between scenarios — i.e. with no emitter threads live.
  void begin_epoch(const std::string& name);

  /// Index of the current epoch (0 before any begin_epoch call). Epoch
  /// boundaries are quiescent points, so every emission within one
  /// scenario run reads the same value — flow_id() and the qtl instants
  /// fold it in so ids stay unique when sequential runs (each restarting
  /// qid at 1) share one trace file.
  int current_epoch() const {
    return epoch_base_.load(std::memory_order_relaxed) / kTrackStride;
  }

  /// Explicit-track, explicit-timestamp emission for callers holding a
  /// scheduler lock. Track mutexes are leaf locks, so this never
  /// deadlocks against the caller's lock; `ts_s` must come from state the
  /// caller already owns (e.g. des::Engine node clocks).
  void instant_at(int track, double ts_s, const char* name,
                  const TraceArgs& args);
  void counter_at(int track, double ts_s, const char* name, double value);
  void begin_at(int track, double ts_s, const char* name,
                const TraceArgs* args);
  void end_at(int track, double ts_s);
  /// Flow event ('s' start / 'f' finish) on an explicit track. Flow
  /// events bind causally-related slices across tracks (Perfetto draws
  /// them as arrows); `id` pairs the start with its finish (flow_id()
  /// below derives a stable one from qid × node × direction).
  void flow_at(int track, double ts_s, char ph, const char* name,
               std::int64_t id);

  /// Events discarded because a track buffer hit its cap.
  std::int64_t dropped_events() const;

 private:
  friend class TraceSpan;
  friend class TraceTrack;

  struct Track {
    mutable Mutex mutex;
    std::string name;
    std::vector<TraceEvent> events TN_GUARDED_BY(mutex);
    std::int64_t dropped TN_GUARDED_BY(mutex) = 0;
  };

  Tracer() = default;

  Track& track(int id);
  void append(int track, TraceEvent event);

  mutable Mutex registry_mutex_;
  std::map<int, std::unique_ptr<Track>> tracks_ TN_GUARDED_BY(registry_mutex_);
  /// Offset added to every caller-supplied track id; always a multiple of
  /// kTrackStride. Relaxed: epoch boundaries are quiescent points.
  std::atomic<int> epoch_base_{0};
  std::map<int, std::string> epoch_names_ TN_GUARDED_BY(registry_mutex_);
  std::atomic<bool> drop_warned_{false};
};

/// Binds the calling thread to a trace track + clock for its lifetime;
/// restores the previous binding (if any) on destruction.
class TraceTrack {
 public:
  TraceTrack(int track, TimeSource clock, const std::string& name = "");
  ~TraceTrack();
  TraceTrack(const TraceTrack&) = delete;
  TraceTrack& operator=(const TraceTrack&) = delete;

 private:
  int saved_track_;
  TimeSource saved_clock_;
};

namespace detail {
/// Out-of-line slow paths; called only when Tracer::active().
void begin_slow(const char* name, const TraceArgs* args, bool* live,
                int* track);
void end_slow(int track);
void instant_slow(const char* name, const TraceArgs* args);
void counter_slow(const char* name, double value);
void flow_slow(char ph, const char* name, std::int64_t id);
}  // namespace detail

/// RAII span on the calling thread's bound track. When tracing is off or
/// the thread is unbound this is a no-op.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (Tracer::active()) detail::begin_slow(name, nullptr, &live_, &track_);
  }
  /// `args_fn() -> TraceArgs` is only invoked when the span is recorded,
  /// so argument rendering costs nothing in un-traced runs.
  template <typename ArgsFn,
            typename = std::enable_if_t<std::is_invocable_v<ArgsFn>>>
  TraceSpan(const char* name, ArgsFn&& args_fn) {
    if (Tracer::active()) {
      const TraceArgs args = std::forward<ArgsFn>(args_fn)();
      detail::begin_slow(name, &args, &live_, &track_);
    }
  }
  ~TraceSpan() {
    if (live_) detail::end_slow(track_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool live_ = false;
  int track_ = -1;
};

inline void trace_instant(const char* name) {
  if (Tracer::active()) detail::instant_slow(name, nullptr);
}
template <typename ArgsFn,
          typename = std::enable_if_t<std::is_invocable_v<ArgsFn>>>
void trace_instant(const char* name, ArgsFn&& args_fn) {
  if (Tracer::active()) {
    const TraceArgs args = std::forward<ArgsFn>(args_fn)();
    detail::instant_slow(name, &args);
  }
}
inline void trace_counter(const char* name, double value) {
  if (Tracer::active()) detail::counter_slow(name, value);
}

/// Causal flow pair on the calling threads' bound tracks: the sender emits
/// trace_flow_start just after handing a message off, the receiver emits
/// trace_flow_finish with the SAME name and id just after reading it.
/// Perfetto renders the pair as an arrow between the enclosing slices;
/// tools/check_trace.py validates that every id pairs exactly one start
/// with one finish at a non-earlier timestamp.
inline void trace_flow_start(const char* name, std::int64_t id) {
  if (Tracer::active()) detail::flow_slow('s', name, id);
}
inline void trace_flow_finish(const char* name, std::int64_t id) {
  if (Tracer::active()) detail::flow_slow('f', name, id);
}

/// Stable flow-binding id for one message of one query: `node` is the
/// scenario node the message targets/originates at (worker index + 1) and
/// `dir` is 0 for the master→worker request, 1 for the worker→master
/// reply. 512 nodes per query is far above any scenario's fan-out. The
/// tracer's current epoch occupies the high bits: qids restart at 1 on
/// every scenario run, so without it the cells of one sweep writing into
/// one trace would reuse ids and check_trace.py's exactly-one-start /
/// exactly-one-finish invariant could not hold.
inline std::int64_t flow_id(std::int64_t qid, int node, int dir) {
  const std::int64_t epoch = Tracer::instance().current_epoch();
  return (epoch << 40) | ((qid * 512 + node) * 2 + dir);
}

/// Track id the calling thread is bound to, or -1.
int bound_track();

}  // namespace teamnet::obs
