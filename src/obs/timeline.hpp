// Per-query latency timeline (DESIGN.md §15): a structured record of the
// timestamped phase marks one query passes on its way from arrival to
// completion — the master's queue wait, broadcast, local compute, gather
// and argmin instants plus one lane of marks per worker (request sent /
// received, compute begin / end, reply sent / received) — all correlated
// by the protocol's monotone query id.
//
// Two consumers share the marks:
//   * the process-global `TimelineRecorder` keeps them as data, so a load
//     driver can hand each completed query to obs::attribute()
//     (obs/critpath.hpp) and decompose its latency exactly;
//   * the tracer gets each mark as a `qtl` instant (args: qid, lane, seq)
//     so tools/check_trace.py can validate per-query mark ordering on any
//     trace, flow arrows included.
//
// The same zero-overhead-when-disabled contract as the tracer: every
// emission site checks one relaxed atomic (`qtl_active()`); an
// uninstrumented run pays one predictable branch per mark and never takes
// the recorder mutex. Recording only READS the clock it is handed — it
// never advances virtual time — so enabling it cannot move any simulated
// timestamp.
//
// Clock domains: marks on one query mix the master's and each worker's
// clocks. Under the simulator these are the per-node virtual clocks, which
// are Lamport-consistent (a receive lands at or after the matching send),
// so consecutive marks on a lane are non-decreasing and the attribution in
// critpath.hpp is exact. On real TCP they are per-process steady clocks —
// close enough for profiling, not for the bit-exact invariant.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/annotations.hpp"
#include "obs/trace.hpp"

namespace teamnet::obs {

/// Master-side phase marks, in causal order. `arrival` is stamped by the
/// load driver (note_arrival) before the master sees the query; the rest
/// are stamped inside the master's infer().
enum class QueryPhase : int {
  arrival = 0,            ///< query entered the system (load driver)
  dispatch,               ///< master picked it up (infer() entry)
  broadcast_end,          ///< last worker send completed
  local_compute_end,      ///< master's own expert finished
  gather_end,             ///< gather released (last counted answer read)
  complete,               ///< result assembled (argmin + accounting done)
};
inline constexpr int kNumQueryPhases = 6;
const char* to_string(QueryPhase phase);

/// Per-worker lane marks. `sent` and `reply_recv` are master-clock
/// observations; the middle four are worker-clock.
enum class WorkerMark : int {
  sent = 0,       ///< master finished sending this worker's request
  request_recv,   ///< worker received + decoded the request
  compute_begin,  ///< worker starts its expert forward
  compute_end,    ///< worker's expert finished
  reply_sent,     ///< worker finished sending the reply
  reply_recv,     ///< master read + accepted the reply
};
inline constexpr int kNumWorkerMarks = 6;
const char* to_string(WorkerMark mark);

/// One worker's marks for one query. A quiet NaN means "not observed"
/// (e.g. the worker was skipped at broadcast, or its reply was hedged
/// away); use has()/at().
struct WorkerLane {
  int worker = -1;  ///< 0-based worker index (node = worker + 1)
  std::array<double, kNumWorkerMarks> t;

  WorkerLane();
  bool has(WorkerMark mark) const;
  double at(WorkerMark mark) const {
    return t[static_cast<std::size_t>(mark)];
  }
};

/// Everything recorded about one query: master marks, worker lanes (sorted
/// by worker index) and the degradation level the gather completed at.
struct QueryTimeline {
  std::int64_t qid = 0;
  /// net::DegradationLevel as an int (0 full / 1 quorum / 2 local_only);
  /// an int so obs does not depend on net.
  int degradation = 0;
  std::array<double, kNumQueryPhases> t;
  std::vector<WorkerLane> lanes;

  QueryTimeline();
  bool has(QueryPhase phase) const;
  double at(QueryPhase phase) const {
    return t[static_cast<std::size_t>(phase)];
  }
  /// Find-or-insert the lane for `worker`, keeping lanes sorted.
  WorkerLane& lane(int worker);
  const WorkerLane* find_lane(int worker) const;
};

namespace detail {
inline std::atomic<bool> g_timeline_active{false};
}  // namespace detail

/// Process-global store of per-query timelines, keyed by qid. One load
/// driver at a time owns it (start() ... take()); the masters/workers it
/// drives publish marks through the qtl_* helpers below. Thread-safe: the
/// internal mutex is a LEAF lock (nothing else is taken under it).
class TimelineRecorder {
 public:
  static TimelineRecorder& instance();

  /// THE gate instrumentation sites check before reading a clock.
  static bool active() {
    return detail::g_timeline_active.load(std::memory_order_relaxed);
  }

  /// Clears any previous run's records and starts recording.
  void start();
  /// Stops recording (records stay readable until take()).
  void stop();
  /// Returns every recorded timeline in ascending-qid order and clears the
  /// store. Also clears a pending note_arrival.
  std::vector<QueryTimeline> take();

  /// Stamps the NEXT begun query's arrival instant. The load driver calls
  /// this just before handing the query to the master; the master's
  /// dispatch mark consumes it (the driver cannot know the qid yet).
  void note_arrival(double t_s);
  /// Records a master-side phase mark. `dispatch` creates the query's
  /// record and consumes the pending arrival (falling back to `t_s` —
  /// zero queue wait — when none is pending). First write wins.
  void mark(std::int64_t qid, QueryPhase phase, double t_s);
  /// Records a worker-lane mark. First write wins.
  void mark_worker(std::int64_t qid, int worker, WorkerMark mark, double t_s);
  /// Records the degradation level the query completed at.
  void set_degradation(std::int64_t qid, int level);

  std::int64_t recorded_queries() const;

 private:
  TimelineRecorder() = default;
  QueryTimeline& query(std::int64_t qid) TN_REQUIRES(mutex_);

  mutable Mutex mutex_;
  /// Sorted by qid; queries arrive in qid order so appends dominate.
  std::vector<QueryTimeline> queries_ TN_GUARDED_BY(mutex_);
  bool have_pending_arrival_ TN_GUARDED_BY(mutex_) = false;
  double pending_arrival_s_ TN_GUARDED_BY(mutex_) = 0.0;
};

/// One branch covering both consumers: instrumentation sites read their
/// clock only when something is listening.
inline bool qtl_active() {
  return TimelineRecorder::active() || Tracer::active();
}

/// Publishes one master-side mark to the recorder (when recording) and as
/// a `qtl` trace instant (when tracing). Callers gate on qtl_active().
void qtl_master_mark(std::int64_t qid, QueryPhase phase, double t_s);
/// Same for a worker-lane mark. `worker` is the 0-based worker index.
void qtl_worker_mark(std::int64_t qid, int worker, WorkerMark mark,
                     double t_s);
/// Publishes the completed query's degradation level to the recorder.
void qtl_degradation(std::int64_t qid, int level);

}  // namespace teamnet::obs
