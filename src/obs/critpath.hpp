// Critical-path reconstruction and exact latency attribution (DESIGN.md
// §15). Input: one QueryTimeline (obs/timeline.hpp). Output: two exact
// partitions of the query's arrival→completion latency —
//
//   * the END-TO-END partition: the five consecutive master-side slices
//     (queue wait, broadcast, local compute, gather wait, argmin);
//   * the CRITICAL-PATH partition: the broadcast→gather DAG has one chain
//     that released the gather — either the master's own expert or the
//     worker whose accepted reply was read last — and that chain's marks
//     re-slice the same interval into queue / serialization / transit /
//     compute / slack segments.
//
// Exactness invariant: all arithmetic is integer nanoseconds
// (to_ns(t) = llround(t * 1e9)) over a chain of clamped-monotone points,
// so each partition TELESCOPES — the slice sums equal the measured
// arrival-to-completion latency bit-exactly, with no floating-point
// residue. Under the discrete_event scheduler every mark is a virtual
// clock reading, so the whole decomposition is byte-reproducible from the
// seed. Marks a fault or degradation suppressed collapse into an explicit
// `unattributed` slice rather than silently skewing a named phase.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "obs/timeline.hpp"

namespace teamnet::obs {

/// Attribution phases. The first five form the end-to-end partition; the
/// rest appear only on critical-path chains.
enum class AttrPhase : int {
  // -- end-to-end partition (master-side slices) --
  master_queue = 0,  ///< arrival → dispatch: waiting for the serial master
  broadcast,         ///< dispatch → broadcast_end: encode + all sends
  local_compute,     ///< broadcast_end → local_compute_end
  gather_wait,       ///< local_compute_end → gather_end
  argmin,            ///< gather_end → complete: selection + accounting
  // -- critical-path-only slices --
  broadcast_serial,  ///< dispatch → this worker's send done (incl. earlier
                     ///< workers' serialization: the serial-master cost)
  request_transit,   ///< sent → request_recv: link time to the worker
  worker_queue,      ///< request_recv → compute_begin
  worker_compute,    ///< compute_begin → compute_end
  reply_prep,        ///< compute_end → reply_sent: encode + send
  reply_transit,     ///< reply_sent → reply_recv: link time back
  gather_slack,      ///< releaser read → gather_end (poll/duplicate drain)
  unattributed,      ///< interval whose interior marks were not observed
};
inline constexpr int kNumAttrPhases = 13;
const char* to_string(AttrPhase phase);

/// Coarse grouping for the bottleneck report: which *kind* of work owns
/// the critical path.
enum class CritKind : int {
  queueing = 0,   ///< master_queue, worker_queue
  serialization,  ///< broadcast, broadcast_serial, argmin, gather_slack
  compute,        ///< local_compute, worker_compute, reply_prep
  transit,        ///< request_transit, reply_transit
  other,          ///< gather_wait, unattributed
};
inline constexpr int kNumCritKinds = 5;
const char* to_string(CritKind kind);
CritKind kind_of(AttrPhase phase);

/// Integer nanoseconds on the virtual (or steady) clock — the unit every
/// attribution sum is computed in so partitions telescope exactly.
std::int64_t to_ns(double seconds);

struct PhaseSlice {
  AttrPhase phase = AttrPhase::unattributed;
  std::int64_t ns = 0;
};

/// One query's exact latency decomposition.
struct QueryAttribution {
  std::int64_t qid = 0;
  int degradation = 0;  ///< net::DegradationLevel as int
  std::int64_t arrival_ns = 0;
  std::int64_t complete_ns = 0;
  std::int64_t total_ns = 0;  ///< complete_ns - arrival_ns
  /// Worker index whose reply released the gather; -1 = the master's own
  /// expert finished last (or no counted worker reply).
  int critical_worker = -1;
  /// End-to-end partition: e2e_ns sums to total_ns exactly.
  std::array<std::int64_t, kNumAttrPhases> e2e_ns{};
  /// Critical-path partition: crit_ns sums to total_ns exactly.
  std::array<std::int64_t, kNumAttrPhases> crit_ns{};
  /// The critical chain in causal order (zero-length slices included, so
  /// the chain shape is stable across queries).
  std::vector<PhaseSlice> critical;
  /// Largest critical-path slice (ties: lowest AttrPhase value).
  AttrPhase dominant = AttrPhase::unattributed;
  /// Per non-critical counted worker: gather_end - its reply_recv
  /// (>= 0) — how much earlier than needed the straggler margin absorbed
  /// that reply.
  std::vector<std::int64_t> straggler_slack_ns;

  std::int64_t e2e_sum() const;
  std::int64_t crit_sum() const;
  CritKind dominant_kind() const { return kind_of(dominant); }
};

/// Reconstructs the query's DAG from its timeline and attributes its
/// latency. Requires the arrival (or dispatch) and complete marks; any
/// other missing mark degrades to an `unattributed` slice, never to a
/// broken sum.
QueryAttribution attribute(const QueryTimeline& timeline);

}  // namespace teamnet::obs
