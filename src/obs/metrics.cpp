#include "obs/metrics.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace teamnet::obs {

std::size_t Counter::shard_index() {
  // Hash the thread id once per thread; threads spread across the cells so
  // concurrent adds from the pool don't contend on one cache line.
  static thread_local const std::size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return shard;
}

Histogram::Histogram(std::vector<double> upper_edges)
    : upper_edges_(std::move(upper_edges)),
      buckets_(new std::atomic<std::int64_t>[upper_edges_.size() + 1]) {
  TEAMNET_CHECK_MSG(!upper_edges_.empty(), "histogram needs >= 1 bucket edge");
  TEAMNET_CHECK_MSG(
      std::is_sorted(upper_edges_.begin(), upper_edges_.end()) &&
          std::adjacent_find(upper_edges_.begin(), upper_edges_.end()) ==
              upper_edges_.end(),
      "histogram bucket edges must be strictly increasing");
  for (std::size_t i = 0; i <= upper_edges_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double value) {
  const auto it =
      std::lower_bound(upper_edges_.begin(), upper_edges_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - upper_edges_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::observe_n(double value, std::int64_t n) {
  if (n <= 0) return;
  const auto it =
      std::lower_bound(upper_edges_.begin(), upper_edges_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - upper_edges_.begin());
  buckets_[bucket].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  sum_.fetch_add(value * static_cast<double>(n), std::memory_order_relaxed);
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> out(upper_edges_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked on purpose: metric updates and the atexit metrics writer may run
  // during static destruction, after function-local statics are torn down.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& upper_edges) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(upper_edges);
  } else {
    TEAMNET_CHECK_MSG(slot->upper_edges() == upper_edges,
                      "histogram '" << name
                                    << "' re-registered with different edges");
  }
  return *slot;
}

Series& MetricsRegistry::series(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = series_[name];
  if (!slot) slot = std::make_unique<Series>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->total();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->get();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.upper_edges = histogram->upper_edges();
    h.bucket_counts = histogram->bucket_counts();
    h.count = histogram->count();
    h.sum = histogram->sum();
    snap.histograms[name] = std::move(h);
  }
  for (const auto& [name, series] : series_) {
    snap.series[name] = series->values();
  }
  return snap;
}

void MetricsRegistry::reset_for_testing() {
  MutexLock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  series_.clear();
}

namespace {

template <typename Map, typename EmitValue>
void emit_json_map(std::ostream& os, const char* key, const Map& map,
                   EmitValue emit_value) {
  os << "  \"" << key << "\": {";
  bool first = true;
  for (const auto& [name, value] : map) {
    if (!first) os << ",";
    first = false;
    os << "\n    \"" << json_escape(name) << "\": ";
    emit_value(os, value);
  }
  if (!first) os << "\n  ";
  os << "}";
}

void emit_double_array(std::ostream& os, const std::vector<double>& values) {
  os << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ", ";
    os << json_double(values[i]);
  }
  os << "]";
}

}  // namespace

void write_metrics_json(const std::string& path) {
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  std::ofstream os(path, std::ios::binary);
  if (!os.good()) {
    throw Error("cannot open --metrics output file: " + path);
  }
  os << "{\n";
  emit_json_map(os, "counters", snap.counters,
                [](std::ostream& o, std::int64_t v) { o << v; });
  os << ",\n";
  emit_json_map(os, "gauges", snap.gauges,
                [](std::ostream& o, double v) { o << json_double(v); });
  os << ",\n";
  emit_json_map(os, "histograms", snap.histograms,
                [](std::ostream& o, const HistogramSnapshot& h) {
                  o << "{\"upper_edges\": ";
                  emit_double_array(o, h.upper_edges);
                  o << ", \"bucket_counts\": [";
                  for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
                    if (i > 0) o << ", ";
                    o << h.bucket_counts[i];
                  }
                  o << "], \"count\": " << h.count
                    << ", \"sum\": " << json_double(h.sum) << "}";
                });
  os << ",\n";
  emit_json_map(os, "series", snap.series, [](std::ostream& o,
                                              const std::vector<double>& v) {
    emit_double_array(o, v);
  });
  os << "\n}\n";
  os.flush();
  if (!os.good()) {
    throw Error("failed writing --metrics output file: " + path);
  }
}

void require_writable_parent(const std::string& path,
                             const std::string& flag) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (parent.empty()) return;  // relative file in the working directory
  std::error_code ec;
  if (!std::filesystem::is_directory(parent, ec)) {
    throw Error(flag + " output path '" + path +
                "': parent directory does not exist");
  }
}

}  // namespace teamnet::obs
