// Process-wide metrics registry (DESIGN.md §10 "Observability").
//
// Four metric kinds, all safe to update from any thread with no external
// locking and all cheap enough for protocol hot paths:
//
//   Counter    monotone int64, SHARDED: each thread adds into one of a
//              fixed set of cache-line-padded atomic cells (thread-id
//              hashed), so concurrent senders never bounce one cache line.
//              total() sums the shards on demand.
//   Gauge      last-write-wins double (atomic store/load).
//   Histogram  fixed bucket upper edges set at creation; observe() is one
//              atomic increment on the bucket found by binary search, plus
//              a CAS-add into the running sum.
//   Series     append-only vector of doubles under a leaf mutex — for
//              per-iteration training curves (gate γ̄, objective), where
//              the full sequence IS the result and updates are off the
//              inference hot path.
//
// The registry maps stable names to metric instances; a metric, once
// created, lives for the process (pointers stay valid, lookups after the
// first can be cached by the caller). snapshot() returns ordered copies of
// every value so the JSON emission is byte-stable for a deterministic run.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.hpp"

namespace teamnet::obs {

class Counter {
 public:
  static constexpr int kShards = 16;

  void add(std::int64_t delta) {
    cells_[shard_index()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  /// Sum over all shards. Concurrent adds may or may not be included —
  /// the usual monotone-counter read contract.
  std::int64_t total() const {
    std::int64_t sum = 0;
    for (const Cell& cell : cells_) {
      sum += cell.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::int64_t> value{0};
  };

  static std::size_t shard_index();

  std::array<Cell, kShards> cells_{};
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  /// `upper_edges` must be strictly increasing; values above the last edge
  /// land in an implicit overflow bucket.
  explicit Histogram(std::vector<double> upper_edges);

  void observe(double value);
  /// Records `n` observations of `value` in one shot — how a pre-bucketed
  /// histogram (e.g. load::LatencyHistogram) exports into the registry
  /// without replaying every sample.
  void observe_n(double value, std::int64_t n);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_edges() const { return upper_edges_; }
  /// Per-bucket counts; index upper_edges().size() is the overflow bucket.
  std::vector<std::int64_t> bucket_counts() const;

 private:
  const std::vector<double> upper_edges_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class Series {
 public:
  void append(double value) {
    MutexLock lock(mutex_);
    values_.push_back(value);
  }
  std::vector<double> values() const {
    MutexLock lock(mutex_);
    return values_;
  }
  std::size_t size() const {
    MutexLock lock(mutex_);
    return values_.size();
  }

 private:
  mutable Mutex mutex_;
  std::vector<double> values_ TN_GUARDED_BY(mutex_);
};

struct HistogramSnapshot {
  std::vector<double> upper_edges;
  std::vector<std::int64_t> bucket_counts;  ///< last entry = overflow
  std::int64_t count = 0;
  double sum = 0.0;
};

/// Ordered (std::map — deterministic iteration) copies of every metric.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, std::vector<double>> series;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Find-or-create. The returned reference is valid for the process
  /// lifetime; callers on hot paths should look up once and keep the
  /// pointer. Creating the same histogram name with different edges throws
  /// InvariantError.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& upper_edges);
  Series& series(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Drops every registered metric (tests and bench isolation only — any
  /// cached Counter*/Gauge* held by callers dangles after this).
  void reset_for_testing();

 private:
  MetricsRegistry() = default;

  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      TN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ TN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      TN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Series>> series_ TN_GUARDED_BY(mutex_);
};

/// Writes a snapshot of every registered metric as a JSON document (the
/// `--metrics PATH` sink). Doubles are %.17g so a deterministic run writes
/// a byte-stable file. Throws teamnet::Error naming `path` on I/O failure.
void write_metrics_json(const std::string& path);

/// Fails fast when `path`'s parent directory does not exist, throwing a
/// teamnet::Error that names the path and the flag it came from — the
/// alternative is a bench that runs for minutes and then loses its output.
void require_writable_parent(const std::string& path, const std::string& flag);

}  // namespace teamnet::obs
