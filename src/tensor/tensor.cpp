#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

namespace teamnet {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    TEAMNET_CHECK_MSG(d >= 0, "negative dimension in " << shape_to_string(shape));
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  numel_ = shape_numel(shape_);
  data_ = std::shared_ptr<float[]>(new float[static_cast<std::size_t>(numel_)]());
}

Tensor::Tensor(Shape shape, std::vector<float> values) : Tensor(std::move(shape)) {
  TEAMNET_CHECK_MSG(static_cast<std::int64_t>(values.size()) == numel_,
                    "shape " << shape_to_string(shape_) << " needs " << numel_
                             << " values, got " << values.size());
  std::copy(values.begin(), values.end(), data_.get());
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::vector(std::initializer_list<float> values) {
  Tensor t({static_cast<std::int64_t>(values.size())});
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.values()) v = rng.normal(mean, stddev);
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.values()) v = rng.uniform(lo, hi);
  return t;
}

std::int64_t Tensor::dim(std::int64_t axis) const {
  TEAMNET_CHECK_MSG(axis >= 0 && axis < rank(),
                    "axis " << axis << " out of range for rank " << rank());
  return shape_[static_cast<std::size_t>(axis)];
}

float& Tensor::at(std::int64_t i) {
  TEAMNET_CHECK(rank() == 1 && i >= 0 && i < shape_[0]);
  return data_.get()[i];
}

float& Tensor::at(std::int64_t i, std::int64_t j) {
  TEAMNET_CHECK(rank() == 2 && i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1]);
  return data_.get()[i * shape_[1] + j];
}

float& Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) {
  TEAMNET_CHECK(rank() == 3 && i >= 0 && i < shape_[0] && j >= 0 &&
                j < shape_[1] && k >= 0 && k < shape_[2]);
  return data_.get()[(i * shape_[1] + j) * shape_[2] + k];
}

float& Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) {
  TEAMNET_CHECK(rank() == 4 && i >= 0 && i < shape_[0] && j >= 0 &&
                j < shape_[1] && k >= 0 && k < shape_[2] && l >= 0 &&
                l < shape_[3]);
  return data_.get()[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
}

Tensor Tensor::reshape(Shape shape) const {
  std::int64_t known = 1;
  std::int64_t infer_at = -1;
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == -1) {
      TEAMNET_CHECK_MSG(infer_at < 0, "multiple -1 dims in reshape");
      infer_at = static_cast<std::int64_t>(i);
    } else {
      known *= shape[i];
    }
  }
  if (infer_at >= 0) {
    TEAMNET_CHECK_MSG(known > 0 && numel_ % known == 0,
                      "cannot infer dim: numel=" << numel_ << " known=" << known);
    shape[static_cast<std::size_t>(infer_at)] = numel_ / known;
  }
  TEAMNET_CHECK_MSG(shape_numel(shape) == numel_,
                    "reshape " << shape_to_string(shape_) << " -> "
                               << shape_to_string(shape) << " changes numel");
  Tensor view;
  view.shape_ = std::move(shape);
  view.numel_ = numel_;
  view.data_ = data_;
  return view;
}

Tensor Tensor::clone() const {
  Tensor copy(shape_);
  if (numel_ > 0) {
    std::memcpy(copy.data(), data(), static_cast<std::size_t>(numel_) * sizeof(float));
  }
  return copy;
}

void Tensor::fill(float value) {
  std::fill_n(data_.get(), static_cast<std::size_t>(numel_), value);
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (std::int64_t i = 0; i < numel_; ++i) {
    if (std::abs(data_.get()[i] - other.data_.get()[i]) > tol) return false;
  }
  return true;
}

std::string Tensor::to_string(std::int64_t max_values) const {
  std::ostringstream os;
  os << "Tensor" << shape_to_string(shape_) << " {";
  const std::int64_t n = std::min(numel_, max_values);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_.get()[i];
  }
  if (numel_ > n) os << ", ...";
  os << '}';
  return os.str();
}

}  // namespace teamnet
