#include "tensor/gemm.hpp"

#include <cstring>

namespace teamnet {

void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n) {
  // i-k-j ordering keeps the inner loop streaming over contiguous rows of B
  // and C, which the compiler auto-vectorizes.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n) {
  std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  gemm_accumulate(a, b, c, m, k, n);
}

void gemm_tn_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                        std::int64_t k, std::int64_t n) {
  // C[i,j] += sum_p A[p,i] * B[p,j]; iterate p outermost so both B and C rows
  // stream contiguously.
  for (std::int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_nt_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                        std::int64_t k, std::int64_t n) {
  // C[i,j] += dot(A[i,:], B[j,:]) — both operands row-contiguous.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

}  // namespace teamnet
