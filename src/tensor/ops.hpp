// Non-differentiable tensor math. The autograd layer (autograd.hpp) wraps
// these kernels with backward rules; inference-only code calls them
// directly.
//
// Broadcasting for binary ops supports the patterns the models need:
//   * identical shapes
//   * scalar (numel == 1) against anything
//   * [m,n] against [1,n]  (row vector, e.g. bias add)
//   * [m,n] against [m,1]  (column vector, e.g. per-row scale)
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace teamnet::ops {

// ---- binary elementwise (with broadcasting) -------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

/// Shape of `a op b` under the supported broadcast rules; throws
/// InvalidArgument when the shapes are incompatible.
Shape broadcast_shape(const Shape& a, const Shape& b);

/// Sums `t` down to `target` shape (inverse of broadcasting, used by
/// autograd to reduce gradients).
Tensor reduce_to_shape(const Tensor& t, const Shape& target);

// ---- scalar ----------------------------------------------------------------
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

// ---- unary -----------------------------------------------------------------
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);  ///< clamps input at 1e-12 to avoid -inf
Tensor tanh(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor square(const Tensor& a);

// ---- matmul ----------------------------------------------------------------
/// [m,k] x [k,n] -> [m,n]
Tensor matmul(const Tensor& a, const Tensor& b);
/// 2-D transpose.
Tensor transpose(const Tensor& a);

// ---- reductions ------------------------------------------------------------
float sum_all(const Tensor& a);
float mean_all(const Tensor& a);
float max_all(const Tensor& a);
/// 2-D only: axis 0 -> [1,n], axis 1 -> [m,1].
Tensor sum_axis(const Tensor& a, int axis);
Tensor mean_axis(const Tensor& a, int axis);

// ---- rows of a 2-D tensor --------------------------------------------------
/// Numerically-stable row-wise softmax of a [m,n] tensor.
Tensor softmax_rows(const Tensor& logits);
/// Row-wise log-softmax of a [m,n] tensor.
Tensor log_softmax_rows(const Tensor& logits);
/// Index of the max/min element in each row.
std::vector<int> argmax_rows(const Tensor& a);
std::vector<int> argmin_rows(const Tensor& a);

/// Rows of `a` selected by `indices` (gather along axis 0; works for any
/// rank by treating dim 0 as the row axis).
Tensor take_rows(const Tensor& a, const std::vector<int>& indices);

/// Concatenate along axis 0; all inputs must agree on trailing dims.
Tensor concat_rows(const std::vector<Tensor>& parts);

}  // namespace teamnet::ops
