#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "tensor/gemm.hpp"

namespace teamnet::ops {

namespace {

enum class BroadcastKind {
  Same,      // identical shapes
  ScalarB,   // b has a single element
  ScalarA,   // a has a single element
  RowB,      // a=[m,n], b=[1,n] (or [n])
  RowA,      // a=[1,n] (or [n]), b=[m,n]
  ColB,      // a=[m,n], b=[m,1]
  ColA,      // a=[m,1], b=[m,n]
};

bool is_row_of(const Shape& big, const Shape& small) {
  if (big.size() != 2) return false;
  if (small.size() == 1) return small[0] == big[1];
  return small.size() == 2 && small[0] == 1 && small[1] == big[1];
}

bool is_col_of(const Shape& big, const Shape& small) {
  return big.size() == 2 && small.size() == 2 && small[0] == big[0] &&
         small[1] == 1;
}

BroadcastKind classify(const Shape& a, const Shape& b) {
  if (a == b) return BroadcastKind::Same;
  if (shape_numel(b) == 1) return BroadcastKind::ScalarB;
  if (shape_numel(a) == 1) return BroadcastKind::ScalarA;
  if (is_row_of(a, b)) return BroadcastKind::RowB;
  if (is_row_of(b, a)) return BroadcastKind::RowA;
  if (is_col_of(a, b)) return BroadcastKind::ColB;
  if (is_col_of(b, a)) return BroadcastKind::ColA;
  throw InvalidArgument("incompatible broadcast shapes " + shape_to_string(a) +
                        " vs " + shape_to_string(b));
}

template <typename F>
Tensor binary(const Tensor& a, const Tensor& b, F f) {
  const BroadcastKind kind = classify(a.shape(), b.shape());
  switch (kind) {
    case BroadcastKind::Same: {
      Tensor out(a.shape());
      const std::int64_t n = a.numel();
      for (std::int64_t i = 0; i < n; ++i) out[i] = f(a[i], b[i]);
      return out;
    }
    case BroadcastKind::ScalarB: {
      Tensor out(a.shape());
      const float s = b[0];
      const std::int64_t n = a.numel();
      for (std::int64_t i = 0; i < n; ++i) out[i] = f(a[i], s);
      return out;
    }
    case BroadcastKind::ScalarA: {
      Tensor out(b.shape());
      const float s = a[0];
      const std::int64_t n = b.numel();
      for (std::int64_t i = 0; i < n; ++i) out[i] = f(s, b[i]);
      return out;
    }
    case BroadcastKind::RowB: {
      Tensor out(a.shape());
      const std::int64_t m = a.dim(0), n = a.dim(1);
      for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j)
          out[i * n + j] = f(a[i * n + j], b[j]);
      return out;
    }
    case BroadcastKind::RowA: {
      Tensor out(b.shape());
      const std::int64_t m = b.dim(0), n = b.dim(1);
      for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j)
          out[i * n + j] = f(a[j], b[i * n + j]);
      return out;
    }
    case BroadcastKind::ColB: {
      Tensor out(a.shape());
      const std::int64_t m = a.dim(0), n = a.dim(1);
      for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j)
          out[i * n + j] = f(a[i * n + j], b[i]);
      return out;
    }
    case BroadcastKind::ColA: {
      Tensor out(b.shape());
      const std::int64_t m = b.dim(0), n = b.dim(1);
      for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j)
          out[i * n + j] = f(a[i], b[i * n + j]);
      return out;
    }
  }
  throw InvariantError("unreachable broadcast kind");
}

template <typename F>
Tensor unary(const Tensor& a, F f) {
  Tensor out(a.shape());
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) out[i] = f(a[i]);
  return out;
}

}  // namespace

Shape broadcast_shape(const Shape& a, const Shape& b) {
  switch (classify(a, b)) {
    case BroadcastKind::Same:
    case BroadcastKind::ScalarB:
    case BroadcastKind::RowB:
    case BroadcastKind::ColB:
      return a;
    default:
      return b;
  }
}

Tensor reduce_to_shape(const Tensor& t, const Shape& target) {
  if (t.shape() == target) return t;
  Tensor out(target);
  const std::int64_t target_n = out.numel();
  if (target_n == 1) {
    out[0] = sum_all(t);
    return out;
  }
  TEAMNET_CHECK_MSG(t.rank() == 2, "reduce_to_shape needs 2-D source, got "
                                       << shape_to_string(t.shape()));
  const std::int64_t m = t.dim(0), n = t.dim(1);
  if (is_row_of(t.shape(), target)) {
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t j = 0; j < n; ++j) out[j] += t[i * n + j];
    return out;
  }
  if (is_col_of(t.shape(), target)) {
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t j = 0; j < n; ++j) out[i] += t[i * n + j];
    return out;
  }
  throw InvalidArgument("cannot reduce " + shape_to_string(t.shape()) + " to " +
                        shape_to_string(target));
}

Tensor add(const Tensor& a, const Tensor& b) {
  return binary(a, b, std::plus<float>());
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary(a, b, std::minus<float>());
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary(a, b, std::multiplies<float>());
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary(a, b, std::divides<float>());
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary(a, [s](float x) { return x + s; });
}
Tensor mul_scalar(const Tensor& a, float s) {
  return unary(a, [s](float x) { return x * s; });
}

Tensor neg(const Tensor& a) {
  return unary(a, [](float x) { return -x; });
}
Tensor exp(const Tensor& a) {
  return unary(a, [](float x) { return std::exp(x); });
}
Tensor log(const Tensor& a) {
  return unary(a, [](float x) { return std::log(std::max(x, 1e-12f)); });
}
Tensor tanh(const Tensor& a) {
  return unary(a, [](float x) { return std::tanh(x); });
}
Tensor relu(const Tensor& a) {
  return unary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor abs(const Tensor& a) {
  return unary(a, [](float x) { return std::abs(x); });
}
Tensor sqrt(const Tensor& a) {
  return unary(a, [](float x) { return std::sqrt(x); });
}
Tensor square(const Tensor& a) {
  return unary(a, [](float x) { return x * x; });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  TEAMNET_CHECK_MSG(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(0),
                    "matmul " << shape_to_string(a.shape()) << " x "
                              << shape_to_string(b.shape()));
  Tensor out({a.dim(0), b.dim(1)});
  gemm(a.data(), b.data(), out.data(), a.dim(0), a.dim(1), b.dim(1));
  return out;
}

Tensor transpose(const Tensor& a) {
  TEAMNET_CHECK(a.rank() == 2);
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) out[j * m + i] = a[i * n + j];
  return out;
}

float sum_all(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.values()) acc += v;
  return static_cast<float>(acc);
}

float mean_all(const Tensor& a) {
  TEAMNET_CHECK(a.numel() > 0);
  return sum_all(a) / static_cast<float>(a.numel());
}

float max_all(const Tensor& a) {
  TEAMNET_CHECK(a.numel() > 0);
  float best = a[0];
  for (float v : a.values()) best = std::max(best, v);
  return best;
}

Tensor sum_axis(const Tensor& a, int axis) {
  TEAMNET_CHECK(a.rank() == 2 && (axis == 0 || axis == 1));
  const std::int64_t m = a.dim(0), n = a.dim(1);
  if (axis == 0) {
    Tensor out({1, n});
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t j = 0; j < n; ++j) out[j] += a[i * n + j];
    return out;
  }
  Tensor out({m, 1});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) out[i] += a[i * n + j];
  return out;
}

Tensor mean_axis(const Tensor& a, int axis) {
  const float denom = static_cast<float>(axis == 0 ? a.dim(0) : a.dim(1));
  return mul_scalar(sum_axis(a, axis), 1.0f / denom);
}

Tensor softmax_rows(const Tensor& logits) {
  TEAMNET_CHECK(logits.rank() == 2);
  const std::int64_t m = logits.dim(0), n = logits.dim(1);
  Tensor out(logits.shape());
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = logits.data() + i * n;
    float* orow = out.data() + i * n;
    float maxv = row[0];
    for (std::int64_t j = 1; j < n; ++j) maxv = std::max(maxv, row[j]);
    float denom = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) {
      orow[j] = std::exp(row[j] - maxv);
      denom += orow[j];
    }
    for (std::int64_t j = 0; j < n; ++j) orow[j] /= denom;
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  TEAMNET_CHECK(logits.rank() == 2);
  const std::int64_t m = logits.dim(0), n = logits.dim(1);
  Tensor out(logits.shape());
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = logits.data() + i * n;
    float* orow = out.data() + i * n;
    float maxv = row[0];
    for (std::int64_t j = 1; j < n; ++j) maxv = std::max(maxv, row[j]);
    float denom = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) denom += std::exp(row[j] - maxv);
    const float log_denom = std::log(denom) + maxv;
    for (std::int64_t j = 0; j < n; ++j) orow[j] = row[j] - log_denom;
  }
  return out;
}

std::vector<int> argmax_rows(const Tensor& a) {
  TEAMNET_CHECK(a.rank() == 2);
  const std::int64_t m = a.dim(0), n = a.dim(1);
  std::vector<int> out(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = a.data() + i * n;
    out[static_cast<std::size_t>(i)] = static_cast<int>(
        std::max_element(row, row + n) - row);
  }
  return out;
}

std::vector<int> argmin_rows(const Tensor& a) {
  TEAMNET_CHECK(a.rank() == 2);
  const std::int64_t m = a.dim(0), n = a.dim(1);
  std::vector<int> out(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = a.data() + i * n;
    out[static_cast<std::size_t>(i)] = static_cast<int>(
        std::min_element(row, row + n) - row);
  }
  return out;
}

Tensor take_rows(const Tensor& a, const std::vector<int>& indices) {
  TEAMNET_CHECK(a.rank() >= 1);
  const std::int64_t rows = a.dim(0);
  const std::int64_t row_size = rows == 0 ? 0 : a.numel() / rows;
  Shape out_shape = a.shape();
  out_shape[0] = static_cast<std::int64_t>(indices.size());
  Tensor out(out_shape);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const int r = indices[i];
    TEAMNET_CHECK_MSG(r >= 0 && r < rows, "row index " << r << " out of " << rows);
    std::memcpy(out.data() + static_cast<std::int64_t>(i) * row_size,
                a.data() + r * row_size,
                static_cast<std::size_t>(row_size) * sizeof(float));
  }
  return out;
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  TEAMNET_CHECK(!parts.empty());
  Shape out_shape = parts[0].shape();
  std::int64_t rows = 0;
  for (const auto& p : parts) {
    TEAMNET_CHECK(p.rank() == parts[0].rank());
    for (std::int64_t d = 1; d < p.rank(); ++d)
      TEAMNET_CHECK(p.dim(d) == parts[0].dim(d));
    rows += p.dim(0);
  }
  out_shape[0] = rows;
  Tensor out(out_shape);
  std::int64_t offset = 0;
  for (const auto& p : parts) {
    std::memcpy(out.data() + offset, p.data(),
                static_cast<std::size_t>(p.numel()) * sizeof(float));
    offset += p.numel();
  }
  return out;
}

}  // namespace teamnet::ops
