#include "tensor/im2col.hpp"

namespace teamnet {

std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                          std::int64_t stride, std::int64_t pad) {
  const std::int64_t out = (in + 2 * pad - kernel) / stride + 1;
  TEAMNET_CHECK_MSG(out > 0, "conv output dim <= 0 (in=" << in << " k=" << kernel
                                                         << " s=" << stride
                                                         << " p=" << pad << ")");
  return out;
}

Tensor im2col(const Tensor& input, std::int64_t kernel, std::int64_t stride,
              std::int64_t pad) {
  TEAMNET_CHECK(input.rank() == 4);
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t ho = conv_out_dim(h, kernel, stride, pad);
  const std::int64_t wo = conv_out_dim(w, kernel, stride, pad);
  Tensor cols({n * ho * wo, c * kernel * kernel});

  const float* in = input.data();
  float* out = cols.data();
  const std::int64_t row_len = c * kernel * kernel;
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t oy = 0; oy < ho; ++oy) {
      for (std::int64_t ox = 0; ox < wo; ++ox) {
        float* row = out + ((img * ho + oy) * wo + ox) * row_len;
        std::int64_t idx = 0;
        for (std::int64_t ch = 0; ch < c; ++ch) {
          const float* plane = in + (img * c + ch) * h * w;
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            const std::int64_t iy = oy * stride + ky - pad;
            for (std::int64_t kx = 0; kx < kernel; ++kx, ++idx) {
              const std::int64_t ix = ox * stride + kx - pad;
              row[idx] = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                             ? plane[iy * w + ix]
                             : 0.0f;
            }
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& cols, const Shape& input_shape, std::int64_t kernel,
              std::int64_t stride, std::int64_t pad) {
  TEAMNET_CHECK(cols.rank() == 2 && input_shape.size() == 4);
  const std::int64_t n = input_shape[0], c = input_shape[1], h = input_shape[2],
                     w = input_shape[3];
  const std::int64_t ho = conv_out_dim(h, kernel, stride, pad);
  const std::int64_t wo = conv_out_dim(w, kernel, stride, pad);
  TEAMNET_CHECK(cols.dim(0) == n * ho * wo && cols.dim(1) == c * kernel * kernel);

  Tensor image(input_shape);
  const float* in = cols.data();
  float* out = image.data();
  const std::int64_t row_len = c * kernel * kernel;
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t oy = 0; oy < ho; ++oy) {
      for (std::int64_t ox = 0; ox < wo; ++ox) {
        const float* row = in + ((img * ho + oy) * wo + ox) * row_len;
        std::int64_t idx = 0;
        for (std::int64_t ch = 0; ch < c; ++ch) {
          float* plane = out + (img * c + ch) * h * w;
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            const std::int64_t iy = oy * stride + ky - pad;
            for (std::int64_t kx = 0; kx < kernel; ++kx, ++idx) {
              const std::int64_t ix = ox * stride + kx - pad;
              if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
                plane[iy * w + ix] += row[idx];
              }
            }
          }
        }
      }
    }
  }
  return image;
}

}  // namespace teamnet
