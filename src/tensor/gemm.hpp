// Single-precision GEMM kernels. Small, cache-blocked, dependency-free —
// enough throughput for the downsized models in this reproduction while the
// FLOP accounting (src/sim) models the edge devices' real throughput.
#pragma once

#include <cstdint>

namespace teamnet {

/// C[m,n] += A[m,k] * B[k,n]  (row-major, C must be pre-initialized).
void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n);

/// C[m,n] = A[m,k] * B[k,n]  (row-major; C is overwritten).
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n);

/// C[m,n] += A^T * B where A is [k,m], B is [k,n].
void gemm_tn_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                        std::int64_t k, std::int64_t n);

/// C[m,n] += A * B^T where A is [m,k], B is [n,k].
void gemm_nt_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                        std::int64_t k, std::int64_t n);

}  // namespace teamnet
