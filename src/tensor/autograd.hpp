// Tape-free reverse-mode autograd over `Tensor`.
//
// A `Var` wraps a shared graph `Node` holding a value, a lazily allocated
// gradient, and a backward closure. Building an expression from Vars records
// the graph; `backward(root)` topologically sorts it and accumulates
// gradients into every node with `requires_grad`.
//
// Parameters are leaf Vars created with `requires_grad = true`; their nodes
// persist across forward passes so an optimizer can read `grad()` and write
// `value()` in place. Custom ops (Conv2d, BatchNorm, shake-shake) are built
// with `make_node`, which is the public extension point.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace teamnet::ag {

struct Node;
using NodePtr = std::shared_ptr<Node>;

struct Node {
  Tensor value;
  Tensor grad;  ///< undefined until first accumulation
  bool requires_grad = false;
  std::vector<NodePtr> parents;
  /// Reads this->grad and accumulates into parents' grads. Only invoked when
  /// requires_grad is true.
  std::function<void(Node&)> backward_fn;
  const char* op = "leaf";

  /// grad += g, allocating a zero grad buffer on first use.
  void accumulate_grad(const Tensor& g);
};

class Var {
 public:
  Var() = default;
  /// Leaf node. Parameters pass requires_grad = true.
  explicit Var(Tensor value, bool requires_grad = false);
  explicit Var(NodePtr node) : node_(std::move(node)) {}

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->value; }
  Tensor& mutable_value() { return node_->value; }
  bool requires_grad() const { return node_ && node_->requires_grad; }
  bool has_grad() const { return node_ && node_->grad.defined(); }
  /// Gradient tensor; throws when backward has not reached this node.
  const Tensor& grad() const;
  /// Drops the accumulated gradient (optimizer calls this after each step).
  void zero_grad() { node_->grad = Tensor(); }

  const NodePtr& node() const { return node_; }

 private:
  NodePtr node_;
};

/// Creates an interior node. `backward_fn` must accumulate into the parents'
/// grads; it is dropped (and never called) when no parent requires grad.
Var make_node(Tensor value, std::vector<NodePtr> parents,
              std::function<void(Node&)> backward_fn, const char* op);

/// Leaf with requires_grad=false — a constant in the graph.
Var constant(Tensor value);

// ---- arithmetic (broadcasting per ops.hpp rules) ---------------------------
Var add(const Var& a, const Var& b);
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);
Var div(const Var& a, const Var& b);
Var add_scalar(const Var& a, float s);
Var mul_scalar(const Var& a, float s);
Var neg(const Var& a);

// ---- unary -----------------------------------------------------------------
Var exp(const Var& a);
Var log(const Var& a);
Var tanh(const Var& a);
Var relu(const Var& a);
Var abs(const Var& a);
Var square(const Var& a);

// ---- linear algebra --------------------------------------------------------
Var matmul(const Var& a, const Var& b);
Var reshape(const Var& a, Shape shape);

// ---- reductions ------------------------------------------------------------
/// Sum of all elements -> shape [1].
Var sum_all(const Var& a);
/// Mean of all elements -> shape [1].
Var mean_all(const Var& a);
/// 2-D row/column sums: axis 0 -> [1,n], axis 1 -> [m,1].
Var sum_axis(const Var& a, int axis);

// ---- neural-net primitives -------------------------------------------------
Var softmax_rows(const Var& logits);
Var log_softmax_rows(const Var& logits);
/// Mean negative log-likelihood of `log_probs` [n, C] at `labels` -> [1].
Var nll_loss(const Var& log_probs, const std::vector<int>& labels);
/// 2-D convolution. input [N,Cin,H,W], weight [Cin*k*k, Cout], bias [Cout]
/// (pass an undefined Var to skip bias). Output [N,Cout,Ho,Wo].
Var conv2d(const Var& input, const Var& weight, const Var& bias,
           std::int64_t kernel, std::int64_t stride, std::int64_t pad);
/// Global average pool: [N,C,H,W] -> [N,C].
Var global_avg_pool(const Var& input);
/// Shake-shake branch mix: forward alpha*a + (1-alpha)*b, backward routes
/// gradients with an independent coefficient beta (Gastaldi 2017).
Var shake_combine(const Var& a, const Var& b, float alpha, float beta);

/// Reverse-mode sweep from a scalar root (numel must be 1); seeds d(root)=1.
void backward(const Var& root);

}  // namespace teamnet::ag
