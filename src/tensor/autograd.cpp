#include "tensor/autograd.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"

namespace teamnet::ag {

void Node::accumulate_grad(const Tensor& g) {
  TEAMNET_CHECK_MSG(g.shape() == value.shape(),
                    "gradient shape " << shape_to_string(g.shape())
                                      << " != value shape "
                                      << shape_to_string(value.shape()));
  if (!grad.defined()) {
    grad = g.clone();
    return;
  }
  float* dst = grad.data();
  const float* src = g.data();
  const std::int64_t n = grad.numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

Var::Var(Tensor value, bool requires_grad) : node_(std::make_shared<Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Var::grad() const {
  TEAMNET_CHECK_MSG(node_ && node_->grad.defined(),
                    "grad accessed before backward reached node (op="
                        << (node_ ? node_->op : "null") << ")");
  return node_->grad;
}

Var make_node(Tensor value, std::vector<NodePtr> parents,
              std::function<void(Node&)> backward_fn, const char* op) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->op = op;
  node->requires_grad =
      std::any_of(parents.begin(), parents.end(),
                  [](const NodePtr& p) { return p && p->requires_grad; });
  if (node->requires_grad) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return Var(node);
}

Var constant(Tensor value) { return Var(std::move(value), false); }

namespace {

/// Reduces an output-shaped gradient back to the operand's shape (handles the
/// broadcast patterns ops.hpp supports) and accumulates it.
void accumulate_broadcast(Node& parent, const Tensor& grad) {
  if (!parent.requires_grad) return;
  parent.accumulate_grad(ops::reduce_to_shape(grad, parent.value.shape()));
}

}  // namespace

Var add(const Var& a, const Var& b) {
  return make_node(
      ops::add(a.value(), b.value()), {a.node(), b.node()},
      [](Node& n) {
        accumulate_broadcast(*n.parents[0], n.grad);
        accumulate_broadcast(*n.parents[1], n.grad);
      },
      "add");
}

Var sub(const Var& a, const Var& b) {
  return make_node(
      ops::sub(a.value(), b.value()), {a.node(), b.node()},
      [](Node& n) {
        accumulate_broadcast(*n.parents[0], n.grad);
        accumulate_broadcast(*n.parents[1], ops::neg(n.grad));
      },
      "sub");
}

Var mul(const Var& a, const Var& b) {
  return make_node(
      ops::mul(a.value(), b.value()), {a.node(), b.node()},
      [](Node& n) {
        accumulate_broadcast(*n.parents[0],
                             ops::mul(n.grad, n.parents[1]->value));
        accumulate_broadcast(*n.parents[1],
                             ops::mul(n.grad, n.parents[0]->value));
      },
      "mul");
}

Var div(const Var& a, const Var& b) {
  return make_node(
      ops::div(a.value(), b.value()), {a.node(), b.node()},
      [](Node& n) {
        const Tensor& av = n.parents[0]->value;
        const Tensor& bv = n.parents[1]->value;
        accumulate_broadcast(*n.parents[0], ops::div(n.grad, bv));
        // d/db (a/b) = -a / b^2
        Tensor db = ops::neg(ops::div(ops::mul(n.grad, av), ops::square(bv)));
        accumulate_broadcast(*n.parents[1], db);
      },
      "div");
}

Var add_scalar(const Var& a, float s) {
  return make_node(
      ops::add_scalar(a.value(), s), {a.node()},
      [](Node& n) { n.parents[0]->accumulate_grad(n.grad); }, "add_scalar");
}

Var mul_scalar(const Var& a, float s) {
  return make_node(
      ops::mul_scalar(a.value(), s), {a.node()},
      [s](Node& n) { n.parents[0]->accumulate_grad(ops::mul_scalar(n.grad, s)); },
      "mul_scalar");
}

Var neg(const Var& a) { return mul_scalar(a, -1.0f); }

Var exp(const Var& a) {
  return make_node(
      ops::exp(a.value()), {a.node()},
      [](Node& n) { n.parents[0]->accumulate_grad(ops::mul(n.grad, n.value)); },
      "exp");
}

Var log(const Var& a) {
  return make_node(
      ops::log(a.value()), {a.node()},
      [](Node& n) {
        // matches the forward clamp at 1e-12
        Tensor dx(n.grad.shape());
        const Tensor& x = n.parents[0]->value;
        for (std::int64_t i = 0; i < dx.numel(); ++i) {
          dx[i] = n.grad[i] / std::max(x[i], 1e-12f);
        }
        n.parents[0]->accumulate_grad(dx);
      },
      "log");
}

Var tanh(const Var& a) {
  return make_node(
      ops::tanh(a.value()), {a.node()},
      [](Node& n) {
        Tensor dx(n.grad.shape());
        for (std::int64_t i = 0; i < dx.numel(); ++i) {
          dx[i] = n.grad[i] * (1.0f - n.value[i] * n.value[i]);
        }
        n.parents[0]->accumulate_grad(dx);
      },
      "tanh");
}

Var relu(const Var& a) {
  return make_node(
      ops::relu(a.value()), {a.node()},
      [](Node& n) {
        Tensor dx(n.grad.shape());
        const Tensor& x = n.parents[0]->value;
        for (std::int64_t i = 0; i < dx.numel(); ++i) {
          dx[i] = x[i] > 0.0f ? n.grad[i] : 0.0f;
        }
        n.parents[0]->accumulate_grad(dx);
      },
      "relu");
}

Var abs(const Var& a) {
  return make_node(
      ops::abs(a.value()), {a.node()},
      [](Node& n) {
        Tensor dx(n.grad.shape());
        const Tensor& x = n.parents[0]->value;
        for (std::int64_t i = 0; i < dx.numel(); ++i) {
          dx[i] = x[i] > 0.0f ? n.grad[i] : (x[i] < 0.0f ? -n.grad[i] : 0.0f);
        }
        n.parents[0]->accumulate_grad(dx);
      },
      "abs");
}

Var square(const Var& a) {
  return make_node(
      ops::square(a.value()), {a.node()},
      [](Node& n) {
        const Tensor& x = n.parents[0]->value;
        Tensor dx(n.grad.shape());
        for (std::int64_t i = 0; i < dx.numel(); ++i) {
          dx[i] = 2.0f * x[i] * n.grad[i];
        }
        n.parents[0]->accumulate_grad(dx);
      },
      "square");
}

Var matmul(const Var& a, const Var& b) {
  return make_node(
      ops::matmul(a.value(), b.value()), {a.node(), b.node()},
      [](Node& n) {
        Node& pa = *n.parents[0];
        Node& pb = *n.parents[1];
        const std::int64_t m = pa.value.dim(0), k = pa.value.dim(1),
                           c = pb.value.dim(1);
        if (pa.requires_grad) {
          if (!pa.grad.defined()) pa.grad = Tensor(pa.value.shape());
          // dA += G * B^T : [m,c] x [k,c]^T
          gemm_nt_accumulate(n.grad.data(), pb.value.data(), pa.grad.data(), m,
                             c, k);
        }
        if (pb.requires_grad) {
          if (!pb.grad.defined()) pb.grad = Tensor(pb.value.shape());
          // dB += A^T * G : [m,k]^T x [m,c]
          gemm_tn_accumulate(pa.value.data(), n.grad.data(), pb.grad.data(), k,
                             m, c);
        }
      },
      "matmul");
}

Var reshape(const Var& a, Shape shape) {
  Tensor out = a.value().reshape(std::move(shape));
  Shape in_shape = a.value().shape();
  return make_node(
      out.clone(), {a.node()},
      [in_shape](Node& n) {
        n.parents[0]->accumulate_grad(n.grad.reshape(in_shape).clone());
      },
      "reshape");
}

Var sum_all(const Var& a) {
  Tensor out({1});
  out[0] = ops::sum_all(a.value());
  return make_node(
      std::move(out), {a.node()},
      [](Node& n) {
        n.parents[0]->accumulate_grad(
            Tensor::full(n.parents[0]->value.shape(), n.grad[0]));
      },
      "sum_all");
}

Var mean_all(const Var& a) {
  const float inv_n = 1.0f / static_cast<float>(a.value().numel());
  Tensor out({1});
  out[0] = ops::mean_all(a.value());
  return make_node(
      std::move(out), {a.node()},
      [inv_n](Node& n) {
        n.parents[0]->accumulate_grad(
            Tensor::full(n.parents[0]->value.shape(), n.grad[0] * inv_n));
      },
      "mean_all");
}

Var sum_axis(const Var& a, int axis) {
  return make_node(
      ops::sum_axis(a.value(), axis), {a.node()},
      [](Node& n) {
        // Broadcast the reduced gradient back over the summed axis.
        const Shape& in_shape = n.parents[0]->value.shape();
        Tensor dx(in_shape);
        const std::int64_t m = in_shape[0], c = in_shape[1];
        if (n.grad.dim(0) == 1) {  // axis 0
          for (std::int64_t i = 0; i < m; ++i)
            for (std::int64_t j = 0; j < c; ++j) dx[i * c + j] = n.grad[j];
        } else {  // axis 1
          for (std::int64_t i = 0; i < m; ++i)
            for (std::int64_t j = 0; j < c; ++j) dx[i * c + j] = n.grad[i];
        }
        n.parents[0]->accumulate_grad(dx);
      },
      "sum_axis");
}

Var softmax_rows(const Var& logits) {
  return make_node(
      ops::softmax_rows(logits.value()), {logits.node()},
      [](Node& n) {
        // dx = s * (g - sum_j g_j s_j) per row
        const Tensor& s = n.value;
        const std::int64_t m = s.dim(0), c = s.dim(1);
        Tensor dx(s.shape());
        for (std::int64_t i = 0; i < m; ++i) {
          const float* srow = s.data() + i * c;
          const float* grow = n.grad.data() + i * c;
          float dot = 0.0f;
          for (std::int64_t j = 0; j < c; ++j) dot += srow[j] * grow[j];
          float* drow = dx.data() + i * c;
          for (std::int64_t j = 0; j < c; ++j) drow[j] = srow[j] * (grow[j] - dot);
        }
        n.parents[0]->accumulate_grad(dx);
      },
      "softmax_rows");
}

Var log_softmax_rows(const Var& logits) {
  return make_node(
      ops::log_softmax_rows(logits.value()), {logits.node()},
      [](Node& n) {
        // dx = g - softmax(x) * rowsum(g)
        const std::int64_t m = n.value.dim(0), c = n.value.dim(1);
        Tensor dx(n.value.shape());
        for (std::int64_t i = 0; i < m; ++i) {
          const float* lrow = n.value.data() + i * c;
          const float* grow = n.grad.data() + i * c;
          float gsum = 0.0f;
          for (std::int64_t j = 0; j < c; ++j) gsum += grow[j];
          float* drow = dx.data() + i * c;
          for (std::int64_t j = 0; j < c; ++j) {
            drow[j] = grow[j] - std::exp(lrow[j]) * gsum;
          }
        }
        n.parents[0]->accumulate_grad(dx);
      },
      "log_softmax_rows");
}

Var nll_loss(const Var& log_probs, const std::vector<int>& labels) {
  const Tensor& lp = log_probs.value();
  TEAMNET_CHECK(lp.rank() == 2 &&
                lp.dim(0) == static_cast<std::int64_t>(labels.size()));
  const std::int64_t n = lp.dim(0), c = lp.dim(1);
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    TEAMNET_CHECK(y >= 0 && y < c);
    acc -= lp[i * c + y];
  }
  Tensor out({1});
  out[0] = static_cast<float>(acc / static_cast<double>(n));
  return make_node(
      std::move(out), {log_probs.node()},
      [labels, n, c](Node& node) {
        Tensor dx({n, c});
        const float scale = node.grad[0] / static_cast<float>(n);
        for (std::int64_t i = 0; i < n; ++i) {
          dx[i * c + labels[static_cast<std::size_t>(i)]] = -scale;
        }
        node.parents[0]->accumulate_grad(dx);
      },
      "nll_loss");
}

Var conv2d(const Var& input, const Var& weight, const Var& bias,
           std::int64_t kernel, std::int64_t stride, std::int64_t pad) {
  const Tensor& x = input.value();
  const Tensor& w = weight.value();
  TEAMNET_CHECK_MSG(x.rank() == 4, "conv2d input must be NCHW");
  const std::int64_t n = x.dim(0), cin = x.dim(1), h = x.dim(2), wdim = x.dim(3);
  TEAMNET_CHECK_MSG(w.rank() == 2 && w.dim(0) == cin * kernel * kernel,
                    "conv2d weight must be [Cin*k*k, Cout], got "
                        << shape_to_string(w.shape()));
  const std::int64_t cout = w.dim(1);
  const std::int64_t ho = conv_out_dim(h, kernel, stride, pad);
  const std::int64_t wo = conv_out_dim(wdim, kernel, stride, pad);

  // cols: [N*Ho*Wo, Cin*k*k]; out_mat (NHWC rows): [N*Ho*Wo, Cout]
  auto cols = std::make_shared<Tensor>(im2col(x, kernel, stride, pad));
  Tensor out_mat = ops::matmul(*cols, w);
  if (bias.defined()) {
    TEAMNET_CHECK(bias.value().numel() == cout);
    const float* b = bias.value().data();
    for (std::int64_t r = 0; r < out_mat.dim(0); ++r) {
      float* row = out_mat.data() + r * cout;
      for (std::int64_t j = 0; j < cout; ++j) row[j] += b[j];
    }
  }
  // NHWC -> NCHW
  Tensor out({n, cout, ho, wo});
  for (std::int64_t img = 0; img < n; ++img)
    for (std::int64_t y = 0; y < ho; ++y)
      for (std::int64_t xp = 0; xp < wo; ++xp) {
        const float* row = out_mat.data() + ((img * ho + y) * wo + xp) * cout;
        for (std::int64_t ch = 0; ch < cout; ++ch) {
          out[((img * cout + ch) * ho + y) * wo + xp] = row[ch];
        }
      }

  std::vector<NodePtr> parents = {input.node(), weight.node()};
  if (bias.defined()) parents.push_back(bias.node());
  const Shape x_shape = x.shape();
  return make_node(
      std::move(out), std::move(parents),
      [cols, x_shape, kernel, stride, pad, n, cout, ho, wo](Node& node) {
        // NCHW grad -> NHWC rows
        Tensor g_mat({n * ho * wo, cout});
        for (std::int64_t img = 0; img < n; ++img)
          for (std::int64_t y = 0; y < ho; ++y)
            for (std::int64_t xp = 0; xp < wo; ++xp) {
              float* row = g_mat.data() + ((img * ho + y) * wo + xp) * cout;
              for (std::int64_t ch = 0; ch < cout; ++ch) {
                row[ch] = node.grad[((img * cout + ch) * ho + y) * wo + xp];
              }
            }
        Node& px = *node.parents[0];
        Node& pw = *node.parents[1];
        if (pw.requires_grad) {
          if (!pw.grad.defined()) pw.grad = Tensor(pw.value.shape());
          // dW += cols^T @ g_mat
          gemm_tn_accumulate(cols->data(), g_mat.data(), pw.grad.data(),
                             cols->dim(1), cols->dim(0), cout);
        }
        if (node.parents.size() > 2 && node.parents[2]->requires_grad) {
          Node& pb = *node.parents[2];
          Tensor db(pb.value.shape());
          for (std::int64_t r = 0; r < g_mat.dim(0); ++r) {
            const float* row = g_mat.data() + r * cout;
            for (std::int64_t j = 0; j < cout; ++j) db[j] += row[j];
          }
          pb.accumulate_grad(db);
        }
        if (px.requires_grad) {
          // dcols = g_mat @ W^T, then fold back to the image.
          Tensor dcols({cols->dim(0), cols->dim(1)});
          gemm_nt_accumulate(g_mat.data(), pw.value.data(), dcols.data(),
                             g_mat.dim(0), cout, cols->dim(1));
          px.accumulate_grad(col2im(dcols, x_shape, kernel, stride, pad));
        }
      },
      "conv2d");
}

Var global_avg_pool(const Var& input) {
  const Tensor& x = input.value();
  TEAMNET_CHECK(x.rank() == 4);
  const std::int64_t n = x.dim(0), c = x.dim(1), hw = x.dim(2) * x.dim(3);
  Tensor out({n, c});
  for (std::int64_t i = 0; i < n * c; ++i) {
    const float* plane = x.data() + i * hw;
    float acc = 0.0f;
    for (std::int64_t p = 0; p < hw; ++p) acc += plane[p];
    out[i] = acc / static_cast<float>(hw);
  }
  return make_node(
      std::move(out), {input.node()},
      [hw](Node& node) {
        const Shape& xs = node.parents[0]->value.shape();
        Tensor dx(xs);
        const std::int64_t nc = xs[0] * xs[1];
        const float inv = 1.0f / static_cast<float>(hw);
        for (std::int64_t i = 0; i < nc; ++i) {
          const float g = node.grad[i] * inv;
          float* plane = dx.data() + i * hw;
          for (std::int64_t p = 0; p < hw; ++p) plane[p] = g;
        }
        node.parents[0]->accumulate_grad(dx);
      },
      "global_avg_pool");
}

Var shake_combine(const Var& a, const Var& b, float alpha, float beta) {
  Tensor out = ops::add(ops::mul_scalar(a.value(), alpha),
                        ops::mul_scalar(b.value(), 1.0f - alpha));
  return make_node(
      std::move(out), {a.node(), b.node()},
      [beta](Node& n) {
        if (n.parents[0]->requires_grad) {
          n.parents[0]->accumulate_grad(ops::mul_scalar(n.grad, beta));
        }
        if (n.parents[1]->requires_grad) {
          n.parents[1]->accumulate_grad(ops::mul_scalar(n.grad, 1.0f - beta));
        }
      },
      "shake_combine");
}

void backward(const Var& root) {
  TEAMNET_CHECK_MSG(root.defined() && root.value().numel() == 1,
                    "backward root must be a defined scalar");
  // Iterative post-order DFS to build a topological order.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(root.node().get(), 0);
  visited.insert(root.node().get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child++].get();
      if (child && child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  root.node()->accumulate_grad(Tensor::ones(root.value().shape()));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && node->grad.defined()) {
      node->backward_fn(*node);
    }
  }
}

}  // namespace teamnet::ag
