// Dense row-major float tensor — the numeric substrate for the whole
// reproduction (the paper used TensorFlow; see DESIGN.md §1.1).
//
// Tensors are cheap value types: copying a Tensor shares the underlying
// buffer (clone() deep-copies). All tensors are contiguous; reshape()
// returns a view over the same buffer.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace teamnet {

using Shape = std::vector<std::int64_t>;

/// Number of elements implied by a shape (1 for rank-0).
std::int64_t shape_numel(const Shape& shape);

/// "[2, 3, 4]" — for error messages.
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  /// Empty tensor (rank 0, no buffer). numel() == 0.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor with explicit contents; `values.size()` must match the shape.
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  /// 1-D tensor from an initializer list.
  static Tensor vector(std::initializer_list<float> values);
  /// I.i.d. normal entries.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// I.i.d. uniform entries in [lo, hi).
  static Tensor uniform(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);

  const Shape& shape() const { return shape_; }
  std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t dim(std::int64_t axis) const;
  std::int64_t numel() const { return numel_; }
  bool defined() const { return data_ != nullptr; }

  float* data() { return data_.get(); }
  const float* data() const { return data_.get(); }
  std::span<float> values() { return {data_.get(), static_cast<std::size_t>(numel_)}; }
  std::span<const float> values() const {
    return {data_.get(), static_cast<std::size_t>(numel_)};
  }

  /// Flat element access.
  float& operator[](std::int64_t i) { return data_.get()[i]; }
  float operator[](std::int64_t i) const { return data_.get()[i]; }

  /// Checked multi-dimensional access (rank 1–4).
  float& at(std::int64_t i);
  float& at(std::int64_t i, std::int64_t j);
  float& at(std::int64_t i, std::int64_t j, std::int64_t k);
  float& at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l);
  float at(std::int64_t i) const { return const_cast<Tensor*>(this)->at(i); }
  float at(std::int64_t i, std::int64_t j) const {
    return const_cast<Tensor*>(this)->at(i, j);
  }
  float at(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return const_cast<Tensor*>(this)->at(i, j, k);
  }
  float at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) const {
    return const_cast<Tensor*>(this)->at(i, j, k, l);
  }

  /// View with a new shape over the same buffer (numel must match; a single
  /// -1 dimension is inferred).
  Tensor reshape(Shape shape) const;

  /// Deep copy.
  Tensor clone() const;

  /// Sets every element to `value`.
  void fill(float value);

  /// True when shapes match and all elements are within `tol`.
  bool allclose(const Tensor& other, float tol = 1e-5f) const;

  /// Human-readable summary (shape + first few values).
  std::string to_string(std::int64_t max_values = 8) const;

 private:
  Shape shape_;
  std::int64_t numel_ = 0;
  std::shared_ptr<float[]> data_;
};

}  // namespace teamnet
