// im2col / col2im transforms: convolution is lowered to GEMM, which is how
// the Conv2d autograd op computes both forward and backward passes.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace teamnet {

/// Output spatial size of a convolution along one axis.
std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                          std::int64_t stride, std::int64_t pad);

/// Unfolds input [N, C, H, W] into columns [N * Hout * Wout, C * k * k].
/// Each output row holds one receptive field; zero padding is materialized.
Tensor im2col(const Tensor& input, std::int64_t kernel, std::int64_t stride,
              std::int64_t pad);

/// Folds columns [N * Hout * Wout, C * k * k] back into an image gradient of
/// shape [N, C, H, W], accumulating overlapping patches (adjoint of im2col).
Tensor col2im(const Tensor& cols, const Shape& input_shape, std::int64_t kernel,
              std::int64_t stride, std::int64_t pad);

}  // namespace teamnet
