// Edge-device profiles (DESIGN.md §1.1 substitution for the physical
// Jetson TX2 / Raspberry Pi testbed).
//
// Each profile is an *effective* inference throughput — FLOP/s as observed
// through the paper's TensorFlow runtime, not peak silicon numbers — plus
// memory and utilization characteristics used by the resource model. The
// Jetson-CPU throughput is calibrated so the MLP-8 baseline lands near the
// paper's 3.4 ms (Table I(a)); the other profiles keep the paper's
// relative ordering (GPU ~11x CPU, RPi ~4x slower than Jetson CPU).
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace teamnet::sim {

struct DeviceProfile {
  std::string name;
  double flops_per_s = 0.0;        ///< effective tensor throughput
  std::int64_t memory_bytes = 0;   ///< total RAM
  double runtime_overhead_bytes = 0.0;  ///< resident ML-framework footprint
  double max_utilization = 1.0;    ///< CPU% reported when fully busy
  bool uses_gpu = false;           ///< tensor math runs on the GPU
  double gpu_max_utilization = 0.0;
  double cpu_orchestration_share = 0.0;  ///< CPU% per unit of GPU busy time

  /// Seconds to execute `flops` of tensor math on this device.
  double compute_time(std::int64_t flops) const {
    TEAMNET_CHECK(flops >= 0 && flops_per_s > 0.0);
    return static_cast<double>(flops) / flops_per_s;
  }
};

/// Jetson TX2 running inference on its ARM cores only (Tables I(a), II(a)).
DeviceProfile jetson_tx2_cpu();
/// Jetson TX2 with CUDA offload (Tables I(b), II(b)).
DeviceProfile jetson_tx2_gpu();
/// Raspberry Pi 3 Model B+ (Figure 5).
DeviceProfile raspberry_pi_3b();

}  // namespace teamnet::sim
