#include "sim/resource.hpp"

#include <algorithm>

namespace teamnet::sim {

std::int64_t model_working_set_bytes(nn::Module& model,
                                     const Shape& sample_shape) {
  const std::int64_t weights = model.parameter_bytes();
  const std::int64_t io =
      (shape_numel(sample_shape) +
       shape_numel(model.analyze(sample_shape).output_shape)) *
      static_cast<std::int64_t>(sizeof(float));
  // A deployed inference framework holds far more than the raw float32
  // weights: the serialized graph, per-op workspaces, allocator arena
  // slack, and duplicate host/device copies. The factor is calibrated so
  // the baseline-vs-expert memory deltas land in the same band as the
  // paper's Table I memory rows.
  constexpr std::int64_t kFrameworkArenaFactor = 30;
  return kFrameworkArenaFactor * weights + io;
}

ResourceUsage estimate_resources(const DeviceProfile& device,
                                 std::int64_t working_set_bytes,
                                 double busy_fraction) {
  TEAMNET_CHECK(device.memory_bytes > 0);
  busy_fraction = std::clamp(busy_fraction, 0.0, 1.0);

  ResourceUsage usage;
  usage.memory_pct = 100.0 *
                     (device.runtime_overhead_bytes +
                      static_cast<double>(working_set_bytes)) /
                     static_cast<double>(device.memory_bytes);
  if (device.uses_gpu) {
    usage.gpu_pct = device.gpu_max_utilization * busy_fraction;
    usage.cpu_pct = device.max_utilization * device.cpu_orchestration_share *
                    busy_fraction;
  } else {
    usage.cpu_pct = device.max_utilization * busy_fraction;
  }
  return usage;
}

}  // namespace teamnet::sim
