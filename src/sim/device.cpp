#include "sim/device.hpp"

namespace teamnet::sim {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
}

DeviceProfile jetson_tx2_cpu() {
  DeviceProfile d;
  d.name = "jetson-tx2-cpu";
  // Calibrated: MLP-8 (hidden 256, ~1.2 MFLOP) -> ~3.4 ms (Table I(a)).
  d.flops_per_s = 350e6;
  d.memory_bytes = static_cast<std::int64_t>(8.0 * kGiB);
  d.runtime_overhead_bytes = 0.35 * kGiB;  // TF + CUDA libs resident
  d.max_utilization = 95.0;
  return d;
}

DeviceProfile jetson_tx2_gpu() {
  DeviceProfile d = jetson_tx2_cpu();
  d.name = "jetson-tx2-gpu";
  // Paper Table I: MNIST baseline drops 3.4 ms -> 0.3 ms on the GPU.
  d.flops_per_s = 4.0e9;
  d.uses_gpu = true;
  d.gpu_max_utilization = 40.0;        // small models leave the GPU idle-ish
  d.cpu_orchestration_share = 0.45;    // CPU% per unit of GPU busy fraction
  d.max_utilization = 40.0;
  d.runtime_overhead_bytes = 0.6 * kGiB;  // CUDA context on top of TF
  return d;
}

DeviceProfile raspberry_pi_3b() {
  DeviceProfile d;
  d.name = "raspberry-pi-3b+";
  d.flops_per_s = 90e6;  // ~4x slower than the Jetson CPU path
  d.memory_bytes = static_cast<std::int64_t>(1.0 * kGiB);
  d.runtime_overhead_bytes = 0.18 * kGiB;
  d.max_utilization = 95.0;
  return d;
}

}  // namespace teamnet::sim
