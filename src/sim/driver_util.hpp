// Shared plumbing for protocol drivers over a SimNet mesh.
//
// Every driver that runs the real protocol threads inside the simulator —
// the paper-scenario drivers in sim/scenario.cpp and the load-generation
// plane in load/loadgen.cpp — needs the same four pieces: a worker-thread
// wrapper that binds a trace track, absorbs protocol errors and always
// retires its node (an unretired node stalls every pending delivery under
// discrete_event), a compute hook that charges FLOPs to a node's virtual
// clock, and the deterministic query sampling the latency loop replays.
// They live here so the two drivers cannot drift apart on teardown or
// clock-charging rules.
#pragma once

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "net/collab.hpp"
#include "sim/des/runtime.hpp"
#include "sim/device.hpp"

namespace teamnet::sim {

/// Spawns a protocol worker thread on `node`: binds an obs::TraceTrack to
/// the node's virtual clock, runs `body`, logs (instead of escaping) any
/// teamnet::Error from a closed channel, and retires the node on every
/// exit path.
std::thread spawn_sim_worker(SimNet& net, int node, std::function<void()> body);

/// Compute hook that advances `node`'s virtual clock on `device` and, when
/// `compute_total` is non-null, accumulates that node's compute seconds.
net::ComputeHook make_compute_hook(SimNet& net, int node,
                                   const DeviceProfile& device,
                                   std::atomic<double>* compute_total);

/// Picks `n` query rows from `test` (deterministic per seed) — the
/// uniform-row sampling every scenario driver replays.
std::vector<int> sample_query_rows(const data::Dataset& test, int n,
                                   std::uint64_t seed);

/// One-sample batch holding `test`'s row `row`.
Tensor query_row_tensor(const data::Dataset& test, int row);

}  // namespace teamnet::sim
