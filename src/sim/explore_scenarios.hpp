// Fixture runners binding the schedule explorer (sim/des/explore.hpp) to
// the paper's scenario drivers. Each named scenario builds a small fixed
// fleet (seeded models + blob dataset, the same shapes the determinism gate
// uses), runs the REAL protocol under the requested grant policy, and
// serializes only the schedule-invariant outcomes:
//
//   * approach name, node count, accuracy, traffic counts — all scenarios;
//   * per-query live set, per-query correctness, stale/rejoin/fault
//     totals and the fault schedule — the chaos scenario.
//
// Latency and utilisation are deliberately ABSENT: they derive from the
// schedule (who waited for whom) and legitimately vary across legal
// interleavings. Everything serialized here must not.
//
// Lives in sim/ (not sim/des/) because it links the whole model stack;
// the explorer core underneath stays scenario-agnostic.
#pragma once

#include <string>
#include <vector>

#include "sim/des/explore.hpp"
#include "sim/scenario.hpp"

namespace teamnet::sim {

struct ExploreScenarioOptions {
  std::uint64_t seed = 123;  ///< ScenarioConfig::seed and the chaos fault seed
  int num_queries = 8;
  /// Default link is CONTENDED (finite bandwidth + per-message overhead) on
  /// purpose: with zero airtime the shared medium never arbitrates and
  /// every legal schedule produces identical virtual times, so exploration
  /// would be vacuous. Finite airtime staggers near-coincident sends and
  /// lets the perturbing policies reorder them within the slack window.
  net::LinkProfile link = net::LinkProfile{0.0005, 2e6, 0.001};
  /// Eligibility window for the perturbed cases (virtual seconds). Sized to
  /// a couple of airtimes of the default link so medium-capture reorderings
  /// actually occur; canonical ignores it, keeping the baseline canonical.
  double schedule_slack_s = 0.002;
  /// Chaos-scenario tuning (ignored by the other scenarios). faults.seed is
  /// overridden by `seed` so one knob sweeps the whole fixture. Flip
  /// chaos.test_pre_qid_gather to arm the mutation gate.
  ChaosConfig chaos = default_explore_chaos();
  /// Resilience-scenario tuning (degradation plane; same seed override).
  ResilienceConfig resilience = default_explore_resilience();

  /// The chaos fault model the explorer runs by default: drops, corruption,
  /// duplicates, plus a scripted partition/heal of worker 0 — the mix that
  /// exercises every stale-reply and rejoin path.
  static ChaosConfig default_explore_chaos();
  /// The default resilience fixture: drops + duplicates with quorum gather,
  /// hedging and the circuit breaker all enabled — the full degradation
  /// plane under schedule perturbation.
  static ResilienceConfig default_explore_resilience();
};

/// Names accepted by make_explore_runner: "teamnet", "mpi", "sg-moe",
/// "chaos", "resilience".
const std::vector<std::string>& explore_scenario_names();

/// Builds the fixture for `scenario` ONCE (models are trained/seeded up
/// front and shared across runs — inference does not mutate them) and
/// returns a runner the explorer can invoke per schedule. Throws
/// InvalidArgument for an unknown scenario name.
des::ScheduleRunner make_explore_runner(const std::string& scenario,
                                        const ExploreScenarioOptions& options);

/// Byte-stable serializations of the schedule-invariant outcome subset
/// (exposed for tests; make_explore_runner uses these internally).
std::string discrete_bytes(const ScenarioResult& result);
std::string discrete_bytes(const ChaosResult& result);
/// The resilience scenario's outcomes are mostly schedule-DEPENDENT by
/// design — which Q replies form the quorum, whether a hedge fires, and
/// therefore accuracy, traffic and even the fault draws all legally vary
/// across interleavings. What must hold on EVERY legal schedule is the
/// protocol's accounting: the degradation counters partition the queries,
/// per-query vectors are complete, hedge wins/duplicates never exceed
/// hedges sent, and every counter is non-negative. Only those invariants
/// are serialized.
std::string discrete_bytes(const ResilienceResult& result);

}  // namespace teamnet::sim
