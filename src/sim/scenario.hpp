// Scenario drivers: run each approach's real protocol over simulated WiFi
// channels between simulated edge devices and report the paper's metrics
// (per-query latency, accuracy, memory/CPU/GPU usage, traffic).
//
// Every scenario executes the genuine distributed code path — the same
// CollaborativeMaster/Worker, Communicator and partitioned executors that
// run over real TCP in the examples — on real threads with in-process
// channels. Latency is virtual time: compute advances a node's clock by
// FLOPs / device throughput, messages advance the receiver by the WiFi
// link model. Queries are issued sequentially with batch size 1, matching
// the paper's per-inference measurements.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "moe/sg_moe.hpp"
#include "net/fault.hpp"
#include "net/health.hpp"
#include "nn/mlp.hpp"
#include "nn/shake_shake.hpp"
#include "sim/calibration.hpp"
#include "sim/des/runtime.hpp"
#include "sim/device.hpp"
#include "sim/resource.hpp"

namespace teamnet::sim {

struct ScenarioConfig {
  DeviceProfile device = jetson_tx2_cpu();
  net::LinkProfile link = socket_link();
  int num_queries = 40;    ///< latency-measurement queries (batch 1 each)
  std::uint64_t seed = 123;
  /// free_running keeps the historical threads-plus-VirtualClock mode;
  /// discrete_event runs the same protocol under sim/des for bit-stable
  /// results (latency_ms included). Discrete outcomes — selection,
  /// accuracy, fault schedules, traffic counts — agree between the two.
  Scheduler scheduler = Scheduler::free_running;
  /// Grant tie-break under discrete_event (DESIGN.md §11). The canonical
  /// default reproduces the historical schedule byte for byte; the other
  /// policies perturb which simultaneously eligible node acts first so the
  /// explorer can hunt for schedule-dependent outcomes. Ignored under
  /// free_running.
  des::GrantPolicyKind grant_policy = des::GrantPolicyKind::canonical;
  std::uint64_t schedule_seed = 0;  ///< seeds the non-canonical policies
  /// Eligibility window for the non-canonical policies (virtual seconds;
  /// see des::GrantPolicy::slack) — bounded medium-arbitration jitter.
  double schedule_slack_s = 0.0;
};

struct ScenarioResult {
  std::string approach;
  int num_nodes = 1;
  double latency_ms = 0.0;        ///< mean per-query latency (virtual)
  double accuracy_pct = 0.0;      ///< test accuracy of the approach's model
  ResourceUsage usage;            ///< master/rank-0 node
  double bytes_per_query = 0.0;
  double messages_per_query = 0.0;
  /// Engine fingerprint of the schedule that produced this result (0 under
  /// free_running). Not part of the benchmark JSON — used by the schedule
  /// explorer to prove a replayed counterexample is bit-identical.
  std::uint64_t schedule_digest = 0;
};

/// Single edge node running the full model locally — the Baseline column.
ScenarioResult run_baseline(nn::Module& model, const data::Dataset& test,
                            const ScenarioConfig& config);

/// TeamNet: one expert per node, Figure 1's broadcast/gather protocol.
/// `experts` are non-owning; experts.size() = number of nodes.
ScenarioResult run_teamnet(const std::vector<nn::Module*>& experts,
                           const data::Dataset& test,
                           const ScenarioConfig& config);

/// Heterogeneous fleet variant: node i runs on devices[i] (sizes must
/// match). Latency is gated by the slowest node per query, so matching
/// expert size to device capacity (capacity-weighted training, DESIGN.md
/// §2.1 #6) directly shortens the critical path.
ScenarioResult run_teamnet_heterogeneous(
    const std::vector<nn::Module*>& experts,
    const std::vector<DeviceProfile>& devices, const data::Dataset& test,
    const ScenarioConfig& config);

/// MPI-Matrix over an MLP, row-partitioned across `num_nodes` ranks.
ScenarioResult run_mpi_matrix(nn::MlpNet& model, const data::Dataset& test,
                              const ScenarioConfig& config, int num_nodes);

/// MPI-Kernel over a Shake-Shake CNN across `num_nodes` ranks.
ScenarioResult run_mpi_kernel(nn::ShakeShakeNet& model,
                              const data::Dataset& test,
                              const ScenarioConfig& config, int num_nodes);

/// MPI-Branch over a Shake-Shake CNN (exactly 2 ranks).
ScenarioResult run_mpi_branch(nn::ShakeShakeNet& model,
                              const data::Dataset& test,
                              const ScenarioConfig& config);

/// Distributed SG-MoE: gate + expert 0 on the master, one expert per worker
/// node. The link (gRPC vs MPI flavour) comes from `config.link`.
ScenarioResult run_sg_moe(moe::SgMoe& model, const data::Dataset& test,
                          const ScenarioConfig& config);

/// Fault injection layered on the TeamNet scenario: every master<->worker
/// link is wrapped in a net::FaultyChannel whose seed is forked per worker
/// from `faults.seed`, so one seed reproduces the whole fleet's fault
/// schedule.
struct ChaosConfig {
  net::FaultProfile faults;  ///< per-link fault model (seed forked per worker)

  /// Optional scripted two-way partition of one worker (0-based index) over
  /// a query window — the crash/heal pattern the rejoin machinery targets.
  int partition_worker = -1;      ///< -1 = no scripted partition
  int partition_from_query = -1;  ///< query index at which the link goes dark
  int heal_at_query = -1;         ///< query index at which it heals (-1 = never)

  double worker_timeout_s = 0.05;  ///< shared gather deadline (virtual s)
  int probe_interval = 2;          ///< probation probe cadence (queries)

  /// TEST-ONLY mutation hook: re-introduces the pre-PR-3 gather, whose
  /// stale-reply defense was the deadline clock reading instead of a
  /// query-id echo — so acceptance races each reply's arrival time against
  /// the deadline (net::CollaborativeMaster::set_test_pre_qid_gather).
  /// Exists so the schedule explorer's mutation gate can prove it detects
  /// a real ordering bug; never enable outside tests.
  bool test_pre_qid_gather = false;
};

/// Per-query chaos telemetry on top of the usual scenario metrics.
/// `scenario.accuracy_pct` is accuracy over the chaos queries themselves
/// (not the full test set): degraded queries answer with fewer experts, and
/// that degradation is exactly what this scenario measures.
struct ChaosResult {
  ScenarioResult scenario;
  std::vector<int> live_nodes;  ///< per query: master + workers in the live set
  std::vector<char> correct;    ///< per query: 1 = prediction was correct
  std::int64_t stale_replies = 0;    ///< master's discarded stale replies
  std::int64_t rejoins = 0;          ///< probed workers that came back
  std::int64_t faults_injected = 0;  ///< total faults across all links
  std::string fault_schedule;        ///< concatenated per-worker schedules
};

/// TeamNet's Figure-1 protocol under fault injection: same experts, same
/// virtual-time accounting as run_teamnet, but the master reaches each
/// worker through a FaultyChannel and runs with a gather deadline and
/// probation/rejoin enabled. Deterministic for a fixed (config, chaos) —
/// chaos_test asserts schedule equality byte for byte.
ChaosResult run_teamnet_chaos(const std::vector<nn::Module*>& experts,
                              const data::Dataset& test,
                              const ScenarioConfig& config,
                              const ChaosConfig& chaos);

/// Degradation-plane scenario (DESIGN.md §13): the chaos substrate plus the
/// SLO machinery — deadline propagation with expired-request drops, quorum
/// gather, per-worker circuit breakers and (optionally) one backup replica
/// per worker for hedged dispatch.
struct ResilienceConfig {
  net::FaultProfile faults;  ///< per-link fault model (seed forked per link)

  double worker_timeout_s = 0.05;  ///< the query SLO (virtual seconds)
  int probe_interval = 2;          ///< probation probe cadence (queries)
  /// Gather quorum (total answers, local expert included); 0 = full gather.
  int quorum = 0;
  /// Spawn one backup replica node per worker expert and hedge to it. The
  /// backup links run the same fault model (independent streams).
  bool hedging = false;
  double hedge_min_delay_s = 0.002;
  double hedge_latency_factor = 1.5;
  /// Per-worker health scoring + circuit breaker (net/health.hpp).
  bool health = true;
  net::HealthConfig health_config;
  /// Workers drop Infer frames whose propagated deadline already expired.
  bool drop_expired = true;
};

/// Per-query degradation telemetry on top of the usual scenario metrics.
/// The three gather counters partition the queries
/// (full + quorum + local_only == num_queries).
struct ResilienceResult {
  ScenarioResult scenario;
  std::vector<double> latency_ms;  ///< per query (virtual)
  double p50_ms = 0.0;             ///< median per-query latency
  double p99_ms = 0.0;             ///< nearest-rank 99th percentile
  std::vector<int> degradation;  ///< per query: net::DegradationLevel as int
  std::vector<char> correct;     ///< per query: 1 = prediction was correct
  std::int64_t full_gathers = 0;
  std::int64_t quorum_gathers = 0;
  std::int64_t local_only_gathers = 0;
  std::int64_t hedges_sent = 0;
  std::int64_t hedge_wins = 0;
  std::int64_t hedge_duplicates = 0;
  std::int64_t breaker_opens = 0;
  std::int64_t rejoins = 0;
  std::int64_t stale_replies = 0;
  std::int64_t expired_drops = 0;  ///< summed over workers and backups
  std::int64_t faults_injected = 0;
};

/// TeamNet's Figure-1 protocol under fault injection with the degradation
/// plane enabled. Topology: master (node 0) + workers 1..K-1; with
/// `res.hedging` also one backup replica of worker i's expert on node
/// K-1+i. Deterministic for a fixed (config, res) under discrete_event —
/// byte-identical across same-seed runs, results included.
ResilienceResult run_teamnet_resilience(const std::vector<nn::Module*>& experts,
                                        const data::Dataset& test,
                                        const ScenarioConfig& config,
                                        const ResilienceConfig& res);

}  // namespace teamnet::sim
