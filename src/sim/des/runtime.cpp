#include "sim/des/runtime.hpp"

#include <utility>
#include <vector>

#include "sim/des/des_channel.hpp"
#include "sim/des/engine.hpp"

namespace teamnet::sim {

namespace {

using Mesh = std::vector<std::vector<net::ChannelPtr>>;

net::ChannelPtr& mesh_slot(Mesh& mesh, int from, int to) {
  const int n = static_cast<int>(mesh.size());
  TEAMNET_CHECK_MSG(from >= 0 && from < n && to >= 0 && to < n && from != to,
                    "mesh leg out of range");
  return mesh[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
}

void close_mesh(Mesh& mesh) {
  for (auto& row : mesh) {
    for (auto& chan : row) {
      if (chan) chan->close();
    }
  }
}

class FreeRunningNet final : public SimNet {
 public:
  FreeRunningNet(int num_nodes, const net::LinkProfile& link)
      : clock_(num_nodes), mesh_(net::make_sim_mesh(num_nodes, clock_, link)) {}

  Scheduler scheduler() const override { return Scheduler::free_running; }
  int num_nodes() const override { return clock_.num_nodes(); }

  net::Channel& channel(int from, int to) override {
    net::ChannelPtr& slot = mesh_slot(mesh_, from, to);
    TEAMNET_CHECK_MSG(slot != nullptr, "channel leg already taken");
    return *slot;
  }
  net::ChannelPtr take_channel(int from, int to) override {
    return std::move(mesh_slot(mesh_, from, to));
  }

  double node_time(int node) const override { return clock_.node_time(node); }
  void advance(int node, double seconds) override {
    clock_.advance(node, seconds);
  }
  std::int64_t bytes_delivered() const override {
    return clock_.bytes_delivered();
  }
  std::int64_t messages_delivered() const override {
    return clock_.messages_delivered();
  }

  void retire(int /*node*/) override {}  // free-running threads just exit
  void close_all() override { close_mesh(mesh_); }
  std::uint64_t finish() override { return 0; }

 private:
  net::VirtualClock clock_;
  Mesh mesh_;
};

class DesNet final : public SimNet {
 public:
  DesNet(int num_nodes, const net::LinkProfile& link,
         const SimNetOptions& options)
      : engine_(num_nodes,
                des::make_grant_policy(options.grant_policy,
                                       options.schedule_seed, num_nodes,
                                       options.schedule_slack_s)),
        mesh_(des::make_des_mesh(engine_, num_nodes, link)) {}

  Scheduler scheduler() const override { return Scheduler::discrete_event; }
  int num_nodes() const override { return engine_.num_nodes(); }

  net::Channel& channel(int from, int to) override {
    net::ChannelPtr& slot = mesh_slot(mesh_, from, to);
    TEAMNET_CHECK_MSG(slot != nullptr, "channel leg already taken");
    return *slot;
  }
  net::ChannelPtr take_channel(int from, int to) override {
    return std::move(mesh_slot(mesh_, from, to));
  }

  double node_time(int node) const override { return engine_.node_time(node); }
  void advance(int node, double seconds) override {
    engine_.advance(node, seconds);
  }
  std::int64_t bytes_delivered() const override {
    return engine_.bytes_delivered();
  }
  std::int64_t messages_delivered() const override {
    return engine_.messages_delivered();
  }

  void retire(int node) override { engine_.retire(node); }
  void close_all() override { close_mesh(mesh_); }
  std::uint64_t finish() override {
    TEAMNET_CHECK_MSG(engine_.unretired_nodes() == 0,
                      engine_.unretired_nodes()
                          << " node(s) never retired — a worker exited "
                             "without declaring its protocol role done");
    return engine_.schedule_digest();
  }

 private:
  des::Engine engine_;
  Mesh mesh_;
};

}  // namespace

const char* to_string(Scheduler scheduler) {
  switch (scheduler) {
    case Scheduler::free_running:
      return "free_running";
    case Scheduler::discrete_event:
      return "discrete_event";
  }
  return "unknown";
}

std::unique_ptr<SimNet> make_sim_net(Scheduler scheduler, int num_nodes,
                                     const net::LinkProfile& link) {
  return make_sim_net(scheduler, num_nodes, link, SimNetOptions());
}

std::unique_ptr<SimNet> make_sim_net(Scheduler scheduler, int num_nodes,
                                     const net::LinkProfile& link,
                                     const SimNetOptions& options) {
  if (scheduler == Scheduler::discrete_event) {
    return std::make_unique<DesNet>(num_nodes, link, options);
  }
  return std::make_unique<FreeRunningNet>(num_nodes, link);
}

}  // namespace teamnet::sim
